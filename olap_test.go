package skalla

import (
	"context"
	"testing"

	"skalla/internal/gmdj"
)

// The public cube API over a distributed cluster: rollup rows and leaves
// agree with the centralized oracle.
func TestFacadeCube(t *testing.T) {
	cl, d := loadedFlowCluster(t)
	defer cl.Close()
	q, err := CubeQuery("Flow", []string{"SourceAS", "DestAS"},
		Count("flows"), Sum("NumBytes", "bytes"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalCentral(q, gmdj.Data{"Flow": d.Global()}, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Execute(context.Background(), q, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.EqualMultiset(want) {
		t.Error("facade cube mismatch")
	}
	// The grand-total row counts every flow.
	si, di := res.Rel.Schema.MustIndex("SourceAS"), res.Rel.Schema.MustIndex("DestAS")
	fi := res.Rel.Schema.MustIndex("flows")
	found := false
	for _, row := range res.Rel.Tuples {
		if row[si].IsNull() && row[di].IsNull() {
			found = true
			if row[fi].Int != int64(d.Global().Len()) {
				t.Errorf("grand total = %v, want %d", row[fi], d.Global().Len())
			}
		}
	}
	if !found {
		t.Error("grand-total row missing")
	}
}

func TestFacadeRollupAndGroupingSets(t *testing.T) {
	cl, _ := loadedFlowCluster(t)
	defer cl.Close()
	rq, err := RollupQuery("Flow", []string{"SourceAS", "DestAS"}, Count("n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Execute(context.Background(), rq, NoOptimizations()); err != nil {
		t.Fatal(err)
	}
	gq, err := GroupingSetsQuery("Flow", []string{"SourceAS"}, [][]string{{"SourceAS"}, {}}, Count("n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Execute(context.Background(), gq, NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	// 30 source ASes + grand total.
	si := res.Rel.Schema.MustIndex("SourceAS")
	totals := 0
	for _, row := range res.Rel.Tuples {
		if row[si].IsNull() {
			totals++
		}
	}
	if totals != 1 {
		t.Errorf("grand totals = %d, want 1", totals)
	}
}

// TranslateSQL through the public API: the paper's Example 1 expressed as
// SQL with HAVING EACH matches the builder version.
func TestFacadeTranslateSQL(t *testing.T) {
	cl, _ := loadedFlowCluster(t)
	defer cl.Close()
	sqlQ, err := TranslateSQL(`
		SELECT SourceAS, DestAS, COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
		FROM Flow
		GROUP BY SourceAS, DestAS
		HAVING EACH NumBytes >= sum1 / cnt1`)
	if err != nil {
		t.Fatal(err)
	}
	sqlRes, err := cl.Execute(context.Background(), sqlQ, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	builderRes, err := cl.Execute(context.Background(), flowQuery(t), AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	// Same group count; the SQL version's second aggregate is named
	// "matching" instead of "cnt2", so compare cardinalities and a few cells.
	if sqlRes.Rel.Len() != builderRes.Rel.Len() {
		t.Errorf("groups: sql %d vs builder %d", sqlRes.Rel.Len(), builderRes.Rel.Len())
	}
	mi := sqlRes.Rel.Schema.MustIndex("matching")
	ci := builderRes.Rel.Schema.MustIndex("cnt2")
	sum := func(rel *Relation, idx int) (s int64) {
		for _, row := range rel.Tuples {
			s += row[idx].Int
		}
		return
	}
	if sum(sqlRes.Rel, mi) != sum(builderRes.Rel, ci) {
		t.Error("HAVING EACH totals disagree with builder query")
	}
}

// WithRowBlocking through the public API must leave results unchanged while
// chunking the sub-aggregate transfer.
func TestFacadeRowBlocking(t *testing.T) {
	plain, d := loadedFlowCluster(t)
	defer plain.Close()
	blocked, err := NewLocalCluster(3,
		WithCatalog(d.Catalog()), WithRowBlocking(4), WithSerializedTransport())
	if err != nil {
		t.Fatal(err)
	}
	defer blocked.Close()
	if err := blocked.LoadPartitions(context.Background(), "Flow", d.Parts); err != nil {
		t.Fatal(err)
	}
	q := flowQuery(t)
	a, err := plain.Execute(context.Background(), q, NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	b, err := blocked.Execute(context.Background(), q, NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rel.EqualMultiset(b.Rel) {
		t.Error("row blocking changed results")
	}
}
