package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
)

// tiny keeps the experiment sweeps fast enough for unit testing.
func tiny(extra ...string) []string {
	args := []string{
		"-sites", "3", "-rows", "900", "-customers", "300",
		"-cities-per-nation", "4", "-clerks", "30", "-net", "none",
	}
	return append(args, extra...)
}

func TestBenchFig2(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny("-fig", "2"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"Fig. 2", "no-reduction", "site-reduction", "coord-reduction", "both-reductions"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q in:\n%s", frag, s)
		}
	}
}

func TestBenchFig3And4(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny("-fig", "3"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "coalesced") {
		t.Errorf("fig 3 output:\n%s", out.String())
	}
	out.Reset()
	if err := run(tiny("-fig", "4"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sync-reduction") {
		t.Errorf("fig 4 output:\n%s", out.String())
	}
}

func TestBenchFig5(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny("-fig", "5", "-scale", "2"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "optimized") || !strings.Contains(s, "unoptimized") {
		t.Errorf("fig 5 output:\n%s", s)
	}
	out.Reset()
	if err := run(tiny("-fig", "5", "-scale", "2", "-constant-groups"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "constant groups") {
		t.Errorf("constant-groups title missing:\n%s", out.String())
	}
}

func TestBenchFormula(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny("-fig", "formula"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "(2c+2n+1)/(4n+1)") {
		t.Errorf("formula output:\n%s", s)
	}
	// Every printed data row must be within the paper's 5% tolerance.
	rows := 0
	for _, line := range strings.Split(s, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 || !strings.HasSuffix(fields[4], "%") || fields[4] == "err%" {
			continue
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(fields[4], "%"), 64)
		if err != nil {
			t.Fatalf("unparseable error column in %q", line)
		}
		if pct > 5.0 {
			t.Errorf("formula error out of tolerance: %s", line)
		}
		rows++
	}
	if rows < 2 {
		t.Errorf("expected at least 2 formula rows, got %d:\n%s", rows, s)
	}
}

func TestBenchErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny("-fig", "99"), &out); err == nil {
		t.Error("unknown figure must error")
	}
	if err := run([]string{"-rows", "0", "-fig", "2"}, &out); err == nil {
		t.Error("invalid config must error")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("flag error must propagate")
	}
}

func TestBenchJSONExport(t *testing.T) {
	path := t.TempDir() + "/rows.json"
	var out bytes.Buffer
	if err := run(tiny("-fig", "4", "-json", path), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string][]map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m["fig4"]) == 0 {
		t.Errorf("fig4 rows missing: %v", m)
	}
	if _, ok := m["fig4"][0]["Series"]; !ok {
		t.Error("row fields missing")
	}
}
