// Command skalla-bench regenerates the paper's Sect. 5 evaluation: one
// sub-command per figure (the speed-up experiments of Figs. 2–4, the
// scale-up experiment of Fig. 5), plus the analytic group-transfer formula
// check of Sect. 5.2. It prints the series each figure plots; EXPERIMENTS.md
// records a reference run.
//
// Usage:
//
//	skalla-bench -fig all
//	skalla-bench -fig 2 -sites 8 -rows 48000 -customers 16000
//	skalla-bench -fig 5 -scale 4 -constant-groups
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"skalla/internal/bench"
	"skalla/internal/plan"
	"skalla/internal/stats"
	"skalla/internal/tpc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skalla-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skalla-bench", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "experiment: 2, 3, 4, 5, formula, plan, or all")
		sites     = fs.Int("sites", 8, "sites for the speed-up experiments")
		rows      = fs.Int("rows", 48000, "fact tuples (total for speed-up; per ×1 scale for Fig. 5)")
		customers = fs.Int("customers", 16000, "CustName cardinality")
		cities    = fs.Int("cities-per-nation", 120, "CityKey cardinality per nation")
		clerks    = fs.Int("clerks", 3000, "Clerk cardinality")
		seed      = fs.Int64("seed", 1, "generator seed")
		scale     = fs.Int("scale", 4, "Fig. 5 maximum data scale factor")
		constG    = fs.Bool("constant-groups", false, "Fig. 5: hold the group count constant while data grows")
		netFlag   = fs.String("net", "lan", "network model: lan or none")
		jsonPath  = fs.String("json", "", "also write the measured series as JSON to this file")
		workers   = fs.Int("workers", 1, "evaluation workers per site and concurrent merge commits (0 = auto, 1 = sequential paper-shaped runs)")
		planMode  = fs.String("plan-mode", "", "fig plan: run a single selection (auto, none, all, rules=<name>,...) instead of the none/all/auto comparison")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	bench.EvalWorkers = *workers
	cfg := tpc.Config{
		Rows: *rows, Customers: *customers, Nations: 25,
		CitiesPerNation: *cities, Clerks: *clerks, Seed: *seed,
	}
	net := stats.NetModel{}
	if *netFlag == "lan" {
		net = stats.DefaultLAN()
	}
	ctx := context.Background()
	collected := make(map[string][]bench.Row)

	runFig := func(name string) error {
		switch name {
		case "2":
			d, err := tpc.Generate(cfg, *sites)
			if err != nil {
				return err
			}
			rows, err := bench.Fig2(ctx, d, *sites, net)
			if err != nil {
				return err
			}
			collected["fig2"] = rows
			fmt.Fprint(out, bench.Render("Fig. 2: group reduction (speed-up, high cardinality)", rows))
		case "3":
			d, err := tpc.Generate(cfg, *sites)
			if err != nil {
				return err
			}
			rows, err := bench.Fig3(ctx, d, *sites, net)
			if err != nil {
				return err
			}
			collected["fig3"] = rows
			fmt.Fprint(out, bench.Render("Fig. 3: coalescing (speed-up, high & low cardinality)", rows))
		case "4":
			d, err := tpc.Generate(cfg, *sites)
			if err != nil {
				return err
			}
			rows, err := bench.Fig4(ctx, d, *sites, net)
			if err != nil {
				return err
			}
			collected["fig4"] = rows
			fmt.Fprint(out, bench.Render("Fig. 4: synchronization reduction (speed-up, high & low cardinality)", rows))
		case "5":
			rows, err := bench.Fig5(ctx, cfg, 4, *scale, *constG, net)
			if err != nil {
				return err
			}
			collected["fig5"] = rows
			title := "Fig. 5: combined reductions (scale-up, 4 sites)"
			if *constG {
				title += " — constant groups"
			}
			fmt.Fprint(out, bench.Render(title, rows))
		case "plan":
			d, err := tpc.Generate(cfg, *sites)
			if err != nil {
				return err
			}
			var rows []bench.Row
			if *planMode != "" {
				sel, err := plan.ParseSelection(*planMode)
				if err != nil {
					return err
				}
				rows, err = bench.SpeedUpWith(ctx, d, bench.TwoPhaseQuery(bench.HighCardAttr, true), sel, "mode/"+sel.String(), *sites, net)
				if err != nil {
					return err
				}
			} else {
				rows, err = bench.PlanModes(ctx, d, *sites, net)
				if err != nil {
					return err
				}
			}
			collected["plan"] = rows
			fmt.Fprint(out, bench.Render("Plan modes: Egil rule selections on the Example 1 query", rows))
			for _, r := range rows {
				if r.X == *sites {
					fmt.Fprintf(out, "  %-12s plan %s rules=%s est %d round(s) / %d B, actual %d round(s) / %d B\n",
						r.Series, r.Plan.Fingerprint, strings.Join(r.Plan.Rules, ","),
						r.Plan.EstRounds, r.Plan.EstBytesDown+r.Plan.EstBytesUp, r.Rounds, r.Bytes)
				}
			}
		case "formula":
			d, err := tpc.Generate(cfg, *sites)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "== Sect. 5.2 formula: rows(site-reduced)/rows(baseline) vs (2c+2n+1)/(4n+1) ==")
			fmt.Fprintf(out, "%4s %8s %10s %10s %8s\n", "n", "c", "measured", "predicted", "err%")
			for n := 2; n <= *sites; n++ {
				fc, err := bench.Fig2Formula(ctx, d, n, net)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "%4d %8.3f %10.4f %10.4f %7.2f%%\n",
					fc.N, fc.C, fc.Measured, fc.Predicted, 100*fc.RelError())
			}
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		return nil
	}

	if *fig == "all" {
		for _, f := range []string{"2", "3", "4", "5", "plan", "formula"} {
			if err := runFig(f); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	} else if err := runFig(*fig); err != nil {
		return err
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonPath)
	}
	return nil
}
