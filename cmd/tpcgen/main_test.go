package main

import (
	"os"
	"path/filepath"
	"testing"

	"skalla/internal/manifest"
	"skalla/internal/relation"
)

func TestGenerateTPCDataset(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir, "-kind", "tpc", "-sites", "3",
		"-rows", "600", "-customers", "100", "-nations", "25",
		"-cities-per-nation", "4", "-clerks", "10", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := manifest.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != manifest.KindTPC || m.NumSites != 3 || m.TPC.Rows != 600 {
		t.Errorf("manifest = %+v", m)
	}
	total := 0
	for site := 0; site < 3; site++ {
		rel, err := relation.LoadGobFile(manifest.SitePath(dir, site, "TPCR"))
		if err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
		total += rel.Len()
		// CSV was requested too.
		csvPath := manifest.SitePath(dir, site, "TPCR")
		csvPath = csvPath[:len(csvPath)-len(".gob")] + ".csv"
		if _, err := os.Stat(csvPath); err != nil {
			t.Errorf("missing CSV: %v", err)
		}
	}
	if total != 600 {
		t.Errorf("total rows = %d", total)
	}
	// The manifest rebuilds a catalog.
	if _, err := m.Catalog(3); err != nil {
		t.Errorf("catalog: %v", err)
	}
}

func TestGenerateFlowDataset(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir, "-kind", "flow", "-sites", "2",
		"-rows", "300", "-source-as", "10", "-dest-as", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := manifest.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != manifest.KindFlow || m.Flow.Routers != 2 {
		t.Errorf("manifest = %+v", m)
	}
	if _, err := relation.LoadGobFile(manifest.SitePath(dir, 1, "Flow")); err != nil {
		t.Error(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{},                                  // missing -out
		{"-out", t.TempDir(), "-kind", "x"}, // unknown kind
		{"-out", t.TempDir(), "-rows", "0"}, // invalid config
		{"-bogus-flag"},                     // flag error
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
	// Unwritable output directory.
	if err := run([]string{"-out", string(filepath.Separator) + "proc/nope/zzz", "-rows", "10", "-customers", "5", "-clerks", "2", "-cities-per-nation", "2"}); err == nil {
		t.Error("unwritable output must error")
	}
}
