// Command tpcgen generates a partitioned test database for a Skalla
// deployment: either the TPCR instance of the paper's Sect. 5 (a
// denormalized TPC(R)-style fact relation partitioned on NationKey) or the
// IP-flow trace of the motivating application (partitioned on RouterId).
//
// It writes one directory per site containing the site's partition as a gob
// file, plus a manifest.json describing the generator configuration so that
// skalla-coordinator can reconstruct the distribution catalog.
//
// Usage:
//
//	tpcgen -out /data/tpcr -kind tpc -sites 8 -rows 60000 -customers 100000
//	tpcgen -out /data/flows -kind flow -sites 4 -rows 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"skalla/internal/flow"
	"skalla/internal/manifest"
	"skalla/internal/relation"
	"skalla/internal/tpc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tpcgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tpcgen", flag.ContinueOnError)
	var (
		out   = fs.String("out", "", "output directory (required)")
		kind  = fs.String("kind", "tpc", "dataset kind: tpc or flow")
		sites = fs.Int("sites", 8, "number of sites (flow: also the number of routers)")
		seed  = fs.Int64("seed", 1, "generator seed")
		csv   = fs.Bool("csv", false, "also write each partition as CSV")

		rows      = fs.Int("rows", 60000, "total fact tuples")
		customers = fs.Int("customers", 100000, "tpc: unique customers (CustName cardinality)")
		nations   = fs.Int("nations", 25, "tpc: nations (partition attribute cardinality)")
		cities    = fs.Int("cities-per-nation", 120, "tpc: cities per nation (CityKey cardinality = nations * this)")
		clerks    = fs.Int("clerks", 3000, "tpc: clerk cardinality")

		sourceAS = fs.Int("source-as", 100, "flow: distinct source autonomous systems")
		destAS   = fs.Int("dest-as", 50, "flow: distinct destination autonomous systems")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var (
		m     manifest.Manifest
		parts []*relation.Relation
		rel   string
	)
	switch manifest.Kind(*kind) {
	case manifest.KindTPC:
		cfg := tpc.Config{
			Rows: *rows, Customers: *customers, Nations: *nations,
			CitiesPerNation: *cities, Clerks: *clerks, Seed: *seed,
		}
		d, err := tpc.Generate(cfg, *sites)
		if err != nil {
			return err
		}
		parts, rel = d.Parts, tpc.RelationName
		m = manifest.Manifest{Kind: manifest.KindTPC, NumSites: *sites, TPC: &cfg}
	case manifest.KindFlow:
		cfg := flow.Config{
			Rows: *rows, Routers: *sites, SourceAS: *sourceAS, DestAS: *destAS, Seed: *seed,
		}
		d, err := flow.Generate(cfg)
		if err != nil {
			return err
		}
		parts, rel = d.Parts, flow.RelationName
		m = manifest.Manifest{Kind: manifest.KindFlow, NumSites: *sites, Flow: &cfg}
	default:
		return fmt.Errorf("unknown -kind %q (want tpc or flow)", *kind)
	}

	for site, part := range parts {
		path := manifest.SitePath(*out, site, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := part.SaveGobFile(path); err != nil {
			return err
		}
		if *csv {
			f, err := os.Create(path[:len(path)-len(".gob")] + ".csv")
			if err != nil {
				return err
			}
			if err := part.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Printf("site %d: %d rows -> %s\n", site, part.Len(), path)
	}
	if err := m.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, %d sites)\n", filepath.Join(*out, manifest.FileName), rel, *sites)
	return nil
}
