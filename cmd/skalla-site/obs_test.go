package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestStartObsEndpoints(t *testing.T) {
	dir := writeFlowDataset(t, 2)
	srv, err := start([]string{"-addr", "127.0.0.1:0", "-site", "0", "-data", dir,
		"-obs-addr", "127.0.0.1:0", "-log-level", "warn"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.ObsAddr() == "" {
		t.Fatal("observability listener not started")
	}

	// The partition is loaded and the listener is up, so /healthz is ready.
	resp, err := http.Get("http://" + srv.ObsAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"partition":true`) {
		t.Errorf("/healthz body %s missing partition check", body)
	}

	resp, err = http.Get("http://" + srv.ObsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status %d", resp.StatusCode)
	}
	if !strings.Contains(string(metrics), "skalla_server_requests_total") {
		t.Error("/metrics missing skalla_server_requests_total family")
	}
}

func TestStartObsDisabled(t *testing.T) {
	srv, err := start([]string{"-addr", "127.0.0.1:0", "-site", "0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.ObsAddr() != "" {
		t.Error("observability listener started without -obs-addr")
	}
}

func TestStartBadLogFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-addr", "127.0.0.1:0", "-log-level", "loud"},
		{"-addr", "127.0.0.1:0", "-log-format", "xml"},
	} {
		if srv, err := start(args); err == nil {
			srv.Close()
			t.Errorf("start(%v): expected error", args)
		}
	}
}
