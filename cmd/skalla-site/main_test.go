package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"skalla/internal/flow"
	"skalla/internal/gmdj"
	"skalla/internal/manifest"
	"skalla/internal/relation"
	"skalla/internal/transport"
)

// writeFlowDataset generates a tiny flow dataset directory.
func writeFlowDataset(t *testing.T, sites int) string {
	t.Helper()
	dir := t.TempDir()
	cfg := flow.Config{Rows: 200, Routers: sites, SourceAS: 8, DestAS: 4, Seed: 1}
	d, err := flow.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range d.Parts {
		path := manifest.SitePath(dir, i, flow.RelationName)
		if err := mkdirAndSave(path, part); err != nil {
			t.Fatal(err)
		}
	}
	m := manifest.Manifest{Kind: manifest.KindFlow, NumSites: sites, Flow: &cfg}
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStartServesLoadedData(t *testing.T) {
	dir := writeFlowDataset(t, 2)
	srv, err := start([]string{"-addr", "127.0.0.1:0", "-site", "1", "-data", dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.ID() != 1 {
		t.Errorf("site ID = %d", cli.ID())
	}
	b, _, err := cli.EvalBase(context.Background(), gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SourceAS"}})
	if err != nil || b.Len() == 0 {
		t.Errorf("loaded data not queryable: %v %v", b, err)
	}
}

func TestStartEmptySite(t *testing.T) {
	srv, err := start([]string{"-addr", "127.0.0.1:0", "-site", "0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.DetailSchema(context.Background(), "Flow"); err == nil {
		t.Error("empty site must have no relations")
	}
}

func TestStartErrors(t *testing.T) {
	dir := writeFlowDataset(t, 2)
	cases := [][]string{
		{"-data", "/nonexistent/dir", "-addr", "127.0.0.1:0"},
		{"-data", dir, "-site", "9", "-addr", "127.0.0.1:0"},
		{"-data", dir, "-site", "-1", "-addr", "127.0.0.1:0"},
		{"-addr", "256.0.0.1:99999"},
		{"-bogus"},
	}
	for _, args := range cases {
		srv, err := start(args)
		if err == nil {
			srv.Close()
			t.Errorf("start(%v): expected error", args)
		}
	}
}

func mkdirAndSave(path string, rel *relation.Relation) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return rel.SaveGobFile(path)
}

func TestStartDiskBacked(t *testing.T) {
	dir := writeFlowDataset(t, 2)
	// First start converts to segments; second start reopens them.
	for pass := 0; pass < 2; pass++ {
		srv, err := start([]string{"-addr", "127.0.0.1:0", "-site", "0", "-data", dir, "-disk"})
		if err != nil {
			t.Fatal(err)
		}
		cli, err := transport.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := cli.EvalBase(context.Background(), gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SourceAS"}})
		if err != nil || b.Len() == 0 {
			t.Errorf("pass %d: disk-backed site not queryable: %v %v", pass, b, err)
		}
		cli.Close()
		srv.Close()
	}
	// The store directory exists beside the gob partition.
	if _, err := os.Stat(filepath.Join(dir, "site00", "Flow.store", "table.json")); err != nil {
		t.Errorf("store dir missing: %v", err)
	}
}
