// Command skalla-site runs one Skalla local warehouse site: it loads the
// site's partition of a generated dataset (see tpcgen) and serves the site
// protocol over TCP for a skalla-coordinator to drive.
//
// Usage:
//
//	skalla-site -addr :7070 -site 0 -data /data/tpcr
//
// Without -data the site starts empty; a coordinator (or test tool) can push
// partitions over the wire.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"skalla/internal/engine"
	"skalla/internal/manifest"
	"skalla/internal/relation"
	"skalla/internal/store"
	"skalla/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skalla-site:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, err := start(args)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("shutting down")
	return srv.Close()
}

// start parses flags, loads the site's partition, and begins serving; it
// returns the running server (run waits on it until a signal arrives).
func start(args []string) (*transport.Server, error) {
	fs := flag.NewFlagSet("skalla-site", flag.ContinueOnError)
	var (
		addr = fs.String("addr", ":7070", "listen address")
		site = fs.Int("site", 0, "site index within the dataset")
		data = fs.String("data", "", "dataset directory written by tpcgen (optional)")
		disk = fs.Bool("disk", false, "serve the partition from a disk-backed segment store (bounded memory) instead of loading it into RAM")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	es := engine.NewSite(*site)
	if *data != "" {
		m, err := manifest.Load(*data)
		if err != nil {
			return nil, err
		}
		if *site < 0 || *site >= m.NumSites {
			return nil, fmt.Errorf("site %d out of range (dataset has %d sites)", *site, m.NumSites)
		}
		relName, err := m.RelationName()
		if err != nil {
			return nil, err
		}
		gobPath := manifest.SitePath(*data, *site, relName)
		if *disk {
			storeDir := strings.TrimSuffix(gobPath, ".gob") + ".store"
			tbl, err := store.Open(storeDir)
			if err != nil {
				// First run: convert the gob partition into segments once.
				part, lerr := relation.LoadGobFile(gobPath)
				if lerr != nil {
					return nil, lerr
				}
				tbl, err = store.CreateFrom(storeDir, relName, part, store.DefaultSegmentRows)
				if err != nil {
					return nil, err
				}
				fmt.Printf("site %d: converted %s to %d disk segment(s)\n", *site, relName, tbl.NumSegments())
			}
			if err := es.LoadSource(relName, tbl); err != nil {
				return nil, err
			}
			fmt.Printf("site %d: serving %s from disk (%d rows, %d segments)\n",
				*site, relName, tbl.Len(), tbl.NumSegments())
		} else {
			part, err := relation.LoadGobFile(gobPath)
			if err != nil {
				return nil, err
			}
			if err := es.Load(relName, part); err != nil {
				return nil, err
			}
			fmt.Printf("site %d: loaded %s (%d rows)\n", *site, relName, part.Len())
		}
	}

	srv, err := transport.Serve(es, *addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("site %d: serving on %s\n", *site, srv.Addr())
	return srv, nil
}
