// Command skalla-site runs one Skalla local warehouse site: it loads the
// site's partition of a generated dataset (see tpcgen) and serves the site
// protocol over TCP for a skalla-coordinator to drive.
//
// Usage:
//
//	skalla-site -addr :7070 -site 0 -data /data/tpcr
//
// Without -data the site starts empty; a coordinator (or test tool) can push
// partitions over the wire. -obs-addr starts the observability listener
// (/metrics, /healthz, /debug/pprof/); /healthz reports ready only once the
// partition is loaded and the site listener is up.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"skalla/internal/engine"
	"skalla/internal/manifest"
	"skalla/internal/obs"
	"skalla/internal/relation"
	"skalla/internal/store"
	"skalla/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skalla-site:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	srv, err := start(args)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	srv.log.Info("shutting down")
	return srv.Close()
}

// siteProc bundles the running site server with its optional observability
// listener so run (and the tests) manage them as one unit.
type siteProc struct {
	srv    *transport.Server
	obsSrv *obs.HTTPServer
	health *obs.Health
	log    *slog.Logger
}

// Addr returns the site protocol listen address.
func (p *siteProc) Addr() string { return p.srv.Addr() }

// ObsAddr returns the observability listen address ("" when disabled).
func (p *siteProc) ObsAddr() string {
	if p.obsSrv == nil {
		return ""
	}
	return p.obsSrv.Addr()
}

// Close stops the site server and the observability listener.
func (p *siteProc) Close() error {
	p.health.Set("listener", false)
	err := p.srv.Close()
	if p.obsSrv != nil {
		p.obsSrv.Close()
	}
	return err
}

// start parses flags, loads the site's partition, and begins serving; it
// returns the running process handle (run waits on it until a signal arrives).
func start(args []string) (*siteProc, error) {
	fs := flag.NewFlagSet("skalla-site", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":7070", "listen address")
		site      = fs.Int("site", 0, "site index within the dataset")
		data      = fs.String("data", "", "dataset directory written by tpcgen (optional)")
		disk      = fs.Bool("disk", false, "serve the partition from a disk-backed segment store (bounded memory) instead of loading it into RAM")
		workers   = fs.Int("workers", 0, "evaluation workers per query: 0 = auto (GOMAXPROCS-sized), 1 = sequential")
		obsAddr   = fs.String("obs-addr", "", "observability listen address for /metrics, /healthz and /debug/pprof (empty = disabled)")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = fs.String("log-format", "text", "log format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *logFormat != "text" && *logFormat != "json" {
		return nil, fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	logger, err := obs.SetupLogger("skalla-site", *logLevel, *logFormat == "json", os.Stderr)
	if err != nil {
		return nil, err
	}
	log := logger.With("site", *site)
	obs.RegisterBuildInfo()

	health := obs.NewHealth()
	health.Register("partition")
	health.Register("listener")
	var obsSrv *obs.HTTPServer
	if *obsAddr != "" {
		obsSrv, err = obs.ServeHTTP(*obsAddr, nil, health, nil, log)
		if err != nil {
			return nil, err
		}
	}
	// On any later startup failure, shut the observability listener down too.
	fail := func(err error) (*siteProc, error) {
		if obsSrv != nil {
			obsSrv.Close()
		}
		return nil, err
	}

	es := engine.NewSite(*site)
	es.SetWorkers(*workers)
	health.SetInfo("tables", func() any { return len(es.Tables(context.Background())) })
	if *data != "" {
		m, err := manifest.Load(*data)
		if err != nil {
			return fail(err)
		}
		if *site < 0 || *site >= m.NumSites {
			return fail(fmt.Errorf("site %d out of range (dataset has %d sites)", *site, m.NumSites))
		}
		relName, err := m.RelationName()
		if err != nil {
			return fail(err)
		}
		gobPath := manifest.SitePath(*data, *site, relName)
		if *disk {
			storeDir := strings.TrimSuffix(gobPath, ".gob") + ".store"
			tbl, err := store.Open(storeDir)
			if err != nil {
				// First run: convert the gob partition into segments once.
				part, lerr := relation.LoadGobFile(gobPath)
				if lerr != nil {
					return fail(lerr)
				}
				tbl, err = store.CreateFrom(storeDir, relName, part, store.DefaultSegmentRows)
				if err != nil {
					return fail(err)
				}
				log.Info("converted partition to disk segments", "relation", relName, "segments", tbl.NumSegments())
			}
			if err := es.LoadSource(relName, tbl); err != nil {
				return fail(err)
			}
			log.Info("serving partition from disk", "relation", relName, "rows", tbl.Len(), "segments", tbl.NumSegments())
		} else {
			part, err := relation.LoadGobFile(gobPath)
			if err != nil {
				return fail(err)
			}
			if err := es.Load(context.Background(), relName, part); err != nil {
				return fail(err)
			}
			log.Info("loaded partition", "relation", relName, "rows", part.Len())
		}
	}
	health.Set("partition", true)

	srv, err := transport.Serve(es, *addr)
	if err != nil {
		return fail(err)
	}
	health.Set("listener", true)
	log.Info("serving", "addr", srv.Addr())
	return &siteProc{srv: srv, obsSrv: obsSrv, health: health, log: log}, nil
}
