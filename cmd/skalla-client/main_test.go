package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"skalla"
	"skalla/internal/flow"
)

func startServer(t *testing.T) string {
	t.Helper()
	cluster, err := skalla.NewLocalCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	d, err := flow.Generate(flow.Config{Rows: 200, Routers: 2, SourceAS: 6, DestAS: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.LoadPartitions(context.Background(), flow.RelationName, d.Parts); err != nil {
		t.Fatal(err)
	}
	srv, err := skalla.Serve(cluster, "127.0.0.1:0", skalla.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

func TestClientQueries(t *testing.T) {
	addr := startServer(t)
	var out bytes.Buffer
	stmt := "SELECT SourceAS, COUNT(*) AS flows FROM Flow GROUP BY SourceAS"
	if err := run([]string{"-addr", addr, "-q", stmt, "-q", stmt}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "group(s):") || !strings.Contains(s, "flows") {
		t.Errorf("output missing result table:\n%s", s)
	}
	// The repeated statement on the same session reuses the prepared plan.
	if !strings.Contains(s, "plan cache hit") {
		t.Errorf("second run should report a plan cache hit:\n%s", s)
	}
	if !strings.Contains(s, "query s") {
		t.Errorf("stats line missing the session query ID:\n%s", s)
	}
}

func TestClientStatementError(t *testing.T) {
	addr := startServer(t)
	var out bytes.Buffer
	err := run([]string{"-addr", addr, "-q", "bogus statement"}, &out)
	if err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("bogus statement error = %v, want parse code", err)
	}
}

func TestClientFlagErrors(t *testing.T) {
	cases := [][]string{
		{},             // missing addr
		{"-addr", "x"}, // missing statement
		{"-addr", "x", "-q", "s", "-max-rows", "-1"},
		{"-addr", "x", "-q", "s", "-timeout", "-1s"},
		{"-addr", "x", "-query", "/nope/q.skalla"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
