// Command skalla-client submits statements to a skalla-coordinator running
// in -serve mode and prints the result rows plus execution stats.
//
// Usage:
//
//	skalla-client -addr host:7474 -q 'SELECT SourceAS, COUNT(*) AS c FROM Flow GROUP BY SourceAS'
//	skalla-client -addr host:7474 -query q.skalla -max-rows 50
//
// Statements are Egil SQL (SELECT ...) or the skalla query text format. One
// invocation is one session; repeat -q to run several statements on it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"skalla"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skalla-client:", err)
		os.Exit(1)
	}
}

type repeatedFlag []string

func (r *repeatedFlag) String() string { return fmt.Sprint([]string(*r)) }
func (r *repeatedFlag) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skalla-client", flag.ContinueOnError)
	var stmts repeatedFlag
	fs.Var(&stmts, "q", "statement to run (repeatable; SQL or skalla query text)")
	var (
		addr      = fs.String("addr", "", "query server address (required; see skalla-coordinator -serve)")
		queryFile = fs.String("query", "", "statement file (alternative to -q)")
		maxRows   = fs.Int("max-rows", 20, "result rows to print")
		timeout   = fs.Duration("timeout", 0, "per-statement deadline (0 = none)")
		quiet     = fs.Bool("quiet", false, "print only the result rows, no stats line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *maxRows < 0 {
		return fmt.Errorf("-max-rows must be 0 or positive")
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be 0 (none) or positive")
	}
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		stmts = append(stmts, string(b))
	}
	if len(stmts) == 0 {
		return fmt.Errorf("provide at least one statement with -q or -query")
	}

	client, err := skalla.DialQueryServer(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	for _, stmt := range stmts {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		rel, info, err := client.Query(ctx, stmt)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d group(s):\n%s", rel.Len(), rel.Format(*maxRows))
		if !*quiet {
			fmt.Fprintf(out, "query %s: %s elapsed", info.QueryID, time.Duration(info.ElapsedNS))
			if info.QueueNS > 0 {
				fmt.Fprintf(out, ", %s queued", time.Duration(info.QueueNS))
			}
			if info.CacheHit {
				fmt.Fprint(out, ", plan cache hit")
			}
			fmt.Fprintln(out)
		}
	}
	return nil
}
