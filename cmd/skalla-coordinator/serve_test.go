package main

import (
	"bytes"
	"context"
	"errors"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"skalla"
)

// syncBuffer is a bytes.Buffer safe for the serve goroutine to write while
// the test polls it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var servingAddr = regexp.MustCompile(`serving on (\S+)`)

// TestCoordinatorServeMode drives the daemon end to end through the CLI
// entrypoint: start -serve on an ephemeral port, run statements over two
// concurrent client sessions (the second repeats the first's statement, so it
// must hit the plan cache), then deliver SIGINT and check the drain exits the
// run cleanly.
func TestCoordinatorServeMode(t *testing.T) {
	dir, sites := startCluster(t)
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-sites", sites, "-data", dir, "-serve", "127.0.0.1:0",
			"-max-concurrent", "4", "-site-timeout", "10s",
		}, &out)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := servingAddr.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no serving banner:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Warm the plan cache with one cold execution, then hit it from two
	// concurrent sessions.
	const stmt = "SELECT SourceAS, COUNT(*) AS flows FROM Flow GROUP BY SourceAS"
	warm, err := skalla.DialQueryServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	rel, info, err := warm.Query(context.Background(), stmt)
	warm.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 || info.CacheHit {
		t.Fatalf("cold execution: rows=%d info=%+v", rel.Len(), info)
	}

	var wg sync.WaitGroup
	results := make([]*skalla.QueryResultInfo, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := skalla.DialQueryServer(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rel, info, err := c.Query(context.Background(), stmt)
			if err != nil {
				t.Error(err)
				return
			}
			if rel.Len() == 0 {
				t.Error("empty result")
			}
			results[i] = info
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	ids := map[string]bool{info.QueryID: true}
	for _, r := range results {
		if !r.CacheHit {
			t.Errorf("warmed statement compiled cold: %+v", r)
		}
		ids[r.QueryID] = true
	}
	if len(ids) != 3 || !strings.HasPrefix(results[0].QueryID, "s") {
		t.Errorf("session query IDs = %v", ids)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGINT")
	}
	// The listener is gone after shutdown.
	if _, err := skalla.DialQueryServer(addr); err == nil {
		t.Error("dial succeeded after shutdown")
	}
}

// TestCoordinatorServeRejectsOverBudget starts the daemon with an absurdly
// small -query-mem-budget and checks a statement fails with the typed wire
// code while the daemon itself stays healthy through shutdown.
func TestCoordinatorServeRejectsOverBudget(t *testing.T) {
	dir, sites := startCluster(t)
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-sites", sites, "-data", dir, "-serve", "127.0.0.1:0",
			"-query-mem-budget", "64", "-site-timeout", "5s",
		}, &out)
	}()
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := servingAddr.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no serving banner:\n%s", out.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	c, err := skalla.DialQueryServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Query(context.Background(), "SELECT SourceAS, COUNT(*) AS flows FROM Flow GROUP BY SourceAS")
	var qe *skalla.QueryError
	if !errors.As(err, &qe) || qe.Code != "mem_budget" {
		t.Fatalf("64-byte budget query error = %v, want code mem_budget", err)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}
