package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"

	"skalla"
	"skalla/internal/egil"
)

// repl drives an interactive session against a connected cluster.
// Statements end with ';' and may span lines. Statements beginning with
// SELECT use the Egil SQL dialect (including ORDER BY / LIMIT); anything
// else is parsed as the skalla query text format. Backslash commands:
//
//	\opts <all|none|list>   set optimization switches
//	\explain                toggle explain-only mode
//	\rows <n>               result rows to print
//	\sites                  list each site's relations and row counts
//	\q                      quit
func repl(cluster *skalla.Cluster, in io.Reader, out io.Writer, opts skalla.Options, maxRows int) error {
	ctx := context.Background()
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	explainOnly := false
	var buf strings.Builder

	fmt.Fprintf(out, "skalla> connected to %d site(s); statements end with ';', \\q quits\n", cluster.NumSites())
	prompt := func() { fmt.Fprint(out, "skalla> ") }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && trimmed == "" {
			continue // blank line between statements
		}
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			quit, err := replCommand(ctx, cluster, out, trimmed, &opts, &explainOnly, &maxRows)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			}
			if quit {
				return nil
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if stmt != "" {
			if err := replExecute(ctx, cluster, out, stmt, opts, explainOnly, maxRows); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			}
		}
		prompt()
	}
	return scanner.Err()
}

func replCommand(ctx context.Context, cluster *skalla.Cluster, out io.Writer, cmd string, opts *skalla.Options, explainOnly *bool, maxRows *int) (quit bool, err error) {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return true, nil
	case "\\sites":
		inv, err := cluster.Tables(ctx)
		if err != nil {
			return false, err
		}
		for i, tables := range inv {
			fmt.Fprintf(out, "site %d:\n", i)
			if len(tables) == 0 {
				fmt.Fprintln(out, "  (no relations)")
			}
			for _, ti := range tables {
				fmt.Fprintf(out, "  %-20s %8d rows  %d columns\n", ti.Name, ti.Rows, ti.Columns)
			}
		}
	case "\\opts":
		if len(fields) != 2 {
			return false, fmt.Errorf("usage: \\opts <all|none|comma-list>")
		}
		o, err := parseOpts(fields[1])
		if err != nil {
			return false, err
		}
		*opts = o
		fmt.Fprintf(out, "optimizations: [%s]\n", o)
	case "\\explain":
		*explainOnly = !*explainOnly
		fmt.Fprintf(out, "explain-only: %v\n", *explainOnly)
	case "\\rows":
		if len(fields) != 2 {
			return false, fmt.Errorf("usage: \\rows <n>")
		}
		if _, err := fmt.Sscanf(fields[1], "%d", maxRows); err != nil {
			return false, err
		}
	case "\\help":
		fmt.Fprintln(out, "commands: \\opts <o>, \\explain, \\rows <n>, \\sites, \\q")
	default:
		return false, fmt.Errorf("unknown command %q (try \\help)", fields[0])
	}
	return false, nil
}

func replExecute(ctx context.Context, cluster *skalla.Cluster, out io.Writer, stmt string, opts skalla.Options, explainOnly bool, maxRows int) error {
	var (
		q    skalla.Query
		post *egil.Statement
		err  error
	)
	if strings.EqualFold(firstWord(stmt), "select") {
		post, err = egil.ParseStatement(stmt)
		if err != nil {
			return err
		}
		q, err = post.ToQuery()
	} else {
		q, err = skalla.ParseQueryText(stmt)
	}
	if err != nil {
		return err
	}
	if explainOnly {
		desc, err := cluster.Explain(ctx, q, opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, desc)
		return nil
	}
	res, err := cluster.Execute(ctx, q, opts)
	if err != nil {
		return err
	}
	if post != nil {
		if err := post.Postprocess(res.Rel); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "%d group(s)\n%s", res.Rel.Len(), res.Rel.Format(maxRows))
	fmt.Fprintf(out, "%d round(s), %d bytes, response %s\n",
		res.Metrics.NumRounds(), res.Metrics.TotalBytes(), res.Metrics.ResponseTime())
	return nil
}

func firstWord(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}
