package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skalla/internal/engine"
	"skalla/internal/flow"
	"skalla/internal/manifest"
	"skalla/internal/transport"
)

// startCluster serves a generated flow dataset on two ephemeral TCP ports
// and returns the dataset directory and the joined site address list.
func startCluster(t *testing.T) (dir, sites string) {
	t.Helper()
	dir = t.TempDir()
	cfg := flow.Config{Rows: 400, Routers: 2, SourceAS: 10, DestAS: 4, Seed: 2}
	d, err := flow.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := manifest.Manifest{Kind: manifest.KindFlow, NumSites: 2, Flow: &cfg}
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i, part := range d.Parts {
		es := engine.NewSite(i)
		if err := es.Load(context.Background(), flow.RelationName, part); err != nil {
			t.Fatal(err)
		}
		srv, err := transport.Serve(es, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr())
	}
	return dir, strings.Join(addrs, ",")
}

const testQuery = `
base Flow key SourceAS
op B.SourceAS = R.SourceAS :: count(*) as flows, avg(NumBytes) as avgBytes
op B.SourceAS = R.SourceAS && R.NumBytes >= B.avgBytes :: count(*) as big
`

func TestCoordinatorExecutes(t *testing.T) {
	dir, sites := startCluster(t)
	var out bytes.Buffer
	err := run([]string{
		"-sites", sites, "-data", dir, "-q", testQuery, "-opts", "all", "-net", "lan",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"group(s):", "flows", "avgBytes", "plan ", "rounds: 1", "total:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
}

func TestCoordinatorExplain(t *testing.T) {
	dir, sites := startCluster(t)
	var out bytes.Buffer
	err := run([]string{
		"-sites", sites, "-data", dir, "-q", testQuery, "-opts", "sync", "-explain",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "full local evaluation") {
		t.Errorf("explain output:\n%s", out.String())
	}
	// No result table in explain mode.
	if strings.Contains(out.String(), "group(s):") {
		t.Error("explain must not execute")
	}
}

func TestCoordinatorQueryFile(t *testing.T) {
	dir, sites := startCluster(t)
	qf := filepath.Join(t.TempDir(), "q.skalla")
	if err := os.WriteFile(qf, []byte(testQuery), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-sites", sites, "-data", dir, "-query", qf, "-opts", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rounds: 3") {
		t.Errorf("baseline should use 3 rounds:\n%s", out.String())
	}
}

func TestCoordinatorErrors(t *testing.T) {
	dir, sites := startCluster(t)
	var out bytes.Buffer
	cases := [][]string{
		{},                               // missing sites
		{"-sites", sites},                // missing query
		{"-sites", sites, "-q", "bogus"}, // bad query text
		{"-sites", sites, "-q", testQuery, "-opts", "frob"},                          // bad opts
		{"-sites", sites, "-q", testQuery, "-data", "/nope"},                         // bad data dir
		{"-sites", "127.0.0.1:1", "-q", testQuery},                                   // unreachable site
		{"-sites", sites, "-query", "/nope/q.skalla"},                                // missing file
		{"-sites", sites, "-q", "base Missing key x\nop B.x = R.x :: count(*) as c"}, // unknown relation
	}
	_ = dir
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

// Conflicting modes and out-of-domain flag values must fail fast, before any
// site is dialed (the bogus -sites value would hang a dial). -q/-query/-sql
// with -repl used to be silently ignored; they are flag errors now.
func TestFlagConflictsAndDomains(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"repl with -q", []string{"-sites", "x", "-repl", "-q", testQuery}},
		{"repl with -query", []string{"-sites", "x", "-repl", "-query", "q.skalla"}},
		{"repl with -sql", []string{"-sites", "x", "-repl", "-sql", "SELECT 1"}},
		{"repl with -explain", []string{"-sites", "x", "-repl", "-explain"}},
		{"serve with -repl", []string{"-sites", "x", "-serve", ":0", "-repl"}},
		{"serve with -q", []string{"-sites", "x", "-serve", ":0", "-q", testQuery}},
		{"serve with -sql", []string{"-sites", "x", "-serve", ":0", "-sql", "SELECT 1"}},
		{"serve with -explain", []string{"-sites", "x", "-serve", ":0", "-explain"}},
		{"negative workers", []string{"-sites", "x", "-q", testQuery, "-workers", "-1"}},
		{"negative block-rows", []string{"-sites", "x", "-q", testQuery, "-block-rows", "-1"}},
		{"negative max-rows", []string{"-sites", "x", "-q", testQuery, "-max-rows", "-1"}},
		{"zero site-retries", []string{"-sites", "x", "-q", testQuery, "-site-retries", "0"}},
		{"negative site-retries", []string{"-sites", "x", "-q", testQuery, "-site-retries", "-2"}},
		{"negative site-timeout", []string{"-sites", "x", "-q", testQuery, "-site-timeout", "-1s"}},
		{"negative slow-query", []string{"-sites", "x", "-q", testQuery, "-slow-query", "-1s"}},
		{"negative max-concurrent", []string{"-sites", "x", "-serve", ":0", "-max-concurrent", "-1"}},
		{"negative plan-cache", []string{"-sites", "x", "-serve", ":0", "-plan-cache", "-1"}},
		{"negative query-mem-budget", []string{"-sites", "x", "-serve", ":0", "-query-mem-budget", "-1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err == nil {
				t.Errorf("run(%v): expected flag error", tc.args)
			}
		})
	}
}

func TestParseOpts(t *testing.T) {
	o, err := parseOpts("coalesce,group-site")
	if err != nil || !o.Coalesce || !o.GroupReduceSite || o.SyncReduce {
		t.Errorf("parseOpts = %+v, %v", o, err)
	}
	if _, err := parseOpts("nope"); err == nil {
		t.Error("unknown switch must error")
	}
	all, _ := parseOpts("all")
	if !all.Coalesce || !all.SyncReduce || !all.GroupReduceCoord || !all.GroupReduceSite {
		t.Error("all must enable everything")
	}
	none, _ := parseOpts("none")
	if none.Coalesce || none.SyncReduce {
		t.Error("none must disable everything")
	}
	gc, _ := parseOpts("group-coord,sync")
	if !gc.GroupReduceCoord || !gc.SyncReduce || gc.Coalesce {
		t.Error("comma list parsing")
	}
}

func TestCoordinatorSQLWithOrderLimit(t *testing.T) {
	dir, sites := startCluster(t)
	var out bytes.Buffer
	err := run([]string{
		"-sites", sites, "-data", dir,
		"-sql", "SELECT SourceAS, COUNT(*) AS flows FROM Flow GROUP BY SourceAS ORDER BY flows DESC LIMIT 3",
		"-opts", "all",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "3 group(s)") {
		t.Errorf("LIMIT 3 not applied:\n%s", s)
	}
	// Descending: first data line has the max count.
	lines := strings.Split(s, "\n")
	var counts []int
	for _, ln := range lines {
		var as, c int
		if n, _ := fmt.Sscanf(ln, "%d %d", &as, &c); n == 2 {
			counts = append(counts, c)
		}
	}
	if len(counts) != 3 || counts[0] < counts[1] || counts[1] < counts[2] {
		t.Errorf("not descending: %v\n%s", counts, s)
	}
}

func TestCoordinatorStatsJSON(t *testing.T) {
	dir, sites := startCluster(t)
	path := filepath.Join(t.TempDir(), "stats.json")
	var out bytes.Buffer
	err := run([]string{
		"-sites", sites, "-data", dir, "-q", testQuery, "-opts", "none", "-stats-json", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	rounds, ok := m["Rounds"].([]any)
	if !ok || len(rounds) != 3 {
		t.Errorf("stats JSON rounds = %v", m["Rounds"])
	}
}

// The -stats-json write is atomic: a failing run never truncates an existing
// stats file, and a successful run replaces it whole (no temp files left).
func TestCoordinatorStatsJSONAtomic(t *testing.T) {
	dir, sites := startCluster(t)
	tmp := t.TempDir()
	path := filepath.Join(tmp, "stats.json")
	if err := os.WriteFile(path, []byte("old-content"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A failing query must leave the previous stats file untouched.
	var out bytes.Buffer
	if err := run([]string{"-sites", sites, "-q", "bogus", "-stats-json", path}, &out); err == nil {
		t.Fatal("bogus query succeeded")
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "old-content" {
		t.Fatalf("failed run clobbered stats file: %q, %v", data, err)
	}

	// A successful run replaces it with valid JSON and cleans up its temp.
	if err := run([]string{"-sites", sites, "-data", dir, "-q", testQuery, "-stats-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("stats file is not JSON after rewrite: %v", err)
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "stats.json" {
			t.Errorf("leftover file %q next to stats.json", e.Name())
		}
	}

	// A stats path in a missing directory fails the run cleanly.
	bad := filepath.Join(tmp, "nope", "stats.json")
	if err := run([]string{"-sites", sites, "-data", dir, "-q", testQuery, "-stats-json", bad}, &out); err == nil {
		t.Error("missing stats directory: expected error")
	}
}

func TestCoordinatorTrace(t *testing.T) {
	dir, sites := startCluster(t)
	var out bytes.Buffer
	err := run([]string{
		"-sites", sites, "-data", dir, "-q", testQuery, "-opts", "none", "-trace",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"round base: start", "round MD2: done", "site 1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("trace missing %q:\n%s", frag, s)
		}
	}
}

// -plan-mode drives the Egil v2 selection path: auto compiles through the
// cost model, -explain prints the rule trace, and the -stats-json export
// gains the plan section with estimated-vs-actual bytes per round.
func TestCoordinatorPlanMode(t *testing.T) {
	dir, sites := startCluster(t)
	var out bytes.Buffer
	err := run([]string{
		"-sites", sites, "-data", dir, "-q", testQuery, "-plan-mode", "auto", "-explain",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"mode auto", "rule ", "estimated cost:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("explain output missing %q:\n%s", frag, s)
		}
	}

	path := filepath.Join(t.TempDir(), "stats.json")
	out.Reset()
	err = run([]string{
		"-sites", sites, "-data", dir, "-q", testQuery,
		"-plan-mode", "rules=local-prefix", "-stats-json", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var export struct {
		Plan struct {
			Fingerprint string   `json:"fingerprint"`
			Mode        string   `json:"mode"`
			Rules       []string `json:"rules"`
			Rounds      []struct {
				Name            string `json:"Name"`
				EstBytesUp      int64  `json:"EstBytesUp"`
				ActualBytesUp   int64  `json:"ActualBytesUp"`
				ActualBytesDown int64  `json:"ActualBytesDown"`
			} `json:"rounds"`
		} `json:"plan"`
	}
	if err := json.Unmarshal(data, &export); err != nil {
		t.Fatal(err)
	}
	p := export.Plan
	if p.Fingerprint == "" || len(p.Rules) != 1 || p.Rules[0] != "local-prefix" {
		t.Errorf("plan section = %+v", p)
	}
	if len(p.Rounds) != 1 || p.Rounds[0].EstBytesUp <= 0 || p.Rounds[0].ActualBytesUp <= 0 {
		t.Errorf("round comparison = %+v", p.Rounds)
	}

	// Bad selections fail before dialing any site.
	if err := run([]string{"-sites", sites, "-q", testQuery, "-plan-mode", "frob"}, &out); err == nil {
		t.Error("bad -plan-mode: expected error")
	}
}
