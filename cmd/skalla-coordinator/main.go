// Command skalla-coordinator connects to a set of Skalla sites, compiles an
// OLAP query (the text format of skalla.ParseQueryText) into a distributed
// GMDJ plan, executes it, and prints the result together with the per-round
// cost breakdown.
//
// Usage:
//
//	skalla-coordinator -sites host1:7070,host2:7070 -data /data/tpcr -query q.skalla
//	skalla-coordinator -sites :7070 -q 'base Flow key SourceAS
//	  op B.SourceAS = R.SourceAS :: count(*) as c' -opts all
//
// -data points at the dataset directory (for the manifest only; the sites
// hold the data) and enables the distribution-aware optimizations. -explain
// prints the plan without executing.
//
// With -serve the coordinator becomes a long-lived multi-tenant query server:
//
//	skalla-coordinator -sites host1:7070,host2:7070 -serve :7474 -obs-addr :9090
//
// Clients (skalla-client) submit statements over concurrent sessions;
// repeated statements reuse prepared plans, -max-concurrent bounds admission
// and -query-mem-budget bounds per-query coordinator memory. SIGINT/SIGTERM
// flips /healthz to unhealthy, drains in-flight queries (bounded by
// -site-timeout) and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"skalla"
	"skalla/internal/egil"
	"skalla/internal/manifest"
	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skalla-coordinator:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skalla-coordinator", flag.ContinueOnError)
	var (
		sitesFlag   = fs.String("sites", "", "comma-separated site addresses (required)")
		data        = fs.String("data", "", "dataset directory (manifest → distribution catalog)")
		queryFile   = fs.String("query", "", "query file in the skalla text format")
		queryText   = fs.String("q", "", "inline query text (alternative to -query)")
		sqlText     = fs.String("sql", "", "inline SQL-style OLAP statement (SELECT ... GROUP BY / CUBE BY ...)")
		blockRows   = fs.Int("block-rows", 0, "row blocking: sites return H in blocks of this many rows (0 = off)")
		siteRetries = fs.Int("site-retries", 3, "attempts per site call before the query fails (1 = no retry)")
		siteTimeout = fs.Duration("site-timeout", 30*time.Second, "per-attempt deadline for one site call (0 = none)")
		workers     = fs.Int("workers", 0, "concurrent per-site merge commits during synchronization: 0 = auto, 1 = serial")
		optsFlag    = fs.String("opts", "all", "optimizations: all, none, or a comma list of coalesce,group-site,group-coord,sync")
		planMode    = fs.String("plan-mode", "", "planner rule selection: auto, none, all, or rules=<name>,... (overrides -opts)")
		explain     = fs.Bool("explain", false, "print the plan without executing")
		replFlag    = fs.Bool("repl", false, "interactive mode: read statements from stdin")
		serveAddr   = fs.String("serve", "", "run as a long-lived query server on this address (host:port; :0 for ephemeral)")
		maxConc     = fs.Int("max-concurrent", 0, "serve mode: concurrently executing queries (0 = GOMAXPROCS)")
		memBudget   = fs.Int64("query-mem-budget", 0, "serve mode: per-query coordinator memory budget in bytes (0 = off)")
		planCache   = fs.Int("plan-cache", 0, "serve mode: prepared-plan cache capacity (0 = default)")
		resultCache = fs.Int("result-cache", 0, "serve mode: super-aggregate result cache capacity (0 = default, -1 = off)")
		batchWindow = fs.Duration("batch-window", 0, "serve mode: cross-query site-call batching window (0 = off)")
		netFlag     = fs.String("net", "none", "network model for response-time reporting: none or lan")
		maxRows     = fs.Int("max-rows", 20, "result rows to print")
		statsJSON   = fs.String("stats-json", "", "also write the execution metrics as JSON to this file")
		slowQuery   = fs.Duration("slow-query", 0, "log the full profile of queries slower than this (0 = off)")
		trace       = fs.Bool("trace", false, "stream per-round execution progress while the query runs")
		obsAddr     = fs.String("obs-addr", "", "observability listen address for /metrics, /healthz and /debug/pprof (empty = disabled)")
		logLevel    = fs.String("log-level", "warn", "log level: debug, info, warn or error")
		logFormat   = fs.String("log-format", "text", "log format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sitesFlag == "" {
		return fmt.Errorf("-sites is required")
	}
	for _, c := range []struct {
		flag string
		bad  bool
		want string
	}{
		{"-workers", *workers < 0, "0 (auto) or positive"},
		{"-block-rows", *blockRows < 0, "0 (off) or positive"},
		{"-max-rows", *maxRows < 0, "0 or positive"},
		{"-site-retries", *siteRetries < 1, "at least 1 (it counts attempts, not retries)"},
		{"-site-timeout", *siteTimeout < 0, "0 (none) or positive"},
		{"-slow-query", *slowQuery < 0, "0 (off) or positive"},
		{"-max-concurrent", *maxConc < 0, "0 (GOMAXPROCS) or positive"},
		{"-plan-cache", *planCache < 0, "0 (default) or positive"},
		{"-result-cache", *resultCache < -1, "0 (default), positive, or -1 (off)"},
		{"-batch-window", *batchWindow < 0, "0 (off) or positive"},
		{"-query-mem-budget", *memBudget < 0, "0 (off) or positive"},
	} {
		if c.bad {
			return fmt.Errorf("%s must be %s", c.flag, c.want)
		}
	}
	queryFlags := *queryFile != "" || *queryText != "" || *sqlText != ""
	switch {
	case *replFlag && queryFlags:
		return fmt.Errorf("-repl is interactive: it conflicts with -query/-q/-sql (submit the statement in the session instead)")
	case *replFlag && *explain:
		return fmt.Errorf("-repl conflicts with -explain (toggle \\explain inside the session instead)")
	case *serveAddr != "" && *replFlag:
		return fmt.Errorf("-serve conflicts with -repl")
	case *serveAddr != "" && queryFlags:
		return fmt.Errorf("-serve is a daemon mode: it conflicts with -query/-q/-sql (submit statements with skalla-client instead)")
	case *serveAddr != "" && *explain:
		return fmt.Errorf("-serve conflicts with -explain")
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	if _, err := obs.SetupLogger("skalla-coordinator", *logLevel, *logFormat == "json", os.Stderr); err != nil {
		return err
	}
	obs.RegisterBuildInfo()
	health := obs.NewHealth()
	health.Register("sites")
	if *serveAddr != "" {
		// Registered (and false) from the start: /healthz reports 503 until
		// the server is accepting, and again as soon as shutdown begins.
		health.Register("serving")
	}
	if *obsAddr != "" {
		obsSrv, err := obs.ServeHTTP(*obsAddr, nil, health, nil, nil)
		if err != nil {
			return err
		}
		defer obsSrv.Close()
	}
	text := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		text = string(b)
	}
	var q skalla.Query
	var post *egil.Statement
	var err error
	switch {
	case *replFlag, *serveAddr != "":
		// Interactive and daemon modes take statements from their sessions;
		// the conflict checks above already rejected any query flags.
	case *sqlText != "" && text != "":
		return fmt.Errorf("provide either -sql or -query/-q, not both")
	case *sqlText != "":
		post, err = egil.ParseStatement(*sqlText)
		if err == nil {
			q, err = post.ToQuery()
		}
	case text != "":
		q, err = skalla.ParseQueryText(text)
	default:
		return fmt.Errorf("provide a query with -query, -q or -sql (or use -repl / -serve)")
	}
	if err != nil {
		return err
	}
	opts, err := parseOpts(*optsFlag)
	if err != nil {
		return err
	}
	if *planMode != "" {
		if _, err := skalla.ParseSelection(*planMode); err != nil {
			return err
		}
	}

	addrs := strings.Split(*sitesFlag, ",")
	retry := skalla.DefaultRetryPolicy()
	retry.MaxAttempts = *siteRetries
	retry.CallTimeout = *siteTimeout
	clusterOpts := []skalla.ClusterOption{
		skalla.WithRowBlocking(*blockRows),
		skalla.WithSiteRetry(retry),
		skalla.WithWorkers(*workers),
		skalla.WithSlowQuery(*slowQuery),
	}
	if *trace {
		clusterOpts = append(clusterOpts, skalla.WithTrace(out))
	}
	if *planMode != "" {
		clusterOpts = append(clusterOpts, skalla.WithPlanMode(*planMode))
	}
	var cat *skalla.Catalog
	if *data != "" {
		m, err := manifest.Load(*data)
		if err != nil {
			return err
		}
		cat, err = m.Catalog(len(addrs))
		if err != nil {
			return err
		}
		clusterOpts = append(clusterOpts, skalla.WithCatalog(cat))
	}
	// Gen is nil-safe: without -data the /healthz info reports generation 0.
	health.SetInfo("catalog_generation", func() any { return cat.Gen() })
	if *netFlag == "lan" {
		clusterOpts = append(clusterOpts, skalla.WithNetModel(stats.DefaultLAN()))
	}

	cluster, err := skalla.Connect(addrs, clusterOpts...)
	if err != nil {
		return err
	}
	defer cluster.Close()
	health.Set("sites", true)

	if *serveAddr != "" {
		return serve(cluster, health, out, *serveAddr, skalla.ServerOptions{
			MaxConcurrent:   *maxConc,
			PlanCacheSize:   *planCache,
			ResultCacheSize: *resultCache,
			BatchWindow:     *batchWindow,
			QueryMemBudget:  *memBudget,
		}, *siteTimeout)
	}

	if *replFlag {
		return repl(cluster, os.Stdin, out, opts, *maxRows)
	}

	ctx := context.Background()
	if *explain {
		var desc string
		if *planMode != "" {
			desc, err = cluster.ExplainSelected(ctx, q)
		} else {
			desc, err = cluster.Explain(ctx, q, opts)
		}
		if err != nil {
			return err
		}
		fmt.Fprint(out, desc)
		return nil
	}
	var res *skalla.Result
	if *planMode != "" {
		res, err = cluster.ExecuteSelected(ctx, q)
	} else {
		res, err = cluster.Execute(ctx, q, opts)
	}
	if err != nil {
		return err
	}
	if post != nil {
		// Client-side ORDER BY / LIMIT of the SQL dialect.
		if err := post.Postprocess(res.Rel); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "%d group(s):\n%s\n", res.Rel.Len(), res.Rel.Format(*maxRows))
	fmt.Fprint(out, res.Plan.Describe())
	fmt.Fprint(out, res.Metrics.String())
	if *statsJSON != "" {
		// The export carries the raw metrics plus the percentile summaries
		// (per-call site compute and bytes, per-round sync-merge time) and
		// the plan's identity with estimated-vs-actual bytes per round.
		export := struct {
			*stats.Metrics
			Summary stats.Summary `json:"summary"`
			Plan    planStats     `json:"plan"`
		}{res.Metrics, res.Metrics.Summary(), planStats{
			Fingerprint: res.Plan.Fingerprint,
			Mode:        res.Plan.Mode,
			Rules:       res.Plan.Rules,
			EstRounds:   res.Plan.Estimate.Rounds,
			EstBytes:    res.Plan.Estimate.TotalBytes(),
			Rounds:      res.Plan.CompareRounds(res.Metrics),
		}}
		data, err := json.MarshalIndent(export, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFileAtomic(*statsJSON, append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// serve runs the coordinator as a long-lived multi-tenant query server until
// SIGINT/SIGTERM. Shutdown ordering: /healthz flips unhealthy first (load
// balancers stop routing), then in-flight statements drain — bounded by
// drainTimeout (0 = unbounded) — then listeners and site connections close.
func serve(cluster *skalla.Cluster, health *obs.Health, out io.Writer, addr string, opts skalla.ServerOptions, drainTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv, err := skalla.Serve(cluster, addr, opts)
	if err != nil {
		return err
	}
	health.Set("serving", true)
	fmt.Fprintf(out, "serving on %s\n", srv.Addr())
	<-ctx.Done()
	stop() // a second signal during the drain kills the process the default way
	health.Set("serving", false)
	obs.Logger().Info("draining", "timeout", drainTimeout)
	drainCtx := context.Background()
	if drainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(drainCtx, drainTimeout)
		defer cancel()
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain cut short after %s: %w", drainTimeout, err)
	}
	return nil
}

// writeFileAtomic writes data to path via a temp file in the same directory
// plus rename, so a crash or write failure never leaves a truncated file at
// path (and readers always see either the old or the new content).
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return nil
}

// planStats is the plan section of the -stats-json export: the compiled
// plan's identity plus the cost model's per-round estimates joined with the
// measured bytes.
type planStats struct {
	Fingerprint string           `json:"fingerprint"`
	Mode        string           `json:"mode"`
	Rules       []string         `json:"rules"`
	EstRounds   int              `json:"est_rounds"`
	EstBytes    int64            `json:"est_bytes"`
	Rounds      []plan.RoundCost `json:"rounds"`
}

func parseOpts(s string) (skalla.Options, error) {
	switch s {
	case "all":
		return plan.All(), nil
	case "none", "":
		return plan.None(), nil
	}
	var o skalla.Options
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "coalesce":
			o.Coalesce = true
		case "group-site":
			o.GroupReduceSite = true
		case "group-coord":
			o.GroupReduceCoord = true
		case "sync":
			o.SyncReduce = true
		default:
			return o, fmt.Errorf("unknown optimization %q", part)
		}
	}
	return o, nil
}
