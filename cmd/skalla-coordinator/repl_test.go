package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"skalla"
	"skalla/internal/flow"
	"skalla/internal/plan"
)

func replCluster(t *testing.T) *skalla.Cluster {
	t.Helper()
	d, err := flow.Generate(flow.Config{Rows: 300, Routers: 2, SourceAS: 8, DestAS: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := skalla.NewLocalCluster(2, skalla.WithCatalog(d.Catalog()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.LoadPartitions(context.Background(), "Flow", d.Parts); err != nil {
		t.Fatal(err)
	}
	return cl
}

func runRepl(t *testing.T, input string) string {
	t.Helper()
	cl := replCluster(t)
	var out bytes.Buffer
	if err := repl(cl, strings.NewReader(input), &out, plan.All(), 5); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestReplSQLStatement(t *testing.T) {
	out := runRepl(t, `
SELECT SourceAS, COUNT(*) AS n FROM Flow
GROUP BY SourceAS ORDER BY n DESC LIMIT 3;
\q
`)
	for _, frag := range []string{"group(s)", "SourceAS", "round(s)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	// LIMIT applies: at most 3 data rows plus truncation marker absent.
	if strings.Contains(out, "more rows") {
		t.Errorf("LIMIT 3 with \\rows 5 should print all rows:\n%s", out)
	}
}

func TestReplTextStatement(t *testing.T) {
	out := runRepl(t, `
base Flow key SourceAS
op B.SourceAS = R.SourceAS :: count(*) as c;
\q
`)
	if !strings.Contains(out, "group(s)") {
		t.Errorf("text statement failed:\n%s", out)
	}
}

func TestReplCommands(t *testing.T) {
	out := runRepl(t, `
\opts none
\explain
SELECT SourceAS, COUNT(*) AS n FROM Flow GROUP BY SourceAS;
\help
\q
`)
	for _, frag := range []string{"optimizations: [none]", "explain-only: true", "plan ", "commands:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	// Explain-only mode must not print result groups.
	if strings.Contains(out, "group(s)") {
		t.Errorf("explain mode executed the query:\n%s", out)
	}
}

func TestReplErrorsKeepSessionAlive(t *testing.T) {
	out := runRepl(t, `
\opts bogus
\unknown
not a valid statement;
SELECT SourceAS, COUNT(*) AS n FROM Flow GROUP BY SourceAS;
\q
`)
	if strings.Count(out, "error:") < 3 {
		t.Errorf("expected three errors:\n%s", out)
	}
	if !strings.Contains(out, "group(s)") {
		t.Errorf("session must survive errors and run the last query:\n%s", out)
	}
}

func TestReplRowsCommandAndEOF(t *testing.T) {
	// EOF without \q ends cleanly; \rows changes the print budget.
	out := runRepl(t, `
\rows 1
SELECT SourceAS, COUNT(*) AS n FROM Flow GROUP BY SourceAS;
`)
	if !strings.Contains(out, "more rows") {
		t.Errorf("\\rows 1 must truncate output:\n%s", out)
	}
}

func TestReplSitesCommand(t *testing.T) {
	out := runRepl(t, `
\sites
\q
`)
	if !strings.Contains(out, "site 0:") || !strings.Contains(out, "Flow") || !strings.Contains(out, "rows") {
		t.Errorf("\\sites output:\n%s", out)
	}
}
