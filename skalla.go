// Package skalla is a distributed OLAP query processor: a from-scratch
// reproduction of the Skalla system of Akinde, Böhlen, Johnson, Lakshmanan
// and Srivastava, "Efficient OLAP Query Processing in Distributed Data
// Warehouses" (EDBT 2002).
//
// A Skalla deployment is a set of local warehouse sites — each holding one
// horizontal partition of the fact relation(s) — plus a coordinator. OLAP
// queries are expressed as complex GMDJ expressions (a base-values query
// followed by a chain of MD operators); the coordinator evaluates them in
// rounds, shipping only partial aggregate results, never detail data, and
// applies the paper's optimizations: coalescing, distribution-independent
// and distribution-aware group reduction, and synchronization reduction.
//
// Quick start (in-process cluster):
//
//	cluster, _ := skalla.NewLocalCluster(4)
//	defer cluster.Close()
//	for i, part := range partitions {
//	    cluster.Load(ctx, i, "Flow", part)
//	}
//	q, _ := skalla.NewQuery("Flow", "SourceAS", "DestAS").
//	    Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS",
//	        skalla.Count("cnt1"), skalla.Sum("NumBytes", "sum1")).
//	    Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS && R.NumBytes >= B.sum1 / B.cnt1",
//	        skalla.Count("cnt2")).
//	    Build()
//	res, _ := cluster.Execute(context.Background(), q, skalla.AllOptimizations())
//	fmt.Println(res.Rel)
//	fmt.Println(res.Metrics)
package skalla

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"skalla/internal/agg"
	"skalla/internal/core"
	"skalla/internal/distrib"
	"skalla/internal/engine"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// Re-exported data-model types. Relations are the unit of data loaded into
// sites and returned from queries.
type (
	// Value is a dynamically typed scalar (NULL, INT, FLOAT, STRING, BOOL).
	Value = relation.Value
	// Tuple is one row.
	Tuple = relation.Tuple
	// Column is a named, typed attribute.
	Column = relation.Column
	// Schema is an ordered set of columns.
	Schema = relation.Schema
	// Relation is an in-memory multiset of tuples.
	Relation = relation.Relation

	// Query is a complex GMDJ expression.
	Query = gmdj.Query
	// AggSpec is one aggregate in an operator's list.
	AggSpec = agg.Spec
	// Options are the optimization switches of the paper's Sect. 4 (a
	// compatibility shim over planner rule selection since Egil v2).
	Options = plan.Options
	// Selection names a planner rule selection: a mode (none, all, auto) or
	// an explicit rule list. See WithPlanMode.
	Selection = plan.Selection
	// Plan is a compiled distributed evaluation plan (rule trace, cost
	// estimate, and fingerprint included).
	Plan = plan.Plan
	// Result bundles the result relation, cost metrics, the plan, and the
	// stitched execution profile.
	Result = core.Result
	// QueryProfile is the stitched per-round, per-site-call cost record of
	// one execution: coordinator envelope plus each site's own breakdown
	// (eval time, rows per worker, segment reads, codec bytes).
	QueryProfile = obs.QueryProfile
	// Metrics is the per-round cost breakdown of an execution.
	Metrics = stats.Metrics
	// NetModel converts measured traffic into modeled communication time.
	NetModel = stats.NetModel
	// RetryPolicy makes per-site calls survive transient failures: attempt
	// count, exponential backoff with jitter, per-attempt deadline. The zero
	// value disables retries.
	RetryPolicy = core.RetryPolicy
	// Catalog carries distribution knowledge for the optimizer.
	Catalog = distrib.Catalog
	// Distribution is per-relation distribution knowledge.
	Distribution = distrib.Distribution
)

// Value constructors.
var (
	// NewInt builds an INT value.
	NewInt = relation.NewInt
	// NewFloat builds a FLOAT value.
	NewFloat = relation.NewFloat
	// NewString builds a STRING value.
	NewString = relation.NewString
	// NewBool builds a BOOL value.
	NewBool = relation.NewBool
	// NewRelation builds an empty relation with the given schema.
	NewRelation = relation.New
	// NewSchema builds and validates a schema.
	NewSchema = relation.NewSchema
	// NewCatalog bundles distributions into a catalog.
	NewCatalog = distrib.NewCatalog
	// DefaultRetryPolicy is a production-shaped retry policy: three attempts,
	// 50 ms initial backoff capped at 2 s, 30 s per attempt.
	DefaultRetryPolicy = core.DefaultRetryPolicy

	// Planner rule selections (Egil v2). SelectAuto picks the rule subset per
	// query from the communication cost model.
	SelectNone = plan.SelectNone
	SelectAll  = plan.SelectAll
	SelectAuto = plan.SelectAuto
	// SelectRules applies exactly the named rules (see PlannerRules).
	SelectRules = plan.SelectRules
	// ParseSelection parses "auto", "none", "all", or "rules=a,b,...".
	ParseSelection = plan.ParseSelection
	// PlannerRules lists the registered rule names in canonical order.
	PlannerRules = plan.RuleNames
)

// Aggregate constructors for the query builder.

// Count is COUNT(*) named as.
func Count(as string) AggSpec { return AggSpec{Func: agg.Count, As: as} }

// CountCol is COUNT(col) (non-NULL count) named as.
func CountCol(col, as string) AggSpec { return AggSpec{Func: agg.Count, Arg: col, As: as} }

// Sum is SUM(col) named as.
func Sum(col, as string) AggSpec { return AggSpec{Func: agg.Sum, Arg: col, As: as} }

// Avg is AVG(col) named as. It is decomposed into SUM and COUNT
// sub-aggregates for distributed evaluation; the result relation carries the
// finalized average (plus as_sum and as_cnt physical columns mid-query).
func Avg(col, as string) AggSpec { return AggSpec{Func: agg.Avg, Arg: col, As: as} }

// Min is MIN(col) named as.
func Min(col, as string) AggSpec { return AggSpec{Func: agg.Min, Arg: col, As: as} }

// Max is MAX(col) named as.
func Max(col, as string) AggSpec { return AggSpec{Func: agg.Max, Arg: col, As: as} }

// Variance is the population variance of col named as, decomposed into
// SUM + sum-of-squares + COUNT sub-aggregates for distributed evaluation.
func Variance(col, as string) AggSpec { return AggSpec{Func: agg.Variance, Arg: col, As: as} }

// StdDev is the population standard deviation of col named as.
func StdDev(col, as string) AggSpec { return AggSpec{Func: agg.StdDev, Arg: col, As: as} }

// NoOptimizations disables every Sect. 4 optimization (the baseline
// Alg. GMDJDistribEval).
func NoOptimizations() Options { return plan.None() }

// AllOptimizations enables coalescing, both group reductions, and
// synchronization reduction.
func AllOptimizations() Options { return plan.All() }

// QueryBuilder assembles a complex GMDJ expression. Conditions use the text
// syntax of the paper's θ conditions: "B.col" references the base-values
// relation (including aggregates computed by earlier operators), "R.col" the
// detail relation; operators are = != < <= > >= + - * / % && || ! with
// AND/OR/NOT keywords accepted.
type QueryBuilder struct {
	q   gmdj.Query
	err error
}

// NewQuery starts a query: the base-values relation is the distinct
// projection of keyCols over the named detail relation.
func NewQuery(detail string, keyCols ...string) *QueryBuilder {
	return &QueryBuilder{q: gmdj.Query{Base: gmdj.BaseQuery{Detail: detail, Cols: keyCols}}}
}

// Where filters the detail rows feeding the base-values projection; the
// condition may reference only R columns.
func (b *QueryBuilder) Where(cond string) *QueryBuilder {
	if b.err != nil {
		return b
	}
	e, err := expr.Parse(cond)
	if err != nil {
		b.err = err
		return b
	}
	b.q.Base.Where = e
	return b
}

// Op appends an MD operator over the base detail relation with a single
// grouping variable: the given condition and aggregate list.
func (b *QueryBuilder) Op(cond string, aggs ...AggSpec) *QueryBuilder {
	return b.OpOn(b.q.Base.Detail, cond, aggs...)
}

// OpOn is Op against a different detail relation (the paper's R_k may vary
// per round).
func (b *QueryBuilder) OpOn(detail, cond string, aggs ...AggSpec) *QueryBuilder {
	if b.err != nil {
		return b
	}
	e, err := expr.Parse(cond)
	if err != nil {
		b.err = err
		return b
	}
	b.q.Ops = append(b.q.Ops, gmdj.Operator{Detail: detail, Vars: []gmdj.GroupVar{{Aggs: aggs, Cond: e}}})
	return b
}

// Var adds an additional grouping variable to the most recent operator
// (hand-coalescing per Sect. 4.3).
func (b *QueryBuilder) Var(cond string, aggs ...AggSpec) *QueryBuilder {
	if b.err != nil {
		return b
	}
	if len(b.q.Ops) == 0 {
		b.err = errors.New("skalla: Var before any Op")
		return b
	}
	e, err := expr.Parse(cond)
	if err != nil {
		b.err = err
		return b
	}
	last := &b.q.Ops[len(b.q.Ops)-1]
	last.Vars = append(last.Vars, gmdj.GroupVar{Aggs: aggs, Cond: e})
	return b
}

// Build returns the assembled query. Structural validation against the
// sites' schemas happens at planning time.
func (b *QueryBuilder) Build() (Query, error) {
	if b.err != nil {
		return Query{}, b.err
	}
	if len(b.q.Base.Cols) == 0 {
		return Query{}, errors.New("skalla: query needs at least one key column")
	}
	return b.q, nil
}

// MustBuild is Build but panics on error; for statically known queries.
func (b *QueryBuilder) MustBuild() Query {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

// Cluster is a Skalla deployment handle: the coordinator plus its sites.
type Cluster struct {
	coord   *core.Coordinator
	sites   []transport.Site
	loaders []transport.Loader
	closers []interface{ Close() error }
	sel     plan.Selection
}

// ClusterOption configures cluster construction.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	catalog       *distrib.Catalog
	net           stats.NetModel
	serialized    bool
	blockRows     int
	traceTo       io.Writer
	retry         core.RetryPolicy
	workers       int
	sel           plan.Selection
	selSet        bool
	selErr        error
	slowQuery     time.Duration
	planCache     int
	admit         bool
	maxConcurrent int
	queueDepth    int
	memBudget     int64
	resultCache   int
	singleFlight  bool
	batchWindow   time.Duration
}

// configure applies the per-coordinator settings shared by every cluster
// constructor.
func (cfg *clusterConfig) configure(coord *core.Coordinator) {
	coord.SetRowBlocking(cfg.blockRows)
	coord.SetRetryPolicy(cfg.retry)
	coord.SetMergeWorkers(cfg.workers)
	coord.SetSlowQueryThreshold(cfg.slowQuery)
	if cfg.traceTo != nil {
		coord.SetTracer(core.NewWriterTracer(cfg.traceTo))
	}
	if cfg.planCache > 0 {
		coord.SetPlanCache(cfg.planCache)
	}
	if cfg.admit {
		coord.SetAdmission(cfg.maxConcurrent, cfg.queueDepth)
	}
	if cfg.memBudget > 0 {
		coord.SetQueryMemBudget(cfg.memBudget)
	}
	if cfg.resultCache > 0 {
		coord.SetResultCache(cfg.resultCache)
	}
	if cfg.singleFlight {
		coord.SetSingleFlight(true)
	}
	if cfg.batchWindow > 0 {
		coord.SetBatchWindow(cfg.batchWindow)
	}
}

// WithCatalog attaches distribution knowledge, enabling the
// distribution-aware optimizations (Thm. 4, Cor. 1).
func WithCatalog(cat *Catalog) ClusterOption {
	return func(c *clusterConfig) { c.catalog = cat }
}

// WithNetModel attaches a deterministic network cost model used for the
// communication component of the reported response time.
func WithNetModel(m NetModel) ClusterOption {
	return func(c *clusterConfig) { c.net = m }
}

// WithSerializedTransport makes in-process sites push every message through
// gob serialization, so byte metrics match a networked deployment. Off by
// default for NewLocalCluster (use it when measuring traffic).
func WithSerializedTransport() ClusterOption {
	return func(c *clusterConfig) { c.serialized = true }
}

// WithRowBlocking makes sites return sub-aggregate relations in blocks of at
// most rows rows, which the coordinator synchronizes as they arrive
// (Sect. 3.2 row blocking). Zero disables blocking.
func WithRowBlocking(rows int) ClusterOption {
	return func(c *clusterConfig) { c.blockRows = rows }
}

// WithTrace streams execution progress — round starts, per-site exchanges,
// round completions — to the writer while queries run.
func WithTrace(w io.Writer) ClusterOption {
	return func(c *clusterConfig) { c.traceTo = w }
}

// WithSiteRetry makes the coordinator retry failed per-site calls under the
// given policy (see DefaultRetryPolicy). Retried streams are staged before
// synchronization, so a partial failure is re-run without double-counting.
// Without this option site failures fail the query immediately.
func WithSiteRetry(p RetryPolicy) ClusterOption {
	return func(c *clusterConfig) { c.retry = p }
}

// WithWorkers sets the evaluation parallelism: in-process sites shard their
// detail scans across up to n workers, and the coordinator commits up to n
// per-site result streams concurrently during synchronization. 0 (the
// default) sizes automatically from GOMAXPROCS and the data; 1 forces fully
// sequential evaluation. For clusters built with Connect the sites run in
// their own processes — set their parallelism with skalla-site -workers —
// and this option governs only the coordinator's concurrent merge.
func WithWorkers(n int) ClusterOption {
	return func(c *clusterConfig) { c.workers = n }
}

// WithSlowQuery makes the coordinator log the full execution profile of any
// query slower than d (and count it in skalla_coord_slow_queries_total).
// Zero disables slow-query logging.
func WithSlowQuery(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.slowQuery = d }
}

// WithPlanCache installs a prepared-plan cache of the given capacity on the
// coordinator: repeated statement texts reuse their compiled plan, skipping
// parse and optimize (in auto mode, the whole candidate enumeration). Entries
// are invalidated when the catalog generation moves. Zero or negative
// disables caching (the default).
func WithPlanCache(capacity int) ClusterOption {
	return func(c *clusterConfig) { c.planCache = capacity }
}

// WithMaxConcurrent bounds how many queries the coordinator executes at once:
// up to n run, up to 4n more wait in the admission queue (the wait is
// recorded in the query profile), and anything beyond that fails immediately
// with ErrAdmissionReject. n <= 0 bounds at GOMAXPROCS. Without this option
// admission control is off.
func WithMaxConcurrent(n int) ClusterOption {
	return func(c *clusterConfig) { c.admit, c.maxConcurrent, c.queueDepth = true, n, -1 }
}

// WithResultCache installs a super-aggregate result cache of the given
// capacity on the coordinator: repeat queries whose plan fingerprint matches
// a cached entry are served with zero site rounds. Entries are invalidated
// when the catalog generation moves — both at lookup and again before a
// finishing query commits, so a generation bump concurrent with an execution
// can never publish a stale result. Cache hits charge the per-query memory
// budget for the bytes they retain, exactly like an executed query. Zero or
// negative disables the cache (the default).
func WithResultCache(capacity int) ClusterOption {
	return func(c *clusterConfig) { c.resultCache = capacity }
}

// WithSingleFlight makes concurrent executions of plans with the same
// fingerprint collapse into one: a leader runs the distributed rounds on a
// context detached from any single caller's, and the others await its
// committed result (each receives a private clone and charges its own memory
// budget). Off by default; Serve enables it for server deployments.
func WithSingleFlight() ClusterOption {
	return func(c *clusterConfig) { c.singleFlight = true }
}

// WithBatchWindow enables cross-query site-call batching: concurrent operator
// rounds that aggregate over the same detail relation at the same site and
// arrive within d of each other ship as one batched exchange the site serves
// from a single scan of its partition. Zero or negative disables batching
// (the default). Where single-flight collapses identical plans, batching
// collapses the scan cost of merely co-located ones.
func WithBatchWindow(d time.Duration) ClusterOption {
	return func(c *clusterConfig) { c.batchWindow = d }
}

// WithQueryMemBudget bounds the coordinator-side memory one query may hold
// (staged sub-aggregate blocks plus base-result growth, estimated at staging
// and merge boundaries). A query crossing the budget fails with
// ErrQueryMemBudget while concurrent queries keep running. Zero or negative
// disables the budget (the default).
func WithQueryMemBudget(bytes int64) ClusterOption {
	return func(c *clusterConfig) { c.memBudget = bytes }
}

// WithPlanMode sets the cluster's default rule selection from the textual
// plan-mode syntax: "auto" (cost-model-driven per query), "none", "all", or
// "rules=<name>,..." (see PlannerRules). ExecuteSelected and ExplainSelected
// plan under it; without this option they behave like "all".
func WithPlanMode(mode string) ClusterOption {
	return func(c *clusterConfig) {
		sel, err := plan.ParseSelection(mode)
		if err != nil {
			c.selErr = err
			return
		}
		c.sel, c.selSet = sel, true
	}
}

// WithRules sets the cluster's default selection to exactly the named
// planner rules (unknown names fail cluster construction; no names means
// none).
func WithRules(names ...string) ClusterOption {
	return func(c *clusterConfig) {
		sel, err := plan.ParseSelection(plan.SelectRules(names...).String())
		if err != nil {
			c.selErr = err
			return
		}
		c.sel, c.selSet = sel, true
	}
}

// NewLocalCluster creates an in-process cluster of n empty sites. Load data
// with Load or LoadPartitions.
func NewLocalCluster(n int, opts ...ClusterOption) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("skalla: cluster size %d", n)
	}
	cfg := applyOptions(opts)
	if cfg.selErr != nil {
		return nil, cfg.selErr
	}
	sites := make([]transport.Site, n)
	loaders := make([]transport.Loader, n)
	for i := 0; i < n; i++ {
		es := engine.NewSite(i)
		es.SetWorkers(cfg.workers)
		if cfg.serialized {
			ls := transport.NewLocalSite(es)
			sites[i], loaders[i] = ls, ls
		} else {
			fs := transport.NewFastLocalSite(es)
			sites[i], loaders[i] = fs, fs
		}
	}
	coord, err := core.New(sites, cfg.catalog, cfg.net)
	if err != nil {
		return nil, err
	}
	cfg.configure(coord)
	return &Cluster{coord: coord, sites: sites, loaders: loaders, sel: cfg.sel}, nil
}

// Connect dials remote Skalla site servers (started with skalla-site or
// transport.Serve) and returns a cluster over them.
func Connect(addrs []string, opts ...ClusterOption) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("skalla: no site addresses")
	}
	cfg := applyOptions(opts)
	if cfg.selErr != nil {
		return nil, cfg.selErr
	}
	cl := &Cluster{sel: cfg.sel}
	for _, a := range addrs {
		c, err := transport.Dial(a)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("skalla: connect %s: %w", a, err)
		}
		cl.sites = append(cl.sites, c)
		cl.loaders = append(cl.loaders, c)
		cl.closers = append(cl.closers, c)
	}
	coord, err := core.New(cl.sites, cfg.catalog, cfg.net)
	if err != nil {
		cl.Close()
		return nil, err
	}
	cfg.configure(coord)
	cl.coord = coord
	return cl, nil
}

func applyOptions(opts []ClusterOption) *clusterConfig {
	cfg := &clusterConfig{}
	for _, o := range opts {
		o(cfg)
	}
	if !cfg.selSet {
		cfg.sel = plan.SelectAll()
	}
	return cfg
}

// NumSites returns the number of sites in the cluster.
func (c *Cluster) NumSites() int { return len(c.sites) }

// Load installs a relation partition at one site. The context bounds the
// transfer (for TCP-connected sites the partition crosses the wire).
func (c *Cluster) Load(ctx context.Context, site int, name string, rel *Relation) error {
	if site < 0 || site >= len(c.loaders) {
		return fmt.Errorf("skalla: site %d of %d", site, len(c.loaders))
	}
	return c.loaders[site].Load(ctx, name, rel)
}

// LoadPartitions installs parts[i] at site i; len(parts) must match the
// cluster size.
func (c *Cluster) LoadPartitions(ctx context.Context, name string, parts []*Relation) error {
	if len(parts) != len(c.loaders) {
		return fmt.Errorf("skalla: %d partitions for %d sites", len(parts), len(c.loaders))
	}
	for i, p := range parts {
		if err := c.Load(ctx, i, name, p); err != nil {
			return err
		}
	}
	return nil
}

// Execute evaluates a query under the given optimization switches.
func (c *Cluster) Execute(ctx context.Context, q Query, opts Options) (*Result, error) {
	return c.coord.Execute(ctx, q, opts)
}

// ExecuteProfiled evaluates a query and returns the result together with its
// stitched execution profile: per round, per site call, the coordinator's
// envelope and the site's own breakdown. The profile is also retained in the
// in-process ring served at /debug/queries (see LastProfiles).
func (c *Cluster) ExecuteProfiled(ctx context.Context, q Query, opts Options) (*Result, *QueryProfile, error) {
	res, err := c.coord.Execute(ctx, q, opts)
	if res == nil {
		return nil, nil, err
	}
	return res, res.Profile, err
}

// LastProfiles returns up to n recently retained query profiles, newest
// first (all retained profiles when n <= 0). The ring is process-global and
// holds obs.DefaultProfileCapacity entries.
func LastProfiles(n int) []*QueryProfile {
	all := obs.Profiles.List()
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// ExecuteSelected evaluates a query under the cluster's configured plan mode
// (WithPlanMode / WithRules; all rules when unconfigured).
func (c *Cluster) ExecuteSelected(ctx context.Context, q Query) (*Result, error) {
	return c.coord.ExecuteWith(ctx, q, c.sel)
}

// ExecuteWith evaluates a query under an explicit rule selection.
func (c *Cluster) ExecuteWith(ctx context.Context, q Query, sel Selection) (*Result, error) {
	return c.coord.ExecuteWith(ctx, q, sel)
}

// TableInfo describes one relation at one site.
type TableInfo = engine.TableInfo

// Tables returns the per-site relation inventory: element i lists the
// relations (with row counts) that site i serves.
func (c *Cluster) Tables(ctx context.Context) ([][]TableInfo, error) {
	out := make([][]TableInfo, len(c.sites))
	for i, s := range c.sites {
		infos, err := s.Tables(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = infos
	}
	return out, nil
}

// Explain returns the compiled distributed plan description without
// executing the query.
func (c *Cluster) Explain(ctx context.Context, q Query, opts Options) (string, error) {
	pl, err := c.coord.Plan(ctx, q, opts)
	if err != nil {
		return "", err
	}
	return pl.Describe(), nil
}

// ExplainSelected is Explain under the cluster's configured plan mode.
func (c *Cluster) ExplainSelected(ctx context.Context, q Query) (string, error) {
	pl, err := c.coord.PlanWith(ctx, q, c.sel)
	if err != nil {
		return "", err
	}
	return pl.Describe(), nil
}

// PlanWith compiles (without executing) a plan under an explicit rule
// selection, exposing the rule trace, cost estimate, and fingerprint.
func (c *Cluster) PlanWith(ctx context.Context, q Query, sel Selection) (*Plan, error) {
	return c.coord.PlanWith(ctx, q, sel)
}

// Close releases any network connections held by the cluster.
func (c *Cluster) Close() error {
	var first error
	for _, cl := range c.closers {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.closers = nil
	return first
}

// NewTieredLocalCluster creates an in-process two-tier deployment: leaves
// leaf sites split as evenly as possible behind relays relay nodes — the
// multi-tiered coordinator architecture the paper lists as future work
// (Sect. 6). Relays pre-merge their subtree's sub-aggregates (Theorem 1 is
// associative), cutting the root coordinator's fan-in from leaves to relays.
// Load and LoadPartitions address the leaf sites; queries run against the
// relay tier.
func NewTieredLocalCluster(leaves, relays int, opts ...ClusterOption) (*Cluster, error) {
	if leaves <= 0 || relays <= 0 || relays > leaves {
		return nil, fmt.Errorf("skalla: tiered cluster with %d leaves behind %d relays", leaves, relays)
	}
	cfg := applyOptions(opts)
	if cfg.selErr != nil {
		return nil, cfg.selErr
	}
	leafSites := make([]transport.Site, leaves)
	loaders := make([]transport.Loader, leaves)
	for i := 0; i < leaves; i++ {
		es := engine.NewSite(i)
		es.SetWorkers(cfg.workers)
		if cfg.serialized {
			ls := transport.NewLocalSite(es)
			leafSites[i], loaders[i] = ls, ls
		} else {
			fs := transport.NewFastLocalSite(es)
			leafSites[i], loaders[i] = fs, fs
		}
	}
	tier := make([]transport.Site, relays)
	per := leaves / relays
	extra := leaves % relays
	start := 0
	for i := 0; i < relays; i++ {
		n := per
		if i < extra {
			n++
		}
		relay, err := core.NewRelay(i, leafSites[start:start+n])
		if err != nil {
			return nil, err
		}
		start += n
		if cfg.serialized {
			tier[i] = transport.NewLocalSite(relay)
		} else {
			tier[i] = transport.NewFastLocalSite(relay)
		}
	}
	coord, err := core.New(tier, cfg.catalog, cfg.net)
	if err != nil {
		return nil, err
	}
	cfg.configure(coord)
	return &Cluster{coord: coord, sites: tier, loaders: loaders, sel: cfg.sel}, nil
}

// NumLeafSites returns the number of data-holding sites (equal to NumSites
// except in tiered clusters, where NumSites counts the relay tier).
func (c *Cluster) NumLeafSites() int { return len(c.loaders) }
