package skalla

import (
	"fmt"
	"strings"

	"skalla/internal/agg"
	"skalla/internal/expr"
)

// ParseQueryText parses the line-oriented query description used by the
// skalla-coordinator CLI. Format ('#' starts a comment):
//
//	base <relation> key <col>[, <col>...]
//	where <condition>                      # optional detail filter
//	op [<relation>] <condition> :: <aggs>  # one MD operator
//	var <condition> :: <aggs>              # extra grouping variable on the last op
//
// where <aggs> is a comma-separated aggregate list such as
//
//	count(*) as cnt1, avg(ExtendedPrice) as avg1
//
// and <condition> uses the θ syntax of the paper (B.col / R.col references).
// Example (the paper's Example 1):
//
//	base Flow key SourceAS, DestAS
//	op B.SourceAS = R.SourceAS && B.DestAS = R.DestAS :: count(*) as cnt1, sum(NumBytes) as sum1
//	op B.SourceAS = R.SourceAS && B.DestAS = R.DestAS && R.NumBytes >= B.sum1 / B.cnt1 :: count(*) as cnt2
func ParseQueryText(text string) (Query, error) {
	var b *QueryBuilder
	whereSeen, opSeen := false, false
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		word, rest := splitWord(line)
		switch strings.ToLower(word) {
		case "base":
			if b != nil {
				return Query{}, fmt.Errorf("skalla: line %d: duplicate base clause", ln+1)
			}
			rel, keys, err := parseBaseClause(rest)
			if err != nil {
				return Query{}, fmt.Errorf("skalla: line %d: %w", ln+1, err)
			}
			b = NewQuery(rel, keys...)
		case "where":
			if b == nil {
				return Query{}, fmt.Errorf("skalla: line %d: where before base", ln+1)
			}
			if whereSeen {
				return Query{}, fmt.Errorf("skalla: line %d: duplicate where clause (combine conditions with &&)", ln+1)
			}
			if opSeen {
				return Query{}, fmt.Errorf("skalla: line %d: where after op (the base filter must precede the operators)", ln+1)
			}
			if _, err := expr.Parse(rest); err != nil {
				return Query{}, fmt.Errorf("skalla: line %d: %w", ln+1, err)
			}
			whereSeen = true
			b = b.Where(rest)
		case "op":
			if b == nil {
				return Query{}, fmt.Errorf("skalla: line %d: op before base", ln+1)
			}
			rel, cond, aggs, err := parseOpClause(rest)
			if err != nil {
				return Query{}, fmt.Errorf("skalla: line %d: %w", ln+1, err)
			}
			if _, err := expr.Parse(cond); err != nil {
				return Query{}, fmt.Errorf("skalla: line %d: %w", ln+1, err)
			}
			opSeen = true
			if rel == "" {
				b = b.Op(cond, aggs...)
			} else {
				b = b.OpOn(rel, cond, aggs...)
			}
		case "var":
			if b == nil {
				return Query{}, fmt.Errorf("skalla: line %d: var before base", ln+1)
			}
			cond, aggsText, ok := splitCondAggs(rest)
			if !ok {
				return Query{}, fmt.Errorf("skalla: line %d: var needs '<condition> :: <aggs>'", ln+1)
			}
			aggs, err := ParseAggList(aggsText)
			if err != nil {
				return Query{}, fmt.Errorf("skalla: line %d: %w", ln+1, err)
			}
			if _, err := expr.Parse(cond); err != nil {
				return Query{}, fmt.Errorf("skalla: line %d: %w", ln+1, err)
			}
			b = b.Var(cond, aggs...)
		default:
			return Query{}, fmt.Errorf("skalla: line %d: unknown clause %q", ln+1, word)
		}
	}
	if b == nil {
		return Query{}, fmt.Errorf("skalla: query text has no base clause")
	}
	return b.Build()
}

func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

func parseBaseClause(rest string) (string, []string, error) {
	rel, tail := splitWord(rest)
	if rel == "" {
		return "", nil, fmt.Errorf("base clause needs a relation name")
	}
	kw, cols := splitWord(tail)
	if !strings.EqualFold(kw, "key") || cols == "" {
		return "", nil, fmt.Errorf("base clause needs 'key <col>[, <col>...]'")
	}
	var keys []string
	for _, c := range strings.Split(cols, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			return "", nil, fmt.Errorf("empty key column")
		}
		keys = append(keys, c)
	}
	return rel, keys, nil
}

// parseOpClause parses "[relation] <cond> :: <aggs>". The relation is
// present when the first token contains no B./R. reference and is followed
// by more text before '::'.
func parseOpClause(rest string) (rel, cond string, aggs []AggSpec, err error) {
	condPart, aggsText, ok := splitCondAggs(rest)
	if !ok {
		return "", "", nil, fmt.Errorf("op needs '<condition> :: <aggs>'")
	}
	// Optional leading relation name: a bare identifier token that is not
	// part of the condition grammar (conditions start with B./R./literals/
	// operators/parens).
	first, tail := splitWord(condPart)
	if tail != "" && isBareIdent(first) {
		rel, condPart = first, tail
	}
	specs, err := ParseAggList(aggsText)
	if err != nil {
		return "", "", nil, err
	}
	return rel, condPart, specs, nil
}

func splitCondAggs(s string) (cond, aggs string, ok bool) {
	i := strings.Index(s, "::")
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+2:]), true
}

func isBareIdent(s string) bool {
	if s == "" || strings.ContainsAny(s, ".()=<>!&|+-*/%'\"") {
		return false
	}
	lower := strings.ToLower(s)
	return lower != "true" && lower != "false" && lower != "null" && lower != "not"
}

// ParseAggList parses a comma-separated aggregate list:
//
//	count(*) as c, sum(NumBytes) as s, avg(Price) as a, min(X) as mn, max(X) as mx
//
// Function names and the AS keyword are case-insensitive; argument column
// names are case-sensitive.
func ParseAggList(s string) ([]AggSpec, error) {
	var out []AggSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("empty aggregate in list %q", s)
		}
		spec, err := parseAggItem(item)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

var aggFuncs = map[string]agg.Func{
	"count": agg.Count, "sum": agg.Sum, "avg": agg.Avg, "min": agg.Min, "max": agg.Max,
	"variance": agg.Variance, "stdev": agg.StdDev,
}

func parseAggItem(item string) (AggSpec, error) {
	open := strings.Index(item, "(")
	closing := strings.Index(item, ")")
	if open < 0 || closing < open {
		return AggSpec{}, fmt.Errorf("aggregate %q: want func(arg) as name", item)
	}
	fn, ok := aggFuncs[strings.ToLower(strings.TrimSpace(item[:open]))]
	if !ok {
		return AggSpec{}, fmt.Errorf("aggregate %q: unknown function %q", item, item[:open])
	}
	arg := strings.TrimSpace(item[open+1 : closing])
	if arg == "*" {
		if fn != agg.Count {
			return AggSpec{}, fmt.Errorf("aggregate %q: only COUNT accepts *", item)
		}
		arg = ""
	} else if arg == "" {
		return AggSpec{}, fmt.Errorf("aggregate %q: missing argument", item)
	}
	tail := strings.TrimSpace(item[closing+1:])
	kw, name := splitWord(tail)
	if !strings.EqualFold(kw, "as") || name == "" || strings.ContainsAny(name, " \t") {
		return AggSpec{}, fmt.Errorf("aggregate %q: want 'as <name>'", item)
	}
	return AggSpec{Func: fn, Arg: arg, As: name}, nil
}
