module skalla

go 1.22
