// Ablation benchmarks for the design choices DESIGN.md calls out: row
// blocking granularity, the serializing vs. direct in-process transport, the
// hash-grouping vs. nested-loop local evaluation path, and the grouping-set
// (cube) workload.
package skalla_test

import (
	"context"
	"fmt"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/bench"
	"skalla/internal/core"
	"skalla/internal/engine"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/olap"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/store"
	"skalla/internal/tpc"
	"skalla/internal/transport"
)

// BenchmarkRowBlocking measures the streaming synchronization at different
// block sizes (0 = each H_i whole). Smaller blocks overlap site compute and
// coordinator merge at the cost of per-block framing.
func BenchmarkRowBlocking(b *testing.B) {
	d := dataset(b)
	q := bench.TwoPhaseQuery(bench.HighCardAttr, true)
	for _, blockRows := range []int{0, 64, 512} {
		b.Run(fmt.Sprintf("blockRows=%d", blockRows), func(b *testing.B) {
			c, err := bench.NewTPCCluster(context.Background(), d, 4, stats.NetModel{})
			if err != nil {
				b.Fatal(err)
			}
			c.Coord.SetRowBlocking(blockRows)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Coord.Execute(ctx, q, plan.None()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransportOverhead compares the serializing in-process transport
// (wire-faithful byte accounting) against the direct dispatch transport:
// the difference is the gob encode/decode cost a real network would pay.
func BenchmarkTransportOverhead(b *testing.B) {
	d := dataset(b)
	q := bench.TwoPhaseQuery(bench.HighCardAttr, true)
	for _, serialized := range []bool{false, true} {
		name := "direct"
		if serialized {
			name = "serialized"
		}
		b.Run(name, func(b *testing.B) {
			sites := make([]transport.Site, 4)
			for i := 0; i < 4; i++ {
				es := engine.NewSite(i)
				if err := es.Load(context.Background(), tpc.RelationName, d.Parts[i]); err != nil {
					b.Fatal(err)
				}
				if serialized {
					sites[i] = transport.NewLocalSite(es)
				} else {
					sites[i] = transport.NewFastLocalSite(es)
				}
			}
			cat, err := d.Catalog(4)
			if err != nil {
				b.Fatal(err)
			}
			coord, err := core.New(sites, cat, stats.NetModel{})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Execute(ctx, q, plan.None()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalEvalPath compares the hash-grouping fast path against the
// literal nested-loop evaluation of Definition 1 at the sites.
func BenchmarkLocalEvalPath(b *testing.B) {
	cfg := benchConfig()
	cfg.Rows = 3000
	cfg.Customers = 1000
	d, err := tpc.Generate(cfg, 2)
	if err != nil {
		b.Fatal(err)
	}
	q := bench.TwoPhaseQuery(bench.HighCardAttr, true)
	for _, useHash := range []bool{true, false} {
		name := "hash"
		if !useHash {
			name = "nested-loop"
		}
		b.Run(name, func(b *testing.B) {
			sites := make([]transport.Site, 2)
			for i := 0; i < 2; i++ {
				es := engine.NewSite(i)
				es.SetUseHash(useHash)
				if err := es.Load(context.Background(), tpc.RelationName, d.Parts[i]); err != nil {
					b.Fatal(err)
				}
				sites[i] = transport.NewFastLocalSite(es)
			}
			coord, err := core.New(sites, nil, stats.NetModel{})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Execute(ctx, q, plan.None()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributedCube measures the grouping-set workload: a full cube
// over three TPCR dimensions in one distributed GMDJ round.
func BenchmarkDistributedCube(b *testing.B) {
	d := dataset(b)
	cube, err := olap.CubeQuery(tpc.RelationName,
		[]string{"RegionKey", "MktSegment", "ShipMode"},
		bench.TwoPhaseQuery(bench.HighCardAttr, true).Ops[0].Vars[0].Aggs)
	if err != nil {
		b.Fatal(err)
	}
	c, err := bench.NewTPCCluster(context.Background(), d, 4, stats.NetModel{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Coord.Execute(ctx, cube, plan.Options{GroupReduceSite: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Rel.Len()), "cells")
		}
	}
}

// BenchmarkTieredCoordinator compares a flat 8-site deployment against the
// same sites behind 2 relays (the multi-tier architecture of the paper's
// future work): the root's merge work drops with its fan-in.
func BenchmarkTieredCoordinator(b *testing.B) {
	d := dataset(b)
	q := bench.TwoPhaseQuery(bench.LowCardAttr, true) // unaligned: real fan-in
	build := func(relays int) *core.Coordinator {
		leaves := make([]transport.Site, 8)
		for i := 0; i < 8; i++ {
			es := engine.NewSite(i)
			if err := es.Load(context.Background(), tpc.RelationName, d.Parts[i]); err != nil {
				b.Fatal(err)
			}
			leaves[i] = transport.NewFastLocalSite(es)
		}
		var top []transport.Site
		if relays == 0 {
			top = leaves
		} else {
			per := 8 / relays
			for i := 0; i < relays; i++ {
				relay, err := core.NewRelay(i, leaves[i*per:(i+1)*per])
				if err != nil {
					b.Fatal(err)
				}
				top = append(top, transport.NewFastLocalSite(relay))
			}
		}
		coord, err := core.New(top, nil, stats.NetModel{})
		if err != nil {
			b.Fatal(err)
		}
		return coord
	}
	for _, cfgCase := range []struct {
		name   string
		relays int
	}{{"flat-8", 0}, {"2-relays", 2}, {"4-relays", 4}} {
		b.Run(cfgCase.name, func(b *testing.B) {
			coord := build(cfgCase.relays)
			ctx := context.Background()
			b.ResetTimer()
			var coordTime int64
			for i := 0; i < b.N; i++ {
				res, err := coord.Execute(ctx, q, plan.None())
				if err != nil {
					b.Fatal(err)
				}
				coordTime = int64(res.Metrics.CoordTime())
			}
			b.ReportMetric(float64(coordTime), "root-merge-ns")
		})
	}
}

// BenchmarkSiteEval measures one site's operator evaluation — the inner loop
// of every distributed round — at increasing worker counts on a 16k-group
// workload. workers=1 is the sequential baseline (the parallel machinery is
// bypassed entirely, so this sub-benchmark doubles as the no-regression
// check); higher counts shard the detail scan into private per-worker
// accumulators merged by Theorem 1. Speedup tracks available cores: on a
// single-core runner the series stay within noise of each other, on an
// 8-core machine workers=8 runs the scan ~6-7x faster.
func BenchmarkSiteEval(b *testing.B) {
	const rows, groups = 160_000, 16_384
	schema := relation.MustSchema(
		relation.Column{Name: "G", Kind: relation.KindInt},
		relation.Column{Name: "V", Kind: relation.KindInt},
	)
	detail := relation.New(schema)
	for i := 0; i < rows; i++ {
		// Knuth-hash the row index so group keys are spread, not clustered
		// by shard — every worker touches the whole group range.
		g := int64(uint32(i) * 2654435761 % groups)
		detail.MustAppend(relation.Tuple{relation.NewInt(g), relation.NewInt(int64(i % 1000))})
	}
	op := gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{{
		Aggs: []agg.Spec{
			{Func: agg.Count, As: "cnt"},
			{Func: agg.Sum, Arg: "V", As: "sum"},
			{Func: agg.Min, Arg: "V", As: "lo"},
			{Func: agg.Max, Arg: "V", As: "hi"},
		},
		Cond: expr.MustParse("B.G = R.G"),
	}}}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := engine.NewSite(0)
			if err := s.Load(ctx, "Flow", detail); err != nil {
				b.Fatal(err)
			}
			s.SetWorkers(workers)
			base, err := s.EvalBase(ctx, gmdj.BaseQuery{Detail: "Flow", Cols: []string{"G"}})
			if err != nil {
				b.Fatal(err)
			}
			req := engine.OperatorRequest{Base: base, Op: op, Keys: []string{"G"}}
			b.SetBytes(rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.EvalOperator(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiskVsMemoryScan measures the disk-backed segment store against
// in-memory partitions on the same workload (the store's segment cache
// absorbs re-scans; cold scans pay gob decode).
func BenchmarkDiskVsMemoryScan(b *testing.B) {
	cfg := benchConfig()
	cfg.Rows = 8000
	d, err := tpc.Generate(cfg, 2)
	if err != nil {
		b.Fatal(err)
	}
	q := bench.TwoPhaseQuery(bench.HighCardAttr, true)
	for _, disk := range []bool{false, true} {
		name := "memory"
		if disk {
			name = "disk"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			sites := make([]transport.Site, 2)
			for i := 0; i < 2; i++ {
				es := engine.NewSite(i)
				if disk {
					tbl, err := store.CreateFrom(fmt.Sprintf("%s/s%d", dir, i), tpc.RelationName, d.Parts[i], 1024)
					if err != nil {
						b.Fatal(err)
					}
					if err := es.LoadSource(tpc.RelationName, tbl); err != nil {
						b.Fatal(err)
					}
				} else if err := es.Load(context.Background(), tpc.RelationName, d.Parts[i]); err != nil {
					b.Fatal(err)
				}
				sites[i] = transport.NewFastLocalSite(es)
			}
			coord, err := core.New(sites, nil, stats.NetModel{})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Execute(ctx, q, plan.None()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
