#!/usr/bin/env sh
# End-to-end smoke test: build the binaries, generate a tiny dataset, start a
# site with observability endpoints, run one distributed query through the
# coordinator, and assert /healthz and /metrics look right. A second
# coordinator run in REPL mode then exercises the query profiler: after a
# query, /debug/queries must list a well-formed profile with a non-empty
# plan fingerprint, and its /trace export must be trace-event JSON. A third
# coordinator run in -serve mode takes two concurrent skalla-client sessions
# and must report a plan-cache hit in /metrics; a storm of repeat sessions
# must then be served from the super-aggregate result cache with zero
# additional site rounds and byte-identical rows, before draining on SIGINT.
#
# Failure discipline: set -eu plus explicit exit-code checks on every stage,
# and a liveness probe (kill -0) on the site daemon before each assertion —
# a site that crashes mid-run fails the script immediately with its log
# dumped, instead of the readiness loop timing out or curl asserting against
# a dead endpoint.
set -eu

workdir=$(mktemp -d)
site_pid=""
site_log=""
coord_pid=""
serve_pid=""
trap 'kill $site_pid $coord_pid $serve_pid 2>/dev/null || true; rm -rf "$workdir"' EXIT

fail() {
  echo "SMOKE FAILURE: $1" >&2
  if [ -n "$site_log" ] && [ -f "$site_log" ]; then
    echo "---- site log ----" >&2
    cat "$site_log" >&2
    echo "------------------" >&2
  fi
  exit 1
}

# site_alive fails the whole run loudly if the site daemon has exited.
site_alive() {
  kill -0 "$site_pid" 2>/dev/null || fail "site daemon died ($1)"
}

echo "==> build"
mkdir -p "$workdir/bin"
go build -o "$workdir/bin/" ./cmd/... || fail "go build ./cmd/... failed"

echo "==> generate dataset"
"$workdir/bin/tpcgen" -out "$workdir/tpcr" -kind tpc -sites 2 -rows 2000 \
  -customers 500 -seed 1 || fail "tpcgen failed"

echo "==> start site"
site_log="$workdir/site.log"
"$workdir/bin/skalla-site" -addr 127.0.0.1:7471 -site 0 -data "$workdir/tpcr" \
  -obs-addr 127.0.0.1:9471 -log-level info >"$site_log" 2>&1 &
site_pid=$!

echo "==> wait for readiness"
ready=""
for _ in $(seq 1 50); do
  site_alive "during readiness wait"
  if curl -sf http://127.0.0.1:9471/healthz >/dev/null 2>&1; then
    ready=yes
    break
  fi
  sleep 0.2
done
[ -n "$ready" ] || fail "site never became ready"
curl -s http://127.0.0.1:9471/healthz | grep -q '"status":"ok"' \
  || fail "healthz not ok"

echo "==> run query"
"$workdir/bin/skalla-coordinator" -sites 127.0.0.1:7471 -data "$workdir/tpcr" \
  -q 'base TPCR key NationKey
op B.NationKey = R.NationKey :: count(*) as items, avg(ExtendedPrice) as avgPrice' \
  -opts none -stats-json "$workdir/stats.json" || fail "coordinator query failed"

grep -q '"summary"' "$workdir/stats.json" \
  || fail "stats JSON missing summary"

echo "==> check metrics"
site_alive "before metrics scrape"
metrics=$(curl -s http://127.0.0.1:9471/metrics) || fail "metrics scrape failed"
for family in \
  skalla_server_requests_total \
  skalla_server_bytes_total \
  skalla_codec_encode_bytes_total \
  skalla_engine_evals_total; do
  echo "$metrics" | grep -q "^$family" \
    || fail "metrics missing $family"
done
# The served base request must be counted.
echo "$metrics" | grep 'skalla_server_requests_total{kind="base"}' \
  | grep -qv ' 0$' || fail "base request not counted"

echo "==> start coordinator (repl, profiler endpoints)"
coord_log="$workdir/coord.log"
fifo="$workdir/repl-in"
mkfifo "$fifo"
"$workdir/bin/skalla-coordinator" -sites 127.0.0.1:7471 -data "$workdir/tpcr" \
  -repl -obs-addr 127.0.0.1:9472 <"$fifo" >"$coord_log" 2>&1 &
coord_pid=$!
# Hold the fifo's write end open for the whole stage; closing it ends the REPL.
exec 3>"$fifo"

coord_ready=""
for _ in $(seq 1 50); do
  kill -0 "$coord_pid" 2>/dev/null || { cat "$coord_log" >&2; fail "coordinator died during startup"; }
  if curl -sf http://127.0.0.1:9472/healthz >/dev/null 2>&1; then
    coord_ready=yes
    break
  fi
  sleep 0.2
done
[ -n "$coord_ready" ] || fail "coordinator obs endpoint never became ready"

echo "==> run query through repl"
printf 'base TPCR key NationKey\nop B.NationKey = R.NationKey :: count(*) as items;\n' >&3

echo "==> check /debug/queries"
# The profile is published when the query finishes; poll the list for it.
queries=""
for _ in $(seq 1 50); do
  queries=$(curl -s http://127.0.0.1:9472/debug/queries) || true
  case "$queries" in *'"QueryID":"'*) break ;; esac
  sleep 0.2
done
case "$queries" in
  *'"QueryID":"'*) ;;
  *) cat "$coord_log" >&2; fail "/debug/queries never listed a profile: $queries" ;;
esac
echo "$queries" | grep -q '"Fingerprint":"[a-z0-9]' \
  || fail "profile list has no plan fingerprint: $queries"

qid=$(echo "$queries" | sed -n 's/.*"QueryID":"\([^"]*\)".*/\1/p' | head -1)
[ -n "$qid" ] || fail "could not extract a query id from $queries"

detail=$(curl -sf "http://127.0.0.1:9472/debug/queries/$qid") \
  || fail "profile detail fetch failed for $qid"
echo "$detail" | grep -q '"Rounds":\[{' || fail "profile detail has no rounds: $detail"
echo "$detail" | grep -q '"Breakdown":{' || fail "profile detail has no site breakdown: $detail"

trace=$(curl -sf "http://127.0.0.1:9472/debug/queries/$qid/trace") \
  || fail "trace export fetch failed for $qid"
echo "$trace" | grep -q '"traceEvents": *\[' || fail "trace export is not trace-event JSON: $trace"
echo "$trace" | grep -q '"ph": *"X"' || fail "trace export has no complete events: $trace"

printf '\\q\n' >&3
exec 3>&-
wait $coord_pid 2>/dev/null || true
coord_pid=""

echo "==> start coordinator (serve mode)"
serve_log="$workdir/serve.log"
"$workdir/bin/skalla-coordinator" -sites 127.0.0.1:7471 -data "$workdir/tpcr" \
  -serve 127.0.0.1:7473 -max-concurrent 4 -obs-addr 127.0.0.1:9473 \
  >"$serve_log" 2>&1 &
serve_pid=$!

serve_ready=""
for _ in $(seq 1 50); do
  kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log" >&2; fail "query server died during startup"; }
  # /healthz stays 503 until the listener is accepting sessions.
  if curl -sf http://127.0.0.1:9473/healthz >/dev/null 2>&1; then
    serve_ready=yes
    break
  fi
  sleep 0.2
done
[ -n "$serve_ready" ] || fail "query server never became ready"

echo "==> run concurrent client sessions"
stmt='base TPCR key NationKey
op B.NationKey = R.NationKey :: count(*) as items'
# Warm the plan cache with one serial session, then two concurrent sessions
# must both reuse the prepared plan.
"$workdir/bin/skalla-client" -addr 127.0.0.1:7473 -q "$stmt" \
  >"$workdir/client0.out" 2>&1 || { cat "$workdir/client0.out" >&2; fail "warm client session failed"; }
"$workdir/bin/skalla-client" -addr 127.0.0.1:7473 -q "$stmt" \
  >"$workdir/client1.out" 2>&1 &
client1_pid=$!
"$workdir/bin/skalla-client" -addr 127.0.0.1:7473 -q "$stmt" \
  >"$workdir/client2.out" 2>&1 &
client2_pid=$!
wait $client1_pid || { cat "$workdir/client1.out" >&2; fail "client session 1 failed"; }
wait $client2_pid || { cat "$workdir/client2.out" >&2; fail "client session 2 failed"; }
grep -q 'group(s):' "$workdir/client1.out" || fail "client 1 printed no result"
grep -q 'plan cache hit' "$workdir/client1.out" || fail "client 1 missed the plan cache"
grep -q 'plan cache hit' "$workdir/client2.out" || fail "client 2 missed the plan cache"

echo "==> check server metrics"
serve_metrics=$(curl -s http://127.0.0.1:9473/metrics) || fail "server metrics scrape failed"
echo "$serve_metrics" | grep '^skalla_server_plan_cache_hits_total' \
  | grep -qv ' 0$' || fail "plan cache hits not counted: $(echo "$serve_metrics" | grep plan_cache)"
echo "$serve_metrics" | grep '^skalla_server_sessions_total' \
  | grep -qv ' 0$' || fail "client sessions not counted"

echo "==> storm: repeat queries served from the result cache"
# The statement's result is committed to the server's super-aggregate result
# cache (default-on) by the sessions above. A storm of repeat sessions must be
# answered with ZERO additional site rounds: the site-side operator-request
# counter must not move, and every session's rows must be byte-identical to
# the warm run's.
site_alive "before storm"
ops_before=$(curl -s http://127.0.0.1:9471/metrics \
  | sed -n 's/^skalla_server_requests_total{kind="operator"} \([0-9][0-9]*\)$/\1/p')
[ -n "$ops_before" ] || fail "could not read site operator-request counter"
"$workdir/bin/skalla-client" -addr 127.0.0.1:7473 -q "$stmt" \
  >"$workdir/storm1.out" 2>&1 &
storm1_pid=$!
"$workdir/bin/skalla-client" -addr 127.0.0.1:7473 -q "$stmt" \
  >"$workdir/storm2.out" 2>&1 &
storm2_pid=$!
wait $storm1_pid || { cat "$workdir/storm1.out" >&2; fail "storm session 1 failed"; }
wait $storm2_pid || { cat "$workdir/storm2.out" >&2; fail "storm session 2 failed"; }
ops_after=$(curl -s http://127.0.0.1:9471/metrics \
  | sed -n 's/^skalla_server_requests_total{kind="operator"} \([0-9][0-9]*\)$/\1/p')
[ "$ops_after" = "$ops_before" ] \
  || fail "storm reached the site: operator requests $ops_before -> $ops_after (result cache bypassed)"
# Rows only — the trailing "query <id>: <elapsed>" line is timing-dependent.
grep -v '^query ' "$workdir/client0.out" >"$workdir/warm.rows"
for n in 1 2; do
  grep -v '^query ' "$workdir/storm$n.out" >"$workdir/storm$n.rows"
  cmp -s "$workdir/warm.rows" "$workdir/storm$n.rows" \
    || { diff "$workdir/warm.rows" "$workdir/storm$n.rows" >&2 || true; \
         fail "storm session $n rows differ from the warm run"; }
done
serve_metrics=$(curl -s http://127.0.0.1:9473/metrics) || fail "server metrics scrape failed"
echo "$serve_metrics" | grep '^skalla_coord_result_cache_hits_total' \
  | grep -qv ' 0$' || fail "result cache hits not counted: $(echo "$serve_metrics" | grep result_cache)"

echo "==> drain query server"
kill -INT "$serve_pid"
wait "$serve_pid" || { cat "$serve_log" >&2; fail "query server exited non-zero after SIGINT"; }
serve_pid=""

echo "==> shut down"
kill $site_pid
wait $site_pid 2>/dev/null || true
echo "smoke test passed"
