#!/usr/bin/env sh
# End-to-end smoke test: build the binaries, generate a tiny dataset, start a
# site with observability endpoints, run one distributed query through the
# coordinator, and assert /healthz and /metrics look right.
set -eu

workdir=$(mktemp -d)
site_pid=""
trap 'kill $site_pid 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "==> build"
mkdir -p "$workdir/bin"
go build -o "$workdir/bin/" ./cmd/...

echo "==> generate dataset"
"$workdir/bin/tpcgen" -out "$workdir/tpcr" -kind tpc -sites 2 -rows 2000 \
  -customers 500 -seed 1

echo "==> start site"
"$workdir/bin/skalla-site" -addr 127.0.0.1:7471 -site 0 -data "$workdir/tpcr" \
  -obs-addr 127.0.0.1:9471 -log-level info &
site_pid=$!

echo "==> wait for readiness"
ready=""
for _ in $(seq 1 50); do
  if curl -sf http://127.0.0.1:9471/healthz >/dev/null 2>&1; then
    ready=yes
    break
  fi
  sleep 0.2
done
[ -n "$ready" ] || { echo "site never became ready"; exit 1; }
curl -s http://127.0.0.1:9471/healthz | grep -q '"status":"ok"' \
  || { echo "healthz not ok"; exit 1; }

echo "==> run query"
"$workdir/bin/skalla-coordinator" -sites 127.0.0.1:7471 -data "$workdir/tpcr" \
  -q 'base TPCR key NationKey
op B.NationKey = R.NationKey :: count(*) as items, avg(ExtendedPrice) as avgPrice' \
  -opts none -stats-json "$workdir/stats.json"

grep -q '"summary"' "$workdir/stats.json" \
  || { echo "stats JSON missing summary"; exit 1; }

echo "==> check metrics"
metrics=$(curl -s http://127.0.0.1:9471/metrics)
for family in \
  skalla_server_requests_total \
  skalla_server_bytes_total \
  skalla_codec_encode_bytes_total \
  skalla_engine_evals_total; do
  echo "$metrics" | grep -q "^$family" \
    || { echo "metrics missing $family"; exit 1; }
done
# The served base request must be counted.
echo "$metrics" | grep 'skalla_server_requests_total{kind="base"}' \
  | grep -qv ' 0$' || { echo "base request not counted"; exit 1; }

echo "==> shut down"
kill $site_pid
wait $site_pid 2>/dev/null || true
echo "smoke test passed"
