#!/usr/bin/env sh
# Lint gate: gofmt, stock go vet, the repo's own skallavet analyzer suite
# (tools/skallavet) over both modules, the stale-suppression audit, and the
# tools module's tests so the analyzers themselves stay green. Runnable from
# any cwd; CI runs this exact script.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

echo "==> gofmt"
# Count offending files explicitly: an output of stray whitespace would pass a
# bare `[ -n ... ]` emptiness test in the other direction (and an empty string
# piped through wc still counts one line), so count non-empty lines.
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
count=$(printf '%s' "$unformatted" | grep -c . || true)
if [ "$count" -ne 0 ]; then
  echo "gofmt needed on $count file(s):"
  echo "$unformatted"
  exit 1
fi

echo "==> go vet (stock analyzers)"
go vet ./...

echo "==> build skallavet"
# The binary is cached keyed on a hash of the tools module's sources (and
# go.mod/go.sum), so repeated lint runs skip the rebuild. The binary embeds a
# self-hash in its vet -V=full answer, so a rebuilt tool also invalidates go
# vet's own result cache without any help from this script.
srchash=$(find tools/skallavet -type f \( -name '*.go' -o -name 'go.mod' -o -name 'go.sum' \) ! -path '*/testdata/*' -print | LC_ALL=C sort | xargs sha256sum | sha256sum | cut -c1-16)
vettool="${TMPDIR:-/tmp}/skallavet-$srchash"
if [ ! -x "$vettool" ]; then
  go build -C tools/skallavet -o "$vettool" .
fi

echo "==> skallavet (main module)"
go vet -vettool="$vettool" ./...

echo "==> skallavet (tools module)"
(cd tools/skallavet && go vet -vettool="$vettool" ./...)

echo "==> skallavet audit (stale //skallavet:allow directives)"
"$vettool" -audit-allows ./...
(cd tools/skallavet && "$vettool" -audit-allows ./...)

echo "==> tools module tests"
(cd tools/skallavet && go test ./...)

echo "lint passed"
