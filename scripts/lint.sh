#!/usr/bin/env sh
# Lint gate: gofmt, stock go vet, and the repo's own skallavet analyzer suite
# (tools/skallavet) over the main module, plus the tools module's tests so the
# analyzers themselves stay green. Run from the repo root; CI runs this
# exact script.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

echo "==> gofmt"
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:"
  echo "$unformatted"
  exit 1
fi

echo "==> go vet (stock analyzers)"
go vet ./...

echo "==> build skallavet"
vettool="${TMPDIR:-/tmp}/skallavet"
go build -C tools/skallavet -o "$vettool" .

echo "==> skallavet (main module)"
go vet -vettool="$vettool" ./...

echo "==> skallavet (tools module)"
(cd tools/skallavet && go vet -vettool="$vettool" ./...)

echo "==> tools module tests"
(cd tools/skallavet && go test ./...)

echo "lint passed"
