// Network deployment: runs three Skalla site servers on real TCP sockets
// (the same servers cmd/skalla-site starts across machines), connects a
// coordinator to them, pushes data over the wire, and executes a distributed
// query — demonstrating the full multi-process code path inside one program.
// A second pass re-runs the query through a mid-tier relay served over TCP
// (the multi-tiered coordinator architecture of the paper's future work).
package main

import (
	"context"
	"fmt"
	"log"

	"skalla"
	"skalla/internal/core"
	"skalla/internal/engine"
	"skalla/internal/flow"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

func main() {
	trace, err := flow.Generate(flow.Config{
		Rows: 9000, Routers: 3, SourceAS: 30, DestAS: 12, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Start three site servers on ephemeral localhost ports.
	var addrs []string
	for i := 0; i < 3; i++ {
		srv, err := transport.Serve(engine.NewSite(i), "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
		fmt.Printf("site %d listening on %s\n", i, srv.Addr())
	}

	// Connect the coordinator and ship each router's partition to its site.
	cluster, err := skalla.Connect(addrs,
		skalla.WithCatalog(trace.Catalog()),
		skalla.WithNetModel(stats.DefaultLAN()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.LoadPartitions(context.Background(), "Flow", trace.Parts); err != nil {
		log.Fatal(err)
	}

	// Top talkers: per source AS, flow count, total bytes, and the count of
	// flows above the AS average.
	query, err := skalla.NewQuery("Flow", "SourceAS").
		Op("B.SourceAS = R.SourceAS",
			skalla.Count("flows"), skalla.Sum("NumBytes", "bytes"),
			skalla.Avg("NumBytes", "avgBytes")).
		Op("B.SourceAS = R.SourceAS && R.NumBytes > B.avgBytes",
			skalla.Count("aboveAvg")).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := cluster.Execute(context.Background(), query, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d source-AS groups (first 8):\n%s\n", res.Rel.Len(), res.Rel.Format(8))
	fmt.Println("measured traffic over real TCP connections:")
	fmt.Print(res.Metrics)

	// Multi-tier variant: a relay process aggregates the three sites and
	// serves them to the root as a single endpoint, pre-merging their
	// sub-aggregates (the paper's future-work architecture).
	var children []transport.Site
	for _, addr := range addrs {
		cli, err := transport.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		children = append(children, cli)
	}
	relay, err := core.NewRelay(0, children)
	if err != nil {
		log.Fatal(err)
	}
	relaySrv, err := transport.Serve(relay, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer relaySrv.Close()
	fmt.Printf("\nrelay tier listening on %s\n", relaySrv.Addr())

	tiered, err := skalla.Connect([]string{relaySrv.Addr()}, skalla.WithNetModel(stats.DefaultLAN()))
	if err != nil {
		log.Fatal(err)
	}
	defer tiered.Close()
	tres, err := tiered.Execute(context.Background(), query, skalla.NoOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	flat, err := cluster.Execute(context.Background(), query, skalla.NoOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("through the relay: %d groups, root exchanged %d messages vs %d flat (same plan)\n",
		tres.Rel.Len(), tres.Metrics.TotalMessages(), flat.Metrics.TotalMessages())
}
