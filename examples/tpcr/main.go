// TPC-R style retail analytics over a distributed warehouse: the evaluation
// scenario of the paper's Sect. 5. The TPCR fact relation is partitioned on
// NationKey across four sites; customer-level analyses group on attributes
// that are (CustName) or are not (Clerk) aligned with that partitioning, and
// the optimizer's behaviour differs accordingly — exactly the effect the
// paper's figures measure.
package main

import (
	"context"
	"fmt"
	"log"

	"skalla"
	"skalla/internal/plan"
	"skalla/internal/stats"
	"skalla/internal/tpc"
)

func main() {
	dataset, err := tpc.Generate(tpc.Config{
		Rows: 40000, Customers: 8000, Nations: 25,
		CitiesPerNation: 120, Clerks: 3000, Seed: 11,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := dataset.Catalog(4)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := skalla.NewLocalCluster(4,
		skalla.WithCatalog(catalog),
		skalla.WithSerializedTransport(), // wire-faithful byte metrics
		skalla.WithNetModel(stats.DefaultLAN()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.LoadPartitions(context.Background(), tpc.RelationName, dataset.Parts); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Per-customer order statistics plus the count of line items priced
	// above the customer's average — the correlated two-operator query of
	// the Sect. 5 experiments.
	custQ, err := skalla.NewQuery(tpc.RelationName, "CustName").
		Op("B.CustName = R.CustName",
			skalla.Count("items"), skalla.Avg("ExtendedPrice", "avgPrice")).
		Op("B.CustName = R.CustName && R.ExtendedPrice >= B.avgPrice",
			skalla.Count("premiumItems")).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== customer analysis (grouping attribute IS partition-aligned) ===")
	compare(ctx, cluster, custQ)

	// The same analysis per clerk: Clerk is spread over every site, so sync
	// reduction cannot apply and groups genuinely merge across sites.
	clerkQ, err := skalla.NewQuery(tpc.RelationName, "Clerk").
		Op("B.Clerk = R.Clerk",
			skalla.Count("items"), skalla.Avg("ExtendedPrice", "avgPrice")).
		Op("B.Clerk = R.Clerk && R.ExtendedPrice >= B.avgPrice",
			skalla.Count("premiumItems")).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== clerk analysis (grouping attribute NOT partition-aligned) ===")
	compare(ctx, cluster, clerkQ)
}

// compare executes a query under increasing optimization levels and prints
// the resulting rounds/traffic/response table.
func compare(ctx context.Context, cluster *skalla.Cluster, q skalla.Query) {
	levels := []struct {
		name string
		opts skalla.Options
	}{
		{"none", plan.None()},
		{"group reductions", skalla.Options{GroupReduceSite: true, GroupReduceCoord: true}},
		{"sync reduction", skalla.Options{SyncReduce: true}},
		{"all", plan.All()},
	}
	fmt.Printf("%-18s %7s %10s %10s %8s %12s\n", "options", "rounds", "bytes", "rows", "groups", "response")
	var firstRel *skalla.Relation
	for _, l := range levels {
		res, err := cluster.Execute(ctx, q, l.opts)
		if err != nil {
			log.Fatal(err)
		}
		if firstRel == nil {
			firstRel = res.Rel
		} else if !res.Rel.EqualMultisetApprox(firstRel, 1e-9) {
			// Exact float equality is not expected: the streaming merge sums
			// partial aggregates in arrival order, so float columns may
			// differ in the last bits between plans — like any parallel sum.
			log.Fatalf("optimization level %q changed the result", l.name)
		}
		m := res.Metrics
		fmt.Printf("%-18s %7d %10d %10d %8d %12s\n",
			l.name, m.NumRounds(), m.TotalBytes(), m.TotalRows(), res.Rel.Len(),
			m.ResponseTime().Round(1000))
	}
	fmt.Printf("sample groups:\n%s", firstRel.Format(4))
}
