// IP network analysis: the motivating application of the paper's Sect. 1.
// Flow records collected at each router stay in the router's local
// warehouse; the analyses below run as distributed GMDJ queries without ever
// moving detail data.
//
// Three analyses are shown:
//
//  1. Web-traffic fraction per source AS ("what fraction of flows is due to
//     Web traffic?"): two grouping variables over the same groups — total
//     flows and HTTP flows — in one coalesced operator.
//  2. Heavy hitters per AS pair: flows whose byte count is at least twice
//     the pair's average (a correlated aggregate à la Example 1).
//  3. Per-router load profile keyed on the partition attribute itself,
//     which the optimizer evaluates fully locally (Cor. 1).
package main

import (
	"context"
	"fmt"
	"log"

	"skalla"
	"skalla/internal/flow"
)

func main() {
	trace, err := flow.Generate(flow.Config{
		Rows: 30000, Routers: 4, SourceAS: 40, DestAS: 16, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := skalla.NewLocalCluster(4, skalla.WithCatalog(trace.Catalog()))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.LoadPartitions(context.Background(), "Flow", trace.Parts); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. Web-traffic fraction per source AS. The two grouping variables
	// share one operator (hand-coalesced per Sect. 4.3), so the whole
	// analysis costs a single GMDJ round.
	webQ, err := skalla.NewQuery("Flow", "SourceAS").
		Op("B.SourceAS = R.SourceAS",
			skalla.Count("flows"), skalla.Sum("NumBytes", "bytes")).
		Var("B.SourceAS = R.SourceAS && R.DestPort = 80",
			skalla.Count("webFlows"), skalla.Sum("NumBytes", "webBytes")).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	webRes, err := cluster.Execute(ctx, webQ, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("web-traffic fraction per source AS (first 6):")
	s := webRes.Rel.Schema
	asI, fI, wI := s.MustIndex("SourceAS"), s.MustIndex("flows"), s.MustIndex("webFlows")
	for _, row := range webRes.Rel.Tuples[:6] {
		fmt.Printf("  AS%-4d %5d flows, %5d web (%.1f%%)\n",
			row[asI].Int, row[fI].Int, row[wI].Int,
			100*float64(row[wI].Int)/float64(row[fI].Int))
	}

	// 2. Heavy hitters: per (SourceAS, DestAS), flows at ≥ 2× the pair's
	// average byte count. The second operator's condition references the
	// average computed by the first — a correlated aggregate chain.
	heavyQ, err := skalla.NewQuery("Flow", "SourceAS", "DestAS").
		Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS",
			skalla.Count("flows"), skalla.Avg("NumBytes", "avgBytes")).
		Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS && R.NumBytes >= B.avgBytes * 2",
			skalla.Count("heavy"), skalla.Max("NumBytes", "maxBytes")).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	heavyRes, err := cluster.Execute(ctx, heavyQ, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheavy hitters per AS pair: %d groups, e.g.\n%s\n",
		heavyRes.Rel.Len(), heavyRes.Rel.Format(5))

	// 3. Per-router load. RouterId is the partition attribute, so the plan
	// degenerates to one fully local round per Cor. 1.
	loadQ, err := skalla.NewQuery("Flow", "RouterId").
		Op("B.RouterId = R.RouterId",
			skalla.Count("flows"), skalla.Sum("NumPackets", "packets"),
			skalla.Sum("NumBytes", "bytes"), skalla.Max("NumBytes", "maxFlow")).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := cluster.Explain(ctx, loadQ, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	loadRes, err := cluster.Execute(ctx, loadQ, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-router load:\n%s\n%s", loadRes.Rel, plan)

	// The optimizations matter: compare traffic with and without them on
	// the heavy-hitter analysis.
	baseline, err := cluster.Execute(ctx, heavyQ, skalla.NoOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheavy-hitter query traffic: %d rows unoptimized vs %d rows optimized (%d vs %d rounds)\n",
		baseline.Metrics.TotalRows(), heavyRes.Metrics.TotalRows(),
		baseline.Metrics.NumRounds(), heavyRes.Metrics.NumRounds())
}
