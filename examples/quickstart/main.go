// Quickstart: build an in-process Skalla cluster over synthetic IP-flow
// data, run the paper's Example 1 query (per source/destination AS pair, the
// total number of flows and the number of flows whose byte count exceeds the
// pair's average), and show what the optimizer does with it.
package main

import (
	"context"
	"fmt"
	"log"

	"skalla"
	"skalla/internal/flow"
)

func main() {
	// Generate a deterministic flow trace partitioned across 4 routers;
	// each router's flows live at the adjacent warehouse site.
	trace, err := flow.Generate(flow.Config{
		Rows: 20000, Routers: 4, SourceAS: 50, DestAS: 20, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One in-process site per router, plus the distribution catalog (which
	// attributes are partition-aligned) that powers the Sect. 4 optimizations.
	cluster, err := skalla.NewLocalCluster(4, skalla.WithCatalog(trace.Catalog()))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.LoadPartitions(context.Background(), "Flow", trace.Parts); err != nil {
		log.Fatal(err)
	}

	// The paper's Example 1 as a complex GMDJ expression.
	query, err := skalla.NewQuery("Flow", "SourceAS", "DestAS").
		Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS",
			skalla.Count("cnt1"), skalla.Sum("NumBytes", "sum1")).
		Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS && R.NumBytes >= B.sum1 / B.cnt1",
			skalla.Count("cnt2")).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	explain, err := cluster.Explain(ctx, query, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized plan:")
	fmt.Print(explain)

	res, err := cluster.Execute(ctx, query, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d (SourceAS, DestAS) groups; first rows:\n%s\n", res.Rel.Len(), res.Rel.Format(8))
	fmt.Println("cost breakdown:")
	fmt.Print(res.Metrics)

	// The same query without optimizations needs three synchronization
	// rounds instead of one.
	baseline, err := cluster.Execute(ctx, query, skalla.NoOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline: %d rounds and %d rows transferred; optimized: %d rounds and %d rows\n",
		baseline.Metrics.NumRounds(), baseline.Metrics.TotalRows(),
		res.Metrics.NumRounds(), res.Metrics.TotalRows())
}
