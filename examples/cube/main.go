// Data cube over a distributed warehouse: the paper (Sect. 2.2) argues that
// the GMDJ operator uniformly expresses the OLAP constructs of the
// literature, including Gray et al.'s CUBE BY. This example computes a
// three-dimensional sales cube over the partitioned TPCR relation in a
// single distributed GMDJ round, then a rollup and a marginal distribution
// via unpivot.
package main

import (
	"context"
	"fmt"
	"log"

	"skalla"
	"skalla/internal/tpc"
)

func main() {
	dataset, err := tpc.Generate(tpc.Config{
		Rows: 20000, Customers: 4000, Nations: 25,
		CitiesPerNation: 120, Clerks: 500, Seed: 5,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := dataset.Catalog(4)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := skalla.NewLocalCluster(4, skalla.WithCatalog(catalog))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.LoadPartitions(context.Background(), tpc.RelationName, dataset.Parts); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// CUBE BY (RegionKey, MktSegment, ShipMode): 2³ grouping sets, NULL
	// marks a rolled-up dimension.
	dims := []string{"RegionKey", "MktSegment", "ShipMode"}
	cube, err := skalla.CubeQuery(tpc.RelationName, dims,
		skalla.Count("orders"), skalla.Sum("ExtendedPrice", "revenue"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Execute(ctx, cube, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cube: %d cells in %d synchronization round(s), %d bytes moved\n",
		res.Rel.Len(), res.Metrics.NumRounds(), res.Metrics.TotalBytes())
	// Show the grand total and the per-region rollups.
	ri := res.Rel.Schema.MustIndex("RegionKey")
	mi := res.Rel.Schema.MustIndex("MktSegment")
	si := res.Rel.Schema.MustIndex("ShipMode")
	fmt.Println("rollup cells (MktSegment and ShipMode rolled up):")
	for _, row := range res.Rel.Tuples {
		if row[mi].IsNull() && row[si].IsNull() {
			fmt.Printf("  region=%-5v orders=%-6v revenue=%.0f\n",
				row[ri], row[res.Rel.Schema.MustIndex("orders")],
				row[res.Rel.Schema.MustIndex("revenue")].Float)
		}
	}

	// ROLLUP (RegionKey, MktSegment): hierarchy subtotals only.
	rollup, err := skalla.RollupQuery(tpc.RelationName, []string{"RegionKey", "MktSegment"},
		skalla.Count("orders"))
	if err != nil {
		log.Fatal(err)
	}
	rres, err := cluster.Execute(ctx, rollup, skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrollup: %d cells (leaves + region subtotals + grand total)\n", rres.Rel.Len())

	// Marginal distributions via unpivot: how often each value of
	// MktSegment and ShipMode occurs, as one distributed query over the
	// unpivoted relation.
	for i, part := range dataset.Parts {
		up, err := skalla.Unpivot(part, nil, []string{"MktSegment", "ShipMode"})
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.Load(context.Background(), i, "UP", up); err != nil {
			log.Fatal(err)
		}
	}
	mres, err := cluster.Execute(ctx, skalla.MarginalsQuery("UP"), skalla.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}
	mres.Rel.Sort()
	fmt.Printf("\nmarginal distributions (%d attribute/value pairs):\n%s", mres.Rel.Len(), mres.Rel.Format(12))
}
