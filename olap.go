package skalla

import (
	"skalla/internal/egil"
	"skalla/internal/olap"
)

// CubeQuery builds the full data cube (CUBE BY of Gray et al.) over the
// dimension columns: one grouping set per subset of dims, with rollup rows
// marked by NULL dimension values. The cube of a distributed warehouse costs
// a single GMDJ round — the paper's Sect. 2.2 uniform-expressibility claim
// realized on the distributed engine.
func CubeQuery(detail string, dims []string, aggs ...AggSpec) (Query, error) {
	return olap.CubeQuery(detail, dims, aggs)
}

// RollupQuery builds the ROLLUP hierarchy over dims (all prefixes, down to
// the grand total).
func RollupQuery(detail string, dims []string, aggs ...AggSpec) (Query, error) {
	return olap.RollupQuery(detail, dims, aggs)
}

// GroupingSetsQuery builds an explicit GROUPING SETS query over dims.
func GroupingSetsQuery(detail string, dims []string, sets [][]string, aggs ...AggSpec) (Query, error) {
	return olap.GroupingSetsQuery(detail, dims, sets, aggs)
}

// Unpivot turns the named columns of each row into (Attr, Val) pairs,
// carrying the keep columns through (the unpivot operator of Graefe et al.,
// used for marginal-distribution extraction).
func Unpivot(r *Relation, keep, cols []string) (*Relation, error) {
	return olap.Unpivot(r, keep, cols)
}

// MarginalsQuery builds the COUNT-per-(Attr, Val) query over an unpivoted
// relation loaded at the sites under unpivotName.
func MarginalsQuery(unpivotName string) Query {
	return olap.MarginalsQuery(unpivotName)
}

// TranslateSQL parses the SQL-style OLAP dialect of the Egil front end
// (SELECT dims and aggregates FROM relation [WHERE ...] GROUP BY / CUBE BY /
// ROLLUP BY dims [HAVING EACH cond]) and translates it into a complex GMDJ
// expression; see package internal/egil for the dialect.
func TranslateSQL(statement string) (Query, error) {
	return egil.Translate(statement)
}
