package skalla

import (
	"context"
	"strings"
	"testing"

	"skalla/internal/flow"
	"skalla/internal/gmdj"
	"skalla/internal/tpc"
	"skalla/internal/transport"

	"skalla/internal/engine"
)

func flowQuery(t *testing.T) Query {
	t.Helper()
	q, err := NewQuery("Flow", "SourceAS", "DestAS").
		Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS",
			Count("cnt1"), Sum("NumBytes", "sum1")).
		Op("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS && R.NumBytes >= B.sum1 / B.cnt1",
			Count("cnt2")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func loadedFlowCluster(t *testing.T, opts ...ClusterOption) (*Cluster, *flow.Dataset) {
	t.Helper()
	d, err := flow.Generate(flow.Config{Rows: 2000, Routers: 3, SourceAS: 30, DestAS: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(3, append([]ClusterOption{WithCatalog(d.Catalog())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadPartitions(context.Background(), "Flow", d.Parts); err != nil {
		t.Fatal(err)
	}
	return cl, d
}

// The facade end-to-end: Example 1 of the paper through the public API,
// checked against the centralized oracle.
func TestFacadeEndToEnd(t *testing.T) {
	cl, d := loadedFlowCluster(t)
	defer cl.Close()
	q := flowQuery(t)
	want, err := gmdj.EvalCentral(q, gmdj.Data{"Flow": d.Global()}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{NoOptimizations(), AllOptimizations()} {
		res, err := cl.Execute(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rel.EqualMultiset(want) {
			t.Errorf("[%s]: facade result mismatch", opts)
		}
		if res.Metrics.NumRounds() == 0 {
			t.Error("metrics missing rounds")
		}
	}
	// The optimized plan for this aligned query is fully local.
	explain, err := cl.Explain(context.Background(), q, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "full local") {
		t.Errorf("Explain:\n%s", explain)
	}
}

func TestQueryBuilderErrors(t *testing.T) {
	if _, err := NewQuery("Flow").Build(); err == nil {
		t.Error("missing key columns must error")
	}
	if _, err := NewQuery("Flow", "a").Op("not a ( condition", Count("c")).Build(); err == nil {
		t.Error("unparseable condition must error")
	}
	if _, err := NewQuery("Flow", "a").Where("((").Build(); err == nil {
		t.Error("unparseable filter must error")
	}
	if _, err := NewQuery("Flow", "a").Var("true", Count("c")).Build(); err == nil {
		t.Error("Var before Op must error")
	}
	// Errors are sticky: later calls keep the first error.
	b := NewQuery("Flow", "a").Op("((", Count("c")).Op("true", Count("d"))
	if _, err := b.Build(); err == nil {
		t.Error("sticky error lost")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustBuild must panic on error")
			}
		}()
		NewQuery("Flow").MustBuild()
	}()
}

func TestQueryBuilderVarAndWhere(t *testing.T) {
	q, err := NewQuery("Flow", "SourceAS").
		Where("R.NumBytes > 0").
		Op("B.SourceAS = R.SourceAS", Count("c1"), Avg("NumBytes", "a1"), Min("NumBytes", "mn"), Max("NumBytes", "mx"), CountCol("DestAS", "cc")).
		Var("B.SourceAS = R.DestAS", Count("c2")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ops) != 1 || len(q.Ops[0].Vars) != 2 {
		t.Fatalf("builder shape: %d ops, %d vars", len(q.Ops), len(q.Ops[0].Vars))
	}
	if q.Base.Where == nil {
		t.Error("Where lost")
	}
	cl, _ := loadedFlowCluster(t)
	defer cl.Close()
	res, err := cl.Execute(context.Background(), q, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"c1", "a1", "mn", "mx", "cc", "c2"} {
		if !res.Rel.Schema.Has(col) {
			t.Errorf("result missing %q: %s", col, res.Rel.Schema)
		}
	}
}

func TestOpOnDifferentRelation(t *testing.T) {
	cl, d := loadedFlowCluster(t)
	defer cl.Close()
	// Load a second relation: the same flows under another name.
	if err := cl.LoadPartitions(context.Background(), "Flow2", d.Parts); err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery("Flow", "SourceAS").
		Op("B.SourceAS = R.SourceAS", Count("c1")).
		OpOn("Flow2", "B.SourceAS = R.SourceAS", Count("c2")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Execute(context.Background(), q, NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := res.Rel.Schema.MustIndex("c1"), res.Rel.Schema.MustIndex("c2")
	for _, row := range res.Rel.Tuples {
		if !row[c1].Equal(row[c2]) {
			t.Fatalf("same data under two names must agree: %v", row)
		}
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := NewLocalCluster(0); err == nil {
		t.Error("zero sites must error")
	}
	cl, err := NewLocalCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.NumSites() != 2 {
		t.Errorf("NumSites = %d", cl.NumSites())
	}
	rel := NewRelation(Schema{Column{Name: "x", Kind: 1}})
	if err := cl.Load(context.Background(), 5, "T", rel); err == nil {
		t.Error("out-of-range site must error")
	}
	if err := cl.LoadPartitions(context.Background(), "T", []*Relation{rel}); err == nil {
		t.Error("partition count mismatch must error")
	}
	if _, err := Connect(nil); err == nil {
		t.Error("empty address list must error")
	}
	if _, err := Connect([]string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable site must error")
	}
}

func TestConnectTCP(t *testing.T) {
	d, err := flow.Generate(flow.Config{Rows: 500, Routers: 2, SourceAS: 10, DestAS: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := transport.Serve(engine.NewSite(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	cl, err := Connect(addrs, WithCatalog(d.Catalog()), WithNetModel(NetModel{}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.LoadPartitions(context.Background(), "Flow", d.Parts); err != nil {
		t.Fatal(err)
	}
	q := flowQuery(t)
	want, err := gmdj.EvalCentral(q, gmdj.Data{"Flow": d.Global()}, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Execute(context.Background(), q, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.EqualMultiset(want) {
		t.Error("TCP cluster result mismatch")
	}
	if res.Metrics.TotalBytes() == 0 {
		t.Error("TCP transport must count bytes")
	}
}

func TestSerializedTransportOption(t *testing.T) {
	d, _ := flow.Generate(flow.Config{Rows: 300, Routers: 2, SourceAS: 10, DestAS: 5, Seed: 9})
	cl, err := NewLocalCluster(2, WithSerializedTransport(), WithCatalog(d.Catalog()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.LoadPartitions(context.Background(), "Flow", d.Parts); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Execute(context.Background(), flowQuery(t), NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalBytes() == 0 {
		t.Error("serialized transport must count bytes")
	}
}

func TestTPCDatasetThroughFacade(t *testing.T) {
	d, err := tpc.Generate(tpc.Config{Rows: 1500, Customers: 400, Nations: 25, CitiesPerNation: 4, Clerks: 40, Seed: 6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := d.Catalog(4)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewLocalCluster(4, WithCatalog(cat))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.LoadPartitions(context.Background(), tpc.RelationName, d.Parts); err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(tpc.RelationName, "CustName").
		Op("B.CustName = R.CustName", Count("orders"), Avg("ExtendedPrice", "avgPrice")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Execute(context.Background(), q, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalCentral(q, gmdj.Data{tpc.RelationName: d.Global()}, true)
	if err != nil {
		t.Fatal(err)
	}
	// avgPrice is a float: the streaming merge sums partials in arrival
	// order, so compare with a relative tolerance.
	if !res.Rel.EqualMultisetApprox(want, 1e-9) {
		t.Error("TPC facade result mismatch")
	}
}

// A tiered facade cluster must agree with a flat one on the same partitions.
func TestTieredLocalCluster(t *testing.T) {
	d, err := flow.Generate(flow.Config{Rows: 1200, Routers: 4, SourceAS: 20, DestAS: 6, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewLocalCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	tiered, err := NewTieredLocalCluster(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	if tiered.NumSites() != 2 || tiered.NumLeafSites() != 4 {
		t.Fatalf("tiered shape: %d sites, %d leaves", tiered.NumSites(), tiered.NumLeafSites())
	}
	for _, cl := range []*Cluster{flat, tiered} {
		if err := cl.LoadPartitions(context.Background(), "Flow", d.Parts); err != nil {
			t.Fatal(err)
		}
	}
	q := flowQuery(t)
	a, err := flat.Execute(context.Background(), q, NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	b, err := tiered.Execute(context.Background(), q, NoOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rel.EqualMultiset(b.Rel) {
		t.Error("tiered facade mismatch")
	}
	// Invalid shapes.
	if _, err := NewTieredLocalCluster(2, 4); err == nil {
		t.Error("more relays than leaves must error")
	}
	if _, err := NewTieredLocalCluster(0, 0); err == nil {
		t.Error("zero sizes must error")
	}
}

func TestClusterTables(t *testing.T) {
	cl, d := loadedFlowCluster(t)
	defer cl.Close()
	inv, err := cl.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(inv) != 3 {
		t.Fatalf("sites = %d", len(inv))
	}
	total := 0
	for i, tables := range inv {
		if len(tables) != 1 || tables[0].Name != "Flow" {
			t.Errorf("site %d inventory = %+v", i, tables)
		}
		total += tables[0].Rows
	}
	if total != d.Global().Len() {
		t.Errorf("inventory rows = %d, want %d", total, d.Global().Len())
	}
}
