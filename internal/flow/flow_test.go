package flow

import (
	"strings"
	"testing"

	"skalla/internal/relation"
)

func smallConfig() Config {
	return Config{Rows: 1500, Routers: 3, SourceAS: 30, DestAS: 10, Seed: 5}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Rows: 0, Routers: 1, SourceAS: 1, DestAS: 1},
		{Rows: 1, Routers: 0, SourceAS: 1, DestAS: 1},
		{Rows: 1, Routers: 1, SourceAS: 0, DestAS: 1},
		{Rows: 1, Routers: 1, SourceAS: 1, DestAS: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Generate(bad[0]); err == nil {
		t.Error("Generate with invalid config must error")
	}
}

func TestGenerateShape(t *testing.T) {
	d, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range d.Parts {
		total += p.Len()
	}
	if total != 1500 {
		t.Errorf("rows = %d", total)
	}
	g := d.Global()
	if g.Len() != 1500 || !g.Schema.Equal(Schema()) {
		t.Errorf("global shape wrong")
	}
}

func TestDeterminism(t *testing.T) {
	d1, _ := Generate(smallConfig())
	d2, _ := Generate(smallConfig())
	if !d1.Global().EqualMultiset(d2.Global()) {
		t.Error("same seed must generate identical traces")
	}
}

// Each partition must hold exactly the flows of its router, and SourceAS →
// RouterId must hold (the Example 2/5 assumption).
func TestPartitioningInvariants(t *testing.T) {
	d, _ := Generate(smallConfig())
	dist := d.Distribution()
	if err := dist.Validate(); err != nil {
		t.Fatalf("distribution invalid: %v", err)
	}
	for site, p := range d.Parts {
		if err := dist.CheckData(site, p); err != nil {
			t.Errorf("site %d: %v", site, err)
		}
	}
	pa := dist.PartitionAttrs()
	if _, ok := pa["RouterId"]; !ok {
		t.Error("RouterId must be a partition attribute")
	}
	if _, ok := pa["SourceAS"]; !ok {
		t.Error("SourceAS must be a partition attribute")
	}
	if _, ok := pa["DestAS"]; ok {
		t.Error("DestAS must not be a partition attribute")
	}
	if d.Catalog().Distribution(RelationName) == nil {
		t.Error("catalog must expose Flow")
	}
}

func TestFlowValueRanges(t *testing.T) {
	d, _ := Generate(smallConfig())
	g := d.Global()
	s := g.Schema
	st, et := s.MustIndex("StartTime"), s.MustIndex("EndTime")
	np, nb := s.MustIndex("NumPackets"), s.MustIndex("NumBytes")
	ip := s.MustIndex("SourceIP")
	for _, row := range g.Tuples[:200] {
		if row[et].Int < row[st].Int {
			t.Fatal("EndTime before StartTime")
		}
		if row[np].Int < 1 || row[nb].Int < row[np].Int*40 {
			t.Fatalf("packet/byte counts implausible: %v / %v", row[np], row[nb])
		}
		if strings.Count(row[ip].Str, ".") != 3 {
			t.Fatalf("malformed IP %q", row[ip].Str)
		}
	}
}

func TestModFilter(t *testing.T) {
	f := ModFilter{Mod: 4, Rem: 1}
	if !f.Contains(relation.NewInt(5)) || f.Contains(relation.NewInt(4)) {
		t.Error("mod membership")
	}
	if !f.Contains(relation.NewInt(-3)) { // -3 mod 4 = 1
		t.Error("negative values must use positive residue")
	}
	if f.Contains(relation.NewString("5")) {
		t.Error("non-int excluded")
	}
	if (ModFilter{Mod: 0}).Contains(relation.NewInt(1)) {
		t.Error("zero modulus must match nothing")
	}
	if _, _, ok := f.Bounds(); ok {
		t.Error("no bounds")
	}
	if !f.DisjointWith(ModFilter{Mod: 4, Rem: 2}) {
		t.Error("different residues must be disjoint")
	}
	if f.DisjointWith(ModFilter{Mod: 5, Rem: 2}) {
		t.Error("different moduli cannot be proven disjoint")
	}
	if f.String() != "x % 4 == 1" {
		t.Errorf("String = %q", f.String())
	}
}
