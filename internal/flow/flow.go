// Package flow generates synthetic IP flow trace data matching the paper's
// motivating application (Sect. 2.1): flow records dumped by NetFlow-enabled
// routers, with RouterId as the partition attribute (flows are stored at the
// local warehouse adjacent to the router that observed them). The generator
// realizes the assumption of the paper's Example 2/5: all packets from a
// given SourceAS pass through one specific router, so SourceAS → RouterId
// and SourceAS is a partition attribute too.
package flow

import (
	"fmt"
	"math/rand"

	"skalla/internal/distrib"
	"skalla/internal/relation"
)

// RelationName is the detail relation name used in queries.
const RelationName = "Flow"

// Config controls the synthetic trace.
type Config struct {
	Rows     int   // flow tuples across all routers
	Routers  int   // number of routers == number of sites
	SourceAS int   // number of distinct source autonomous systems
	DestAS   int   // number of distinct destination autonomous systems
	Seed     int64 // deterministic generation
}

// DefaultConfig returns a small deterministic trace.
func DefaultConfig() Config {
	return Config{Rows: 20000, Routers: 4, SourceAS: 100, DestAS: 50, Seed: 1}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0:
		return fmt.Errorf("flow: Rows = %d", c.Rows)
	case c.Routers <= 0:
		return fmt.Errorf("flow: Routers = %d", c.Routers)
	case c.SourceAS <= 0:
		return fmt.Errorf("flow: SourceAS = %d", c.SourceAS)
	case c.DestAS <= 0:
		return fmt.Errorf("flow: DestAS = %d", c.DestAS)
	}
	return nil
}

// Schema returns the Flow schema of Sect. 2.1 (RouterId, source and
// destination endpoint attributes, times, and the NumPackets/NumBytes
// measures).
func Schema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "RouterId", Kind: relation.KindInt},
		relation.Column{Name: "SourceIP", Kind: relation.KindString},
		relation.Column{Name: "SourcePort", Kind: relation.KindInt},
		relation.Column{Name: "SourceMask", Kind: relation.KindInt},
		relation.Column{Name: "SourceAS", Kind: relation.KindInt},
		relation.Column{Name: "DestIP", Kind: relation.KindString},
		relation.Column{Name: "DestPort", Kind: relation.KindInt},
		relation.Column{Name: "DestMask", Kind: relation.KindInt},
		relation.Column{Name: "DestAS", Kind: relation.KindInt},
		relation.Column{Name: "StartTime", Kind: relation.KindInt},
		relation.Column{Name: "EndTime", Kind: relation.KindInt},
		relation.Column{Name: "NumPackets", Kind: relation.KindInt},
		relation.Column{Name: "NumBytes", Kind: relation.KindInt},
	)
}

// Dataset is a generated, per-router-partitioned flow trace.
type Dataset struct {
	Config Config
	Parts  []*relation.Relation // Parts[r] = flows observed at router r
}

// Generate builds a deterministic flow trace. Flows of SourceAS a are routed
// through router a % Routers, making both RouterId and SourceAS partition
// attributes.
func Generate(c Config) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	d := &Dataset{Config: c, Parts: make([]*relation.Relation, c.Routers)}
	for i := range d.Parts {
		d.Parts[i] = relation.New(Schema())
	}
	for i := 0; i < c.Rows; i++ {
		sas := 1 + rng.Int63n(int64(c.SourceAS))
		das := 1 + rng.Int63n(int64(c.DestAS))
		router := sas % int64(c.Routers)
		start := rng.Int63n(86400)
		dur := rng.Int63n(300)
		packets := 1 + rng.Int63n(1000)
		// Web-traffic skew: one destination port in three is HTTP.
		destPort := int64(80)
		if rng.Intn(3) != 0 {
			destPort = 1024 + rng.Int63n(64000)
		}
		row := relation.Tuple{
			relation.NewInt(router),
			relation.NewString(randIP(rng)),
			relation.NewInt(1024 + rng.Int63n(64000)),
			relation.NewInt(24),
			relation.NewInt(sas),
			relation.NewString(randIP(rng)),
			relation.NewInt(destPort),
			relation.NewInt(24),
			relation.NewInt(das),
			relation.NewInt(start),
			relation.NewInt(start + dur),
			relation.NewInt(packets),
			relation.NewInt(packets * (40 + rng.Int63n(1460))),
		}
		d.Parts[router].Tuples = append(d.Parts[router].Tuples, row)
	}
	return d, nil
}

func randIP(rng *rand.Rand) string {
	return fmt.Sprintf("%d.%d.%d.%d", 10+rng.Intn(200), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
}

// Global returns the conceptual union of all routers' flows.
func (d *Dataset) Global() *relation.Relation {
	g := relation.New(Schema())
	for _, p := range d.Parts {
		g.Tuples = append(g.Tuples, p.Tuples...)
	}
	return g
}

// Distribution returns the distribution knowledge: RouterId r at site r, and
// SourceAS partitioned by a % Routers (the Example 2 scenario), with the
// SourceAS → RouterId functional dependency.
func (d *Dataset) Distribution() *distrib.Distribution {
	return DistributionFor(d.Config)
}

// DistributionFor builds the distribution knowledge for an instance
// generated with config c, without needing the data itself.
func DistributionFor(c Config) *distrib.Distribution {
	n := c.Routers
	routerFilters := make([]distrib.SiteFilter, n)
	sasFilters := make([]distrib.SiteFilter, n)
	for site := 0; site < n; site++ {
		routerFilters[site] = distrib.NewValueSet(relation.NewInt(int64(site)))
		sasFilters[site] = ModFilter{Mod: int64(n), Rem: int64(site)}
	}
	return &distrib.Distribution{
		Relation: RelationName,
		NumSites: n,
		Attrs: []distrib.AttrInfo{
			{Attr: "RouterId", Filters: routerFilters, Disjoint: true, Distinct: int64(n)},
			{Attr: "SourceAS", Filters: sasFilters, Disjoint: true, Distinct: int64(c.SourceAS)},
			{Attr: "DestAS", Distinct: int64(c.DestAS)},
		},
		FDs:       []distrib.FD{{From: "SourceAS", To: "RouterId"}},
		TotalRows: int64(c.Rows),
	}
}

// Catalog wraps the distribution in a catalog.
func (d *Dataset) Catalog() *distrib.Catalog {
	return distrib.NewCatalog(d.Distribution())
}

// ModFilter is a distrib.SiteFilter matching integers congruent to Rem
// modulo Mod (the "SourceAS a is handled by router a mod n" ownership).
type ModFilter struct {
	Mod, Rem int64
}

// Contains implements distrib.SiteFilter.
func (f ModFilter) Contains(v relation.Value) bool {
	if v.Kind != relation.KindInt || f.Mod <= 0 {
		return false
	}
	return ((v.Int%f.Mod)+f.Mod)%f.Mod == f.Rem
}

// Bounds implements distrib.SiteFilter: residue classes are unbounded.
func (f ModFilter) Bounds() (float64, float64, bool) { return 0, 0, false }

// DisjointWith implements distrib.DisjointChecker.
func (f ModFilter) DisjointWith(other distrib.SiteFilter) bool {
	o, ok := other.(ModFilter)
	return ok && o.Mod == f.Mod && o.Rem != f.Rem
}

func (f ModFilter) String() string { return fmt.Sprintf("x %% %d == %d", f.Mod, f.Rem) }
