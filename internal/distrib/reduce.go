package distrib

import (
	"fmt"

	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

// ReductionPred is a coordinator-side predicate over base tuples: it keeps
// exactly the tuples that must be shipped to one particular site (the ¬ψ_i
// of Theorem 4). Reduction predicates run at the coordinator, so they are
// plain closures rather than wire-format expressions.
type ReductionPred func(relation.Tuple) (bool, error)

// GroupReducers derives, for one MD operator, a per-site slice of reduction
// predicates implementing distribution-aware group reduction (Theorem 4).
//
// For every grouping variable θ_j it relaxes each top-level conjunct into a
// necessary condition over the base tuple, given site i's attribute filters:
//
//   - B.g = R.A        →  φ_i^A(b.g)               (equality on a constrained attr)
//   - baseExpr op affine(R.A) → baseExpr op bound   (the paper's inequality example)
//   - base-only conjunct c(b) → c(b)
//   - anything else    →  true (no information)
//
// ¬ψ_i is the OR over variables of the AND of the relaxations. If some
// variable yields no constraint at all, ¬ψ_i ≡ true and no reduction is
// possible (ok = false).
func GroupReducers(op gmdj.Operator, baseSchema relation.Schema, dist *Distribution) ([]ReductionPred, bool, error) {
	if dist == nil || dist.NumSites <= 0 {
		return nil, false, nil
	}
	preds := make([]ReductionPred, dist.NumSites)
	for site := 0; site < dist.NumSites; site++ {
		var varPreds []ReductionPred // one per grouping variable (to be OR-ed)
		reducible := true
		for _, v := range op.Vars {
			p, ok, err := relaxVariable(v.Cond, baseSchema, dist, site)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				reducible = false
				break
			}
			varPreds = append(varPreds, p)
		}
		if !reducible {
			return nil, false, nil
		}
		all := varPreds
		preds[site] = func(t relation.Tuple) (bool, error) {
			for _, p := range all {
				ok, err := p(t)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
			return false, nil
		}
	}
	return preds, true, nil
}

// relaxVariable relaxes one condition θ_j into a base-only predicate for a
// site. ok=false means no conjunct yielded information.
func relaxVariable(cond expr.Expr, baseSchema relation.Schema, dist *Distribution, site int) (ReductionPred, bool, error) {
	var conjPreds []ReductionPred
	for _, c := range expr.Conjuncts(cond) {
		if p := relaxConjunct(c, baseSchema, dist, site); p != nil {
			conjPreds = append(conjPreds, p)
		}
	}
	if len(conjPreds) == 0 {
		return nil, false, nil
	}
	return func(t relation.Tuple) (bool, error) {
		for _, p := range conjPreds {
			ok, err := p(t)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}, true, nil
}

// relaxConjunct relaxes a single conjunct; nil means no information.
func relaxConjunct(c expr.Expr, baseSchema relation.Schema, dist *Distribution, site int) ReductionPred {
	// Base-only conjunct: usable as-is.
	if expr.SideOnly(c, expr.SideBase) {
		bound, err := expr.Bind(c, baseSchema, nil)
		if err != nil {
			return nil
		}
		return func(t relation.Tuple) (bool, error) {
			return expr.EvalCond(bound, t, nil)
		}
	}
	bin, ok := c.(*expr.Bin)
	if !ok || !bin.Op.IsComparison() {
		return nil
	}
	// Normalize so the base side is on the left.
	op, l, r := bin.Op, bin.L, bin.R
	if !expr.SideOnly(l, expr.SideBase) || !expr.SideOnly(r, expr.SideDetail) {
		if expr.SideOnly(r, expr.SideBase) && expr.SideOnly(l, expr.SideDetail) {
			fl, okf := expr.FlipComparison(op)
			if !okf {
				return nil
			}
			op, l, r = fl, r, l
		} else {
			return nil
		}
	}

	// Equality against a bare constrained detail column: membership test.
	if op == expr.OpEq {
		if col, isCol := r.(*expr.Col); isCol {
			info, known := dist.Attr(col.Name)
			if known {
				f := info.Filter(site)
				if f != nil {
					boundL, err := expr.Bind(l, baseSchema, nil)
					if err != nil {
						return nil
					}
					return func(t relation.Tuple) (bool, error) {
						v, err := boundL.Eval(t, nil)
						if err != nil {
							return false, err
						}
						return f.Contains(v), nil
					}
				}
			}
		}
	}

	// Affine comparison: relax against the filter's numeric bounds.
	aff, isAff := expr.DetailAffine(r)
	if !isAff {
		return nil
	}
	info, known := dist.Attr(aff.Col)
	if !known {
		return nil
	}
	f := info.Filter(site)
	if f == nil {
		return nil
	}
	lo, hi, okB := f.Bounds()
	if !okB {
		return nil
	}
	relaxed, okR := expr.RelaxComparison(op, l, aff, lo, hi)
	if !okR {
		return nil
	}
	bound, err := expr.Bind(relaxed, baseSchema, nil)
	if err != nil {
		return nil
	}
	return func(t relation.Tuple) (bool, error) {
		return expr.EvalCond(bound, t, nil)
	}
}

// CanSkipBaseSync implements the practical entailment test for Proposition 2:
// the base-values relation is computed over the first operator's own detail
// relation, and every condition of the first operator carries conjuncts
// "B.k = R.k" for every base key attribute k (so θ_j entails θ_K and any
// detail row matching a group at a site implies that group is in the site's
// local base). The base-values synchronization round can then be folded into
// the first operator's round.
func CanSkipBaseSync(q gmdj.Query) bool {
	if len(q.Ops) == 0 {
		return false
	}
	// A base selection breaks the entailment: a detail row at one site can
	// match a group (θ_j holds on the keys) whose selection-passing witnesses
	// all live at other sites, so the group is absent from this site's local
	// base and the row's contribution is silently lost. Unlike the Thm. 5
	// local-prefix reduction — where partition alignment co-locates a group's
	// witnesses with every row that can match it — Prop. 2 makes no placement
	// assumption, so only unfiltered bases fold soundly.
	if q.Base.Where != nil {
		return false
	}
	op := q.Ops[0]
	if op.Detail != q.Base.Detail {
		return false
	}
	return allVarsSelfLinkKeys(op, q.Keys())
}

// LocalPrefixLen returns the longest operator prefix that can be evaluated
// entirely at the sites with a single synchronization at its end. An
// operator qualifies when its detail relation is the base relation and every
// grouping variable's condition entails equality between a base key
// attribute and the same-named detail attribute, where that key is a
// partition attribute (Definition 2, extended through the FD closure): each
// group is then owned by exactly one site, so no site ever needs another
// site's aggregates for these operators — the per-tuple synchronization
// elision of Theorem 5 applied uniformly.
//
// A prefix equal to len(q.Ops) is Corollary 1's full synchronization
// reduction: the whole chain runs locally with one final synchronization.
func LocalPrefixLen(q gmdj.Query, cat *Catalog) int {
	dist := cat.Distribution(q.Base.Detail)
	if dist == nil {
		return 0
	}
	partAttrs := dist.PartitionAttrs()
	// A linked partition key must be among the base projection columns.
	var candidateKeys []string
	for _, k := range q.Keys() {
		if _, ok := partAttrs[k]; ok {
			candidateKeys = append(candidateKeys, k)
		}
	}
	if len(candidateKeys) == 0 {
		return 0
	}
	prefix := 0
	for _, op := range q.Ops {
		if op.Detail != q.Base.Detail {
			return prefix
		}
		for _, v := range op.Vars {
			if !linksSomeKey(v.Cond, candidateKeys) {
				return prefix
			}
		}
		prefix++
	}
	return prefix
}

// FullLocal implements Corollary 1's synchronization reduction: the entire
// multi-operator chain is evaluated locally at each site with a single final
// synchronization. It is the special case LocalPrefixLen == len(q.Ops).
func FullLocal(q gmdj.Query, cat *Catalog) (bool, error) {
	if len(q.Ops) == 0 {
		return false, nil
	}
	return LocalPrefixLen(q, cat) == len(q.Ops), nil
}

// allVarsSelfLinkKeys reports whether every variable's condition links every
// key attribute k to the detail column of the same name.
func allVarsSelfLinkKeys(op gmdj.Operator, keys []string) bool {
	for _, v := range op.Vars {
		m, ok := expr.KeyLinkage(v.Cond, keys)
		if !ok {
			return false
		}
		for k, d := range m {
			if k != d {
				return false
			}
		}
	}
	return true
}

// linksSomeKey reports whether cond has a conjunct B.k = R.k for at least one
// of the candidate partition-aligned keys.
func linksSomeKey(cond expr.Expr, candidates []string) bool {
	for _, l := range expr.EqualityLinks(cond) {
		if l.Base != l.Detail {
			continue
		}
		for _, k := range candidates {
			if l.Base == k {
				return true
			}
		}
	}
	return false
}

// Ownership returns, for a FullLocal-eligible query, the index of the site
// owning a base tuple, derived from the partition filters of the first
// linked partition key. It returns -1 when no site's filter contains the
// value (data outside the declared distribution). Used by tests and
// diagnostics.
func Ownership(q gmdj.Query, cat *Catalog, baseSchema relation.Schema) (func(relation.Tuple) int, error) {
	dist := cat.Distribution(q.Base.Detail)
	if dist == nil {
		return nil, fmt.Errorf("distrib: no distribution for %q", q.Base.Detail)
	}
	partAttrs := dist.PartitionAttrs()
	for _, k := range q.Keys() {
		if _, ok := partAttrs[k]; !ok {
			continue
		}
		info, known := dist.Attr(k)
		if !known || info.Filters == nil {
			continue
		}
		idx := baseSchema.Index(k)
		if idx < 0 {
			continue
		}
		return func(t relation.Tuple) int {
			for site, f := range info.Filters {
				if f != nil && f.Contains(t[idx]) {
					return site
				}
			}
			return -1
		}, nil
	}
	return nil, fmt.Errorf("distrib: no partition-aligned key with explicit filters")
}
