package distrib

import (
	"testing"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

var flowSchema = relation.MustSchema(
	relation.Column{Name: "SourceAS", Kind: relation.KindInt},
	relation.Column{Name: "DestAS", Kind: relation.KindInt},
	relation.Column{Name: "NB", Kind: relation.KindInt},
)

// flowDist partitions Flow on SourceAS into ranges of 25: site 0 holds
// [1,25], site 1 holds [26,50] — the paper's Example 2 setup.
func flowDist() *Distribution {
	return &Distribution{
		Relation: "Flow",
		NumSites: 2,
		Attrs: []AttrInfo{{
			Attr:     "SourceAS",
			Disjoint: true,
			Filters:  []SiteFilter{IntRange{1, 25}, IntRange{26, 50}},
		}},
	}
}

func countVar(cond string) gmdj.GroupVar {
	return gmdj.GroupVar{
		Aggs: []agg.Spec{{Func: agg.Count, As: "c"}},
		Cond: expr.MustParse(cond),
	}
}

func baseTuple(sas, das int64) relation.Tuple {
	return relation.Tuple{relation.NewInt(sas), relation.NewInt(das)}
}

var reduceBaseSchema = relation.MustSchema(
	relation.Column{Name: "SourceAS", Kind: relation.KindInt},
	relation.Column{Name: "DestAS", Kind: relation.KindInt},
)

// Example 2 of the paper: with θ containing Flow.SourceAS = B.SourceAS and
// site 0 holding SourceAS in [1,25], ¬ψ_0(b) is b.SourceAS ∈ [1,25].
func TestGroupReducersEquality(t *testing.T) {
	op := gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{
		countVar("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS"),
	}}
	preds, ok, err := GroupReducers(op, reduceBaseSchema, flowDist())
	if err != nil || !ok {
		t.Fatalf("GroupReducers: ok=%v err=%v", ok, err)
	}
	if len(preds) != 2 {
		t.Fatalf("preds len = %d", len(preds))
	}
	keep, err := preds[0](baseTuple(10, 99))
	if err != nil || !keep {
		t.Errorf("site 0 must keep SourceAS=10: %v %v", keep, err)
	}
	keep, _ = preds[0](baseTuple(30, 99))
	if keep {
		t.Error("site 0 must drop SourceAS=30")
	}
	keep, _ = preds[1](baseTuple(30, 99))
	if !keep {
		t.Error("site 1 must keep SourceAS=30")
	}
	keep, _ = preds[1](baseTuple(10, 99))
	if keep {
		t.Error("site 1 must drop SourceAS=10")
	}
}

// The paper's revised Example 2 condition: B.DestAS + B.SourceAS <
// Flow.SourceAS*2 relaxes at site 0 ([1,25]) to B.DestAS + B.SourceAS < 50.
func TestGroupReducersAffine(t *testing.T) {
	op := gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{
		countVar("B.DestAS + B.SourceAS < R.SourceAS * 2"),
	}}
	preds, ok, err := GroupReducers(op, reduceBaseSchema, flowDist())
	if err != nil || !ok {
		t.Fatalf("GroupReducers: ok=%v err=%v", ok, err)
	}
	keep, _ := preds[0](baseTuple(20, 29)) // 49 < 50
	if !keep {
		t.Error("site 0 must keep sum 49")
	}
	keep, _ = preds[0](baseTuple(20, 30)) // 50 not < 50
	if keep {
		t.Error("site 0 must drop sum 50")
	}
	keep, _ = preds[1](baseTuple(20, 79)) // site 1 bound: < 100
	if !keep {
		t.Error("site 1 must keep sum 99")
	}
}

func TestGroupReducersFlippedComparison(t *testing.T) {
	// Detail side on the left: R.SourceAS * 2 > B.DestAS is the mirrored form.
	op := gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{
		countVar("R.SourceAS * 2 > B.DestAS"),
	}}
	preds, ok, err := GroupReducers(op, reduceBaseSchema, flowDist())
	if err != nil || !ok {
		t.Fatalf("GroupReducers: ok=%v err=%v", ok, err)
	}
	keep, _ := preds[0](baseTuple(0, 49)) // 49 < 2*25
	if !keep {
		t.Error("site 0 must keep DestAS=49")
	}
	keep, _ = preds[0](baseTuple(0, 50))
	if keep {
		t.Error("site 0 must drop DestAS=50")
	}
}

func TestGroupReducersNoInfo(t *testing.T) {
	// Condition on an unconstrained attribute: no reduction.
	op := gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{
		countVar("B.DestAS = R.DestAS"),
	}}
	_, ok, err := GroupReducers(op, reduceBaseSchema, flowDist())
	if err != nil || ok {
		t.Errorf("unconstrained attr: ok=%v err=%v, want no reduction", ok, err)
	}
	// Nil distribution: no reduction.
	if _, ok, _ := GroupReducers(op, reduceBaseSchema, nil); ok {
		t.Error("nil distribution must not reduce")
	}
}

func TestGroupReducersMultiVarOr(t *testing.T) {
	// ψ uses the OR over all variables: a tuple needed by either variable
	// must be kept.
	op := gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{
		countVar("B.SourceAS = R.SourceAS"),
		countVar("B.DestAS = R.SourceAS"),
	}}
	preds, ok, err := GroupReducers(op, reduceBaseSchema, flowDist())
	if err != nil || !ok {
		t.Fatalf("GroupReducers: ok=%v err=%v", ok, err)
	}
	// SourceAS outside site 0, but DestAS inside: second variable needs it.
	keep, _ := preds[0](baseTuple(40, 10))
	if !keep {
		t.Error("site 0 must keep tuple needed by second variable")
	}
	keep, _ = preds[0](baseTuple(40, 40))
	if keep {
		t.Error("site 0 must drop tuple needed by neither variable")
	}
	// One variable without information poisons the whole operator.
	op.Vars = append(op.Vars, countVar("R.NB > 5"))
	if _, ok, _ := GroupReducers(op, reduceBaseSchema, flowDist()); ok {
		t.Error("uninformative variable must disable reduction")
	}
}

func TestGroupReducersBaseOnlyConjunct(t *testing.T) {
	// A base-only conjunct narrows every site's predicate.
	op := gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{
		countVar("B.SourceAS = R.SourceAS && B.DestAS < 5"),
	}}
	preds, ok, err := GroupReducers(op, reduceBaseSchema, flowDist())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	keep, _ := preds[0](baseTuple(10, 10)) // in range but DestAS >= 5
	if keep {
		t.Error("base-only conjunct must filter")
	}
	keep, _ = preds[0](baseTuple(10, 2))
	if !keep {
		t.Error("satisfying tuple must be kept")
	}
}

func queryWithConds(conds ...string) gmdj.Query {
	q := gmdj.Query{Base: gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SourceAS", "DestAS"}}}
	for i, c := range conds {
		q.Ops = append(q.Ops, gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "c" + string(rune('a'+i))}},
			Cond: expr.MustParse(c),
		}}})
	}
	return q
}

func TestCanSkipBaseSync(t *testing.T) {
	// Both keys self-linked: skip.
	q := queryWithConds("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS")
	if !CanSkipBaseSync(q) {
		t.Error("self-linked keys must allow base-sync skip")
	}
	// Missing one key link: no skip.
	q = queryWithConds("B.SourceAS = R.SourceAS")
	if CanSkipBaseSync(q) {
		t.Error("missing key link must prevent skip")
	}
	// Key linked to a different detail column: no skip.
	q = queryWithConds("B.SourceAS = R.SourceAS && B.DestAS = R.NB")
	if CanSkipBaseSync(q) {
		t.Error("cross-column link must prevent skip")
	}
	// Different detail relation for the base: no skip.
	q = queryWithConds("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS")
	q.Base.Detail = "Other"
	if CanSkipBaseSync(q) {
		t.Error("different base detail must prevent skip")
	}
	// No operators: no skip.
	if CanSkipBaseSync(gmdj.Query{Base: gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SourceAS"}}}) {
		t.Error("no ops must prevent skip")
	}
	// Filtered base: no skip — a group's filter-passing witnesses may all
	// live at other sites, so local bases can miss groups that rows match.
	q = queryWithConds("B.SourceAS = R.SourceAS && B.DestAS = R.DestAS")
	q.Base.Where = expr.MustParse("R.NB > 10")
	if CanSkipBaseSync(q) {
		t.Error("base WHERE must prevent skip")
	}
}

func TestFullLocal(t *testing.T) {
	cat := NewCatalog(flowDist())
	// Every operator links the partition attribute: fully local.
	q := queryWithConds(
		"B.SourceAS = R.SourceAS && B.DestAS = R.DestAS",
		"B.SourceAS = R.SourceAS && R.NB > 3",
	)
	ok, err := FullLocal(q, cat)
	if err != nil || !ok {
		t.Errorf("FullLocal = %v, %v, want true", ok, err)
	}
	// Second operator does not link the partition attribute: not local.
	q = queryWithConds(
		"B.SourceAS = R.SourceAS",
		"B.DestAS = R.DestAS",
	)
	if ok, _ := FullLocal(q, cat); ok {
		t.Error("unlinked operator must prevent FullLocal")
	}
	// Partition attribute not among base keys: not local.
	q = queryWithConds("B.DestAS = R.DestAS")
	q.Base.Cols = []string{"DestAS"}
	if ok, _ := FullLocal(q, cat); ok {
		t.Error("no partition key in base must prevent FullLocal")
	}
	// Unknown relation: not local.
	q = queryWithConds("B.SourceAS = R.SourceAS")
	q.Base.Detail = "Other"
	q.Ops[0].Detail = "Other"
	if ok, _ := FullLocal(q, cat); ok {
		t.Error("unknown distribution must prevent FullLocal")
	}
	// FD-derived partition attribute qualifies.
	d := flowDist()
	d.Attrs[0].Attr = "RouterId"
	d.FDs = []FD{{From: "SourceAS", To: "RouterId"}}
	cat2 := NewCatalog(d)
	q = queryWithConds("B.SourceAS = R.SourceAS")
	ok, err = FullLocal(q, cat2)
	if err != nil || !ok {
		t.Errorf("FD-derived partition attr: FullLocal = %v, %v", ok, err)
	}
	// Empty query.
	if ok, _ := FullLocal(gmdj.Query{Base: gmdj.BaseQuery{Detail: "Flow"}}, cat); ok {
		t.Error("empty query must not be FullLocal")
	}
}

func TestOwnership(t *testing.T) {
	cat := NewCatalog(flowDist())
	q := queryWithConds("B.SourceAS = R.SourceAS")
	owner, err := Ownership(q, cat, reduceBaseSchema)
	if err != nil {
		t.Fatal(err)
	}
	if got := owner(baseTuple(10, 0)); got != 0 {
		t.Errorf("owner(10) = %d", got)
	}
	if got := owner(baseTuple(30, 0)); got != 1 {
		t.Errorf("owner(30) = %d", got)
	}
	if got := owner(baseTuple(99, 0)); got != -1 {
		t.Errorf("owner(99) = %d, want -1", got)
	}
	// No distribution: error.
	if _, err := Ownership(q, NewCatalog(), reduceBaseSchema); err == nil {
		t.Error("missing distribution must error")
	}
	_ = flowSchema // keep the shared schema referenced
}
