// Package distrib models distribution knowledge about a distributed data
// warehouse — which site holds which slice of each detail relation — and the
// static analyses built on it:
//
//   - site predicates φ_i and the derivation of the group-reduction
//     predicates ¬ψ_i of Theorem 4 (distribution-aware group reduction);
//   - partition attributes per Definition 2, extended through functional
//     dependencies (the paper partitions TPCR on NationKey "and therefore
//     also on CustKey");
//   - the synchronization-reduction tests of Proposition 2 (skip the
//     base-values sync) and Corollary 1 (evaluate the whole chain locally
//     with a single synchronization).
package distrib

import (
	"encoding/gob"
	"fmt"
	"sort"
	"strings"

	"skalla/internal/relation"
)

// SiteFilter is a site predicate φ_i restricted to a single attribute: it
// describes which values of that attribute can occur at the site.
type SiteFilter interface {
	// Contains reports whether the value may occur at the site.
	Contains(v relation.Value) bool
	// Bounds returns numeric [lo,hi] bounds of the filter's values, if the
	// filter is numeric. Used for affine relaxation of inequality conditions.
	Bounds() (lo, hi float64, ok bool)
	String() string
}

// IntRange is an inclusive integer range filter [Lo, Hi].
type IntRange struct {
	Lo, Hi int64
}

// Contains implements SiteFilter.
func (r IntRange) Contains(v relation.Value) bool {
	f, ok := v.AsFloat()
	if !ok {
		return false
	}
	return f >= float64(r.Lo) && f <= float64(r.Hi)
}

// Bounds implements SiteFilter.
func (r IntRange) Bounds() (float64, float64, bool) {
	return float64(r.Lo), float64(r.Hi), true
}

func (r IntRange) String() string { return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi) }

// ValueSet is an explicit set-of-values filter.
type ValueSet struct {
	Values []relation.Value
}

// NewValueSet builds a ValueSet from values.
func NewValueSet(vs ...relation.Value) ValueSet { return ValueSet{Values: vs} }

// Contains implements SiteFilter.
func (s ValueSet) Contains(v relation.Value) bool {
	for _, x := range s.Values {
		if x.Equal(v) {
			return true
		}
	}
	return false
}

// Bounds implements SiteFilter: defined only when all values are numeric.
func (s ValueSet) Bounds() (float64, float64, bool) {
	if len(s.Values) == 0 {
		return 0, 0, false
	}
	lo, hi := 0.0, 0.0
	for i, v := range s.Values {
		f, ok := v.AsFloat()
		if !ok {
			return 0, 0, false
		}
		if i == 0 || f < lo {
			lo = f
		}
		if i == 0 || f > hi {
			hi = f
		}
	}
	return lo, hi, true
}

func (s ValueSet) String() string {
	parts := make([]string, len(s.Values))
	for i, v := range s.Values {
		parts[i] = v.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// AttrInfo is the per-attribute distribution knowledge of one detail
// relation: the per-site filters (φ_i projected onto the attribute), and
// whether the per-site value sets are pairwise disjoint — i.e. whether the
// attribute is a partition attribute in the sense of Definition 2.
type AttrInfo struct {
	Attr     string
	Filters  []SiteFilter // index = site; nil entry means unconstrained at that site
	Disjoint bool
	// Distinct is the estimated number of distinct values of the attribute
	// across the deployment (0 = unknown). The planner's cost model uses it
	// to estimate base-values cardinalities.
	Distinct int64
}

// Filter returns site i's filter, or nil when unconstrained or unknown.
func (a AttrInfo) Filter(site int) SiteFilter {
	if site < 0 || site >= len(a.Filters) {
		return nil
	}
	return a.Filters[site]
}

// FD is a functional dependency From → To on a detail relation.
type FD struct {
	From, To string
}

// Distribution is the distribution knowledge for one detail relation.
type Distribution struct {
	Relation string
	NumSites int
	Attrs    []AttrInfo
	FDs      []FD
	// TotalRows is the estimated number of detail tuples across all sites
	// (0 = unknown). Cardinality estimates are capped at it.
	TotalRows int64
}

// Attr returns the info for a named attribute.
func (d *Distribution) Attr(name string) (AttrInfo, bool) {
	for _, a := range d.Attrs {
		if a.Attr == name {
			return a, true
		}
	}
	return AttrInfo{}, false
}

// PartitionAttrs returns every attribute that is a partition attribute:
// attributes declared Disjoint, closed under the functional dependencies
// (if A → B and B is a partition attribute, rows sharing an A value share a
// B value and therefore reside at a single site, so A is one too).
func (d *Distribution) PartitionAttrs() map[string]struct{} {
	out := make(map[string]struct{})
	for _, a := range d.Attrs {
		if a.Disjoint {
			out[a.Attr] = struct{}{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range d.FDs {
			if _, ok := out[fd.To]; !ok {
				continue
			}
			if _, ok := out[fd.From]; !ok {
				out[fd.From] = struct{}{}
				changed = true
			}
		}
	}
	return out
}

// IsPartitionAttr reports whether the attribute is a partition attribute
// (directly or through the FD closure).
func (d *Distribution) IsPartitionAttr(attr string) bool {
	_, ok := d.PartitionAttrs()[attr]
	return ok
}

// Validate checks structural consistency: filter slices (when present) have
// NumSites entries and declared-Disjoint attributes with explicit finite
// filters really are pairwise disjoint.
func (d *Distribution) Validate() error {
	if d.NumSites <= 0 {
		return fmt.Errorf("distrib: %s: NumSites = %d", d.Relation, d.NumSites)
	}
	for _, a := range d.Attrs {
		if a.Filters != nil && len(a.Filters) != d.NumSites {
			return fmt.Errorf("distrib: %s.%s: %d filters for %d sites", d.Relation, a.Attr, len(a.Filters), d.NumSites)
		}
		if !a.Disjoint {
			continue
		}
		for i := range a.Filters {
			for j := i + 1; j < len(a.Filters); j++ {
				if filtersOverlap(a.Filters[i], a.Filters[j]) {
					return fmt.Errorf("distrib: %s.%s declared disjoint but sites %d and %d overlap (%s vs %s)",
						d.Relation, a.Attr, i, j, a.Filters[i], a.Filters[j])
				}
			}
		}
	}
	return nil
}

// DisjointChecker is an optional SiteFilter extension: custom filter types
// (e.g. filters deriving site ownership from a functionally dependent
// attribute) can prove pairwise disjointness that the structural check below
// cannot see.
type DisjointChecker interface {
	DisjointWith(other SiteFilter) bool
}

// filtersOverlap conservatively detects overlap between two filters; nil
// (unconstrained) overlaps everything.
func filtersOverlap(a, b SiteFilter) bool {
	if a == nil || b == nil {
		return true
	}
	if dc, ok := a.(DisjointChecker); ok && dc.DisjointWith(b) {
		return false
	}
	if dc, ok := b.(DisjointChecker); ok && dc.DisjointWith(a) {
		return false
	}
	switch x := a.(type) {
	case IntRange:
		switch y := b.(type) {
		case IntRange:
			return x.Lo <= y.Hi && y.Lo <= x.Hi
		case ValueSet:
			for _, v := range y.Values {
				if x.Contains(v) {
					return true
				}
			}
			return false
		}
	case ValueSet:
		for _, v := range x.Values {
			if b.Contains(v) {
				return true
			}
		}
		return false
	}
	return true // unknown filter kinds: assume overlap
}

// CheckData verifies that a site's actual rows satisfy the declared filters
// for every attribute (a test/diagnostic helper: distribution knowledge that
// disagrees with the data would make the Thm. 4 optimization unsound).
func (d *Distribution) CheckData(site int, rel *relation.Relation) error {
	for _, a := range d.Attrs {
		f := a.Filter(site)
		if f == nil {
			continue
		}
		idx := rel.Schema.Index(a.Attr)
		if idx < 0 {
			return fmt.Errorf("distrib: relation lacks attribute %q", a.Attr)
		}
		for rn, t := range rel.Tuples {
			if !f.Contains(t[idx]) {
				return fmt.Errorf("distrib: site %d row %d: %s = %s violates φ = %s",
					site, rn, a.Attr, t[idx], f)
			}
		}
	}
	return nil
}

// Catalog bundles the distribution knowledge of all detail relations.
type Catalog struct {
	Relations map[string]*Distribution
	// Generation counts catalog rebuilds: it changes whenever the
	// distribution knowledge (partitioning, membership, statistics) is
	// re-derived, invalidating every plan fingerprint computed against the
	// previous knowledge. The zero value identifies the initial catalog.
	Generation uint64
}

// NewCatalog builds a catalog from distributions.
func NewCatalog(ds ...*Distribution) *Catalog {
	c := &Catalog{Relations: make(map[string]*Distribution, len(ds))}
	for _, d := range ds {
		c.Relations[d.Relation] = d
	}
	return c
}

// Distribution returns the knowledge for a relation, or nil when unknown
// (all optimizations relying on distribution knowledge then stay off).
func (c *Catalog) Distribution(rel string) *Distribution {
	if c == nil {
		return nil
	}
	return c.Relations[rel]
}

// Gen returns the catalog's generation counter; nil catalogs are generation
// zero (no distribution knowledge to go stale).
func (c *Catalog) Gen() uint64 {
	if c == nil {
		return 0
	}
	return c.Generation
}

func init() {
	gob.Register(IntRange{})
	gob.Register(ValueSet{})
	gob.Register(HashFilter{})
}

// HashFilter matches values whose kind-aware hash falls in residue class Rem
// modulo Mod — the hash-partitioning scheme. Hash partitions of the same
// modulus and different residues are disjoint, so a hash-partitioned
// attribute is a partition attribute (Definition 2).
type HashFilter struct {
	Mod, Rem uint64
}

// Contains implements SiteFilter.
func (f HashFilter) Contains(v relation.Value) bool {
	if f.Mod == 0 {
		return false
	}
	return v.Hash64()%f.Mod == f.Rem
}

// Bounds implements SiteFilter: hash classes are unbounded.
func (f HashFilter) Bounds() (float64, float64, bool) { return 0, 0, false }

// DisjointWith implements DisjointChecker.
func (f HashFilter) DisjointWith(other SiteFilter) bool {
	o, ok := other.(HashFilter)
	return ok && o.Mod == f.Mod && o.Rem != f.Rem
}

func (f HashFilter) String() string { return fmt.Sprintf("hash(x) %% %d == %d", f.Mod, f.Rem) }

// HashPartition builds the per-site HashFilter slice for n sites.
func HashPartition(n int) []SiteFilter {
	out := make([]SiteFilter, n)
	for i := range out {
		out[i] = HashFilter{Mod: uint64(n), Rem: uint64(i)}
	}
	return out
}
