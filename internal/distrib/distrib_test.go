package distrib

import (
	"strings"
	"testing"

	"skalla/internal/relation"
)

func TestIntRange(t *testing.T) {
	r := IntRange{Lo: 1, Hi: 25}
	if !r.Contains(relation.NewInt(1)) || !r.Contains(relation.NewInt(25)) || !r.Contains(relation.NewFloat(12.5)) {
		t.Error("IntRange.Contains inside")
	}
	if r.Contains(relation.NewInt(0)) || r.Contains(relation.NewInt(26)) || r.Contains(relation.NewString("5")) {
		t.Error("IntRange.Contains outside")
	}
	lo, hi, ok := r.Bounds()
	if !ok || lo != 1 || hi != 25 {
		t.Errorf("Bounds = %v,%v,%v", lo, hi, ok)
	}
	if r.String() != "[1,25]" {
		t.Errorf("String = %q", r.String())
	}
}

func TestValueSet(t *testing.T) {
	s := NewValueSet(relation.NewInt(3), relation.NewInt(7))
	if !s.Contains(relation.NewInt(3)) || s.Contains(relation.NewInt(4)) {
		t.Error("ValueSet.Contains")
	}
	lo, hi, ok := s.Bounds()
	if !ok || lo != 3 || hi != 7 {
		t.Errorf("Bounds = %v,%v,%v", lo, hi, ok)
	}
	strSet := NewValueSet(relation.NewString("a"))
	if _, _, ok := strSet.Bounds(); ok {
		t.Error("string set must have no numeric bounds")
	}
	if _, _, ok := (ValueSet{}).Bounds(); ok {
		t.Error("empty set must have no bounds")
	}
	if got := NewValueSet(relation.NewInt(2), relation.NewInt(1)).String(); got != "{1,2}" {
		t.Errorf("String = %q", got)
	}
}

func rangePartition(rel, attr string, n int, per int64) *Distribution {
	filters := make([]SiteFilter, n)
	for i := range filters {
		filters[i] = IntRange{Lo: int64(i) * per, Hi: int64(i+1)*per - 1}
	}
	return &Distribution{
		Relation: rel,
		NumSites: n,
		Attrs:    []AttrInfo{{Attr: attr, Filters: filters, Disjoint: true}},
	}
}

func TestDistributionValidate(t *testing.T) {
	d := rangePartition("T", "nk", 4, 10)
	if err := d.Validate(); err != nil {
		t.Errorf("valid distribution rejected: %v", err)
	}
	bad := &Distribution{Relation: "T", NumSites: 2, Attrs: []AttrInfo{{
		Attr:     "nk",
		Disjoint: true,
		Filters:  []SiteFilter{IntRange{0, 10}, IntRange{5, 15}},
	}}}
	if err := bad.Validate(); err == nil {
		t.Error("overlapping disjoint filters must be rejected")
	}
	if err := (&Distribution{Relation: "T", NumSites: 0}).Validate(); err == nil {
		t.Error("zero sites must be rejected")
	}
	wrongLen := &Distribution{Relation: "T", NumSites: 3, Attrs: []AttrInfo{{
		Attr: "nk", Filters: []SiteFilter{IntRange{0, 1}},
	}}}
	if err := wrongLen.Validate(); err == nil {
		t.Error("filter count mismatch must be rejected")
	}
	// Disjoint sets validate.
	sets := &Distribution{Relation: "T", NumSites: 2, Attrs: []AttrInfo{{
		Attr: "nk", Disjoint: true,
		Filters: []SiteFilter{NewValueSet(relation.NewInt(1)), NewValueSet(relation.NewInt(2))},
	}}}
	if err := sets.Validate(); err != nil {
		t.Errorf("disjoint sets rejected: %v", err)
	}
	// Overlapping set/range mix detected.
	mix := &Distribution{Relation: "T", NumSites: 2, Attrs: []AttrInfo{{
		Attr: "nk", Disjoint: true,
		Filters: []SiteFilter{IntRange{0, 5}, NewValueSet(relation.NewInt(3))},
	}}}
	if err := mix.Validate(); err == nil {
		t.Error("range/set overlap must be rejected")
	}
	// nil filter on a disjoint attr overlaps everything.
	nilf := &Distribution{Relation: "T", NumSites: 2, Attrs: []AttrInfo{{
		Attr: "nk", Disjoint: true,
		Filters: []SiteFilter{nil, IntRange{0, 5}},
	}}}
	if err := nilf.Validate(); err == nil {
		t.Error("nil filter on disjoint attr must be rejected")
	}
}

func TestPartitionAttrsFDClosure(t *testing.T) {
	d := rangePartition("T", "NationKey", 4, 10)
	d.FDs = []FD{
		{From: "CustKey", To: "NationKey"},
		{From: "CustName", To: "CustKey"},
		{From: "Clerk", To: "Office"}, // irrelevant chain
	}
	pa := d.PartitionAttrs()
	for _, want := range []string{"NationKey", "CustKey", "CustName"} {
		if _, ok := pa[want]; !ok {
			t.Errorf("PartitionAttrs missing %q: %v", want, pa)
		}
	}
	if _, ok := pa["Clerk"]; ok {
		t.Error("Clerk must not be a partition attribute")
	}
	if !d.IsPartitionAttr("CustName") || d.IsPartitionAttr("Clerk") {
		t.Error("IsPartitionAttr")
	}
}

func TestAttrLookup(t *testing.T) {
	d := rangePartition("T", "nk", 2, 5)
	if _, ok := d.Attr("nk"); !ok {
		t.Error("Attr(nk) not found")
	}
	if _, ok := d.Attr("zz"); ok {
		t.Error("Attr(zz) found")
	}
	a, _ := d.Attr("nk")
	if a.Filter(0) == nil || a.Filter(-1) != nil || a.Filter(5) != nil {
		t.Error("Filter bounds handling")
	}
}

func TestCheckData(t *testing.T) {
	d := rangePartition("T", "nk", 2, 10)
	rel := relation.New(relation.MustSchema(relation.Column{Name: "nk", Kind: relation.KindInt}))
	rel.MustAppend(relation.Tuple{relation.NewInt(3)})
	if err := d.CheckData(0, rel); err != nil {
		t.Errorf("valid data rejected: %v", err)
	}
	if err := d.CheckData(1, rel); err == nil {
		t.Error("site 1 must reject nk=3 (its range is [10,19])")
	}
	other := relation.New(relation.MustSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	if err := d.CheckData(0, other); err == nil {
		t.Error("missing attribute must error")
	}
}

func TestCatalog(t *testing.T) {
	d := rangePartition("T", "nk", 2, 10)
	c := NewCatalog(d)
	if c.Distribution("T") != d {
		t.Error("Distribution lookup")
	}
	if c.Distribution("missing") != nil {
		t.Error("missing relation must return nil")
	}
	var nilCat *Catalog
	if nilCat.Distribution("T") != nil {
		t.Error("nil catalog must return nil")
	}
}

func TestFiltersOverlapUnknownKind(t *testing.T) {
	// Unknown filter kinds are conservatively treated as overlapping.
	type weird struct{ SiteFilter }
	if !filtersOverlap(weird{}, weird{}) {
		t.Error("unknown kinds must report overlap")
	}
}

func TestValueSetStringSorted(t *testing.T) {
	s := NewValueSet(relation.NewString("b"), relation.NewString("a"))
	if got := s.String(); !strings.HasPrefix(got, "{a") {
		t.Errorf("String not sorted: %q", got)
	}
}

func TestHashFilter(t *testing.T) {
	filters := HashPartition(4)
	if len(filters) != 4 {
		t.Fatalf("filters = %d", len(filters))
	}
	// Every value lands at exactly one site.
	for i := int64(0); i < 200; i++ {
		v := relation.NewInt(i)
		owners := 0
		for _, f := range filters {
			if f.Contains(v) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("value %d owned by %d sites", i, owners)
		}
	}
	// Kind-aware: INT 1 and STRING "1" may land at different sites but both
	// deterministically.
	for _, f := range filters {
		if f.Contains(relation.NewInt(1)) != f.Contains(relation.NewInt(1)) {
			t.Error("hash must be deterministic")
		}
	}
	// Disjointness proof feeds Validate.
	d := &Distribution{
		Relation: "T", NumSites: 4,
		Attrs: []AttrInfo{{Attr: "k", Filters: filters, Disjoint: true}},
	}
	if err := d.Validate(); err != nil {
		t.Errorf("hash partition must validate as disjoint: %v", err)
	}
	hf := HashFilter{Mod: 4, Rem: 1}
	if hf.DisjointWith(HashFilter{Mod: 5, Rem: 2}) {
		t.Error("different moduli cannot be proven disjoint")
	}
	if _, _, ok := hf.Bounds(); ok {
		t.Error("hash filters have no bounds")
	}
	if (HashFilter{}).Contains(relation.NewInt(1)) {
		t.Error("zero modulus matches nothing")
	}
	if hf.String() == "" {
		t.Error("String empty")
	}
}
