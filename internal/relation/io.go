package relation

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteGob serializes the relation to w in the binary format used by the
// data-generation and site tools.
func (r *Relation) WriteGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(r)
}

// ReadGob deserializes a relation written by WriteGob.
func ReadGob(rd io.Reader) (*Relation, error) {
	var r Relation
	if err := gob.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	if err := r.Schema.Validate(); err != nil {
		return nil, err
	}
	for i, t := range r.Tuples {
		if len(t) != len(r.Schema) {
			return nil, fmt.Errorf("relation: row %d arity %d does not match schema %s", i, len(t), r.Schema)
		}
	}
	return &r, nil
}

// SaveGobFile writes the relation to a file.
func (r *Relation) SaveGobFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := r.WriteGob(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadGobFile reads a relation from a file written by SaveGobFile.
func LoadGobFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGob(bufio.NewReader(f))
}

// WriteCSV writes the relation as CSV with a "name:KIND" header row, for
// inspection and interchange. NULLs are written as empty cells.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(r.Schema))
	for i, c := range r.Schema {
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(r.Schema))
	for _, t := range r.Tuples {
		for i, v := range t {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation written by WriteCSV, using the typed header to
// convert cells back to values.
func ReadCSV(rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: csv header: %w", err)
	}
	schema := make(Schema, len(header))
	for i, h := range header {
		name, kind, err := parseHeaderCell(h)
		if err != nil {
			return nil, err
		}
		schema[i] = Column{Name: name, Kind: kind}
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	out := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: csv line %d: %w", line, err)
		}
		t := make(Tuple, len(schema))
		for i, cell := range rec {
			v, err := parseCell(cell, schema[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: csv line %d column %s: %w", line, schema[i].Name, err)
			}
			t[i] = v
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

func parseHeaderCell(h string) (string, Kind, error) {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i] == ':' {
			name, kindStr := h[:i], h[i+1:]
			for _, k := range []Kind{KindNull, KindInt, KindFloat, KindString, KindBool} {
				if k.String() == kindStr {
					return name, k, nil
				}
			}
			return "", 0, fmt.Errorf("relation: unknown kind %q in csv header cell %q", kindStr, h)
		}
	}
	return "", 0, fmt.Errorf("relation: csv header cell %q lacks :KIND suffix", h)
}

func parseCell(cell string, kind Kind) (Value, error) {
	if cell == "" {
		return Null, nil
	}
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Null, err
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Null, err
		}
		return NewFloat(f), nil
	case KindString:
		return NewString(cell), nil
	case KindBool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return Null, err
		}
		return NewBool(b), nil
	default:
		return Null, fmt.Errorf("cannot parse cell into kind %s", kind)
	}
}
