package relation

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func ioTestRel() *Relation {
	r := New(MustSchema(
		Column{"id", KindInt},
		Column{"price", KindFloat},
		Column{"name", KindString},
		Column{"flag", KindBool},
	))
	r.MustAppend(Tuple{NewInt(1), NewFloat(2.5), NewString("a,b\"c"), NewBool(true)})
	r.MustAppend(Tuple{NewInt(-7), Null, NewString(""), NewBool(false)})
	r.MustAppend(Tuple{Null, NewFloat(0), NewString("line\nbreak"), Null})
	return r
}

func TestGobRoundTrip(t *testing.T) {
	r := ioTestRel()
	var buf bytes.Buffer
	if err := r.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualMultiset(r) {
		t.Errorf("gob round trip changed relation:\n%s\nvs\n%s", got, r)
	}
}

func TestGobFileRoundTrip(t *testing.T) {
	r := ioTestRel()
	path := filepath.Join(t.TempDir(), "rel.gob")
	if err := r.SaveGobFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGobFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualMultiset(r) {
		t.Error("gob file round trip changed relation")
	}
	if _, err := LoadGobFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file must error")
	}
}

func TestReadGobRejectsCorrupt(t *testing.T) {
	if _, err := ReadGob(strings.NewReader("not gob")); err == nil {
		t.Error("corrupt stream must error")
	}
	// The column-major codec rejects ragged relations at encode time.
	bad := &Relation{
		Schema: MustSchema(Column{"a", KindInt}),
		Tuples: []Tuple{{NewInt(1), NewInt(2)}},
	}
	var buf bytes.Buffer
	if err := bad.WriteGob(&buf); err == nil {
		t.Error("arity mismatch must be rejected at encode time")
	}
}

// NULL round-trips through CSV only when the column's empty-string encoding
// is unambiguous; the string "" and NULL collide by design, so compare field
// by field except that case.
func TestCSVRoundTrip(t *testing.T) {
	r := ioTestRel()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(r.Schema) {
		t.Fatalf("schema: %s vs %s", got.Schema, r.Schema)
	}
	if got.Len() != r.Len() {
		t.Fatalf("rows: %d vs %d", got.Len(), r.Len())
	}
	for i := range r.Tuples {
		for j := range r.Tuples[i] {
			want := r.Tuples[i][j]
			if want.Kind == KindString && want.Str == "" {
				want = Null // empty string reads back as NULL
			}
			if !got.Tuples[i][j].Equal(want) {
				t.Errorf("cell [%d][%d]: %v vs %v", i, j, got.Tuples[i][j], want)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                  // no header
		"a\n1",              // missing kind
		"a:WEIRD\n1",        // unknown kind
		"a:INT\nxx",         // bad int
		"a:FLOAT\nxx",       // bad float
		"a:BOOL\nxx",        // bad bool
		"a:INT,a:INT\n1,2",  // duplicate columns
		"a:NULL\nsomething", // cannot parse into NULL kind
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("ReadCSV(%q): expected error", src)
		}
	}
	// Valid minimal file.
	got, err := ReadCSV(strings.NewReader("a:INT,b:STRING\n1,x\n,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !got.Tuples[1][0].IsNull() {
		t.Errorf("parsed: %s", got)
	}
}
