package relation

import "testing"

func TestMemBytes(t *testing.T) {
	var nilRel *Relation
	if got := nilRel.MemBytes(); got != 0 {
		t.Fatalf("nil relation MemBytes = %d, want 0", got)
	}

	schema := MustSchema(
		Column{Name: "g", Kind: KindInt},
		Column{Name: "s", Kind: KindString},
	)
	r := New(schema)
	if got, want := r.MemBytes(), int64(2*TupleMemBytes); got != want {
		t.Fatalf("empty relation MemBytes = %d, want %d (schema headers)", got, want)
	}

	r.MustAppend(Tuple{NewInt(1), NewString("abcd")})
	perRow := int64(TupleMemBytes + 2*ValueMemBytes + 4) // header + 2 values + "abcd"
	if got, want := r.MemBytes(), int64(2*TupleMemBytes)+perRow; got != want {
		t.Fatalf("1-row MemBytes = %d, want %d", got, want)
	}
	if got := r.Tuples[0].MemBytes(); got != perRow {
		t.Fatalf("Tuple.MemBytes = %d, want %d", got, perRow)
	}

	r.MustAppend(Tuple{NewInt(2), NewString("")})
	if got, want := r.MemBytes(), int64(2*TupleMemBytes)+perRow+int64(TupleMemBytes+2*ValueMemBytes); got != want {
		t.Fatalf("2-row MemBytes = %d, want %d", got, want)
	}
}
