package relation

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Tuple is one row of a relation. Its length always matches the relation's
// schema.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Key returns the canonical grouping key of the tuple restricted to the
// given column positions. The hashed key layer (KeyHash/KeyIndex/KeySet) is
// the allocation-free replacement on hot paths; Key remains for debugging and
// as the reference encoding the hashed layer must agree with.
func (t Tuple) Key(idx []int) string {
	buf := make([]byte, 0, 16*len(idx))
	for _, i := range idx {
		buf = t[i].appendKey(buf)
	}
	return string(buf)
}

// KeyHash returns the 64-bit FNV-1a hash of the tuple's canonical grouping
// key over the given column positions, without materializing the key bytes.
// Two tuples with equal Key strings always have equal KeyHash values.
func (t Tuple) KeyHash(idx []int) uint64 {
	h := uint64(fnvOffset64)
	for _, i := range idx {
		h = t[i].hashKeyInto(h)
	}
	return h
}

// keyColsEqual reports whether a restricted to aIdx and b restricted to bIdx
// encode the same grouping key (identity semantics, matching Tuple.Key
// equality).
func keyColsEqual(a Tuple, aIdx []int, b Tuple, bIdx []int) bool {
	if len(aIdx) != len(bIdx) {
		return false
	}
	for i := range aIdx {
		if !a[aIdx[i]].keyEqual(b[bIdx[i]]) {
			return false
		}
	}
	return true
}

// Relation is an in-memory row-oriented relation (multiset of tuples).
type Relation struct {
	Schema Schema
	Tuples []Tuple

	// pooled links a decoded wire block back to its BlockPool storage so
	// Recycle can return it; nil for ordinary relations.
	pooled *blockStorage
}

// New returns an empty relation with the given schema.
func New(schema Schema) *Relation {
	return &Relation{Schema: schema}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Approximate in-memory cost of one Value (Kind + Int + Float + string
// header, padded) and of one Tuple's slice header. Used by MemBytes and by
// the coordinator's memory budgeting; the numbers track the 64-bit layout of
// the structs, not exact allocator accounting.
const (
	// ValueMemBytes estimates one Value's in-memory size.
	ValueMemBytes = 48
	// TupleMemBytes estimates one Tuple's slice-header overhead.
	TupleMemBytes = 24
)

// MemBytes estimates the relation's in-memory footprint in bytes: slice
// headers plus per-value storage plus string payloads. It is an O(rows)
// estimate for memory budgeting (admission control charges it at staging and
// merge boundaries), not an exact allocator measurement.
func (r *Relation) MemBytes() int64 {
	if r == nil {
		return 0
	}
	n := int64(TupleMemBytes) * int64(len(r.Schema))
	for _, t := range r.Tuples {
		n += t.MemBytes()
	}
	return n
}

// MemBytes estimates one tuple's in-memory footprint (slice header, values,
// string payloads), matching Relation.MemBytes per-row accounting.
func (t Tuple) MemBytes() int64 {
	n := int64(TupleMemBytes) + ValueMemBytes*int64(len(t))
	for i := range t {
		if t[i].Kind == KindString {
			n += int64(len(t[i].Str))
		}
	}
	return n
}

// Append adds a tuple after checking arity.
func (r *Relation) Append(t Tuple) error {
	if len(t) != len(r.Schema) {
		return fmt.Errorf("relation: tuple arity %d does not match schema %s", len(t), r.Schema)
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend is Append but panics on arity mismatch.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema.Clone(), Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// Project returns a new relation restricted to the named columns, preserving
// duplicates and order.
func (r *Relation) Project(names []string) (*Relation, error) {
	idx, err := r.Schema.Indexes(names)
	if err != nil {
		return nil, err
	}
	out := New(r.Schema.Project(idx))
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		nt := make(Tuple, len(idx))
		for j, k := range idx {
			nt[j] = t[k]
		}
		out.Tuples[i] = nt
	}
	return out, nil
}

// DistinctProject returns the set of distinct rows over the named columns,
// in first-seen order.
func (r *Relation) DistinctProject(names []string) (*Relation, error) {
	idx, err := r.Schema.Indexes(names)
	if err != nil {
		return nil, err
	}
	out := New(r.Schema.Project(idx))
	seen := NewKeySet(len(r.Tuples))
	for _, t := range r.Tuples {
		if key, fresh := seen.Add(t, idx); fresh {
			out.Tuples = append(out.Tuples, key)
		}
	}
	return out, nil
}

// Filter returns the rows for which keep returns true.
func (r *Relation) Filter(keep func(Tuple) bool) *Relation {
	out := New(r.Schema)
	for _, t := range r.Tuples {
		if keep(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Union appends all tuples of o (multiset union). Schemas must match.
func (r *Relation) Union(o *Relation) error {
	if !r.Schema.Equal(o.Schema) {
		return fmt.Errorf("relation: union schema mismatch: %s vs %s", r.Schema, o.Schema)
	}
	r.Tuples = append(r.Tuples, o.Tuples...)
	return nil
}

// DedupBy removes duplicate rows with equal keys over the given columns,
// keeping the first occurrence.
func (r *Relation) DedupBy(names []string) error {
	idx, err := r.Schema.Indexes(names)
	if err != nil {
		return err
	}
	seen := NewKeySet(len(r.Tuples))
	out := r.Tuples[:0]
	for _, t := range r.Tuples {
		if _, fresh := seen.Add(t, idx); fresh {
			out = append(out, t)
		}
	}
	r.Tuples = out
	return nil
}

// Sort orders the tuples lexicographically over all columns using the total
// sort order on values. It is used for deterministic output and result
// comparison.
func (r *Relation) Sort() {
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		a, b := r.Tuples[i], r.Tuples[j]
		for k := range a {
			if a[k].Equal(b[k]) {
				continue
			}
			return a[k].sortLess(b[k])
		}
		return false
	})
}

// EqualMultiset reports whether two relations hold the same multiset of
// tuples under the same schema, ignoring row order.
func (r *Relation) EqualMultiset(o *Relation) bool {
	if !r.Schema.Equal(o.Schema) || len(r.Tuples) != len(o.Tuples) {
		return false
	}
	all := identityCols(len(r.Schema))
	counts := NewKeyCounter(len(r.Tuples))
	for _, t := range r.Tuples {
		counts.Inc(t, all)
	}
	for _, t := range o.Tuples {
		if counts.Dec(t, all) < 0 {
			return false
		}
	}
	return true
}

// String renders the relation as an aligned text table (header + rows).
// Intended for examples and debugging; large relations are truncated.
func (r *Relation) String() string { return r.Format(50) }

// Format renders up to maxRows rows as an aligned text table.
func (r *Relation) Format(maxRows int) string {
	widths := make([]int, len(r.Schema))
	for i, c := range r.Schema {
		widths[i] = len(c.Name)
	}
	n := len(r.Tuples)
	shown := n
	if maxRows >= 0 && shown > maxRows {
		shown = maxRows
	}
	cells := make([][]string, shown)
	for i := 0; i < shown; i++ {
		row := make([]string, len(r.Schema))
		for j, v := range r.Tuples[i] {
			row[j] = v.String()
			if len(row[j]) > widths[j] {
				widths[j] = len(row[j])
			}
		}
		cells[i] = row
	}
	last := len(r.Schema) - 1
	var b strings.Builder
	for j, c := range r.Schema {
		if j > 0 {
			b.WriteString("  ")
		}
		if j == last {
			b.WriteString(c.Name) // no trailing padding
		} else {
			fmt.Fprintf(&b, "%-*s", widths[j], c.Name)
		}
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for j, s := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			if j == last {
				b.WriteString(s)
			} else {
				fmt.Fprintf(&b, "%-*s", widths[j], s)
			}
		}
		b.WriteByte('\n')
	}
	if shown < n {
		fmt.Fprintf(&b, "... (%d more rows)\n", n-shown)
	}
	return b.String()
}

// EqualMultisetApprox compares two relations like EqualMultiset but allows a
// relative tolerance on FLOAT values. Distributed aggregation sums partial
// results in arrival order, so float aggregates can differ in the last bits
// between plans or runs — like any parallel floating-point sum; exact
// comparison is only appropriate for integer aggregates.
func (r *Relation) EqualMultisetApprox(o *Relation, relTol float64) bool {
	if !r.Schema.Equal(o.Schema) || len(r.Tuples) != len(o.Tuples) {
		return false
	}
	a, b := r.Clone(), o.Clone()
	a.Sort()
	b.Sort()
	for i := range a.Tuples {
		for j := range a.Tuples[i] {
			if !valueApproxEqual(a.Tuples[i][j], b.Tuples[i][j], relTol) {
				return false
			}
		}
	}
	return true
}

func valueApproxEqual(x, y Value, relTol float64) bool {
	if x.Equal(y) {
		return true
	}
	// Only FLOAT values earn tolerance: integer aggregates (COUNT, integer
	// SUM/MIN/MAX) are exact and must match exactly.
	if x.Kind != KindFloat || y.Kind != KindFloat {
		return false
	}
	xf, xok := x.AsFloat()
	yf, yok := y.AsFloat()
	if !xok || !yok {
		return false
	}
	diff := math.Abs(xf - yf)
	scale := math.Max(math.Abs(xf), math.Abs(yf))
	if scale < 1 {
		scale = 1
	}
	return diff/scale <= relTol
}
