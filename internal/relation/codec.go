package relation

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"skalla/internal/obs"
)

// This file implements the Skalla wire format: a hand-rolled, length-prefixed,
// column-major binary codec for relations. It replaces per-payload gob on
// every data-plane path (site↔coordinator transport, disk segments): gob is
// reflection-based and self-describing, re-sending type information with
// every fresh encoder, while the bytes shipped per group are the primary cost
// of distributed query processing (Theorem 2).
//
// Stream layout: a stream is a sequence of frames, each a uvarint body length
// followed by the body. A body starts with a frame kind byte:
//
//	frameInline — the relation's schema follows inline, then the rows
//	frameCached — the rows reuse the stream's previously sent schema
//
// An Encoder sends the schema once and switches to frameCached while the
// schema is unchanged, so a stream of H_i blocks pays for its schema exactly
// once. Rows are encoded column-major: per column a NULL bitmap (bit set =
// NULL), then an encoding byte (uniform/mixed), then the non-NULL values —
// zigzag varints for INT, raw little-endian bits for FLOAT, length-prefixed
// bytes for STRING, and packed bits for BOOL. The mixed fallback tags each
// value with its kind, preserving exact round-trips for columns whose dynamic
// value kinds disagree with the declared column kind.

const (
	frameInline = 0x01
	frameCached = 0x02

	// maxFrameBody bounds a single frame (1 GiB) so a corrupt length prefix
	// cannot drive an unbounded allocation.
	maxFrameBody = 1 << 30
)

const (
	encUniform = 0x00
	encMixed   = 0x01
)

// ByteScanner is the reader a Decoder consumes: bytes.Buffer, bytes.Reader
// and bufio.Reader all satisfy it, which lets a Decoder share a buffered
// connection reader with other protocol layers without read-ahead conflicts.
type ByteScanner interface {
	io.Reader
	io.ByteReader
}

// Encoder writes relations in the Skalla wire format. The schema is emitted
// inline on the first frame and whenever it changes; in between, frames carry
// only row data. The zero-allocation steady state reuses one scratch buffer.
type Encoder struct {
	w         io.Writer
	schema    Schema
	hasSchema bool
	body      []byte
	bytes     int64
	lenBuf    [binary.MaxVarintLen64]byte
}

// NewEncoder creates an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Bytes returns the total bytes this encoder has written (frame headers
// included) — the per-stream counterpart of the process-wide
// CodecEncodeBytes counter, used for per-query codec accounting.
func (e *Encoder) Bytes() int64 { return e.bytes }

// Encode writes one relation frame.
func (e *Encoder) Encode(r *Relation) error {
	for i, t := range r.Tuples {
		if len(t) != len(r.Schema) {
			return fmt.Errorf("relation: row %d arity %d does not match schema %s", i, len(t), r.Schema)
		}
	}
	body := e.body[:0]
	if e.hasSchema && e.schema.Equal(r.Schema) {
		body = append(body, frameCached)
	} else {
		body = append(body, frameInline)
		body = appendSchema(body, r.Schema)
		e.schema = r.Schema.Clone() // callers may mutate their schema later
		e.hasSchema = true
	}
	body = appendColumns(body, r)
	e.body = body[:0] // retain capacity
	n := binary.PutUvarint(e.lenBuf[:], uint64(len(body)))
	if _, err := e.w.Write(e.lenBuf[:n]); err != nil {
		return err
	}
	if _, err := e.w.Write(body); err != nil {
		return err
	}
	e.bytes += int64(n + len(body))
	obs.CodecEncodeBytes.Add(int64(n + len(body)))
	obs.CodecFrames.With("encode").Inc()
	return nil
}

func appendSchema(body []byte, s Schema) []byte {
	body = binary.AppendUvarint(body, uint64(len(s)))
	for _, c := range s {
		body = binary.AppendUvarint(body, uint64(len(c.Name)))
		body = append(body, c.Name...)
		body = append(body, byte(c.Kind))
	}
	return body
}

var zeroBytes [256]byte

func appendZeros(body []byte, n int) []byte {
	for n > len(zeroBytes) {
		body = append(body, zeroBytes[:]...)
		n -= len(zeroBytes)
	}
	return append(body, zeroBytes[:n]...)
}

func appendColumns(body []byte, r *Relation) []byte {
	n := len(r.Tuples)
	body = binary.AppendUvarint(body, uint64(n))
	nb := (n + 7) / 8
	for j, col := range r.Schema {
		bitmap := len(body)
		body = appendZeros(body, nb)
		nonNull := 0
		uniform := true
		for i, t := range r.Tuples {
			v := t[j]
			if v.IsNull() {
				body[bitmap+i/8] |= 1 << (i % 8)
			} else {
				nonNull++
				if v.Kind != col.Kind {
					uniform = false
				}
			}
		}
		if uniform {
			body = append(body, encUniform)
			body = appendUniformColumn(body, r, j, col.Kind, nonNull)
		} else {
			body = append(body, encMixed)
			body = appendMixedColumn(body, r, j)
		}
	}
	return body
}

func appendUniformColumn(body []byte, r *Relation, j int, kind Kind, nonNull int) []byte {
	switch kind {
	case KindNull:
		// All values are NULL (a non-NULL value always has a non-NULL kind).
	case KindInt:
		for _, t := range r.Tuples {
			if v := t[j]; !v.IsNull() {
				body = binary.AppendVarint(body, v.Int)
			}
		}
	case KindFloat:
		for _, t := range r.Tuples {
			if v := t[j]; !v.IsNull() {
				body = binary.LittleEndian.AppendUint64(body, math.Float64bits(v.Float))
			}
		}
	case KindString:
		for _, t := range r.Tuples {
			if v := t[j]; !v.IsNull() {
				body = binary.AppendUvarint(body, uint64(len(v.Str)))
				body = append(body, v.Str...)
			}
		}
	case KindBool:
		packed := len(body)
		body = appendZeros(body, (nonNull+7)/8)
		k := 0
		for _, t := range r.Tuples {
			if v := t[j]; !v.IsNull() {
				if v.Int != 0 {
					body[packed+k/8] |= 1 << (k % 8)
				}
				k++
			}
		}
	}
	return body
}

func appendMixedColumn(body []byte, r *Relation, j int) []byte {
	for _, t := range r.Tuples {
		v := t[j]
		if v.IsNull() {
			continue
		}
		body = append(body, byte(v.Kind))
		switch v.Kind {
		case KindInt, KindBool:
			body = binary.AppendVarint(body, v.Int)
		case KindFloat:
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(v.Float))
		case KindString:
			body = binary.AppendUvarint(body, uint64(len(v.Str)))
			body = append(body, v.Str...)
		}
	}
	return body
}

// Decoder reads relations written by an Encoder, caching the stream schema
// across frames. With SetPool, decoded blocks borrow tuple storage from a
// BlockPool so steady-state streaming rounds allocate O(1); the consumer
// returns a fully merged block with Recycle.
type Decoder struct {
	r         ByteScanner
	schema    Schema
	hasSchema bool
	body      []byte
	pool      *BlockPool
}

// NewDecoder creates a decoder reading from r.
func NewDecoder(r ByteScanner) *Decoder { return &Decoder{r: r} }

// SetPool makes the decoder allocate decoded blocks from pool.
func (d *Decoder) SetPool(pool *BlockPool) { d.pool = pool }

// Decode reads one relation frame. It returns io.EOF (possibly wrapped as
// io.ErrUnexpectedEOF mid-frame) when the stream ends.
func (d *Decoder) Decode() (*Relation, error) {
	ln, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, err
	}
	if ln > maxFrameBody {
		return nil, fmt.Errorf("relation: codec frame of %d bytes exceeds limit", ln)
	}
	if uint64(cap(d.body)) < ln {
		d.body = make([]byte, ln)
	}
	body := d.body[:ln]
	if _, err := io.ReadFull(d.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	cur := &cursor{b: body}
	kind, err := cur.byte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case frameInline:
		schema, err := readSchema(cur)
		if err != nil {
			return nil, err
		}
		if err := schema.Validate(); err != nil {
			return nil, err
		}
		d.schema, d.hasSchema = schema, true
	case frameCached:
		if !d.hasSchema {
			return nil, fmt.Errorf("relation: codec frame references schema before one was sent")
		}
	default:
		return nil, fmt.Errorf("relation: unknown codec frame kind 0x%02x", kind)
	}
	rel, err := d.readColumns(cur)
	if err != nil {
		return nil, err
	}
	if cur.pos != len(cur.b) {
		return nil, fmt.Errorf("relation: codec frame has %d trailing bytes", len(cur.b)-cur.pos)
	}
	obs.CodecDecodeBytes.Add(int64(uvarintLen(ln)) + int64(ln))
	obs.CodecFrames.With("decode").Inc()
	return rel, nil
}

// uvarintLen is the encoded size of the frame's length prefix.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// cursor is a bounds-checked reader over a frame body.
type cursor struct {
	b   []byte
	pos int
}

var errShortFrame = fmt.Errorf("relation: truncated codec frame")

func (c *cursor) byte() (byte, error) {
	if c.pos >= len(c.b) {
		return 0, errShortFrame
	}
	v := c.b[c.pos]
	c.pos++
	return v, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		return 0, errShortFrame
	}
	c.pos += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.b[c.pos:])
	if n <= 0 {
		return 0, errShortFrame
	}
	c.pos += n
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.pos+n > len(c.b) {
		return nil, errShortFrame
	}
	v := c.b[c.pos : c.pos+n]
	c.pos += n
	return v, nil
}

func (c *cursor) count(limit int, what string) (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, fmt.Errorf("relation: codec %s count %d exceeds limit %d", what, v, limit)
	}
	return int(v), nil
}

func readSchema(cur *cursor) (Schema, error) {
	ncols, err := cur.count(1<<20, "column")
	if err != nil {
		return nil, err
	}
	schema := make(Schema, ncols)
	for i := range schema {
		nameLen, err := cur.count(1<<20, "name length")
		if err != nil {
			return nil, err
		}
		name, err := cur.bytes(nameLen)
		if err != nil {
			return nil, err
		}
		kind, err := cur.byte()
		if err != nil {
			return nil, err
		}
		if Kind(kind) > KindBool {
			return nil, fmt.Errorf("relation: codec schema column %d has unknown kind %d", i, kind)
		}
		schema[i] = Column{Name: string(name), Kind: Kind(kind)}
	}
	return schema, nil
}

func (d *Decoder) readColumns(cur *cursor) (*Relation, error) {
	nrows, err := cur.count(maxFrameBody, "row")
	if err != nil {
		return nil, err
	}
	schema := d.schema
	cols := len(schema)
	var rel *Relation
	if d.pool != nil {
		rel = d.pool.Get(schema, nrows)
	} else {
		flat := make([]Value, nrows*cols)
		tuples := make([]Tuple, nrows)
		for i := range tuples {
			tuples[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
		}
		rel = &Relation{Schema: schema, Tuples: tuples}
	}
	nb := (nrows + 7) / 8
	for j := 0; j < cols; j++ {
		bitmap, err := cur.bytes(nb)
		if err != nil {
			return nil, err
		}
		enc, err := cur.byte()
		if err != nil {
			return nil, err
		}
		switch enc {
		case encUniform:
			if err := readUniformColumn(cur, rel, j, schema[j].Kind, bitmap); err != nil {
				return nil, err
			}
		case encMixed:
			if err := readMixedColumn(cur, rel, j, bitmap); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("relation: unknown codec column encoding 0x%02x", enc)
		}
	}
	return rel, nil
}

func isNullAt(bitmap []byte, i int) bool { return bitmap[i/8]&(1<<(i%8)) != 0 }

func readUniformColumn(cur *cursor, rel *Relation, j int, kind Kind, bitmap []byte) error {
	switch kind {
	case KindNull:
		for _, t := range rel.Tuples {
			t[j] = Null
		}
	case KindInt:
		for i, t := range rel.Tuples {
			if isNullAt(bitmap, i) {
				t[j] = Null
				continue
			}
			v, err := cur.varint()
			if err != nil {
				return err
			}
			t[j] = Value{Kind: KindInt, Int: v}
		}
	case KindFloat:
		for i, t := range rel.Tuples {
			if isNullAt(bitmap, i) {
				t[j] = Null
				continue
			}
			raw, err := cur.bytes(8)
			if err != nil {
				return err
			}
			t[j] = Value{Kind: KindFloat, Float: math.Float64frombits(binary.LittleEndian.Uint64(raw))}
		}
	case KindString:
		for i, t := range rel.Tuples {
			if isNullAt(bitmap, i) {
				t[j] = Null
				continue
			}
			n, err := cur.count(maxFrameBody, "string length")
			if err != nil {
				return err
			}
			raw, err := cur.bytes(n)
			if err != nil {
				return err
			}
			t[j] = Value{Kind: KindString, Str: string(raw)}
		}
	case KindBool:
		nonNull := 0
		for i := 0; i < len(rel.Tuples); i++ {
			if !isNullAt(bitmap, i) {
				nonNull++
			}
		}
		packed, err := cur.bytes((nonNull + 7) / 8)
		if err != nil {
			return err
		}
		k := 0
		for i, t := range rel.Tuples {
			if isNullAt(bitmap, i) {
				t[j] = Null
				continue
			}
			v := Value{Kind: KindBool}
			if packed[k/8]&(1<<(k%8)) != 0 {
				v.Int = 1
			}
			t[j] = v
			k++
		}
	}
	return nil
}

func readMixedColumn(cur *cursor, rel *Relation, j int, bitmap []byte) error {
	for i, t := range rel.Tuples {
		if isNullAt(bitmap, i) {
			t[j] = Null
			continue
		}
		kind, err := cur.byte()
		if err != nil {
			return err
		}
		switch Kind(kind) {
		case KindInt, KindBool:
			v, err := cur.varint()
			if err != nil {
				return err
			}
			t[j] = Value{Kind: Kind(kind), Int: v}
		case KindFloat:
			raw, err := cur.bytes(8)
			if err != nil {
				return err
			}
			t[j] = Value{Kind: KindFloat, Float: math.Float64frombits(binary.LittleEndian.Uint64(raw))}
		case KindString:
			n, err := cur.count(maxFrameBody, "string length")
			if err != nil {
				return err
			}
			raw, err := cur.bytes(n)
			if err != nil {
				return err
			}
			t[j] = Value{Kind: KindString, Str: string(raw)}
		default:
			return fmt.Errorf("relation: codec mixed value with invalid kind %d", kind)
		}
	}
	return nil
}

// Marshal encodes a relation as one self-contained frame (schema inline).
func Marshal(r *Relation) ([]byte, error) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a relation from a single self-contained frame.
func Unmarshal(b []byte) (*Relation, error) {
	rd := bytes.NewReader(b)
	rel, err := NewDecoder(rd).Decode()
	if err != nil {
		return nil, err
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("relation: %d trailing bytes after codec frame", rd.Len())
	}
	return rel, nil
}

// GobEncode makes gob envelopes (transport request/response structs, legacy
// files) carry relations in the compact wire format rather than gob's
// reflective struct encoding.
func (r *Relation) GobEncode() ([]byte, error) { return Marshal(r) }

// GobDecode is the inverse of GobEncode.
func (r *Relation) GobDecode(b []byte) error {
	rel, err := Unmarshal(b)
	if err != nil {
		return err
	}
	r.Schema, r.Tuples, r.pooled = rel.Schema, rel.Tuples, nil
	return nil
}

// BlockPool recycles decoded-block storage (the row-pointer slice and the
// flat value array backing the tuples) across streaming merges. Get hands out
// a relation whose tuples are carved from pooled storage; Recycle returns the
// storage once the consumer has merged the block. Safe for concurrent use.
type BlockPool struct {
	p sync.Pool
}

type blockStorage struct {
	pool   *BlockPool
	tuples []Tuple
	flat   []Value
}

// Get returns a pooled relation with rows tuples of arity len(schema). Every
// cell must be written by the caller (the decoder does) — recycled storage
// holds stale values.
func (bp *BlockPool) Get(schema Schema, rows int) *Relation {
	bs, _ := bp.p.Get().(*blockStorage)
	if bs == nil {
		bs = &blockStorage{pool: bp}
	}
	cols := len(schema)
	need := rows * cols
	if cap(bs.flat) < need {
		bs.flat = make([]Value, need)
	}
	if cap(bs.tuples) < rows {
		bs.tuples = make([]Tuple, rows)
	}
	bs.flat = bs.flat[:need]
	bs.tuples = bs.tuples[:rows]
	for i := range bs.tuples {
		bs.tuples[i] = bs.flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return &Relation{Schema: schema, Tuples: bs.tuples, pooled: bs}
}

// Recycle returns a pooled relation's storage for reuse; it is a no-op for
// relations not obtained from a BlockPool. The caller must not use r (or
// retain references into its tuples' backing storage) afterwards; values
// copied out of it — including strings, which are immutable — stay valid.
func Recycle(r *Relation) {
	if r == nil || r.pooled == nil {
		return
	}
	bs := r.pooled
	r.pooled = nil
	r.Tuples = nil
	bs.pool.p.Put(bs)
}
