package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null must be NULL")
	}
	if v := NewInt(42); v.Kind != KindInt || v.Int != 42 {
		t.Errorf("NewInt: got %+v", v)
	}
	if v := NewFloat(2.5); v.Kind != KindFloat || v.Float != 2.5 {
		t.Errorf("NewFloat: got %+v", v)
	}
	if v := NewString("x"); v.Kind != KindString || v.Str != "x" {
		t.Errorf("NewString: got %+v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Errorf("NewBool(true).Bool() = false")
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false).Bool() = true")
	}
	if NewInt(1).Bool() {
		t.Error("Bool() must be false for non-bool kinds")
	}
}

func TestValueAsFloat(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Errorf("AsFloat(int 3) = %v,%v", f, ok)
	}
	if f, ok := NewFloat(1.5).AsFloat(); !ok || f != 1.5 {
		t.Errorf("AsFloat(float 1.5) = %v,%v", f, ok)
	}
	if _, ok := NewString("a").AsFloat(); ok {
		t.Error("AsFloat(string) must fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("AsFloat(null) must fail")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{NewInt(1), NewInt(1), true},
		{NewInt(1), NewInt(2), false},
		{NewInt(1), NewFloat(1), true},
		{NewFloat(1.5), NewFloat(1.5), true},
		{NewString("a"), NewString("a"), true},
		{NewString("a"), NewString("b"), false},
		{NewBool(true), NewBool(true), true},
		{NewBool(true), NewBool(false), false},
		{Null, Null, true},
		{Null, NewInt(0), false},
		{NewString("1"), NewInt(1), false},
		{NewBool(true), NewInt(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b   Value
		want   int
		wantOK bool
	}{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(3), NewInt(2), 1, true},
		{NewInt(1), NewFloat(1.5), -1, true},
		{NewFloat(2.5), NewInt(2), 1, true},
		{NewString("a"), NewString("b"), -1, true},
		{NewString("b"), NewString("b"), 0, true},
		{NewBool(false), NewBool(true), -1, true},
		{Null, NewInt(1), 0, false},
		{NewInt(1), Null, 0, false},
		{NewString("a"), NewInt(1), 0, false},
	}
	for _, c := range cases {
		got, ok := c.a.Compare(c.b)
		if ok != c.wantOK || (ok && got != c.want) {
			t.Errorf("Compare(%v, %v) = %v,%v want %v,%v", c.a, c.b, got, ok, c.want, c.wantOK)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "STRING", KindBool: "BOOL",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// Keys must be collision-free: two tuples get the same key iff their key
// columns are pairwise Equal. Checked with testing/quick over random values.
func TestTupleKeyCollisionFree(t *testing.T) {
	gen := func(i int64, f float64, s string, pick uint8) Value {
		switch pick % 4 {
		case 0:
			return NewInt(i)
		case 1:
			return NewFloat(f)
		case 2:
			return NewString(s)
		default:
			return NewBool(i%2 == 0)
		}
	}
	prop := func(i1, i2 int64, f1, f2 float64, s1, s2 string, p1, p2 uint8) bool {
		if math.IsNaN(f1) || math.IsNaN(f2) {
			return true
		}
		a, b := gen(i1, f1, s1, p1), gen(i2, f2, s2, p2)
		ta, tb := Tuple{a}, Tuple{b}
		sameKey := ta.Key([]int{0}) == tb.Key([]int{0})
		// Key encoding is exact per kind; cross-kind numeric Equal (int vs
		// float) is the one place identity and Equal may disagree, which is
		// fine for grouping (kinds within a column are homogeneous).
		if a.Kind == b.Kind {
			return sameKey == a.Equal(b)
		}
		return !sameKey
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyMultiColumn(t *testing.T) {
	// ("ab","c") must not collide with ("a","bc"): length prefixes prevent it.
	t1 := Tuple{NewString("ab"), NewString("c")}
	t2 := Tuple{NewString("a"), NewString("bc")}
	if t1.Key([]int{0, 1}) == t2.Key([]int{0, 1}) {
		t.Error("multi-column string keys collided")
	}
}

func TestValueHash64(t *testing.T) {
	if relation := NewInt(1).Hash64(); relation != NewInt(1).Hash64() {
		t.Error("hash must be deterministic")
	}
	if NewInt(1).Hash64() == NewString("1").Hash64() {
		t.Error("hash must be kind-aware")
	}
	if NewInt(1).Hash64() == NewInt(2).Hash64() {
		t.Error("distinct ints should hash differently")
	}
	if Null.Hash64() == NewInt(0).Hash64() {
		t.Error("NULL must not collide with 0")
	}
}
