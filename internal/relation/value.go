// Package relation provides the typed value, schema, tuple and relation model
// used throughout Skalla. Relations are in-memory row stores; they are the
// unit of data shipped between sites and the coordinator (base-result
// structures and sub-aggregate relations), and the unit stored at each local
// warehouse site.
package relation

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

const (
	// KindNull is the SQL NULL marker. Aggregates over empty ranges (except
	// COUNT) produce it, and arithmetic involving it propagates it.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
//
// Value is a flat struct (no pointers besides the string header) so that
// tuples are cheap to copy and friendly to encoding/gob.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewString returns a STRING value.
func NewString(v string) Value { return Value{Kind: KindString, Str: v} }

// NewBool returns a BOOL value. Booleans are carried in the Int field.
func NewBool(v bool) Value {
	if v {
		return Value{Kind: KindBool, Int: 1}
	}
	return Value{Kind: KindBool}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool returns the boolean payload. It is only meaningful for KindBool.
func (v Value) Bool() bool { return v.Kind == KindBool && v.Int != 0 }

// IsNumeric reports whether v is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat converts a numeric value to float64. It returns false for
// non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.Kind))
	}
}

// Equal reports whether two values are identical. NULL equals NULL here
// (identity semantics, used for grouping keys and result comparison); SQL
// condition evaluation treats NULL comparisons as false, which is handled in
// Compare/the expression evaluator.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		// INT/FLOAT cross-kind numeric equality.
		if v.IsNumeric() && o.IsNumeric() {
			a, _ := v.AsFloat()
			b, _ := o.AsFloat()
			return a == b
		}
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindInt, KindBool:
		return v.Int == o.Int
	case KindFloat:
		return v.Float == o.Float
	case KindString:
		return v.Str == o.Str
	default:
		return false
	}
}

// Compare orders two non-NULL values of comparable kinds. It returns
// (-1|0|+1, true) on success, or (0, false) when the values are not
// comparable (either is NULL, or kinds are incompatible). INT and FLOAT
// compare numerically.
func (v Value) Compare(o Value) (int, bool) {
	if v.IsNull() || o.IsNull() {
		return 0, false
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.Kind == KindInt && o.Kind == KindInt {
			switch {
			case v.Int < o.Int:
				return -1, true
			case v.Int > o.Int:
				return 1, true
			}
			return 0, true
		}
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
	if v.Kind != o.Kind {
		return 0, false
	}
	switch v.Kind {
	case KindString:
		switch {
		case v.Str < o.Str:
			return -1, true
		case v.Str > o.Str:
			return 1, true
		}
		return 0, true
	case KindBool:
		switch {
		case v.Int < o.Int:
			return -1, true
		case v.Int > o.Int:
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// sortLess is a total order over all values used for deterministic sorting:
// NULL < BOOL < INT/FLOAT (numeric) < STRING.
func (v Value) sortLess(o Value) bool {
	vr, or := v.sortRank(), o.sortRank()
	if vr != or {
		return vr < or
	}
	if c, ok := v.Compare(o); ok {
		return c < 0
	}
	return false
}

func (v Value) sortRank() int {
	switch v.Kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	default:
		return 4
	}
}

// appendKey appends a canonical, collision-free binary encoding of v to dst.
// It is used to build grouping keys.
func (v Value) appendKey(dst []byte) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindInt, KindBool:
		dst = appendUint64(dst, uint64(v.Int))
	case KindFloat:
		// Normalize integral floats to compare equal to ints would break
		// collision-freedom; instead encode the raw bits. Grouping keys use
		// exact identity, which is what GROUP BY semantics require.
		dst = appendUint64(dst, math.Float64bits(v.Float))
	case KindString:
		dst = appendUint64(dst, uint64(len(v.Str)))
		dst = append(dst, v.Str...)
	}
	return dst
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

func fnvUint64(h uint64, u uint64) uint64 {
	h = fnvByte(h, byte(u>>56))
	h = fnvByte(h, byte(u>>48))
	h = fnvByte(h, byte(u>>40))
	h = fnvByte(h, byte(u>>32))
	h = fnvByte(h, byte(u>>24))
	h = fnvByte(h, byte(u>>16))
	h = fnvByte(h, byte(u>>8))
	return fnvByte(h, byte(u))
}

// hashKeyInto extends a running FNV-1a hash with v's canonical key encoding,
// byte for byte the same stream appendKey produces, without materializing it.
func (v Value) hashKeyInto(h uint64) uint64 {
	h = fnvByte(h, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindInt, KindBool:
		h = fnvUint64(h, uint64(v.Int))
	case KindFloat:
		h = fnvUint64(h, math.Float64bits(v.Float))
	case KindString:
		h = fnvUint64(h, uint64(len(v.Str)))
		for i := 0; i < len(v.Str); i++ {
			h = fnvByte(h, v.Str[i])
		}
	}
	return h
}

// Hash64 returns a 64-bit FNV-1a hash of the value's canonical key encoding
// (kind-aware, so INT 1 and STRING "1" hash differently). It is the basis of
// hash partitioning and of the hashed key layer (KeyIndex, KeySet).
func (v Value) Hash64() uint64 {
	return v.hashKeyInto(fnvOffset64)
}

// keyEqual reports whether two values have identical canonical key encodings:
// same kind, and payload compared by identity (floats by raw bits, so the
// comparison matches Tuple.Key string equality exactly — NaN groups with NaN,
// and -0.0 is a different key from +0.0).
func (v Value) keyEqual(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindInt, KindBool:
		return v.Int == o.Int
	case KindFloat:
		return math.Float64bits(v.Float) == math.Float64bits(o.Float)
	case KindString:
		return v.Str == o.Str
	default:
		return false
	}
}
