package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns. Column names are unique within a
// schema.
type Schema []Column

// NewSchema builds a schema from name/kind pairs and validates uniqueness.
func NewSchema(cols ...Column) (Schema, error) {
	s := Schema(cols)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; intended for tests and
// statically known schemas.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks that column names are non-empty and unique.
func (s Schema) Validate() error {
	//skallavet:allow stringkey -- column-name uniqueness check: runs once per schema validation
	seen := make(map[string]struct{}, len(s))
	for i, c := range s {
		if c.Name == "" {
			return fmt.Errorf("schema: column %d has empty name", i)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("schema: duplicate column name %q", c.Name)
		}
		seen[c.Name] = struct{}{}
	}
	return nil
}

// Index returns the position of the named column, or -1 if absent.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// MustIndex returns the position of the named column and panics if absent.
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("schema: no column %q in %s", name, s))
	}
	return i
}

// Indexes resolves a list of column names to positions.
func (s Schema) Indexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j := s.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("schema: no column %q in %s", n, s)
		}
		out[i] = j
	}
	return out, nil
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Project returns the sub-schema for the given column positions.
func (s Schema) Project(idx []int) Schema {
	out := make(Schema, len(idx))
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// Concat returns a new schema with o's columns appended. It returns an error
// on duplicate names.
func (s Schema) Concat(o Schema) (Schema, error) {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Equal reports whether two schemas have identical column names and kinds.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// String renders the schema as "(name KIND, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
