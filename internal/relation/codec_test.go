package relation

import (
	"bytes"
	"encoding/gob"
	"io"
	"math"
	"math/rand"
	"testing"
)

// codecCases enumerates the representative shapes the wire format must
// round-trip exactly: every kind, NULLs in every position, empty relations,
// empty schemas, and columns whose dynamic kinds disagree with the schema.
func codecCases() map[string]*Relation {
	full := New(MustSchema(
		Column{"i", KindInt},
		Column{"f", KindFloat},
		Column{"s", KindString},
		Column{"b", KindBool},
		Column{"n", KindNull},
	))
	full.MustAppend(Tuple{NewInt(0), NewFloat(0), NewString(""), NewBool(false), Null})
	full.MustAppend(Tuple{NewInt(-1), NewFloat(math.Inf(-1)), NewString("héllo\x00world"), NewBool(true), Null})
	full.MustAppend(Tuple{NewInt(math.MaxInt64), NewFloat(math.NaN()), NewString("x"), Null, Null})
	full.MustAppend(Tuple{NewInt(math.MinInt64), NewFloat(math.Copysign(0, -1)), Null, NewBool(true), Null})
	full.MustAppend(Tuple{Null, Null, Null, Null, Null})

	mixed := New(MustSchema(Column{"m", KindInt}, Column{"k", KindString}))
	mixed.MustAppend(Tuple{NewFloat(1.5), NewString("a")})
	mixed.MustAppend(Tuple{NewInt(2), NewInt(7)})
	mixed.MustAppend(Tuple{NewString("three"), Null})
	mixed.MustAppend(Tuple{NewBool(true), NewFloat(-0.25)})

	allNullInt := New(MustSchema(Column{"v", KindInt}))
	allNullInt.MustAppend(Tuple{Null})
	allNullInt.MustAppend(Tuple{Null})

	wide := New(MustSchema(Column{"a", KindBool}, Column{"b", KindBool}))
	for i := 0; i < 21; i++ {
		wide.MustAppend(Tuple{NewBool(i%3 == 0), NewBool(i%2 == 0)})
	}

	return map[string]*Relation{
		"all-kinds":     full,
		"mixed-kinds":   mixed,
		"all-null-col":  allNullInt,
		"bool-packing":  wide,
		"empty":         New(MustSchema(Column{"a", KindInt}, Column{"b", KindString})),
		"empty-schema":  New(Schema{}),
		"no-cols-rows":  {Schema: Schema{}, Tuples: []Tuple{{}, {}, {}}},
		"single-string": {Schema: MustSchema(Column{"s", KindString}), Tuples: []Tuple{{NewString("only")}}},
	}
}

// relIdentical compares relations by exact value identity (float bits, so NaN
// and -0.0 round-trips are checked), which is stricter than EqualMultiset.
func relIdentical(a, b *Relation) bool {
	if !a.Schema.Equal(b.Schema) || len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if len(a.Tuples[i]) != len(b.Tuples[i]) {
			return false
		}
		for j := range a.Tuples[i] {
			if !a.Tuples[i][j].keyEqual(b.Tuples[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	for name, r := range codecCases() {
		data, err := Marshal(r)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !relIdentical(r, got) {
			t.Errorf("%s: round trip changed relation:\n%s\nvs\n%s", name, r, got)
		}
	}
}

// TestCodecStream checks schema-once framing: a stream of blocks with one
// schema pays for it once, and a schema change mid-stream re-sends it.
func TestCodecStream(t *testing.T) {
	blockA := func(base int64) *Relation {
		r := New(MustSchema(Column{"g", KindInt}, Column{"sum", KindFloat}))
		for i := int64(0); i < 50; i++ {
			r.MustAppend(Tuple{NewInt(base + i), NewFloat(float64(i) / 3)})
		}
		return r
	}
	other := New(MustSchema(Column{"s", KindString}))
	other.MustAppend(Tuple{NewString("schema change")})

	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	sizes := make([]int, 0, 4)
	last := 0
	blocks := []*Relation{blockA(0), blockA(0), other, blockA(2000)}
	for _, b := range blocks {
		if err := enc.Encode(b); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, buf.Len()-last)
		last = buf.Len()
	}
	// Second blockA frame reuses the cached schema, so it must be smaller
	// than the first despite identical row counts.
	if sizes[1] >= sizes[0] {
		t.Errorf("cached-schema frame (%d bytes) not smaller than inline-schema frame (%d bytes)", sizes[1], sizes[0])
	}

	dec := NewDecoder(&buf)
	for i, want := range blocks {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !relIdentical(want, got) {
			t.Errorf("block %d changed in stream round trip", i)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Errorf("decode past end: err = %v, want io.EOF", err)
	}
}

func TestCodecPooledDecode(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	blocks := make([]*Relation, 5)
	for b := range blocks {
		r := New(MustSchema(Column{"g", KindInt}, Column{"name", KindString}))
		for i := 0; i < 10+b; i++ {
			r.MustAppend(Tuple{NewInt(int64(b*100 + i)), NewString("row")})
		}
		blocks[b] = r
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	var pool BlockPool
	dec := NewDecoder(&buf)
	dec.SetPool(&pool)
	for i, want := range blocks {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !relIdentical(want, got) {
			t.Errorf("pooled block %d changed in round trip", i)
		}
		Recycle(got)
		// Recycle detaches the block from the pool; double-recycle is a no-op.
		Recycle(got)
	}
	// Recycling a non-pooled relation is a no-op too.
	Recycle(blocks[0])
	Recycle(nil)
}

func TestCodecRejectsCorrupt(t *testing.T) {
	data, err := Marshal(codecCases()["all-kinds"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data[:len(data)-3]); err == nil {
		t.Error("truncated frame must be rejected")
	}
	if _, err := Unmarshal(append(append([]byte{}, data...), 0xff)); err == nil {
		t.Error("trailing garbage must be rejected")
	}
	if _, err := Unmarshal([]byte{0x01, 0x77}); err == nil {
		t.Error("unknown frame kind must be rejected")
	}
	// frameCached with no schema sent first.
	if _, err := Unmarshal([]byte{0x02, frameCached, 0x00}); err == nil {
		t.Error("cached frame without schema must be rejected")
	}
	// Flipping bytes must never panic; errors are fine.
	for i := range data {
		mut := append([]byte{}, data...)
		mut[i] ^= 0x5a
		_, _ = Unmarshal(mut)
	}
}

// gobShadow mirrors Relation without the GobEncode hook, giving the honest
// gob baseline the wire format is compared against.
type gobShadow struct {
	Schema Schema
	Tuples []Tuple
}

// TestCodecSmallerThanGob locks in the headline acceptance criterion: an
// H_i-shaped payload (int group keys + float aggregates) must be at least 30%
// smaller than gob's encoding of the same relation.
func TestCodecSmallerThanGob(t *testing.T) {
	r := New(MustSchema(
		Column{"cust", KindInt},
		Column{"month", KindInt},
		Column{"sum_sales", KindFloat},
		Column{"cnt", KindInt},
	))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		r.MustAppend(Tuple{
			NewInt(int64(rng.Intn(100000))),
			NewInt(int64(1 + rng.Intn(12))),
			NewFloat(rng.Float64() * 1e5),
			NewInt(int64(1 + rng.Intn(1000))),
		})
	}
	codecBytes, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(&gobShadow{Schema: r.Schema, Tuples: r.Tuples}); err != nil {
		t.Fatal(err)
	}
	if len(codecBytes) > gobBuf.Len()*7/10 {
		t.Errorf("codec payload %d bytes, gob %d bytes: want >= 30%% smaller", len(codecBytes), gobBuf.Len())
	}
	t.Logf("codec %d bytes vs gob %d bytes (%.1f%% of gob)", len(codecBytes), gobBuf.Len(),
		100*float64(len(codecBytes))/float64(gobBuf.Len()))
}

// randomRelation derives a relation deterministically from fuzz input bytes.
func randomRelation(rng *rand.Rand) *Relation {
	kinds := []Kind{KindNull, KindInt, KindFloat, KindString, KindBool}
	ncols := rng.Intn(6)
	schema := make(Schema, ncols)
	for i := range schema {
		schema[i] = Column{Name: string(rune('a' + i)), Kind: kinds[rng.Intn(len(kinds))]}
	}
	r := New(schema)
	nrows := rng.Intn(40)
	for i := 0; i < nrows; i++ {
		t := make(Tuple, ncols)
		for j := range t {
			// 1-in-4 cells get a random dynamic kind instead of the column
			// kind, exercising the mixed encoding; 1-in-4 are NULL.
			kind := schema[j].Kind
			switch rng.Intn(4) {
			case 0:
				kind = kinds[rng.Intn(len(kinds))]
			case 1:
				kind = KindNull
			}
			switch kind {
			case KindNull:
				t[j] = Null
			case KindInt:
				t[j] = NewInt(rng.Int63() - rng.Int63())
			case KindFloat:
				switch rng.Intn(10) {
				case 0:
					t[j] = NewFloat(math.NaN())
				case 1:
					t[j] = NewFloat(math.Copysign(0, -1))
				default:
					t[j] = NewFloat(math.Float64frombits(rng.Uint64()))
					if math.IsNaN(t[j].Float) {
						t[j] = NewFloat(0)
					}
				}
			case KindString:
				b := make([]byte, rng.Intn(20))
				rng.Read(b)
				t[j] = NewString(string(b))
			case KindBool:
				t[j] = NewBool(rng.Intn(2) == 0)
			}
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

// FuzzCodecRoundTrip fuzzes two properties: arbitrary bytes never panic the
// decoder, and randomized relations (derived from the fuzz input as a PRNG
// seed) survive encode/decode unchanged.
func FuzzCodecRoundTrip(f *testing.F) {
	for name, r := range codecCases() {
		data, err := Marshal(r)
		if err != nil {
			f.Fatalf("%s: %v", name, err)
		}
		f.Add(data)
	}
	f.Add([]byte{0x00})
	f.Add([]byte{0x02, frameCached, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: hostile bytes error out, never panic or hang.
		if rel, err := Unmarshal(data); err == nil {
			// Whatever decoded must re-encode and decode to the same thing.
			again, err := Marshal(rel)
			if err != nil {
				t.Fatalf("re-marshal of decoded relation: %v", err)
			}
			rel2, err := Unmarshal(again)
			if err != nil {
				t.Fatalf("re-unmarshal: %v", err)
			}
			if !relIdentical(rel, rel2) {
				t.Fatal("decoded relation did not survive re-encode")
			}
		}
		// Property 2: random relations round-trip exactly.
		seed := int64(len(data))
		for i, b := range data {
			seed = seed*131 + int64(b) + int64(i)
		}
		r := randomRelation(rand.New(rand.NewSource(seed)))
		enc, err := Marshal(r)
		if err != nil {
			t.Fatalf("marshal random relation: %v", err)
		}
		got, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("unmarshal random relation: %v", err)
		}
		if !relIdentical(r, got) {
			t.Fatalf("random relation changed in round trip:\n%s\nvs\n%s", r, got)
		}
	})
}
