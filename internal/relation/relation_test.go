package relation

import (
	"strings"
	"testing"
)

func testRel(t *testing.T) *Relation {
	t.Helper()
	r := New(MustSchema(
		Column{"a", KindInt},
		Column{"b", KindString},
		Column{"c", KindFloat},
	))
	rows := []Tuple{
		{NewInt(1), NewString("x"), NewFloat(1.5)},
		{NewInt(2), NewString("y"), NewFloat(2.5)},
		{NewInt(1), NewString("x"), NewFloat(3.5)},
		{NewInt(3), NewString("z"), NewFloat(4.5)},
	}
	for _, row := range rows {
		r.MustAppend(row)
	}
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := MustSchema(Column{"a", KindInt}, Column{"b", KindString})
	if s.Index("a") != 0 || s.Index("b") != 1 || s.Index("zz") != -1 {
		t.Errorf("Index wrong: %d %d %d", s.Index("a"), s.Index("b"), s.Index("zz"))
	}
	if !s.Has("a") || s.Has("zz") {
		t.Error("Has wrong")
	}
	if got := s.MustIndex("b"); got != 1 {
		t.Errorf("MustIndex(b) = %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustIndex on missing column must panic")
			}
		}()
		s.MustIndex("zz")
	}()
	if _, err := NewSchema(Column{"a", KindInt}, Column{"a", KindInt}); err == nil {
		t.Error("duplicate column names must be rejected")
	}
	if _, err := NewSchema(Column{"", KindInt}); err == nil {
		t.Error("empty column name must be rejected")
	}
	if got := s.String(); got != "(a INT, b STRING)" {
		t.Errorf("String() = %q", got)
	}
	if names := s.Names(); names[0] != "a" || names[1] != "b" {
		t.Errorf("Names() = %v", names)
	}
}

func TestSchemaConcat(t *testing.T) {
	a := MustSchema(Column{"x", KindInt})
	b := MustSchema(Column{"y", KindFloat})
	c, err := a.Concat(b)
	if err != nil || len(c) != 2 || c[1].Name != "y" {
		t.Fatalf("Concat: %v %v", c, err)
	}
	if _, err := a.Concat(a); err == nil {
		t.Error("Concat with duplicate names must fail")
	}
	// Concat must not alias the receiver's backing array.
	if len(a) != 1 {
		t.Error("Concat mutated receiver")
	}
}

func TestSchemaEqualClone(t *testing.T) {
	a := MustSchema(Column{"x", KindInt}, Column{"y", KindFloat})
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b[0].Name = "z"
	if a.Equal(b) || a[0].Name != "x" {
		t.Error("clone aliases original")
	}
	if a.Equal(MustSchema(Column{"x", KindInt})) {
		t.Error("length mismatch must not be equal")
	}
}

func TestAppendArity(t *testing.T) {
	r := New(MustSchema(Column{"a", KindInt}))
	if err := r.Append(Tuple{NewInt(1), NewInt(2)}); err == nil {
		t.Error("arity mismatch must error")
	}
	if err := r.Append(Tuple{NewInt(1)}); err != nil || r.Len() != 1 {
		t.Errorf("valid append failed: %v", err)
	}
}

func TestProject(t *testing.T) {
	r := testRel(t)
	p, err := r.Project([]string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("Project len = %d", p.Len())
	}
	if !p.Schema.Equal(MustSchema(Column{"b", KindString}, Column{"a", KindInt})) {
		t.Errorf("Project schema = %s", p.Schema)
	}
	if !p.Tuples[0][0].Equal(NewString("x")) || !p.Tuples[0][1].Equal(NewInt(1)) {
		t.Errorf("Project row = %v", p.Tuples[0])
	}
	if _, err := r.Project([]string{"nope"}); err == nil {
		t.Error("Project with unknown column must error")
	}
}

func TestDistinctProject(t *testing.T) {
	r := testRel(t)
	d, err := r.DistinctProject([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("DistinctProject len = %d, want 3", d.Len())
	}
	// First-seen order.
	if !d.Tuples[0][0].Equal(NewInt(1)) || !d.Tuples[1][0].Equal(NewInt(2)) || !d.Tuples[2][0].Equal(NewInt(3)) {
		t.Errorf("DistinctProject order: %v", d.Tuples)
	}
}

func TestFilterUnionDedup(t *testing.T) {
	r := testRel(t)
	f := r.Filter(func(tp Tuple) bool { return tp[0].Int >= 2 })
	if f.Len() != 2 {
		t.Errorf("Filter len = %d", f.Len())
	}
	u := r.Clone()
	if err := u.Union(f); err != nil || u.Len() != 6 {
		t.Fatalf("Union: len=%d err=%v", u.Len(), err)
	}
	other := New(MustSchema(Column{"zzz", KindInt}))
	if err := u.Union(other); err == nil {
		t.Error("Union with mismatched schema must error")
	}
	if err := u.DedupBy([]string{"a", "b"}); err != nil || u.Len() != 3 {
		t.Fatalf("DedupBy: len=%d err=%v", u.Len(), err)
	}
	if err := u.DedupBy([]string{"nope"}); err == nil {
		t.Error("DedupBy unknown column must error")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := testRel(t)
	c := r.Clone()
	c.Tuples[0][0] = NewInt(99)
	if r.Tuples[0][0].Int == 99 {
		t.Error("Clone aliases tuples")
	}
}

func TestSortDeterministic(t *testing.T) {
	r := New(MustSchema(Column{"a", KindInt}))
	for _, v := range []int64{3, 1, 2, 1} {
		r.MustAppend(Tuple{NewInt(v)})
	}
	r.Sort()
	got := []int64{r.Tuples[0][0].Int, r.Tuples[1][0].Int, r.Tuples[2][0].Int, r.Tuples[3][0].Int}
	want := []int64{1, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sort: got %v want %v", got, want)
		}
	}
}

func TestSortMixedKinds(t *testing.T) {
	r := New(MustSchema(Column{"a", KindString}))
	r.Tuples = []Tuple{{NewString("b")}, {Null}, {NewString("a")}}
	r.Sort()
	if !r.Tuples[0][0].IsNull() || r.Tuples[1][0].Str != "a" {
		t.Errorf("Sort with NULLs: %v", r.Tuples)
	}
}

func TestEqualMultiset(t *testing.T) {
	a := testRel(t)
	b := testRel(t)
	// Shuffle b.
	b.Tuples[0], b.Tuples[3] = b.Tuples[3], b.Tuples[0]
	if !a.EqualMultiset(b) {
		t.Error("order must not matter")
	}
	b.Tuples[0][0] = NewInt(77)
	if a.EqualMultiset(b) {
		t.Error("changed value must break equality")
	}
	c := testRel(t)
	c.Tuples = c.Tuples[:3]
	if a.EqualMultiset(c) {
		t.Error("length mismatch must break equality")
	}
	// Duplicate counting: {x,x,y} != {x,y,y}.
	d1 := New(MustSchema(Column{"a", KindInt}))
	d2 := New(MustSchema(Column{"a", KindInt}))
	for _, v := range []int64{1, 1, 2} {
		d1.MustAppend(Tuple{NewInt(v)})
	}
	for _, v := range []int64{1, 2, 2} {
		d2.MustAppend(Tuple{NewInt(v)})
	}
	if d1.EqualMultiset(d2) {
		t.Error("multiset counts must matter")
	}
}

func TestFormat(t *testing.T) {
	r := testRel(t)
	s := r.Format(2)
	if !strings.Contains(s, "a") || !strings.Contains(s, "more rows") {
		t.Errorf("Format output unexpected:\n%s", s)
	}
	full := r.String()
	if strings.Contains(full, "more rows") {
		t.Errorf("String() should show all 4 rows:\n%s", full)
	}
}

func TestKeyIndex(t *testing.T) {
	r := testRel(t)
	ki, err := BuildKeyIndex(r, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if ki.Len() != 3 {
		t.Errorf("distinct keys = %d, want 3", ki.Len())
	}
	probe := Tuple{NewString("pad"), NewInt(1), NewString("x")}
	rows := ki.Lookup(probe, []int{1, 2})
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Errorf("Lookup = %v", rows)
	}
	if _, err := ki.Unique(probe, []int{1, 2}); err == nil {
		t.Error("Unique with 2 matches must error")
	}
	probe2 := Tuple{NewInt(3), NewString("z")}
	row, err := ki.Unique(probe2, []int{0, 1})
	if err != nil || row != 3 {
		t.Errorf("Unique = %d, %v", row, err)
	}
	probe3 := Tuple{NewInt(42), NewString("none")}
	if _, err := ki.Unique(probe3, []int{0, 1}); err == nil {
		t.Error("Unique with 0 matches must error")
	}
	if got := ki.Lookup(probe3, []int{0, 1}); got != nil {
		t.Errorf("Lookup missing = %v", got)
	}
	// Add a row and find it.
	nt := Tuple{NewInt(9), NewString("w"), NewFloat(0)}
	r.MustAppend(nt)
	ki.Add(nt, 4)
	if rows := ki.Lookup(nt, []int{0, 1}); len(rows) != 1 || rows[0] != 4 {
		t.Errorf("after Add, Lookup = %v", rows)
	}
	if _, err := BuildKeyIndex(r, []string{"missing"}); err == nil {
		t.Error("BuildKeyIndex unknown column must error")
	}
}

func TestEqualMultisetApprox(t *testing.T) {
	mk := func(f float64) *Relation {
		r := New(MustSchema(Column{"k", KindInt}, Column{"f", KindFloat}))
		r.MustAppend(Tuple{NewInt(1), NewFloat(f)})
		r.MustAppend(Tuple{NewInt(2), NewFloat(2 * f)})
		return r
	}
	a, b := mk(1.0), mk(1.0+1e-13)
	if !a.EqualMultisetApprox(b, 1e-9) {
		t.Error("tiny float drift must be tolerated")
	}
	if a.EqualMultisetApprox(mk(1.1), 1e-9) {
		t.Error("real differences must be detected")
	}
	if a.EqualMultisetApprox(mk(1.0+1e-13), 0) {
		t.Error("zero tolerance must require exact equality")
	}
	// Shape mismatches fail.
	c := mk(1.0)
	c.Tuples = c.Tuples[:1]
	if a.EqualMultisetApprox(c, 1e-9) {
		t.Error("row-count mismatch must fail")
	}
	d := New(MustSchema(Column{"k", KindInt}))
	if a.EqualMultisetApprox(d, 1e-9) {
		t.Error("schema mismatch must fail")
	}
	// Non-float differences are never tolerated.
	e := mk(1.0)
	e.Tuples[0][0] = NewInt(9)
	if a.EqualMultisetApprox(e, 1e9) {
		t.Error("int differences must fail regardless of tolerance")
	}
}
