package relation

import "fmt"

// KeyIndex is a hash index mapping key-column values to row positions of a
// relation. The Skalla coordinator maintains one over the base-result
// structure X, keyed on the base key attributes K, so that synchronization of
// an incoming sub-aggregate relation H runs in O(|H|) (Theorem 1 discussion
// in the paper).
//
// Keys are 64-bit hashes of the canonical key encoding with collision
// buckets: a probe hashes its key columns (no allocation), and candidate rows
// in the bucket are verified against the indexed relation's own key columns,
// so hash collisions cannot produce wrong matches.
type KeyIndex struct {
	rel     *Relation
	keyCols []int
	buckets map[uint64][]int // key hash → candidate row positions, insert order
	keys    int              // number of distinct keys
}

// BuildKeyIndex indexes r on the named key columns. The index holds a
// reference to r: rows appended to r afterwards are visible once registered
// with Add.
func BuildKeyIndex(r *Relation, keyNames []string) (*KeyIndex, error) {
	idx, err := r.Schema.Indexes(keyNames)
	if err != nil {
		return nil, err
	}
	return BuildKeyIndexCols(r, idx), nil
}

// BuildKeyIndexCols indexes r on the given key column positions.
func BuildKeyIndexCols(r *Relation, keyCols []int) *KeyIndex {
	ki := &KeyIndex{rel: r, keyCols: keyCols, buckets: make(map[uint64][]int, len(r.Tuples))}
	for i, t := range r.Tuples {
		ki.add(t, i)
	}
	return ki
}

// KeyCols returns the indexed column positions.
func (ki *KeyIndex) KeyCols() []int { return ki.keyCols }

// Lookup returns the row positions whose key columns equal those of probe,
// where probeCols gives the positions of the key attributes within probe.
// In the common (collision-free) case no allocation is performed.
func (ki *KeyIndex) Lookup(probe Tuple, probeCols []int) []int {
	bucket := ki.buckets[probe.KeyHash(probeCols)]
	for n, row := range bucket {
		if !keyColsEqual(ki.rel.Tuples[row], ki.keyCols, probe, probeCols) {
			// Rare: a hash collision mixed a foreign key into the bucket.
			// Fall back to filtering into a fresh slice.
			out := append([]int{}, bucket[:n]...)
			for _, r := range bucket[n+1:] {
				if keyColsEqual(ki.rel.Tuples[r], ki.keyCols, probe, probeCols) {
					out = append(out, r)
				}
			}
			if len(out) == 0 {
				return nil
			}
			return out
		}
	}
	return bucket
}

// Add registers a new row position under the key of tuple t (taken from the
// indexed relation's own key columns).
func (ki *KeyIndex) Add(t Tuple, row int) { ki.add(t, row) }

func (ki *KeyIndex) add(t Tuple, row int) {
	h := t.KeyHash(ki.keyCols)
	bucket := ki.buckets[h]
	fresh := true
	for _, r := range bucket {
		if keyColsEqual(ki.rel.Tuples[r], ki.keyCols, t, ki.keyCols) {
			fresh = false
			break
		}
	}
	if fresh {
		ki.keys++
	}
	ki.buckets[h] = append(bucket, row)
}

// Unique returns the single row for the key of probe. It returns an error if
// zero or multiple rows match; used where keys are known to be unique.
func (ki *KeyIndex) Unique(probe Tuple, probeCols []int) (int, error) {
	rows := ki.Lookup(probe, probeCols)
	switch len(rows) {
	case 1:
		return rows[0], nil
	case 0:
		return -1, fmt.Errorf("keyindex: no row for key")
	default:
		return -1, fmt.Errorf("keyindex: %d rows for key, want 1", len(rows))
	}
}

// Len returns the number of distinct keys.
func (ki *KeyIndex) Len() int { return ki.keys }

// KeySet is a hash set of grouping keys with collision buckets. Each distinct
// key is interned once as its projected tuple; probing allocates nothing.
type KeySet struct {
	buckets map[uint64][]Tuple
	keys    int
}

// NewKeySet creates a key set sized for about hint keys.
func NewKeySet(hint int) *KeySet {
	return &KeySet{buckets: make(map[uint64][]Tuple, hint)}
}

// Add inserts the key of t over the idx columns. It returns the interned key
// projection and whether the key was newly added; for an existing key the
// previously interned tuple is returned. Callers may append the interned
// tuple to an output relation but must not mutate it.
func (s *KeySet) Add(t Tuple, idx []int) (Tuple, bool) {
	h := t.KeyHash(idx)
	bucket := s.buckets[h]
	for _, k := range bucket {
		if keyColsEqual(k, identityCols(len(k)), t, idx) {
			return k, false
		}
	}
	key := make(Tuple, len(idx))
	for i, j := range idx {
		key[i] = t[j]
	}
	s.buckets[h] = append(bucket, key)
	s.keys++
	return key, true
}

// Contains reports whether the key of t over the idx columns is in the set.
func (s *KeySet) Contains(t Tuple, idx []int) bool {
	for _, k := range s.buckets[t.KeyHash(idx)] {
		if keyColsEqual(k, identityCols(len(k)), t, idx) {
			return true
		}
	}
	return false
}

// Len returns the number of distinct keys.
func (s *KeySet) Len() int { return s.keys }

// KeyCounter is a hash multiset counter over grouping keys, used for
// order-independent multiset comparison.
type KeyCounter struct {
	buckets map[uint64][]keyCount
}

type keyCount struct {
	key Tuple
	n   int
}

// NewKeyCounter creates a counter sized for about hint keys.
func NewKeyCounter(hint int) *KeyCounter {
	return &KeyCounter{buckets: make(map[uint64][]keyCount, hint)}
}

// Inc increments the count of t's key over idx and returns the new count.
func (c *KeyCounter) Inc(t Tuple, idx []int) int {
	h := t.KeyHash(idx)
	bucket := c.buckets[h]
	for i := range bucket {
		if keyColsEqual(bucket[i].key, identityCols(len(bucket[i].key)), t, idx) {
			bucket[i].n++
			return bucket[i].n
		}
	}
	key := make(Tuple, len(idx))
	for i, j := range idx {
		key[i] = t[j]
	}
	c.buckets[h] = append(bucket, keyCount{key: key, n: 1})
	return 1
}

// Dec decrements the count of t's key over idx and returns the new count;
// a key never incremented yields -1.
func (c *KeyCounter) Dec(t Tuple, idx []int) int {
	bucket := c.buckets[t.KeyHash(idx)]
	for i := range bucket {
		if keyColsEqual(bucket[i].key, identityCols(len(bucket[i].key)), t, idx) {
			bucket[i].n--
			return bucket[i].n
		}
	}
	return -1
}

// identityCols returns [0, 1, ..., n-1] from a small static table, avoiding
// per-probe allocation for the common low arities.
func identityCols(n int) []int {
	if n <= len(identityTable) {
		return identityTable[:n]
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

var identityTable = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31}
