package relation

import "fmt"

// KeyIndex is a hash index mapping key-column values to row positions of a
// relation. The Skalla coordinator maintains one over the base-result
// structure X, keyed on the base key attributes K, so that synchronization of
// an incoming sub-aggregate relation H runs in O(|H|) (Theorem 1 discussion
// in the paper).
type KeyIndex struct {
	keyCols []int
	rows    map[string][]int
}

// BuildKeyIndex indexes r on the named key columns.
func BuildKeyIndex(r *Relation, keyNames []string) (*KeyIndex, error) {
	idx, err := r.Schema.Indexes(keyNames)
	if err != nil {
		return nil, err
	}
	ki := &KeyIndex{keyCols: idx, rows: make(map[string][]int, len(r.Tuples))}
	for i, t := range r.Tuples {
		k := t.Key(idx)
		ki.rows[k] = append(ki.rows[k], i)
	}
	return ki, nil
}

// KeyCols returns the indexed column positions.
func (ki *KeyIndex) KeyCols() []int { return ki.keyCols }

// Lookup returns the row positions whose key columns equal those of probe,
// where probeCols gives the positions of the key attributes within probe.
func (ki *KeyIndex) Lookup(probe Tuple, probeCols []int) []int {
	return ki.rows[probe.Key(probeCols)]
}

// LookupKey returns the row positions for a pre-computed key.
func (ki *KeyIndex) LookupKey(key string) []int { return ki.rows[key] }

// Add registers a new row position under the key of tuple t (taken from the
// indexed relation's own key columns).
func (ki *KeyIndex) Add(t Tuple, row int) {
	k := t.Key(ki.keyCols)
	ki.rows[k] = append(ki.rows[k], row)
}

// Unique returns the single row for the key of probe. It returns an error if
// zero or multiple rows match; used where keys are known to be unique.
func (ki *KeyIndex) Unique(probe Tuple, probeCols []int) (int, error) {
	rows := ki.Lookup(probe, probeCols)
	switch len(rows) {
	case 1:
		return rows[0], nil
	case 0:
		return -1, fmt.Errorf("keyindex: no row for key")
	default:
		return -1, fmt.Errorf("keyindex: %d rows for key, want 1", len(rows))
	}
}

// Len returns the number of distinct keys.
func (ki *KeyIndex) Len() int { return len(ki.rows) }
