// Package manifest describes a generated on-disk dataset: which generator
// produced it, its configuration, and how many sites it was partitioned
// across. The data tools (cmd/tpcgen) write a manifest next to the partition
// files; cmd/skalla-coordinator reads it to reconstruct the distribution
// catalog that the distribution-aware optimizations need — mirroring how a
// real deployment would register partitioning metadata with the coordinator.
package manifest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"skalla/internal/distrib"
	"skalla/internal/flow"
	"skalla/internal/tpc"
)

// FileName is the manifest's name inside a dataset directory.
const FileName = "manifest.json"

// Kind identifies the generator.
type Kind string

const (
	// KindTPC is the TPCR generator (internal/tpc).
	KindTPC Kind = "tpc"
	// KindFlow is the IP-flow generator (internal/flow).
	KindFlow Kind = "flow"
)

// Manifest describes one generated dataset directory.
type Manifest struct {
	Kind     Kind         `json:"kind"`
	NumSites int          `json:"numSites"`
	TPC      *tpc.Config  `json:"tpc,omitempty"`
	Flow     *flow.Config `json:"flow,omitempty"`
}

// Validate checks internal consistency.
func (m *Manifest) Validate() error {
	switch m.Kind {
	case KindTPC:
		if m.TPC == nil {
			return fmt.Errorf("manifest: kind tpc without tpc config")
		}
		if err := m.TPC.Validate(); err != nil {
			return err
		}
	case KindFlow:
		if m.Flow == nil {
			return fmt.Errorf("manifest: kind flow without flow config")
		}
		if err := m.Flow.Validate(); err != nil {
			return err
		}
		if m.NumSites != m.Flow.Routers {
			return fmt.Errorf("manifest: %d sites but %d routers", m.NumSites, m.Flow.Routers)
		}
	default:
		return fmt.Errorf("manifest: unknown kind %q", m.Kind)
	}
	if m.NumSites <= 0 {
		return fmt.Errorf("manifest: numSites = %d", m.NumSites)
	}
	return nil
}

// RelationName returns the detail relation the dataset provides.
func (m *Manifest) RelationName() (string, error) {
	switch m.Kind {
	case KindTPC:
		return tpc.RelationName, nil
	case KindFlow:
		return flow.RelationName, nil
	default:
		return "", fmt.Errorf("manifest: unknown kind %q", m.Kind)
	}
}

// Catalog reconstructs the distribution catalog for a coordinator driving
// the first n of the dataset's sites.
func (m *Manifest) Catalog(n int) (*distrib.Catalog, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	switch m.Kind {
	case KindTPC:
		dist, err := tpc.DistributionFor(*m.TPC, m.NumSites, n)
		if err != nil {
			return nil, err
		}
		return distrib.NewCatalog(dist), nil
	case KindFlow:
		if n != m.Flow.Routers {
			return nil, fmt.Errorf("manifest: flow dataset requires all %d sites, got %d", m.Flow.Routers, n)
		}
		return distrib.NewCatalog(flow.DistributionFor(*m.Flow)), nil
	default:
		return nil, fmt.Errorf("manifest: unknown kind %q", m.Kind)
	}
}

// Save writes the manifest into a dataset directory.
func (m *Manifest) Save(dir string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, FileName), append(data, '\n'), 0o644)
}

// Load reads a dataset directory's manifest.
func Load(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// SitePath returns the partition file path for a site within a dataset
// directory: <dir>/site<NN>/<relation>.gob.
func SitePath(dir string, site int, relName string) string {
	return filepath.Join(dir, fmt.Sprintf("site%02d", site), relName+".gob")
}
