package manifest

import (
	"path/filepath"
	"testing"

	"skalla/internal/flow"
	"skalla/internal/tpc"
)

func tpcManifest() *Manifest {
	c := tpc.Config{Rows: 100, Customers: 50, Nations: 25, CitiesPerNation: 4, Clerks: 10, Seed: 1}
	return &Manifest{Kind: KindTPC, NumSites: 4, TPC: &c}
}

func flowManifest() *Manifest {
	c := flow.Config{Rows: 100, Routers: 3, SourceAS: 10, DestAS: 5, Seed: 1}
	return &Manifest{Kind: KindFlow, NumSites: 3, Flow: &c}
}

func TestValidate(t *testing.T) {
	if err := tpcManifest().Validate(); err != nil {
		t.Errorf("tpc manifest: %v", err)
	}
	if err := flowManifest().Validate(); err != nil {
		t.Errorf("flow manifest: %v", err)
	}
	bad := []*Manifest{
		{Kind: "weird", NumSites: 1},
		{Kind: KindTPC, NumSites: 1},                             // missing config
		{Kind: KindFlow, NumSites: 1},                            // missing config
		{Kind: KindTPC, NumSites: 0, TPC: tpcManifest().TPC},     // bad sites
		{Kind: KindFlow, NumSites: 2, Flow: flowManifest().Flow}, // router mismatch
		{Kind: KindTPC, NumSites: 2, TPC: &tpc.Config{}},         // invalid config
		{Kind: KindFlow, NumSites: 0, Flow: &flow.Config{}},      // invalid config
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad manifest %d accepted", i)
		}
	}
}

func TestRelationName(t *testing.T) {
	if n, err := tpcManifest().RelationName(); err != nil || n != tpc.RelationName {
		t.Errorf("tpc relation: %q %v", n, err)
	}
	if n, err := flowManifest().RelationName(); err != nil || n != flow.RelationName {
		t.Errorf("flow relation: %q %v", n, err)
	}
	if _, err := (&Manifest{Kind: "zz"}).RelationName(); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestCatalog(t *testing.T) {
	cat, err := tpcManifest().Catalog(2)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Distribution(tpc.RelationName) == nil {
		t.Error("tpc catalog missing distribution")
	}
	if _, err := tpcManifest().Catalog(9); err == nil {
		t.Error("out-of-range subcluster must error")
	}
	fcat, err := flowManifest().Catalog(3)
	if err != nil {
		t.Fatal(err)
	}
	if fcat.Distribution(flow.RelationName) == nil {
		t.Error("flow catalog missing distribution")
	}
	if _, err := flowManifest().Catalog(2); err == nil {
		t.Error("flow subclusters are unsupported and must error")
	}
	if _, err := (&Manifest{Kind: "zz", NumSites: 1}).Catalog(1); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := tpcManifest()
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.NumSites != m.NumSites || *got.TPC != *m.TPC {
		t.Errorf("round trip: %+v vs %+v", got, m)
	}
	// Invalid manifests are rejected on save and load.
	if err := (&Manifest{Kind: "zz"}).Save(dir); err == nil {
		t.Error("invalid manifest must not save")
	}
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("missing manifest must error")
	}
}

func TestSitePath(t *testing.T) {
	got := SitePath("/data", 3, "TPCR")
	want := filepath.Join("/data", "site03", "TPCR.gob")
	if got != want {
		t.Errorf("SitePath = %q, want %q", got, want)
	}
}
