package transport

import (
	"context"
	"testing"
	"time"

	"skalla/internal/agg"
	"skalla/internal/engine"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

func testSite(t *testing.T, id int) *engine.Site {
	t.Helper()
	s := engine.NewSite(id)
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	for i := 0; i < 10; i++ {
		r.MustAppend(relation.Tuple{relation.NewInt(int64(i % 3)), relation.NewInt(int64(i))})
	}
	if err := s.Load(context.Background(), "T", r); err != nil {
		t.Fatal(err)
	}
	return s
}

func opRequest() engine.OperatorRequest {
	base := relation.New(relation.MustSchema(relation.Column{Name: "g", Kind: relation.KindInt}))
	for g := int64(0); g < 3; g++ {
		base.MustAppend(relation.Tuple{relation.NewInt(g)})
	}
	return engine.OperatorRequest{
		Base: base,
		Op: gmdj.Operator{Detail: "T", Vars: []gmdj.GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "c"}, {Func: agg.Sum, Arg: "v", As: "s"}},
			Cond: expr.MustParse("B.g = R.g"),
		}}},
		Keys: []string{"g"},
	}
}

// exerciseSite runs the full Site surface against any implementation.
func exerciseSite(t *testing.T, site Site, wantID int, wantBytes bool) {
	t.Helper()
	ctx := context.Background()
	if site.ID() != wantID {
		t.Errorf("ID = %d, want %d", site.ID(), wantID)
	}

	sch, err := site.DetailSchema(ctx, "T")
	if err != nil || !sch.Has("g") {
		t.Fatalf("DetailSchema: %v %v", sch, err)
	}
	if _, err := site.DetailSchema(ctx, "missing"); err == nil {
		t.Error("missing schema must error")
	}

	b, call, err := site.EvalBase(ctx, gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Errorf("base rows = %d", b.Len())
	}
	if call.RowsUp != 3 || call.RowsDown != 0 {
		t.Errorf("base call rows = %+v", call)
	}
	if wantBytes && (call.BytesDown <= 0 || call.BytesUp <= 0) {
		t.Errorf("base call bytes = %+v", call)
	}

	h, call, err := site.EvalOperator(ctx, opRequest())
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 || !h.Schema.Has("c") || !h.Schema.Has("s") {
		t.Errorf("H = %s", h)
	}
	if call.RowsDown != 3 || call.RowsUp != 3 {
		t.Errorf("operator call rows = %+v", call)
	}
	if call.Compute < 0 {
		t.Errorf("compute = %v", call.Compute)
	}

	q := gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}},
		Ops: []gmdj.Operator{{Detail: "T", Vars: []gmdj.GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "c"}},
			Cond: expr.MustParse("B.g = R.g"),
		}}}},
	}
	x, call, err := site.EvalLocal(ctx, engine.LocalRequest{Query: q, UpTo: 1})
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 3 || !x.Schema.Has("c") {
		t.Errorf("local X = %s", x)
	}
	if call.RowsUp != 3 {
		t.Errorf("local call rows = %+v", call)
	}

	// Errors propagate with their message.
	_, _, err = site.EvalBase(ctx, gmdj.BaseQuery{Detail: "missing", Cols: []string{"x"}})
	if err == nil {
		t.Error("EvalBase on missing relation must error")
	}
	_, _, err = site.EvalOperator(ctx, engine.OperatorRequest{})
	if err == nil {
		t.Error("empty operator request must error")
	}
	_, _, err = site.EvalLocal(ctx, engine.LocalRequest{Query: q, UpTo: 99})
	if err == nil {
		t.Error("out-of-range local request must error")
	}

	// Context cancellation short-circuits.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := site.EvalBase(cctx, gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}}); err == nil {
		t.Error("cancelled context must error")
	}
}

func TestLocalSite(t *testing.T) {
	exerciseSite(t, NewLocalSite(testSite(t, 4)), 4, true)
}

func TestFastLocalSite(t *testing.T) {
	exerciseSite(t, NewFastLocalSite(testSite(t, 2)), 2, false)
}

func TestTCPSite(t *testing.T) {
	srv, err := Serve(testSite(t, 7), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	exerciseSite(t, cli, 7, true)
}

func TestTCPLoad(t *testing.T) {
	srv, err := Serve(engine.NewSite(1), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	rel := relation.New(relation.MustSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	rel.MustAppend(relation.Tuple{relation.NewInt(42)})
	if err := cli.Load(ctx, "pushed", rel); err != nil {
		t.Fatal(err)
	}
	got, _, err := cli.EvalBase(ctx, gmdj.BaseQuery{Detail: "pushed", Cols: []string{"x"}})
	if err != nil || got.Len() != 1 || got.Tuples[0][0].Int != 42 {
		t.Errorf("pushed data round-trip: %v %v", got, err)
	}
	// Invalid load is rejected remotely.
	if err := cli.Load(ctx, "", rel); err == nil {
		t.Error("empty-name load must error")
	}
}

func TestLocalSiteLoad(t *testing.T) {
	ls := NewLocalSite(engine.NewSite(0))
	rel := relation.New(relation.MustSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	if err := ls.Load(context.Background(), "T", rel); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.DetailSchema(context.Background(), "T"); err != nil {
		t.Error("loaded table must be visible")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := Serve(testSite(t, 9), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			cli, err := Dial(srv.Addr())
			if err != nil {
				done <- err
				return
			}
			defer cli.Close()
			for j := 0; j < 5; j++ {
				if _, _, err := cli.EvalOperator(context.Background(), opRequest()); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestTCPDeadline(t *testing.T) {
	srv, err := Serve(testSite(t, 1), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// A generous deadline succeeds.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, err := cli.EvalBase(ctx, gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}}); err != nil {
		t.Errorf("call with deadline failed: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve(testSite(t, 0), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("first close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := Dial(srv.Addr()); err == nil {
		t.Error("dial after close must fail")
	}
}

// Serialized sizes must grow with payload: a faithful byte accounting is what
// the Fig. 2 bytes-transferred experiment measures.
func TestLocalSiteByteAccountingScales(t *testing.T) {
	ls := NewLocalSite(testSite(t, 0))
	small := opRequest()
	big := opRequest()
	for g := int64(3); g < 1000; g++ {
		big.Base.MustAppend(relation.Tuple{relation.NewInt(g)})
	}
	_, callSmall, err := ls.EvalOperator(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	_, callBig, err := ls.EvalOperator(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	// 997 extra single-int rows must add at least a varint each (1-2 bytes
	// plus the NULL bitmap) beyond the fixed per-message overhead.
	if callBig.BytesDown < callSmall.BytesDown+1000 {
		t.Errorf("bytes down must scale with base size: small=%d big=%d",
			callSmall.BytesDown, callBig.BytesDown)
	}
	if callBig.RowsDown != 1000 {
		t.Errorf("RowsDown = %d, want 1000", callBig.RowsDown)
	}
}
