// Package faultinject wraps a transport.Site with configurable failure
// injection for chaos testing: outright call failures, fail-then-recover,
// hangs until the caller's deadline, added latency, probabilistic errors,
// mid-stream death after a set number of H blocks, and block mutation
// (corruption). It is used by the core chaos matrix and is available to any
// test that needs a misbehaving site without a real network.
package faultinject

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// ErrInjected is the error returned by every injected failure; tests match it
// with errors.Is to distinguish injected faults from real bugs.
var ErrInjected = errors.New("faultinject: injected failure")

// Config selects the faults to inject. The zero value injects nothing. Call
// counters cover the data-plane calls (EvalBase, EvalOperator[Stream],
// EvalLocal); metadata calls (DetailSchema, Tables) always pass through.
type Config struct {
	// FailFirst fails the first N data calls outright, then recovers —
	// the shape a retry policy must absorb.
	FailFirst int
	// FailFrom fails every data call from the Nth (1-based) onward — a
	// persistent failure no retry policy can absorb. 0 disables.
	FailFrom int
	// HangFirst makes the first N data calls block until the context is
	// done, simulating a hung site that only a per-attempt deadline frees.
	HangFirst int
	// Delay is added to every data call before it runs (slow site).
	Delay time.Duration
	// ErrorRate fails each data call with this probability, drawn from a
	// generator seeded with Seed so runs are reproducible.
	ErrorRate float64
	Seed      int64
	// FailStreams makes the first N EvalOperatorStream calls die mid-stream
	// after StreamFailAfterBlocks H blocks have been delivered to the sink;
	// later attempts stream cleanly. This is the partial-stream case that
	// makes naive (unstaged) retry double-count.
	FailStreams           int
	StreamFailAfterBlocks int
	// MutateBlock, when set, replaces each streamed H block before it
	// reaches the sink — for corruption tests. The original block stays
	// untouched (it may be pooled).
	MutateBlock func(*relation.Relation) *relation.Relation
}

// Site wraps an inner transport.Site with fault injection per Config.
type Site struct {
	transport.Site
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	calls   int
	streams int
}

// Wrap builds a fault-injecting wrapper around a site.
func Wrap(s transport.Site, cfg Config) *Site {
	f := &Site{Site: s, cfg: cfg}
	if cfg.ErrorRate > 0 {
		f.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return f
}

// Calls returns how many data-plane calls the wrapper has seen (including
// failed and hung ones) — tests use it to assert retry counts.
func (f *Site) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// gate applies the per-call fault schedule; it is invoked once at the start
// of every data call.
func (f *Site) gate(ctx context.Context) error {
	f.mu.Lock()
	f.calls++
	n := f.calls
	roll := 1.0
	if f.rng != nil {
		roll = f.rng.Float64()
	}
	f.mu.Unlock()
	if f.cfg.Delay > 0 {
		select {
		case <-time.After(f.cfg.Delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if n <= f.cfg.HangFirst {
		<-ctx.Done()
		return ctx.Err()
	}
	if n <= f.cfg.FailFirst {
		return ErrInjected
	}
	if f.cfg.FailFrom > 0 && n >= f.cfg.FailFrom {
		return ErrInjected
	}
	if f.cfg.ErrorRate > 0 && roll < f.cfg.ErrorRate {
		return ErrInjected
	}
	return nil
}

// EvalBase implements transport.Site.
func (f *Site) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	if err := f.gate(ctx); err != nil {
		return nil, stats.Call{}, err
	}
	return f.Site.EvalBase(ctx, bq)
}

// EvalOperator implements transport.Site by collecting the (fault-injected)
// stream, so stream faults apply to both entry points.
func (f *Site) EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	var h *relation.Relation
	call, err := f.EvalOperatorStream(ctx, req, func(b *relation.Relation) error {
		if h == nil {
			h = b.Clone()
			return nil
		}
		return h.Union(b)
	})
	return h, call, err
}

// EvalOperatorStream implements transport.Site with stream-level faults:
// mid-stream death after StreamFailAfterBlocks blocks and block mutation.
func (f *Site) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	if err := f.gate(ctx); err != nil {
		return stats.Call{}, err
	}
	f.mu.Lock()
	f.streams++
	failThis := f.streams <= f.cfg.FailStreams
	f.mu.Unlock()
	delivered := 0
	return f.Site.EvalOperatorStream(ctx, req, func(b *relation.Relation) error {
		if failThis && delivered >= f.cfg.StreamFailAfterBlocks {
			return ErrInjected
		}
		if f.cfg.MutateBlock != nil {
			b = f.cfg.MutateBlock(b)
		}
		delivered++
		return sink(b)
	})
}

// EvalLocal implements transport.Site.
func (f *Site) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	if err := f.gate(ctx); err != nil {
		return nil, stats.Call{}, err
	}
	return f.Site.EvalLocal(ctx, req)
}
