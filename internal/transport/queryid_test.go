package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/relation"
)

// oldRequest is the pre-QueryID wire envelope, as an old peer would encode and
// decode it. gob matches struct fields by name, so the type name differing
// from Request does not matter on the wire.
type oldRequest struct {
	Kind     ReqKind
	Base     *gmdj.BaseQuery
	Operator *engine.OperatorRequest
	Local    *engine.LocalRequest
	Schema   string
	LoadName string
	LoadRel  *relation.Relation
}

// TestQueryIDOldPeerCompat proves the QueryID field keeps the protocol
// compatible with peers built before it existed, in both directions.
func TestQueryIDOldPeerCompat(t *testing.T) {
	// New coordinator → old site: the unknown field is skipped.
	var buf bytes.Buffer
	newReq := Request{Kind: KindSchema, QueryID: "abc123", Schema: "Flow"}
	if err := gob.NewEncoder(&buf).Encode(&newReq); err != nil {
		t.Fatal(err)
	}
	var old oldRequest
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old peer cannot decode new request: %v", err)
	}
	if old.Kind != KindSchema || old.Schema != "Flow" {
		t.Errorf("old peer decoded %+v", old)
	}

	// Old coordinator → new site: the missing field stays zero.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&oldRequest{Kind: KindTables}); err != nil {
		t.Fatal(err)
	}
	var cur Request
	if err := gob.NewDecoder(&buf).Decode(&cur); err != nil {
		t.Fatalf("new peer cannot decode old request: %v", err)
	}
	if cur.Kind != KindTables || cur.QueryID != "" {
		t.Errorf("new peer decoded %+v", cur)
	}
}

// TestQueryIDPropagatesOverTCP runs a real exchange and checks the
// context-carried query ID lands in the transport metrics on both ends.
func TestQueryIDPropagatesOverTCP(t *testing.T) {
	srv, err := Serve(testSite(t, 3), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	qid := obs.NewQueryID()
	ctx := obs.WithQueryID(context.Background(), qid)
	rel, call, err := cli.EvalBase(ctx, gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Errorf("base result %d rows, want 3", rel.Len())
	}
	if call.BytesUp == 0 || call.BytesDown == 0 {
		t.Errorf("call accounting empty: %+v", call)
	}
	// Client-side metrics carry the query label.
	if got := obs.TransportBytes.With("3", "up", qid).Value(); got == 0 {
		t.Error("transport up-bytes not recorded under the query ID")
	}
	if got := obs.TransportBytes.With("3", "down", qid).Value(); got == 0 {
		t.Error("transport down-bytes not recorded under the query ID")
	}
	if got := obs.TransportCalls.With("3", "base").Value(); got == 0 {
		t.Error("transport call not counted")
	}
}

// TestQueryIDPropagatesThroughLocalSite exercises the serializing in-process
// transport the benchmarks use.
func TestQueryIDPropagatesThroughLocalSite(t *testing.T) {
	l := NewLocalSite(testSite(t, 3))
	qid := obs.NewQueryID()
	ctx := obs.WithQueryID(context.Background(), qid)
	base, _, err := l.EvalBase(ctx, gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() != 3 {
		t.Fatalf("base result %d rows", base.Len())
	}
	if got := obs.TransportBytes.With("3", "up", qid).Value(); got == 0 {
		t.Error("local transport bytes not recorded under the query ID")
	}
}

// TestUntaggedContextUsesNoneLabel: calls outside a query span land on the
// "none" query label rather than minting unbounded series.
func TestUntaggedContextUsesNoneLabel(t *testing.T) {
	l := NewLocalSite(testSite(t, 3))
	before := obs.TransportBytes.With("3", "up", "none").Value()
	if _, _, err := l.EvalBase(context.Background(), gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}}); err != nil {
		t.Fatal(err)
	}
	if got := obs.TransportBytes.With("3", "up", "none").Value(); got <= before {
		t.Error("untagged call not recorded under the none label")
	}
}
