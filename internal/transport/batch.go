package transport

import (
	"context"
	"fmt"
	"time"

	"skalla/internal/engine"
	"skalla/internal/obs"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// Batched round framing: several concurrent queries whose current MD
// operators aggregate over the same detail relation ship as ONE wire exchange
// per site, and the site feeds every member from a single scan of its
// partition (engine.EvalOperatorBatch). Batching is a capability, not part of
// the base Site/Backend contracts: endpoints advertise it by implementing the
// interfaces below, and callers fall back to per-member streams against
// anything else (old peers, relays, fault-injection wrappers), so the batch
// path degrades instead of failing.

// maxBatchMembers bounds a batch so the member index fits the one-byte wire
// tag; the coordinator's batch window never accumulates anywhere near this.
const maxBatchMembers = 255

// BatchSite is the optional client-side capability: evaluate several operator
// requests in one exchange, delivering each member's H_i blocks to sink with
// the member index. queryIDs (optional, parallel to reqs) attributes each
// member to the query it serves in site logs and per-query metrics. On
// success it returns one stats.Call per member whose byte totals sum exactly
// to what crossed the wire, so profile/metrics reconciliation holds under
// batching.
type BatchSite interface {
	Site
	EvalOperatorBatchStream(ctx context.Context, reqs []engine.OperatorRequest, queryIDs []string, sink func(member int, block *relation.Relation) error) ([]stats.Call, error)
}

// BatchBackend is the optional serving-side capability; *engine.Site
// implements it via its fan-in evaluator.
type BatchBackend interface {
	Backend
	EvalOperatorBatch(ctx context.Context, reqs []engine.OperatorRequest, emit func(member int, block *relation.Relation) error) error
}

// EvalBatch evaluates a batch over any Site: a BatchSite gets the
// single-exchange fan-in path; anything else falls back to sequential
// per-member streams (each under its member's query ID), which preserves the
// semantics at the cost of one scan per member.
func EvalBatch(ctx context.Context, s Site, reqs []engine.OperatorRequest, queryIDs []string, sink func(member int, block *relation.Relation) error) ([]stats.Call, error) {
	if bs, ok := s.(BatchSite); ok {
		return bs.EvalOperatorBatchStream(ctx, reqs, queryIDs, sink)
	}
	calls := make([]stats.Call, len(reqs))
	for m := range reqs {
		mctx := ctx
		if m < len(queryIDs) && queryIDs[m] != "" {
			mctx = obs.WithQueryID(ctx, queryIDs[m])
		}
		m := m
		call, err := s.EvalOperatorStream(mctx, reqs[m], func(block *relation.Relation) error {
			return sink(m, block)
		})
		calls[m] = call
		if err != nil {
			return calls, err
		}
	}
	return calls, nil
}

// evalBatchBackend dispatches a batch on the serving side: a BatchBackend
// evaluates all members over one shared detail scan; anything else (relays,
// plain backends) evaluates members sequentially within the same exchange.
func evalBatchBackend(ctx context.Context, b Backend, reqs []engine.OperatorRequest, emit func(member int, block *relation.Relation) error) error {
	if len(reqs) == 0 {
		return fmt.Errorf("transport: batch request without members")
	}
	if len(reqs) > maxBatchMembers {
		return fmt.Errorf("transport: batch of %d members exceeds the %d-member wire limit", len(reqs), maxBatchMembers)
	}
	if bb, ok := b.(BatchBackend); ok {
		return bb.EvalOperatorBatch(ctx, reqs, emit)
	}
	for m := range reqs {
		m := m
		if err := b.EvalOperatorBlocks(ctx, reqs[m], func(block *relation.Relation) error {
			return emit(m, block)
		}); err != nil {
			return err
		}
	}
	return nil
}

// batchCalls splits one batched exchange into per-member call records. The
// envelope (request + terminal frame) bytes are divided evenly with the
// remainder on early members, so the per-member BytesDown/BytesUp sum exactly
// to the wire totals; member 0 carries the exchange's compute time and site
// breakdown (the scan ran once — attributing it once keeps histogram and
// profile sums equal to the unbatched accounting), the rest carry empty
// non-nil breakdowns.
func batchCalls(siteID int, n, down, up int, rowsDown, rowsUp []int, start time.Time, elapsed time.Duration, attempt int, computeNS int64, prof *obs.SiteBreakdown) []stats.Call {
	calls := make([]stats.Call, n)
	for m := 0; m < n; m++ {
		c := stats.Call{
			Site:      siteID,
			BytesDown: down / n,
			BytesUp:   up / n,
			RowsDown:  rowsDown[m],
			RowsUp:    rowsUp[m],
			Start:     start,
			Elapsed:   elapsed,
			Attempt:   attempt,
			Profile:   &obs.SiteBreakdown{},
		}
		if m < down%n {
			c.BytesDown++
		}
		if m < up%n {
			c.BytesUp++
		}
		if m == 0 {
			c.Compute = time.Duration(computeNS)
			if prof != nil {
				c.Profile = prof
			}
		}
		calls[m] = c
	}
	return calls
}

// batchRowsDown counts each member's shipped base rows.
func batchRowsDown(reqs []engine.OperatorRequest) []int {
	rows := make([]int, len(reqs))
	for m := range reqs {
		if reqs[m].Base != nil {
			rows[m] = reqs[m].Base.Len()
		}
	}
	return rows
}

// recordBatchCalls folds per-member call records into the obs registry under
// each member's own query ID.
func recordBatchCalls(calls []stats.Call, queryIDs []string) {
	for m := range calls {
		qid := ""
		if m < len(queryIDs) {
			qid = queryIDs[m]
		}
		recordCall(calls[m], KindBatch, qid)
	}
}
