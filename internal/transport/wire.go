package transport

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// ReqKind discriminates request payloads.
type ReqKind uint8

const (
	// KindHello requests the site's identity (sent once per connection).
	KindHello ReqKind = iota
	// KindBase evaluates the base query fragment.
	KindBase
	// KindOperator evaluates one MD operator.
	KindOperator
	// KindLocal evaluates a query prefix locally.
	KindLocal
	// KindSchema fetches a detail relation's schema.
	KindSchema
	// KindLoad installs a relation partition at the site.
	KindLoad
	// KindTables lists the site's relation inventory.
	KindTables
	// KindBatch evaluates several MD operator requests over one shared scan
	// of the detail partition (the site-side fan-in of the shared-work layer).
	KindBatch
)

// Request is the wire request envelope. QueryID carries the coordinator's
// query identifier to the site so remote logs and metrics correlate with
// coordinator rounds; gob tolerates it missing (old peers) in either
// direction, so the protocol stays compatible.
type Request struct {
	Kind     ReqKind
	QueryID  string
	Base     *gmdj.BaseQuery
	Operator *engine.OperatorRequest
	Local    *engine.LocalRequest
	Schema   string
	LoadName string
	LoadRel  *relation.Relation
	// Round and Attempt extend the trace context: the coordinator round that
	// issued the call and the 1-based retry attempt. Appended fields — gob
	// tolerates them missing in either direction, so old peers interoperate.
	Round   string
	Attempt int
	// Batch carries a KindBatch request's member operator requests (all over
	// the same detail relation); BatchQueryIDs carries the per-member query
	// identifiers so site logs and metrics attribute each member to the query
	// it serves. Appended fields — see Round.
	Batch         []engine.OperatorRequest
	BatchQueryIDs []string
}

// Response is the wire response envelope. Operator evaluations may stream:
// each H_i block arrives in its own response with More set; the terminal
// response (More unset) carries the site's total compute time and any error.
type Response struct {
	Err       string
	Rel       *relation.Relation
	Schema    relation.Schema
	Tables    []engine.TableInfo
	SiteID    int
	ComputeNS int64
	More      bool
	// Profile is the site-side cost breakdown of this request (nil from
	// peers built before the profiler). Appended field — see Request.
	Profile *obs.SiteBreakdown
}

// Backend is what a transport endpoint serves: the evaluation surface of a
// local warehouse. *engine.Site implements it directly; relay nodes
// (core.Relay, the multi-tier coordinator architecture) implement it too, so
// a mid-tier aggregation process is served exactly like a site. Every
// evaluation method takes the serving context so cancellation (a dropped
// coordinator connection, a per-attempt fault-tolerance timeout) propagates
// all the way down the tree instead of stranding work at the leaves.
type Backend interface {
	ID() int
	EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, error)
	EvalOperatorBlocks(ctx context.Context, req engine.OperatorRequest, emit func(*relation.Relation) error) error
	EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, error)
	DetailSchema(ctx context.Context, name string) (relation.Schema, error)
	Load(ctx context.Context, name string, rel *relation.Relation) error
	// Tables lists the relations the backend serves (aggregated across the
	// subtree for relays).
	Tables(ctx context.Context) []engine.TableInfo
}

// collectBlocks adapts EvalOperatorBlocks to a single relation.
func collectBlocks(ctx context.Context, b Backend, req engine.OperatorRequest) (*relation.Relation, error) {
	var h *relation.Relation
	err := b.EvalOperatorBlocks(ctx, req, func(block *relation.Relation) error {
		if h == nil {
			h = block
			return nil
		}
		return h.Union(block)
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// dispatch executes a request against a backend, measuring compute time and
// collecting the site-side breakdown into the response's Profile.
func dispatch(ctx context.Context, site Backend, req *Request) *Response {
	obs.ServerRequests.With(kindName(req.Kind)).Inc()
	rec := obs.NewSiteRecorder()
	ctx = obs.WithRecorder(ctx, rec)
	start := time.Now()
	resp := &Response{SiteID: site.ID()}
	var err error
	switch req.Kind {
	case KindHello:
		// Identity only.
	case KindBase:
		if req.Base == nil {
			err = fmt.Errorf("transport: base request without query")
		} else {
			resp.Rel, err = site.EvalBase(ctx, *req.Base)
		}
	case KindOperator:
		if req.Operator == nil {
			err = fmt.Errorf("transport: operator request without payload")
		} else {
			resp.Rel, err = collectBlocks(ctx, site, *req.Operator)
		}
	case KindLocal:
		if req.Local == nil {
			err = fmt.Errorf("transport: local request without payload")
		} else {
			resp.Rel, err = site.EvalLocal(ctx, *req.Local)
		}
	case KindSchema:
		resp.Schema, err = site.DetailSchema(ctx, req.Schema)
	case KindLoad:
		err = site.Load(ctx, req.LoadName, req.LoadRel)
	case KindTables:
		resp.Tables = site.Tables(ctx)
	default:
		err = fmt.Errorf("transport: unknown request kind %d", req.Kind)
	}
	resp.ComputeNS = time.Since(start).Nanoseconds()
	rec.SetEval(time.Since(start))
	b := rec.Snapshot()
	resp.Profile = &b
	if err != nil {
		resp.Err = err.Error()
		resp.Rel = nil
	}
	return resp
}

// reqRows counts the base-structure rows a request ships to the site.
func reqRows(req *Request) int {
	if req.Kind == KindOperator && req.Operator != nil && req.Operator.Base != nil {
		return req.Operator.Base.Len()
	}
	return 0
}

// respRows counts the rows a response ships back.
func respRows(resp *Response) int {
	if resp.Rel != nil {
		return resp.Rel.Len()
	}
	return 0
}

// callFromSizes assembles a stats.Call from measured message sizes, carrying
// over the site-side breakdown from the response.
func callFromSizes(site int, req *Request, resp *Response, down, up int) stats.Call {
	return stats.Call{
		Site:      site,
		BytesDown: down,
		BytesUp:   up,
		RowsDown:  reqRows(req),
		RowsUp:    respRows(resp),
		Compute:   time.Duration(resp.ComputeNS),
		Profile:   resp.Profile,
	}
}

// stampTraceContext copies the context's trace fields (query ID, round,
// attempt) into the wire request, and returns the attempt for the client's
// own call record.
func stampTraceContext(ctx context.Context, req *Request) int {
	req.QueryID = obs.QueryIDFrom(ctx)
	req.Round = obs.RoundFrom(ctx)
	req.Attempt = obs.AttemptFrom(ctx)
	return req.Attempt
}

// kindName names a request kind for metric labels and logs.
func kindName(k ReqKind) string {
	switch k {
	case KindHello:
		return "hello"
	case KindBase:
		return "base"
	case KindOperator:
		return "operator"
	case KindLocal:
		return "local"
	case KindSchema:
		return "schema"
	case KindLoad:
		return "load"
	case KindTables:
		return "tables"
	case KindBatch:
		return "batch"
	}
	return "unknown"
}

// recordCall folds one completed coordinator↔site exchange into the obs
// registry: bytes and rows in both directions (labeled site + query) and the
// site compute histogram. Runs once per call, never per row.
func recordCall(call stats.Call, kind ReqKind, queryID string) {
	site := strconv.Itoa(call.Site)
	q := obs.QueryLabel(queryID)
	obs.TransportCalls.With(site, kindName(kind)).Inc()
	obs.TransportBytes.With(site, "down", q).Add(int64(call.BytesDown))
	obs.TransportBytes.With(site, "up", q).Add(int64(call.BytesUp))
	obs.TransportRows.With(site, "down", q).Add(int64(call.RowsDown))
	obs.TransportRows.With(site, "up", q).Add(int64(call.RowsUp))
	obs.SiteCompute.With(site).ObserveDuration(call.Compute)
}
