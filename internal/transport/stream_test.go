package transport

import (
	"context"
	"errors"
	"testing"

	"skalla/internal/engine"
	"skalla/internal/relation"
)

// streamSites builds the three transport flavours over identical site data.
func streamSites(t *testing.T) map[string]Site {
	t.Helper()
	out := map[string]Site{
		"local": NewLocalSite(testSite(t, 0)),
		"fast":  NewFastLocalSite(testSite(t, 0)),
	}
	srv, err := Serve(testSite(t, 0), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	out["tcp"] = cli
	return out
}

func TestEvalOperatorStreamBlocks(t *testing.T) {
	for name, site := range streamSites(t) {
		t.Run(name, func(t *testing.T) {
			req := opRequest()
			req.BlockRows = 1 // 3 base groups → 3 blocks
			var blocks []*relation.Relation
			total := 0
			call, err := site.EvalOperatorStream(context.Background(), req, func(b *relation.Relation) error {
				blocks = append(blocks, b)
				total += b.Len()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(blocks) != 3 || total != 3 {
				t.Errorf("blocks = %d (total rows %d), want 3 blocks of 1", len(blocks), total)
			}
			if call.RowsUp != 3 || call.RowsDown != 3 {
				t.Errorf("call rows = %+v", call)
			}
			// Whole-relation equivalence with the non-blocked call.
			whole, _, err := site.EvalOperator(context.Background(), opRequest())
			if err != nil {
				t.Fatal(err)
			}
			merged := blocks[0]
			for _, b := range blocks[1:] {
				if err := merged.Union(b); err != nil {
					t.Fatal(err)
				}
			}
			if !merged.EqualMultiset(whole) {
				t.Error("blocked and whole results differ")
			}
		})
	}
}

func TestEvalOperatorStreamSingleBlockDefault(t *testing.T) {
	for name, site := range streamSites(t) {
		t.Run(name, func(t *testing.T) {
			n := 0
			_, err := site.EvalOperatorStream(context.Background(), opRequest(), func(b *relation.Relation) error {
				n++
				return nil
			})
			if err != nil || n != 1 {
				t.Errorf("blocks = %d, err = %v; want exactly 1 block", n, err)
			}
		})
	}
}

func TestEvalOperatorStreamEmptyBase(t *testing.T) {
	// Even with zero matching rows a single empty block arrives, so the
	// coordinator always learns the H schema.
	for name, site := range streamSites(t) {
		t.Run(name, func(t *testing.T) {
			req := opRequest()
			req.Base = relation.New(req.Base.Schema)
			n, rows := 0, 0
			_, err := site.EvalOperatorStream(context.Background(), req, func(b *relation.Relation) error {
				n++
				rows += b.Len()
				return nil
			})
			if err != nil || n != 1 || rows != 0 {
				t.Errorf("empty base: blocks=%d rows=%d err=%v", n, rows, err)
			}
		})
	}
}

func TestEvalOperatorStreamSinkError(t *testing.T) {
	sinkErr := errors.New("sink rejected block")
	for name, site := range streamSites(t) {
		t.Run(name, func(t *testing.T) {
			req := opRequest()
			req.BlockRows = 1
			_, err := site.EvalOperatorStream(context.Background(), req, func(*relation.Relation) error {
				return sinkErr
			})
			if err == nil {
				t.Fatal("sink error must propagate")
			}
			// The connection (if any) must stay usable afterwards.
			if _, _, err := site.EvalOperator(context.Background(), opRequest()); err != nil {
				t.Errorf("site unusable after sink error: %v", err)
			}
		})
	}
}

func TestEvalOperatorStreamEvalError(t *testing.T) {
	for name, site := range streamSites(t) {
		t.Run(name, func(t *testing.T) {
			req := opRequest()
			req.Op.Detail = "missing"
			_, err := site.EvalOperatorStream(context.Background(), req, func(*relation.Relation) error { return nil })
			if err == nil {
				t.Fatal("evaluation error must propagate")
			}
			if _, _, err := site.EvalOperator(context.Background(), opRequest()); err != nil {
				t.Errorf("site unusable after eval error: %v", err)
			}
		})
	}
}

func TestEngineBlockedEquivalence(t *testing.T) {
	es := testSite(t, 0)
	req := opRequest()
	whole, err := es.EvalOperator(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, blockRows := range []int{1, 2, 100} {
		breq := req
		breq.BlockRows = blockRows
		merged := relation.New(whole.Schema)
		if err := es.EvalOperatorBlocks(context.Background(), breq, func(b *relation.Relation) error {
			return merged.Union(b)
		}); err != nil {
			t.Fatal(err)
		}
		if !merged.EqualMultiset(whole) {
			t.Errorf("blockRows=%d: blocked evaluation differs", blockRows)
		}
	}
	_ = engine.OperatorRequest{} // keep the import for clarity of intent
}
