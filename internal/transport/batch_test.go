package transport

import (
	"context"
	"strings"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/engine"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// batchReqs builds two dissimilar members over the shared "T" detail: the
// standard count/sum request in 1-row blocks, and a min/max over a smaller
// base with a value filter.
func batchReqs() []engine.OperatorRequest {
	first := opRequest()
	first.BlockRows = 1
	base := relation.New(relation.MustSchema(relation.Column{Name: "g", Kind: relation.KindInt}))
	base.MustAppend(relation.Tuple{relation.NewInt(0)})
	base.MustAppend(relation.Tuple{relation.NewInt(1)})
	second := engine.OperatorRequest{
		Base: base,
		Op: gmdj.Operator{Detail: "T", Vars: []gmdj.GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Min, Arg: "v", As: "lo"}, {Func: agg.Max, Arg: "v", As: "hi"}},
			Cond: expr.MustParse("B.g = R.g && R.v >= 4"),
		}}},
		Keys: []string{"g"},
	}
	return []engine.OperatorRequest{first, second}
}

// runBatch merges each member's blocks into one relation.
func runBatch(t *testing.T, site Site, reqs []engine.OperatorRequest) ([]*relation.Relation, []int, []stats.Call) {
	t.Helper()
	merged := make([]*relation.Relation, len(reqs))
	blocks := make([]int, len(reqs))
	calls, err := EvalBatch(context.Background(), site, reqs, []string{"q0", "q1"}, func(m int, b *relation.Relation) error {
		blocks[m]++
		if merged[m] == nil {
			merged[m] = b
			return nil
		}
		return merged[m].Union(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	return merged, blocks, calls
}

// TestEvalBatchMatchesSolo: over every transport flavour, a batched exchange
// must deliver each member exactly what a solo stream would, with one call
// record per member whose row counts match and whose envelope bytes split
// evenly.
func TestEvalBatchMatchesSolo(t *testing.T) {
	for name, site := range streamSites(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok := site.(BatchSite); !ok {
				t.Fatalf("%T must implement BatchSite", site)
			}
			reqs := batchReqs()
			solo := make([]*relation.Relation, len(reqs))
			for m, req := range reqs {
				h, _, err := collectStream(context.Background(), site, req)
				if err != nil {
					t.Fatal(err)
				}
				solo[m] = h
			}

			merged, blocks, calls := runBatch(t, site, reqs)
			if len(calls) != len(reqs) {
				t.Fatalf("%d call records for %d members", len(calls), len(reqs))
			}
			if blocks[0] < 2 {
				t.Errorf("member 0 asked for 1-row blocks, got %d block(s)", blocks[0])
			}
			for m := range reqs {
				if merged[m] == nil || !merged[m].EqualMultiset(solo[m]) {
					t.Errorf("member %d batched result differs from solo stream", m)
				}
				if calls[m].RowsDown != reqs[m].Base.Len() {
					t.Errorf("member %d RowsDown = %d, want %d", m, calls[m].RowsDown, reqs[m].Base.Len())
				}
				if calls[m].RowsUp != merged[m].Len() {
					t.Errorf("member %d RowsUp = %d, want %d", m, calls[m].RowsUp, merged[m].Len())
				}
				if calls[m].Site != site.ID() {
					t.Errorf("member %d Site = %d", m, calls[m].Site)
				}
				if calls[m].Profile == nil {
					t.Errorf("member %d missing site breakdown", m)
				}
			}
			// Envelope bytes divide evenly (remainder on early members), so
			// the per-member totals reconcile exactly with the wire.
			if d := calls[0].BytesDown - calls[1].BytesDown; d < 0 || d > 1 {
				t.Errorf("BytesDown split %d/%d not even", calls[0].BytesDown, calls[1].BytesDown)
			}
			if d := calls[0].BytesUp - calls[1].BytesUp; d < 0 || d > 1 {
				t.Errorf("BytesUp split %d/%d not even", calls[0].BytesUp, calls[1].BytesUp)
			}
			if name == "fast" {
				if calls[0].BytesUp != 0 || calls[0].BytesDown != 0 {
					t.Errorf("fast path counts bytes: %+v", calls[0])
				}
			} else if calls[0].BytesUp == 0 || calls[0].BytesDown == 0 {
				t.Errorf("%s batch shipped zero bytes: %+v", name, calls[0])
			}
		})
	}
}

// plainSite hides a Site's batch capability behind an interface embedding, the
// way fault-injection and gating wrappers do.
type plainSite struct{ Site }

// TestEvalBatchFallback: a non-BatchSite still serves the batch through
// sequential per-member streams with identical results.
func TestEvalBatchFallback(t *testing.T) {
	site := plainSite{NewFastLocalSite(testSite(t, 0))}
	if _, ok := Site(site).(BatchSite); ok {
		t.Fatal("interface embedding should hide the batch capability")
	}
	reqs := batchReqs()
	merged, _, calls := runBatch(t, site, reqs)
	for m, req := range reqs {
		solo, _, err := collectStream(context.Background(), site, req)
		if err != nil {
			t.Fatal(err)
		}
		if !merged[m].EqualMultiset(solo) {
			t.Errorf("member %d fallback result differs from solo stream", m)
		}
		if calls[m].RowsDown != req.Base.Len() {
			t.Errorf("member %d RowsDown = %d", m, calls[m].RowsDown)
		}
	}
}

// TestEvalBatchMemberLimit: the one-byte member tag caps a batch at 255
// members; oversized batches must be rejected before touching the engine.
func TestEvalBatchMemberLimit(t *testing.T) {
	site := NewLocalSite(testSite(t, 0))
	reqs := make([]engine.OperatorRequest, maxBatchMembers+1)
	for i := range reqs {
		reqs[i] = opRequest()
	}
	qids := make([]string, len(reqs))
	_, err := site.EvalOperatorBatchStream(context.Background(), reqs, qids, func(int, *relation.Relation) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "wire limit") {
		t.Fatalf("oversized batch error = %v", err)
	}
}
