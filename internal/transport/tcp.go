package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"time"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// Operator responses stream out of band from the gob request/response pairs:
// each H_i block is announced with a one-byte marker followed by a relation
// wire-codec frame (schema shipped once per stream), and the stream ends with
// an end marker followed by the usual gob terminal Response.
const (
	opStreamEnd   = 0x00
	opStreamBlock = 0x01
	// opStreamMemberBlock frames one batch member's block: the marker is
	// followed by a one-byte member index, then the codec frame. Appended
	// marker — old peers never receive it because they never send KindBatch.
	opStreamMemberBlock = 0x02
)

// Server exposes a site engine over TCP. The wire protocol is a stream of
// gob-encoded Request/Response pairs per connection, processed sequentially;
// operator evaluations interleave codec-framed H_i blocks (see the stream
// markers above).
type Server struct {
	site Backend
	ln   net.Listener
	log  *slog.Logger

	// baseCtx parents every connection's serving context; cancel fires on
	// Close so in-flight evaluations observe shutdown instead of running to
	// completion against closed connections.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts serving a backend — a site engine or a relay — on the given
// address ("host:port"; use ":0" for an ephemeral port) and returns
// immediately. It is the convenience lifecycle root; use ServeContext to tie
// the server's evaluations to an existing context tree.
func Serve(site Backend, addr string) (*Server, error) {
	//skallavet:allow ctxcall -- lifecycle root: ServeContext is the context-threading variant
	return ServeContext(context.Background(), site, addr)
}

// ServeContext is Serve under a parent context: every request dispatched to
// the backend carries a context derived from it (and canceled on Close), so
// daemon shutdown propagates into running evaluations.
func ServeContext(ctx context.Context, site Backend, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	baseCtx, cancel := context.WithCancel(ctx)
	s := &Server{
		site:    site,
		ln:      ln,
		log:     obs.Logger().With("site", site.ID()),
		baseCtx: baseCtx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(rawConn net.Conn) {
	defer s.wg.Done()
	// Per-connection context: canceled when this handler exits or the server
	// closes, so backend evaluations stop with their connection.
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	log := s.log.With("remote", rawConn.RemoteAddr().String())
	obs.ServerActiveConns.Add(1)
	log.Debug("connection open")
	defer func() {
		s.mu.Lock()
		delete(s.conns, rawConn)
		s.mu.Unlock()
		rawConn.Close()
		obs.ServerActiveConns.Add(-1)
		log.Debug("connection closed")
	}()
	// Count connection bytes in both directions; deltas per request feed the
	// server-side byte counters.
	conn := &countingConn{Conn: rawConn}
	bytesDown := obs.ServerBytes.With("down")
	bytesUp := obs.ServerBytes.With("up")
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		r0, w0 := conn.read, conn.written
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt stream
		}
		if req.Kind == KindOperator || req.Kind == KindBatch {
			err := s.streamOperator(ctx, conn, enc, &req)
			bytesDown.Add(conn.read - r0)
			bytesUp.Add(conn.written - w0)
			if err != nil {
				log.Warn("stream response failed", "query", req.QueryID, "err", err)
				return
			}
			continue
		}
		resp := dispatch(ctx, s.site, &req)
		err := enc.Encode(resp)
		bytesDown.Add(conn.read - r0)
		bytesUp.Add(conn.written - w0)
		if err != nil {
			log.Warn("encode response failed", "kind", kindName(req.Kind), "err", err)
			return
		}
	}
}

// streamOperator evaluates an operator request with row blocking, sending a
// marker plus a codec frame per H_i block and a terminal gob response
// carrying the compute time and any evaluation error. When a block write
// already failed, the connection is broken — the end marker and terminal
// response are doomed too, so they are skipped and the handler exits with the
// original write error instead of failing (and logging) twice.
func (s *Server) streamOperator(ctx context.Context, conn net.Conn, enc *gob.Encoder, req *Request) error {
	obs.ServerRequests.With(kindName(req.Kind)).Inc()
	rec := obs.NewSiteRecorder()
	ctx = obs.WithRecorder(ctx, rec)
	start := time.Now()
	var evalErr error
	connBroken := false
	switch {
	case req.Kind == KindBatch:
		blockEnc := relation.NewEncoder(conn)
		hdr := [2]byte{opStreamMemberBlock, 0}
		evalErr = evalBatchBackend(ctx, s.site, req.Batch, func(m int, block *relation.Relation) error {
			hdr[1] = byte(m)
			if _, err := conn.Write(hdr[:]); err != nil {
				connBroken = true
				return err
			}
			if err := blockEnc.Encode(block); err != nil {
				connBroken = true
				return err
			}
			// The marker and member-tag bytes travel with every block frame.
			rec.AddCodecBytes(2)
			return nil
		})
		rec.AddCodecBytes(blockEnc.Bytes())
	case req.Operator == nil:
		evalErr = fmt.Errorf("transport: operator request without payload")
	default:
		blockEnc := relation.NewEncoder(conn)
		marker := [1]byte{opStreamBlock}
		evalErr = s.site.EvalOperatorBlocks(ctx, *req.Operator, func(block *relation.Relation) error {
			if _, err := conn.Write(marker[:]); err != nil {
				connBroken = true
				return err
			}
			if err := blockEnc.Encode(block); err != nil {
				connBroken = true
				return err
			}
			// The marker byte travels with every block frame.
			rec.AddCodecBytes(1)
			return nil
		})
		rec.AddCodecBytes(blockEnc.Bytes())
	}
	if connBroken {
		return evalErr
	}
	if _, err := conn.Write([]byte{opStreamEnd}); err != nil {
		return err
	}
	rec.SetEval(time.Since(start))
	b := rec.Snapshot()
	term := &Response{SiteID: s.site.ID(), ComputeNS: time.Since(start).Nanoseconds(), Profile: &b}
	if evalErr != nil {
		term.Err = evalErr.Error()
		s.log.Debug("operator eval failed", "query", req.QueryID, "err", evalErr)
	}
	return enc.Encode(term)
}

// countingConn wraps a net.Conn and counts bytes in each direction.
type countingConn struct {
	net.Conn
	read, written int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

// ErrBrokenConn marks a client whose gob stream desynced (any send or
// receive error poisons the connection — a partially consumed stream must
// never be reused) and whose transparent redial failed. Callers can match it
// with errors.Is and treat the site as down.
var ErrBrokenConn = errors.New("transport: connection broken")

// defaultDialTimeout bounds Dial (including the hello round-trip) when the
// caller supplies no context: a black-holed address must not hang forever.
const defaultDialTimeout = 10 * time.Second

// Client is a TCP Site: it connects to a Server and implements the Site
// interface with per-call byte accounting from the connection itself.
//
// The client owns one buffered reader over the connection, shared between the
// gob decoder and the relation codec decoder. gob never over-reads from an
// io.ByteReader, so alternating the two on the same stream is safe.
//
// Any transport error poisons the connection: gob encoders and decoders are
// stateful, so after a failed exchange the stream position is unknown and
// reusing it would decode garbage. The next call transparently redials and
// re-handshakes; if that fails, it returns an error matching ErrBrokenConn.
type Client struct {
	addr string

	mu     sync.Mutex
	conn   *countingConn
	br     *bufio.Reader
	enc    *gob.Encoder
	dec    *gob.Decoder
	id     int
	hasID  bool
	broken bool
	pool   relation.BlockPool
}

// Dial connects to a site server and performs the hello handshake to learn
// its identity, bounded by defaultDialTimeout. Use DialContext to control
// the deadline.
func Dial(addr string) (*Client, error) {
	//skallavet:allow ctxcall -- lifecycle root mirroring net.DialTimeout; DialContext is the context-threading variant
	ctx, cancel := context.WithTimeout(context.Background(), defaultDialTimeout)
	defer cancel()
	return DialContext(ctx, addr)
}

// DialContext connects to a site server under the context's deadline; the
// deadline covers the TCP connect and the hello round-trip, so a listener
// that accepts but never responds cannot hang the coordinator.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	c := &Client{addr: addr}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked (re)establishes the connection and re-handshakes; c.mu held.
// On a reconnect, the hello response must report the same site identity —
// an address now serving a different site would silently corrupt results.
func (c *Client) connectLocked(ctx context.Context) error {
	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return err
	}
	conn := &countingConn{Conn: raw}
	br := bufio.NewReader(conn)
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(br)
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	req := &Request{Kind: KindHello}
	var resp Response
	if err := enc.Encode(req); err != nil {
		raw.Close()
		return fmt.Errorf("transport: hello: %w", err)
	}
	if err := dec.Decode(&resp); err != nil {
		raw.Close()
		return fmt.Errorf("transport: hello: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	if resp.Err != "" {
		raw.Close()
		return fmt.Errorf("transport: hello: %s", resp.Err)
	}
	if c.hasID && resp.SiteID != c.id {
		raw.Close()
		return fmt.Errorf("transport: reconnect %s: site identity changed (%d -> %d)", c.addr, c.id, resp.SiteID)
	}
	c.id, c.hasID = resp.SiteID, true
	recordCall(callFromSizes(c.id, req, &resp, int(conn.written), int(conn.read)), KindHello, "")
	c.conn, c.br, c.enc, c.dec = conn, br, enc, dec
	c.broken = false
	obs.SiteBroken.With(strconv.Itoa(c.id)).Set(0)
	return nil
}

// ensureLocked returns a healthy connection, redialing a poisoned (or never
// established) one; c.mu held. A failed redial reports ErrBrokenConn
// immediately instead of letting the caller touch a desynced stream.
func (c *Client) ensureLocked(ctx context.Context) error {
	if c.conn != nil && !c.broken {
		return nil
	}
	site := strconv.Itoa(c.id)
	if err := c.connectLocked(ctx); err != nil {
		obs.TransportRedials.With(site, "error").Inc()
		return fmt.Errorf("%w (redial %s: %v)", ErrBrokenConn, c.addr, err)
	}
	obs.TransportRedials.With(site, "ok").Inc()
	return nil
}

// poisonLocked marks the connection unusable after a transport error and
// closes it (waking any server-side handler blocked on it); c.mu held.
func (c *Client) poisonLocked() {
	if c.conn != nil {
		c.conn.Close()
	}
	c.broken = true
	obs.SiteBroken.With(strconv.Itoa(c.id)).Set(1)
}

// ID implements Site.
func (c *Client) ID() int { return c.id }

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, stats.Call, error) {
	attempt := stampTraceContext(ctx, req)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, stats.Call{}, err
	}
	if err := c.ensureLocked(ctx); err != nil {
		return nil, stats.Call{}, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	start := time.Now()
	r0, w0 := c.conn.read, c.conn.written
	if err := c.enc.Encode(req); err != nil {
		c.poisonLocked()
		return nil, stats.Call{}, fmt.Errorf("transport: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		c.poisonLocked()
		return nil, stats.Call{}, fmt.Errorf("transport: receive: %w", err)
	}
	call := callFromSizes(c.id, req, &resp, int(c.conn.written-w0), int(c.conn.read-r0))
	call.Start, call.Elapsed, call.Attempt = start, time.Since(start), attempt
	recordCall(call, req.Kind, req.QueryID)
	if resp.Err != "" {
		return nil, call, errors.New(resp.Err)
	}
	return &resp, call, nil
}

// EvalBase implements Site.
func (c *Client) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	resp, call, err := c.roundTrip(ctx, &Request{Kind: KindBase, Base: &bq})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// EvalOperator implements Site.
func (c *Client) EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	return collectStream(ctx, c, req)
}

// EvalOperatorStream implements Site. The connection stays consistent even
// when sink fails: remaining blocks are drained to the terminal response. A
// transport failure mid-stream, by contrast, leaves the stream position
// unknown, so it poisons the connection — the next call redials.
func (c *Client) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return stats.Call{}, err
	}
	if err := c.ensureLocked(ctx); err != nil {
		return stats.Call{}, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	start := time.Now()
	r0, w0 := c.conn.read, c.conn.written
	wireReq := &Request{Kind: KindOperator, Operator: &req}
	attempt := stampTraceContext(ctx, wireReq)
	if err := c.enc.Encode(wireReq); err != nil {
		c.poisonLocked()
		return stats.Call{}, fmt.Errorf("transport: send: %w", err)
	}
	call := stats.Call{Site: c.id, RowsDown: reqRows(wireReq), Start: start, Attempt: attempt}
	blockDec := relation.NewDecoder(c.br)
	blockDec.SetPool(&c.pool)
	var sinkErr error
	for {
		marker, err := c.br.ReadByte()
		if err != nil {
			c.poisonLocked()
			return call, fmt.Errorf("transport: receive: %w", err)
		}
		switch marker {
		case opStreamBlock:
			block, err := blockDec.Decode()
			if err != nil {
				c.poisonLocked()
				return call, fmt.Errorf("transport: receive block: %w", err)
			}
			call.RowsUp += block.Len()
			if sinkErr == nil {
				sinkErr = sink(block)
			} else {
				relation.Recycle(block) // draining after a sink failure
			}
		case opStreamEnd:
			var resp Response
			if err := c.dec.Decode(&resp); err != nil {
				c.poisonLocked()
				return call, fmt.Errorf("transport: receive: %w", err)
			}
			call.Compute = time.Duration(resp.ComputeNS)
			call.BytesDown = int(c.conn.written - w0)
			call.BytesUp = int(c.conn.read - r0)
			call.Elapsed = time.Since(start)
			call.Profile = resp.Profile
			recordCall(call, KindOperator, wireReq.QueryID)
			if resp.Err != "" {
				return call, errors.New(resp.Err)
			}
			return call, sinkErr
		default:
			c.poisonLocked()
			return call, fmt.Errorf("transport: unknown stream marker 0x%02x", marker)
		}
	}
}

// EvalOperatorBatchStream implements BatchSite over TCP: one request ships
// every member, the server feeds them from one shared scan, and member-tagged
// block frames come back interleaved until the end marker and terminal
// response. Sink failures drain the remaining frames to keep the connection
// consistent; transport failures poison it, exactly like the single stream.
func (c *Client) EvalOperatorBatchStream(ctx context.Context, reqs []engine.OperatorRequest, queryIDs []string, sink func(member int, block *relation.Relation) error) ([]stats.Call, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.ensureLocked(ctx); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	start := time.Now()
	r0, w0 := c.conn.read, c.conn.written
	wireReq := &Request{Kind: KindBatch, Batch: reqs, BatchQueryIDs: queryIDs}
	attempt := stampTraceContext(ctx, wireReq)
	if err := c.enc.Encode(wireReq); err != nil {
		c.poisonLocked()
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	blockDec := relation.NewDecoder(c.br)
	blockDec.SetPool(&c.pool)
	rowsUp := make([]int, len(reqs))
	var sinkErr error
	for {
		marker, err := c.br.ReadByte()
		if err != nil {
			c.poisonLocked()
			return nil, fmt.Errorf("transport: receive: %w", err)
		}
		switch marker {
		case opStreamMemberBlock:
			mb, err := c.br.ReadByte()
			if err != nil {
				c.poisonLocked()
				return nil, fmt.Errorf("transport: receive: %w", err)
			}
			block, err := blockDec.Decode()
			if err != nil {
				c.poisonLocked()
				return nil, fmt.Errorf("transport: receive block: %w", err)
			}
			m := int(mb)
			if m >= len(reqs) {
				c.poisonLocked()
				return nil, fmt.Errorf("transport: batch member %d out of range (%d members)", m, len(reqs))
			}
			rowsUp[m] += block.Len()
			if sinkErr == nil {
				sinkErr = sink(m, block)
			} else {
				relation.Recycle(block) // draining after a sink failure
			}
		case opStreamEnd:
			var resp Response
			if err := c.dec.Decode(&resp); err != nil {
				c.poisonLocked()
				return nil, fmt.Errorf("transport: receive: %w", err)
			}
			if resp.Err != "" {
				return nil, errors.New(resp.Err)
			}
			calls := batchCalls(c.id, len(reqs), int(c.conn.written-w0), int(c.conn.read-r0),
				batchRowsDown(reqs), rowsUp, start, time.Since(start), attempt, resp.ComputeNS, resp.Profile)
			recordBatchCalls(calls, queryIDs)
			return calls, sinkErr
		default:
			c.poisonLocked()
			return nil, fmt.Errorf("transport: unknown stream marker 0x%02x", marker)
		}
	}
}

// EvalLocal implements Site.
func (c *Client) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	resp, call, err := c.roundTrip(ctx, &Request{Kind: KindLocal, Local: &req})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// DetailSchema implements Site.
func (c *Client) DetailSchema(ctx context.Context, name string) (relation.Schema, error) {
	resp, _, err := c.roundTrip(ctx, &Request{Kind: KindSchema, Schema: name})
	if err != nil {
		return nil, err
	}
	return resp.Schema, nil
}

// Tables implements Site.
func (c *Client) Tables(ctx context.Context) ([]engine.TableInfo, error) {
	resp, _, err := c.roundTrip(ctx, &Request{Kind: KindTables})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Load implements Loader: it ships a relation partition to the site.
func (c *Client) Load(ctx context.Context, name string, rel *relation.Relation) error {
	_, _, err := c.roundTrip(ctx, &Request{Kind: KindLoad, LoadName: name, LoadRel: rel})
	return err
}
