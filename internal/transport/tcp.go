package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// Operator responses stream out of band from the gob request/response pairs:
// each H_i block is announced with a one-byte marker followed by a relation
// wire-codec frame (schema shipped once per stream), and the stream ends with
// an end marker followed by the usual gob terminal Response.
const (
	opStreamEnd   = 0x00
	opStreamBlock = 0x01
)

// Server exposes a site engine over TCP. The wire protocol is a stream of
// gob-encoded Request/Response pairs per connection, processed sequentially;
// operator evaluations interleave codec-framed H_i blocks (see the stream
// markers above).
type Server struct {
	site Backend
	ln   net.Listener
	log  *slog.Logger

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts serving a backend — a site engine or a relay — on the given
// address ("host:port"; use ":0" for an ephemeral port) and returns
// immediately.
func Serve(site Backend, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		site:  site,
		ln:    ln,
		log:   obs.Logger().With("site", site.ID()),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(rawConn net.Conn) {
	defer s.wg.Done()
	log := s.log.With("remote", rawConn.RemoteAddr().String())
	obs.ServerActiveConns.Add(1)
	log.Debug("connection open")
	defer func() {
		s.mu.Lock()
		delete(s.conns, rawConn)
		s.mu.Unlock()
		rawConn.Close()
		obs.ServerActiveConns.Add(-1)
		log.Debug("connection closed")
	}()
	// Count connection bytes in both directions; deltas per request feed the
	// server-side byte counters.
	conn := &countingConn{Conn: rawConn}
	bytesDown := obs.ServerBytes.With("down")
	bytesUp := obs.ServerBytes.With("up")
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		r0, w0 := conn.read, conn.written
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt stream
		}
		if req.Kind == KindOperator {
			err := s.streamOperator(conn, enc, &req)
			bytesDown.Add(conn.read - r0)
			bytesUp.Add(conn.written - w0)
			if err != nil {
				log.Warn("stream response failed", "query", req.QueryID, "err", err)
				return
			}
			continue
		}
		resp := dispatch(s.site, &req)
		err := enc.Encode(resp)
		bytesDown.Add(conn.read - r0)
		bytesUp.Add(conn.written - w0)
		if err != nil {
			log.Warn("encode response failed", "kind", kindName(req.Kind), "err", err)
			return
		}
	}
}

// streamOperator evaluates an operator request with row blocking, sending a
// marker plus a codec frame per H_i block and a terminal gob response
// carrying the compute time and any evaluation error.
func (s *Server) streamOperator(conn net.Conn, enc *gob.Encoder, req *Request) error {
	obs.ServerRequests.With(kindName(KindOperator)).Inc()
	start := time.Now()
	var evalErr error
	if req.Operator == nil {
		evalErr = fmt.Errorf("transport: operator request without payload")
	} else {
		blockEnc := relation.NewEncoder(conn)
		marker := [1]byte{opStreamBlock}
		evalErr = s.site.EvalOperatorBlocks(*req.Operator, func(block *relation.Relation) error {
			if _, err := conn.Write(marker[:]); err != nil {
				return err
			}
			return blockEnc.Encode(block)
		})
	}
	if _, err := conn.Write([]byte{opStreamEnd}); err != nil {
		return err
	}
	term := &Response{SiteID: s.site.ID(), ComputeNS: time.Since(start).Nanoseconds()}
	if evalErr != nil {
		term.Err = evalErr.Error()
		s.log.Debug("operator eval failed", "query", req.QueryID, "err", evalErr)
	}
	return enc.Encode(term)
}

// countingConn wraps a net.Conn and counts bytes in each direction.
type countingConn struct {
	net.Conn
	read, written int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

// Client is a TCP Site: it connects to a Server and implements the Site
// interface with per-call byte accounting from the connection itself.
//
// The client owns one buffered reader over the connection, shared between the
// gob decoder and the relation codec decoder. gob never over-reads from an
// io.ByteReader, so alternating the two on the same stream is safe.
type Client struct {
	mu   sync.Mutex
	conn *countingConn
	br   *bufio.Reader
	enc  *gob.Encoder
	dec  *gob.Decoder
	id   int
	pool relation.BlockPool
}

// Dial connects to a site server and performs the hello handshake to learn
// its identity.
func Dial(addr string) (*Client, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	conn := &countingConn{Conn: raw}
	br := bufio.NewReader(conn)
	c := &Client{
		conn: conn,
		br:   br,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(br),
	}
	resp, _, err := c.roundTrip(context.Background(), &Request{Kind: KindHello})
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("transport: hello: %w", err)
	}
	c.id = resp.SiteID
	return c, nil
}

// ID implements Site.
func (c *Client) ID() int { return c.id }

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, stats.Call, error) {
	req.QueryID = obs.QueryIDFrom(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, stats.Call{}, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	r0, w0 := c.conn.read, c.conn.written
	if err := c.enc.Encode(req); err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: receive: %w", err)
	}
	call := callFromSizes(c.id, req, &resp, int(c.conn.written-w0), int(c.conn.read-r0))
	recordCall(call, req.Kind, req.QueryID)
	if resp.Err != "" {
		return nil, call, errors.New(resp.Err)
	}
	return &resp, call, nil
}

// EvalBase implements Site.
func (c *Client) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	resp, call, err := c.roundTrip(ctx, &Request{Kind: KindBase, Base: &bq})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// EvalOperator implements Site.
func (c *Client) EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	return collectStream(ctx, c, req)
}

// EvalOperatorStream implements Site. The connection stays consistent even
// when sink fails: remaining blocks are drained to the terminal response.
func (c *Client) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return stats.Call{}, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	r0, w0 := c.conn.read, c.conn.written
	wireReq := &Request{Kind: KindOperator, QueryID: obs.QueryIDFrom(ctx), Operator: &req}
	if err := c.enc.Encode(wireReq); err != nil {
		return stats.Call{}, fmt.Errorf("transport: send: %w", err)
	}
	call := stats.Call{Site: c.id, RowsDown: reqRows(wireReq)}
	blockDec := relation.NewDecoder(c.br)
	blockDec.SetPool(&c.pool)
	var sinkErr error
	for {
		marker, err := c.br.ReadByte()
		if err != nil {
			return call, fmt.Errorf("transport: receive: %w", err)
		}
		switch marker {
		case opStreamBlock:
			block, err := blockDec.Decode()
			if err != nil {
				return call, fmt.Errorf("transport: receive block: %w", err)
			}
			call.RowsUp += block.Len()
			if sinkErr == nil {
				sinkErr = sink(block)
			} else {
				relation.Recycle(block) // draining after a sink failure
			}
		case opStreamEnd:
			var resp Response
			if err := c.dec.Decode(&resp); err != nil {
				return call, fmt.Errorf("transport: receive: %w", err)
			}
			call.Compute = time.Duration(resp.ComputeNS)
			call.BytesDown = int(c.conn.written - w0)
			call.BytesUp = int(c.conn.read - r0)
			recordCall(call, KindOperator, wireReq.QueryID)
			if resp.Err != "" {
				return call, errors.New(resp.Err)
			}
			return call, sinkErr
		default:
			return call, fmt.Errorf("transport: unknown stream marker 0x%02x", marker)
		}
	}
}

// EvalLocal implements Site.
func (c *Client) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	resp, call, err := c.roundTrip(ctx, &Request{Kind: KindLocal, Local: &req})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// DetailSchema implements Site.
func (c *Client) DetailSchema(ctx context.Context, name string) (relation.Schema, error) {
	resp, _, err := c.roundTrip(ctx, &Request{Kind: KindSchema, Schema: name})
	if err != nil {
		return nil, err
	}
	return resp.Schema, nil
}

// Tables implements Site.
func (c *Client) Tables(ctx context.Context) ([]engine.TableInfo, error) {
	resp, _, err := c.roundTrip(ctx, &Request{Kind: KindTables})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Load implements Loader: it ships a relation partition to the site.
func (c *Client) Load(ctx context.Context, name string, rel *relation.Relation) error {
	_, _, err := c.roundTrip(ctx, &Request{Kind: KindLoad, LoadName: name, LoadRel: rel})
	return err
}
