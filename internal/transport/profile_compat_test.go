package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/relation"
)

// oldResponse is the pre-profiler wire response envelope, as an old peer
// would encode and decode it (see oldRequest in queryid_test.go for the
// pattern: gob matches fields by name, so the type name is irrelevant).
type oldResponse struct {
	Err       string
	Rel       *relation.Relation
	Schema    relation.Schema
	Tables    []engine.TableInfo
	SiteID    int
	ComputeNS int64
	More      bool
}

// TestTraceFieldsOldPeerCompat proves the appended trace-context fields
// (Request.Round, Request.Attempt) keep the protocol compatible with peers
// built before the profiler, in both directions.
func TestTraceFieldsOldPeerCompat(t *testing.T) {
	// New coordinator → old site: the unknown fields are skipped.
	var buf bytes.Buffer
	newReq := Request{Kind: KindSchema, QueryID: "q1", Schema: "Flow", Round: "MD2", Attempt: 3}
	if err := gob.NewEncoder(&buf).Encode(&newReq); err != nil {
		t.Fatal(err)
	}
	var old oldRequest
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old peer cannot decode new request: %v", err)
	}
	if old.Kind != KindSchema || old.Schema != "Flow" {
		t.Errorf("old peer decoded %+v", old)
	}

	// Old coordinator → new site: the missing fields stay zero.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&oldRequest{Kind: KindTables}); err != nil {
		t.Fatal(err)
	}
	var cur Request
	if err := gob.NewDecoder(&buf).Decode(&cur); err != nil {
		t.Fatalf("new peer cannot decode old request: %v", err)
	}
	if cur.Kind != KindTables || cur.Round != "" || cur.Attempt != 0 {
		t.Errorf("new peer decoded %+v", cur)
	}
}

// TestProfileFieldOldPeerCompat proves the appended Response.Profile field is
// wire-compatible with pre-profiler peers in both directions.
func TestProfileFieldOldPeerCompat(t *testing.T) {
	// New site → old coordinator: the unknown breakdown is skipped.
	var buf bytes.Buffer
	b := obs.SiteBreakdown{EvalNS: 12345, RowsScanned: 42, CodecBytes: 7, Workers: 2, WorkerRows: []int64{20, 22}}
	newResp := Response{SiteID: 5, ComputeNS: 999, Profile: &b}
	if err := gob.NewEncoder(&buf).Encode(&newResp); err != nil {
		t.Fatal(err)
	}
	var old oldResponse
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("old peer cannot decode new response: %v", err)
	}
	if old.SiteID != 5 || old.ComputeNS != 999 {
		t.Errorf("old peer decoded %+v", old)
	}

	// Old site → new coordinator: the missing breakdown stays nil.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&oldResponse{SiteID: 5, ComputeNS: 999}); err != nil {
		t.Fatal(err)
	}
	var cur Response
	if err := gob.NewDecoder(&buf).Decode(&cur); err != nil {
		t.Fatalf("new peer cannot decode old response: %v", err)
	}
	if cur.SiteID != 5 || cur.ComputeNS != 999 || cur.Profile != nil {
		t.Errorf("new peer decoded %+v", cur)
	}
}

// TestSiteProfileOverTCP runs a real exchange and checks the site-side
// breakdown and trace context survive the wire: the call record carries the
// attempt from the context and a non-nil breakdown with the site's eval time.
func TestSiteProfileOverTCP(t *testing.T) {
	srv, err := Serve(testSite(t, 4), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx := obs.WithQueryID(context.Background(), obs.NewQueryID())
	ctx = obs.WithRound(ctx, "base")
	ctx = obs.WithAttempt(ctx, 2)
	_, call, err := cli.EvalBase(ctx, gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}})
	if err != nil {
		t.Fatal(err)
	}
	if call.Attempt != 2 {
		t.Errorf("call.Attempt = %d, want 2 (from context)", call.Attempt)
	}
	if call.Start.IsZero() || call.Elapsed <= 0 {
		t.Errorf("call envelope not stamped: start %v elapsed %v", call.Start, call.Elapsed)
	}
	if call.Profile == nil {
		t.Fatal("call.Profile nil: site breakdown did not cross the wire")
	}
	if call.Profile.EvalNS <= 0 {
		t.Errorf("site breakdown eval time %d, want > 0", call.Profile.EvalNS)
	}

	// The streaming operator path attaches the breakdown on the terminal frame.
	scall, err := cli.EvalOperatorStream(ctx, opRequest(), func(*relation.Relation) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if scall.Profile == nil {
		t.Fatal("stream call.Profile nil")
	}
	if scall.Profile.CodecBytes <= 0 {
		t.Errorf("stream breakdown codec bytes %d, want > 0", scall.Profile.CodecBytes)
	}
	if scall.Attempt != 2 {
		t.Errorf("stream call.Attempt = %d, want 2", scall.Attempt)
	}
}
