package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"testing"
	"time"

	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

// A listener that accepts connections but never answers the hello must not
// hang Dial: the context deadline bounds the whole handshake.
func TestDialContextDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and say nothing
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := DialContext(ctx, ln.Addr().String()); err == nil {
		t.Fatal("DialContext against a mute listener must fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("DialContext took %v, deadline was 100ms", elapsed)
	}
}

// A server dying mid-stream leaves the client's decode stream desynced: the
// failing call must poison the connection, and the next call must fail fast
// with ErrBrokenConn (after the transparent redial fails) instead of decoding
// garbage from the old stream.
func TestBrokenStreamPoisonsClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
		var req Request
		if err := dec.Decode(&req); err != nil { // hello
			return
		}
		enc.Encode(&Response{SiteID: 5})
		if err := dec.Decode(&req); err != nil { // operator request
			return
		}
		conn.Write([]byte{opStreamBlock}) // announce a block...
		conn.Close()                      // ...and die mid-frame
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cli, err := DialContext(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, err = cli.EvalOperatorStream(ctx, opRequest(), func(*relation.Relation) error { return nil })
	if err == nil {
		t.Fatal("stream against a dying server must fail")
	}
	if errors.Is(err, ErrBrokenConn) {
		t.Fatalf("first failure reported ErrBrokenConn (%v); that belongs to the next call", err)
	}

	// The next call redials; the test listener never serves a second hello,
	// so the short deadline trips and the error must identify the broken
	// connection distinctly and promptly.
	cctx, ccancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer ccancel()
	start := time.Now()
	_, _, err = cli.EvalBase(cctx, gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}})
	if !errors.Is(err, ErrBrokenConn) {
		t.Fatalf("call on poisoned client: err = %v, want ErrBrokenConn", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("poisoned call took %v, want fast failure", elapsed)
	}
}

// The full reconnect path: a server restart on the same address is invisible
// to the caller — the call after the failure redials, re-handshakes, verifies
// the site identity and succeeds.
func TestClientReconnectsAfterServerRestart(t *testing.T) {
	srv, err := Serve(testSite(t, 7), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	bq := gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}}
	if _, _, err := cli.EvalBase(context.Background(), bq); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}

	// Kill the server: the in-flight connection breaks and the next call
	// fails (poisoning the client).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.EvalBase(context.Background(), bq); err == nil {
		t.Fatal("call against dead server must fail")
	}

	// Restart on the same address: the client's next call must transparently
	// redial and succeed.
	srv2, err := Serve(testSite(t, 7), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	got, _, err := cli.EvalBase(context.Background(), bq)
	if err != nil {
		t.Fatalf("call after server restart failed: %v", err)
	}
	if got.Len() != 3 {
		t.Errorf("reconnected call rows = %d, want 3", got.Len())
	}
	if cli.ID() != 7 {
		t.Errorf("client ID changed to %d after reconnect", cli.ID())
	}
}

// A reconnect that lands on a different site identity must be refused —
// silently merging another site's fragments would corrupt results.
func TestReconnectRejectsIdentityChange(t *testing.T) {
	srv, err := Serve(testSite(t, 3), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	bq := gmdj.BaseQuery{Detail: "T", Cols: []string{"g"}}
	if _, _, err := cli.EvalBase(context.Background(), bq); err == nil {
		t.Fatal("call against dead server must fail")
	}

	// Same address, different site.
	srv2, err := Serve(testSite(t, 8), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, _, err := cli.EvalBase(ctx, bq); err == nil || !errors.Is(err, ErrBrokenConn) {
		t.Fatalf("identity change: err = %v, want ErrBrokenConn", err)
	}
}
