// Package transport connects the Skalla coordinator to its sites. It defines
// the Site interface the coordinator programs against, an in-process
// implementation that still serializes every message through encoding/gob so
// that byte counts are faithful to what a network deployment would ship, and
// a TCP implementation for true multi-process operation.
//
// Every call returns a stats.Call describing exactly what crossed the wire
// (bytes and rows in each direction) and how long the site computed; the
// coordinator aggregates these into per-round metrics.
package transport

import (
	"context"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// Site is the coordinator's view of one local warehouse site.
type Site interface {
	// ID returns the site identifier.
	ID() int
	// EvalBase computes the site's base-values fragment B_i.
	EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error)
	// EvalOperator computes the site's sub-aggregate relation H_i for one
	// MD operator against the shipped base fragment.
	EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error)
	// EvalOperatorStream is EvalOperator with row blocking (Sect. 3.2): each
	// block of H_i (of at most req.BlockRows rows) is delivered to sink as
	// it arrives, letting the coordinator synchronize early blocks while
	// later ones are still in flight. The returned Call aggregates bytes,
	// rows and compute time across the whole exchange.
	EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error)
	// EvalLocal evaluates the base query and a prefix of operators entirely
	// at the site (synchronization-reduced plans).
	EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error)
	// DetailSchema fetches the schema of a detail relation from the site's
	// catalog (planning metadata; not part of query traffic accounting).
	DetailSchema(ctx context.Context, name string) (relation.Schema, error)
	// Tables lists the site's relation inventory (metadata).
	Tables(ctx context.Context) ([]engine.TableInfo, error)
}

// Loader is implemented by transports that can install data at the site
// (used by tests, examples and the data-generation tools).
type Loader interface {
	Load(ctx context.Context, name string, rel *relation.Relation) error
}
