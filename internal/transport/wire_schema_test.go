package transport

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/wire_schema.golden from the current wire structs")

const wireSchemaGolden = "testdata/wire_schema.golden"

// wireFingerprint renders the gob envelope structs as the canonical
// append-only schema fingerprint: one "Struct.Field type" line per field, in
// declaration order, types in reflect.Type.String notation (which matches the
// go/types package-name qualification the wirecompat analyzer uses).
func wireFingerprint() []byte {
	var buf bytes.Buffer
	buf.WriteString("# Skalla gob wire fingerprint — append-only contract.\n")
	buf.WriteString("# Regenerate with: go test ./internal/transport -run TestWireSchemaGolden -update\n")
	buf.WriteString("# Existing lines must never change; new fields append at the end of their struct.\n")
	for _, s := range []struct {
		name string
		t    reflect.Type
	}{
		{"Request", reflect.TypeOf(Request{})},
		{"Response", reflect.TypeOf(Response{})},
	} {
		for i := 0; i < s.t.NumField(); i++ {
			f := s.t.Field(i)
			fmt.Fprintf(&buf, "%s.%s %s\n", s.name, f.Name, f.Type.String())
		}
	}
	return buf.Bytes()
}

// TestWireSchemaGolden holds the committed fingerprint exactly up to date:
// the wirecompat analyzer only requires the golden to be a prefix (so builds
// against an already-updated golden still pass), while this test pins the
// full current schema and is the one place allowed to rewrite it.
func TestWireSchemaGolden(t *testing.T) {
	got := wireFingerprint()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(wireSchemaGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		prev, err := os.ReadFile(wireSchemaGolden)
		if err == nil && !appendOnly(got, prev) {
			t.Fatalf("refusing to update: current schema is not an append-only extension of the committed fingerprint\n-- committed --\n%s\n-- current --\n%s", prev, got)
		}
		if err := os.WriteFile(wireSchemaGolden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(wireSchemaGolden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire schema fingerprint is stale.\nIf you APPENDED fields, rerun with -update.\nIf existing lines changed, the change breaks gob wire compatibility with old peers — revert it.\n-- committed --\n%s\n-- current --\n%s", want, got)
	}
}

// TestWireFingerprintByteStable guards the -update path itself: regeneration
// must be deterministic, byte for byte, or the golden would churn on every
// run and the append-only diff discipline would be unreviewable.
func TestWireFingerprintByteStable(t *testing.T) {
	a, b := wireFingerprint(), wireFingerprint()
	if !bytes.Equal(a, b) {
		t.Fatalf("fingerprint generation is not byte-stable:\n-- first --\n%s\n-- second --\n%s", a, b)
	}
}

// appendOnly reports whether got extends prev per struct: every struct's
// committed field lines must be a prefix of its current ones, matching the
// wirecompat analyzer's per-struct check (gob identifies fields by name, so
// appending to Request is as safe as appending to Response even though it
// inserts lines mid-fingerprint).
func appendOnly(got, prev []byte) bool {
	gotFields := fieldsByStruct(got)
	for name, want := range fieldsByStruct(prev) {
		have := gotFields[name]
		if len(have) < len(want) {
			return false
		}
		for i, w := range want {
			if have[i] != w {
				return false
			}
		}
	}
	return true
}

// fieldsByStruct groups the fingerprint's "Struct.Field type" lines by struct
// name, dropping '#' comments and blank lines.
func fieldsByStruct(b []byte) map[string][]string {
	out := map[string][]string{}
	for _, line := range bytes.Split(b, []byte("\n")) {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 || trimmed[0] == '#' {
			continue
		}
		name, _, ok := bytes.Cut(trimmed, []byte("."))
		if !ok {
			continue
		}
		out[string(name)] = append(out[string(name)], string(trimmed))
	}
	return out
}
