package transport

import (
	"context"
	"errors"
	"fmt"
	"time"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// LocalSite is the in-process transport: it wraps an engine.Site and pushes
// every request and response through gob serialization, so the byte and row
// accounting matches a networked deployment while tests and benchmarks stay
// single-process and deterministic.
type LocalSite struct {
	site Backend
}

// NewLocalSite wraps a backend (a site engine or a relay).
func NewLocalSite(site Backend) *LocalSite { return &LocalSite{site: site} }

// ID implements Site.
func (l *LocalSite) ID() int { return l.site.ID() }

// roundTrip serializes the request, decodes it into a fresh value (as the
// remote end would), dispatches it, and serializes the response back.
func (l *LocalSite) roundTrip(ctx context.Context, req *Request) (*Response, stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return nil, stats.Call{}, err
	}
	reqBytes, err := encodeValue(req)
	if err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: encode request: %w", err)
	}
	decReq, err := decodeValue[Request](reqBytes)
	if err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: decode request: %w", err)
	}
	resp := dispatch(l.site, decReq)
	respBytes, err := encodeValue(resp)
	if err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: encode response: %w", err)
	}
	decResp, err := decodeValue[Response](respBytes)
	if err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: decode response: %w", err)
	}
	call := callFromSizes(l.site.ID(), req, decResp, len(reqBytes), len(respBytes))
	if decResp.Err != "" {
		return nil, call, errors.New(decResp.Err)
	}
	return decResp, call, nil
}

// EvalBase implements Site.
func (l *LocalSite) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	resp, call, err := l.roundTrip(ctx, &Request{Kind: KindBase, Base: &bq})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// EvalOperator implements Site.
func (l *LocalSite) EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	return collectStream(ctx, l, req)
}

// EvalOperatorStream implements Site: the request crosses the serialization
// boundary once; each H_i block is serialized and delivered to sink as the
// engine produces it.
func (l *LocalSite) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return stats.Call{}, err
	}
	wireReq := &Request{Kind: KindOperator, Operator: &req}
	reqBytes, err := encodeValue(wireReq)
	if err != nil {
		return stats.Call{}, fmt.Errorf("transport: encode request: %w", err)
	}
	decReq, err := decodeValue[Request](reqBytes)
	if err != nil {
		return stats.Call{}, fmt.Errorf("transport: decode request: %w", err)
	}
	call := stats.Call{
		Site:      l.site.ID(),
		BytesDown: len(reqBytes),
		RowsDown:  reqRows(wireReq),
	}
	start := time.Now()
	evalErr := l.site.EvalOperatorBlocks(*decReq.Operator, func(block *relation.Relation) error {
		blockBytes, err := encodeValue(&Response{Rel: block, More: true})
		if err != nil {
			return err
		}
		decBlock, err := decodeValue[Response](blockBytes)
		if err != nil {
			return err
		}
		call.BytesUp += len(blockBytes)
		call.RowsUp += decBlock.Rel.Len()
		return sink(decBlock.Rel)
	})
	call.Compute = time.Since(start)
	if evalErr != nil {
		return call, evalErr
	}
	// Terminal frame, as the network transport would send.
	term, err := encodeValue(&Response{ComputeNS: call.Compute.Nanoseconds()})
	if err != nil {
		return call, err
	}
	call.BytesUp += len(term)
	return call, nil
}

// EvalLocal implements Site.
func (l *LocalSite) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	resp, call, err := l.roundTrip(ctx, &Request{Kind: KindLocal, Local: &req})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// DetailSchema implements Site. Metadata calls bypass traffic accounting.
func (l *LocalSite) DetailSchema(_ context.Context, name string) (relation.Schema, error) {
	return l.site.DetailSchema(name)
}

// Tables implements Site.
func (l *LocalSite) Tables(_ context.Context) ([]engine.TableInfo, error) {
	return l.site.Tables(), nil
}

// Load implements Loader, installing a partition directly.
func (l *LocalSite) Load(_ context.Context, name string, rel *relation.Relation) error {
	return l.site.Load(name, rel)
}

// FastLocalSite is a zero-serialization variant of LocalSite for unit tests
// and micro-benchmarks where wire fidelity does not matter: byte counts are
// approximated from row counts, and requests are dispatched directly.
type FastLocalSite struct {
	site Backend
}

// NewFastLocalSite wraps a backend without serialization.
func NewFastLocalSite(site Backend) *FastLocalSite { return &FastLocalSite{site: site} }

// ID implements Site.
func (f *FastLocalSite) ID() int { return f.site.ID() }

func (f *FastLocalSite) call(ctx context.Context, req *Request) (*Response, stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return nil, stats.Call{}, err
	}
	resp := dispatch(f.site, req)
	call := callFromSizes(f.site.ID(), req, resp, 0, 0)
	if resp.Err != "" {
		return nil, call, errors.New(resp.Err)
	}
	return resp, call, nil
}

// EvalBase implements Site.
func (f *FastLocalSite) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	resp, call, err := f.call(ctx, &Request{Kind: KindBase, Base: &bq})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// EvalOperator implements Site.
func (f *FastLocalSite) EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	resp, call, err := f.call(ctx, &Request{Kind: KindOperator, Operator: &req})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// EvalOperatorStream implements Site without serialization.
func (f *FastLocalSite) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return stats.Call{}, err
	}
	call := stats.Call{Site: f.site.ID(), RowsDown: baseRows(req)}
	start := time.Now()
	err := f.site.EvalOperatorBlocks(req, func(block *relation.Relation) error {
		call.RowsUp += block.Len()
		return sink(block)
	})
	call.Compute = time.Since(start)
	return call, err
}

func baseRows(req engine.OperatorRequest) int {
	if req.Base == nil {
		return 0
	}
	return req.Base.Len()
}

// collectStream adapts a streaming implementation to the one-shot
// EvalOperator contract.
func collectStream(ctx context.Context, s Site, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	var h *relation.Relation
	call, err := s.EvalOperatorStream(ctx, req, func(block *relation.Relation) error {
		if h == nil {
			h = block
			return nil
		}
		return h.Union(block)
	})
	if err != nil {
		return nil, call, err
	}
	return h, call, nil
}

// EvalLocal implements Site.
func (f *FastLocalSite) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	resp, call, err := f.call(ctx, &Request{Kind: KindLocal, Local: &req})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// DetailSchema implements Site.
func (f *FastLocalSite) DetailSchema(_ context.Context, name string) (relation.Schema, error) {
	return f.site.DetailSchema(name)
}

// Tables implements Site.
func (f *FastLocalSite) Tables(_ context.Context) ([]engine.TableInfo, error) {
	return f.site.Tables(), nil
}

// Load implements Loader.
func (f *FastLocalSite) Load(_ context.Context, name string, rel *relation.Relation) error {
	return f.site.Load(name, rel)
}
