package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// LocalSite is the in-process transport: it wraps an engine.Site and pushes
// every request and response through the same serialization a networked
// deployment uses, so byte and row accounting stays faithful while tests and
// benchmarks run single-process and deterministic. Like a real connection it
// keeps persistent gob codecs per direction (type descriptors are charged
// once, on the first message) and streams operator blocks through the compact
// relation wire codec with pooled decode storage.
type LocalSite struct {
	site Backend

	mu sync.Mutex
	// downBuf/upBuf emulate the two directions of one connection; the
	// persistent gob codecs over them survive across calls, exactly like the
	// encoder/decoder pair a TCP connection keeps, so type descriptors are
	// shipped (and charged) once per direction rather than per message.
	downBuf, upBuf bytes.Buffer
	downEnc, upEnc *gob.Encoder
	downDec, upDec *gob.Decoder
	pool           relation.BlockPool
}

// NewLocalSite wraps a backend (a site engine or a relay).
func NewLocalSite(site Backend) *LocalSite {
	l := &LocalSite{site: site}
	l.downEnc = gob.NewEncoder(&l.downBuf)
	l.downDec = gob.NewDecoder(&l.downBuf)
	l.upEnc = gob.NewEncoder(&l.upBuf)
	l.upDec = gob.NewDecoder(&l.upBuf)
	return l
}

// ID implements Site.
func (l *LocalSite) ID() int { return l.site.ID() }

// roundTrip serializes the request, decodes it into a fresh value (as the
// remote end would), dispatches it, and serializes the response back.
func (l *LocalSite) roundTrip(ctx context.Context, req *Request) (*Response, stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return nil, stats.Call{}, err
	}
	attempt := stampTraceContext(ctx, req)
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.downEnc.Encode(req); err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: encode request: %w", err)
	}
	down := l.downBuf.Len()
	var decReq Request
	if err := l.downDec.Decode(&decReq); err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: decode request: %w", err)
	}
	resp := dispatch(ctx, l.site, &decReq)
	if err := l.upEnc.Encode(resp); err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: encode response: %w", err)
	}
	up := l.upBuf.Len()
	var decResp Response
	if err := l.upDec.Decode(&decResp); err != nil {
		return nil, stats.Call{}, fmt.Errorf("transport: decode response: %w", err)
	}
	call := callFromSizes(l.site.ID(), req, &decResp, down, up)
	call.Start, call.Elapsed, call.Attempt = start, time.Since(start), attempt
	recordCall(call, req.Kind, req.QueryID)
	if decResp.Err != "" {
		return nil, call, errors.New(decResp.Err)
	}
	return &decResp, call, nil
}

// EvalBase implements Site.
func (l *LocalSite) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	resp, call, err := l.roundTrip(ctx, &Request{Kind: KindBase, Base: &bq})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// EvalOperator implements Site.
func (l *LocalSite) EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	return collectStream(ctx, l, req)
}

// EvalOperatorStream implements Site: the request crosses the serialization
// boundary once; each H_i block is pushed through the relation wire codec
// (schema sent once per stream, decode storage drawn from a pool) and handed
// to sink as the engine produces it, exactly like the TCP operator stream.
func (l *LocalSite) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return stats.Call{}, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	wallStart := time.Now()
	wireReq := &Request{Kind: KindOperator, Operator: &req}
	attempt := stampTraceContext(ctx, wireReq)
	if err := l.downEnc.Encode(wireReq); err != nil {
		return stats.Call{}, fmt.Errorf("transport: encode request: %w", err)
	}
	call := stats.Call{
		Site:      l.site.ID(),
		BytesDown: l.downBuf.Len(),
		RowsDown:  reqRows(wireReq),
		Start:     wallStart,
		Attempt:   attempt,
	}
	var decReq Request
	if err := l.downDec.Decode(&decReq); err != nil {
		return call, fmt.Errorf("transport: decode request: %w", err)
	}
	// The serving end of the emulated connection: count the request like the
	// TCP server's stream path does, recorder included.
	obs.ServerRequests.With("operator").Inc()
	rec := obs.NewSiteRecorder()
	ctx = obs.WithRecorder(ctx, rec)
	// Fresh stream codecs per request: the schema is shipped on the first
	// block of the stream and cached for the rest.
	enc := relation.NewEncoder(&l.upBuf)
	dec := relation.NewDecoder(&l.upBuf)
	dec.SetPool(&l.pool)
	start := time.Now()
	evalErr := l.site.EvalOperatorBlocks(ctx, *decReq.Operator, func(block *relation.Relation) error {
		if err := enc.Encode(block); err != nil {
			return err
		}
		// +1 mirrors the TCP stream's per-frame block marker byte.
		call.BytesUp += l.upBuf.Len() + 1
		rec.AddCodecBytes(1)
		decBlock, err := dec.Decode()
		if err != nil {
			return err
		}
		call.RowsUp += decBlock.Len()
		return sink(decBlock)
	})
	call.Compute = time.Since(start)
	rec.AddCodecBytes(enc.Bytes())
	rec.SetEval(call.Compute)
	call.Elapsed = time.Since(wallStart)
	if evalErr != nil {
		return call, evalErr
	}
	// Terminal frame, as the network transport would send.
	b := rec.Snapshot()
	if err := l.upEnc.Encode(&Response{ComputeNS: call.Compute.Nanoseconds(), Profile: &b}); err != nil {
		return call, err
	}
	call.BytesUp += l.upBuf.Len() + 1
	var term Response
	if err := l.upDec.Decode(&term); err != nil {
		return call, err
	}
	call.Profile = term.Profile
	call.Elapsed = time.Since(wallStart)
	recordCall(call, KindOperator, wireReq.QueryID)
	return call, nil
}

// EvalOperatorBatchStream implements BatchSite: the batch crosses the
// serialization boundary as one request, the backend feeds every member from
// one shared detail scan, and each member's blocks come back through the
// relation wire codec tagged with the member index (the +2 per block mirrors
// the TCP batch stream's marker and member-tag bytes).
func (l *LocalSite) EvalOperatorBatchStream(ctx context.Context, reqs []engine.OperatorRequest, queryIDs []string, sink func(member int, block *relation.Relation) error) ([]stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	wallStart := time.Now()
	wireReq := &Request{Kind: KindBatch, Batch: reqs, BatchQueryIDs: queryIDs}
	attempt := stampTraceContext(ctx, wireReq)
	if err := l.downEnc.Encode(wireReq); err != nil {
		return nil, fmt.Errorf("transport: encode request: %w", err)
	}
	down := l.downBuf.Len()
	var decReq Request
	if err := l.downDec.Decode(&decReq); err != nil {
		return nil, fmt.Errorf("transport: decode request: %w", err)
	}
	// The serving end of the emulated connection.
	obs.ServerRequests.With(kindName(KindBatch)).Inc()
	rec := obs.NewSiteRecorder()
	ctx = obs.WithRecorder(ctx, rec)
	enc := relation.NewEncoder(&l.upBuf)
	dec := relation.NewDecoder(&l.upBuf)
	dec.SetPool(&l.pool)
	up := 0
	rowsUp := make([]int, len(reqs))
	start := time.Now()
	evalErr := evalBatchBackend(ctx, l.site, decReq.Batch, func(m int, block *relation.Relation) error {
		if err := enc.Encode(block); err != nil {
			return err
		}
		// +2 mirrors the TCP batch stream's per-frame marker and member bytes.
		up += l.upBuf.Len() + 2
		rec.AddCodecBytes(2)
		decBlock, err := dec.Decode()
		if err != nil {
			return err
		}
		rowsUp[m] += decBlock.Len()
		return sink(m, decBlock)
	})
	compute := time.Since(start)
	rec.AddCodecBytes(enc.Bytes())
	rec.SetEval(compute)
	if evalErr != nil {
		return nil, evalErr
	}
	// Terminal frame (+1 for the end marker the TCP stream sends).
	b := rec.Snapshot()
	if err := l.upEnc.Encode(&Response{ComputeNS: compute.Nanoseconds(), Profile: &b}); err != nil {
		return nil, err
	}
	up += l.upBuf.Len() + 1
	var term Response
	if err := l.upDec.Decode(&term); err != nil {
		return nil, err
	}
	calls := batchCalls(l.site.ID(), len(reqs), down, up, batchRowsDown(reqs), rowsUp,
		wallStart, time.Since(wallStart), attempt, term.ComputeNS, term.Profile)
	recordBatchCalls(calls, queryIDs)
	return calls, nil
}

// EvalLocal implements Site.
func (l *LocalSite) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	resp, call, err := l.roundTrip(ctx, &Request{Kind: KindLocal, Local: &req})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// DetailSchema implements Site. Metadata calls bypass traffic accounting.
func (l *LocalSite) DetailSchema(ctx context.Context, name string) (relation.Schema, error) {
	return l.site.DetailSchema(ctx, name)
}

// Tables implements Site.
func (l *LocalSite) Tables(ctx context.Context) ([]engine.TableInfo, error) {
	return l.site.Tables(ctx), nil
}

// Load implements Loader, installing a partition directly.
func (l *LocalSite) Load(ctx context.Context, name string, rel *relation.Relation) error {
	return l.site.Load(ctx, name, rel)
}

// FastLocalSite is a zero-serialization variant of LocalSite for unit tests
// and micro-benchmarks where wire fidelity does not matter: byte counts are
// approximated from row counts, and requests are dispatched directly.
type FastLocalSite struct {
	site Backend
}

// NewFastLocalSite wraps a backend without serialization.
func NewFastLocalSite(site Backend) *FastLocalSite { return &FastLocalSite{site: site} }

// ID implements Site.
func (f *FastLocalSite) ID() int { return f.site.ID() }

func (f *FastLocalSite) call(ctx context.Context, req *Request) (*Response, stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return nil, stats.Call{}, err
	}
	attempt := stampTraceContext(ctx, req)
	start := time.Now()
	resp := dispatch(ctx, f.site, req)
	call := callFromSizes(f.site.ID(), req, resp, 0, 0)
	call.Start, call.Elapsed, call.Attempt = start, time.Since(start), attempt
	if resp.Err != "" {
		return nil, call, errors.New(resp.Err)
	}
	return resp, call, nil
}

// EvalBase implements Site.
func (f *FastLocalSite) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	resp, call, err := f.call(ctx, &Request{Kind: KindBase, Base: &bq})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// EvalOperator implements Site.
func (f *FastLocalSite) EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	resp, call, err := f.call(ctx, &Request{Kind: KindOperator, Operator: &req})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// EvalOperatorStream implements Site without serialization.
func (f *FastLocalSite) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return stats.Call{}, err
	}
	rec := obs.NewSiteRecorder()
	ctx = obs.WithRecorder(ctx, rec)
	call := stats.Call{Site: f.site.ID(), RowsDown: baseRows(req), Attempt: obs.AttemptFrom(ctx)}
	start := time.Now()
	call.Start = start
	err := f.site.EvalOperatorBlocks(ctx, req, func(block *relation.Relation) error {
		call.RowsUp += block.Len()
		return sink(block)
	})
	call.Compute = time.Since(start)
	call.Elapsed = call.Compute
	rec.SetEval(call.Compute)
	b := rec.Snapshot()
	call.Profile = &b
	return call, err
}

// EvalOperatorBatchStream implements BatchSite without serialization: byte
// counts stay zero (matching the rest of FastLocalSite's accounting) while the
// backend still feeds every member from one shared scan.
func (f *FastLocalSite) EvalOperatorBatchStream(ctx context.Context, reqs []engine.OperatorRequest, queryIDs []string, sink func(member int, block *relation.Relation) error) ([]stats.Call, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec := obs.NewSiteRecorder()
	ctx = obs.WithRecorder(ctx, rec)
	rowsUp := make([]int, len(reqs))
	start := time.Now()
	err := evalBatchBackend(ctx, f.site, reqs, func(m int, block *relation.Relation) error {
		rowsUp[m] += block.Len()
		return sink(m, block)
	})
	compute := time.Since(start)
	rec.SetEval(compute)
	if err != nil {
		return nil, err
	}
	b := rec.Snapshot()
	return batchCalls(f.site.ID(), len(reqs), 0, 0, batchRowsDown(reqs), rowsUp,
		start, compute, obs.AttemptFrom(ctx), compute.Nanoseconds(), &b), nil
}

func baseRows(req engine.OperatorRequest) int {
	if req.Base == nil {
		return 0
	}
	return req.Base.Len()
}

// collectStream adapts a streaming implementation to the one-shot
// EvalOperator contract.
func collectStream(ctx context.Context, s Site, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	var h *relation.Relation
	call, err := s.EvalOperatorStream(ctx, req, func(block *relation.Relation) error {
		if h == nil {
			h = block
			return nil
		}
		return h.Union(block)
	})
	if err != nil {
		return nil, call, err
	}
	return h, call, nil
}

// EvalLocal implements Site.
func (f *FastLocalSite) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	resp, call, err := f.call(ctx, &Request{Kind: KindLocal, Local: &req})
	if err != nil {
		return nil, call, err
	}
	return resp.Rel, call, nil
}

// DetailSchema implements Site.
func (f *FastLocalSite) DetailSchema(ctx context.Context, name string) (relation.Schema, error) {
	return f.site.DetailSchema(ctx, name)
}

// Tables implements Site.
func (f *FastLocalSite) Tables(ctx context.Context) ([]engine.TableInfo, error) {
	return f.site.Tables(ctx), nil
}

// Load implements Loader.
func (f *FastLocalSite) Load(ctx context.Context, name string, rel *relation.Relation) error {
	return f.site.Load(ctx, name, rel)
}
