// Package agg implements the aggregate-function framework for GMDJ
// evaluation: the logical aggregate specs (COUNT, SUM, AVG, MIN, MAX), their
// decomposition into sub-aggregates computed at the local sites and
// super-aggregates computed at the coordinator (following Gray et al., as
// used by Theorem 1 of the paper), and the physical column layout shared by
// the sites' sub-aggregate relations H_i and the coordinator's base-result
// structure X.
package agg

import (
	"fmt"
	"math"

	"skalla/internal/relation"
)

// Func identifies a logical aggregate function.
type Func uint8

const (
	Count Func = iota // COUNT(*) or COUNT(col)
	Sum               // SUM(col)
	Avg               // AVG(col), decomposed into SUM + COUNT sub-aggregates
	Min               // MIN(col)
	Max               // MAX(col)
	// Variance is the population variance, decomposed into SUM + sum of
	// squares + COUNT sub-aggregates (all distributive, so Theorem 1
	// synchronization applies unchanged).
	Variance
	// StdDev is the population standard deviation (same decomposition).
	StdDev
)

// String returns the SQL name of the function.
func (f Func) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Variance:
		return "VARIANCE"
	case StdDev:
		return "STDEV"
	default:
		return fmt.Sprintf("Func(%d)", uint8(f))
	}
}

// Spec is one logical aggregate in a GMDJ aggregate list l_i: a function, the
// detail-relation argument column (empty only for COUNT(*)), and the output
// column name.
type Spec struct {
	Func Func
	Arg  string // detail column; "" means COUNT(*)
	As   string // output column name; must be unique within the query
}

// String renders the spec as "FUNC(arg) -> as".
func (s Spec) String() string {
	arg := s.Arg
	if arg == "" {
		arg = "*"
	}
	return fmt.Sprintf("%s(%s) -> %s", s.Func, arg, s.As)
}

// Validate checks the spec against the detail schema.
func (s Spec) Validate(detail relation.Schema) error {
	if s.As == "" {
		return fmt.Errorf("agg: %s has no output name", s.Func)
	}
	if s.Arg == "" {
		if s.Func != Count {
			return fmt.Errorf("agg: %s requires an argument column", s.Func)
		}
		return nil
	}
	idx := detail.Index(s.Arg)
	if idx < 0 {
		return fmt.Errorf("agg: %s argument %q not in detail schema %s", s.Func, s.Arg, detail)
	}
	kind := detail[idx].Kind
	switch s.Func {
	case Sum, Avg, Variance, StdDev:
		if kind != relation.KindInt && kind != relation.KindFloat {
			return fmt.Errorf("agg: %s(%s): argument is %s, want numeric", s.Func, s.Arg, kind)
		}
	case Min, Max, Count:
		// Any kind is allowed (MIN/MAX use the value ordering; COUNT(col)
		// counts non-NULLs).
	}
	return nil
}

// PhysOp is a physical (distributive) aggregate operation. Sub-aggregates
// computed at sites and the merge at the coordinator both operate on physical
// columns; the super-aggregate of a COUNT is a SUM, which at the value level
// is the same null-aware addition used for SUM, so merge needs no separate
// op table.
type PhysOp uint8

const (
	PhysCount PhysOp = iota
	PhysSum
	PhysMin
	PhysMax
	// PhysSumSq accumulates the sum of squares (always FLOAT), feeding the
	// variance/stddev derived columns.
	PhysSumSq
)

// String returns the name of the physical op.
func (p PhysOp) String() string {
	switch p {
	case PhysCount:
		return "count"
	case PhysSum:
		return "sum"
	case PhysMin:
		return "min"
	case PhysMax:
		return "max"
	case PhysSumSq:
		return "sumsq"
	default:
		return fmt.Sprintf("PhysOp(%d)", uint8(p))
	}
}

// PhysCol is one physical aggregate column.
type PhysCol struct {
	Op     PhysOp
	Arg    string // detail column; "" for row count
	ArgIdx int    // resolved index into the detail schema (-1 for row count)
	Name   string // column name in H and X
	Kind   relation.Kind
}

// DerivedKind selects the finalization function of a derived column.
type DerivedKind uint8

const (
	// DerivedAvg finalizes sum/count.
	DerivedAvg DerivedKind = iota
	// DerivedVariance finalizes sumsq/n - (sum/n)^2.
	DerivedVariance
	// DerivedStdDev is the square root of the variance.
	DerivedStdDev
)

// Derived is a column computed from physical columns after every merge: the
// finalized AVG/VARIANCE/STDEV. Materializing it in X lets later GMDJ
// conditions reference the value by name (as in the paper's Example 1
// predicate NB >= sum1/cnt1, which can equally be written against the avg
// column).
type Derived struct {
	Name     string
	Kind     DerivedKind
	SumIdx   int // index into the layout's physical columns
	CntIdx   int
	SumSqIdx int // -1 unless Kind needs the sum of squares
}

// Layout is the compiled physical layout for one aggregate list: the
// physical sub-aggregate columns, and the derived columns.
type Layout struct {
	Specs   []Spec
	Phys    []PhysCol
	Derived []Derived
	// specPhys[i] locates spec i's result: for AVG {sumIdx, cntIdx, -1},
	// for VARIANCE/STDEV {sumIdx, cntIdx, sumSqIdx}, for the rest
	// {physIdx, -1, -1}.
	specPhys [][3]int
}

// NewLayout validates the specs against the detail schema and compiles the
// physical layout. Output names (including the derived _sum/_cnt columns of
// AVG) must not collide.
func NewLayout(specs []Spec, detail relation.Schema) (*Layout, error) {
	l := &Layout{Specs: specs}
	names := make(map[string]struct{})
	claim := func(n string) error {
		if _, dup := names[n]; dup {
			return fmt.Errorf("agg: duplicate output column %q", n)
		}
		names[n] = struct{}{}
		return nil
	}
	for _, s := range specs {
		if err := s.Validate(detail); err != nil {
			return nil, err
		}
		argIdx := -1
		var argKind relation.Kind
		if s.Arg != "" {
			argIdx = detail.MustIndex(s.Arg)
			argKind = detail[argIdx].Kind
		}
		switch s.Func {
		case Count:
			if err := claim(s.As); err != nil {
				return nil, err
			}
			l.Phys = append(l.Phys, PhysCol{Op: PhysCount, Arg: s.Arg, ArgIdx: argIdx, Name: s.As, Kind: relation.KindInt})
			l.specPhys = append(l.specPhys, [3]int{len(l.Phys) - 1, -1, -1})
		case Sum:
			if err := claim(s.As); err != nil {
				return nil, err
			}
			l.Phys = append(l.Phys, PhysCol{Op: PhysSum, Arg: s.Arg, ArgIdx: argIdx, Name: s.As, Kind: sumKind(argKind)})
			l.specPhys = append(l.specPhys, [3]int{len(l.Phys) - 1, -1, -1})
		case Min, Max:
			if err := claim(s.As); err != nil {
				return nil, err
			}
			op := PhysMin
			if s.Func == Max {
				op = PhysMax
			}
			l.Phys = append(l.Phys, PhysCol{Op: op, Arg: s.Arg, ArgIdx: argIdx, Name: s.As, Kind: argKind})
			l.specPhys = append(l.specPhys, [3]int{len(l.Phys) - 1, -1, -1})
		case Avg:
			sumName, cntName := s.As+"_sum", s.As+"_cnt"
			for _, n := range []string{s.As, sumName, cntName} {
				if err := claim(n); err != nil {
					return nil, err
				}
			}
			l.Phys = append(l.Phys, PhysCol{Op: PhysSum, Arg: s.Arg, ArgIdx: argIdx, Name: sumName, Kind: sumKind(argKind)})
			l.Phys = append(l.Phys, PhysCol{Op: PhysCount, Arg: s.Arg, ArgIdx: argIdx, Name: cntName, Kind: relation.KindInt})
			sumIdx, cntIdx := len(l.Phys)-2, len(l.Phys)-1
			l.Derived = append(l.Derived, Derived{Name: s.As, Kind: DerivedAvg, SumIdx: sumIdx, CntIdx: cntIdx, SumSqIdx: -1})
			l.specPhys = append(l.specPhys, [3]int{sumIdx, cntIdx, -1})
		case Variance, StdDev:
			sumName, sqName, cntName := s.As+"_sum", s.As+"_sumsq", s.As+"_cnt"
			for _, n := range []string{s.As, sumName, sqName, cntName} {
				if err := claim(n); err != nil {
					return nil, err
				}
			}
			l.Phys = append(l.Phys, PhysCol{Op: PhysSum, Arg: s.Arg, ArgIdx: argIdx, Name: sumName, Kind: sumKind(argKind)})
			l.Phys = append(l.Phys, PhysCol{Op: PhysSumSq, Arg: s.Arg, ArgIdx: argIdx, Name: sqName, Kind: relation.KindFloat})
			l.Phys = append(l.Phys, PhysCol{Op: PhysCount, Arg: s.Arg, ArgIdx: argIdx, Name: cntName, Kind: relation.KindInt})
			sumIdx, sqIdx, cntIdx := len(l.Phys)-3, len(l.Phys)-2, len(l.Phys)-1
			kind := DerivedVariance
			if s.Func == StdDev {
				kind = DerivedStdDev
			}
			l.Derived = append(l.Derived, Derived{Name: s.As, Kind: kind, SumIdx: sumIdx, CntIdx: cntIdx, SumSqIdx: sqIdx})
			l.specPhys = append(l.specPhys, [3]int{sumIdx, cntIdx, sqIdx})
		default:
			return nil, fmt.Errorf("agg: unknown function %v", s.Func)
		}
	}
	return l, nil
}

func sumKind(arg relation.Kind) relation.Kind {
	if arg == relation.KindInt {
		return relation.KindInt
	}
	return relation.KindFloat
}

// PhysSchema returns the schema of the physical sub-aggregate columns, in
// layout order. This is the aggregate part of the sites' H_i rows.
func (l *Layout) PhysSchema() relation.Schema {
	s := make(relation.Schema, len(l.Phys))
	for i, p := range l.Phys {
		s[i] = relation.Column{Name: p.Name, Kind: p.Kind}
	}
	return s
}

// DerivedSchema returns the schema of the derived (finalized AVG) columns.
func (l *Layout) DerivedSchema() relation.Schema {
	s := make(relation.Schema, len(l.Derived))
	for i, d := range l.Derived {
		s[i] = relation.Column{Name: d.Name, Kind: relation.KindFloat}
	}
	return s
}

// Identity returns the identity tuple for the physical columns: COUNT is 0,
// the others are NULL. The coordinator initializes new X columns with it so
// that groups untouched by any site (e.g. under group reduction) carry the
// correct empty-range aggregates.
func (l *Layout) Identity() relation.Tuple {
	t := make(relation.Tuple, len(l.Phys))
	for i, p := range l.Phys {
		if p.Op == PhysCount {
			t[i] = relation.NewInt(0)
		} else {
			t[i] = relation.Null
		}
	}
	return t
}

// Accumulate folds one detail row into the physical accumulator slice acc
// (sub-aggregation at a site). acc must have layout length and start from
// Identity().
func (l *Layout) Accumulate(acc relation.Tuple, detailRow relation.Tuple) error {
	for i, p := range l.Phys {
		switch p.Op {
		case PhysCount:
			if p.ArgIdx < 0 || !detailRow[p.ArgIdx].IsNull() {
				acc[i] = relation.NewInt(acc[i].Int + 1)
			}
		case PhysSum:
			v := detailRow[p.ArgIdx]
			nv, err := addValues(acc[i], v)
			if err != nil {
				return fmt.Errorf("agg: sum %s: %w", p.Name, err)
			}
			acc[i] = nv
		case PhysSumSq:
			v := detailRow[p.ArgIdx]
			if !v.IsNull() {
				f, ok := v.AsFloat()
				if !ok {
					return fmt.Errorf("agg: sumsq %s: non-numeric %s", p.Name, v.Kind)
				}
				nv, err := addValues(acc[i], relation.NewFloat(f*f))
				if err != nil {
					return fmt.Errorf("agg: sumsq %s: %w", p.Name, err)
				}
				acc[i] = nv
			}
		case PhysMin:
			acc[i] = minValue(acc[i], detailRow[p.ArgIdx])
		case PhysMax:
			acc[i] = maxValue(acc[i], detailRow[p.ArgIdx])
		}
	}
	return nil
}

// MergePhys merges one incoming sub-aggregate slice into the running
// super-aggregate slice (synchronization at the coordinator, Theorem 1): the
// super-aggregate of COUNT is SUM; SUM merges by addition; MIN/MAX by
// comparison.
func (l *Layout) MergePhys(into, from relation.Tuple) error {
	for i, p := range l.Phys {
		switch p.Op {
		case PhysCount, PhysSum, PhysSumSq:
			nv, err := addValues(into[i], from[i])
			if err != nil {
				return fmt.Errorf("agg: merge %s: %w", p.Name, err)
			}
			into[i] = nv
		case PhysMin:
			into[i] = minValue(into[i], from[i])
		case PhysMax:
			into[i] = maxValue(into[i], from[i])
		}
	}
	return nil
}

// ComputeDerived returns the derived column values for a physical slice.
func (l *Layout) ComputeDerived(phys relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, len(l.Derived))
	for i, d := range l.Derived {
		out[i] = d.compute(phys)
	}
	return out
}

func (d Derived) compute(phys relation.Tuple) relation.Value {
	switch d.Kind {
	case DerivedAvg:
		return avgOf(phys[d.SumIdx], phys[d.CntIdx])
	case DerivedVariance, DerivedStdDev:
		v := varianceOf(phys[d.SumIdx], phys[d.SumSqIdx], phys[d.CntIdx])
		if d.Kind == DerivedStdDev && !v.IsNull() {
			return relation.NewFloat(math.Sqrt(v.Float))
		}
		return v
	default:
		return relation.Null
	}
}

// varianceOf computes the population variance sumsq/n - (sum/n)^2, clamped
// at zero against floating-point cancellation.
func varianceOf(sum, sumsq, cnt relation.Value) relation.Value {
	if sum.IsNull() || sumsq.IsNull() || cnt.IsNull() || cnt.Int == 0 {
		return relation.Null
	}
	sf, _ := sum.AsFloat()
	qf, _ := sumsq.AsFloat()
	n := float64(cnt.Int)
	mean := sf / n
	v := qf/n - mean*mean
	if v < 0 {
		v = 0
	}
	return relation.NewFloat(v)
}

// FinalSchema returns the logical output schema: one column per spec, in
// spec order (AVG is FLOAT; the rest keep their physical kind).
func (l *Layout) FinalSchema() relation.Schema {
	s := make(relation.Schema, len(l.Specs))
	for i, sp := range l.Specs {
		if sp.Func == Avg || sp.Func == Variance || sp.Func == StdDev {
			s[i] = relation.Column{Name: sp.As, Kind: relation.KindFloat}
		} else {
			p := l.Phys[l.specPhys[i][0]]
			s[i] = relation.Column{Name: p.Name, Kind: p.Kind}
		}
	}
	return s
}

// Finalize maps a physical slice to the logical output values, one per spec.
func (l *Layout) Finalize(phys relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, len(l.Specs))
	for i, sp := range l.Specs {
		loc := l.specPhys[i]
		switch sp.Func {
		case Avg:
			out[i] = avgOf(phys[loc[0]], phys[loc[1]])
		case Variance, StdDev:
			v := varianceOf(phys[loc[0]], phys[loc[2]], phys[loc[1]])
			if sp.Func == StdDev && !v.IsNull() {
				v = relation.NewFloat(math.Sqrt(v.Float))
			}
			out[i] = v
		default:
			out[i] = phys[loc[0]]
		}
	}
	return out
}

// addValues is NULL-aware addition preserving integer kinds: NULL is the
// identity (SQL SUM ignores NULLs; the sum of an empty multiset is NULL).
func addValues(a, b relation.Value) (relation.Value, error) {
	if a.IsNull() {
		return b, nil
	}
	if b.IsNull() {
		return a, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return relation.Null, fmt.Errorf("cannot add %s and %s", a.Kind, b.Kind)
	}
	if a.Kind == relation.KindInt && b.Kind == relation.KindInt {
		return relation.NewInt(a.Int + b.Int), nil
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	return relation.NewFloat(af + bf), nil
}

func minValue(a, b relation.Value) relation.Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	if c, ok := a.Compare(b); ok && c <= 0 {
		return a
	}
	return b
}

func maxValue(a, b relation.Value) relation.Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	if c, ok := a.Compare(b); ok && c >= 0 {
		return a
	}
	return b
}

func avgOf(sum, cnt relation.Value) relation.Value {
	if sum.IsNull() || cnt.IsNull() || cnt.Int == 0 {
		return relation.Null
	}
	sf, _ := sum.AsFloat()
	return relation.NewFloat(sf / float64(cnt.Int))
}
