package agg

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"skalla/internal/relation"
)

var detail = relation.MustSchema(
	relation.Column{Name: "qty", Kind: relation.KindInt},
	relation.Column{Name: "price", Kind: relation.KindFloat},
	relation.Column{Name: "name", Kind: relation.KindString},
)

func row(qty int64, price float64, name string) relation.Tuple {
	return relation.Tuple{relation.NewInt(qty), relation.NewFloat(price), relation.NewString(name)}
}

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{Func: Count, As: "c"},
		{Func: Count, Arg: "name", As: "c"},
		{Func: Sum, Arg: "qty", As: "s"},
		{Func: Avg, Arg: "price", As: "a"},
		{Func: Min, Arg: "name", As: "m"},
		{Func: Max, Arg: "qty", As: "m"},
	}
	for _, s := range good {
		if err := s.Validate(detail); err != nil {
			t.Errorf("Validate(%s): %v", s, err)
		}
	}
	bad := []Spec{
		{Func: Sum, As: "s"},              // missing arg
		{Func: Count, As: ""},             // missing name
		{Func: Sum, Arg: "zzz", As: "s"},  // unknown column
		{Func: Sum, Arg: "name", As: "s"}, // non-numeric sum
		{Func: Avg, Arg: "name", As: "a"}, // non-numeric avg
	}
	for _, s := range bad {
		if err := s.Validate(detail); err == nil {
			t.Errorf("Validate(%s): expected error", s)
		}
	}
}

func TestSpecString(t *testing.T) {
	if got := (Spec{Func: Count, As: "c"}).String(); got != "COUNT(*) -> c" {
		t.Errorf("String = %q", got)
	}
	if got := (Spec{Func: Avg, Arg: "price", As: "a"}).String(); got != "AVG(price) -> a" {
		t.Errorf("String = %q", got)
	}
}

func TestLayoutShapes(t *testing.T) {
	l, err := NewLayout([]Spec{
		{Func: Count, As: "cnt"},
		{Func: Avg, Arg: "price", As: "ap"},
		{Func: Min, Arg: "qty", As: "mq"},
	}, detail)
	if err != nil {
		t.Fatal(err)
	}
	ps := l.PhysSchema()
	wantPhys := "(cnt INT, ap_sum FLOAT, ap_cnt INT, mq INT)"
	if ps.String() != wantPhys {
		t.Errorf("PhysSchema = %s, want %s", ps, wantPhys)
	}
	if ds := l.DerivedSchema(); ds.String() != "(ap FLOAT)" {
		t.Errorf("DerivedSchema = %s", ds)
	}
	if fs := l.FinalSchema(); fs.String() != "(cnt INT, ap FLOAT, mq INT)" {
		t.Errorf("FinalSchema = %s", fs)
	}
	id := l.Identity()
	if id[0].Int != 0 || !id[1].IsNull() || id[2].Int != 0 || !id[3].IsNull() {
		t.Errorf("Identity = %v", id)
	}
}

func TestLayoutNameCollisions(t *testing.T) {
	if _, err := NewLayout([]Spec{{Func: Count, As: "x"}, {Func: Sum, Arg: "qty", As: "x"}}, detail); err == nil {
		t.Error("duplicate output name must fail")
	}
	if _, err := NewLayout([]Spec{{Func: Count, As: "a_sum"}, {Func: Avg, Arg: "qty", As: "a"}}, detail); err == nil {
		t.Error("AVG derived name collision must fail")
	}
}

func TestAccumulateAndFinalize(t *testing.T) {
	l, err := NewLayout([]Spec{
		{Func: Count, As: "cnt"},
		{Func: Sum, Arg: "qty", As: "sq"},
		{Func: Avg, Arg: "price", As: "ap"},
		{Func: Min, Arg: "price", As: "minp"},
		{Func: Max, Arg: "qty", As: "maxq"},
	}, detail)
	if err != nil {
		t.Fatal(err)
	}
	acc := l.Identity()
	rows := []relation.Tuple{
		row(2, 10.0, "a"),
		row(5, 20.0, "b"),
		row(3, 6.0, "c"),
	}
	for _, r := range rows {
		if err := l.Accumulate(acc, r); err != nil {
			t.Fatal(err)
		}
	}
	final := l.Finalize(acc)
	if final[0].Int != 3 {
		t.Errorf("cnt = %v", final[0])
	}
	if final[1].Int != 10 {
		t.Errorf("sum qty = %v", final[1])
	}
	if final[2].Float != 12.0 {
		t.Errorf("avg price = %v", final[2])
	}
	if final[3].Float != 6.0 {
		t.Errorf("min price = %v", final[3])
	}
	if final[4].Int != 5 {
		t.Errorf("max qty = %v", final[4])
	}
}

func TestEmptyRangeSemantics(t *testing.T) {
	l, _ := NewLayout([]Spec{
		{Func: Count, As: "cnt"},
		{Func: Sum, Arg: "qty", As: "sq"},
		{Func: Avg, Arg: "price", As: "ap"},
		{Func: Min, Arg: "price", As: "mp"},
	}, detail)
	final := l.Finalize(l.Identity())
	if final[0].Int != 0 {
		t.Errorf("COUNT of empty = %v, want 0", final[0])
	}
	for i := 1; i < 4; i++ {
		if !final[i].IsNull() {
			t.Errorf("aggregate %d of empty = %v, want NULL", i, final[i])
		}
	}
}

func TestCountColSkipsNulls(t *testing.T) {
	l, _ := NewLayout([]Spec{{Func: Count, Arg: "name", As: "c"}}, detail)
	acc := l.Identity()
	_ = l.Accumulate(acc, row(1, 1, "x"))
	_ = l.Accumulate(acc, relation.Tuple{relation.NewInt(1), relation.NewFloat(1), relation.Null})
	if acc[0].Int != 1 {
		t.Errorf("COUNT(col) with NULL = %v, want 1", acc[0])
	}
}

func TestSumSkipsNullsAndKeepsKind(t *testing.T) {
	l, _ := NewLayout([]Spec{{Func: Sum, Arg: "qty", As: "s"}}, detail)
	acc := l.Identity()
	_ = l.Accumulate(acc, row(2, 0, ""))
	_ = l.Accumulate(acc, relation.Tuple{relation.Null, relation.NewFloat(0), relation.NewString("")})
	_ = l.Accumulate(acc, row(3, 0, ""))
	if acc[0].Kind != relation.KindInt || acc[0].Int != 5 {
		t.Errorf("int sum = %v (%s)", acc[0], acc[0].Kind)
	}
}

func TestMergePhysMatchesSingleSite(t *testing.T) {
	// Merging per-partition sub-aggregates must equal aggregating the whole
	// (Theorem 1 at the value level). Property-checked with testing/quick.
	l, _ := NewLayout([]Spec{
		{Func: Count, As: "cnt"},
		{Func: Sum, Arg: "qty", As: "sq"},
		{Func: Avg, Arg: "price", As: "ap"},
		{Func: Min, Arg: "qty", As: "minq"},
		{Func: Max, Arg: "price", As: "maxp"},
	}, detail)
	prop := func(qs []int16, split uint8) bool {
		rows := make([]relation.Tuple, len(qs))
		for i, q := range qs {
			rows[i] = row(int64(q), float64(q)*1.5, "r")
		}
		// Whole.
		whole := l.Identity()
		for _, r := range rows {
			if err := l.Accumulate(whole, r); err != nil {
				return false
			}
		}
		// Split into two partitions and merge.
		cut := 0
		if len(rows) > 0 {
			cut = int(split) % (len(rows) + 1)
		}
		p1, p2 := l.Identity(), l.Identity()
		for _, r := range rows[:cut] {
			_ = l.Accumulate(p1, r)
		}
		for _, r := range rows[cut:] {
			_ = l.Accumulate(p2, r)
		}
		merged := l.Identity()
		if err := l.MergePhys(merged, p1); err != nil {
			return false
		}
		if err := l.MergePhys(merged, p2); err != nil {
			return false
		}
		fw, fm := l.Finalize(whole), l.Finalize(merged)
		for i := range fw {
			if !fw[i].Equal(fm[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeIdentityIsNeutral(t *testing.T) {
	l, _ := NewLayout([]Spec{
		{Func: Count, As: "c"}, {Func: Sum, Arg: "price", As: "s"},
		{Func: Min, Arg: "qty", As: "mn"}, {Func: Max, Arg: "qty", As: "mx"},
	}, detail)
	acc := l.Identity()
	_ = l.Accumulate(acc, row(7, 2.5, "x"))
	before := acc.Clone()
	if err := l.MergePhys(acc, l.Identity()); err != nil {
		t.Fatal(err)
	}
	for i := range acc {
		if !acc[i].Equal(before[i]) {
			t.Errorf("identity merge changed col %d: %v -> %v", i, before[i], acc[i])
		}
	}
}

func TestComputeDerived(t *testing.T) {
	l, _ := NewLayout([]Spec{{Func: Avg, Arg: "price", As: "ap"}}, detail)
	phys := relation.Tuple{relation.NewFloat(30), relation.NewInt(4)}
	d := l.ComputeDerived(phys)
	if len(d) != 1 || d[0].Float != 7.5 {
		t.Errorf("derived = %v", d)
	}
	empty := l.ComputeDerived(l.Identity())
	if !empty[0].IsNull() {
		t.Errorf("derived of empty = %v, want NULL", empty[0])
	}
}

func TestMergeErrors(t *testing.T) {
	l, _ := NewLayout([]Spec{{Func: Sum, Arg: "qty", As: "s"}}, detail)
	into := relation.Tuple{relation.NewString("oops")}
	from := relation.Tuple{relation.NewInt(1)}
	if err := l.MergePhys(into, from); err == nil {
		t.Error("merging non-numeric sum must error")
	}
}

func TestFuncAndPhysOpStrings(t *testing.T) {
	for f, want := range map[Func]string{Count: "COUNT", Sum: "SUM", Avg: "AVG", Min: "MIN", Max: "MAX"} {
		if f.String() != want {
			t.Errorf("Func %d = %q", f, f.String())
		}
	}
	if !strings.HasPrefix(Func(200).String(), "Func(") {
		t.Error("unknown Func string")
	}
	for p, want := range map[PhysOp]string{PhysCount: "count", PhysSum: "sum", PhysMin: "min", PhysMax: "max"} {
		if p.String() != want {
			t.Errorf("PhysOp %d = %q", p, p.String())
		}
	}
}

func TestMinMaxStrings(t *testing.T) {
	l, _ := NewLayout([]Spec{{Func: Min, Arg: "name", As: "mn"}, {Func: Max, Arg: "name", As: "mx"}}, detail)
	acc := l.Identity()
	for _, n := range []string{"pear", "apple", "zuc"} {
		_ = l.Accumulate(acc, row(0, 0, n))
	}
	if acc[0].Str != "apple" || acc[1].Str != "zuc" {
		t.Errorf("min/max strings = %v", acc)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	l, err := NewLayout([]Spec{
		{Func: Variance, Arg: "qty", As: "vq"},
		{Func: StdDev, Arg: "price", As: "sp"},
	}, detail)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.PhysSchema().String(); got != "(vq_sum INT, vq_sumsq FLOAT, vq_cnt INT, sp_sum FLOAT, sp_sumsq FLOAT, sp_cnt INT)" {
		t.Errorf("PhysSchema = %s", got)
	}
	if got := l.FinalSchema().String(); got != "(vq FLOAT, sp FLOAT)" {
		t.Errorf("FinalSchema = %s", got)
	}
	acc := l.Identity()
	// qty: 2, 4, 6 → mean 4, variance ((4+0+4)/3) = 8/3.
	// price: 1, 1, 4 → mean 2, variance (1+1+4)/3 = 2 → stddev √2.
	for _, x := range []struct {
		q int64
		p float64
	}{{2, 1}, {4, 1}, {6, 4}} {
		if err := l.Accumulate(acc, row(x.q, x.p, "n")); err != nil {
			t.Fatal(err)
		}
	}
	final := l.Finalize(acc)
	if diff := final[0].Float - 8.0/3.0; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("variance = %v, want 8/3", final[0])
	}
	if diff := final[1].Float - math.Sqrt2; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("stddev = %v, want √2", final[1])
	}
	// Derived columns agree with Finalize.
	der := l.ComputeDerived(acc)
	if !der[0].Equal(final[0]) || !der[1].Equal(final[1]) {
		t.Errorf("derived %v vs final %v", der, final)
	}
	// Empty range → NULL; single value → 0.
	empty := l.Finalize(l.Identity())
	if !empty[0].IsNull() || !empty[1].IsNull() {
		t.Errorf("empty variance = %v", empty)
	}
	one := l.Identity()
	_ = l.Accumulate(one, row(5, 3, "x"))
	f1 := l.Finalize(one)
	if f1[0].Float != 0 || f1[1].Float != 0 {
		t.Errorf("single-value variance = %v, want 0", f1)
	}
}

// Variance must decompose: merging per-partition sub-aggregates equals the
// whole (the Theorem 1 property extended to the sum-of-squares columns).
func TestVarianceMergeProperty(t *testing.T) {
	l, _ := NewLayout([]Spec{{Func: Variance, Arg: "qty", As: "v"}}, detail)
	prop := func(qs []int16, split uint8) bool {
		rows := make([]relation.Tuple, len(qs))
		for i, q := range qs {
			rows[i] = row(int64(q), 0, "r")
		}
		whole := l.Identity()
		for _, r := range rows {
			if err := l.Accumulate(whole, r); err != nil {
				return false
			}
		}
		cut := 0
		if len(rows) > 0 {
			cut = int(split) % (len(rows) + 1)
		}
		p1, p2 := l.Identity(), l.Identity()
		for _, r := range rows[:cut] {
			_ = l.Accumulate(p1, r)
		}
		for _, r := range rows[cut:] {
			_ = l.Accumulate(p2, r)
		}
		merged := l.Identity()
		_ = l.MergePhys(merged, p1)
		_ = l.MergePhys(merged, p2)
		fw, fm := l.Finalize(whole), l.Finalize(merged)
		if fw[0].IsNull() != fm[0].IsNull() {
			return false
		}
		if fw[0].IsNull() {
			return true
		}
		diff := fw[0].Float - fm[0].Float
		if diff < 0 {
			diff = -diff
		}
		scale := fw[0].Float
		if scale < 1 {
			scale = 1
		}
		return diff/scale < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceNameCollision(t *testing.T) {
	if _, err := NewLayout([]Spec{{Func: Count, As: "v_sumsq"}, {Func: Variance, Arg: "qty", As: "v"}}, detail); err == nil {
		t.Error("sumsq name collision must fail")
	}
	if _, err := NewLayout([]Spec{{Func: StdDev, Arg: "name", As: "s"}}, detail); err == nil {
		t.Error("non-numeric stdev must fail")
	}
}
