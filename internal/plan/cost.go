package plan

import (
	"fmt"

	"skalla/internal/distrib"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// CostModel estimates the communication a plan causes, priced by the two
// observables of the rounds-vs-communication literature — synchronization
// rounds and bytes shipped per direction — which are exactly what
// internal/stats measures per executed round, so estimates and actuals line
// up round-by-round. The model is deliberately coarse: its job is ranking
// candidate plans for one query, not predicting wall-clock time.
type CostModel struct {
	// Net models the links (currently informational; round counts and byte
	// volumes dominate plan choice on any uniform network).
	Net stats.NetModel
	// DefaultGroups is the base-values cardinality |Q| assumed when the
	// catalog has no distinct counts for the key attributes.
	DefaultGroups int64
	// GuardSelectivity is the assumed fraction of groups a site returns under
	// the Prop. 1 guard (|RNG| > 0 for some variable).
	GuardSelectivity float64
	// MsgOverhead is the fixed per-site request framing cost per round, in
	// bytes (schema, condition text, block headers).
	MsgOverhead int64
}

// DefaultCostModel returns the model used when the caller supplies none.
func DefaultCostModel(net stats.NetModel) CostModel {
	return CostModel{Net: net, DefaultGroups: 1024, GuardSelectivity: 0.5, MsgOverhead: 96}
}

// RoundEstimate is the predicted traffic of one synchronization round. Names
// match the executed round names (internal/core), so estimates join with
// stats.RoundStat by position and name.
type RoundEstimate struct {
	Name      string
	BytesDown int64
	BytesUp   int64
}

// CostEstimate is the predicted communication cost of a whole plan.
type CostEstimate struct {
	Rounds    int
	BytesDown int64
	BytesUp   int64
	PerRound  []RoundEstimate
}

// TotalBytes is the plan's total estimated traffic in both directions.
func (e CostEstimate) TotalBytes() int64 { return e.BytesDown + e.BytesUp }

// Compare orders estimates by (rounds, total bytes, bytes down); negative
// means e is cheaper than o.
func (e CostEstimate) Compare(o CostEstimate) int {
	switch {
	case e.Rounds != o.Rounds:
		if e.Rounds < o.Rounds {
			return -1
		}
		return 1
	case e.TotalBytes() != o.TotalBytes():
		if e.TotalBytes() < o.TotalBytes() {
			return -1
		}
		return 1
	case e.BytesDown != o.BytesDown:
		if e.BytesDown < o.BytesDown {
			return -1
		}
		return 1
	}
	return 0
}

// String renders the estimate for explain output.
func (e CostEstimate) String() string {
	return fmt.Sprintf("%d round(s), %d B down, %d B up", e.Rounds, e.BytesDown, e.BytesUp)
}

// estimate prices a draft plan. It mirrors the coordinator's round structure
// (internal/core executePlan): a base round (plain, folded into MD1, or a
// local prefix), then one coordinator-driven round per remaining operator.
func (m CostModel) estimate(p *Plan, xs []relation.Schema, cat *distrib.Catalog) CostEstimate {
	n := int64(p.NumSites)
	overhead := m.MsgOverhead
	groups, aligned := m.baseGroups(p.Query, cat)
	// Per-site share of the groups a site returns: partition-aligned keys
	// mean each group lives at one site (1/n of them per site); otherwise
	// every site may report every group.
	perSite := float64(groups)
	if aligned {
		perSite /= float64(n)
	}

	var est CostEstimate
	add := func(name string, down, up int64) {
		est.PerRound = append(est.PerRound, RoundEstimate{Name: name, BytesDown: down, BytesUp: up})
		est.BytesDown += down
		est.BytesUp += up
		est.Rounds++
	}
	rowB := func(k int) int64 {
		if k < len(xs) {
			return rowBytes(xs[k])
		}
		return 16
	}

	numOps := len(p.Query.Ops)
	startOp := 0
	switch {
	case p.LocalPrefix > 0:
		name := fmt.Sprintf("local-MD1..MD%d", p.LocalPrefix)
		if p.FullLocal {
			name = "local-all"
		}
		// One request down, each site returns its locally finished share of
		// X_prefix; alignment is what made the prefix legal, so the shares
		// partition the groups.
		add(name, n*overhead, groups*rowB(p.LocalPrefix))
		startOp = p.LocalPrefix
	case p.SkipBaseSync:
		add("base+MD1", n*overhead, n*ceilI(perSite)*rowB(1))
		startOp = 1
	default:
		add("base", n*overhead, n*ceilI(perSite)*rowB(0))
	}
	for k := startOp; k < numOps; k++ {
		// Down: the coordinator ships X_k to every site — unless Thm. 4
		// reducers partition it so each site gets only its own fragment.
		down := n*overhead + n*groups*rowB(k)
		if p.Reducers != nil && k < len(p.Reducers) && p.Reducers[k] != nil {
			down = n*overhead + groups*rowB(k)
		}
		// Up: each site returns aggregates for the groups it saw; the Prop. 1
		// guard suppresses groups with no matching detail rows.
		up := float64(n) * perSite
		if p.Guard {
			up *= m.GuardSelectivity
		}
		add(fmt.Sprintf("MD%d", k+1), down, ceilI(up)*rowB(k+1))
	}
	return est
}

// baseGroups estimates |Q|, the base-values cardinality, from catalog
// distinct counts of the key attributes (capped at the relation's total
// rows), and reports whether some key is a partition attribute. Without
// statistics the model falls back to DefaultGroups — candidate ranking then
// still reflects round counts and per-round traffic shape.
func (m CostModel) baseGroups(q gmdj.Query, cat *distrib.Catalog) (int64, bool) {
	aligned := false
	known := false
	groups := int64(1)
	if dist := cat.Distribution(q.Base.Detail); dist != nil {
		part := dist.PartitionAttrs()
		allKnown := true
		for _, k := range q.Keys() {
			if _, ok := part[k]; ok {
				aligned = true
			}
			info, ok := dist.Attr(k)
			if !ok || info.Distinct <= 0 {
				allKnown = false
				continue
			}
			if groups < 1<<40 { // avoid overflow on wide keys
				groups *= info.Distinct
			}
		}
		known = allKnown
		if known && dist.TotalRows > 0 && groups > dist.TotalRows {
			groups = dist.TotalRows
		}
	}
	if !known || groups <= 0 {
		groups = m.DefaultGroups
		if groups <= 0 {
			groups = 1024
		}
	}
	return groups, aligned
}

// rowBytes is the modeled serialized width of one tuple of the schema.
func rowBytes(s relation.Schema) int64 {
	var n int64 = 1 // row framing
	for _, c := range s {
		switch c.Kind {
		case relation.KindString:
			n += 16
		case relation.KindBool:
			n += 1
		default:
			n += 8
		}
	}
	return n
}

func ceilI(f float64) int64 {
	n := int64(f)
	if float64(n) < f {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// RoundCost joins one round's estimated and measured traffic — the cost
// model's calibration record surfaced in -stats-json and bench artifacts.
type RoundCost struct {
	Name            string
	EstBytesDown    int64
	EstBytesUp      int64
	ActualBytesDown int64
	ActualBytesUp   int64
}

// CompareRounds joins the plan's per-round estimates with the measured
// metrics, by position (names coincide when the plan executed normally; a
// retried or degraded run may report fewer rounds).
func (p *Plan) CompareRounds(m *stats.Metrics) []RoundCost {
	var out []RoundCost
	for i, re := range p.Estimate.PerRound {
		rc := RoundCost{Name: re.Name, EstBytesDown: re.BytesDown, EstBytesUp: re.BytesUp}
		if m != nil && i < len(m.Rounds) {
			rs := &m.Rounds[i]
			rc.ActualBytesDown = int64(rs.BytesDown())
			rc.ActualBytesUp = int64(rs.BytesUp())
			if rs.Name != "" {
				rc.Name = rs.Name
			}
		}
		out = append(out, rc)
	}
	if m != nil {
		for i := len(p.Estimate.PerRound); i < len(m.Rounds); i++ {
			rs := &m.Rounds[i]
			out = append(out, RoundCost{Name: rs.Name, ActualBytesDown: int64(rs.BytesDown()), ActualBytesUp: int64(rs.BytesUp())})
		}
	}
	return out
}
