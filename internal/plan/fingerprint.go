package plan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"

	"skalla/internal/distrib"
)

// fingerprintVersion is bumped whenever the hashed material or its encoding
// changes, so fingerprints never collide across incompatible definitions.
const fingerprintVersion = "skalla-plan-v1"

// fingerprint computes the plan's canonical identity: a stable hash over the
// rewritten query text, the applied rules (in canonical order), the site
// count, and the catalog generation. Two compilations that would execute
// identically share a fingerprint; a change in query shape, rule set,
// deployment size, or distribution knowledge changes it. This is the cache
// key a super-aggregate result cache indexes by.
func fingerprint(p *Plan, cat *distrib.Catalog) string {
	h := sha256.New()
	io.WriteString(h, fingerprintVersion)
	h.Write([]byte{0})
	io.WriteString(h, p.Query.String())
	h.Write([]byte{0})
	for _, r := range p.Rules {
		io.WriteString(h, r)
		h.Write([]byte{0})
	}
	var tail [16]byte
	binary.BigEndian.PutUint64(tail[:8], uint64(p.NumSites))
	binary.BigEndian.PutUint64(tail[8:], cat.Gen())
	h.Write(tail[:])
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}
