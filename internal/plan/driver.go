package plan

import (
	"fmt"
	"sort"
	"strings"

	"skalla/internal/distrib"
	"skalla/internal/gmdj"
)

// Mode selects how the compiler chooses rules.
type Mode uint8

const (
	// ModeRules applies exactly the rules listed in Selection.Rules.
	ModeRules Mode = iota
	// ModeNone applies no rules (the baseline plans of Sect. 5).
	ModeNone
	// ModeAll applies every registered rule that is applicable.
	ModeAll
	// ModeAuto enumerates rule subsets and picks the cheapest plan under the
	// cost model by estimated (rounds, bytes down/up).
	ModeAuto
)

// Selection names the rule set a plan should be compiled with.
type Selection struct {
	Mode Mode
	// Rules lists rule names for ModeRules; ignored otherwise.
	Rules []string
}

// SelectNone compiles baseline plans.
func SelectNone() Selection { return Selection{Mode: ModeNone} }

// SelectAll applies every applicable rule.
func SelectAll() Selection { return Selection{Mode: ModeAll} }

// SelectAuto lets the cost model choose the rule subset per query.
func SelectAuto() Selection { return Selection{Mode: ModeAuto} }

// SelectRules applies exactly the named rules.
func SelectRules(names ...string) Selection {
	return Selection{Mode: ModeRules, Rules: append([]string(nil), names...)}
}

// ParseSelection parses the textual plan-mode syntax used by the CLIs:
// "auto", "none", "all", "rules=a,b,..." (or a bare comma list of rule
// names).
func ParseSelection(s string) (Selection, error) {
	switch t := strings.TrimSpace(s); t {
	case "auto":
		return SelectAuto(), nil
	case "none":
		return SelectNone(), nil
	case "all":
		return SelectAll(), nil
	default:
		list := strings.TrimPrefix(t, "rules=")
		if list == "" {
			return Selection{}, fmt.Errorf("plan: empty selection %q (want auto|none|all|rules=...)", s)
		}
		var names []string
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if ruleIndex(n) < 0 {
				return Selection{}, fmt.Errorf("plan: unknown rule %q (known: %s)",
					n, strings.Join(RuleNames(), ", "))
			}
			names = append(names, n)
		}
		if len(names) == 0 {
			return Selection{}, fmt.Errorf("plan: empty selection %q (want auto|none|all|rules=...)", s)
		}
		return SelectRules(names...), nil
	}
}

// String renders the selection in the same syntax ParseSelection accepts.
func (s Selection) String() string {
	switch s.Mode {
	case ModeNone:
		return "none"
	case ModeAll:
		return "all"
	case ModeAuto:
		return "auto"
	}
	if len(s.Rules) == 0 {
		return "none"
	}
	return "rules=" + strings.Join(s.Rules, ",")
}

// OptionsSelection maps the legacy Options booleans onto the equivalent rule
// selection; plan.New is a shim over it. SyncReduce covers both
// synchronization reductions (the booleans predate their separation).
func OptionsSelection(o Options) Selection {
	var names []string
	if o.Coalesce {
		names = append(names, "coalesce")
	}
	if o.SyncReduce {
		names = append(names, "local-prefix", "sync-skip")
	}
	if o.GroupReduceCoord {
		names = append(names, "group-reduce-coord")
	}
	if o.GroupReduceSite {
		names = append(names, "group-reduce-site")
	}
	return Selection{Mode: ModeRules, Rules: names}
}

// optionsFromRules synthesizes the legacy booleans a rule set corresponds to,
// so Options-reading callers keep working on rule-compiled plans.
func optionsFromRules(names []string) Options {
	var o Options
	for _, n := range names {
		switch n {
		case "coalesce":
			o.Coalesce = true
		case "local-prefix", "sync-skip":
			o.SyncReduce = true
		case "group-reduce-coord":
			o.GroupReduceCoord = true
		case "group-reduce-site":
			o.GroupReduceSite = true
		}
	}
	return o
}

// resolve maps the selection to registry rules in canonical order,
// deduplicated; unknown names error.
func (s Selection) resolve() ([]Rule, error) {
	switch s.Mode {
	case ModeNone:
		return nil, nil
	case ModeAll, ModeAuto:
		return Rules(), nil
	}
	idx := make([]int, 0, len(s.Rules))
	seen := make(map[int]bool, len(s.Rules))
	for _, n := range s.Rules {
		i := ruleIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("plan: unknown rule %q (known: %s)", n, strings.Join(RuleNames(), ", "))
		}
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	rules := make([]Rule, len(idx))
	for i, j := range idx {
		rules[i] = registry[j]
	}
	return rules, nil
}

// label canonicalizes the mode string recorded on compiled plans: a rule
// list equal to the full registry reads "all", an empty one "none".
func label(sel Selection, rules []Rule) string {
	switch sel.Mode {
	case ModeAuto:
		return "auto"
	case ModeAll:
		return "all"
	case ModeNone:
		return "none"
	}
	if len(rules) == 0 {
		return "none"
	}
	if len(rules) == len(registry) {
		return "all"
	}
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name()
	}
	return "rules=" + strings.Join(names, ",")
}

// RuleTrace records one rule's outcome during compilation: whether it
// applied, what it did (or why it was skipped), and the estimated cost delta
// its rewrite produced under the cost model.
type RuleTrace struct {
	Rule    string
	Applied bool
	// Detail describes the rewrite when applied, or the skip reason.
	Detail string
	// DeltaRounds and DeltaBytes are estimate(after) − estimate(before) for
	// applied rules (negative = saved).
	DeltaRounds int
	DeltaBytes  int64
}

// Compile compiles a plan for the given rule selection and cost model. The
// schema source provides detail schemas; cat may be nil when no distribution
// knowledge exists, which disables the distribution-aware rules.
func Compile(q gmdj.Query, src gmdj.SchemaSource, cat *distrib.Catalog, numSites int, sel Selection, model CostModel) (*Plan, error) {
	if numSites <= 0 {
		return nil, fmt.Errorf("plan: numSites = %d", numSites)
	}
	if err := q.Validate(src); err != nil {
		return nil, err
	}
	// Distribution knowledge must describe the same deployment.
	if dist := cat.Distribution(q.Base.Detail); dist != nil && dist.NumSites != numSites {
		return nil, fmt.Errorf("plan: catalog describes %d sites for %q, executing on %d",
			dist.NumSites, q.Base.Detail, numSites)
	}
	// Simplify every condition before the rules run and before shipping
	// anything: constant folding and logical-identity elimination shrink the
	// wire plans and can expose equality links (e.g. a front end emitting
	// "true && B.k = R.k") to the Sect. 4 analyses.
	sq := simplifyQuery(q)

	if sel.Mode == ModeAuto {
		return compileAuto(sq, src, cat, numSites, model)
	}
	rules, err := sel.resolve()
	if err != nil {
		return nil, err
	}
	return compileRules(sq, src, cat, numSites, rules, model, label(sel, rules))
}

// compileRules runs the deterministic multi-pass driver: each pass tries the
// not-yet-applied rules in canonical order and re-checks applicability
// against the rewritten draft; a pass that applies nothing ends the loop, so
// the driver reaches a fixpoint in at most len(rules) passes.
func compileRules(q gmdj.Query, src gmdj.SchemaSource, cat *distrib.Catalog, numSites int, rules []Rule, model CostModel, mode string) (*Plan, error) {
	p := &Plan{Query: q, NumSites: numSites, Mode: mode}
	c := &Context{Src: src, Catalog: cat, NumSites: numSites, Model: model, plan: p}

	traces := make([]RuleTrace, len(rules))
	for i, r := range rules {
		traces[i] = RuleTrace{Rule: r.Name()}
	}
	for pass := 0; pass <= len(rules); pass++ {
		progressed := false
		for i, r := range rules {
			if traces[i].Applied {
				continue
			}
			ok, why, err := r.Applies(c)
			if err != nil {
				return nil, err
			}
			if !ok {
				traces[i].Detail = why
				continue
			}
			before, err := c.estimate()
			if err != nil {
				return nil, err
			}
			detail, err := r.Apply(c)
			if err != nil {
				return nil, err
			}
			after, err := c.estimate()
			if err != nil {
				return nil, err
			}
			traces[i] = RuleTrace{
				Rule:        r.Name(),
				Applied:     true,
				Detail:      detail,
				DeltaRounds: after.Rounds - before.Rounds,
				DeltaBytes:  after.TotalBytes() - before.TotalBytes(),
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}

	p.Trace = traces
	for _, t := range traces {
		if t.Applied {
			p.Rules = append(p.Rules, t.Rule)
		}
	}
	p.Opts = optionsFromRules(p.Rules)
	xs, err := c.XSchemas()
	if err != nil {
		return nil, err
	}
	p.XSchemas = xs
	p.Estimate = model.estimate(p, xs, cat)
	p.Fingerprint = fingerprint(p, cat)
	p.CatalogGen = cat.Gen()
	return p, nil
}

// compileAuto enumerates every subset of the registry (2^5 = 32 candidates),
// compiles each, and keeps the cheapest under the cost model. Enumeration
// order is deterministic (bitmask over canonical rule order) and ties break
// toward fewer rules, then the lexicographically smaller rule list — so the
// winner, and therefore its fingerprint, is stable across runs.
func compileAuto(q gmdj.Query, src gmdj.SchemaSource, cat *distrib.Catalog, numSites int, model CostModel) (*Plan, error) {
	n := len(registry)
	var best *Plan
	for mask := 0; mask < 1<<n; mask++ {
		subset := make([]Rule, 0, n)
		for i, r := range registry {
			if mask&(1<<i) != 0 {
				subset = append(subset, r)
			}
		}
		cand, err := compileRules(q, src, cat, numSites, subset, model, "auto")
		if err != nil {
			return nil, err
		}
		if best == nil || betterPlan(cand, best) {
			best = cand
		}
	}
	best.Candidates = 1 << n
	return best, nil
}

// betterPlan orders candidate plans: estimated cost first (rounds, total
// bytes, bytes down), then fewer applied rules, then the lexicographically
// smaller rule list. Strict order — a later candidate replaces an earlier one
// only when genuinely better, keeping enumeration deterministic.
func betterPlan(a, b *Plan) bool {
	if c := a.Estimate.Compare(b.Estimate); c != 0 {
		return c < 0
	}
	if len(a.Rules) != len(b.Rules) {
		return len(a.Rules) < len(b.Rules)
	}
	return strings.Join(a.Rules, ",") < strings.Join(b.Rules, ",")
}
