package plan

import (
	"fmt"

	"skalla/internal/distrib"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

// Rule is one independent optimization of the pipeline. Rules are stateless
// values: all analysis state lives in the Context, so a single registry
// instance serves every compilation concurrently.
type Rule interface {
	// Name is the rule's unique kebab-case identifier. It doubles as the
	// label value of skalla_plan_rule_applied_total and as the token accepted
	// by -plan-mode rules=...; the skallavet rulename analyzer enforces the
	// naming contract.
	Name() string
	// Applies reports whether the rule can rewrite the current draft, with a
	// human-readable reason when it cannot (surfaced in the explain trace).
	Applies(c *Context) (bool, string, error)
	// Apply performs the rewrite on the draft plan and returns a one-line
	// description of what changed.
	Apply(c *Context) (string, error)
}

// Context is the analysis state a rule sees: the draft plan (whose Query may
// already have been rewritten by earlier rules), the schema source, the
// distribution catalog, and the cost model used for Δcost accounting.
type Context struct {
	Src      gmdj.SchemaSource
	Catalog  *distrib.Catalog
	NumSites int
	Model    CostModel

	plan     *Plan
	xschemas []relation.Schema
}

// Plan returns the draft under construction.
func (c *Context) Plan() *Plan { return c.plan }

// Query returns the draft's current (possibly rewritten) query.
func (c *Context) Query() gmdj.Query { return c.plan.Query }

// SetQuery replaces the draft's query, invalidating the cached structure
// schemas. Rules that rewrite the query (coalesce) must go through here.
func (c *Context) SetQuery(q gmdj.Query) {
	c.plan.Query = q
	c.xschemas = nil
}

// XSchemas returns the base-result structure schemas after each operator of
// the current query, computed lazily and cached until the query changes.
func (c *Context) XSchemas() ([]relation.Schema, error) {
	if c.xschemas == nil {
		xs, err := gmdj.XSchemas(c.plan.Query, c.Src)
		if err != nil {
			return nil, err
		}
		c.xschemas = xs
	}
	return c.xschemas, nil
}

// estimate prices the draft in its current state.
func (c *Context) estimate() (CostEstimate, error) {
	xs, err := c.XSchemas()
	if err != nil {
		return CostEstimate{}, err
	}
	return c.Model.estimate(c.plan, xs, c.Catalog), nil
}

// registry holds every rule in canonical application order. Query rewrites
// (coalesce) come first so the structural analyses see the final operator
// chain; the sync reductions precede group reduction because a local prefix
// removes rounds the reducers would otherwise be derived for.
var registry = []Rule{
	coalesceRule{},
	localPrefixRule{},
	syncSkipRule{},
	groupReduceCoordRule{},
	groupReduceSiteRule{},
}

// Rules returns the registered rules in canonical order (a copy).
func Rules() []Rule { return append([]Rule(nil), registry...) }

// RuleNames returns the registered rule names in canonical order.
func RuleNames() []string {
	names := make([]string, len(registry))
	for i, r := range registry {
		names[i] = r.Name()
	}
	return names
}

func ruleIndex(name string) int {
	for i, r := range registry {
		if r.Name() == name {
			return i
		}
	}
	return -1
}

// coalesceRule merges adjacent independent MD operators (Sect. 4.3): fewer
// operators means fewer synchronization rounds at identical results.
type coalesceRule struct{}

func (coalesceRule) Name() string { return "coalesce" }

func (coalesceRule) Applies(c *Context) (bool, string, error) {
	_, merges, err := gmdj.Coalesce(c.Query(), c.Src)
	if err != nil {
		return false, "", err
	}
	if merges == 0 {
		return false, "no adjacent independent operators", nil
	}
	return true, "", nil
}

func (coalesceRule) Apply(c *Context) (string, error) {
	cq, merges, err := gmdj.Coalesce(c.Query(), c.Src)
	if err != nil {
		return "", err
	}
	c.SetQuery(cq)
	c.plan.Merges += merges
	return fmt.Sprintf("merged %d operator pair(s), %d round(s) saved", merges, merges), nil
}

// localPrefixRule evaluates a partition-aligned operator prefix entirely at
// the sites with one synchronization at its end (Thm. 5; Cor. 1 when the
// prefix covers the whole chain).
type localPrefixRule struct{}

func (localPrefixRule) Name() string { return "local-prefix" }

func (localPrefixRule) Applies(c *Context) (bool, string, error) {
	if distrib.LocalPrefixLen(c.Query(), c.Catalog) == 0 {
		return false, "no partition-aligned operator prefix", nil
	}
	return true, "", nil
}

func (localPrefixRule) Apply(c *Context) (string, error) {
	p := c.plan
	p.LocalPrefix = distrib.LocalPrefixLen(p.Query, c.Catalog)
	p.FullLocal = len(p.Query.Ops) > 0 && p.LocalPrefix == len(p.Query.Ops)
	if p.FullLocal {
		return "full local evaluation (Cor. 1), single round", nil
	}
	return fmt.Sprintf("MD1..MD%d evaluated locally (Thm. 5 prefix)", p.LocalPrefix), nil
}

// syncSkipRule folds the base-values synchronization into the first operator
// round (Prop. 2). Soundness guard: filtered bases never qualify — a detail
// row can match a group whose selection-passing witnesses all live at other
// sites (see distrib.CanSkipBaseSync).
type syncSkipRule struct{}

func (syncSkipRule) Name() string { return "sync-skip" }

func (syncSkipRule) Applies(c *Context) (bool, string, error) {
	q := c.Query()
	if c.plan.LocalPrefix > 0 {
		return false, "local prefix already folds the base sync", nil
	}
	if distrib.CanSkipBaseSync(q) {
		return true, "", nil
	}
	switch {
	case len(q.Ops) == 0:
		return false, "no operators", nil
	case q.Base.Where != nil:
		return false, "filtered base: Prop. 2 entailment is unsound", nil
	default:
		return false, "first operator does not entail the base key linkage", nil
	}
}

func (syncSkipRule) Apply(c *Context) (string, error) {
	c.plan.SkipBaseSync = true
	return "base sync folded into MD1 (Prop. 2)", nil
}

// groupReduceCoordRule derives the Thm. 4 coordinator-side reduction
// predicates ¬ψ_i: the coordinator ships each site only the base tuples the
// site can contribute to.
type groupReduceCoordRule struct{}

func (groupReduceCoordRule) Name() string { return "group-reduce-coord" }

func (groupReduceCoordRule) Applies(c *Context) (bool, string, error) {
	if c.plan.FullLocal {
		return false, "fully local plan ships no base fragments", nil
	}
	if len(c.Query().Ops) == 0 {
		return false, "no operators", nil
	}
	return true, "", nil
}

func (groupReduceCoordRule) Apply(c *Context) (string, error) {
	p := c.plan
	xs, err := c.XSchemas()
	if err != nil {
		return "", err
	}
	dist := c.Catalog.Distribution(p.Query.Base.Detail)
	p.Reducers = make([][]distrib.ReductionPred, len(p.Query.Ops))
	derived := 0
	for k, op := range p.Query.Ops {
		if k < p.LocalPrefix {
			continue // evaluated locally; nothing is shipped
		}
		opDist := dist
		if op.Detail != p.Query.Base.Detail {
			opDist = c.Catalog.Distribution(op.Detail)
			if opDist != nil && opDist.NumSites != c.NumSites {
				return "", fmt.Errorf("plan: catalog describes %d sites for %q, executing on %d",
					opDist.NumSites, op.Detail, c.NumSites)
			}
		}
		preds, ok, err := distrib.GroupReducers(op, xs[k], opDist)
		if err != nil {
			return "", err
		}
		if ok {
			p.Reducers[k] = preds
			derived++
		}
	}
	return fmt.Sprintf("reduction predicates for %d of %d operator round(s)", derived, len(p.Query.Ops)), nil
}

// groupReduceSiteRule sets the distribution-independent Prop. 1 guard: sites
// return only groups with |RNG| > 0.
type groupReduceSiteRule struct{}

func (groupReduceSiteRule) Name() string { return "group-reduce-site" }

func (groupReduceSiteRule) Applies(c *Context) (bool, string, error) {
	start := c.plan.LocalPrefix
	if start == 0 && c.plan.SkipBaseSync {
		start = 1
	}
	if len(c.Query().Ops) <= start {
		return false, "no coordinator-driven operator rounds to guard", nil
	}
	return true, "", nil
}

func (groupReduceSiteRule) Apply(c *Context) (string, error) {
	c.plan.Guard = true
	return "sites return only groups with |RNG| > 0 (Prop. 1)", nil
}
