package plan

import (
	"strings"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/distrib"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

var flowSchemas = gmdj.Schemas{
	"Flow": relation.MustSchema(
		relation.Column{Name: "SAS", Kind: relation.KindInt},
		relation.Column{Name: "DAS", Kind: relation.KindInt},
		relation.Column{Name: "NB", Kind: relation.KindInt},
	),
}

func flowCatalog(n int) *distrib.Catalog {
	filters := make([]distrib.SiteFilter, n)
	for i := range filters {
		filters[i] = distrib.IntRange{Lo: int64(i * 100), Hi: int64(i*100 + 99)}
	}
	return distrib.NewCatalog(&distrib.Distribution{
		Relation: "Flow",
		NumSites: n,
		Attrs:    []distrib.AttrInfo{{Attr: "SAS", Filters: filters, Disjoint: true}},
	})
}

func opWith(name, cond string) gmdj.Operator {
	return gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{{
		Aggs: []agg.Spec{{Func: agg.Count, As: name}},
		Cond: expr.MustParse(cond),
	}}}
}

// chainQuery: MD2 depends on MD1's output (non-coalescible), both linked on
// the partition attribute.
func chainQuery() gmdj.Query {
	return gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}},
		Ops: []gmdj.Operator{
			opWith("c1", "B.SAS = R.SAS && B.DAS = R.DAS"),
			opWith("c2", "B.SAS = R.SAS && B.DAS = R.DAS && R.NB >= B.c1"),
		},
	}
}

// independentQuery: MD2 independent of MD1 (coalescible).
func independentQuery() gmdj.Query {
	return gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}},
		Ops: []gmdj.Operator{
			opWith("c1", "B.SAS = R.SAS && B.DAS = R.DAS"),
			opWith("c2", "B.SAS = R.SAS && B.DAS = R.DAS && R.NB > 5"),
		},
	}
}

func TestOptionsString(t *testing.T) {
	if None().String() != "none" {
		t.Errorf("None = %q", None().String())
	}
	s := All().String()
	for _, frag := range []string{"coalesce", "group-reduce-site", "group-reduce-coord", "sync-reduce"} {
		if !strings.Contains(s, frag) {
			t.Errorf("All() missing %q: %s", frag, s)
		}
	}
}

func TestBaselinePlan(t *testing.T) {
	p, err := New(chainQuery(), flowSchemas, nil, 4, None())
	if err != nil {
		t.Fatal(err)
	}
	if p.Rounds() != 3 { // base + 2 operators
		t.Errorf("Rounds = %d, want 3", p.Rounds())
	}
	if p.FullLocal || p.SkipBaseSync || p.Merges != 0 || p.Reducers != nil {
		t.Errorf("baseline plan has optimizations: %+v", p)
	}
	if len(p.XSchemas) != 3 {
		t.Errorf("XSchemas = %d", len(p.XSchemas))
	}
}

func TestCoalescePlan(t *testing.T) {
	p, err := New(independentQuery(), flowSchemas, nil, 4, Options{Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Merges != 1 || len(p.Query.Ops) != 1 {
		t.Errorf("coalescing: merges=%d ops=%d", p.Merges, len(p.Query.Ops))
	}
	if p.Rounds() != 2 { // base + 1 coalesced operator
		t.Errorf("Rounds = %d", p.Rounds())
	}
	// Dependent chain must not merge.
	p, err = New(chainQuery(), flowSchemas, nil, 4, Options{Coalesce: true})
	if err != nil || p.Merges != 0 {
		t.Errorf("dependent chain merged: %d, %v", p.Merges, err)
	}
}

func TestSyncReducePlan(t *testing.T) {
	cat := flowCatalog(4)
	p, err := New(chainQuery(), flowSchemas, cat, 4, Options{SyncReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.FullLocal || p.Rounds() != 1 {
		t.Errorf("FullLocal=%v Rounds=%d, want full-local single round", p.FullLocal, p.Rounds())
	}
	// Without a catalog, Cor. 1 cannot apply, but Prop. 2 still folds the
	// base sync (its test is distribution-independent).
	p, err = New(chainQuery(), flowSchemas, nil, 4, Options{SyncReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.FullLocal || !p.SkipBaseSync || p.Rounds() != 2 {
		t.Errorf("no-catalog sync reduce: FullLocal=%v Skip=%v Rounds=%d",
			p.FullLocal, p.SkipBaseSync, p.Rounds())
	}
	// A query not keyed on partition-linked columns gets no reduction.
	q := gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "Flow", Cols: []string{"DAS"}},
		Ops:  []gmdj.Operator{opWith("c1", "B.DAS = R.NB")},
	}
	p, err = New(q, flowSchemas, cat, 4, Options{SyncReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.FullLocal || p.SkipBaseSync {
		t.Error("unaligned query must not sync-reduce")
	}
}

func TestGroupReducePlan(t *testing.T) {
	cat := flowCatalog(4)
	p, err := New(chainQuery(), flowSchemas, cat, 4, Options{GroupReduceCoord: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Reducers == nil || p.Reducers[0] == nil || p.Reducers[1] == nil {
		t.Fatalf("reducers missing: %v", p.Reducers)
	}
	if len(p.Reducers[0]) != 4 {
		t.Errorf("reducers per site = %d", len(p.Reducers[0]))
	}
	// Site 0 holds SAS in [0,99]: keeps 50, drops 150.
	keep, err := p.Reducers[0][0](relation.Tuple{relation.NewInt(50), relation.NewInt(0)})
	if err != nil || !keep {
		t.Errorf("reducer keep: %v %v", keep, err)
	}
	keep, _ = p.Reducers[0][0](relation.Tuple{relation.NewInt(150), relation.NewInt(0)})
	if keep {
		t.Error("reducer must drop out-of-range group")
	}
	// FullLocal plans skip reducer computation.
	p, err = New(chainQuery(), flowSchemas, cat, 4, All())
	if err != nil {
		t.Fatal(err)
	}
	if !p.FullLocal || p.Reducers != nil {
		t.Errorf("full-local plan should not compute reducers: %+v", p.Reducers)
	}
	// Without distribution knowledge, no reducers.
	p, err = New(chainQuery(), flowSchemas, nil, 4, Options{GroupReduceCoord: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Reducers[0] != nil {
		t.Error("no catalog must mean no reducers")
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := New(chainQuery(), flowSchemas, nil, 0, None()); err == nil {
		t.Error("zero sites must error")
	}
	// Catalog/deployment mismatch.
	if _, err := New(chainQuery(), flowSchemas, flowCatalog(8), 4, None()); err == nil {
		t.Error("site-count mismatch must error")
	}
	// Invalid query.
	bad := chainQuery()
	bad.Base.Cols = []string{"zz"}
	if _, err := New(bad, flowSchemas, nil, 4, None()); err == nil {
		t.Error("invalid query must error")
	}
}

func TestDescribe(t *testing.T) {
	cat := flowCatalog(4)
	p, err := New(chainQuery(), flowSchemas, cat, 4, All())
	if err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	for _, frag := range []string{"4 site(s)", "full local", "rounds: 1"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe missing %q:\n%s", frag, d)
		}
	}
	p, _ = New(chainQuery(), flowSchemas, nil, 4, Options{SyncReduce: true, GroupReduceSite: true})
	d = p.Describe()
	if !strings.Contains(d, "Prop. 2") || !strings.Contains(d, "guard: true") {
		t.Errorf("Describe:\n%s", d)
	}
}

func TestKeys(t *testing.T) {
	p, err := New(chainQuery(), flowSchemas, nil, 2, None())
	if err != nil {
		t.Fatal(err)
	}
	if k := p.Keys(); len(k) != 2 || k[0] != "SAS" {
		t.Errorf("Keys = %v", k)
	}
}

// Conditions are simplified before analysis: a redundant "true &&" prefix
// must not hide the key links from the sync-reduction analysis.
func TestPlanSimplifiesConditions(t *testing.T) {
	q := gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}},
		Ops: []gmdj.Operator{{Detail: "Flow", Vars: []gmdj.GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "c"}},
			Cond: expr.MustParse("true && (B.SAS = R.SAS && (false || B.DAS = R.DAS))"),
		}}}},
	}
	cat := flowCatalog(4)
	p, err := New(q, flowSchemas, cat, 4, Options{SyncReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.FullLocal {
		t.Errorf("simplification must expose the key links; plan:\n%s", p.Describe())
	}
	if got := p.Query.Ops[0].Vars[0].Cond.String(); got != "((B.SAS = R.SAS) && (B.DAS = R.DAS))" {
		t.Errorf("condition not simplified: %s", got)
	}
	// The caller's query is untouched.
	if q.Ops[0].Vars[0].Cond.String() == p.Query.Ops[0].Vars[0].Cond.String() {
		t.Error("input query was mutated")
	}
}
