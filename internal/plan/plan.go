// Package plan implements Egil, the Skalla query planner: it takes a complex
// GMDJ expression, the distribution catalog, and a rule selection, and
// produces the distributed evaluation plan executed by the coordinator
// (internal/core).
//
// Since Egil v2, planning is a rule pipeline: each paper optimization is an
// independent Rule (rules.go) driven to a fixpoint by a deterministic
// multi-pass driver (driver.go), with per-rule Δcost accounting under a
// communication CostModel (cost.go) and a canonical plan fingerprint
// (fingerprint.go). The registered rules, in canonical order:
//
//   - coalesce: merge adjacent independent MD operators (Sect. 4.3);
//   - local-prefix: evaluate a partition-aligned operator prefix locally
//     with one synchronization (Thm. 5 / Cor. 1);
//   - sync-skip: fold the base-values sync into the first operator round
//     (Prop. 2; unsound on filtered bases, guarded);
//   - group-reduce-coord: distribution-aware group reduction — per-operator,
//     per-site coordinator-side predicates selecting the base fragment each
//     site needs (Thm. 4);
//   - group-reduce-site: the distribution-independent guard flag (Prop. 1),
//     applied by the sites at execution time.
//
// The legacy Options booleans (the switch set of the paper's Sect. 5
// experiments) remain as a compatibility shim over rule selection; new
// callers use Compile with a Selection — including ModeAuto, which picks the
// rule subset per query by estimated (rounds, bytes down/up).
package plan

import (
	"fmt"
	"strings"

	"skalla/internal/distrib"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// Options are the optimization switches studied in the paper's Sect. 5
// experiments. The zero value disables everything (the baseline plans).
// Options are a compatibility shim: each boolean selects pipeline rules per
// OptionsSelection.
type Options struct {
	// Coalesce merges adjacent independent MD operators (Fig. 3).
	Coalesce bool
	// GroupReduceSite is distribution-independent group reduction: sites
	// return only groups with |RNG| > 0 (Prop. 1; the site-side half of
	// Fig. 2).
	GroupReduceSite bool
	// GroupReduceCoord is distribution-aware group reduction: the
	// coordinator ships each site only the base tuples it can contribute to
	// (Thm. 4; the coordinator-side half of Fig. 2).
	GroupReduceCoord bool
	// SyncReduce enables the synchronization reductions of Prop. 2 and
	// Cor. 1 (Fig. 4).
	SyncReduce bool
}

// None disables every optimization.
func None() Options { return Options{} }

// All enables every optimization.
func All() Options {
	return Options{Coalesce: true, GroupReduceSite: true, GroupReduceCoord: true, SyncReduce: true}
}

// String lists the enabled switches.
func (o Options) String() string {
	var on []string
	if o.Coalesce {
		on = append(on, "coalesce")
	}
	if o.GroupReduceSite {
		on = append(on, "group-reduce-site")
	}
	if o.GroupReduceCoord {
		on = append(on, "group-reduce-coord")
	}
	if o.SyncReduce {
		on = append(on, "sync-reduce")
	}
	if len(on) == 0 {
		return "none"
	}
	return strings.Join(on, ",")
}

// Plan is a compiled distributed evaluation plan.
type Plan struct {
	// Query is the (possibly coalesced) query to execute.
	Query gmdj.Query
	// Opts are the legacy switches the plan corresponds to: the caller's
	// booleans when compiled through New, or synthesized from the applied
	// rules when compiled through Compile.
	Opts Options
	// NumSites is the number of participating sites.
	NumSites int
	// Merges counts coalescing rewrites applied.
	Merges int
	// SkipBaseSync is Prop. 2: the base round is folded into the first
	// operator round (sites evaluate base+MD1 locally).
	SkipBaseSync bool
	// LocalPrefix is the number of leading operators evaluated entirely at
	// the sites with one synchronization at the end of the prefix (Thm. 5 /
	// Cor. 1 family; see distrib.LocalPrefixLen). Zero means no local
	// prefix.
	LocalPrefix int
	// FullLocal is Cor. 1: LocalPrefix covers the entire chain, so the
	// query runs in a single fully local round.
	FullLocal bool
	// Guard is Prop. 1: sites return only groups with |RNG| > 0 in
	// coordinator-driven operator rounds.
	Guard bool
	// XSchemas[k] is the base-result structure schema after k operators.
	XSchemas []relation.Schema
	// Reducers[k][site] is the Thm. 4 base-fragment predicate for operator k
	// at the given site; Reducers[k] == nil means no reduction derivable.
	Reducers [][]distrib.ReductionPred

	// Mode is the canonical selection the plan was compiled under
	// ("none", "all", "auto", or "rules=...").
	Mode string
	// Rules lists the applied rules in canonical order.
	Rules []string
	// Trace records, per selected rule, whether it applied and its estimated
	// cost delta (the explain trace).
	Trace []RuleTrace
	// Estimate is the plan's predicted communication cost.
	Estimate CostEstimate
	// Fingerprint is the plan's canonical identity: a stable hash over the
	// rewritten query, the applied rules, the site count, and the catalog
	// generation. Equal fingerprints mean equal execution.
	Fingerprint string
	// CatalogGen is the catalog generation the plan was compiled under (the
	// same value the fingerprint hashes, kept separately so executors can
	// re-check validity — e.g. before committing a shared result — without
	// recomputing the hash).
	CatalogGen uint64
	// Candidates is the number of plans enumerated (1 except in auto mode).
	Candidates int
}

// New compiles a plan from the legacy optimization switches. It is a shim
// over Compile with OptionsSelection(opts) and the default cost model. The
// schema source provides detail schemas (typically fetched once from a
// site); cat may be nil when no distribution knowledge exists, which
// disables the distribution-aware optimizations.
func New(q gmdj.Query, src gmdj.SchemaSource, cat *distrib.Catalog, numSites int, opts Options) (*Plan, error) {
	p, err := Compile(q, src, cat, numSites, OptionsSelection(opts), DefaultCostModel(stats.DefaultLAN()))
	if err != nil {
		return nil, err
	}
	// Preserve the caller's requested switches verbatim (a requested switch
	// may not have applied; Options-reading callers expect their input back).
	p.Opts = opts
	return p, nil
}

// Rounds predicts the number of synchronization rounds the plan needs: a
// local prefix of k operators costs one round plus one per remaining
// operator; Prop. 2 saves the base round; otherwise an m-operator query uses
// m+1 rounds (Sect. 3.2).
func (p *Plan) Rounds() int {
	if p.LocalPrefix > 0 {
		return 1 + len(p.Query.Ops) - p.LocalPrefix
	}
	if p.SkipBaseSync {
		return len(p.Query.Ops)
	}
	return len(p.Query.Ops) + 1
}

// Keys returns the base key attributes K.
func (p *Plan) Keys() []string { return p.Query.Keys() }

// Describe renders a human-readable plan summary (the CLI's EXPLAIN output):
// the plan shape, then the per-rule trace with estimated cost deltas, then
// the per-round traffic estimates.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s: %d site(s), mode %s\n", p.Fingerprint, p.NumSites, p.Mode)
	fmt.Fprintf(&b, "  operators: %d (coalescing merges: %d)\n", len(p.Query.Ops), p.Merges)
	fmt.Fprintf(&b, "  synchronization rounds: %d\n", p.Rounds())
	switch {
	case p.FullLocal:
		b.WriteString("  sync reduction: full local evaluation (Cor. 1)\n")
	case p.LocalPrefix > 0:
		fmt.Fprintf(&b, "  sync reduction: MD1..MD%d evaluated locally (Thm. 5 prefix)\n", p.LocalPrefix)
	case p.SkipBaseSync:
		b.WriteString("  sync reduction: base sync folded into MD1 (Prop. 2)\n")
	}
	for k := range p.Query.Ops {
		reduced := p.Reducers != nil && k < len(p.Reducers) && p.Reducers[k] != nil
		fmt.Fprintf(&b, "  MD%d: coordinator-side group reduction: %v, site-side guard: %v\n",
			k+1, reduced, p.Guard)
	}
	for _, t := range p.Trace {
		if t.Applied {
			fmt.Fprintf(&b, "  rule %-18s applied: %s (est %+d round(s), %+d B)\n",
				t.Rule, t.Detail, t.DeltaRounds, t.DeltaBytes)
		} else {
			fmt.Fprintf(&b, "  rule %-18s skipped: %s\n", t.Rule, t.Detail)
		}
	}
	fmt.Fprintf(&b, "  estimated cost: %s\n", p.Estimate)
	for _, r := range p.Estimate.PerRound {
		fmt.Fprintf(&b, "    round %-16s est %d B down, %d B up\n", r.Name, r.BytesDown, r.BytesUp)
	}
	return b.String()
}

// DescribeExecution renders the per-round estimated vs. measured traffic
// after a run — the calibration view the coordinator CLI appends to explain
// output when metrics are available.
func (p *Plan) DescribeExecution(m *stats.Metrics) string {
	var b strings.Builder
	b.WriteString("rounds (estimated vs. actual):\n")
	for _, rc := range p.CompareRounds(m) {
		fmt.Fprintf(&b, "  %-16s est %d B down / %d B up, actual %d B down / %d B up\n",
			rc.Name, rc.EstBytesDown, rc.EstBytesUp, rc.ActualBytesDown, rc.ActualBytesUp)
	}
	return b.String()
}

// simplifyQuery returns a copy of the query with every condition passed
// through expr.Simplify. The input query is not modified.
func simplifyQuery(q gmdj.Query) gmdj.Query {
	out := q
	if q.Base.Where != nil {
		out.Base.Where = expr.Simplify(q.Base.Where)
	}
	out.Ops = make([]gmdj.Operator, len(q.Ops))
	for i, op := range q.Ops {
		vars := make([]gmdj.GroupVar, len(op.Vars))
		for j, v := range op.Vars {
			vars[j] = gmdj.GroupVar{Aggs: v.Aggs, Cond: expr.Simplify(v.Cond)}
		}
		out.Ops[i] = gmdj.Operator{Detail: op.Detail, Vars: vars}
	}
	return out
}
