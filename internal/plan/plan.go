// Package plan implements Egil, the Skalla query planner: it takes a complex
// GMDJ expression, the distribution catalog, and a set of optimization
// switches, and produces the distributed evaluation plan executed by the
// coordinator (internal/core). Planning applies, in order:
//
//  1. coalescing of adjacent independent MD operators (Sect. 4.3),
//  2. the synchronization-reduction analyses — Proposition 2 (fold the
//     base-values sync into the first operator round) and Corollary 1
//     (evaluate the whole chain locally, one synchronization),
//  3. distribution-aware group reduction (Theorem 4): per-operator, per-site
//     coordinator-side predicates selecting the base fragment each site needs,
//  4. the distribution-independent guard flag (Proposition 1), applied by the
//     sites at execution time.
package plan

import (
	"fmt"
	"strings"

	"skalla/internal/distrib"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

// Options are the optimization switches studied in the paper's Sect. 5
// experiments. The zero value disables everything (the baseline plans).
type Options struct {
	// Coalesce merges adjacent independent MD operators (Fig. 3).
	Coalesce bool
	// GroupReduceSite is distribution-independent group reduction: sites
	// return only groups with |RNG| > 0 (Prop. 1; the site-side half of
	// Fig. 2).
	GroupReduceSite bool
	// GroupReduceCoord is distribution-aware group reduction: the
	// coordinator ships each site only the base tuples it can contribute to
	// (Thm. 4; the coordinator-side half of Fig. 2).
	GroupReduceCoord bool
	// SyncReduce enables the synchronization reductions of Prop. 2 and
	// Cor. 1 (Fig. 4).
	SyncReduce bool
}

// None disables every optimization.
func None() Options { return Options{} }

// All enables every optimization.
func All() Options {
	return Options{Coalesce: true, GroupReduceSite: true, GroupReduceCoord: true, SyncReduce: true}
}

// String lists the enabled switches.
func (o Options) String() string {
	var on []string
	if o.Coalesce {
		on = append(on, "coalesce")
	}
	if o.GroupReduceSite {
		on = append(on, "group-reduce-site")
	}
	if o.GroupReduceCoord {
		on = append(on, "group-reduce-coord")
	}
	if o.SyncReduce {
		on = append(on, "sync-reduce")
	}
	if len(on) == 0 {
		return "none"
	}
	return strings.Join(on, ",")
}

// Plan is a compiled distributed evaluation plan.
type Plan struct {
	// Query is the (possibly coalesced) query to execute.
	Query gmdj.Query
	// Opts are the switches the plan was compiled with.
	Opts Options
	// NumSites is the number of participating sites.
	NumSites int
	// Merges counts coalescing rewrites applied.
	Merges int
	// SkipBaseSync is Prop. 2: the base round is folded into the first
	// operator round (sites evaluate base+MD1 locally).
	SkipBaseSync bool
	// LocalPrefix is the number of leading operators evaluated entirely at
	// the sites with one synchronization at the end of the prefix (Thm. 5 /
	// Cor. 1 family; see distrib.LocalPrefixLen). Zero means no local
	// prefix.
	LocalPrefix int
	// FullLocal is Cor. 1: LocalPrefix covers the entire chain, so the
	// query runs in a single fully local round.
	FullLocal bool
	// XSchemas[k] is the base-result structure schema after k operators.
	XSchemas []relation.Schema
	// Reducers[k][site] is the Thm. 4 base-fragment predicate for operator k
	// at the given site; Reducers[k] == nil means no reduction derivable.
	Reducers [][]distrib.ReductionPred
}

// New compiles a plan. The schema source provides detail schemas (typically
// fetched once from a site); cat may be nil when no distribution knowledge
// exists, which disables the distribution-aware optimizations.
func New(q gmdj.Query, src gmdj.SchemaSource, cat *distrib.Catalog, numSites int, opts Options) (*Plan, error) {
	if numSites <= 0 {
		return nil, fmt.Errorf("plan: numSites = %d", numSites)
	}
	if err := q.Validate(src); err != nil {
		return nil, err
	}
	// Distribution knowledge must describe the same deployment.
	if dist := cat.Distribution(q.Base.Detail); dist != nil && dist.NumSites != numSites {
		return nil, fmt.Errorf("plan: catalog describes %d sites for %q, executing on %d",
			dist.NumSites, q.Base.Detail, numSites)
	}

	p := &Plan{Opts: opts, NumSites: numSites}

	p.Query = q
	if opts.Coalesce {
		cq, merges, err := gmdj.Coalesce(q, src)
		if err != nil {
			return nil, err
		}
		p.Query, p.Merges = cq, merges
	}
	// Simplify every condition before the distribution analyses and before
	// shipping anything: constant folding and logical-identity elimination
	// shrink the wire plans and can expose equality links (e.g. a front end
	// emitting "true && B.k = R.k") to the Sect. 4 analyses.
	p.Query = simplifyQuery(p.Query)

	xs, err := gmdj.XSchemas(p.Query, src)
	if err != nil {
		return nil, err
	}
	p.XSchemas = xs

	if opts.SyncReduce {
		p.LocalPrefix = distrib.LocalPrefixLen(p.Query, cat)
		p.FullLocal = len(p.Query.Ops) > 0 && p.LocalPrefix == len(p.Query.Ops)
		if p.LocalPrefix == 0 {
			p.SkipBaseSync = distrib.CanSkipBaseSync(p.Query)
		}
	}

	if opts.GroupReduceCoord && !p.FullLocal {
		dist := cat.Distribution(p.Query.Base.Detail)
		p.Reducers = make([][]distrib.ReductionPred, len(p.Query.Ops))
		for k, op := range p.Query.Ops {
			if k < p.LocalPrefix {
				continue // evaluated locally; nothing is shipped
			}
			opDist := dist
			if op.Detail != p.Query.Base.Detail {
				opDist = cat.Distribution(op.Detail)
				if opDist != nil && opDist.NumSites != numSites {
					return nil, fmt.Errorf("plan: catalog describes %d sites for %q, executing on %d",
						opDist.NumSites, op.Detail, numSites)
				}
			}
			preds, ok, err := distrib.GroupReducers(op, xs[k], opDist)
			if err != nil {
				return nil, err
			}
			if ok {
				p.Reducers[k] = preds
			}
		}
	}
	return p, nil
}

// Rounds predicts the number of synchronization rounds the plan needs: a
// local prefix of k operators costs one round plus one per remaining
// operator; Prop. 2 saves the base round; otherwise an m-operator query uses
// m+1 rounds (Sect. 3.2).
func (p *Plan) Rounds() int {
	if p.LocalPrefix > 0 {
		return 1 + len(p.Query.Ops) - p.LocalPrefix
	}
	if p.SkipBaseSync {
		return len(p.Query.Ops)
	}
	return len(p.Query.Ops) + 1
}

// Keys returns the base key attributes K.
func (p *Plan) Keys() []string { return p.Query.Keys() }

// Describe renders a human-readable plan summary (the CLI's EXPLAIN output).
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d site(s), options [%s]\n", p.NumSites, p.Opts)
	fmt.Fprintf(&b, "  operators: %d (coalescing merges: %d)\n", len(p.Query.Ops), p.Merges)
	fmt.Fprintf(&b, "  synchronization rounds: %d\n", p.Rounds())
	switch {
	case p.FullLocal:
		b.WriteString("  sync reduction: full local evaluation (Cor. 1)\n")
	case p.LocalPrefix > 0:
		fmt.Fprintf(&b, "  sync reduction: MD1..MD%d evaluated locally (Thm. 5 prefix)\n", p.LocalPrefix)
	case p.SkipBaseSync:
		b.WriteString("  sync reduction: base sync folded into MD1 (Prop. 2)\n")
	}
	for k := range p.Query.Ops {
		reduced := p.Reducers != nil && k < len(p.Reducers) && p.Reducers[k] != nil
		fmt.Fprintf(&b, "  MD%d: coordinator-side group reduction: %v, site-side guard: %v\n",
			k+1, reduced, p.Opts.GroupReduceSite)
	}
	return b.String()
}

// simplifyQuery returns a copy of the query with every condition passed
// through expr.Simplify. The input query is not modified.
func simplifyQuery(q gmdj.Query) gmdj.Query {
	out := q
	if q.Base.Where != nil {
		out.Base.Where = expr.Simplify(q.Base.Where)
	}
	out.Ops = make([]gmdj.Operator, len(q.Ops))
	for i, op := range q.Ops {
		vars := make([]gmdj.GroupVar, len(op.Vars))
		for j, v := range op.Vars {
			vars[j] = gmdj.GroupVar{Aggs: v.Aggs, Cond: expr.Simplify(v.Cond)}
		}
		out.Ops[i] = gmdj.Operator{Detail: op.Detail, Vars: vars}
	}
	return out
}
