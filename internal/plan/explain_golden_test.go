package plan

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"skalla/internal/distrib"
	"skalla/internal/stats"
)

var updateExplain = flag.Bool("update", false, "rewrite testdata/explain_*.golden from the current Describe output")

// goldenCatalog is flowCatalog plus cardinality statistics, so the golden
// fixtures pin the cost model's estimate lines, not just the rule trace.
func goldenCatalog(n int) *distrib.Catalog {
	filters := make([]distrib.SiteFilter, n)
	for i := range filters {
		filters[i] = distrib.IntRange{Lo: int64(i * 100), Hi: int64(i*100 + 99)}
	}
	return distrib.NewCatalog(&distrib.Distribution{
		Relation: "Flow",
		NumSites: n,
		Attrs: []distrib.AttrInfo{
			{Attr: "SAS", Filters: filters, Disjoint: true, Distinct: 400},
			{Attr: "DAS", Distinct: 50},
		},
		TotalRows: 20000,
	})
}

// TestExplainGolden pins the complete Describe() output — plan header,
// fingerprint, per-rule trace, and estimated cost — for each planner mode
// against committed fixtures. Regenerate with:
//
//	go test ./internal/plan -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name string
		sel  Selection
	}{
		{"none", SelectNone()},
		{"all", SelectAll()},
		{"auto", SelectAuto()},
	}
	cat := goldenCatalog(4)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Compile(chainQuery(), flowSchemas, cat, 4, tc.sel, DefaultCostModel(stats.DefaultLAN()))
			if err != nil {
				t.Fatal(err)
			}
			got := p.Describe()
			path := filepath.Join("testdata", "explain_"+tc.name+".golden")
			if *updateExplain {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if got != string(want) {
				t.Errorf("Describe() drifted from %s (regenerate with -update if intended)\n-- got --\n%s-- want --\n%s", path, got, want)
			}
		})
	}
}
