package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

// bigFlowRel builds an integer-valued Flow partition large enough that an
// evaluation is reliably mid-scan when a concurrent LoadSource lands.
func bigFlowRel(rows int) *relation.Relation {
	r := relation.New(flowSchema())
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Tuple{
			relation.NewInt(int64(i % 7)),
			relation.NewInt(int64(i % 3)),
			relation.NewInt(int64(i)),
		})
	}
	return r
}

// TestLoadSourceDuringEval loads new partition generations while queries are
// running (under -race this is the satellite regression for the mid-Scan
// source swap): every evaluation must see exactly one generation — never a
// mix — because the site snapshots its catalog once at evaluation start.
func TestLoadSourceDuringEval(t *testing.T) {
	ctx := context.Background()
	s := NewSite(0)
	if err := s.Load(ctx, "Flow", bigFlowRel(5000)); err != nil {
		t.Fatal(err)
	}
	q := gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SAS"}},
		Ops:  []gmdj.Operator{countOp("B.SAS = R.SAS")},
	}
	// Each generation has a distinct row count, so a consistent snapshot
	// yields c1 ≡ count(rows with that SAS) from exactly one generation.
	gens := []int{5000, 7000, 9100}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Load(ctx, "Flow", bigFlowRel(gens[i%len(gens)])); err != nil {
				t.Error(err)
				return
			}
			i++
			time.Sleep(time.Millisecond)
		}
	}()
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		x, err := s.EvalLocal(ctx, LocalRequest{Query: q, UpTo: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Sum of the per-group counts = total rows of whichever generation
		// the snapshot caught; a torn read between generations breaks this.
		ci := x.Schema.MustIndex("c")
		var total int64
		for _, row := range x.Tuples {
			total += row[ci].Int
		}
		ok := false
		for _, g := range gens {
			if total == int64(g) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("evaluation saw a torn catalog: counted %d rows, want one of %v", total, gens)
		}
	}
	close(stop)
	wg.Wait()
}

// slowLenSource wraps a RowSource with a Len that blocks until released —
// standing in for a disk-backed source whose row count does I/O.
type slowLenSource struct {
	gmdj.RowSource
	gate chan struct{}
}

func (s slowLenSource) Len() int {
	<-s.gate
	return s.RowSource.Len()
}

// TestTablesLenOutsideLock pins the inventory bugfix: a slow Len (disk I/O)
// must not block concurrent queries, which it did when Tables held the site
// RWMutex across the Len calls.
func TestTablesLenOutsideLock(t *testing.T) {
	ctx := context.Background()
	s := NewSite(0)
	if err := s.Load(ctx, "Flow", bigFlowRel(100)); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	slow := slowLenSource{RowSource: gmdj.SourceOf(bigFlowRel(10)), gate: gate}
	if err := s.LoadSource("Slow", slow); err != nil {
		t.Fatal(err)
	}
	inventoried := make(chan []TableInfo)
	go func() { inventoried <- s.Tables(ctx) }()
	// With Tables stuck inside Len, a query against the other relation must
	// still complete: it only needs the RLock the inventory no longer holds.
	done := make(chan error, 1)
	go func() {
		_, err := s.EvalBase(ctx, gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SAS"}})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query blocked behind inventory Len: Tables still holds the site lock during I/O")
	}
	close(gate)
	infos := <-inventoried
	if len(infos) != 2 {
		t.Fatalf("inventory = %v", infos)
	}
}

// TestSetWorkersEquivalence runs the same operator evaluation at several
// worker counts and demands byte-identical H output (integer aggregates are
// exact, and the engine's evaluation order is deterministic per worker count).
func TestSetWorkersEquivalence(t *testing.T) {
	ctx := context.Background()
	req := OperatorRequest{
		Base: baseFragment(0, 1, 2, 3, 4, 5, 6),
		Op:   countOp("B.SAS = R.SAS"),
		Keys: []string{"SAS"},
	}
	var want string
	for _, workers := range []int{1, 0, 2, 7} {
		s := NewSite(0)
		if err := s.Load(ctx, "Flow", bigFlowRel(12000)); err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		h, err := s.EvalOperator(ctx, req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		text := h.Format(1 << 20)
		if workers == 1 {
			want = text
			continue
		}
		if text != want {
			t.Fatalf("workers=%d H diverges from sequential\ngot:\n%.2000s\nwant:\n%.2000s", workers, text, want)
		}
	}
}
