package engine

import (
	"context"
	"strings"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

// batchMembers builds two dissimilar member requests over the same detail:
// different base fragments, conditions, aggregate lists, blocking, and guard
// settings.
func batchMembers() []OperatorRequest {
	minMax := gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{{
		Aggs: []agg.Spec{{Func: agg.Min, Arg: "NB", As: "lo"}, {Func: agg.Max, Arg: "NB", As: "hi"}},
		Cond: expr.MustParse("B.SAS = R.SAS && R.NB >= 6"),
	}}}
	return []OperatorRequest{
		{Base: baseFragment(1, 2, 3), Op: countOp("B.SAS = R.SAS"), Keys: []string{"SAS"}, BlockRows: 2},
		{Base: baseFragment(1, 3), Op: minMax, Keys: []string{"SAS"}, Guard: true},
	}
}

// TestEvalOperatorBatchMatchesSolo: each member's emitted blocks — content,
// order, and block boundaries — must be identical to running that member
// alone through EvalOperatorBlocks.
func TestEvalOperatorBatchMatchesSolo(t *testing.T) {
	rows := [][3]int64{{1, 1, 5}, {1, 2, 7}, {2, 1, 11}, {3, 1, 2}, {1, 1, 9}}
	reqs := batchMembers()

	solo := make([][]string, len(reqs))
	s1 := siteWithFlows(t, rows...)
	for m, req := range reqs {
		if err := s1.EvalOperatorBlocks(context.Background(), req, func(b *relation.Relation) error {
			solo[m] = append(solo[m], b.Format(1<<20))
			return nil
		}); err != nil {
			t.Fatalf("solo member %d: %v", m, err)
		}
	}

	s2 := siteWithFlows(t, rows...)
	got := make([][]string, len(reqs))
	if err := s2.EvalOperatorBatch(context.Background(), reqs, func(m int, b *relation.Relation) error {
		got[m] = append(got[m], b.Format(1<<20))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for m := range reqs {
		if len(got[m]) != len(solo[m]) {
			t.Fatalf("member %d: %d blocks, want %d", m, len(got[m]), len(solo[m]))
		}
		for i := range solo[m] {
			if got[m][i] != solo[m][i] {
				t.Fatalf("member %d block %d diverges from solo evaluation\ngot:\n%s\nwant:\n%s",
					m, i, got[m][i], solo[m][i])
			}
		}
	}
}

// TestEvalOperatorBatchValidation: empty batches are no-ops, members must all
// aggregate over the same detail relation, and member requests are validated
// like solo ones.
func TestEvalOperatorBatchValidation(t *testing.T) {
	s := siteWithFlows(t, [3]int64{1, 1, 5})
	if err := s.EvalOperatorBatch(context.Background(), nil, func(int, *relation.Relation) error {
		t.Fatal("empty batch emitted a block")
		return nil
	}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}

	mixed := batchMembers()
	mixed[1].Op.Detail = "Other"
	err := s.EvalOperatorBatch(context.Background(), mixed, func(int, *relation.Relation) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "mixes detail relations") {
		t.Fatalf("mixed-detail batch error = %v", err)
	}

	missing := batchMembers()
	missing[0].Base = nil
	if err := s.EvalOperatorBatch(context.Background(), missing, func(int, *relation.Relation) error { return nil }); err == nil {
		t.Fatal("nil member base accepted")
	}
}
