package engine

import (
	"context"
	"strings"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

func flowSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "SAS", Kind: relation.KindInt},
		relation.Column{Name: "DAS", Kind: relation.KindInt},
		relation.Column{Name: "NB", Kind: relation.KindInt},
	)
}

func flowRel(rows ...[3]int64) *relation.Relation {
	r := relation.New(flowSchema())
	for _, x := range rows {
		r.MustAppend(relation.Tuple{relation.NewInt(x[0]), relation.NewInt(x[1]), relation.NewInt(x[2])})
	}
	return r
}

func siteWithFlows(t *testing.T, rows ...[3]int64) *Site {
	t.Helper()
	s := NewSite(0)
	if err := s.Load(context.Background(), "Flow", flowRel(rows...)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadAndLookup(t *testing.T) {
	s := NewSite(3)
	if s.ID() != 3 {
		t.Errorf("ID = %d", s.ID())
	}
	if err := s.Load(context.Background(), "", flowRel()); err == nil {
		t.Error("empty name must error")
	}
	if err := s.Load(context.Background(), "Flow", nil); err == nil {
		t.Error("nil relation must error")
	}
	if err := s.Load(context.Background(), "Flow", flowRel([3]int64{1, 1, 1})); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(context.Background(), "Other", flowRel()); err != nil {
		t.Fatal(err)
	}
	names := s.TableNames()
	if len(names) != 2 || names[0] != "Flow" || names[1] != "Other" {
		t.Errorf("TableNames = %v", names)
	}
	if _, err := s.DetailSource("Missing"); err == nil {
		t.Error("missing relation must error")
	}
	if src, err := s.DetailSource("Flow"); err != nil || src.Len() != 1 {
		t.Errorf("DetailSource: %v %v", src, err)
	}
	if sch, err := s.DetailSchema(context.Background(), "Flow"); err != nil || !sch.Has("NB") {
		t.Errorf("DetailSchema: %v %v", sch, err)
	}
	if _, err := s.DetailSchema(context.Background(), "Missing"); err == nil {
		t.Error("missing schema must error")
	}
	bad := relation.New(relation.Schema{{Name: "", Kind: relation.KindInt}})
	if err := s.Load(context.Background(), "Bad", bad); err == nil {
		t.Error("invalid schema must be rejected")
	}
}

func TestEvalBase(t *testing.T) {
	s := siteWithFlows(t, [3]int64{1, 1, 5}, [3]int64{1, 1, 6}, [3]int64{2, 1, 7})
	b, err := s.EvalBase(context.Background(), gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SAS"}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("base rows = %d", b.Len())
	}
	if _, err := s.EvalBase(context.Background(), gmdj.BaseQuery{Detail: "Nope", Cols: []string{"x"}}); err == nil {
		t.Error("missing detail must error")
	}
}

func baseFragment(sasVals ...int64) *relation.Relation {
	r := relation.New(relation.MustSchema(relation.Column{Name: "SAS", Kind: relation.KindInt}))
	for _, v := range sasVals {
		r.MustAppend(relation.Tuple{relation.NewInt(v)})
	}
	return r
}

func countOp(cond string) gmdj.Operator {
	return gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{{
		Aggs: []agg.Spec{{Func: agg.Count, As: "c"}, {Func: agg.Sum, Arg: "NB", As: "s"}},
		Cond: expr.MustParse(cond),
	}}}
}

func TestEvalOperatorSubAggregates(t *testing.T) {
	s := siteWithFlows(t, [3]int64{1, 1, 5}, [3]int64{1, 2, 7}, [3]int64{2, 1, 11})
	h, err := s.EvalOperator(context.Background(), OperatorRequest{
		Base: baseFragment(1, 2, 3),
		Op:   countOp("B.SAS = R.SAS"),
		Keys: []string{"SAS"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 {
		t.Fatalf("H rows = %d, want 3 (no guard)\n%s", h.Len(), h)
	}
	if got := strings.Join(h.Schema.Names(), ","); got != "SAS,c,s" {
		t.Fatalf("H schema = %s", got)
	}
	byKey := map[int64][2]int64{}
	for _, row := range h.Tuples {
		var sum int64
		if !row[2].IsNull() {
			sum = row[2].Int
		}
		byKey[row[0].Int] = [2]int64{row[1].Int, sum}
	}
	if byKey[1] != [2]int64{2, 12} || byKey[2] != [2]int64{1, 11} || byKey[3] != [2]int64{0, 0} {
		t.Errorf("sub-aggregates = %v", byKey)
	}
	// SUM over an empty range must be NULL.
	for _, row := range h.Tuples {
		if row[0].Int == 3 && !row[2].IsNull() {
			t.Errorf("empty-range sum = %v, want NULL", row[2])
		}
	}
}

func TestEvalOperatorGuardReduction(t *testing.T) {
	s := siteWithFlows(t, [3]int64{1, 1, 5}, [3]int64{2, 1, 11})
	h, err := s.EvalOperator(context.Background(), OperatorRequest{
		Base:  baseFragment(1, 2, 3, 4),
		Op:    countOp("B.SAS = R.SAS"),
		Keys:  []string{"SAS"},
		Guard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Errorf("guarded H rows = %d, want 2 (Prop. 1 drops untouched groups)\n%s", h.Len(), h)
	}
}

func TestEvalOperatorGuardUsesOrOfAllVars(t *testing.T) {
	// A base row touched by only the second variable must be kept.
	s := siteWithFlows(t, [3]int64{5, 1, 100})
	op := gmdj.Operator{Detail: "Flow", Vars: []gmdj.GroupVar{
		{Aggs: []agg.Spec{{Func: agg.Count, As: "c1"}}, Cond: expr.MustParse("B.SAS = R.SAS")},
		{Aggs: []agg.Spec{{Func: agg.Count, As: "c2"}}, Cond: expr.MustParse("B.SAS = R.DAS")},
	}}
	h, err := s.EvalOperator(context.Background(), OperatorRequest{
		Base:  baseFragment(1, 2),
		Op:    op,
		Keys:  []string{"SAS"},
		Guard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 || h.Tuples[0][0].Int != 1 {
		t.Fatalf("guard OR semantics: %s", h)
	}
	// c1 = 0 but c2 = 1 for base value 1 (DAS = 1 matches).
	if h.Tuples[0][1].Int != 0 || h.Tuples[0][2].Int != 1 {
		t.Errorf("row = %v", h.Tuples[0])
	}
}

func TestEvalOperatorErrors(t *testing.T) {
	s := siteWithFlows(t, [3]int64{1, 1, 5})
	if _, err := s.EvalOperator(context.Background(), OperatorRequest{Op: countOp("true"), Keys: nil}); err == nil {
		t.Error("nil base must error")
	}
	if _, err := s.EvalOperator(context.Background(), OperatorRequest{
		Base: baseFragment(1), Op: countOp("B.SAS = R.SAS"), Keys: []string{"zz"},
	}); err == nil {
		t.Error("unknown key must error")
	}
	badOp := countOp("B.SAS = R.SAS")
	badOp.Detail = "Missing"
	if _, err := s.EvalOperator(context.Background(), OperatorRequest{Base: baseFragment(1), Op: badOp, Keys: []string{"SAS"}}); err == nil {
		t.Error("missing detail must error")
	}
	badCond := countOp("B.zz = R.SAS")
	if _, err := s.EvalOperator(context.Background(), OperatorRequest{Base: baseFragment(1), Op: badCond, Keys: []string{"SAS"}}); err == nil {
		t.Error("unbindable condition must error")
	}
}

func TestEvalLocalPrefix(t *testing.T) {
	s := siteWithFlows(t, [3]int64{1, 1, 10}, [3]int64{1, 1, 20}, [3]int64{2, 1, 6})
	q := gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SAS"}},
		Ops: []gmdj.Operator{
			{Detail: "Flow", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "c1"}, {Func: agg.Sum, Arg: "NB", As: "s1"}},
				Cond: expr.MustParse("B.SAS = R.SAS"),
			}}},
			{Detail: "Flow", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "c2"}},
				Cond: expr.MustParse("B.SAS = R.SAS && R.NB * B.c1 >= B.s1"),
			}}},
		},
	}
	// UpTo = 1: base + first operator only.
	x1, err := s.EvalLocal(context.Background(), LocalRequest{Query: q, UpTo: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !x1.Schema.Has("c1") || x1.Schema.Has("c2") {
		t.Errorf("X1 schema = %s", x1.Schema)
	}
	// UpTo = 2: whole chain; verify against the centralized oracle.
	x2, err := s.EvalLocal(context.Background(), LocalRequest{Query: q, UpTo: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalCentralX(q, s.Source(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !x2.EqualMultiset(want) {
		t.Errorf("EvalLocal != centralized:\n%s\nvs\n%s", x2, want)
	}
	// Out-of-range prefix.
	if _, err := s.EvalLocal(context.Background(), LocalRequest{Query: q, UpTo: 3}); err == nil {
		t.Error("UpTo out of range must error")
	}
	// Invalid query.
	bad := q
	bad.Base.Cols = []string{"zz"}
	if _, err := s.EvalLocal(context.Background(), LocalRequest{Query: bad, UpTo: 1}); err == nil {
		t.Error("invalid query must error")
	}
}

func TestSetUseHashEquivalence(t *testing.T) {
	rows := [][3]int64{{1, 1, 5}, {1, 2, 7}, {2, 1, 11}, {2, 2, 13}, {3, 1, 17}}
	s1 := NewSite(0)
	s2 := NewSite(0)
	_ = s1.Load(context.Background(), "Flow", flowRel(rows...))
	_ = s2.Load(context.Background(), "Flow", flowRel(rows...))
	s2.SetUseHash(false)
	req := OperatorRequest{
		Base: baseFragment(1, 2, 3, 4),
		Op:   countOp("B.SAS = R.SAS && R.NB > 6"),
		Keys: []string{"SAS"},
	}
	h1, err := s1.EvalOperator(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s2.EvalOperator(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !h1.EqualMultiset(h2) {
		t.Errorf("hash vs nested-loop engine mismatch:\n%s\nvs\n%s", h1, h2)
	}
}
