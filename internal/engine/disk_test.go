package engine

import (
	"context"
	"testing"

	"skalla/internal/gmdj"
	"skalla/internal/store"
)

// A site serving its partition from a disk-backed store must answer every
// request identically to one serving the same rows from memory.
func TestDiskBackedSiteEquivalence(t *testing.T) {
	rows := [][3]int64{
		{1, 1, 10}, {1, 1, 20}, {1, 2, 5}, {2, 1, 7}, {2, 1, 9}, {3, 2, 4},
	}
	rel := flowRel(rows...)

	mem := NewSite(0)
	if err := mem.Load(context.Background(), "Flow", rel); err != nil {
		t.Fatal(err)
	}
	disk := NewSite(0)
	tbl, err := store.CreateFrom(t.TempDir(), "Flow", rel, 2) // multiple segments
	if err != nil {
		t.Fatal(err)
	}
	if err := disk.LoadSource("Flow", tbl); err != nil {
		t.Fatal(err)
	}

	// Base query.
	bq := gmdj.BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}}
	memB, err := mem.EvalBase(context.Background(), bq)
	if err != nil {
		t.Fatal(err)
	}
	diskB, err := disk.EvalBase(context.Background(), bq)
	if err != nil {
		t.Fatal(err)
	}
	if !memB.EqualMultiset(diskB) {
		t.Errorf("base mismatch:\n%s\nvs\n%s", memB, diskB)
	}

	// Operator evaluation, both evaluation paths, with and without guard.
	req := OperatorRequest{
		Base: baseFragment(1, 2, 3, 4),
		Op:   countOp("B.SAS = R.SAS && R.NB > 4"),
		Keys: []string{"SAS"},
	}
	for _, useHash := range []bool{true, false} {
		mem.SetUseHash(useHash)
		disk.SetUseHash(useHash)
		for _, guard := range []bool{false, true} {
			r := req
			r.Guard = guard
			memH, err := mem.EvalOperator(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			diskH, err := disk.EvalOperator(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			if !memH.EqualMultiset(diskH) {
				t.Errorf("hash=%v guard=%v: H mismatch:\n%s\nvs\n%s", useHash, guard, memH, diskH)
			}
		}
	}
	mem.SetUseHash(true)
	disk.SetUseHash(true)

	// Local prefix evaluation.
	q := gmdj.Query{
		Base: bq,
		Ops: []gmdj.Operator{{Detail: "Flow", Vars: []gmdj.GroupVar{{
			Aggs: countOp("true").Vars[0].Aggs,
			Cond: countOp("B.SAS = R.SAS && B.DAS = R.DAS").Vars[0].Cond,
		}}}},
	}
	memX, err := mem.EvalLocal(context.Background(), LocalRequest{Query: q, UpTo: 1})
	if err != nil {
		t.Fatal(err)
	}
	diskX, err := disk.EvalLocal(context.Background(), LocalRequest{Query: q, UpTo: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !memX.EqualMultiset(diskX) {
		t.Errorf("local eval mismatch:\n%s\nvs\n%s", memX, diskX)
	}
}

func TestLoadSourceValidation(t *testing.T) {
	s := NewSite(0)
	if err := s.LoadSource("T", nil); err == nil {
		t.Error("nil source must error")
	}
	if err := s.LoadSource("", gmdj.SourceOf(flowRel())); err == nil {
		t.Error("empty name must error")
	}
}
