package engine

import (
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/relation"
)

// Per-request evaluation accounting. The gmdj evaluator stays context-free
// (its interfaces are pure catalog/scan surfaces), so per-query attribution
// happens here: detail sources are wrapped in recording adapters before they
// reach the evaluator, and the adapters charge the request's SiteRecorder as
// rows flow through. Sharded evaluation attributes rows per worker because
// the parallel scheduler always hands shard w to worker w — a recorded
// wrapper that tags each Split shard with its index therefore observes
// exactly the per-worker row assignment.

// recordedSource is the optional interface a RowSource implements to bind
// its own internals (e.g. store.Table segment reads) to a request recorder.
type recordedSource interface {
	Recorded(rec *obs.SiteRecorder) gmdj.RowSource
}

// instrument wraps src so scanned rows (and, when the source supports it,
// its internal I/O) are charged to rec. A nil recorder returns src unchanged.
func instrument(src gmdj.RowSource, rec *obs.SiteRecorder) gmdj.RowSource {
	if rec == nil {
		return src
	}
	if rs, ok := src.(recordedSource); ok {
		src = rs.Recorded(rec)
	}
	return recordedRows{src: src, rec: rec}
}

// recordedRows charges every scanned row to its worker index (0 for
// sequential scans; shard index after a Split).
type recordedRows struct {
	src    gmdj.RowSource
	rec    *obs.SiteRecorder
	worker int
}

// Schema implements the RowSource contract.
func (r recordedRows) Schema() relation.Schema { return r.src.Schema() }

// Len implements the RowSource contract.
func (r recordedRows) Len() int { return r.src.Len() }

// Scan implements the RowSource contract: one recorder add per scan, never
// per row, mirroring the process-wide counter discipline.
func (r recordedRows) Scan(fn func(relation.Tuple) error) error {
	rows := int64(0)
	err := r.src.Scan(func(t relation.Tuple) error {
		rows++
		return fn(t)
	})
	r.rec.AddWorkerRows(r.worker, rows)
	return err
}

// Split implements gmdj.SplittableSource by delegation: shard i is tagged
// with worker index i. A non-splittable underlying source declines, which
// sends the evaluator down its sequential path.
func (r recordedRows) Split(n int) []gmdj.RowSource {
	ss, ok := r.src.(gmdj.SplittableSource)
	if !ok {
		return nil
	}
	shards := ss.Split(n)
	if len(shards) <= 1 {
		return nil
	}
	r.rec.SetWorkers(len(shards))
	out := make([]gmdj.RowSource, len(shards))
	for i, sh := range shards {
		out[i] = recordedRows{src: sh, rec: r.rec, worker: i}
	}
	return out
}

// recordedSnapshot is a catalog snapshot whose detail sources come out
// instrumented — the DataSource the prefix evaluator sees under a profiled
// EvalLocal request.
type recordedSnapshot struct {
	snapshot
	rec *obs.SiteRecorder
}

// DetailSource implements gmdj.DataSource.
func (rs recordedSnapshot) DetailSource(name string) (gmdj.RowSource, error) {
	src, err := rs.snapshot.DetailSource(name)
	if err != nil {
		return nil, err
	}
	return instrument(src, rs.rec), nil
}
