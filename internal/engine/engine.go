// Package engine implements a Skalla local warehouse site: the per-site
// relational engine that stores one horizontal partition of each detail
// relation and evaluates the site-side pieces of Alg. GMDJDistribEval — base
// query fragments B_i, sub-aggregate relations H_i for one MD operator
// (optionally guard-filtered per Proposition 1), and fully local prefix
// evaluation for the synchronization-reduced plans of Proposition 2 and
// Corollary 1.
//
// The paper uses the Daytona DBMS in this role; any engine capable of
// evaluating GMDJ expressions locally is interchangeable (see DESIGN.md).
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/relation"
)

// Site is one local data warehouse. Partitions are served through the
// gmdj.RowSource interface, so a site can hold them in memory (Load) or on
// disk (LoadSource with a store.Table) interchangeably.
type Site struct {
	id int

	mu sync.RWMutex
	//skallavet:allow stringkey -- table catalog keyed by relation name: one lookup per evaluation, not per tuple
	tables  map[string]gmdj.RowSource
	useHash bool
	workers int
}

// NewSite creates an empty site.
func NewSite(id int) *Site {
	//skallavet:allow stringkey -- table catalog keyed by relation name: one lookup per evaluation, not per tuple
	return &Site{id: id, tables: make(map[string]gmdj.RowSource), useHash: true}
}

// ID returns the site identifier.
func (s *Site) ID() int { return s.id }

// SetUseHash toggles the hash-grouping fast path for local GMDJ evaluation
// (on by default); the nested-loop fallback is kept for cross-checking.
func (s *Site) SetUseHash(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.useHash = v
}

// SetWorkers sets the evaluation worker count: 0 (the default) picks
// automatically from GOMAXPROCS and partition size, 1 forces sequential
// evaluation, n > 1 requests exactly n scan shards (capped by what the
// sources can split into).
func (s *Site) SetWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers = n
}

// Load installs (or replaces) the local partition of a detail relation as an
// in-memory source.
func (s *Site) Load(_ context.Context, name string, rel *relation.Relation) error {
	if rel == nil {
		return fmt.Errorf("engine: nil relation %q", name)
	}
	return s.LoadSource(name, gmdj.SourceOf(rel))
}

// LoadSource installs (or replaces) the local partition of a detail relation
// behind any scannable source — e.g. a disk-backed store.Table, which keeps
// the site's memory bounded regardless of partition size.
func (s *Site) LoadSource(name string, src gmdj.RowSource) error {
	if name == "" {
		return fmt.Errorf("engine: empty relation name")
	}
	if src == nil {
		return fmt.Errorf("engine: nil source %q", name)
	}
	if err := src.Schema().Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[name] = src
	return nil
}

// TableNames lists the loaded relations, sorted.
func (s *Site) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableInfo describes one loaded relation for inventory listings.
type TableInfo struct {
	Name    string
	Rows    int
	Columns int
}

// Tables returns the site's relation inventory, sorted by name. Row counts
// are computed from a catalog snapshot outside the site lock: Len on a
// disk-backed source touches its own state, and doing that while holding the
// site mutex would block every concurrent query behind inventory I/O.
func (s *Site) Tables(_ context.Context) []TableInfo {
	snap := s.snapshot()
	out := make([]TableInfo, 0, len(snap.tables))
	for n, src := range snap.tables {
		out = append(out, TableInfo{Name: n, Rows: src.Len(), Columns: len(src.Schema())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// snapshot is an immutable view of the site taken under one RLock: the
// catalog (map copied, sources shared) plus the evaluation knobs. Evaluations
// resolve every detail relation against the snapshot, so a concurrent
// LoadSource can neither swap a RowSource out from under an in-flight scan
// nor let two resolutions of the same name observe different sources
// mid-query.
type snapshot struct {
	siteID int
	//skallavet:allow stringkey -- catalog snapshot keyed by relation name: one lookup per evaluation, not per tuple
	tables  map[string]gmdj.RowSource
	useHash bool
	workers int
}

func (s *Site) snapshot() snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	//skallavet:allow stringkey -- catalog snapshot keyed by relation name: one lookup per evaluation, not per tuple
	tables := make(map[string]gmdj.RowSource, len(s.tables))
	for n, src := range s.tables {
		tables[n] = src
	}
	return snapshot{siteID: s.id, tables: tables, useHash: s.useHash, workers: s.workers}
}

// DetailSource implements gmdj.DataSource over the snapshot.
func (sn snapshot) DetailSource(name string) (gmdj.RowSource, error) {
	src, ok := sn.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: site %d has no relation %q", sn.siteID, name)
	}
	return src, nil
}

// DetailSchema implements gmdj.SchemaSource over the snapshot.
func (sn snapshot) DetailSchema(name string) (relation.Schema, error) {
	src, err := sn.DetailSource(name)
	if err != nil {
		return nil, err
	}
	return src.Schema(), nil
}

// DetailSource returns the local partition of a detail relation.
func (s *Site) DetailSource(name string) (gmdj.RowSource, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: site %d has no relation %q", s.id, name)
	}
	return src, nil
}

// DetailSchema implements transport.Backend. Catalog lookups are local map
// reads; the context is accepted for interface symmetry.
func (s *Site) DetailSchema(_ context.Context, name string) (relation.Schema, error) {
	src, err := s.DetailSource(name)
	if err != nil {
		return nil, err
	}
	return src.Schema(), nil
}

// source adapts the site to gmdj.DataSource: the gmdj evaluator's interfaces
// stay context-free (they are pure catalog/scan surfaces), so conformance
// goes through this adapter rather than the Backend-facing methods.
type source struct{ site *Site }

func (ss source) DetailSchema(name string) (relation.Schema, error) {
	src, err := ss.site.DetailSource(name)
	if err != nil {
		return nil, err
	}
	return src.Schema(), nil
}

func (ss source) DetailSource(name string) (gmdj.RowSource, error) {
	return ss.site.DetailSource(name)
}

// Source exposes the site's partitions as a gmdj.DataSource (planning and
// validation helpers program against that interface).
func (s *Site) Source() gmdj.DataSource { return source{site: s} }

// EvalBase computes the site's fragment B_i of the base-values relation.
func (s *Site) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	obs.EngineEvals.With("base").Inc()
	rec := obs.RecorderFrom(ctx)
	rec.SetWorkers(1)
	snap := s.snapshot()
	detail, err := snap.DetailSource(bq.Detail)
	if err != nil {
		return nil, err
	}
	return gmdj.EvalBaseWorkers(bq, instrument(detail, rec), snap.workers)
}

// OperatorRequest asks a site to evaluate one MD operator over its local
// partition against the shipped base-result fragment.
type OperatorRequest struct {
	// Base is the fragment of the base-result structure X shipped to the
	// site: the key attributes plus any previously computed aggregate
	// columns the operator's conditions reference.
	Base *relation.Relation
	// Op is the operator (one or more grouping variables).
	Op gmdj.Operator
	// Keys names the base key attributes K within Base's schema; the
	// returned H_i carries them so the coordinator can synchronize in
	// O(|H|) against its key index.
	Keys []string
	// Guard enables distribution-independent group reduction (Prop. 1):
	// only base rows with |RNG(b, R_i, θ_1 ∨ … ∨ θ_m)| > 0 are returned.
	Guard bool
	// BlockRows enables row blocking (Sect. 3.2 / classical distributed
	// optimization): H_i is returned in blocks of at most this many rows, so
	// the coordinator can synchronize early blocks while later ones are
	// still in flight. Zero or negative returns H_i as a single block.
	BlockRows int
}

// EvalOperator computes the site's sub-aggregate relation H_i for one MD
// operator: one row per (retained) base tuple, carrying the key attributes
// followed by the physical sub-aggregate columns of every grouping variable.
func (s *Site) EvalOperator(ctx context.Context, req OperatorRequest) (*relation.Relation, error) {
	var h *relation.Relation
	err := s.EvalOperatorBlocks(ctx, req, func(block *relation.Relation) error {
		if h == nil {
			h = block
			return nil
		}
		return h.Union(block)
	})
	if err != nil {
		return nil, err
	}
	return h, nil
}

// EvalOperatorBlocks is EvalOperator with row blocking: it emits H_i in
// blocks of at most req.BlockRows rows (a single block when BlockRows ≤ 0).
// Emit errors abort the evaluation. At least one (possibly empty) block is
// always emitted.
func (s *Site) EvalOperatorBlocks(ctx context.Context, req OperatorRequest, emit func(*relation.Relation) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	obs.EngineEvals.With("operator").Inc()
	rec := obs.RecorderFrom(ctx)
	rec.SetWorkers(1)
	if req.Base == nil {
		return fmt.Errorf("engine: operator request without base relation")
	}
	snap := s.snapshot()
	detail, err := snap.DetailSource(req.Op.Detail)
	if err != nil {
		return err
	}

	acc, err := gmdj.AccumulateOperatorWorkers(req.Base, req.Op, instrument(detail, rec), snap.useHash, snap.workers)
	if err != nil {
		return err
	}
	return emitHBlocks(ctx, rec, req, acc, emit)
}

// emitHBlocks streams one accumulated operator evaluation as H_i blocks:
// guard filtering, key projection and row blocking per the OperatorRequest.
// At least one (possibly empty) block is always emitted.
func emitHBlocks(ctx context.Context, rec *obs.SiteRecorder, req OperatorRequest, acc *gmdj.OperatorAccum, emit func(*relation.Relation) error) error {
	keyIdx, err := req.Base.Schema.Indexes(req.Keys)
	if err != nil {
		return err
	}
	physSchema, err := acc.PhysSchema()
	if err != nil {
		return err
	}
	hSchema, err := req.Base.Schema.Project(keyIdx).Concat(physSchema)
	if err != nil {
		return err
	}
	block := relation.New(hSchema)
	emitted := false
	flush := func() error {
		// Block boundaries are the cancellation points of a streamed
		// evaluation: a canceled coordinator stops the stream here instead of
		// computing every remaining block.
		if err := ctx.Err(); err != nil {
			return err
		}
		obs.EngineBlocks.Inc()
		rec.AddBlocks(1)
		if err := emit(block); err != nil {
			return err
		}
		emitted = true
		block = relation.New(hSchema)
		return nil
	}
	for i, br := range req.Base.Tuples {
		if req.Guard && !acc.Touched[i] {
			continue
		}
		row := make(relation.Tuple, 0, len(hSchema))
		for _, k := range keyIdx {
			row = append(row, br[k])
		}
		row = append(row, acc.PhysRow(i)...)
		block.Tuples = append(block.Tuples, row)
		if req.BlockRows > 0 && block.Len() >= req.BlockRows {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if block.Len() > 0 || !emitted {
		obs.EngineBlocks.Inc()
		rec.AddBlocks(1)
		return emit(block)
	}
	return nil
}

// EvalOperatorBatch evaluates several operator requests that aggregate over
// the SAME detail relation with one scan of the local partition: every
// request's grouping variables are fed from a single shared pass (see
// gmdj.AccumulateOperatorsFanIn), then each member's H_i is emitted in member
// order, blocked per its own request. Each member's blocks are byte-identical
// to what its solo EvalOperatorBlocks evaluation would emit; the shared scan
// only changes how many times the detail rows are read. Any member's error
// aborts the whole batch — callers needing isolation fall back to per-member
// evaluation. One snapshot covers every member, so all of them observe the
// same generation of the detail relation.
func (s *Site) EvalOperatorBatch(ctx context.Context, reqs []OperatorRequest, emit func(member int, block *relation.Relation) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(reqs) == 0 {
		return nil
	}
	obs.EngineEvals.With("batch").Inc()
	rec := obs.RecorderFrom(ctx)
	rec.SetWorkers(1)
	jobs := make([]gmdj.OperatorJob, len(reqs))
	for i, req := range reqs {
		if req.Base == nil {
			return fmt.Errorf("engine: batch member %d without base relation", i)
		}
		if req.Op.Detail != reqs[0].Op.Detail {
			return fmt.Errorf("engine: batch mixes detail relations %q and %q", reqs[0].Op.Detail, req.Op.Detail)
		}
		jobs[i] = gmdj.OperatorJob{X: req.Base, Op: req.Op}
	}
	snap := s.snapshot()
	detail, err := snap.DetailSource(reqs[0].Op.Detail)
	if err != nil {
		return err
	}
	accs, err := gmdj.AccumulateOperatorsFanIn(jobs, instrument(detail, rec), snap.useHash, snap.workers)
	if err != nil {
		return err
	}
	for m, acc := range accs {
		if err := emitHBlocks(ctx, rec, reqs[m], acc, func(block *relation.Relation) error {
			return emit(m, block)
		}); err != nil {
			return err
		}
	}
	return nil
}

// LocalRequest asks a site to evaluate the base query and the first UpTo
// operators of a query entirely over its local partition, returning the
// intermediate base-result structure X_UpTo (base columns + physical +
// derived aggregate columns). This is the site-side of the synchronization
// reductions: UpTo = 1 folds the base sync into the first operator's round
// (Prop. 2); UpTo = len(Ops) evaluates the whole chain with one final
// synchronization (Cor. 1).
type LocalRequest struct {
	Query gmdj.Query
	UpTo  int
}

// EvalLocal evaluates a query prefix over the local partition. No guard
// filtering is applied: under synchronization reduction the returned rows
// are the sole carriers of group membership, so dropping untouched groups
// would lose them.
func (s *Site) EvalLocal(ctx context.Context, req LocalRequest) (*relation.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	obs.EngineEvals.With("local").Inc()
	rec := obs.RecorderFrom(ctx)
	rec.SetWorkers(1)
	// One snapshot covers validation and every evaluation stage: a concurrent
	// LoadSource cannot make the base query and a later operator see
	// different generations of the same detail relation.
	snap := s.snapshot()
	if err := req.Query.Validate(snap); err != nil {
		return nil, err
	}
	var ds gmdj.DataSource = snap
	if rec != nil {
		ds = recordedSnapshot{snapshot: snap, rec: rec}
	}
	return gmdj.EvalPrefixXWorkers(req.Query, ds, req.UpTo, snap.useHash, snap.workers)
}
