package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSeriesPerFamily caps the number of distinct label sets one metric family
// will materialize. Query IDs are unbounded over a daemon's lifetime; once the
// cap is reached, new label sets share a single overflow series whose label
// values all read "other", so exposition size stays bounded while totals stay
// correct.
const maxSeriesPerFamily = 1024

// overflowKey marks the shared overflow child inside a vector.
const overflowKey = "\x00overflow"

// labelSep joins label values into a child key; it cannot appear in values
// coming off the wire (values are escaped at render time, not at key time, so
// the separator just needs to be unlikely — the unit separator byte is).
const labelSep = "\x1f"

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic float64-valued gauge (stored as bit patterns, so
// Set/Value never lock). Ratios and Unix timestamps need it; integral
// quantities should prefer Gauge.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value (cumulative rendering happens at
// exposition time, matching the Prometheus le convention). Sum and max are
// tracked as float64 bit patterns updated by CAS, so Observe never locks.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 {
	m := math.Float64frombits(h.maxBits.Load())
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// interpolating linearly inside the containing bucket. Values beyond the last
// finite bound are reported as the observed max. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.Max()
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			est := lo + (hi-lo)*frac
			if mx := h.Max(); est > mx {
				est = mx
			}
			return est
		}
		cum += n
	}
	return h.Max()
}

// DurationBuckets spans 10µs to ~40s exponentially — the range of site
// compute, merge, and round times the evaluation measures.
var DurationBuckets = expBuckets(10e-6, 2.5, 17)

// ByteBuckets spans 64B to 1GiB in powers of four — message and frame sizes.
var ByteBuckets = expBuckets(64, 4, 13)

func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind discriminates family types for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloatGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindFloatGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one registered metric name: either a single unlabeled metric or a
// vector of children keyed by label values.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	single   any            // *Counter / *Gauge / *Histogram when unlabeled
	children map[string]any // label-joined key -> child metric
}

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	if len(f.children) >= maxSeriesPerFamily {
		key = overflowKey
		if m, ok := f.children[key]; ok {
			return m
		}
	}
	m = f.newMetric()
	f.children[key] = m
	return m
}

func (f *family) newMetric() any {
	switch f.kind {
	case kindCounter:
		return &Counter{}
	case kindGauge:
		return &Gauge{}
	case kindFloatGauge:
		return &FloatGauge{}
	default:
		return newHistogram(f.bounds)
	}
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on first
// use. The handle is stable: resolve once per call site, then Add freely.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// FloatGaugeVec is a family of float gauges distinguished by label values.
type FloatGaugeVec struct{ f *family }

// With returns the float gauge for the given label values.
func (v *FloatGaugeVec) With(values ...string) *FloatGauge { return v.f.child(values).(*FloatGauge) }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Families register once (usually at package init);
// re-registering a name returns the existing family when the shape matches
// and panics when it does not (a programming error, not a runtime condition).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: append([]string(nil), labels...), bounds: bounds}
	if len(labels) == 0 {
		f.single = f.newMetric()
	} else {
		f.children = make(map[string]any)
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).single.(*Counter)
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).single.(*Gauge)
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// FloatGauge registers (or fetches) an unlabeled float gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	return r.register(name, help, kindFloatGauge, nil, nil).single.(*FloatGauge)
}

// FloatGaugeVec registers (or fetches) a labeled float gauge family.
func (r *Registry) FloatGaugeVec(name, help string, labels ...string) *FloatGaugeVec {
	return &FloatGaugeVec{r.register(name, help, kindFloatGauge, labels, nil)}
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (nil uses DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return r.register(name, help, kindHistogram, nil, bounds).single.(*Histogram)
}

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labels, bounds)}
}

// WriteText renders every family in the Prometheus text exposition format
// (version 0.0.4), families and series in deterministic sorted order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.single != nil {
			writeSeries(&b, f, "", f.single)
		} else {
			f.mu.RLock()
			keys := make([]string, 0, len(f.children))
			for k := range f.children {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			children := make([]any, len(keys))
			for i, k := range keys {
				children[i] = f.children[k]
			}
			f.mu.RUnlock()
			for i, k := range keys {
				writeSeries(&b, f, labelString(f.labels, k), children[i])
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// labelString renders {a="x",b="y"} from a joined child key.
func labelString(labels []string, key string) string {
	values := strings.Split(key, labelSep)
	if key == overflowKey {
		values = make([]string, len(labels))
		for i := range values {
			values[i] = "other"
		}
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes \, " and newlines exactly as the exposition format wants.
		fmt.Fprintf(&b, "%s=%q", l, v)
	}
	b.WriteByte('}')
	return b.String()
}

func writeSeries(b *strings.Builder, f *family, labels string, m any) {
	switch mm := m.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labels, mm.Value())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labels, mm.Value())
	case *FloatGauge:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labels, formatFloat(mm.Value()))
	case *Histogram:
		cum := int64(0)
		for i, bound := range mm.bounds {
			cum += mm.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketLabels(labels, formatFloat(bound)), cum)
		}
		cum += mm.counts[len(mm.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketLabels(labels, "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labels, formatFloat(mm.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labels, mm.Count())
	}
}

// bucketLabels splices le="bound" into an existing label set.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
