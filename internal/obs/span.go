package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// The span model structures one distributed evaluation as the coordinator
// sees it: a query span containing one round span per synchronization round,
// each round collecting the site calls that fed it. Spans do three jobs at
// once — record registry metrics (rounds, sync-merge durations, query
// counts), emit structured logs through the package logger, and fan events
// out to attached Observers (the hook execution tracers adapt to).

// SiteCall is one completed coordinator↔site exchange as observed by a span.
// It mirrors stats.Call field-for-field without importing it, so obs stays
// dependency-free.
type SiteCall struct {
	Site      int
	BytesDown int
	BytesUp   int
	RowsDown  int
	RowsUp    int
	Compute   time.Duration
	// Start/Elapsed are the coordinator-observed wall-clock envelope of the
	// exchange, measured by the transport; Attempt is the 1-based retry
	// attempt that produced it. Zero values mean the transport predates the
	// profiler (the line format ignores them).
	Start   time.Time
	Elapsed time.Duration
	Attempt int
	// Breakdown is the site-side cost breakdown shipped back in the wire
	// response (nil from sites that do not report one).
	Breakdown *SiteBreakdown
}

// EventKind discriminates span events.
type EventKind uint8

const (
	// EventQueryStart opens a query span.
	EventQueryStart EventKind = iota
	// EventRoundStart opens a round span.
	EventRoundStart
	// EventSiteCall reports one completed site exchange within a round.
	EventSiteCall
	// EventRoundEnd closes a round span with its aggregates.
	EventRoundEnd
	// EventQueryEnd closes a query span.
	EventQueryEnd
	// EventSiteRetry reports one failed site-call attempt that the
	// coordinator is about to retry (the round continues).
	EventSiteRetry
)

// Event is one span notification. Fields are populated per kind: Round/XRows
// for round starts, Call for site calls, the aggregate fields and Calls for
// round ends, Elapsed/Err for query ends.
type Event struct {
	Kind      EventKind
	QueryID   string
	Round     string
	XRows     int
	Call      SiteCall
	Calls     []SiteCall
	Site      int // site index for retry events
	Attempt   int // failed attempt number for retry events (1-based)
	BytesDown int
	BytesUp   int
	CoordTime time.Duration
	Elapsed   time.Duration
	Err       string
}

// Observer receives span events. Calls arrive in span order from the
// coordinator's control loop; implementations that share state across
// coordinators must synchronize internally.
type Observer interface {
	ObserveSpan(Event)
}

// QuerySpan is one distributed evaluation in progress.
type QuerySpan struct {
	id    string
	start time.Time

	mu        sync.Mutex
	observers []Observer
	rounds    int

	roundCounter *Counter
	mergeHist    *Histogram
}

// StartQuery opens a query span: the active-query gauge rises, a debug log
// line records the start, and observers receive EventQueryStart.
func StartQuery(id string, observers ...Observer) *QuerySpan {
	q := &QuerySpan{
		id:           id,
		start:        time.Now(),
		observers:    append([]Observer(nil), observers...),
		roundCounter: CoordRounds.With(QueryLabel(id)),
		mergeHist:    CoordSyncMerge.With(QueryLabel(id)),
	}
	CoordActiveQueries.Add(1)
	Logger().Debug("query start", "query", id)
	q.emit(Event{Kind: EventQueryStart, QueryID: id})
	return q
}

// ID returns the span's query ID.
func (q *QuerySpan) ID() string { return q.id }

// AddObserver attaches an observer for subsequent events.
func (q *QuerySpan) AddObserver(o Observer) {
	if o == nil {
		return
	}
	q.mu.Lock()
	q.observers = append(q.observers, o)
	q.mu.Unlock()
}

func (q *QuerySpan) emit(e Event) {
	q.mu.Lock()
	observers := q.observers
	q.mu.Unlock()
	for _, o := range observers {
		o.ObserveSpan(e)
	}
}

// StartRound opens a round span. xRows is the number of base-structure rows
// the coordinator holds entering the round.
func (q *QuerySpan) StartRound(name string, xRows int) *RoundSpan {
	q.mu.Lock()
	q.rounds++
	q.mu.Unlock()
	q.emit(Event{Kind: EventRoundStart, QueryID: q.id, Round: name, XRows: xRows})
	return &RoundSpan{q: q, name: name, start: time.Now()}
}

// End closes the query span: counters by status, the active gauge falls, and
// the summary is logged (info on success, warn on error).
func (q *QuerySpan) End(err error) {
	elapsed := time.Since(q.start)
	status := "ok"
	errText := ""
	if err != nil {
		status, errText = "error", err.Error()
	}
	CoordQueries.With(status).Inc()
	CoordActiveQueries.Add(-1)
	q.mu.Lock()
	rounds := q.rounds
	q.mu.Unlock()
	if err != nil {
		Logger().Warn("query end", "query", q.id, "rounds", rounds, "elapsed", elapsed, "err", errText)
	} else {
		Logger().Info("query end", "query", q.id, "rounds", rounds, "elapsed", elapsed)
	}
	q.emit(Event{Kind: EventQueryEnd, QueryID: q.id, Elapsed: elapsed, Err: errText})
}

// RoundSpan is one synchronization round in progress.
type RoundSpan struct {
	q     *QuerySpan
	name  string
	start time.Time

	mu    sync.Mutex
	calls []SiteCall
	merge time.Duration
}

// Call records one completed site exchange.
func (r *RoundSpan) Call(c SiteCall) {
	r.mu.Lock()
	r.calls = append(r.calls, c)
	r.mu.Unlock()
	r.q.emit(Event{Kind: EventSiteCall, QueryID: r.q.id, Round: r.name, Call: c})
}

// Retry records one failed site-call attempt that the coordinator will retry:
// the retry counter increments, a warn line is logged, and observers receive
// EventSiteRetry (so traces show each attempt, not just the final outcome).
// c carries whatever the transport measured before the attempt failed (the
// zero SiteCall when it failed before any measurement).
func (r *RoundSpan) Retry(site, attempt int, c SiteCall, err error) {
	CoordRetries.With(strconv.Itoa(site)).Inc()
	Logger().Warn("site call retry", "query", r.q.id, "round", r.name,
		"site", site, "attempt", attempt, "err", err)
	c.Site, c.Attempt = site, attempt
	r.q.emit(Event{Kind: EventSiteRetry, QueryID: r.q.id, Round: r.name,
		Site: site, Attempt: attempt, Call: c, Err: err.Error()})
}

// ObserveMerge records one coordinator synchronization step (an H-block
// merge, a local-X merge, or the base union) into the sync-merge histogram.
func (r *RoundSpan) ObserveMerge(d time.Duration) {
	r.q.mergeHist.ObserveDuration(d)
	r.mu.Lock()
	r.merge += d
	r.mu.Unlock()
}

// End closes the round: the round counter increments and observers receive
// the aggregates.
func (r *RoundSpan) End(coordTime time.Duration) {
	r.q.roundCounter.Inc()
	r.mu.Lock()
	calls := r.calls
	r.mu.Unlock()
	var down, up int
	for _, c := range calls {
		down += c.BytesDown
		up += c.BytesUp
	}
	Logger().Debug("round end", "query", r.q.id, "round", r.name,
		"sites", len(calls), "bytes_down", down, "bytes_up", up,
		"coord", coordTime, "elapsed", time.Since(r.start))
	r.q.emit(Event{Kind: EventRoundEnd, QueryID: r.q.id, Round: r.name,
		Calls: calls, BytesDown: down, BytesUp: up, CoordTime: coordTime})
}

// LineObserver renders span events as single-line text, one Write per event
// under a mutex, so lines from interleaved queries (or coordinators sharing a
// writer) can never split mid-line.
type LineObserver struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLineObserver wraps a writer.
func NewLineObserver(w io.Writer) *LineObserver { return &LineObserver{w: w} }

// ObserveSpan implements Observer.
func (l *LineObserver) ObserveSpan(e Event) {
	line := RenderEvent(e)
	if line == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, line)
}

// RenderEvent formats one event as the canonical single-line trace text
// ("" for events the line format omits). The format is shared with
// core.WriterTracer, which predates the span model.
func RenderEvent(e Event) string {
	switch e.Kind {
	case EventRoundStart:
		return fmt.Sprintf("round %s: start (X holds %d rows)\n", e.Round, e.XRows)
	case EventSiteCall:
		c := e.Call
		return fmt.Sprintf("round %s: site %d  down %dB/%d rows  up %dB/%d rows  compute %s\n",
			e.Round, c.Site, c.BytesDown, c.RowsDown, c.BytesUp, c.RowsUp,
			c.Compute.Round(10*time.Microsecond))
	case EventRoundEnd:
		return fmt.Sprintf("round %s: done  %dB down, %dB up, coordinator %s\n",
			e.Round, e.BytesDown, e.BytesUp, e.CoordTime.Round(10*time.Microsecond))
	case EventSiteRetry:
		return fmt.Sprintf("round %s: site %d attempt %d failed (%s), retrying\n",
			e.Round, e.Site, e.Attempt, e.Err)
	default:
		return ""
	}
}
