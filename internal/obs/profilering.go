package obs

import (
	"sort"
	"sync"
)

// profileStripes is the lock-stripe count of a ProfileRing. Queries hash to
// a stripe by ID, so concurrent coordinators publishing profiles contend on
// different locks; 8 stripes cover any realistic coordinator parallelism.
const profileStripes = 8

// DefaultProfileCapacity is the retention of the process-wide Profiles ring.
const DefaultProfileCapacity = 64

// Profiles is the process-wide profile ring the /debug/queries endpoints
// serve. Coordinators publish every finished query's profile here.
var Profiles = NewProfileRing(DefaultProfileCapacity)

// ProfileRing retains the last N query profiles in a lock-striped ring
// buffer: each stripe is an independent fixed-size ring guarded by its own
// mutex, so publication never serializes queries on one lock and retention
// stays O(capacity) regardless of query volume.
type ProfileRing struct {
	stripes [profileStripes]profileStripe
}

type profileStripe struct {
	mu   sync.Mutex
	buf  []*QueryProfile
	next int // next slot to overwrite
	seq  uint64
}

// NewProfileRing creates a ring retaining at least capacity profiles
// (rounded up so every stripe holds the same number of slots).
func NewProfileRing(capacity int) *ProfileRing {
	if capacity < profileStripes {
		capacity = profileStripes
	}
	per := (capacity + profileStripes - 1) / profileStripes
	r := &ProfileRing{}
	for i := range r.stripes {
		r.stripes[i].buf = make([]*QueryProfile, per)
	}
	return r
}

// stripeFor hashes a query ID to its stripe (FNV-1a, inlined to keep obs
// dependency-light).
func (r *ProfileRing) stripeFor(id string) *profileStripe {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return &r.stripes[h%profileStripes]
}

// Add publishes a profile, evicting the stripe's oldest entry when full.
func (r *ProfileRing) Add(p *QueryProfile) {
	if p == nil || p.QueryID == "" {
		return
	}
	s := r.stripeFor(p.QueryID)
	s.mu.Lock()
	s.buf[s.next] = p
	s.next = (s.next + 1) % len(s.buf)
	s.seq++
	s.mu.Unlock()
}

// Get returns the retained profile for a query ID (nil when evicted or never
// published). Only the owning stripe is locked.
func (r *ProfileRing) Get(id string) *QueryProfile {
	s := r.stripeFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Newest-first so a re-used ID resolves to the latest run.
	for i := 1; i <= len(s.buf); i++ {
		p := s.buf[(s.next-i+len(s.buf))%len(s.buf)]
		if p != nil && p.QueryID == id {
			return p
		}
	}
	return nil
}

// List returns every retained profile, newest start time first.
func (r *ProfileRing) List() []*QueryProfile {
	var out []*QueryProfile
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for _, p := range s.buf {
			if p != nil {
				out = append(out, p)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}
