package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// The package logger defaults to warnings-and-up on stderr so libraries can
// log through obs.Logger() without making tests and benchmarks noisy; daemons
// call SetupLogger to opt into info/debug and JSON output.
var defaultLogger atomic.Pointer[slog.Logger]

func init() {
	defaultLogger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})))
}

// Logger returns the process-wide structured logger.
func Logger() *slog.Logger { return defaultLogger.Load() }

// SetLogger replaces the process-wide logger (nil restores the quiet default).
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	defaultLogger.Store(l)
}

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// SetupLogger builds the shared daemon logger: leveled, text or JSON, tagged
// with the component name, and installed as both the obs package logger and
// the slog default (so stray slog calls elsewhere inherit it too).
func SetupLogger(component string, level string, json bool, w io.Writer) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h).With("component", component)
	SetLogger(l)
	slog.SetDefault(l)
	return l, nil
}
