package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHealthzTransitions(t *testing.T) {
	health := NewHealth()
	health.Register("partition")
	health.Register("listener")
	srv, err := ServeHTTP("127.0.0.1:0", NewRegistry(), health, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/healthz"

	code, body, _ := get(t, url)
	if code != http.StatusServiceUnavailable {
		t.Errorf("before readiness: status %d, want 503", code)
	}
	var payload struct {
		Status string          `json:"status"`
		Checks map[string]bool `json:"checks"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if payload.Status != "unavailable" || payload.Checks["partition"] {
		t.Errorf("payload = %+v", payload)
	}

	// One check ready is not enough.
	health.Set("partition", true)
	if code, _, _ := get(t, url); code != http.StatusServiceUnavailable {
		t.Errorf("partial readiness: status %d, want 503", code)
	}

	health.Set("listener", true)
	code, body, _ = get(t, url)
	if code != http.StatusOK {
		t.Errorf("ready: status %d, want 200", code)
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Status != "ok" || !payload.Checks["partition"] || !payload.Checks["listener"] {
		t.Errorf("payload = %+v", payload)
	}

	// Readiness can regress (e.g. listener closed during shutdown).
	health.Set("listener", false)
	if code, _, _ := get(t, url); code != http.StatusServiceUnavailable {
		t.Errorf("after regression: status %d, want 503", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ep_total", "endpoint test").Add(9)
	srv, err := ServeHTTP("127.0.0.1:0", reg, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, hdr := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(body, "ep_total 9") {
		t.Errorf("metrics body missing series:\n%s", body)
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv, err := ServeHTTP("127.0.0.1:0", NewRegistry(), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, _ := get(t, "http://"+srv.Addr()+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("pprof index status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Error("pprof index missing profile listing")
	}
}

func TestHealthVacuouslyReady(t *testing.T) {
	srv, err := ServeHTTP("127.0.0.1:0", NewRegistry(), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// No registered checks: an always-ready tracker is substituted.
	if code, _, _ := get(t, "http://"+srv.Addr()+"/healthz"); code != http.StatusOK {
		t.Errorf("status %d, want 200", code)
	}
}
