// Package obs is Skalla's observability layer: a dependency-free metrics
// registry (atomic counters, gauges, and fixed-bucket histograms with
// Prometheus text exposition), structured logging built on log/slog, a
// query/round/site-call span model that the coordinator drives and tracers
// adapt, and an opt-in HTTP endpoint surface (/metrics, /healthz, pprof) for
// the long-running daemons.
//
// The paper's evaluation (Sect. 5) is a measurement exercise — bytes shipped,
// rows per round, site versus coordinator time — and the communication-cost
// model of parallel query processing makes rounds and per-server load *the*
// cost metrics. This package makes those quantities live and queryable while
// a deployment serves, instead of only visible in end-of-query totals.
//
// Design constraints:
//
//   - Hot paths touch only atomics. Counters, gauges and histogram buckets
//     are lock-free; label resolution (a read-locked map lookup) happens once
//     per site call, never per row.
//   - No third-party dependencies: exposition is the Prometheus text format
//     written by hand, logging is the standard library's slog.
//   - Metric naming: skalla_<layer>_<quantity>_<unit>[_total], with layers
//     coord, transport, server, codec, store, engine. Cardinality-carrying
//     labels (query) are capped per family; overflowing series collapse into
//     a label value of "other".
package obs
