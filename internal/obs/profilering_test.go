package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func ringProfile(id string, start time.Time) *QueryProfile {
	return &QueryProfile{QueryID: id, Start: start, Elapsed: time.Millisecond}
}

func TestProfileRingGetAndList(t *testing.T) {
	r := NewProfileRing(16)
	base := time.Now()
	for i := 0; i < 10; i++ {
		r.Add(ringProfile(fmt.Sprintf("q-%d", i), base.Add(time.Duration(i)*time.Second)))
	}
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("q-%d", i)
		p := r.Get(id)
		if p == nil || p.QueryID != id {
			t.Fatalf("Get(%s) = %v", id, p)
		}
	}
	if r.Get("missing") != nil {
		t.Error("Get(missing) returned a profile")
	}
	list := r.List()
	if len(list) != 10 {
		t.Fatalf("List() returned %d profiles, want 10", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].Start.After(list[i-1].Start) {
			t.Fatalf("List() not newest-first at %d: %v after %v", i, list[i].Start, list[i-1].Start)
		}
	}
	// nil and anonymous profiles are not retained.
	r.Add(nil)
	r.Add(&QueryProfile{})
	if got := len(r.List()); got != 10 {
		t.Errorf("List() = %d after nil/empty adds, want 10", got)
	}
}

func TestProfileRingEvictsOldest(t *testing.T) {
	r := NewProfileRing(profileStripes) // one slot per stripe
	base := time.Now()
	// Two profiles on the same stripe: the second evicts the first.
	a, b := ringProfile("dup", base), ringProfile("dup", base.Add(time.Second))
	r.Add(a)
	r.Add(b)
	got := r.Get("dup")
	if got != b {
		t.Errorf("Get after eviction returned the older profile")
	}
}

func TestProfileRingReusedIDResolvesNewest(t *testing.T) {
	r := NewProfileRing(64)
	base := time.Now()
	r.Add(ringProfile("again", base))
	newest := ringProfile("again", base.Add(time.Minute))
	r.Add(newest)
	if got := r.Get("again"); got != newest {
		t.Errorf("Get(again) = %+v, want the newest publication", got)
	}
}

// TestProfileRingConcurrent hammers one ring from concurrent publishers and
// readers; run under -race it proves the stripe locking is sound.
func TestProfileRingConcurrent(t *testing.T) {
	r := NewProfileRing(DefaultProfileCapacity)
	base := time.Now()
	const writers, perWriter, readers = 8, 200, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Add(ringProfile(fmt.Sprintf("w%d-%d", w, i), base.Add(time.Duration(i))))
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.List()
				r.Get(fmt.Sprintf("w%d-%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.List()); got == 0 || got > DefaultProfileCapacity {
		t.Errorf("retained %d profiles, want 1..%d", got, DefaultProfileCapacity)
	}
}
