package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

var (
	buildInfo = Default.GaugeVec("skalla_build_info",
		"Build and runtime identity of this process; the value is constant 1 and the labels carry the information.",
		"version", "go_version", "os", "arch")
	processStart = Default.FloatGauge("skalla_process_start_time_seconds",
		"Unix time this process registered its build info (start of main), in seconds.")
)

// RegisterBuildInfo populates the build-info and process-start-time gauges.
// Daemons call it once at startup; the module version comes from the
// embedded build info ("(devel)" for plain source builds).
func RegisterBuildInfo() {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	buildInfo.With(version, runtime.Version(), runtime.GOOS, runtime.GOARCH).Set(1)
	processStart.Set(float64(time.Now().UnixNano()) / 1e9)
}
