package obs

import (
	"context"
	"sync"
	"time"
)

// The profile model is the stitched, per-query view of one distributed
// evaluation: the coordinator's rounds and site calls (from the span model)
// joined with the site-side breakdowns that ship back inside each wire
// response. Where the span model streams events as they happen, a
// QueryProfile is the complete record kept after the query ends — the thing
// /debug/queries serves and EXPLAIN ANALYZE-style tooling reads.

// SiteBreakdown is the site-side cost breakdown of one request, accumulated
// by a SiteRecorder while the site evaluates and returned in the wire
// response's trailing Profile field. All fields are totals for the one
// request, not process-lifetime counters.
type SiteBreakdown struct {
	// EvalNS is the site-side evaluation wall time in nanoseconds (the same
	// quantity as the response's ComputeNS, duplicated here so a breakdown is
	// self-contained).
	EvalNS int64
	// Workers is the effective parallel scan width (1 = sequential).
	Workers int
	// RowsScanned counts detail-relation rows scanned by GMDJ evaluation.
	RowsScanned int64
	// WorkerRows is RowsScanned split by worker index; skewed shard
	// assignments show up as an unbalanced slice.
	WorkerRows []int64
	// SegCacheReads / SegDiskReads count store segment loads by source.
	SegCacheReads int64
	SegDiskReads  int64
	// SegRowsLoaded counts rows decoded from disk segments.
	SegRowsLoaded int64
	// CodecBytes counts bytes produced by the site-side response encoder
	// (stream blocks for operator rounds, the relation payload otherwise).
	CodecBytes int64
	// Blocks counts H blocks emitted by operator evaluation.
	Blocks int64
}

// SiteRecorder accumulates one request's SiteBreakdown. It is carried in the
// request context on the site side; every method is safe on a nil receiver
// (recording is a no-op outside a profiled request) and safe for concurrent
// use by parallel evaluation workers.
type SiteRecorder struct {
	mu sync.Mutex
	b  SiteBreakdown
}

// NewSiteRecorder creates an empty recorder.
func NewSiteRecorder() *SiteRecorder { return &SiteRecorder{} }

// AddWorkerRows charges n scanned rows to a worker index.
func (r *SiteRecorder) AddWorkerRows(worker int, n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	for len(r.b.WorkerRows) <= worker {
		r.b.WorkerRows = append(r.b.WorkerRows, 0)
	}
	r.b.WorkerRows[worker] += n
	r.b.RowsScanned += n
	r.mu.Unlock()
}

// SetWorkers records the effective scan width (kept at the maximum seen, so
// a sequential follow-up pass does not erase a parallel one).
func (r *SiteRecorder) SetWorkers(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if n > r.b.Workers {
		r.b.Workers = n
	}
	r.mu.Unlock()
}

// AddSegRead charges one segment load; disk loads also charge decoded rows.
func (r *SiteRecorder) AddSegRead(disk bool, rows int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if disk {
		r.b.SegDiskReads++
		r.b.SegRowsLoaded += rows
	} else {
		r.b.SegCacheReads++
	}
	r.mu.Unlock()
}

// AddCodecBytes charges response-encoder output bytes.
func (r *SiteRecorder) AddCodecBytes(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.b.CodecBytes += n
	r.mu.Unlock()
}

// AddBlocks charges emitted H blocks.
func (r *SiteRecorder) AddBlocks(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.b.Blocks += n
	r.mu.Unlock()
}

// SetEval records the site-side evaluation wall time.
func (r *SiteRecorder) SetEval(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.b.EvalNS = d.Nanoseconds()
	r.mu.Unlock()
}

// Snapshot returns a copy of the accumulated breakdown (nil receiver yields
// the zero breakdown).
func (r *SiteRecorder) Snapshot() SiteBreakdown {
	if r == nil {
		return SiteBreakdown{}
	}
	r.mu.Lock()
	b := r.b
	b.WorkerRows = append([]int64(nil), r.b.WorkerRows...)
	r.mu.Unlock()
	return b
}

type recorderKey struct{}

// WithRecorder tags a context with a site recorder.
func WithRecorder(ctx context.Context, r *SiteRecorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, r)
}

// RecorderFrom extracts the site recorder (nil when untagged — every
// SiteRecorder method accepts nil, so callers record unconditionally).
func RecorderFrom(ctx context.Context) *SiteRecorder {
	r, _ := ctx.Value(recorderKey{}).(*SiteRecorder)
	return r
}

type roundKey struct{}

// WithRound tags a context with the coordinator round name, so site calls
// issued under it can stamp the round into the wire request.
func WithRound(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, roundKey{}, name)
}

// RoundFrom extracts the round name ("" when untagged).
func RoundFrom(ctx context.Context) string {
	name, _ := ctx.Value(roundKey{}).(string)
	return name
}

type attemptKey struct{}

// WithAttempt tags a context with the 1-based retry attempt number.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// AttemptFrom extracts the attempt number (1 when untagged: a call outside
// the retry loop is its own first attempt).
func AttemptFrom(ctx context.Context) int {
	if a, ok := ctx.Value(attemptKey{}).(int); ok && a > 0 {
		return a
	}
	return 1
}

// CallProfile is one coordinator↔site exchange inside a profile: the
// coordinator-observed envelope (timing, bytes, rows) plus the site's own
// breakdown. Failed attempts that were retried appear as their own entries
// with Failed set; their traffic is excluded from round totals, so retries
// never double-count bytes.
type CallProfile struct {
	Site      int
	Attempt   int
	Failed    bool
	Err       string `json:",omitempty"`
	Start     time.Time
	Elapsed   time.Duration
	BytesDown int
	BytesUp   int
	RowsDown  int
	RowsUp    int
	Compute   time.Duration
	Breakdown *SiteBreakdown `json:",omitempty"`
}

// RoundProfile is one synchronization round inside a profile. Byte/row
// totals cover successful calls only. EstBytesDown/Up carry the cost model's
// per-round prediction when the plan had one (zero otherwise).
type RoundProfile struct {
	Name         string
	Start        time.Time
	Elapsed      time.Duration
	XRows        int
	BytesDown    int
	BytesUp      int
	RowsDown     int
	RowsUp       int
	CoordTime    time.Duration
	EstBytesDown int64
	EstBytesUp   int64
	Calls        []CallProfile
}

// ProfilePlan is the planner identity attached to a profile: which compiled
// plan ran and what the cost model predicted for it.
type ProfilePlan struct {
	Fingerprint  string
	Mode         string
	Rules        []string
	EstRounds    int
	EstBytesDown int64
	EstBytesUp   int64
}

// QueryProfile is the complete stitched record of one distributed query.
type QueryProfile struct {
	QueryID string
	Start   time.Time
	Elapsed time.Duration
	// QueueTime is how long the query waited in the coordinator's admission
	// queue before execution started (zero when admission control is off or
	// a slot was free immediately). Not included in Elapsed, which covers the
	// execution span only.
	QueueTime time.Duration `json:",omitempty"`
	// Shared marks how the shared-work layer served this query: "leader" (ran
	// the distributed rounds on behalf of followers), "follower" (awaited a
	// concurrent leader's result), "cache" (super-aggregate result cache hit,
	// zero site rounds). Empty for an unshared execution.
	Shared string `json:",omitempty"`
	Err    string `json:",omitempty"`
	Plan   ProfilePlan
	Rounds []RoundProfile
}

// BytesDown returns the query's total coordinator→sites bytes (successful
// calls only — the same quantity stats.Metrics reports).
func (p *QueryProfile) BytesDown() int {
	n := 0
	for i := range p.Rounds {
		n += p.Rounds[i].BytesDown
	}
	return n
}

// BytesUp returns the query's total sites→coordinator bytes.
func (p *QueryProfile) BytesUp() int {
	n := 0
	for i := range p.Rounds {
		n += p.Rounds[i].BytesUp
	}
	return n
}

// ProfileBuilder is an Observer that stitches span events into a
// QueryProfile. Round lifecycle events arrive in order from the
// coordinator's control loop; retry events arrive concurrently from per-site
// goroutines, so the builder locks around every mutation.
type ProfileBuilder struct {
	mu sync.Mutex
	p  QueryProfile
}

// NewProfileBuilder creates a builder for one query span.
func NewProfileBuilder() *ProfileBuilder { return &ProfileBuilder{} }

// ObserveSpan implements Observer.
func (b *ProfileBuilder) ObserveSpan(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch e.Kind {
	case EventQueryStart:
		b.p.QueryID = e.QueryID
		b.p.Start = time.Now()
	case EventRoundStart:
		b.p.Rounds = append(b.p.Rounds, RoundProfile{
			Name: e.Round, Start: time.Now(), XRows: e.XRows,
		})
	case EventSiteCall:
		if r := b.currentRound(e.Round); r != nil {
			r.Calls = append(r.Calls, callProfile(e.Call, false))
			r.BytesDown += e.Call.BytesDown
			r.BytesUp += e.Call.BytesUp
			r.RowsDown += e.Call.RowsDown
			r.RowsUp += e.Call.RowsUp
		}
	case EventSiteRetry:
		if r := b.currentRound(e.Round); r != nil {
			c := callProfile(e.Call, true)
			c.Err = e.Err
			// An attempt that failed before the transport stamped a call
			// still identifies itself through the event envelope.
			c.Site, c.Attempt = e.Site, e.Attempt
			r.Calls = append(r.Calls, c)
		}
	case EventRoundEnd:
		if r := b.currentRound(e.Round); r != nil {
			r.Elapsed = time.Since(r.Start)
			r.CoordTime = e.CoordTime
		}
	case EventQueryEnd:
		b.p.Elapsed = e.Elapsed
		b.p.Err = e.Err
	}
}

// currentRound returns the newest round matching name (nil when no round is
// open — a stray event is dropped rather than misfiled).
func (b *ProfileBuilder) currentRound(name string) *RoundProfile {
	for i := len(b.p.Rounds) - 1; i >= 0; i-- {
		if b.p.Rounds[i].Name == name {
			return &b.p.Rounds[i]
		}
	}
	return nil
}

func callProfile(c SiteCall, failed bool) CallProfile {
	return CallProfile{
		Site:      c.Site,
		Attempt:   c.Attempt,
		Failed:    failed,
		Start:     c.Start,
		Elapsed:   c.Elapsed,
		BytesDown: c.BytesDown,
		BytesUp:   c.BytesUp,
		RowsDown:  c.RowsDown,
		RowsUp:    c.RowsUp,
		Compute:   c.Compute,
		Breakdown: c.Breakdown,
	}
}

// Profile returns the stitched profile. Call after the span ends; the result
// is a snapshot the caller owns (rounds/calls are copied).
func (b *ProfileBuilder) Profile() *QueryProfile {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.p
	p.Rounds = make([]RoundProfile, len(b.p.Rounds))
	for i := range b.p.Rounds {
		p.Rounds[i] = b.p.Rounds[i]
		p.Rounds[i].Calls = append([]CallProfile(nil), b.p.Rounds[i].Calls...)
	}
	return &p
}
