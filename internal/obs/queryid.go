package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Query IDs are generated at the coordinator when an evaluation starts and
// propagated in the wire protocol's request frames, so site-side logs and
// metrics correlate with coordinator rounds across processes.

type queryIDKey struct{}

var queryIDSeq atomic.Uint64

// NewQueryID returns a short process-unique query identifier: 6 random bytes
// hex-encoded, with a sequence-number fallback if the system randomness
// source fails.
func NewQueryID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("q%08d", queryIDSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithQueryID tags a context with a query ID.
func WithQueryID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, queryIDKey{}, id)
}

// QueryIDFrom extracts the query ID from a context ("" when untagged).
func QueryIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(queryIDKey{}).(string)
	return id
}
