package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Trace-event export: a QueryProfile rendered in the Chrome trace-event JSON
// format (the "JSON Array Format" with a traceEvents wrapper), which Perfetto
// and chrome://tracing load directly. The coordinator is pid 0; each site is
// pid site+1; every site call gets its own tid so overlapping calls (parallel
// sites, retried attempts) render as separate timeline tracks.

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents renders p as trace-event JSON. Timestamps are relative to
// the query start; durations are clamped to at least 1µs so zero-length
// spans stay visible in viewers.
func WriteTraceEvents(w io.Writer, p *QueryProfile) error {
	us := func(d time.Duration) int64 {
		if v := d.Microseconds(); v > 0 {
			return v
		}
		return 1
	}
	since := func(t time.Time) int64 {
		if t.IsZero() || t.Before(p.Start) {
			return 0
		}
		return t.Sub(p.Start).Microseconds()
	}

	events := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "coordinator"},
	}}
	sites := map[int]bool{}
	for i := range p.Rounds {
		for _, c := range p.Rounds[i].Calls {
			if !sites[c.Site] {
				sites[c.Site] = true
				events = append(events, traceEvent{
					Name: "process_name", Ph: "M", Pid: c.Site + 1, Tid: 0,
					Args: map[string]any{"name": fmt.Sprintf("site %d", c.Site)},
				})
			}
		}
	}

	events = append(events, traceEvent{
		Name: "query " + p.QueryID, Ph: "X", Ts: 0, Dur: us(p.Elapsed), Pid: 0, Tid: 0,
		Args: map[string]any{
			"fingerprint": p.Plan.Fingerprint,
			"mode":        p.Plan.Mode,
			"rules":       p.Plan.Rules,
			"err":         p.Err,
		},
	})

	tid := 1
	for i := range p.Rounds {
		r := &p.Rounds[i]
		events = append(events, traceEvent{
			Name: "round " + r.Name, Ph: "X", Ts: since(r.Start), Dur: us(r.Elapsed),
			Pid: 0, Tid: 0,
			Args: map[string]any{
				"x_rows":     r.XRows,
				"bytes_down": r.BytesDown,
				"bytes_up":   r.BytesUp,
				"coord_us":   r.CoordTime.Microseconds(),
			},
		})
		for _, c := range r.Calls {
			name := fmt.Sprintf("%s site %d", r.Name, c.Site)
			if c.Attempt > 1 || c.Failed {
				name = fmt.Sprintf("%s attempt %d", name, c.Attempt)
			}
			if c.Failed {
				name += " (failed)"
			}
			args := map[string]any{
				"bytes_down": c.BytesDown,
				"bytes_up":   c.BytesUp,
				"rows_down":  c.RowsDown,
				"rows_up":    c.RowsUp,
				"compute_us": c.Compute.Microseconds(),
				"failed":     c.Failed,
			}
			if c.Err != "" {
				args["err"] = c.Err
			}
			if b := c.Breakdown; b != nil {
				args["site_eval_us"] = b.EvalNS / 1e3
				args["site_workers"] = b.Workers
				args["site_rows_scanned"] = b.RowsScanned
				args["site_worker_rows"] = b.WorkerRows
				args["site_seg_cache_reads"] = b.SegCacheReads
				args["site_seg_disk_reads"] = b.SegDiskReads
				args["site_codec_bytes"] = b.CodecBytes
				args["site_blocks"] = b.Blocks
			}
			events = append(events, traceEvent{
				Name: name, Ph: "X", Ts: since(c.Start), Dur: us(c.Elapsed),
				Pid: c.Site + 1, Tid: tid, Args: args,
			})
			tid++
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
