package obs

import (
	"strconv"
	"strings"
	"testing"
)

// parseExposition is a minimal parser for the Prometheus text format used to
// round-trip what WriteText renders: it returns series name+labels -> value
// and family name -> type.
func parseExposition(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	series := make(map[string]float64)
	types := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		// Value is after the last space; the label part may contain spaces
		// only inside quoted values, which WriteText never emits unescaped.
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed series line: %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("series %q: bad value: %v", line, err)
		}
		key := line[:idx]
		if _, dup := series[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		series[key] = v
	}
	return series, types
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_requests_total", "requests").Add(42)
	r.Gauge("rt_conns", "open connections").Set(-3)
	cv := r.CounterVec("rt_bytes_total", "bytes", "site", "direction")
	cv.With("0", "down").Add(100)
	cv.With("0", "up").Add(200)
	cv.With("1", "down").Add(300)
	h := r.Histogram("rt_seconds", "latency", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(10)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	series, types := parseExposition(t, b.String())

	wantTypes := map[string]string{
		"rt_requests_total": "counter",
		"rt_conns":          "gauge",
		"rt_bytes_total":    "counter",
		"rt_seconds":        "histogram",
	}
	for name, want := range wantTypes {
		if types[name] != want {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], want)
		}
	}
	wantSeries := map[string]float64{
		"rt_requests_total": 42,
		"rt_conns":          -3,
		`rt_bytes_total{site="0",direction="down"}`: 100,
		`rt_bytes_total{site="0",direction="up"}`:   200,
		`rt_bytes_total{site="1",direction="down"}`: 300,
		`rt_seconds_bucket{le="0.5"}`:               1,
		`rt_seconds_bucket{le="2"}`:                 2,
		`rt_seconds_bucket{le="+Inf"}`:              3,
		`rt_seconds_sum`:                            11.25,
		`rt_seconds_count`:                          3,
	}
	for key, want := range wantSeries {
		got, ok := series[key]
		if !ok {
			t.Errorf("series %q missing; have %v", key, keys(series))
			continue
		}
		if got != want {
			t.Errorf("series %q = %g, want %g", key, got, want)
		}
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "label escaping", "q")
	v.With(`a"b\c` + "\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `esc_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped series %q not found in:\n%s", want, out)
	}
	// The raw newline must not survive into the series line.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "esc_total{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("series line split by unescaped newline: %q", line)
		}
	}
}

func TestExpositionHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("cum_seconds", "h", []float64{1, 2, 3}, "site")
	h := hv.With("5")
	for _, v := range []float64{0.5, 1.5, 1.7, 2.5, 9} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	series, _ := parseExposition(t, b.String())
	want := map[string]float64{
		`cum_seconds_bucket{site="5",le="1"}`:    1,
		`cum_seconds_bucket{site="5",le="2"}`:    3,
		`cum_seconds_bucket{site="5",le="3"}`:    4,
		`cum_seconds_bucket{site="5",le="+Inf"}`: 5,
		`cum_seconds_count{site="5"}`:            5,
	}
	for key, w := range want {
		if got := series[key]; got != w {
			t.Errorf("%s = %g, want %g", key, got, w)
		}
	}
	// Buckets must be monotonically non-decreasing in le order (cumulative).
	if series[`cum_seconds_bucket{site="5",le="1"}`] > series[`cum_seconds_bucket{site="5",le="2"}`] {
		t.Error("buckets not cumulative")
	}
}

func TestDefaultRegistryRenders(t *testing.T) {
	// The package-level metric set must render without error and carry the
	// skalla_ prefix throughout.
	var b strings.Builder
	if err := Default.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	_, types := parseExposition(t, b.String())
	for name := range types {
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_total")
		if !strings.HasPrefix(base, "skalla_") {
			t.Errorf("metric %s does not follow the skalla_ naming scheme", name)
		}
	}
	for _, want := range []string{
		"skalla_coord_queries_total", "skalla_coord_rounds_total",
		"skalla_coord_sync_merge_seconds", "skalla_transport_bytes_total",
		"skalla_server_requests_total", "skalla_codec_encode_bytes_total",
		"skalla_store_segment_reads_total", "skalla_engine_rows_scanned_total",
	} {
		if _, ok := types[want]; !ok {
			t.Errorf("default registry missing family %s", want)
		}
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
