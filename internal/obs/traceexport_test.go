package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// exportProfile builds a two-round profile with a retried site call and a
// site-side breakdown — the shapes the exporter must annotate.
func exportProfile(start time.Time) *QueryProfile {
	return &QueryProfile{
		QueryID: "q-export",
		Start:   start,
		Elapsed: 5 * time.Millisecond,
		Plan:    ProfilePlan{Fingerprint: "fp123", Mode: "all", Rules: []string{"coalesce"}},
		Rounds: []RoundProfile{
			{
				Name: "base", Start: start, Elapsed: 2 * time.Millisecond,
				BytesDown: 100, BytesUp: 300,
				Calls: []CallProfile{
					{Site: 0, Attempt: 1, Start: start, Elapsed: time.Millisecond, BytesDown: 50, BytesUp: 150},
					{Site: 1, Attempt: 1, Failed: true, Err: "injected", Start: start, Elapsed: time.Microsecond},
					{Site: 1, Attempt: 2, Start: start.Add(time.Millisecond), Elapsed: time.Millisecond, BytesDown: 50, BytesUp: 150},
				},
			},
			{
				Name: "MD1", Start: start.Add(2 * time.Millisecond), Elapsed: 3 * time.Millisecond,
				XRows: 10, BytesDown: 400, BytesUp: 200, CoordTime: time.Millisecond,
				Calls: []CallProfile{
					{Site: 0, Attempt: 1, Start: start.Add(2 * time.Millisecond), Elapsed: 2 * time.Millisecond,
						BytesDown: 400, BytesUp: 200, Compute: time.Millisecond,
						Breakdown: &SiteBreakdown{EvalNS: 1e6, Workers: 2, RowsScanned: 1000,
							WorkerRows: []int64{400, 600}, SegDiskReads: 3, CodecBytes: 200, Blocks: 2}},
				},
			},
		},
	}
}

// TestTraceExportShape pins the export's contract: valid JSON with a
// traceEvents array of metadata and complete events, coordinator on pid 0,
// sites on pid site+1, durations ≥ 1µs, retried attempts annotated.
func TestTraceExportShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, exportProfile(time.Now())); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	var meta, complete, failed int
	var queryEvent, breakdownEvent bool
	tids := map[int]bool{}
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Dur < 1 {
				t.Errorf("event %q has dur %d, want >= 1µs", e.Name, e.Dur)
			}
			if strings.HasPrefix(e.Name, "query ") {
				queryEvent = true
				if e.Pid != 0 {
					t.Errorf("query event on pid %d, want coordinator pid 0", e.Pid)
				}
				if e.Args["fingerprint"] != "fp123" {
					t.Errorf("query args = %v, want fingerprint fp123", e.Args)
				}
			}
			if strings.Contains(e.Name, "site") && e.Pid >= 1 {
				if tids[e.Tid] {
					t.Errorf("tid %d reused: overlapping calls must get distinct tracks", e.Tid)
				}
				tids[e.Tid] = true
			}
			if strings.Contains(e.Name, "(failed)") {
				failed++
				if e.Args["err"] != "injected" {
					t.Errorf("failed call args = %v", e.Args)
				}
			}
			if _, ok := e.Args["site_rows_scanned"]; ok {
				breakdownEvent = true
			}
		default:
			t.Errorf("unexpected phase %q on %q", e.Ph, e.Name)
		}
	}
	if meta < 3 { // coordinator + sites 0 and 1
		t.Errorf("%d metadata events, want >= 3", meta)
	}
	if !queryEvent {
		t.Error("no query span event")
	}
	if failed != 1 {
		t.Errorf("%d failed-call events, want 1", failed)
	}
	if !breakdownEvent {
		t.Error("no event carries the site-side breakdown args")
	}
}
