package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Health tracks named readiness checks. A daemon registers its checks as
// not-ready at startup (Register) and flips them as subsystems come up; the
// /healthz endpoint reports 200 only when every registered check is ready.
// Alongside checks, a daemon can expose informational values (SetInfo) that
// render in the /healthz body without affecting readiness — the catalog
// generation counter, for instance.
type Health struct {
	mu     sync.RWMutex
	checks map[string]bool
	infos  map[string]func() any
}

// NewHealth creates an empty health tracker (vacuously ready).
func NewHealth() *Health {
	return &Health{checks: make(map[string]bool), infos: make(map[string]func() any)}
}

// Register adds a check in the not-ready state (no-op if it exists).
func (h *Health) Register(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.checks[name]; !ok {
		h.checks[name] = false
	}
}

// Set records a check's readiness, registering it if needed.
func (h *Health) Set(name string, ready bool) {
	h.mu.Lock()
	h.checks[name] = ready
	h.mu.Unlock()
}

// SetInfo registers an informational value rendered in the /healthz body
// under "info". get is evaluated per request, so live counters (catalog
// generation) stay current without re-registration.
func (h *Health) SetInfo(name string, get func() any) {
	h.mu.Lock()
	h.infos[name] = get
	h.mu.Unlock()
}

// Ready reports whether every registered check is ready, plus a snapshot of
// the individual checks.
func (h *Health) Ready() (bool, map[string]bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	snap := make(map[string]bool, len(h.checks))
	all := true
	for n, ok := range h.checks {
		snap[n] = ok
		all = all && ok
	}
	return all, snap
}

// Info evaluates and returns the informational values.
func (h *Health) Info() map[string]any {
	h.mu.RLock()
	gets := make(map[string]func() any, len(h.infos))
	for n, g := range h.infos {
		gets[n] = g
	}
	h.mu.RUnlock()
	if len(gets) == 0 {
		return nil
	}
	out := make(map[string]any, len(gets))
	for n, g := range gets {
		out[n] = g()
	}
	return out
}

// HTTPServer is the daemons' observability listener: /metrics (Prometheus
// text), /healthz (liveness + readiness), /debug/queries (retained query
// profiles), and the net/http/pprof handlers under /debug/pprof/.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeHTTP starts the observability endpoints on addr (":0" for ephemeral).
// reg defaults to the Default registry, health to an empty (always-ready)
// tracker, and ring to the process-wide Profiles ring; log may be nil.
func ServeHTTP(addr string, reg *Registry, health *Health, ring *ProfileRing, log *slog.Logger) (*HTTPServer, error) {
	if reg == nil {
		reg = Default
	}
	if health == nil {
		health = NewHealth()
	}
	if ring == nil {
		ring = Profiles
	}
	if log == nil {
		log = Logger()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Render into a buffer first: an exposition error must surface as a
		// 500 status, and the status line can only be set before any body
		// byte is written.
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			log.Warn("metrics render failed", "err", err)
			http.Error(w, "metrics render failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := w.Write(buf.Bytes()); err != nil {
			log.Warn("metrics write failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ready, checks := health.Ready()
		status := http.StatusOK
		state := "ok"
		if !ready {
			status = http.StatusServiceUnavailable
			state = "unavailable"
		}
		names := make([]string, 0, len(checks))
		for n := range checks {
			names = append(names, n)
		}
		sort.Strings(names)
		ordered := make(map[string]bool, len(checks))
		for _, n := range names {
			ordered[n] = checks[n]
		}
		body := map[string]any{"status": state, "checks": ordered}
		if info := health.Info(); info != nil {
			body["info"] = info
		}
		writeJSON(w, log, status, body)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		profiles := ring.List()
		out := make([]profileSummary, len(profiles))
		for i, p := range profiles {
			out[i] = summarize(p)
		}
		writeJSON(w, log, http.StatusOK, map[string]any{"queries": out})
	})
	mux.HandleFunc("/debug/queries/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/debug/queries/")
		id, sub, _ := strings.Cut(rest, "/")
		if id == "" {
			http.NotFound(w, r)
			return
		}
		p := ring.Get(id)
		if p == nil {
			http.Error(w, "no retained profile for query "+id, http.StatusNotFound)
			return
		}
		switch sub {
		case "":
			writeJSON(w, log, http.StatusOK, p)
		case "trace":
			var buf bytes.Buffer
			if err := WriteTraceEvents(&buf, p); err != nil {
				log.Warn("trace export failed", "query", id, "err", err)
				http.Error(w, "trace export failed", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if _, err := w.Write(buf.Bytes()); err != nil {
				log.Warn("trace write failed", "query", id, "err", err)
			}
		default:
			http.NotFound(w, r)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Warn("observability listener stopped", "err", err)
		}
	}()
	log.Info("observability endpoints up", "addr", ln.Addr().String())
	return s, nil
}

// writeJSON encodes v into a buffer first so encode failures become a clean
// 500 (the status line must precede any body byte), then writes status and
// body, logging — not swallowing — write errors.
func writeJSON(w http.ResponseWriter, log *slog.Logger, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		log.Warn("response encode failed", "err", err)
		http.Error(w, "response encode failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Warn("response write failed", "err", err)
	}
}

// profileSummary is the /debug/queries list entry: enough to pick a query
// without shipping every call.
type profileSummary struct {
	QueryID     string
	Start       time.Time
	Elapsed     time.Duration
	Err         string `json:",omitempty"`
	Fingerprint string
	Mode        string
	Rounds      int
	BytesDown   int
	BytesUp     int
}

func summarize(p *QueryProfile) profileSummary {
	return profileSummary{
		QueryID:     p.QueryID,
		Start:       p.Start,
		Elapsed:     p.Elapsed,
		Err:         p.Err,
		Fingerprint: p.Plan.Fingerprint,
		Mode:        p.Plan.Mode,
		Rounds:      len(p.Rounds),
		BytesDown:   p.BytesDown(),
		BytesUp:     p.BytesUp(),
	}
}

// Addr returns the listener address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *HTTPServer) Close() error { return s.srv.Close() }
