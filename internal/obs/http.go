package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Health tracks named readiness checks. A daemon registers its checks as
// not-ready at startup (Register) and flips them as subsystems come up; the
// /healthz endpoint reports 200 only when every registered check is ready.
type Health struct {
	mu     sync.RWMutex
	checks map[string]bool
}

// NewHealth creates an empty health tracker (vacuously ready).
func NewHealth() *Health { return &Health{checks: make(map[string]bool)} }

// Register adds a check in the not-ready state (no-op if it exists).
func (h *Health) Register(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.checks[name]; !ok {
		h.checks[name] = false
	}
}

// Set records a check's readiness, registering it if needed.
func (h *Health) Set(name string, ready bool) {
	h.mu.Lock()
	h.checks[name] = ready
	h.mu.Unlock()
}

// Ready reports whether every registered check is ready, plus a snapshot of
// the individual checks.
func (h *Health) Ready() (bool, map[string]bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	snap := make(map[string]bool, len(h.checks))
	all := true
	for n, ok := range h.checks {
		snap[n] = ok
		all = all && ok
	}
	return all, snap
}

// HTTPServer is the daemons' observability listener: /metrics (Prometheus
// text), /healthz (liveness + readiness), and the net/http/pprof handlers
// under /debug/pprof/.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeHTTP starts the observability endpoints on addr (":0" for ephemeral).
// reg defaults to the Default registry and health to an empty (always-ready)
// tracker; log may be nil.
func ServeHTTP(addr string, reg *Registry, health *Health, log *slog.Logger) (*HTTPServer, error) {
	if reg == nil {
		reg = Default
	}
	if health == nil {
		health = NewHealth()
	}
	if log == nil {
		log = Logger()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			log.Warn("metrics write failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ready, checks := health.Ready()
		w.Header().Set("Content-Type", "application/json")
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
		}
		w.WriteHeader(status)
		names := make([]string, 0, len(checks))
		for n := range checks {
			names = append(names, n)
		}
		sort.Strings(names)
		ordered := make(map[string]bool, len(checks))
		for _, n := range names {
			ordered[n] = checks[n]
		}
		state := "ok"
		if !ready {
			state = "unavailable"
		}
		json.NewEncoder(w).Encode(map[string]any{"status": state, "checks": ordered})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Warn("observability listener stopped", "err", err)
		}
	}()
	log.Info("observability endpoints up", "addr", ln.Addr().String())
	return s, nil
}

// Addr returns the listener address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *HTTPServer) Close() error { return s.srv.Close() }
