package obs

// Default is the process-wide registry every Skalla layer records into and
// the daemons' /metrics endpoint serves.
var Default = NewRegistry()

// The Skalla metric set. Naming: skalla_<layer>_<quantity>_<unit>[_total].
// Labels: site (site index as decimal), query (coordinator-assigned query ID,
// "none" outside a query), direction ("down" = coordinator→site, "up" =
// site→coordinator), kind (request kind), status/source as noted.
var (
	// Coordinator layer (internal/core).
	CoordQueries = Default.CounterVec("skalla_coord_queries_total",
		"Distributed query evaluations finished by the coordinator, by terminal status (ok, error).",
		"status")
	CoordActiveQueries = Default.Gauge("skalla_coord_active_queries",
		"Distributed query evaluations currently in flight at the coordinator.")
	CoordRounds = Default.CounterVec("skalla_coord_rounds_total",
		"Synchronization rounds driven by the coordinator.",
		"query")
	CoordSyncMerge = Default.HistogramVec("skalla_coord_sync_merge_seconds",
		"Coordinator synchronization work per merge step (one H block, local-X merge, or base union).",
		DurationBuckets, "query")
	CoordRetries = Default.CounterVec("skalla_coord_site_retries_total",
		"Site-call attempts the coordinator retried after a transient failure, by site.",
		"site")
	CoordSlowQueries = Default.Counter("skalla_coord_slow_queries_total",
		"Queries whose end-to-end elapsed time exceeded the -slow-query threshold (each logs its full profile).")

	// Transport client side (internal/transport; the coordinator's view).
	TransportCalls = Default.CounterVec("skalla_transport_calls_total",
		"Coordinator→site exchanges issued, by site and request kind.",
		"site", "kind")
	TransportBytes = Default.CounterVec("skalla_transport_bytes_total",
		"Wire bytes per coordinator↔site exchange, by site, direction and query.",
		"site", "direction", "query")
	TransportRows = Default.CounterVec("skalla_transport_rows_total",
		"Base-structure / sub-aggregate rows shipped per exchange, by site, direction and query.",
		"site", "direction", "query")
	SiteCompute = Default.HistogramVec("skalla_site_compute_seconds",
		"Site-side compute time per exchange, as reported in the terminal response.",
		DurationBuckets, "site")
	SiteBroken = Default.GaugeVec("skalla_transport_site_broken",
		"Whether the client connection to a site is poisoned and awaiting redial (1) or healthy (0).",
		"site")
	TransportRedials = Default.CounterVec("skalla_transport_redials_total",
		"Reconnection attempts after a broken site connection, by site and outcome (ok, error).",
		"site", "status")

	// Transport server side (the site daemon's view of inbound requests).
	ServerRequests = Default.CounterVec("skalla_server_requests_total",
		"Requests served by this site, by request kind.",
		"kind")
	ServerBytes = Default.CounterVec("skalla_server_bytes_total",
		"Connection bytes at this site, by direction (down = received, up = sent).",
		"direction")
	ServerActiveConns = Default.Gauge("skalla_server_active_connections",
		"Open coordinator connections at this site.")

	// Relation wire codec (internal/relation).
	CodecEncodeBytes = Default.Counter("skalla_codec_encode_bytes_total",
		"Bytes produced by the relation wire codec encoder (frame headers included).")
	CodecDecodeBytes = Default.Counter("skalla_codec_decode_bytes_total",
		"Bytes consumed by the relation wire codec decoder (frame headers included).")
	CodecFrames = Default.CounterVec("skalla_codec_frames_total",
		"Relation wire codec frames processed, by operation (encode, decode).",
		"op")

	// Segment store (internal/store).
	StoreSegmentReads = Default.CounterVec("skalla_store_segment_reads_total",
		"Table segment reads, by source (disk = decoded from file, cache = LRU hit).",
		"source")
	StoreSegmentRows = Default.Counter("skalla_store_segment_rows_total",
		"Rows decoded from disk segments (cache hits excluded).")

	// Site evaluation engine (internal/engine + internal/gmdj).
	EngineEvals = Default.CounterVec("skalla_engine_evals_total",
		"Site-side evaluations, by kind (base, operator, local).",
		"kind")
	EngineBlocks = Default.Counter("skalla_engine_blocks_emitted_total",
		"H blocks emitted by site operator evaluations (row blocking counts each block).")
	EngineRowsScanned = Default.Counter("skalla_engine_rows_scanned_total",
		"Detail-relation rows scanned by GMDJ evaluation (base and operator passes).")
	EngineWorkerRows = Default.CounterVec("skalla_engine_worker_rows_scanned_total",
		"Detail-relation rows scanned by parallel evaluation workers, by worker index (skewed shard assignments show up as unbalanced series).",
		"worker")
	EngineEvalWorkers = Default.Gauge("skalla_engine_eval_workers",
		"Effective worker count of the most recent sharded scan (1 = sequential).")

	// Coordinator merge parallelism (internal/core).
	CoordMergeWorkers = Default.Gauge("skalla_coord_merge_workers",
		"Concurrent per-site stage commits currently running in the coordinator's sync-merge.")

	// Multi-tenant query server (internal/server sessions; admission control
	// and the prepared-plan cache live in internal/core but serve the same
	// deployment surface, so the whole family shares the server layer name).
	ServerActiveSessions = Default.Gauge("skalla_server_active_sessions",
		"Client sessions currently connected to the coordinator's query server.")
	ServerSessions = Default.Counter("skalla_server_sessions_total",
		"Client sessions accepted by the coordinator's query server since start.")
	ServerQueries = Default.CounterVec("skalla_server_queries_total",
		"Statements finished by the query server, by terminal status (ok, error, rejected, shutdown).",
		"status")
	ServerQueuedQueries = Default.Gauge("skalla_server_queued_queries",
		"Queries admitted to the wait queue and not yet executing.")
	ServerAdmissionRejects = Default.Counter("skalla_server_admission_rejects_total",
		"Queries rejected because the admission wait queue was full.")
	ServerPlanCacheHits = Default.Counter("skalla_server_plan_cache_hits_total",
		"Prepared-plan cache hits (parse+optimize skipped, compiled plan reused).")
	ServerPlanCacheMisses = Default.CounterVec("skalla_server_plan_cache_misses_total",
		"Prepared-plan cache misses, by reason (cold = not cached, generation = catalog generation moved and the stale entry was dropped).",
		"reason")
	ServerSingleflightLeaders = Default.Counter("skalla_server_singleflight_leaders_total",
		"Queries that ran distributed rounds as a single-flight leader while at least one follower awaited the shared result.")
	ServerSingleflightFollowers = Default.Counter("skalla_server_singleflight_followers_total",
		"Queries served from a concurrent leader's committed result without issuing their own site rounds.")

	// Super-aggregate result cache (internal/core; coordinator layer: entries
	// hold finalized X relations keyed by plan fingerprint).
	CoordResultCacheHits = Default.Counter("skalla_coord_result_cache_hits_total",
		"Super-aggregate result cache hits (repeat queries served with zero site rounds).")
	CoordResultCacheMisses = Default.CounterVec("skalla_coord_result_cache_misses_total",
		"Super-aggregate result cache misses, by reason (cold = not cached, generation = catalog generation moved and the stale entry was dropped).",
		"reason")
	CoordResultCacheEntries = Default.Gauge("skalla_coord_result_cache_entries",
		"Super-aggregate results currently cached at the coordinator.")
	CoordBatchFlushes = Default.Counter("skalla_coord_batch_flushes_total",
		"Batched site exchanges issued (several queries' operator calls served from one shared detail scan).")
	CoordBatchMembers = Default.Counter("skalla_coord_batch_members_total",
		"Operator calls served as members of a batched site exchange.")

	// Planner (internal/plan, recorded by internal/core at compile time).
	PlanRulesApplied = Default.CounterVec("skalla_plan_rule_applied_total",
		"Optimizer rules applied to compiled plans, by rule name (auto-mode candidates are not counted; only the chosen plan is).",
		"rule")
	PlanCostEstimate = Default.GaugeVec("skalla_plan_cost_estimate_bytes",
		"Estimated communication of the most recently compiled plan, by direction (down = coordinator→site).",
		"direction")
	PlanCostErrorRatio = Default.FloatGaugeVec("skalla_plan_cost_error_ratio",
		"Actual ÷ estimated communication bytes of the most recently finished query, by direction (1 = calibrated; unset while no estimated query has run).",
		"direction")
)

// QueryLabel normalizes a query ID for use as a metric label value.
func QueryLabel(id string) string {
	if id == "" {
		return "none"
	}
	return id
}
