package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	c.Add(0)  // ignored
	if got := c.Value(); got != 5 {
		t.Errorf("Value() = %d, want 5", got)
	}
	// Re-registering the same shape returns the same metric.
	if r.Counter("test_total", "help") != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("Value() = %d, want 7", got)
	}
}

func TestRegisterShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering as a gauge did not panic")
		}
	}()
	r.Gauge("test_total", "help")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{1, 10, 100})
	// A value equal to a bound must land in that bound's bucket (le is
	// inclusive in the exposition format).
	h.Observe(1)
	h.Observe(0.5)
	h.Observe(10)
	h.Observe(50)
	h.Observe(1000) // +Inf bucket
	if got := h.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); got != 1061.5 {
		t.Errorf("Sum() = %g, want 1061.5", got)
	}
	if got := h.Max(); got != 1000 {
		t.Errorf("Max() = %g, want 1000", got)
	}
	want := []int64{2, 1, 1, 1} // (..1], (1..10], (10..100], (100..+Inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{1})
	if h.Max() != 0 || h.Quantile(0.5) != 0 || h.Sum() != 0 || h.Count() != 0 {
		t.Errorf("empty histogram: max=%g q50=%g sum=%g count=%d, want all zero",
			h.Max(), h.Quantile(0.5), h.Sum(), h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{10, 20, 30, 40})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i%40) + 0.5)
	}
	q50 := h.Quantile(0.5)
	if q50 < 10 || q50 > 30 {
		t.Errorf("Quantile(0.5) = %g, want within [10, 30]", q50)
	}
	// Quantiles never exceed the observed max.
	if q := h.Quantile(1); q > h.Max() {
		t.Errorf("Quantile(1) = %g > Max %g", q, h.Max())
	}
}

func TestHistogramQuantileInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{1})
	h.Observe(7) // +Inf bucket only
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("Quantile(0.5) = %g, want observed max 7", got)
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{0.001, 1})
	h.ObserveDuration(500 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sum() = %g, want 0.5", got)
	}
}

func TestVecHandleStability(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "help", "site", "kind")
	a := v.With("0", "base")
	b := v.With("0", "base")
	if a != b {
		t.Error("With returned different handles for the same labels")
	}
	if v.With("1", "base") == a {
		t.Error("distinct labels shared a handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("handle does not share state")
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "help", "site")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("0", "extra")
}

func TestVecOverflowCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "help", "query")
	for i := 0; i < maxSeriesPerFamily+50; i++ {
		v.With(fmt.Sprintf("q%d", i)).Inc()
	}
	// Every add beyond the cap lands in the shared overflow series.
	over := v.With("one-more")
	if over != v.With("and-another") {
		t.Error("overflow label sets did not collapse into one series")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `query="other"`) {
		t.Error("overflow series not rendered with label value \"other\"")
	}
	// Totals stay correct: cap + 1 overflow series.
	lines := strings.Count(b.String(), "\ntest_total{")
	if lines != maxSeriesPerFamily+1 {
		t.Errorf("rendered %d series, want %d", lines, maxSeriesPerFamily+1)
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "help", "worker")
	h := r.HistogramVec("test_seconds", "help", []float64{0.01, 1}, "worker")
	g := r.Gauge("test_gauge", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("%d", w%4)
			for i := 0; i < 1000; i++ {
				v.With(label).Inc()
				h.With(label).Observe(float64(i) / 100)
				g.Add(1)
			}
		}(w)
	}
	// Concurrent exposition while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	total := int64(0)
	for w := 0; w < 4; w++ {
		total += v.With(fmt.Sprintf("%d", w)).Value()
	}
	if total != 8000 {
		t.Errorf("counter total = %d, want 8000", total)
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %d, want 8000", g.Value())
	}
}

func TestExpBuckets(t *testing.T) {
	for i := 1; i < len(DurationBuckets); i++ {
		if DurationBuckets[i] <= DurationBuckets[i-1] {
			t.Fatalf("DurationBuckets not ascending at %d", i)
		}
	}
	for i := 1; i < len(ByteBuckets); i++ {
		if ByteBuckets[i] <= ByteBuckets[i-1] {
			t.Fatalf("ByteBuckets not ascending at %d", i)
		}
	}
}
