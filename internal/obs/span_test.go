package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

type collectObserver struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectObserver) ObserveSpan(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func TestSpanEventOrder(t *testing.T) {
	var obsr collectObserver
	span := StartQuery("qtest", &obsr)
	rs := span.StartRound("base", 0)
	rs.Call(SiteCall{Site: 0, BytesUp: 10, RowsUp: 2})
	rs.Call(SiteCall{Site: 1, BytesUp: 20, RowsUp: 4})
	rs.ObserveMerge(time.Millisecond)
	rs.End(time.Millisecond)
	span.End(nil)

	kinds := make([]EventKind, len(obsr.events))
	for i, e := range obsr.events {
		kinds[i] = e.Kind
		if e.QueryID != "qtest" {
			t.Errorf("event %d query ID = %q", i, e.QueryID)
		}
	}
	want := []EventKind{EventQueryStart, EventRoundStart, EventSiteCall, EventSiteCall, EventRoundEnd, EventQueryEnd}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d kind = %d, want %d", i, kinds[i], want[i])
		}
	}
	end := obsr.events[4]
	if end.BytesUp != 30 || len(end.Calls) != 2 {
		t.Errorf("round end aggregates: bytesUp=%d calls=%d", end.BytesUp, len(end.Calls))
	}
}

func TestSpanMetrics(t *testing.T) {
	id := NewQueryID()
	before := CoordActiveQueries.Value()
	span := StartQuery(id)
	if CoordActiveQueries.Value() != before+1 {
		t.Error("active gauge did not rise")
	}
	rs := span.StartRound("MD1", 5)
	rs.ObserveMerge(2 * time.Millisecond)
	rs.End(2 * time.Millisecond)
	span.End(errors.New("boom"))
	if CoordActiveQueries.Value() != before {
		t.Error("active gauge did not fall")
	}
	if got := CoordRounds.With(id).Value(); got != 1 {
		t.Errorf("round counter = %d, want 1", got)
	}
	if got := CoordSyncMerge.With(id).Count(); got != 1 {
		t.Errorf("merge histogram count = %d, want 1", got)
	}
	if CoordQueries.With("error").Value() == 0 {
		t.Error("error status not counted")
	}
}

func TestLineObserverFormat(t *testing.T) {
	var b strings.Builder
	lo := NewLineObserver(&b)
	span := StartQuery("qfmt", lo)
	rs := span.StartRound("MD1", 7)
	rs.Call(SiteCall{Site: 2, BytesDown: 100, RowsDown: 7, BytesUp: 50, RowsUp: 3, Compute: 120 * time.Microsecond})
	rs.End(time.Millisecond)
	span.End(nil)
	got := b.String()
	want := "round MD1: start (X holds 7 rows)\n" +
		"round MD1: site 2  down 100B/7 rows  up 50B/3 rows  compute 120µs\n" +
		"round MD1: done  100B down, 50B up, coordinator 1ms\n"
	if got != want {
		t.Errorf("line output:\n%q\nwant:\n%q", got, want)
	}
}

// TestLineObserverConcurrent verifies the lock granularity fix: events from
// interleaved spans sharing one writer never split a line.
func TestLineObserverConcurrent(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	lo := NewLineObserver(w)
	var wg sync.WaitGroup
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			span := StartQuery(NewQueryID(), lo)
			for i := 0; i < 50; i++ {
				rs := span.StartRound("R", i)
				rs.Call(SiteCall{Site: q, BytesDown: 1, BytesUp: 1})
				rs.End(0)
			}
			span.End(nil)
		}(q)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "round ") {
			t.Fatalf("split or corrupt line: %q", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestNewQueryID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewQueryID()
		if len(id) != 12 {
			t.Fatalf("query ID %q has length %d, want 12", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate query ID %q", id)
		}
		seen[id] = true
	}
}

func TestQueryIDContext(t *testing.T) {
	ctx := t.Context()
	if QueryIDFrom(ctx) != "" {
		t.Error("untagged context has a query ID")
	}
	ctx = WithQueryID(ctx, "abc")
	if QueryIDFrom(ctx) != "abc" {
		t.Error("query ID not propagated through context")
	}
}

func TestQueryLabel(t *testing.T) {
	if QueryLabel("") != "none" {
		t.Error(`QueryLabel("") != "none"`)
	}
	if QueryLabel("x") != "x" {
		t.Error("QueryLabel mangled a real ID")
	}
}
