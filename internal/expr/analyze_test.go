package expr

import (
	"reflect"
	"testing"
)

func TestConjunctsDisjuncts(t *testing.T) {
	e := MustParse("B.a = R.x && R.y > 1 && (B.b = 2 || B.c = 3)")
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts: %d, want 3", len(cs))
	}
	ds := Disjuncts(cs[2])
	if len(ds) != 2 {
		t.Fatalf("Disjuncts: %d, want 2", len(ds))
	}
	// Single atom.
	if n := len(Conjuncts(MustParse("B.a = 1"))); n != 1 {
		t.Errorf("single conjunct: %d", n)
	}
}

func TestAttrs(t *testing.T) {
	e := MustParse("B.a + B.b < R.x * 2 && !(R.y = B.a)")
	b, d := Attrs(e)
	wantB := map[string]struct{}{"a": {}, "b": {}}
	wantD := map[string]struct{}{"x": {}, "y": {}}
	if !reflect.DeepEqual(b, wantB) || !reflect.DeepEqual(d, wantD) {
		t.Errorf("Attrs = %v / %v", b, d)
	}
	if !ReferencesBase(e) {
		t.Error("ReferencesBase")
	}
	if ReferencesBase(MustParse("R.x = 1")) {
		t.Error("ReferencesBase on detail-only")
	}
	if !ReferencesBaseColumns(e, []string{"zz", "b"}) {
		t.Error("ReferencesBaseColumns hit")
	}
	if ReferencesBaseColumns(e, []string{"zz"}) {
		t.Error("ReferencesBaseColumns miss")
	}
}

func TestSideOnly(t *testing.T) {
	if !SideOnly(MustParse("B.a + 1 < B.b"), SideBase) {
		t.Error("base-only expr")
	}
	if SideOnly(MustParse("B.a < R.x"), SideBase) {
		t.Error("mixed expr is not base-only")
	}
	if !SideOnly(MustParse("R.x = 1"), SideDetail) {
		t.Error("detail-only expr")
	}
	if !SideOnly(MustParse("1 + 1"), SideBase) || !SideOnly(MustParse("1 + 1"), SideDetail) {
		t.Error("constant qualifies for both sides")
	}
}

func TestEqualityLinks(t *testing.T) {
	e := MustParse("B.k1 = R.a && R.b = B.k2 && R.c > 1 && B.k1 = 5 && R.a = R.c && B.k1 = B.k2")
	links := EqualityLinks(e)
	want := []EqualityLink{{Base: "k1", Detail: "a"}, {Base: "k2", Detail: "b"}}
	if !reflect.DeepEqual(links, want) {
		t.Errorf("EqualityLinks = %v, want %v", links, want)
	}
	// Equality nested under OR must not count as a conjunct link.
	e2 := MustParse("B.k1 = R.a || R.b = B.k2")
	if links := EqualityLinks(e2); len(links) != 0 {
		t.Errorf("links under OR: %v", links)
	}
}

func TestKeyLinkage(t *testing.T) {
	e := MustParse("B.k1 = R.a && B.k2 = R.b && R.x > 0")
	m, ok := KeyLinkage(e, []string{"k1", "k2"})
	if !ok || m["k1"] != "a" || m["k2"] != "b" {
		t.Errorf("KeyLinkage = %v, %v", m, ok)
	}
	if _, ok := KeyLinkage(e, []string{"k1", "k3"}); ok {
		t.Error("missing key link must fail")
	}
	if m, ok := KeyLinkage(e, nil); !ok || len(m) != 0 {
		t.Error("empty key list trivially links")
	}
}

func TestDetailAffine(t *testing.T) {
	cases := []struct {
		src  string
		want Affine
		ok   bool
	}{
		{"R.x", Affine{Col: "x", C: 1, D: 0}, true},
		{"R.x * 2", Affine{Col: "x", C: 2, D: 0}, true},
		{"2 * R.x + 3", Affine{Col: "x", C: 2, D: 3}, true},
		{"(R.x + 1) / 2", Affine{Col: "x", C: 0.5, D: 0.5}, true},
		{"-R.x", Affine{Col: "x", C: -1, D: 0}, true},
		{"3 - R.x", Affine{Col: "x", C: -1, D: 3}, true},
		{"R.x + R.x", Affine{Col: "x", C: 2, D: 0}, true},
		{"R.x * R.x", Affine{}, false}, // quadratic
		{"R.x + R.y", Affine{}, false}, // two columns
		{"B.a + R.x", Affine{}, false}, // base reference
		{"5", Affine{}, false},         // constant only
		{"1 / R.x", Affine{}, false},   // division by column
		{"R.x * 0", Affine{}, false},   // zero coefficient degenerates to constant
	}
	for _, c := range cases {
		got, ok := DetailAffine(MustParse(c.src))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("DetailAffine(%q) = %+v,%v want %+v,%v", c.src, got, ok, c.want, c.ok)
		}
	}
}

func TestAffineRange(t *testing.T) {
	a := Affine{Col: "x", C: 2, D: 1}
	lo, hi := a.Range(1, 25)
	if lo != 3 || hi != 51 {
		t.Errorf("Range = %v,%v", lo, hi)
	}
	neg := Affine{Col: "x", C: -1, D: 0}
	lo, hi = neg.Range(1, 25)
	if lo != -25 || hi != -1 {
		t.Errorf("negative coefficient Range = %v,%v", lo, hi)
	}
}

func TestRelaxComparison(t *testing.T) {
	// The paper's example: B.DestAS + B.SourceAS < Flow.SourceAS*2 with
	// SourceAS ∈ [1,25] relaxes to base < 50.
	baseE := MustParse("B.DestAS + B.SourceAS")
	a := Affine{Col: "SourceAS", C: 2, D: 0}
	relaxed, ok := RelaxComparison(OpLt, baseE, a, 1, 25)
	if !ok {
		t.Fatal("RelaxComparison failed")
	}
	if got := relaxed.String(); got != "((B.DestAS + B.SourceAS) < 50)" {
		t.Errorf("relaxed = %s", got)
	}
	// Eq becomes a range check.
	relaxed, ok = RelaxComparison(OpEq, baseE, Affine{Col: "x", C: 1}, 10, 20)
	if !ok {
		t.Fatal("Eq relaxation failed")
	}
	cs := Conjuncts(relaxed)
	if len(cs) != 2 {
		t.Errorf("Eq relaxation should be a 2-conjunct range, got %s", relaxed)
	}
	if _, ok := RelaxComparison(OpNe, baseE, a, 1, 25); ok {
		t.Error("!= must not be relaxable")
	}
	// Ge uses the minimum.
	relaxed, _ = RelaxComparison(OpGe, baseE, Affine{Col: "x", C: 1}, 5, 9)
	if got := relaxed.String(); got != "((B.DestAS + B.SourceAS) >= 5)" {
		t.Errorf("Ge relaxation = %s", got)
	}
}

func TestFlipComparison(t *testing.T) {
	flips := map[Op]Op{OpLt: OpGt, OpLe: OpGe, OpGt: OpLt, OpGe: OpLe, OpEq: OpEq, OpNe: OpNe}
	for in, want := range flips {
		got, ok := FlipComparison(in)
		if !ok || got != want {
			t.Errorf("FlipComparison(%s) = %s,%v", in, got, ok)
		}
	}
	if _, ok := FlipComparison(OpAdd); ok {
		t.Error("FlipComparison(+) must fail")
	}
}

func TestConstOf(t *testing.T) {
	v, ok := ConstOf(MustParse("2 * 3 + 1"))
	if !ok || v.Int != 7 {
		t.Errorf("ConstOf = %v,%v", v, ok)
	}
	if _, ok := ConstOf(MustParse("B.a + 1")); ok {
		t.Error("ConstOf with column must fail")
	}
}
