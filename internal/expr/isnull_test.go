package expr

import (
	"testing"

	"skalla/internal/relation"
)

func TestIsNullEval(t *testing.T) {
	base := relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt})
	rowNull := relation.Tuple{relation.Null}
	rowVal := relation.Tuple{relation.NewInt(5)}
	cases := []struct {
		src  string
		row  relation.Tuple
		want bool
	}{
		{"B.a IS NULL", rowNull, true},
		{"B.a IS NULL", rowVal, false},
		{"B.a IS NOT NULL", rowNull, false},
		{"B.a IS NOT NULL", rowVal, true},
		{"null IS NULL", rowVal, true},
		{"1 IS NULL", rowVal, false},
		{"B.a IS NULL || B.a = 5", rowVal, true},
		{"B.a IS NULL || B.a = 5", rowNull, true},
		{"(B.a + 1) IS NULL", rowNull, true}, // NULL propagates through arithmetic
	}
	for _, c := range cases {
		e := MustBind(MustParse(c.src), base, nil)
		got, err := EvalCond(e, c.row, nil)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("%q on %v = %v, want %v", c.src, c.row, got, c.want)
		}
	}
}

func TestIsNullParseErrors(t *testing.T) {
	for _, src := range []string{"B.a IS", "B.a IS NOT", "B.a IS 5", "B.a IS NOT 5"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestIsNullStringRoundTrip(t *testing.T) {
	for _, src := range []string{"B.a IS NULL", "B.a IS NOT NULL", "B.a IS NULL || B.a = 1"} {
		e := MustParse(src)
		if _, err := Parse(e.String()); err != nil {
			t.Errorf("re-parse %q (from %q): %v", e.String(), src, err)
		}
	}
}

func TestIsNullAnalysis(t *testing.T) {
	e := MustParse("B.d IS NULL || B.d = R.d")
	b, d := Attrs(e)
	if _, ok := b["d"]; !ok {
		t.Error("base attr missing")
	}
	if _, ok := d["d"]; !ok {
		t.Error("detail attr missing")
	}
	// No top-level equality links (the equality sits under OR), so the
	// distribution analyses stay conservative on cube conditions.
	if links := EqualityLinks(e); len(links) != 0 {
		t.Errorf("links = %v, want none", links)
	}
}

func TestRollupLinks(t *testing.T) {
	links, ok := RollupLinks(MustParse("(B.a IS NULL || B.a = R.a) && (B.b IS NULL || B.b = R.b)"))
	if !ok || len(links) != 2 || links[0] != (EqualityLink{Base: "a", Detail: "a"}) {
		t.Errorf("RollupLinks = %v, %v", links, ok)
	}
	// Mirrored operand orders are accepted.
	links, ok = RollupLinks(MustParse("(R.x = B.a || B.a IS NULL)"))
	if !ok || links[0] != (EqualityLink{Base: "a", Detail: "x"}) {
		t.Errorf("mirrored RollupLinks = %v, %v", links, ok)
	}
	// Non-rollup shapes are rejected.
	for _, src := range []string{
		"B.a = R.a",                             // plain equality
		"B.a IS NULL || B.b = R.b",              // IS NULL and equality on different cols
		"B.a IS NULL || B.a = R.a || R.v > 1",   // extra disjunct
		"(B.a IS NULL || B.a = R.a) && R.v > 1", // residual conjunct breaks the all-rollup shape
		"R.a IS NULL || B.a = R.a",              // IS NULL on detail side
		"true",
	} {
		if _, ok := RollupLinks(MustParse(src)); ok {
			t.Errorf("RollupLinks(%q) accepted", src)
		}
	}
}
