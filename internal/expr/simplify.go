package expr

import "skalla/internal/relation"

// Simplify rewrites an expression into an equivalent, usually smaller one:
// constant subtrees are folded, logical identities are eliminated
// (true && x → x, false && x → false, x || true → true, !!x → x), and
// IS NULL of non-null literals is resolved. The planner applies it to every
// condition before shipping plans to the sites: smaller trees mean fewer
// wire bytes and cheaper per-row evaluation.
//
// Simplification assumes the condition is well-typed (queries are validated
// before planning): folding may short-circuit around a subtree that would
// fail to evaluate at runtime, exactly as the evaluator's own && / ||
// short-circuiting does.
func Simplify(e Expr) Expr {
	switch n := e.(type) {
	case *Bin:
		l, r := Simplify(n.L), Simplify(n.R)
		switch n.Op {
		case OpAnd:
			if b, ok := litBool(l); ok {
				if b {
					return r
				}
				return falseLit()
			}
			if b, ok := litBool(r); ok {
				if b {
					return l
				}
				return falseLit()
			}
		case OpOr:
			if b, ok := litBool(l); ok {
				if b {
					return trueLit()
				}
				return r
			}
			if b, ok := litBool(r); ok {
				if b {
					return trueLit()
				}
				return l
			}
		}
		out := &Bin{Op: n.Op, L: l, R: r}
		return foldConst(out)
	case *Un:
		x := Simplify(n.X)
		switch n.Op {
		case OpNot:
			if b, ok := litBool(x); ok {
				return L(relation.NewBool(!b))
			}
			// Double negation.
			if inner, ok := x.(*Un); ok && inner.Op == OpNot {
				return inner.X
			}
		case OpIsNull, OpIsNotNull:
			if lit, ok := x.(*Lit); ok {
				isNull := lit.Val.IsNull()
				if n.Op == OpIsNotNull {
					isNull = !isNull
				}
				return L(relation.NewBool(isNull))
			}
		}
		out := &Un{Op: n.Op, X: x}
		return foldConst(out)
	default:
		return e
	}
}

// foldConst replaces a column-free subtree with its value when it evaluates
// cleanly; trees that would error are left intact so the error still
// surfaces at evaluation time.
func foldConst(e Expr) Expr {
	if v, ok := ConstOf(e); ok {
		return L(v)
	}
	return e
}

func litBool(e Expr) (bool, bool) {
	lit, ok := e.(*Lit)
	if !ok || lit.Val.Kind != relation.KindBool {
		return false, false
	}
	return lit.Val.Bool(), true
}

func trueLit() Expr  { return L(relation.NewBool(true)) }
func falseLit() Expr { return L(relation.NewBool(false)) }
