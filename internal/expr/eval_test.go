package expr

import (
	"strings"
	"testing"

	"skalla/internal/relation"
)

var (
	baseSchema = relation.MustSchema(
		relation.Column{Name: "bi", Kind: relation.KindInt},
		relation.Column{Name: "bf", Kind: relation.KindFloat},
		relation.Column{Name: "bs", Kind: relation.KindString},
	)
	detailSchema = relation.MustSchema(
		relation.Column{Name: "di", Kind: relation.KindInt},
		relation.Column{Name: "df", Kind: relation.KindFloat},
		relation.Column{Name: "ds", Kind: relation.KindString},
	)
	baseRow   = relation.Tuple{relation.NewInt(10), relation.NewFloat(2.5), relation.NewString("abc")}
	detailRow = relation.Tuple{relation.NewInt(4), relation.NewFloat(0.5), relation.NewString("abc")}
)

func evalBound(t *testing.T, src string) relation.Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	b, err := Bind(e, baseSchema, detailSchema)
	if err != nil {
		t.Fatalf("Bind(%q): %v", src, err)
	}
	v, err := b.Eval(baseRow, detailRow)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want relation.Value
	}{
		{"1 + 2", relation.NewInt(3)},
		{"7 - 10", relation.NewInt(-3)},
		{"3 * 4", relation.NewInt(12)},
		{"7 % 3", relation.NewInt(1)},
		{"7 / 2", relation.NewFloat(3.5)},
		{"1.5 + 2", relation.NewFloat(3.5)},
		{"2 * 1.25", relation.NewFloat(2.5)},
		{"-5", relation.NewInt(-5)},
		{"-(1.5)", relation.NewFloat(-1.5)},
		{"B.bi + R.di", relation.NewInt(14)},
		{"B.bf * R.df", relation.NewFloat(1.25)},
		{"7 % 0", relation.Null},
		{"7 / 0", relation.Null},
		{"7.5 % 2", relation.NewFloat(1.5)},
		{"null + 1", relation.Null},
		{"1 - null", relation.Null},
		{"-null", relation.Null},
	}
	for _, c := range cases {
		got := evalBound(t, c.src)
		if !got.Equal(c.want) || got.Kind != c.want.Kind {
			t.Errorf("%q = %v (%s), want %v (%s)", c.src, got, got.Kind, c.want, c.want.Kind)
		}
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"1 = 1", true},
		{"1 == 2", false},
		{"1 != 2", true},
		{"1 <> 1", false},
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 2", true},
		{"2 >= 3", false},
		{"1 = 1.0", true},
		{"'a' < 'b'", true},
		{"'a' = 'a'", true},
		{"B.bs = R.ds", true},
		{"B.bi > R.di", true},
		{"true && false", false},
		{"true || false", true},
		{"true AND true", true},
		{"false OR false", false},
		{"!false", true},
		{"NOT (1 = 1)", false},
		{"1 < 2 && 2 < 3", true},
		// NULL comparisons are false; logic treats NULL as false.
		{"null = null", false},
		{"null < 1", false},
		{"null = 1 || true", true},
		{"1 = 'a'", false}, // incomparable kinds
		{"'a' < 1", false}, // incomparable kinds
		{"true = true", true},
		{"true != false", true},
	}
	for _, c := range cases {
		got := evalBound(t, c.src)
		if got.Kind != relation.KindBool || got.Bool() != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// R.di is out of range in the nil tuple; short-circuit must avoid it.
	e := MustBind(MustParse("false && R.di = 1"), baseSchema, detailSchema)
	v, err := e.Eval(baseRow, nil)
	if err != nil || v.Bool() {
		t.Errorf("short-circuit AND: %v, %v", v, err)
	}
	e = MustBind(MustParse("true || R.di = 1"), baseSchema, detailSchema)
	v, err = e.Eval(baseRow, nil)
	if err != nil || !v.Bool() {
		t.Errorf("short-circuit OR: %v, %v", v, err)
	}
}

func TestEvalErrors(t *testing.T) {
	errCases := []string{
		"'a' + 1",   // arithmetic on string
		"-'a'",      // negate string
		"!(1 + 1)",  // NOT on non-bool
		"1 && true", // AND on non-bool
		"true || 1", // OR non-bool (right side evaluated since left false? no — left true short-circuits; use false)
	}
	// Fix the last case so the non-bool operand is actually evaluated.
	errCases[4] = "false || 1"
	for _, src := range errCases {
		e := MustBind(MustParse(src), baseSchema, detailSchema)
		if _, err := e.Eval(baseRow, detailRow); err == nil {
			t.Errorf("%q: expected evaluation error", src)
		}
	}
}

func TestEvalCondNullIsFalse(t *testing.T) {
	e := MustBind(MustParse("null"), baseSchema, detailSchema)
	ok, err := EvalCond(e, baseRow, detailRow)
	if err != nil || ok {
		t.Errorf("EvalCond(null) = %v, %v", ok, err)
	}
	e2 := MustBind(MustParse("1 + 1"), baseSchema, detailSchema)
	if _, err := EvalCond(e2, baseRow, detailRow); err == nil {
		t.Error("EvalCond on non-bool must error")
	}
}

func TestBindErrors(t *testing.T) {
	if _, err := Bind(MustParse("B.missing = 1"), baseSchema, detailSchema); err == nil {
		t.Error("unknown base column must fail to bind")
	}
	if _, err := Bind(MustParse("R.missing = 1"), baseSchema, detailSchema); err == nil {
		t.Error("unknown detail column must fail to bind")
	}
	if _, err := Bind(MustParse("R.di = 1"), baseSchema, nil); err == nil {
		t.Error("detail reference with nil detail schema must fail")
	}
	if _, err := Bind(MustParse("B.bi = 1"), nil, detailSchema); err == nil {
		t.Error("base reference with nil base schema must fail")
	}
	// Unbound column evaluation errors rather than panics.
	if _, err := C(SideBase, "bi").Eval(baseRow, nil); err == nil {
		t.Error("unbound Eval must error")
	}
}

func TestBindDoesNotMutate(t *testing.T) {
	orig := MustParse("B.bi = R.di")
	_ = MustBind(orig, baseSchema, detailSchema)
	col := orig.(*Bin).L.(*Col)
	if col.Idx != -1 {
		t.Error("Bind mutated the original tree")
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"B.bi = R.di && R.df >= 0.5",
		"(B.bi + B.bf) * 2 < R.di - 3",
		"B.bs = 'x''y' || !(R.di != 4)",
		"NOT (B.bi % 2 = 0) AND true",
		"null = B.bi",
		"-(B.bi) <= -3",
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", e1.String(), src, err)
		}
		b1 := MustBind(e1, baseSchema, detailSchema)
		b2 := MustBind(e2, baseSchema, detailSchema)
		v1, err1 := b1.Eval(baseRow, detailRow)
		v2, err2 := b2.Eval(baseRow, detailRow)
		if (err1 == nil) != (err2 == nil) || (err1 == nil && !v1.Equal(v2)) {
			t.Errorf("%q: round-trip changed semantics: %v/%v vs %v/%v", src, v1, err1, v2, err2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1 + 2",
		"B.",
		"B 1",
		"X.col = 1",
		"'unterminated",
		"1 @ 2",
		"1 2",
		"B..x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// 1 + 2 * 3 = 7, not 9.
	v := evalBound(t, "1 + 2 * 3 = 7")
	if !v.Bool() {
		t.Error("precedence: 1 + 2 * 3 should be 7")
	}
	// Comparison binds tighter than AND.
	v = evalBound(t, "1 < 2 && 3 < 4")
	if !v.Bool() {
		t.Error("precedence: comparisons under AND")
	}
	// AND binds tighter than OR.
	v = evalBound(t, "false && false || true")
	if !v.Bool() {
		t.Error("precedence: AND over OR")
	}
	// Doubled-quote escape.
	e := MustParse("'it''s'")
	if e.(*Lit).Val.Str != "it's" {
		t.Errorf("escape: %q", e.(*Lit).Val.Str)
	}
}

func TestParseNumberForms(t *testing.T) {
	if v := evalBound(t, "1e2 = 100"); !v.Bool() {
		t.Error("scientific notation")
	}
	if v := evalBound(t, ".5 = 0.5"); !v.Bool() {
		t.Error("leading-dot float")
	}
	if v := evalBound(t, "2.5e-1 = 0.25"); !v.Bool() {
		t.Error("negative exponent")
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "+" || OpAnd.String() != "&&" {
		t.Error("Op.String basic cases")
	}
	if !strings.HasPrefix(Op(99).String(), "Op(") {
		t.Error("unknown op string")
	}
	if !OpEq.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison")
	}
}
