package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"skalla/internal/relation"
)

// Parse parses the textual condition/expression syntax used by the CLIs and
// examples. Grammar (precedence low→high):
//
//	expr    := or
//	or      := and  ( ("||" | OR)  and )*
//	and     := not  ( ("&&" | AND) not )*
//	not     := ("!" | NOT) not | cmp
//	cmp     := add  ( ("=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">=") add
//	                | IS [NOT] NULL )?
//	add     := mul  ( ("+" | "-") mul )*
//	mul     := unary ( ("*" | "/" | "%") unary )*
//	unary   := "-" unary | primary
//	primary := number | 'string' | TRUE | FALSE | NULL | colref | "(" expr ")"
//	colref  := ("B" | "R") "." identifier
//
// Keywords are case-insensitive; column names are case-sensitive. The result
// is unbound (bind with Bind before evaluating).
func Parse(input string) (Expr, error) {
	return parseWith(input, nil)
}

// ParseDefaultSide is Parse with bare column references allowed: an
// identifier without a B./R. prefix becomes a column reference on the given
// side. Used by the SQL-style front end, where WHERE predicates reference
// detail columns without qualification.
func ParseDefaultSide(input string, side Side) (Expr, error) {
	return parseWith(input, &side)
}

func parseWith(input string, defaultSide *Side) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, defaultSide: defaultSide}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("expr: unexpected %q at offset %d", p.peek().text, p.peek().pos)
	}
	return e, nil
}

// MustParse is Parse but panics on error; for statically known expressions.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNumber
	tokString
	tokIdent
	tokOp
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == quote {
					if i+1 < n && input[i+1] == quote { // doubled quote escapes
						sb.WriteByte(quote)
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("expr: unterminated string at offset %d", start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "&&", "||", "==", "!=", "<>", "<=", ">=":
				toks = append(toks, token{tokOp, two, start})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '=', '<', '>', '!', '(', ')', '.', ',':
				toks = append(toks, token{tokOp, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("expr: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

type parser struct {
	toks        []token
	pos         int
	defaultSide *Side
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) atEnd() bool { return p.peek().kind == tokEOF }

func (p *parser) acceptOp(ops ...string) (string, bool) {
	t := p.peek()
	if t.kind != tokOp {
		return "", false
	}
	for _, o := range ops {
		if t.text == o {
			p.next()
			return o, true
		}
	}
	return "", false
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("||"); !ok && !p.acceptKeyword("OR") {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = B2(OpOr, l, r)
	}
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("&&"); !ok && !p.acceptKeyword("AND") {
			return l, nil
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = B2(OpAnd, l, r)
	}
}

func (p *parser) parseNot() (Expr, error) {
	if _, ok := p.acceptOp("!"); ok || p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not(x), nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]Op{
	"=": OpEq, "==": OpEq, "!=": OpNe, "<>": OpNe,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if !p.acceptKeyword("NULL") {
			return nil, fmt.Errorf("expr: expected NULL after IS at offset %d", p.peek().pos)
		}
		if neg {
			return IsNotNull(l), nil
		}
		return IsNull(l), nil
	}
	if op, ok := p.acceptOp("=", "==", "!=", "<>", "<=", ">=", "<", ">"); ok {
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return B2(cmpOps[op], l, r), nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("+", "-")
		if !ok {
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			l = B2(OpAdd, l, r)
		} else {
			l = B2(OpSub, l, r)
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("*", "/", "%")
		if !ok {
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch op {
		case "*":
			l = B2(OpMul, l, r)
		case "/":
			l = B2(OpDiv, l, r)
		default:
			l = B2(OpMod, l, r)
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if _, ok := p.acceptOp("-"); ok {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: OpNeg, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("expr: bad number %q at offset %d", t.text, t.pos)
			}
			return Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at offset %d", t.text, t.pos)
		}
		return Int(i), nil
	case tokString:
		p.next()
		return Str(t.text), nil
	case tokIdent:
		switch {
		case strings.EqualFold(t.text, "true"):
			p.next()
			return L(relation.NewBool(true)), nil
		case strings.EqualFold(t.text, "false"):
			p.next()
			return L(relation.NewBool(false)), nil
		case strings.EqualFold(t.text, "null"):
			p.next()
			return L(relation.Null), nil
		}
		// Column reference: SIDE "." name, or a bare identifier when a
		// default side is configured.
		var side Side
		qualified := false
		switch t.text {
		case "B", "b":
			side, qualified = SideBase, true
		case "R", "r":
			side, qualified = SideDetail, true
		}
		if qualified {
			p.next()
			if _, ok := p.acceptOp("."); ok {
				nt := p.next()
				if nt.kind != tokIdent {
					return nil, fmt.Errorf("expr: expected column name after %q. at offset %d", t.text, nt.pos)
				}
				return C(side, nt.text), nil
			}
			// "B" / "R" without a dot: fall through to bare-identifier
			// handling (the token is already consumed).
			if p.defaultSide != nil {
				return C(*p.defaultSide, t.text), nil
			}
			return nil, fmt.Errorf("expr: expected '.' after %q at offset %d", t.text, t.pos)
		}
		if p.defaultSide != nil {
			p.next()
			return C(*p.defaultSide, t.text), nil
		}
		return nil, fmt.Errorf("expr: unknown identifier %q at offset %d (column references are B.name or R.name)", t.text, t.pos)
	case tokOp:
		if t.text == "(" {
			p.next()
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if _, ok := p.acceptOp(")"); !ok {
				return nil, fmt.Errorf("expr: expected ')' at offset %d", p.peek().pos)
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("expr: unexpected %q at offset %d", t.text, t.pos)
}
