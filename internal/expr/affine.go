package expr

import "skalla/internal/relation"

// Affine is the view of an expression as c*Col + d over a single detail-side
// numeric column. It supports the generalized group-reduction analysis of
// Thm. 4: the paper's example rewrites
//
//	B.DestAS + B.SourceAS < Flow.SourceAS*2   with  SourceAS ∈ [1,25] at site i
//
// into the base-only predicate B.DestAS + B.SourceAS < 50. Given a range
// [lo,hi] for Col, the range of the affine form is [min,max] and a comparison
// against a base-only expression can be relaxed to the achievable bound.
type Affine struct {
	Col string  // detail column name
	C   float64 // coefficient
	D   float64 // constant offset
}

// Range maps a column value range through the affine form.
func (a Affine) Range(lo, hi float64) (float64, float64) {
	x, y := a.C*lo+a.D, a.C*hi+a.D
	if x > y {
		x, y = y, x
	}
	return x, y
}

// DetailAffine tries to view e as an affine function of exactly one
// detail-side column, with no base-side references. It returns (affine, true)
// on success. A bare constant does not qualify (no column).
func DetailAffine(e Expr) (Affine, bool) {
	col, c, d, ok := affineWalk(e)
	if !ok || col == "" || c == 0 {
		return Affine{}, false
	}
	return Affine{Col: col, C: c, D: d}, true
}

// affineWalk returns (colName, coefficient, offset, ok). colName "" means the
// subtree is constant.
func affineWalk(e Expr) (string, float64, float64, bool) {
	switch n := e.(type) {
	case *Lit:
		f, ok := n.Val.AsFloat()
		if !ok {
			return "", 0, 0, false
		}
		return "", 0, f, true
	case *Col:
		if n.Side != SideDetail {
			return "", 0, 0, false
		}
		return n.Name, 1, 0, true
	case *Un:
		if n.Op != OpNeg {
			return "", 0, 0, false
		}
		col, c, d, ok := affineWalk(n.X)
		return col, -c, -d, ok
	case *Bin:
		lc, lco, ld, lok := affineWalk(n.L)
		rc, rco, rd, rok := affineWalk(n.R)
		if !lok || !rok {
			return "", 0, 0, false
		}
		switch n.Op {
		case OpAdd, OpSub:
			col, ok := mergeCols(lc, rc)
			if !ok {
				return "", 0, 0, false
			}
			if n.Op == OpAdd {
				return col, lco + rco, ld + rd, true
			}
			return col, lco - rco, ld - rd, true
		case OpMul:
			// Exactly one side may contain the column.
			switch {
			case lc == "" && rc == "":
				return "", 0, ld * rd, true
			case lc == "":
				return rc, ld * rco, ld * rd, true
			case rc == "":
				return lc, rd * lco, rd * ld, true
			default:
				return "", 0, 0, false
			}
		case OpDiv:
			// Only division by a nonzero constant keeps affinity.
			if rc != "" || rd == 0 {
				return "", 0, 0, false
			}
			return lc, lco / rd, ld / rd, true
		default:
			return "", 0, 0, false
		}
	default:
		return "", 0, 0, false
	}
}

func mergeCols(a, b string) (string, bool) {
	switch {
	case a == "":
		return b, true
	case b == "" || a == b:
		return a, true
	default:
		return "", false // two distinct columns: not single-column affine
	}
}

// RelaxComparison builds the base-only predicate ¬ψ_i for one conjunct of the
// form  baseExpr op affine(detailCol), given that detailCol takes values in
// [lo,hi] at site i (Thm. 4). It returns the relaxed predicate over the base
// tuple, or (nil, false) if op cannot be relaxed.
//
// The relaxation keeps exactly the base tuples for which some detail value in
// [lo,hi] could satisfy the comparison:
//
//	b < E(x)  possible iff b <  max E   (similarly <=)
//	b > E(x)  possible iff b >  min E   (similarly >=)
//	b = E(x)  possible iff min E <= b <= max E
func RelaxComparison(op Op, baseExpr Expr, a Affine, lo, hi float64) (Expr, bool) {
	mn, mx := a.Range(lo, hi)
	switch op {
	case OpLt:
		return B2(OpLt, baseExpr, Float(mx)), true
	case OpLe:
		return B2(OpLe, baseExpr, Float(mx)), true
	case OpGt:
		return B2(OpGt, baseExpr, Float(mn)), true
	case OpGe:
		return B2(OpGe, baseExpr, Float(mn)), true
	case OpEq:
		return And(B2(OpGe, baseExpr, Float(mn)), B2(OpLe, baseExpr, Float(mx))), true
	default:
		return nil, false
	}
}

// FlipComparison mirrors a comparison operator (for rewriting "affine op
// base" as "base flipped-op affine").
func FlipComparison(op Op) (Op, bool) {
	switch op {
	case OpLt:
		return OpGt, true
	case OpLe:
		return OpGe, true
	case OpGt:
		return OpLt, true
	case OpGe:
		return OpLe, true
	case OpEq:
		return OpEq, true
	case OpNe:
		return OpNe, true
	default:
		return OpInvalid, false
	}
}

// ConstOf returns the constant value of an expression with no column
// references, if it is indeed constant.
func ConstOf(e Expr) (relation.Value, bool) {
	b, d := Attrs(e)
	if len(b) != 0 || len(d) != 0 {
		return relation.Null, false
	}
	v, err := e.Eval(nil, nil)
	if err != nil {
		return relation.Null, false
	}
	return v, true
}
