package expr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"skalla/internal/relation"
)

func TestSimplifyRewrites(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"true && B.a = 1", "(B.a = 1)"},
		{"B.a = 1 && true", "(B.a = 1)"},
		{"false && B.a = 1", "false"},
		{"B.a = 1 && false", "false"},
		{"true || B.a = 1", "true"},
		{"B.a = 1 || true", "true"},
		{"false || B.a = 1", "(B.a = 1)"},
		{"B.a = 1 || false", "(B.a = 1)"},
		{"!true", "false"},
		{"!!(B.a = 1)", "(B.a = 1)"},
		{"1 + 2 * 3", "7"},
		{"1 + 2 < 4", "true"},
		{"null IS NULL", "true"},
		{"5 IS NOT NULL", "true"},
		{"B.a + 0 = 1", "((B.a + 0) = 1)"}, // arithmetic identities are not rewritten
		{"B.a = R.b", "(B.a = R.b)"},
		{"(true && true) && (false || B.a > 2)", "(B.a > 2)"},
		{"'a' + 1 = 2", "(('a' + 1) = 2)"}, // would error at runtime: left intact
	}
	for _, c := range cases {
		got := Simplify(MustParse(c.in))
		want := MustParse(c.want)
		if normalize(got) != normalize(want) {
			t.Errorf("Simplify(%q) = %s, want %s", c.in, got, want)
		}
	}
}

// normalize strips the outer parentheses ambiguity by re-rendering.
func normalize(e Expr) string { return e.String() }

// randomExpr builds a random boolean expression over the test schemas, deep
// enough to exercise every rewrite.
func randomExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return "true"
		case 1:
			return "false"
		case 2:
			return fmt.Sprintf("B.bi %s %d", []string{"=", "<", ">"}[rng.Intn(3)], rng.Intn(20))
		case 3:
			return fmt.Sprintf("R.di %s %d", []string{"=", "<=", ">="}[rng.Intn(3)], rng.Intn(20))
		case 4:
			return fmt.Sprintf("%d %s %d", rng.Intn(9), []string{"=", "<", ">"}[rng.Intn(3)], rng.Intn(9))
		default:
			return "B.bf IS NULL"
		}
	}
	switch rng.Intn(4) {
	case 0:
		return "(" + randomExpr(rng, depth-1) + " && " + randomExpr(rng, depth-1) + ")"
	case 1:
		return "(" + randomExpr(rng, depth-1) + " || " + randomExpr(rng, depth-1) + ")"
	case 2:
		return "!(" + randomExpr(rng, depth-1) + ")"
	default:
		return randomExpr(rng, depth-1)
	}
}

// Simplification must preserve condition results on random expressions and
// random rows (testing/quick drives the seeds).
func TestSimplifyPreservesSemantics(t *testing.T) {
	prop := func(seed int64, bi, di int16) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomExpr(rng, 3+rng.Intn(3))
		orig := MustParse(src)
		simp := Simplify(orig)
		base := relation.Tuple{relation.NewInt(int64(bi)), relation.Null, relation.NewString("s")}
		det := relation.Tuple{relation.NewInt(int64(di)), relation.NewFloat(float64(di)), relation.NewString("t")}
		b1, err1 := Bind(orig, baseSchema, detailSchema)
		b2, err2 := Bind(simp, baseSchema, detailSchema)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: bindability changed for %s -> %s", seed, orig, simp)
			return false
		}
		if err1 != nil {
			return true
		}
		v1, e1 := EvalCond(b1, base, det)
		v2, e2 := EvalCond(b2, base, det)
		if (e1 == nil) != (e2 == nil) || v1 != v2 {
			t.Logf("seed %d: %s (=%v,%v) vs %s (=%v,%v)", seed, orig, v1, e1, simp, v2, e2)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Simplified trees never grow.
func TestSimplifyNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		e := MustParse(randomExpr(rng, 4))
		if size(Simplify(e)) > size(e) {
			t.Fatalf("Simplify grew %s -> %s", e, Simplify(e))
		}
	}
}

func size(e Expr) int {
	switch n := e.(type) {
	case *Bin:
		return 1 + size(n.L) + size(n.R)
	case *Un:
		return 1 + size(n.X)
	default:
		return 1
	}
}
