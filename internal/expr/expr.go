// Package expr implements the scalar expression and condition language used
// in GMDJ expressions. A condition θ_i of a GMDJ operator (Definition 1 in
// the paper) is a boolean expression over the attributes of the base-values
// relation B and the detail relation R; this package provides the expression
// tree, name binding, evaluation with SQL NULL semantics, a text parser, and
// the static analyses (conjunct decomposition, equality links, affine range
// propagation) that power the distributed optimizations of Sect. 4.
package expr

import (
	"encoding/gob"
	"fmt"
	"strings"

	"skalla/internal/relation"
)

// Side says which relation a column reference addresses: the base-values
// relation B or the detail relation R.
type Side uint8

const (
	// SideBase addresses the base-values relation (written "B.col").
	SideBase Side = iota
	// SideDetail addresses the detail relation (written "R.col").
	SideDetail
)

// String returns the conventional one-letter prefix for the side.
func (s Side) String() string {
	if s == SideBase {
		return "B"
	}
	return "R"
}

// Op enumerates binary and unary operators.
type Op uint8

const (
	OpInvalid Op = iota
	// Arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	// Comparison.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Logical.
	OpAnd
	OpOr
	// Unary.
	OpNot
	OpNeg
	// OpIsNull tests a value for SQL NULL; it is the only predicate that is
	// true on NULL and enables grouping-set / data-cube conditions such as
	// (B.d IS NULL || B.d = R.d).
	OpIsNull
	// OpIsNotNull is the negation of OpIsNull.
	OpIsNotNull
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||", OpNot: "!", OpNeg: "-",
	OpIsNull: "IS NULL", OpIsNotNull: "IS NOT NULL",
}

// String returns the surface syntax of the operator.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsComparison reports whether o is one of = != < <= > >=.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// Expr is a node of an expression tree. Expressions are immutable after
// construction; Bind returns resolved copies rather than mutating.
type Expr interface {
	// Eval evaluates the (bound) expression against one base tuple and one
	// detail tuple. Either side may be nil if the expression does not
	// reference it.
	Eval(base, detail relation.Tuple) (relation.Value, error)
	// String renders the expression in parseable surface syntax.
	String() string
}

// Col is a column reference. Before binding only Side and Name are set; Bind
// resolves Idx against the corresponding schema.
type Col struct {
	Side Side
	Name string
	Idx  int
}

// C constructs an unbound column reference.
func C(side Side, name string) *Col { return &Col{Side: side, Name: name, Idx: -1} }

// Lit is a literal constant.
type Lit struct {
	Val relation.Value
}

// L constructs a literal.
func L(v relation.Value) *Lit { return &Lit{Val: v} }

// Int is shorthand for an integer literal.
func Int(v int64) *Lit { return L(relation.NewInt(v)) }

// Float is shorthand for a float literal.
func Float(v float64) *Lit { return L(relation.NewFloat(v)) }

// Str is shorthand for a string literal.
func Str(v string) *Lit { return L(relation.NewString(v)) }

// Bin is a binary operation.
type Bin struct {
	Op   Op
	L, R Expr
}

// B2 constructs a binary node.
func B2(op Op, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Eq builds l = r.
func Eq(l, r Expr) *Bin { return B2(OpEq, l, r) }

// And builds the conjunction of one or more expressions.
func And(es ...Expr) Expr {
	if len(es) == 0 {
		return L(relation.NewBool(true))
	}
	out := es[0]
	for _, e := range es[1:] {
		out = B2(OpAnd, out, e)
	}
	return out
}

// Or builds the disjunction of one or more expressions.
func Or(es ...Expr) Expr {
	if len(es) == 0 {
		return L(relation.NewBool(false))
	}
	out := es[0]
	for _, e := range es[1:] {
		out = B2(OpOr, out, e)
	}
	return out
}

// Un is a unary operation (OpNot or OpNeg).
type Un struct {
	Op Op
	X  Expr
}

// Not negates a boolean expression.
func Not(x Expr) *Un { return &Un{Op: OpNot, X: x} }

// IsNull tests x for NULL.
func IsNull(x Expr) *Un { return &Un{Op: OpIsNull, X: x} }

// IsNotNull tests x for non-NULL.
func IsNotNull(x Expr) *Un { return &Un{Op: OpIsNotNull, X: x} }

func (c *Col) String() string { return c.Side.String() + "." + c.Name }
func (l *Lit) String() string {
	if l.Val.Kind == relation.KindString {
		// Double embedded quotes so the output re-parses.
		return "'" + strings.ReplaceAll(l.Val.Str, "'", "''") + "'"
	}
	return l.Val.String()
}
func (b *Bin) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}
func (u *Un) String() string {
	if u.Op == OpIsNull || u.Op == OpIsNotNull {
		return "(" + u.X.String() + " " + u.Op.String() + ")"
	}
	return u.Op.String() + "(" + u.X.String() + ")"
}

func init() {
	// Expressions travel inside query plans over gob transports; register the
	// concrete node types so interface-typed fields encode.
	gob.Register(&Col{})
	gob.Register(&Lit{})
	gob.Register(&Bin{})
	gob.Register(&Un{})
}
