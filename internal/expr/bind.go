package expr

import (
	"fmt"

	"skalla/internal/relation"
)

// Bind resolves every column reference in e against the base and detail
// schemas, returning a new tree with indices set. Either schema may be nil
// when the corresponding side must not be referenced. Binding is the only
// step that can fail on unknown names; evaluation assumes a bound tree.
func Bind(e Expr, base, detail relation.Schema) (Expr, error) {
	switch n := e.(type) {
	case *Col:
		var s relation.Schema
		if n.Side == SideBase {
			s = base
		} else {
			s = detail
		}
		if s == nil {
			return nil, fmt.Errorf("expr: reference %s but that side is not available here", n)
		}
		idx := s.Index(n.Name)
		if idx < 0 {
			return nil, fmt.Errorf("expr: no column %q on side %s (schema %s)", n.Name, n.Side, s)
		}
		return &Col{Side: n.Side, Name: n.Name, Idx: idx}, nil
	case *Lit:
		return n, nil
	case *Bin:
		l, err := Bind(n.L, base, detail)
		if err != nil {
			return nil, err
		}
		r, err := Bind(n.R, base, detail)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: n.Op, L: l, R: r}, nil
	case *Un:
		x, err := Bind(n.X, base, detail)
		if err != nil {
			return nil, err
		}
		return &Un{Op: n.Op, X: x}, nil
	default:
		return nil, fmt.Errorf("expr: unknown node type %T", e)
	}
}

// MustBind is Bind but panics on error; for tests and static expressions.
func MustBind(e Expr, base, detail relation.Schema) Expr {
	out, err := Bind(e, base, detail)
	if err != nil {
		panic(err)
	}
	return out
}
