package expr

import (
	"fmt"
	"math"

	"skalla/internal/relation"
)

// Eval implements Expr for column references.
func (c *Col) Eval(base, detail relation.Tuple) (relation.Value, error) {
	var t relation.Tuple
	if c.Side == SideBase {
		t = base
	} else {
		t = detail
	}
	if c.Idx < 0 {
		return relation.Null, fmt.Errorf("expr: unbound column %s", c)
	}
	if c.Idx >= len(t) {
		return relation.Null, fmt.Errorf("expr: column %s index %d out of range (tuple arity %d)", c, c.Idx, len(t))
	}
	return t[c.Idx], nil
}

// Eval implements Expr for literals.
func (l *Lit) Eval(_, _ relation.Tuple) (relation.Value, error) { return l.Val, nil }

// Eval implements Expr for binary operations.
//
// NULL semantics follow SQL collapsed to two-valued logic: arithmetic on NULL
// yields NULL; comparisons involving NULL (or incomparable kinds) yield
// false; AND/OR treat NULL as false.
func (b *Bin) Eval(base, detail relation.Tuple) (relation.Value, error) {
	// Short-circuit logical operators.
	switch b.Op {
	case OpAnd, OpOr:
		lv, err := b.L.Eval(base, detail)
		if err != nil {
			return relation.Null, err
		}
		lb, err := truthy(lv, b.L)
		if err != nil {
			return relation.Null, err
		}
		if b.Op == OpAnd && !lb {
			return relation.NewBool(false), nil
		}
		if b.Op == OpOr && lb {
			return relation.NewBool(true), nil
		}
		rv, err := b.R.Eval(base, detail)
		if err != nil {
			return relation.Null, err
		}
		rb, err := truthy(rv, b.R)
		if err != nil {
			return relation.Null, err
		}
		return relation.NewBool(rb), nil
	}

	lv, err := b.L.Eval(base, detail)
	if err != nil {
		return relation.Null, err
	}
	rv, err := b.R.Eval(base, detail)
	if err != nil {
		return relation.Null, err
	}

	switch {
	case b.Op.IsComparison():
		return evalComparison(b.Op, lv, rv), nil
	case b.Op == OpAdd || b.Op == OpSub || b.Op == OpMul || b.Op == OpDiv || b.Op == OpMod:
		return evalArith(b.Op, lv, rv)
	default:
		return relation.Null, fmt.Errorf("expr: invalid binary operator %s", b.Op)
	}
}

// Eval implements Expr for unary operations.
func (u *Un) Eval(base, detail relation.Tuple) (relation.Value, error) {
	v, err := u.X.Eval(base, detail)
	if err != nil {
		return relation.Null, err
	}
	switch u.Op {
	case OpIsNull:
		return relation.NewBool(v.IsNull()), nil
	case OpIsNotNull:
		return relation.NewBool(!v.IsNull()), nil
	case OpNot:
		bb, err := truthy(v, u.X)
		if err != nil {
			return relation.Null, err
		}
		return relation.NewBool(!bb), nil
	case OpNeg:
		switch v.Kind {
		case relation.KindNull:
			return relation.Null, nil
		case relation.KindInt:
			return relation.NewInt(-v.Int), nil
		case relation.KindFloat:
			return relation.NewFloat(-v.Float), nil
		default:
			return relation.Null, fmt.Errorf("expr: cannot negate %s value", v.Kind)
		}
	default:
		return relation.Null, fmt.Errorf("expr: invalid unary operator %s", u.Op)
	}
}

// truthy coerces a condition result to bool: BOOL is itself, NULL is false.
func truthy(v relation.Value, src Expr) (bool, error) {
	switch v.Kind {
	case relation.KindBool:
		return v.Bool(), nil
	case relation.KindNull:
		return false, nil
	default:
		return false, fmt.Errorf("expr: %s evaluates to %s, want BOOL", src, v.Kind)
	}
}

// EvalCond evaluates a boolean condition, coercing NULL to false.
func EvalCond(e Expr, base, detail relation.Tuple) (bool, error) {
	v, err := e.Eval(base, detail)
	if err != nil {
		return false, err
	}
	return truthy(v, e)
}

func evalComparison(op Op, l, r relation.Value) relation.Value {
	if l.IsNull() || r.IsNull() {
		return relation.NewBool(false)
	}
	if op == OpEq || op == OpNe {
		eq := l.Equal(r)
		// Cross-kind non-numeric equality is false, handled by Equal.
		if op == OpEq {
			return relation.NewBool(eq)
		}
		return relation.NewBool(!eq)
	}
	c, ok := l.Compare(r)
	if !ok {
		return relation.NewBool(false)
	}
	var res bool
	switch op {
	case OpLt:
		res = c < 0
	case OpLe:
		res = c <= 0
	case OpGt:
		res = c > 0
	case OpGe:
		res = c >= 0
	}
	return relation.NewBool(res)
}

func evalArith(op Op, l, r relation.Value) (relation.Value, error) {
	if l.IsNull() || r.IsNull() {
		return relation.Null, nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return relation.Null, fmt.Errorf("expr: arithmetic %s on %s and %s", op, l.Kind, r.Kind)
	}
	// Integer arithmetic stays integral except division, which follows SQL
	// integer division only when exact is not required; we use float division
	// to match the paper's avg-style predicates (sum1/cnt1).
	if l.Kind == relation.KindInt && r.Kind == relation.KindInt && op != OpDiv {
		switch op {
		case OpAdd:
			return relation.NewInt(l.Int + r.Int), nil
		case OpSub:
			return relation.NewInt(l.Int - r.Int), nil
		case OpMul:
			return relation.NewInt(l.Int * r.Int), nil
		case OpMod:
			if r.Int == 0 {
				return relation.Null, nil
			}
			return relation.NewInt(l.Int % r.Int), nil
		}
	}
	lf, _ := l.AsFloat()
	rf, _ := r.AsFloat()
	switch op {
	case OpAdd:
		return relation.NewFloat(lf + rf), nil
	case OpSub:
		return relation.NewFloat(lf - rf), nil
	case OpMul:
		return relation.NewFloat(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return relation.Null, nil
		}
		return relation.NewFloat(lf / rf), nil
	case OpMod:
		if rf == 0 {
			return relation.Null, nil
		}
		return relation.NewFloat(math.Mod(lf, rf)), nil
	}
	return relation.Null, fmt.Errorf("expr: invalid arithmetic operator %s", op)
}
