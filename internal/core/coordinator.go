// Package core implements the Skalla coordinator: Alg. GMDJDistribEval of
// Sect. 3. The coordinator compiles a distributed plan (internal/plan),
// drives the per-round exchange with the sites (internal/transport), and
// synchronizes the sites' sub-aggregate relations into the base-result
// structure X per Theorem 1, recording the full cost breakdown
// (internal/stats).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"skalla/internal/distrib"
	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// Coordinator executes complex GMDJ expressions against a set of Skalla
// sites.
type Coordinator struct {
	sites        []transport.Site
	cat          *distrib.Catalog
	net          stats.NetModel
	blockRows    int
	tracer       Tracer
	retry        RetryPolicy
	mergeWorkers int
	slowQuery    time.Duration
	memBudget    int64        // per-query coordinator memory budget (0 = off)
	admit        *admission   // nil = admission control off
	plans        *planCache   // nil = plan caching off
	results      *resultCache // nil = result caching off
	flights      *flightGroup // nil = single-flight collapsing off
	batcher      *siteBatcher // nil = site-call batching off
}

// New creates a coordinator. cat may be nil (no distribution knowledge); net
// may be the zero model (no modeled communication time).
func New(sites []transport.Site, cat *distrib.Catalog, net stats.NetModel) (*Coordinator, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("core: coordinator needs at least one site")
	}
	return &Coordinator{sites: sites, cat: cat, net: net}, nil
}

// SetRowBlocking makes the sites return H_i in blocks of at most rows rows
// (Sect. 3.2 row blocking); the coordinator synchronizes blocks as they
// arrive in either mode. Zero (the default) ships each H_i whole.
func (c *Coordinator) SetRowBlocking(rows int) { c.blockRows = rows }

// SetMergeWorkers sets how many per-site stage commits the streaming
// synchronization may run concurrently: 0 (the default) picks
// min(GOMAXPROCS, sites), 1 restores the serial merge loop, n > 1 allows up
// to n concurrent commits (X rows are guarded by the merger's lock stripes).
func (c *Coordinator) SetMergeWorkers(n int) { c.mergeWorkers = n }

func (c *Coordinator) resolveMergeWorkers() int {
	w := c.mergeWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(c.sites) {
		w = len(c.sites)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// NumSites returns the number of attached sites.
func (c *Coordinator) NumSites() int { return len(c.sites) }

// Result is the outcome of one distributed evaluation.
type Result struct {
	Rel     *relation.Relation
	Metrics *stats.Metrics
	Plan    *plan.Plan
	// Profile is the stitched per-round, per-site-call cost record of the
	// evaluation (also retained in obs.Profiles for /debug/queries).
	Profile *obs.QueryProfile
}

// schemaSource adapts site 0 into a gmdj.SchemaSource with caching, so
// planning can resolve detail schemas without repeated metadata calls.
type schemaSource struct {
	ctx  context.Context
	site transport.Site
	mu   sync.Mutex
	//skallavet:allow stringkey -- catalog cache keyed by relation name: one lookup per plan, not per tuple
	cache map[string]relation.Schema
}

func (s *schemaSource) DetailSchema(name string) (relation.Schema, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sch, ok := s.cache[name]; ok {
		return sch, nil
	}
	sch, err := s.site.DetailSchema(s.ctx, name)
	if err != nil {
		return nil, err
	}
	s.cache[name] = sch
	return sch, nil
}

// SchemaSource returns a caching schema source backed by the first site.
func (c *Coordinator) SchemaSource(ctx context.Context) gmdj.SchemaSource {
	//skallavet:allow stringkey -- catalog cache keyed by relation name: one lookup per plan, not per tuple
	return &schemaSource{ctx: ctx, site: c.sites[0], cache: make(map[string]relation.Schema)}
}

// Plan compiles the distributed plan for a query without executing it, from
// the legacy optimization switches (a shim over PlanWith).
func (c *Coordinator) Plan(ctx context.Context, q gmdj.Query, opts plan.Options) (*plan.Plan, error) {
	pl, err := plan.New(q, c.SchemaSource(ctx), c.cat, len(c.sites), opts)
	if err != nil {
		return nil, err
	}
	recordPlanObs(pl)
	return pl, nil
}

// PlanWith compiles the distributed plan for a query under a rule selection
// (including plan.SelectAuto, which picks rules per query from the cost
// model), without executing it.
func (c *Coordinator) PlanWith(ctx context.Context, q gmdj.Query, sel plan.Selection) (*plan.Plan, error) {
	pl, err := plan.Compile(q, c.SchemaSource(ctx), c.cat, len(c.sites), sel, plan.DefaultCostModel(c.net))
	if err != nil {
		return nil, err
	}
	recordPlanObs(pl)
	return pl, nil
}

// recordPlanObs records the chosen plan's rule applications and cost
// estimate (auto-mode candidates that lost the enumeration are not counted).
func recordPlanObs(pl *plan.Plan) {
	for _, r := range pl.Rules {
		obs.PlanRulesApplied.With(r).Inc()
	}
	obs.PlanCostEstimate.With("down").Set(pl.Estimate.BytesDown)
	obs.PlanCostEstimate.With("up").Set(pl.Estimate.BytesUp)
}

// Execute evaluates a complex GMDJ expression and returns the result
// relation together with the full metrics record.
func (c *Coordinator) Execute(ctx context.Context, q gmdj.Query, opts plan.Options) (*Result, error) {
	src := c.SchemaSource(ctx)
	pl, err := plan.New(q, src, c.cat, len(c.sites), opts)
	if err != nil {
		return nil, err
	}
	recordPlanObs(pl)
	return c.ExecutePlan(ctx, pl, src)
}

// ExecuteWith evaluates a complex GMDJ expression under a rule selection.
func (c *Coordinator) ExecuteWith(ctx context.Context, q gmdj.Query, sel plan.Selection) (*Result, error) {
	src := c.SchemaSource(ctx)
	pl, err := plan.Compile(q, src, c.cat, len(c.sites), sel, plan.DefaultCostModel(c.net))
	if err != nil {
		return nil, err
	}
	recordPlanObs(pl)
	return c.ExecutePlan(ctx, pl, src)
}

// ExecutePlan runs a pre-compiled plan. A query ID is drawn from ctx (or
// generated) and propagated to every site call, so site-side logs and metrics
// correlate with the coordinator's rounds; the whole evaluation is recorded
// as an obs query span. When admission control is configured (SetAdmission)
// the evaluation first takes an execution slot — possibly waiting in the
// bounded queue, with the wait recorded as the profile's QueueTime — and a
// full queue fails the query with ErrAdmissionReject before any site work.
//
// When the shared-work layer is active (SetResultCache / SetSingleFlight)
// and the plan carries a fingerprint, the execution may be served from the
// super-aggregate result cache or collapsed onto a concurrent execution of
// the same fingerprint (see shared.go); either way the caller receives its
// own result relation and a profile attributed in QueryProfile.Shared.
func (c *Coordinator) ExecutePlan(ctx context.Context, pl *plan.Plan, src gmdj.SchemaSource) (*Result, error) {
	if pl.Fingerprint != "" && (c.results != nil || c.flights != nil) {
		return c.executeShared(ctx, pl, src)
	}
	return c.executeUnshared(ctx, pl, src)
}

// executeUnshared is the plain execution path: one admission slot, one span,
// one set of distributed rounds, profile finished and attached.
func (c *Coordinator) executeUnshared(ctx context.Context, pl *plan.Plan, src gmdj.SchemaSource) (*Result, error) {
	res, prof, err := c.executeSpanned(ctx, pl, src)
	c.finishProfile(prof, pl, res)
	if res != nil {
		res.Profile = prof
	}
	return res, err
}

// executeSpanned runs the admission wait, the query span, and the distributed
// rounds, returning the unfinished profile so callers (the plain path and the
// single-flight leader) can attribute it before it lands in the ring.
func (c *Coordinator) executeSpanned(ctx context.Context, pl *plan.Plan, src gmdj.SchemaSource) (*Result, *obs.QueryProfile, error) {
	queued, err := c.admit.acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer c.admit.release()
	qid := obs.QueryIDFrom(ctx)
	if qid == "" {
		qid = obs.NewQueryID()
		ctx = obs.WithQueryID(ctx, qid)
	}
	// The profile builder rides on the span's event stream; handing it to
	// StartQuery (rather than AddObserver) lets it see EventQueryStart too.
	pb := obs.NewProfileBuilder()
	span := obs.StartQuery(qid, pb)
	if c.tracer != nil {
		span.AddObserver(tracerObserver{c.tracer})
	}
	res, err := c.executePlan(ctx, pl, src, span)
	span.End(err)
	prof := pb.Profile()
	if prof != nil {
		prof.QueueTime = queued
	}
	return res, prof, err
}

func (c *Coordinator) executePlan(ctx context.Context, pl *plan.Plan, src gmdj.SchemaSource, span *obs.QuerySpan) (*Result, error) {
	segs, err := buildSegments(pl.Query, src, len(pl.Keys()))
	if err != nil {
		return nil, err
	}
	mg := newMerger(pl.Keys(), pl.XSchemas, segs, newMemBudget(c.memBudget))
	metrics := stats.NewMetrics(c.net)

	startOp := 0
	switch {
	case pl.LocalPrefix > 0:
		// Thm. 5 / Cor. 1 family: the leading LocalPrefix operators run
		// entirely at the sites, synchronized once.
		name := fmt.Sprintf("local-MD1..MD%d", pl.LocalPrefix)
		if pl.FullLocal {
			name = "local-all"
		}
		if err := c.localRound(ctx, pl, mg, metrics, span, pl.LocalPrefix, name); err != nil {
			return nil, err
		}
		startOp = pl.LocalPrefix
	case pl.SkipBaseSync:
		// Prop. 2: the base sync folds into the first operator's round.
		if err := c.localRound(ctx, pl, mg, metrics, span, 1, "base+MD1"); err != nil {
			return nil, err
		}
		startOp = 1
	default:
		if err := c.baseRound(ctx, pl, mg, metrics, span); err != nil {
			return nil, err
		}
	}
	for k := startOp; k < len(pl.Query.Ops); k++ {
		if err := c.operatorRound(ctx, pl, mg, metrics, span, k); err != nil {
			return nil, err
		}
	}

	final, err := mg.Finalize(gmdj.FinalColumns(pl.Query))
	if err != nil {
		return nil, err
	}
	return &Result{Rel: final, Metrics: metrics, Plan: pl}, nil
}

// siteResult is one site's response within a round.
type siteResult struct {
	rel  *relation.Relation
	call stats.Call
	err  error
}

// broadcast runs f against every site in parallel — each site call under the
// coordinator's retry policy — and gathers the results in site order. The
// per-site results are returned even when the broadcast fails, so callers can
// record the traffic that did happen. Cancellation wins: a cancelled context
// is reported as ctx.Err() once all calls have returned, ahead of any
// per-site error.
func (c *Coordinator) broadcast(ctx context.Context, rs *obs.RoundSpan, f func(ctx context.Context, i int, s transport.Site) (*relation.Relation, stats.Call, error)) ([]siteResult, error) {
	results := make([]siteResult, len(c.sites))
	if err := ctx.Err(); err != nil {
		return results, err
	}
	var wg sync.WaitGroup
	for i, s := range c.sites {
		wg.Add(1)
		go func(i int, s transport.Site) {
			defer wg.Done()
			err := c.withRetry(ctx, rs, i, func(actx context.Context, _ int) (stats.Call, error) {
				rel, call, err := f(actx, i, s)
				results[i] = siteResult{rel: rel, call: call, err: err}
				return call, err
			})
			results[i].err = err
		}(i, s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	for _, r := range results {
		if r.err != nil {
			return results, r.err
		}
	}
	return results, nil
}

// baseRound is round 0 of the unreduced algorithm: every site computes its
// base-values fragment B_i; the coordinator unions and de-duplicates them
// into X_0.
func (c *Coordinator) baseRound(ctx context.Context, pl *plan.Plan, mg *merger, metrics *stats.Metrics, span *obs.QuerySpan) error {
	rs := span.StartRound("base", 0)
	ctx = obs.WithRound(ctx, "base")
	results, bErr := c.broadcast(ctx, rs, func(ctx context.Context, _ int, s transport.Site) (*relation.Relation, stats.Call, error) {
		return s.EvalBase(ctx, pl.Query.Base)
	})
	// Record the calls that completed before any merge error can bail: the
	// traffic happened, and -stats-json must reflect it.
	round := stats.RoundStat{Name: "base"}
	for _, r := range results {
		if r.err == nil {
			round.Calls = append(round.Calls, r.call)
		}
	}
	coordStart := time.Now()
	err := bErr
	if err == nil {
		union := relation.New(pl.XSchemas[0])
		for _, r := range results {
			if err = union.Union(r.rel); err != nil {
				break
			}
		}
		if err == nil {
			err = mg.InitBase(union)
		}
	}
	round.CoordTime = time.Since(coordStart)
	rs.ObserveMerge(round.CoordTime)
	metrics.AddRound(round)
	for _, call := range round.Calls {
		rs.Call(obsCall(call))
	}
	rs.End(round.CoordTime)
	return err
}

// localRound ships the query prefix to every site for local evaluation and
// merges the returned X fragments (synchronization-reduced rounds of
// Prop. 2 / Cor. 1).
func (c *Coordinator) localRound(ctx context.Context, pl *plan.Plan, mg *merger, metrics *stats.Metrics, span *obs.QuerySpan, upTo int, name string) error {
	rs := span.StartRound(name, 0)
	ctx = obs.WithRound(ctx, name)
	req := engine.LocalRequest{Query: pl.Query, UpTo: upTo}
	results, bErr := c.broadcast(ctx, rs, func(ctx context.Context, _ int, s transport.Site) (*relation.Relation, stats.Call, error) {
		return s.EvalLocal(ctx, req)
	})
	// As in baseRound: calls recorded before any merge error can bail.
	round := stats.RoundStat{Name: name}
	for _, r := range results {
		if r.err == nil {
			round.Calls = append(round.Calls, r.call)
		}
	}
	coordStart := time.Now()
	err := bErr
	if err == nil {
		err = mg.InitLocal(upTo)
	}
	if err == nil {
		for _, r := range results {
			t0 := time.Now()
			if err = mg.MergeLocal(r.rel); err != nil {
				break
			}
			rs.ObserveMerge(time.Since(t0))
		}
	}
	if err == nil {
		mg.RecomputeDerived(upTo)
	}
	round.CoordTime = time.Since(coordStart)
	metrics.AddRound(round)
	for _, call := range round.Calls {
		rs.Call(obsCall(call))
	}
	rs.End(round.CoordTime)
	return err
}

// operatorRound is one round of Alg. GMDJDistribEval for operator k: the
// coordinator ships the base-result structure (reduced per Thm. 4 when a
// reducer is available) to each site, the sites compute sub-aggregates
// (guard-filtered per Prop. 1 when enabled), and the coordinator
// synchronizes the H_i into X.
//
// Synchronization is streaming (Sect. 3.2) and fault-tolerant: each site's
// H_i blocks — as they arrive, while slower sites are still computing — are
// validated and staged in a per-site buffer, and a completed stream is
// committed into X with one O(|H_i|) key-indexed merge. Staging is what
// makes the per-site retry policy sound: a stream that dies after partial
// blocks is discarded whole and re-run without double-counting into X.
func (c *Coordinator) operatorRound(ctx context.Context, pl *plan.Plan, mg *merger, metrics *stats.Metrics, span *obs.QuerySpan, k int) error {
	op := pl.Query.Ops[k]
	roundName := fmt.Sprintf("MD%d", k+1)
	rs := span.StartRound(roundName, mg.X().Len())
	ctx = obs.WithRound(ctx, roundName)
	// A stable snapshot of X: fragments reference it while the live X is
	// extended and mutated by the streaming merge.
	snap := mg.Snapshot()

	var reducers []distrib.ReductionPred
	if pl.Reducers != nil && k < len(pl.Reducers) {
		reducers = pl.Reducers[k]
	}

	// Extend X with the operator's identity columns before any stage lands.
	var coordTime time.Duration
	t0 := time.Now()
	if err := mg.Extend(); err != nil {
		return err
	}
	coordTime += time.Since(t0)

	stages := make(chan *hStage, len(c.sites))
	calls := make([]stats.Call, len(c.sites))
	errs := make([]error, len(c.sites))
	var wg sync.WaitGroup
	for i, s := range c.sites {
		wg.Add(1)
		go func(i int, s transport.Site) {
			defer wg.Done()
			// Thm. 4 fragment reduction runs here, in each site's own
			// goroutine, so the O(sites × |X|) predicate evaluation
			// parallelizes instead of serializing the round's start. It is
			// deterministic, so retries reuse the same fragment.
			frag := snap
			if reducers != nil {
				pred := reducers[i]
				f := relation.New(snap.Schema)
				for _, row := range snap.Tuples {
					keep, err := pred(row)
					if err != nil {
						errs[i] = err
						return
					}
					if keep {
						f.Tuples = append(f.Tuples, row)
					}
				}
				frag = f
			}
			req := engine.OperatorRequest{
				Base:      frag,
				Op:        op,
				Keys:      pl.Keys(),
				Guard:     pl.Guard,
				BlockRows: c.blockRows,
			}
			errs[i] = c.withRetry(ctx, rs, i, func(actx context.Context, _ int) (stats.Call, error) {
				st := mg.NewStage(k)
				call, err := c.siteOperatorStream(actx, s, req, func(block *relation.Relation) error {
					// End a cancelled query's streams promptly instead of
					// computing and staging the rest for nothing.
					if err := ctx.Err(); err != nil {
						return err
					}
					if err := st.Add(block); err != nil {
						return &permanentError{err}
					}
					return nil
				})
				calls[i] = call
				if err != nil {
					st.Discard()
					//skallavet:allow errclass -- batcher seam: siteOperatorStream only relays errors from transport site calls (the retryable class), ctx sentinels, or this callback's own classified errors; the batch delivers them through a member field the dataflow can't follow
					return call, err
				}
				select {
				case stages <- st:
					return call, nil
				case <-ctx.Done():
					st.Discard()
					return call, ctx.Err()
				}
			})
		}(i, s)
	}
	go func() {
		wg.Wait()
		close(stages)
	}()

	var mergeErr error
	if workers := c.resolveMergeWorkers(); workers <= 1 {
		for st := range stages {
			if mergeErr != nil || ctx.Err() != nil {
				st.Discard()
				continue // drain so senders never block; cancelled streams end fast
			}
			t0 := time.Now()
			mergeErr = mg.CommitStage(st, k)
			d := time.Since(t0)
			coordTime += d
			rs.ObserveMerge(d)
		}
	} else {
		// Concurrent commits: sync-merge overlaps across sites instead of
		// serializing behind one merge loop; the merger's lock stripes keep
		// same-group merges safe (see CommitStageSharded).
		var mu sync.Mutex // guards mergeErr and coordTime
		var mwg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for st := range stages {
			mu.Lock()
			failed := mergeErr != nil
			mu.Unlock()
			if failed || ctx.Err() != nil {
				st.Discard()
				continue
			}
			sem <- struct{}{}
			mwg.Add(1)
			go func(st *hStage) {
				defer mwg.Done()
				defer func() { <-sem }()
				obs.CoordMergeWorkers.Add(1)
				defer obs.CoordMergeWorkers.Add(-1)
				t0 := time.Now()
				err := mg.CommitStageSharded(st, k)
				d := time.Since(t0)
				rs.ObserveMerge(d)
				mu.Lock()
				coordTime += d
				if mergeErr == nil {
					mergeErr = err
				}
				mu.Unlock()
			}(st)
		}
		mwg.Wait()
	}

	t0 = time.Now()
	err := ctx.Err()
	if err == nil {
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	if err == nil {
		err = mergeErr
	}
	if err == nil {
		mg.RecomputeDerived(k + 1)
	}
	coordTime += time.Since(t0)
	round := stats.RoundStat{Name: roundName, Calls: calls, CoordTime: coordTime}
	metrics.AddRound(round)
	for _, call := range calls {
		rs.Call(obsCall(call))
	}
	rs.End(coordTime)
	return err
}

// TrafficBound computes the Theorem 2 bound on the number of base-structure
// rows transferred by Alg. GMDJDistribEval: Σ_{i=1..m} (2·s_i·|Q|) + s_0·|Q|,
// with s_i the number of sites participating in round i and |Q| the number
// of groups in the result.
func TrafficBound(pl *plan.Plan, resultGroups int) int {
	m := len(pl.Query.Ops)
	return (2*m + 1) * pl.NumSites * resultGroups
}
