// Package core implements the Skalla coordinator: Alg. GMDJDistribEval of
// Sect. 3. The coordinator compiles a distributed plan (internal/plan),
// drives the per-round exchange with the sites (internal/transport), and
// synchronizes the sites' sub-aggregate relations into the base-result
// structure X per Theorem 1, recording the full cost breakdown
// (internal/stats).
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"skalla/internal/distrib"
	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// Coordinator executes complex GMDJ expressions against a set of Skalla
// sites.
type Coordinator struct {
	sites     []transport.Site
	cat       *distrib.Catalog
	net       stats.NetModel
	blockRows int
	tracer    Tracer
}

// New creates a coordinator. cat may be nil (no distribution knowledge); net
// may be the zero model (no modeled communication time).
func New(sites []transport.Site, cat *distrib.Catalog, net stats.NetModel) (*Coordinator, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("core: coordinator needs at least one site")
	}
	return &Coordinator{sites: sites, cat: cat, net: net}, nil
}

// SetRowBlocking makes the sites return H_i in blocks of at most rows rows
// (Sect. 3.2 row blocking); the coordinator synchronizes blocks as they
// arrive in either mode. Zero (the default) ships each H_i whole.
func (c *Coordinator) SetRowBlocking(rows int) { c.blockRows = rows }

// NumSites returns the number of attached sites.
func (c *Coordinator) NumSites() int { return len(c.sites) }

// Result is the outcome of one distributed evaluation.
type Result struct {
	Rel     *relation.Relation
	Metrics *stats.Metrics
	Plan    *plan.Plan
}

// schemaSource adapts site 0 into a gmdj.SchemaSource with caching, so
// planning can resolve detail schemas without repeated metadata calls.
type schemaSource struct {
	ctx   context.Context
	site  transport.Site
	mu    sync.Mutex
	cache map[string]relation.Schema
}

func (s *schemaSource) DetailSchema(name string) (relation.Schema, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sch, ok := s.cache[name]; ok {
		return sch, nil
	}
	sch, err := s.site.DetailSchema(s.ctx, name)
	if err != nil {
		return nil, err
	}
	s.cache[name] = sch
	return sch, nil
}

// SchemaSource returns a caching schema source backed by the first site.
func (c *Coordinator) SchemaSource(ctx context.Context) gmdj.SchemaSource {
	return &schemaSource{ctx: ctx, site: c.sites[0], cache: make(map[string]relation.Schema)}
}

// Plan compiles the distributed plan for a query without executing it.
func (c *Coordinator) Plan(ctx context.Context, q gmdj.Query, opts plan.Options) (*plan.Plan, error) {
	return plan.New(q, c.SchemaSource(ctx), c.cat, len(c.sites), opts)
}

// Execute evaluates a complex GMDJ expression and returns the result
// relation together with the full metrics record.
func (c *Coordinator) Execute(ctx context.Context, q gmdj.Query, opts plan.Options) (*Result, error) {
	src := c.SchemaSource(ctx)
	pl, err := plan.New(q, src, c.cat, len(c.sites), opts)
	if err != nil {
		return nil, err
	}
	return c.ExecutePlan(ctx, pl, src)
}

// ExecutePlan runs a pre-compiled plan. A query ID is drawn from ctx (or
// generated) and propagated to every site call, so site-side logs and metrics
// correlate with the coordinator's rounds; the whole evaluation is recorded
// as an obs query span.
func (c *Coordinator) ExecutePlan(ctx context.Context, pl *plan.Plan, src gmdj.SchemaSource) (*Result, error) {
	qid := obs.QueryIDFrom(ctx)
	if qid == "" {
		qid = obs.NewQueryID()
		ctx = obs.WithQueryID(ctx, qid)
	}
	span := obs.StartQuery(qid)
	if c.tracer != nil {
		span.AddObserver(tracerObserver{c.tracer})
	}
	res, err := c.executePlan(ctx, pl, src, span)
	span.End(err)
	return res, err
}

func (c *Coordinator) executePlan(ctx context.Context, pl *plan.Plan, src gmdj.SchemaSource, span *obs.QuerySpan) (*Result, error) {
	segs, err := buildSegments(pl.Query, src, len(pl.Keys()))
	if err != nil {
		return nil, err
	}
	mg := newMerger(pl.Keys(), pl.XSchemas, segs)
	metrics := stats.NewMetrics(c.net)

	startOp := 0
	switch {
	case pl.LocalPrefix > 0:
		// Thm. 5 / Cor. 1 family: the leading LocalPrefix operators run
		// entirely at the sites, synchronized once.
		name := fmt.Sprintf("local-MD1..MD%d", pl.LocalPrefix)
		if pl.FullLocal {
			name = "local-all"
		}
		if err := c.localRound(ctx, pl, mg, metrics, span, pl.LocalPrefix, name); err != nil {
			return nil, err
		}
		startOp = pl.LocalPrefix
	case pl.SkipBaseSync:
		// Prop. 2: the base sync folds into the first operator's round.
		if err := c.localRound(ctx, pl, mg, metrics, span, 1, "base+MD1"); err != nil {
			return nil, err
		}
		startOp = 1
	default:
		if err := c.baseRound(ctx, pl, mg, metrics, span); err != nil {
			return nil, err
		}
	}
	for k := startOp; k < len(pl.Query.Ops); k++ {
		if err := c.operatorRound(ctx, pl, mg, metrics, span, k); err != nil {
			return nil, err
		}
	}

	final, err := mg.Finalize(gmdj.FinalColumns(pl.Query))
	if err != nil {
		return nil, err
	}
	return &Result{Rel: final, Metrics: metrics, Plan: pl}, nil
}

// siteResult is one site's response within a round.
type siteResult struct {
	rel  *relation.Relation
	call stats.Call
	err  error
}

// broadcast runs f against every site in parallel and gathers the results in
// site order. Cancellation wins: a cancelled context is reported as ctx.Err()
// once all calls have returned, ahead of any per-site error.
func (c *Coordinator) broadcast(ctx context.Context, f func(i int, s transport.Site) (*relation.Relation, stats.Call, error)) ([]siteResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]siteResult, len(c.sites))
	var wg sync.WaitGroup
	for i, s := range c.sites {
		wg.Add(1)
		go func(i int, s transport.Site) {
			defer wg.Done()
			rel, call, err := f(i, s)
			results[i] = siteResult{rel: rel, call: call, err: err}
		}(i, s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
	}
	return results, nil
}

// baseRound is round 0 of the unreduced algorithm: every site computes its
// base-values fragment B_i; the coordinator unions and de-duplicates them
// into X_0.
func (c *Coordinator) baseRound(ctx context.Context, pl *plan.Plan, mg *merger, metrics *stats.Metrics, span *obs.QuerySpan) error {
	rs := span.StartRound("base", 0)
	results, err := c.broadcast(ctx, func(_ int, s transport.Site) (*relation.Relation, stats.Call, error) {
		return s.EvalBase(ctx, pl.Query.Base)
	})
	if err != nil {
		return err
	}
	round := stats.RoundStat{Name: "base"}
	coordStart := time.Now()
	union := relation.New(pl.XSchemas[0])
	for _, r := range results {
		round.Calls = append(round.Calls, r.call)
		if err := union.Union(r.rel); err != nil {
			return err
		}
	}
	if err := mg.InitBase(union); err != nil {
		return err
	}
	round.CoordTime = time.Since(coordStart)
	rs.ObserveMerge(round.CoordTime)
	metrics.AddRound(round)
	for _, call := range round.Calls {
		rs.Call(obsCall(call))
	}
	rs.End(round.CoordTime)
	return nil
}

// localRound ships the query prefix to every site for local evaluation and
// merges the returned X fragments (synchronization-reduced rounds of
// Prop. 2 / Cor. 1).
func (c *Coordinator) localRound(ctx context.Context, pl *plan.Plan, mg *merger, metrics *stats.Metrics, span *obs.QuerySpan, upTo int, name string) error {
	rs := span.StartRound(name, 0)
	req := engine.LocalRequest{Query: pl.Query, UpTo: upTo}
	results, err := c.broadcast(ctx, func(_ int, s transport.Site) (*relation.Relation, stats.Call, error) {
		return s.EvalLocal(ctx, req)
	})
	if err != nil {
		return err
	}
	round := stats.RoundStat{Name: name}
	coordStart := time.Now()
	if err := mg.InitLocal(upTo); err != nil {
		return err
	}
	for _, r := range results {
		round.Calls = append(round.Calls, r.call)
		t0 := time.Now()
		if err := mg.MergeLocal(r.rel); err != nil {
			return err
		}
		rs.ObserveMerge(time.Since(t0))
	}
	mg.RecomputeDerived(upTo)
	round.CoordTime = time.Since(coordStart)
	metrics.AddRound(round)
	for _, call := range round.Calls {
		rs.Call(obsCall(call))
	}
	rs.End(round.CoordTime)
	return nil
}

// operatorRound is one round of Alg. GMDJDistribEval for operator k: the
// coordinator ships the base-result structure (reduced per Thm. 4 when a
// reducer is available) to each site, the sites compute sub-aggregates
// (guard-filtered per Prop. 1 when enabled), and the coordinator
// synchronizes the H_i into X.
//
// Synchronization is streaming (Sect. 3.2): each site's H_i — in row blocks
// when row blocking is on — is merged as it arrives, while slower sites are
// still computing. The key-indexed merge makes each block O(|block|).
func (c *Coordinator) operatorRound(ctx context.Context, pl *plan.Plan, mg *merger, metrics *stats.Metrics, span *obs.QuerySpan, k int) error {
	op := pl.Query.Ops[k]
	roundName := fmt.Sprintf("MD%d", k+1)
	rs := span.StartRound(roundName, mg.X().Len())
	// A stable snapshot of X: fragments reference it while the live X is
	// extended and mutated by the streaming merge.
	snap := mg.Snapshot()

	var reducers []distrib.ReductionPred
	if pl.Reducers != nil && k < len(pl.Reducers) {
		reducers = pl.Reducers[k]
	}

	// Extend X with the operator's identity columns before any block lands.
	var coordTime time.Duration
	t0 := time.Now()
	if err := mg.Extend(); err != nil {
		return err
	}
	coordTime += time.Since(t0)

	blocks := make(chan *relation.Relation, 2*len(c.sites))
	calls := make([]stats.Call, len(c.sites))
	errs := make([]error, len(c.sites))
	var wg sync.WaitGroup
	for i, s := range c.sites {
		wg.Add(1)
		go func(i int, s transport.Site) {
			defer wg.Done()
			// Thm. 4 fragment reduction runs here, in each site's own
			// goroutine, so the O(sites × |X|) predicate evaluation
			// parallelizes instead of serializing the round's start.
			frag := snap
			if reducers != nil {
				pred := reducers[i]
				f := relation.New(snap.Schema)
				for _, row := range snap.Tuples {
					keep, err := pred(row)
					if err != nil {
						errs[i] = err
						return
					}
					if keep {
						f.Tuples = append(f.Tuples, row)
					}
				}
				frag = f
			}
			call, err := s.EvalOperatorStream(ctx, engine.OperatorRequest{
				Base:      frag,
				Op:        op,
				Keys:      pl.Keys(),
				Guard:     pl.Opts.GroupReduceSite,
				BlockRows: c.blockRows,
			}, func(block *relation.Relation) error {
				// A cancelled query must not wedge the site goroutines on a
				// full channel: fail the stream instead of waiting forever.
				select {
				case blocks <- block:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			})
			calls[i], errs[i] = call, err
		}(i, s)
	}
	go func() {
		wg.Wait()
		close(blocks)
	}()

	var mergeErr error
	for b := range blocks {
		if mergeErr != nil || ctx.Err() != nil {
			relation.Recycle(b)
			continue // drain so senders never block; cancelled streams end fast
		}
		t0 := time.Now()
		mergeErr = mg.MergeH(b, k)
		d := time.Since(t0)
		coordTime += d
		rs.ObserveMerge(d)
		// The block's rows are fully folded into X; hand its storage back to
		// the transport's decode pool.
		relation.Recycle(b)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if mergeErr != nil {
		return mergeErr
	}

	t0 = time.Now()
	mg.RecomputeDerived(k + 1)
	coordTime += time.Since(t0)
	round := stats.RoundStat{Name: roundName, Calls: calls, CoordTime: coordTime}
	metrics.AddRound(round)
	for _, call := range calls {
		rs.Call(obsCall(call))
	}
	rs.End(coordTime)
	return nil
}

// TrafficBound computes the Theorem 2 bound on the number of base-structure
// rows transferred by Alg. GMDJDistribEval: Σ_{i=1..m} (2·s_i·|Q|) + s_0·|Q|,
// with s_i the number of sites participating in round i and |Q| the number
// of groups in the result.
func TrafficBound(pl *plan.Plan, resultGroups int) int {
	m := len(pl.Query.Ops)
	return (2*m + 1) * pl.NumSites * resultGroups
}
