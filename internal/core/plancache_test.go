package core

import (
	"testing"

	"skalla/internal/obs"
	"skalla/internal/plan"
)

func TestPlanCacheHitMissGeneration(t *testing.T) {
	pc := newPlanCache(4)
	key := planKey{text: "Q1", sel: "auto"}
	p1 := &plan.Plan{}

	hits0 := obs.ServerPlanCacheHits.Value()
	cold0 := obs.ServerPlanCacheMisses.With("cold").Value()
	gen0 := obs.ServerPlanCacheMisses.With("generation").Value()

	if _, ok := pc.get(key, 1); ok {
		t.Fatal("empty cache reported a hit")
	}
	if got := obs.ServerPlanCacheMisses.With("cold").Value() - cold0; got != 1 {
		t.Fatalf("cold misses = %d, want 1", got)
	}

	pc.put(key, p1, 1)
	got, ok := pc.get(key, 1)
	if !ok || got != p1 {
		t.Fatalf("get after put = (%v, %v), want (p1, true)", got, ok)
	}
	if n := obs.ServerPlanCacheHits.Value() - hits0; n != 1 {
		t.Fatalf("hits = %d, want 1", n)
	}

	// Catalog generation moved: the stale entry is dropped, not served.
	if _, ok := pc.get(key, 2); ok {
		t.Fatal("stale-generation entry served")
	}
	if n := obs.ServerPlanCacheMisses.With("generation").Value() - gen0; n != 1 {
		t.Fatalf("generation misses = %d, want 1", n)
	}
	if pc.len() != 0 {
		t.Fatalf("stale entry not evicted: len = %d", pc.len())
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	pc := newPlanCache(2)
	a := planKey{text: "A", sel: "auto"}
	b := planKey{text: "B", sel: "auto"}
	c := planKey{text: "C", sel: "auto"}
	pc.put(a, &plan.Plan{}, 1)
	pc.put(b, &plan.Plan{}, 1)
	if _, ok := pc.get(a, 1); !ok { // touch A so B is the LRU victim
		t.Fatal("A missing before eviction")
	}
	pc.put(c, &plan.Plan{}, 1)
	if pc.len() != 2 {
		t.Fatalf("len = %d, want 2", pc.len())
	}
	if _, ok := pc.get(b, 1); ok {
		t.Fatal("LRU entry B survived eviction")
	}
	if _, ok := pc.get(a, 1); !ok {
		t.Fatal("recently used entry A was evicted")
	}
	if _, ok := pc.get(c, 1); !ok {
		t.Fatal("newest entry C was evicted")
	}
}

func TestPlanCacheNilAndSelectionKeying(t *testing.T) {
	var pc *planCache // caching disabled
	pc.put(planKey{text: "Q", sel: "auto"}, &plan.Plan{}, 1)
	if _, ok := pc.get(planKey{text: "Q", sel: "auto"}, 1); ok {
		t.Fatal("nil cache reported a hit")
	}
	if pc.len() != 0 {
		t.Fatal("nil cache has nonzero len")
	}
	if newPlanCache(0) != nil {
		t.Fatal("capacity 0 should disable caching")
	}

	real := newPlanCache(4)
	pAuto, pNone := &plan.Plan{}, &plan.Plan{}
	real.put(planKey{text: "Q", sel: "auto"}, pAuto, 1)
	real.put(planKey{text: "Q", sel: "none"}, pNone, 1)
	got, ok := real.get(planKey{text: "Q", sel: "none"}, 1)
	if !ok || got != pNone {
		t.Fatal("selection is not part of the cache key")
	}
}
