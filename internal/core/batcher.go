package core

import (
	"context"
	"sync"
	"time"

	"skalla/internal/engine"
	"skalla/internal/obs"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// Cross-query site-call batching: concurrent operator rounds that aggregate
// over the same detail relation at the same site hold their call open for a
// short window, then ship as ONE batched exchange the site serves from a
// single scan of its partition (the site-side fan-in; see transport.EvalBatch
// and engine.EvalOperatorBatch). Where single-flight collapses identical
// plans, batching collapses the scan cost of merely co-located ones.
//
// The batch runs on a context detached from any one member's, so a member
// whose session dies mid-window cannot fail the rest; a member that leaves
// before the flush is simply dropped from the batch, and if every member
// leaves the exchange is cancelled. Only first attempts batch — retries go
// straight to the site, so a failed batch degrades to the ordinary per-query
// retry path instead of re-batching a known-bad exchange.

// SetBatchWindow enables cross-query site-call batching with the given
// collection window (how long the first call of a batch waits for co-located
// calls to join). Zero or negative (the default) disables batching.
func (c *Coordinator) SetBatchWindow(d time.Duration) {
	if d > 0 {
		c.batcher = &siteBatcher{window: d, groups: make(map[batchKey]*batchGroup)}
	} else {
		c.batcher = nil
	}
}

// siteOperatorStream is operatorRound's site-call seam: batched when a window
// is configured and this is a first attempt, the plain per-query stream
// otherwise.
func (c *Coordinator) siteOperatorStream(ctx context.Context, s transport.Site, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	b := c.batcher
	if b == nil || obs.AttemptFrom(ctx) > 1 {
		return s.EvalOperatorStream(ctx, req, sink)
	}
	return b.eval(ctx, s, req, sink)
}

// batchKey groups batchable calls: same site, same detail relation.
type batchKey struct {
	site   int
	detail string
}

// batchMember is one query's registration in a batch group. done is closed
// exactly once, after call/err are set.
type batchMember struct {
	req  engine.OperatorRequest
	qid  string
	sink func(*relation.Relation) error
	done chan struct{}
	call stats.Call
	err  error
}

// batchGroup collects the members of one pending exchange.
type batchGroup struct {
	key     batchKey
	members []*batchMember
	// refs counts members whose caller is still waiting; when the last one
	// leaves, the exchange context is cancelled.
	refs    int
	flushed bool // members snapshot taken; no more joins or withdrawals
	cancel  context.CancelFunc
	execCtx context.Context
}

type siteBatcher struct {
	window time.Duration
	mu     sync.Mutex
	groups map[batchKey]*batchGroup
}

// eval registers one call in its (site, detail) group — opening the group and
// its window timer if it is the first — and waits for the group's exchange to
// deliver this member's result. Leaving before the flush withdraws the member
// from the batch; after the flush the result is imminent (the member's own
// sink fails fast on its dead context), so the caller waits it out rather
// than racing the exchange for the staging buffers.
func (b *siteBatcher) eval(ctx context.Context, s transport.Site, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	m := &batchMember{req: req, qid: obs.QueryIDFrom(ctx), sink: sink, done: make(chan struct{})}
	key := batchKey{site: s.ID(), detail: req.Op.Detail}
	b.mu.Lock()
	g, ok := b.groups[key]
	if !ok {
		// Detach the exchange from the opener's context (trace values are
		// preserved): the group's refcount, not any one member's session,
		// decides when the exchange is abandoned.
		execCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		g = &batchGroup{key: key, execCtx: execCtx, cancel: cancel}
		b.groups[key] = g
		// Bounded: sleeps at most the window, runs one exchange, cancels.
		go b.flushAfter(g, s)
	}
	g.members = append(g.members, m)
	g.refs++
	b.mu.Unlock()

	select {
	case <-m.done:
		return m.call, m.err
	case <-ctx.Done():
	}
	b.mu.Lock()
	flushed := g.flushed
	if !flushed {
		for i, gm := range g.members {
			if gm == m {
				g.members = append(g.members[:i], g.members[i+1:]...)
				break
			}
		}
	}
	g.refs--
	last := g.refs == 0
	b.mu.Unlock()
	if last {
		g.cancel()
	}
	if flushed {
		<-m.done
		return m.call, m.err
	}
	return stats.Call{}, ctx.Err()
}

// flushAfter waits out the collection window, snapshots the group's members,
// and runs the exchange, delivering each member its own call record and
// error. Member sink errors are isolated: they fail only their member, never
// the batch. A transport-level error fails every member, and each re-enters
// its own retry path unbatched.
func (b *siteBatcher) flushAfter(g *batchGroup, s transport.Site) {
	defer g.cancel()
	t := time.NewTimer(b.window)
	defer t.Stop()
	select {
	case <-t.C:
	case <-g.execCtx.Done():
	}
	b.mu.Lock()
	g.flushed = true
	delete(b.groups, g.key)
	members := append([]*batchMember(nil), g.members...)
	b.mu.Unlock()
	if len(members) == 0 {
		return
	}
	if err := g.execCtx.Err(); err != nil {
		finish(members, nil, err, nil)
		return
	}
	if len(members) == 1 {
		// A lone member gets the plain stream — same wire shape, no batch
		// framing overhead.
		m := members[0]
		mctx := g.execCtx
		if m.qid != "" {
			mctx = obs.WithQueryID(mctx, m.qid)
		}
		m.call, m.err = s.EvalOperatorStream(mctx, m.req, m.sink)
		close(m.done)
		return
	}
	reqs := make([]engine.OperatorRequest, len(members))
	qids := make([]string, len(members))
	for i, m := range members {
		reqs[i] = m.req
		qids[i] = m.qid
	}
	sinkErrs := make([]error, len(members))
	calls, err := transport.EvalBatch(g.execCtx, s, reqs, qids, func(mi int, block *relation.Relation) error {
		// Swallow member sink errors so one query's staging failure (or
		// cancellation) never aborts the other members' streams; the error
		// resurfaces on that member alone below.
		if sinkErrs[mi] != nil {
			relation.Recycle(block)
			return nil
		}
		if serr := members[mi].sink(block); serr != nil {
			sinkErrs[mi] = serr
		}
		return nil
	})
	if err == nil {
		obs.CoordBatchFlushes.Inc()
		obs.CoordBatchMembers.Add(int64(len(members)))
	}
	finish(members, calls, err, sinkErrs)
}

// finish delivers results: a batch-level error fails every member; otherwise
// each member gets its own call record and (possibly nil) sink error.
func finish(members []*batchMember, calls []stats.Call, err error, sinkErrs []error) {
	for i, m := range members {
		if calls != nil && i < len(calls) {
			m.call = calls[i]
		}
		switch {
		case err != nil:
			m.err = err
		case sinkErrs != nil:
			m.err = sinkErrs[i]
		}
		close(m.done)
	}
}
