package core

import (
	"fmt"
	"time"

	"skalla/internal/obs"
	"skalla/internal/plan"
)

// SetSlowQueryThreshold makes ExecutePlan log the full profile of any query
// slower than d through the obs logger and count it in
// skalla_coord_slow_queries_total. Zero (the default) disables slow-query
// logging.
func (c *Coordinator) SetSlowQueryThreshold(d time.Duration) { c.slowQuery = d }

// finishProfile completes a stitched query profile after the span closes:
// plan identity and cost estimates are attached, per-round estimates are
// joined with the measured rounds (Plan.CompareRounds), the cost-model drift
// gauges refresh, the profile lands in the global ring for /debug/queries,
// and the slow-query threshold is applied.
func (c *Coordinator) finishProfile(p *obs.QueryProfile, pl *plan.Plan, res *Result) {
	if p == nil {
		return
	}
	p.Plan = obs.ProfilePlan{
		Fingerprint:  pl.Fingerprint,
		Mode:         pl.Mode,
		Rules:        append([]string(nil), pl.Rules...),
		EstRounds:    pl.Estimate.Rounds,
		EstBytesDown: pl.Estimate.BytesDown,
		EstBytesUp:   pl.Estimate.BytesUp,
	}
	if res != nil && res.Metrics != nil {
		costs := pl.CompareRounds(res.Metrics)
		for i := range p.Rounds {
			if i < len(costs) && costs[i].Name == p.Rounds[i].Name {
				p.Rounds[i].EstBytesDown = costs[i].EstBytesDown
				p.Rounds[i].EstBytesUp = costs[i].EstBytesUp
			}
		}
		// Drift gauges: measured over estimated traffic per direction. A ratio
		// above 1 means the cost model undershot; below 1, overshot.
		if est := pl.Estimate.BytesDown; est > 0 {
			obs.PlanCostErrorRatio.With("down").Set(float64(res.Metrics.TotalBytesDown()) / float64(est))
		}
		if est := pl.Estimate.BytesUp; est > 0 {
			obs.PlanCostErrorRatio.With("up").Set(float64(res.Metrics.TotalBytesUp()) / float64(est))
		}
	}
	obs.Profiles.Add(p)
	if c.slowQuery > 0 && p.Elapsed >= c.slowQuery {
		obs.CoordSlowQueries.Inc()
		logSlowQuery(c.slowQuery, p)
	}
}

// logSlowQuery emits one warn line carrying the whole profile: query
// identity, plan, totals, and a rendered per-round breakdown.
func logSlowQuery(threshold time.Duration, p *obs.QueryProfile) {
	rounds := make([]string, 0, len(p.Rounds))
	for i := range p.Rounds {
		r := &p.Rounds[i]
		rounds = append(rounds, fmt.Sprintf("%s: %d calls, %dB down, %dB up, coord %s, elapsed %s",
			r.Name, len(r.Calls), r.BytesDown, r.BytesUp,
			r.CoordTime.Round(10*time.Microsecond), r.Elapsed.Round(10*time.Microsecond)))
	}
	obs.Logger().Warn("slow query",
		"query", p.QueryID,
		"threshold", threshold,
		"elapsed", p.Elapsed,
		"err", p.Err,
		"plan", p.Plan.Fingerprint,
		"mode", p.Plan.Mode,
		"rules", p.Plan.Rules,
		"bytes_down", p.BytesDown(),
		"bytes_up", p.BytesUp(),
		"rounds", rounds,
	)
}
