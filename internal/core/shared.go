package core

import (
	"context"
	"sync"
	"time"

	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
)

// The shared-work layer: concurrent statements that compile to the same plan
// fingerprint elect a leader that runs the distributed rounds once while the
// followers await its committed result (Theorem 1 makes the merged X
// reusable: it is a pure function of the plan and the site data, both pinned
// by the fingerprint's catalog-generation hash). Under storm traffic this
// turns O(queries) site rounds into O(distinct plans).
//
// Lifecycle: the leader registers its flight before admission, so every
// follower arriving during the admission wait also collapses onto it.
// Execution runs on a context detached from the leader's own — a leader whose
// session disconnects mid-round must not fail its followers — and the
// detached context is refcounted: each waiter (leader included) holds one
// reference while it waits, and only when the last waiter leaves is the
// execution cancelled (nobody is left to consume the result). Completion
// removes the flight from the group before publishing, so late arrivals
// start a fresh flight (or hit the result cache) instead of reading a closed
// one.

// flightGroup tracks in-flight executions by plan fingerprint.
type flightGroup struct {
	mu sync.Mutex
	//skallavet:allow stringkey -- flights keyed by plan fingerprint: one lookup per query, not per tuple
	inflight map[string]*flight
}

// flight is one leader execution plus its waiters.
type flight struct {
	fp        string
	done      chan struct{} // closed after rel/err publish
	rel       *relation.Relation
	err       error
	refs      int // waiters still waiting (leader included)
	followers int
	cancel    context.CancelFunc // cancels the detached execution context
	group     *flightGroup
}

func newFlightGroup() *flightGroup {
	//skallavet:allow stringkey -- flights keyed by plan fingerprint: one lookup per query, not per tuple
	return &flightGroup{inflight: make(map[string]*flight)}
}

// leave drops one waiter reference; when the last waiter is gone the detached
// execution is cancelled — a result nobody will read is not worth the site
// rounds. Cancelling after completion is a harmless no-op.
func (fl *flight) leave() {
	fl.group.mu.Lock()
	fl.refs--
	last := fl.refs == 0
	fl.group.mu.Unlock()
	if last {
		fl.cancel()
	}
}

// SetSingleFlight toggles cross-query single-flight collapsing: when enabled,
// concurrent executions of plans with equal fingerprints share one
// distributed execution (see the package comment on the shared-work layer).
// Disabled by default; Serve enables it for the multi-tenant server.
func (c *Coordinator) SetSingleFlight(enabled bool) {
	if enabled {
		c.flights = newFlightGroup()
	} else {
		c.flights = nil
	}
}

// executeShared is ExecutePlan's path when the shared-work layer is active:
// result cache first (zero rounds), then single-flight join-or-lead, then a
// plain execution with a cache commit.
func (c *Coordinator) executeShared(ctx context.Context, pl *plan.Plan, src gmdj.SchemaSource) (*Result, error) {
	if rel, ok := c.results.get(pl.Fingerprint, c.cat.Gen()); ok {
		return c.sharedResult(ctx, pl, rel, 0, "cache")
	}
	g := c.flights
	if g == nil {
		// Result cache only: execute normally and commit the result.
		res, err := c.executeUnshared(ctx, pl, src)
		if err == nil && res != nil {
			c.commitResult(pl, res.Rel.Clone())
		}
		return res, err
	}
	g.mu.Lock()
	if fl, ok := g.inflight[pl.Fingerprint]; ok {
		fl.refs++
		fl.followers++
		g.mu.Unlock()
		return c.awaitFlight(ctx, fl, pl)
	}
	// Detach execution from the leader's own context (values — query ID,
	// trace tags — are preserved): the flight's refcount, not the leader's
	// session, decides when the rounds are abandoned.
	execCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	fl := &flight{fp: pl.Fingerprint, done: make(chan struct{}), refs: 1, cancel: cancel, group: g}
	g.inflight[pl.Fingerprint] = fl
	g.mu.Unlock()
	return c.leadFlight(ctx, execCtx, fl, pl, src)
}

// leadFlight runs the distributed rounds as the flight's leader and publishes
// the outcome to every follower.
func (c *Coordinator) leadFlight(ctx, execCtx context.Context, fl *flight, pl *plan.Plan, src gmdj.SchemaSource) (*Result, error) {
	// The leader's own waiter reference: released when its context dies (a
	// disconnected session stops holding the execution alive) or when the
	// execution finishes. Bounded by stop, closed below.
	stop := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			fl.leave()
		case <-stop:
		}
	}()
	res, prof, err := c.executeSpanned(execCtx, pl, src)
	close(stop)
	watch.Wait()

	// Unregister before publishing: a statement arriving after this point
	// must not join a flight whose done channel is about to close under it.
	g := fl.group
	g.mu.Lock()
	delete(g.inflight, fl.fp)
	followers := fl.followers
	g.mu.Unlock()

	// One read-only clone serves both the followers and the result cache;
	// each follower clones again, so the leader's caller keeps exclusive
	// ownership of res.Rel (SQL postprocessing mutates it in place).
	var shared *relation.Relation
	if err == nil && res != nil && (followers > 0 || c.results != nil) {
		shared = res.Rel.Clone()
	}
	fl.rel, fl.err = shared, err
	close(fl.done)
	if shared != nil {
		c.commitResult(pl, shared)
	}

	if followers > 0 {
		obs.ServerSingleflightLeaders.Inc()
		if prof != nil {
			prof.Shared = "leader"
		}
	}
	c.finishProfile(prof, pl, res)
	if res != nil {
		res.Profile = prof
	}
	return res, err
}

// awaitFlight waits for a concurrent leader's committed result. The wait is
// reported as the follower's queue time: it is time spent parked behind
// shared work, exactly like an admission wait.
func (c *Coordinator) awaitFlight(ctx context.Context, fl *flight, pl *plan.Plan) (*Result, error) {
	obs.ServerSingleflightFollowers.Inc()
	start := time.Now()
	select {
	case <-ctx.Done():
		fl.leave()
		return nil, ctx.Err()
	case <-fl.done:
	}
	if fl.err != nil {
		return nil, fl.err
	}
	return c.sharedResult(ctx, pl, fl.rel, time.Since(start), "follower")
}

// sharedResult serves one query from a shared relation (a leader's committed
// X or a result-cache entry): the caller gets its own clone, charged against
// a fresh per-query memory budget — shared results get no free ride past
// -query-mem-budget, and the leader is not double-charged (its own budget
// covered its own execution). A synthesized zero-round profile lands in the
// ring so /debug/queries accounts for every served query.
func (c *Coordinator) sharedResult(ctx context.Context, pl *plan.Plan, shared *relation.Relation, wait time.Duration, how string) (*Result, error) {
	qid := obs.QueryIDFrom(ctx)
	if qid == "" {
		qid = obs.NewQueryID()
	}
	start := time.Now()
	rel := shared.Clone()
	err := newMemBudget(c.memBudget).charge(rel.MemBytes())
	prof := &obs.QueryProfile{QueryID: qid, Start: start, QueueTime: wait, Shared: how}
	var res *Result
	if err == nil {
		res = &Result{Rel: rel, Metrics: stats.NewMetrics(c.net), Plan: pl}
		obs.CoordQueries.With("ok").Inc()
	} else {
		prof.Err = err.Error()
		obs.CoordQueries.With("error").Inc()
	}
	prof.Elapsed = time.Since(start)
	c.finishProfile(prof, pl, res)
	if res != nil {
		res.Profile = prof
	}
	return res, err
}

// commitResult stores a finalized result in the cache, re-checking the
// catalog generation at commit time: a generation bump that lands between
// plan compile and result commit means the result may describe data the
// catalog no longer does, so it is dropped rather than cached (a stale entry
// would additionally be caught at lookup, but not committing it at all keeps
// the window closed for readers racing the bump). rel must be a clone the
// cache will exclusively own.
func (c *Coordinator) commitResult(pl *plan.Plan, rel *relation.Relation) {
	if c.results == nil || rel == nil {
		return
	}
	if c.cat.Gen() != pl.CatalogGen {
		return
	}
	c.results.put(pl.Fingerprint, pl.CatalogGen, rel)
}
