package core

import (
	"context"
	"math/rand"
	"testing"

	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/stats"
)

// Row blocking must never change results, for any block size, option set, or
// query shape — only how H_i crosses the wire.
func TestRowBlockingPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	global := randomGlobal(rng, 150, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)
	for _, q := range []gmdj.Query{chainQuery(), nonAlignedQuery()} {
		want, err := gmdj.EvalCentral(q, gmdj.Data{"T": global}, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, blockRows := range []int{0, 1, 7, 1000} {
			coord, _ := New(sites, cat, stats.NetModel{})
			coord.SetRowBlocking(blockRows)
			for _, opts := range []plan.Options{plan.None(), {GroupReduceSite: true, GroupReduceCoord: true}} {
				res, err := coord.Execute(context.Background(), q, opts)
				if err != nil {
					t.Fatalf("blockRows=%d [%s]: %v", blockRows, opts, err)
				}
				if !res.Rel.EqualMultiset(want) {
					t.Fatalf("blockRows=%d [%s]: result mismatch", blockRows, opts)
				}
			}
		}
	}
}

// With serialization on, blocking moves the same rows in more messages;
// total rows must be identical and bytes only differ by per-block framing.
func TestRowBlockingTrafficAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	global := randomGlobal(rng, 300, 12)
	run := func(blockRows int) *stats.Metrics {
		// Fresh cluster per run, plus one warm-up execution: the transport
		// charges one-time connection costs (gob type descriptors) on the
		// first messages, and this test compares steady-state traffic.
		sites, cat := buildCluster(t, global, "T", 3, 4, false)
		coord, _ := New(sites, cat, stats.NetModel{})
		coord.SetRowBlocking(blockRows)
		if _, err := coord.Execute(context.Background(), chainQuery(), plan.None()); err != nil {
			t.Fatal(err)
		}
		res, err := coord.Execute(context.Background(), chainQuery(), plan.None())
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	whole := run(0)
	blocked := run(5)
	if whole.TotalRows() != blocked.TotalRows() {
		t.Errorf("rows: %d vs %d", whole.TotalRows(), blocked.TotalRows())
	}
	if blocked.TotalBytesUp() <= whole.TotalBytesUp() {
		t.Errorf("blocking should add framing overhead: %d vs %d bytes up",
			blocked.TotalBytesUp(), whole.TotalBytesUp())
	}
	// Down traffic only grows by the encoded BlockRows field itself (a few
	// bytes per request).
	if diff := blocked.TotalBytesDown() - whole.TotalBytesDown(); diff < 0 || diff > 100 {
		t.Errorf("down traffic should be all but unaffected: %d vs %d",
			whole.TotalBytesDown(), blocked.TotalBytesDown())
	}
}
