package core

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/distrib"
	"skalla/internal/engine"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// tSchema is the test detail relation: g is the partition attribute, h a
// secondary grouping attribute, v a measure.
var tSchema = relation.MustSchema(
	relation.Column{Name: "g", Kind: relation.KindInt},
	relation.Column{Name: "h", Kind: relation.KindInt},
	relation.Column{Name: "v", Kind: relation.KindInt},
)

// buildClusterImpl partitions global on column "g" into n range partitions
// of width per, loads them into n engine sites, and returns the transports
// plus the matching distribution catalog.
func buildClusterImpl(global *relation.Relation, name string, n int, per int64, fast bool) ([]transport.Site, *distrib.Catalog, error) {
	gi := global.Schema.MustIndex("g")
	sites := make([]transport.Site, n)
	filters := make([]distrib.SiteFilter, n)
	for i := 0; i < n; i++ {
		lo, hi := int64(i)*per, int64(i+1)*per-1
		if i == n-1 {
			hi = 1 << 30 // last site takes the tail so every row is owned
		}
		filters[i] = distrib.IntRange{Lo: lo, Hi: hi}
		part := global.Filter(func(tp relation.Tuple) bool {
			return tp[gi].Int >= lo && tp[gi].Int <= hi
		})
		es := engine.NewSite(i)
		if err := es.Load(context.Background(), name, part); err != nil {
			return nil, nil, err
		}
		if fast {
			sites[i] = transport.NewFastLocalSite(es)
		} else {
			sites[i] = transport.NewLocalSite(es)
		}
	}
	cat := distrib.NewCatalog(&distrib.Distribution{
		Relation: name,
		NumSites: n,
		Attrs:    []distrib.AttrInfo{{Attr: "g", Filters: filters, Disjoint: true}},
	})
	for rel := range cat.Relations {
		if err := cat.Relations[rel].Validate(); err != nil {
			return nil, nil, err
		}
	}
	return sites, cat, nil
}

// buildCluster is buildClusterImpl with *testing.T error plumbing.
func buildCluster(t *testing.T, global *relation.Relation, name string, n int, per int64, fast bool) ([]transport.Site, *distrib.Catalog) {
	t.Helper()
	sites, cat, err := buildClusterImpl(global, name, n, per, fast)
	if err != nil {
		t.Fatal(err)
	}
	return sites, cat
}

func randomGlobal(rng *rand.Rand, rows int, gRange int64) *relation.Relation {
	r := relation.New(tSchema)
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Tuple{
			relation.NewInt(rng.Int63n(gRange)),
			relation.NewInt(rng.Int63n(4)),
			relation.NewInt(rng.Int63n(100)),
		})
	}
	return r
}

// chainQuery is an Example 1-shaped correlated query: MD2's condition
// references MD1's aggregates; both are keyed on the partition attribute.
func chainQuery() gmdj.Query {
	return gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "T", Cols: []string{"g", "h"}},
		Ops: []gmdj.Operator{
			{Detail: "T", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{
					{Func: agg.Count, As: "cnt1"},
					{Func: agg.Sum, Arg: "v", As: "sum1"},
					{Func: agg.Avg, Arg: "v", As: "avg1"},
				},
				Cond: expr.MustParse("B.g = R.g && B.h = R.h"),
			}}},
			{Detail: "T", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{
					{Func: agg.Count, As: "cnt2"},
					{Func: agg.Min, Arg: "v", As: "min2"},
					{Func: agg.Max, Arg: "v", As: "max2"},
				},
				Cond: expr.MustParse("B.g = R.g && B.h = R.h && R.v >= B.avg1"),
			}}},
		},
	}
}

// independentQuery has a coalescible second operator.
func independentQuery() gmdj.Query {
	return gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "T", Cols: []string{"g", "h"}},
		Ops: []gmdj.Operator{
			{Detail: "T", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "cnt1"}, {Func: agg.Avg, Arg: "v", As: "avg1"}},
				Cond: expr.MustParse("B.g = R.g && B.h = R.h"),
			}}},
			{Detail: "T", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "cnt2"}},
				Cond: expr.MustParse("B.g = R.g && B.h = R.h && R.v > 50"),
			}}},
		},
	}
}

// nonAlignedQuery groups on h, which is not partition-aligned: groups span
// sites, exercising cross-site super-aggregation.
func nonAlignedQuery() gmdj.Query {
	return gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "T", Cols: []string{"h"}},
		Ops: []gmdj.Operator{
			{Detail: "T", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{
					{Func: agg.Count, As: "cnt1"},
					{Func: agg.Sum, Arg: "v", As: "sum1"},
					{Func: agg.Avg, Arg: "v", As: "avg1"},
					{Func: agg.Min, Arg: "v", As: "min1"},
				},
				Cond: expr.MustParse("B.h = R.h"),
			}}},
			{Detail: "T", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "cnt2"}},
				Cond: expr.MustParse("B.h = R.h && R.v * 2 >= B.avg1"),
			}}},
		},
	}
}

func allOptionCombos() []plan.Options {
	var out []plan.Options
	for i := 0; i < 16; i++ {
		out = append(out, plan.Options{
			Coalesce:         i&1 != 0,
			GroupReduceSite:  i&2 != 0,
			GroupReduceCoord: i&4 != 0,
			SyncReduce:       i&8 != 0,
		})
	}
	return out
}

// The central correctness property: for every query shape, every option
// combination, and randomized data, the distributed result equals the
// centralized Definition 1 evaluation.
func TestDistributedMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	queries := map[string]gmdj.Query{
		"chain":       chainQuery(),
		"independent": independentQuery(),
		"nonaligned":  nonAlignedQuery(),
	}
	for trial := 0; trial < 6; trial++ {
		global := randomGlobal(rng, 30+trial*40, 12)
		sites, cat := buildCluster(t, global, "T", 3, 4, true)
		coord, err := New(sites, cat, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		for qname, q := range queries {
			want, err := gmdj.EvalCentral(q, gmdj.Data{"T": global}, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range allOptionCombos() {
				res, err := coord.Execute(context.Background(), q, opts)
				if err != nil {
					t.Fatalf("trial %d %s opts [%s]: %v", trial, qname, opts, err)
				}
				if !res.Rel.EqualMultiset(want) {
					got, exp := res.Rel.Clone(), want.Clone()
					got.Sort()
					exp.Sort()
					t.Fatalf("trial %d %s opts [%s]: result mismatch\nplan:\n%s\ngot:\n%s\nwant:\n%s",
						trial, qname, opts, res.Plan.Describe(), got.Format(20), exp.Format(20))
				}
				if res.Metrics.NumRounds() != res.Plan.Rounds() {
					t.Errorf("%s [%s]: %d rounds executed, plan predicted %d",
						qname, opts, res.Metrics.NumRounds(), res.Plan.Rounds())
				}
			}
		}
	}
}

// Theorem 2: rows transferred never exceed Σ(2·s_i·|Q|) + s_0·|Q|.
func TestTheorem2Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	global := randomGlobal(rng, 200, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)
	coord, _ := New(sites, cat, stats.NetModel{})
	for _, q := range []gmdj.Query{chainQuery(), independentQuery(), nonAlignedQuery()} {
		for _, opts := range allOptionCombos() {
			res, err := coord.Execute(context.Background(), q, opts)
			if err != nil {
				t.Fatal(err)
			}
			bound := TrafficBound(res.Plan, res.Rel.Len())
			if got := res.Metrics.TotalRows(); got > bound {
				t.Errorf("opts [%s]: %d rows transferred exceeds Theorem 2 bound %d", opts, got, bound)
			}
		}
	}
}

// Optimizations must strictly reduce traffic on the aligned chain query.
func TestOptimizationsReduceTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	global := randomGlobal(rng, 400, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, false) // serialized transport: real bytes
	coord, _ := New(sites, cat, stats.NetModel{})
	ctx := context.Background()

	baseline, err := coord.Execute(ctx, chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}
	full, err := coord.Execute(ctx, chainQuery(), plan.All())
	if err != nil {
		t.Fatal(err)
	}
	if full.Metrics.TotalBytes() >= baseline.Metrics.TotalBytes() {
		t.Errorf("all optimizations: %d bytes, baseline %d — expected reduction",
			full.Metrics.TotalBytes(), baseline.Metrics.TotalBytes())
	}
	if full.Metrics.NumRounds() != 1 || baseline.Metrics.NumRounds() != 3 {
		t.Errorf("rounds: full=%d baseline=%d", full.Metrics.NumRounds(), baseline.Metrics.NumRounds())
	}

	// Site-side guard alone reduces the up-traffic on the aligned query
	// (each site only matches ~1/n of the groups).
	guard, err := coord.Execute(ctx, chainQuery(), plan.Options{GroupReduceSite: true})
	if err != nil {
		t.Fatal(err)
	}
	if guard.Metrics.TotalBytesUp() >= baseline.Metrics.TotalBytesUp() {
		t.Errorf("guard up-bytes %d, baseline %d", guard.Metrics.TotalBytesUp(), baseline.Metrics.TotalBytesUp())
	}
	// Coordinator-side reduction alone reduces the down-traffic.
	coordRed, err := coord.Execute(ctx, chainQuery(), plan.Options{GroupReduceCoord: true})
	if err != nil {
		t.Fatal(err)
	}
	if coordRed.Metrics.TotalBytesDown() >= baseline.Metrics.TotalBytesDown() {
		t.Errorf("coord-reduction down-bytes %d, baseline %d",
			coordRed.Metrics.TotalBytesDown(), baseline.Metrics.TotalBytesDown())
	}
}

// Multi-relation queries: the base comes from one relation, an operator
// consumes another (the paper's R_k may differ per round).
func TestMultiRelationQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	t1 := randomGlobal(rng, 60, 12)
	t2 := randomGlobal(rng, 80, 12)
	gi := tSchema.MustIndex("g")

	n, per := 3, int64(4)
	sites := make([]transport.Site, n)
	for i := 0; i < n; i++ {
		lo, hi := int64(i)*per, int64(i+1)*per-1
		es := engine.NewSite(i)
		for name, rel := range map[string]*relation.Relation{"T1": t1, "T2": t2} {
			part := rel.Filter(func(tp relation.Tuple) bool {
				return tp[gi].Int >= lo && tp[gi].Int <= hi
			})
			if err := es.Load(context.Background(), name, part); err != nil {
				t.Fatal(err)
			}
		}
		sites[i] = transport.NewFastLocalSite(es)
	}
	q := gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "T1", Cols: []string{"h"}},
		Ops: []gmdj.Operator{
			{Detail: "T2", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "c2"}, {Func: agg.Sum, Arg: "v", As: "s2"}},
				Cond: expr.MustParse("B.h = R.h"),
			}}},
			{Detail: "T1", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "c1"}},
				Cond: expr.MustParse("B.h = R.h && R.v <= B.s2"),
			}}},
		},
	}
	want, err := gmdj.EvalCentral(q, gmdj.Data{"T1": t1, "T2": t2}, true)
	if err != nil {
		t.Fatal(err)
	}
	coord, _ := New(sites, nil, stats.NetModel{})
	for _, opts := range []plan.Options{plan.None(), plan.All()} {
		res, err := coord.Execute(context.Background(), q, opts)
		if err != nil {
			t.Fatalf("[%s]: %v", opts, err)
		}
		if !res.Rel.EqualMultiset(want) {
			t.Errorf("[%s]: multi-relation mismatch", opts)
		}
	}
}

func TestBaseFilterPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	global := randomGlobal(rng, 100, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)
	coord, _ := New(sites, cat, stats.NetModel{})
	q := chainQuery()
	q.Base.Where = expr.MustParse("R.v > 20")
	want, err := gmdj.EvalCentral(q, gmdj.Data{"T": global}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []plan.Options{plan.None(), plan.All()} {
		res, err := coord.Execute(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rel.EqualMultiset(want) {
			t.Errorf("[%s]: filtered base mismatch", opts)
		}
	}
}

func TestCoordinatorErrors(t *testing.T) {
	if _, err := New(nil, nil, stats.NetModel{}); err == nil {
		t.Error("no sites must error")
	}
	global := randomGlobal(rand.New(rand.NewSource(1)), 10, 12)
	sites, cat := buildCluster(t, global, "T", 2, 6, true)
	coord, _ := New(sites, cat, stats.NetModel{})
	// Invalid query surfaces a planning error.
	bad := chainQuery()
	bad.Base.Cols = []string{"zz"}
	if _, err := coord.Execute(context.Background(), bad, plan.None()); err == nil {
		t.Error("invalid query must error")
	}
	// Unknown relation.
	bad2 := chainQuery()
	bad2.Base.Detail = "Nope"
	bad2.Ops[0].Detail = "Nope"
	bad2.Ops[1].Detail = "Nope"
	if _, err := coord.Execute(context.Background(), bad2, plan.None()); err == nil {
		t.Error("unknown relation must error")
	}
	// Cancelled context aborts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := coord.Execute(ctx, chainQuery(), plan.None()); err == nil {
		t.Error("cancelled context must error")
	}
}

func TestEmptyGroupsKeepIdentity(t *testing.T) {
	// Groups no site reports on (guard enabled) must still appear with
	// COUNT 0 / NULL aggregates in the final result.
	global := relation.New(tSchema)
	rows := [][3]int64{{0, 0, 10}, {0, 1, 90}, {5, 0, 30}}
	for _, x := range rows {
		global.MustAppend(relation.Tuple{relation.NewInt(x[0]), relation.NewInt(x[1]), relation.NewInt(x[2])})
	}
	sites, cat := buildCluster(t, global, "T", 2, 4, true)
	coord, _ := New(sites, cat, stats.NetModel{})
	// The second operator's residual predicate matches nothing for (0,0).
	q := gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "T", Cols: []string{"g", "h"}},
		Ops: []gmdj.Operator{{Detail: "T", Vars: []gmdj.GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "c"}, {Func: agg.Sum, Arg: "v", As: "s"}},
			Cond: expr.MustParse("B.g = R.g && B.h = R.h && R.v > 50"),
		}}}},
	}
	res, err := coord.Execute(context.Background(), q, plan.Options{GroupReduceSite: true, GroupReduceCoord: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("groups = %d, want 3\n%s", res.Rel.Len(), res.Rel)
	}
	ci, si := res.Rel.Schema.MustIndex("c"), res.Rel.Schema.MustIndex("s")
	for _, row := range res.Rel.Tuples {
		if row[0].Int == 0 && row[1].Int == 0 {
			if row[ci].Int != 0 || !row[si].IsNull() {
				t.Errorf("empty group aggregates = %v / %v, want 0 / NULL", row[ci], row[si])
			}
		}
	}
}

func TestMergerUnit(t *testing.T) {
	q := independentQuery()
	src := gmdj.Schemas{"T": tSchema}
	xs, err := gmdj.XSchemas(q, src)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := buildSegments(q, src, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := newMerger([]string{"g", "h"}, xs, segs, nil)

	base := relation.New(xs[0])
	base.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewInt(0)})
	base.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewInt(0)}) // dup: must dedup
	base.MustAppend(relation.Tuple{relation.NewInt(2), relation.NewInt(1)})
	if err := m.InitBase(base); err != nil {
		t.Fatal(err)
	}
	if m.X().Len() != 2 {
		t.Fatalf("dedup: %d rows", m.X().Len())
	}
	if err := m.Extend(); err != nil {
		t.Fatal(err)
	}
	if m.Extended() != 1 || !m.X().Schema.Equal(xs[1]) {
		t.Fatalf("extend: extended=%d schema=%s", m.Extended(), m.X().Schema)
	}
	// Merge one H: keys + phys (cnt1, avg1_sum, avg1_cnt).
	h := relation.New(relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.KindInt},
		relation.Column{Name: "h", Kind: relation.KindInt},
		relation.Column{Name: "cnt1", Kind: relation.KindInt},
		relation.Column{Name: "avg1_sum", Kind: relation.KindInt},
		relation.Column{Name: "avg1_cnt", Kind: relation.KindInt},
	))
	h.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewInt(0), relation.NewInt(2), relation.NewInt(10), relation.NewInt(2)})
	if err := m.MergeH(h, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.MergeH(h, 0); err != nil { // second site's identical H doubles it
		t.Fatal(err)
	}
	m.RecomputeDerived(1)
	row := m.X().Tuples[0]
	cntIdx := m.X().Schema.MustIndex("cnt1")
	avgIdx := m.X().Schema.MustIndex("avg1")
	if row[cntIdx].Int != 4 {
		t.Errorf("merged cnt1 = %v", row[cntIdx])
	}
	if row[avgIdx].Float != 5.0 {
		t.Errorf("derived avg1 = %v", row[avgIdx])
	}
	// H with unknown key errors.
	h2 := h.Clone()
	h2.Tuples[0][0] = relation.NewInt(99)
	if err := m.MergeH(h2, 0); err == nil {
		t.Error("unknown key must error")
	}
	// Merging the wrong operator errors.
	if err := m.MergeH(h, 1); err == nil {
		t.Error("wrong operator index must error")
	}
	// Extending past the last operator errors.
	if err := m.Extend(); err != nil {
		t.Fatal(err)
	}
	if err := m.Extend(); err == nil {
		t.Error("extend past last operator must error")
	}
}

func TestTrafficBoundFormula(t *testing.T) {
	src := gmdj.Schemas{"T": tSchema}
	pl, err := plan.New(chainQuery(), src, nil, 4, plan.None())
	if err != nil {
		t.Fatal(err)
	}
	// m=2 operators, n=4 sites, |Q|=10: (2*2+1)*4*10 = 200.
	if got := TrafficBound(pl, 10); got != 200 {
		t.Errorf("TrafficBound = %d, want 200", got)
	}
}

// Hash partitioning end to end: data split by hash(g), the catalog declaring
// HashFilters; aligned queries still go fully local and match the oracle.
func TestHashPartitionedCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	global := randomGlobal(rng, 150, 20)
	gi := global.Schema.MustIndex("g")
	n := 3
	filters := distrib.HashPartition(n)
	sites := make([]transport.Site, n)
	for i := 0; i < n; i++ {
		part := global.Filter(func(tp relation.Tuple) bool {
			return filters[i].Contains(tp[gi])
		})
		es := engine.NewSite(i)
		if err := es.Load(context.Background(), "T", part); err != nil {
			t.Fatal(err)
		}
		sites[i] = transport.NewFastLocalSite(es)
	}
	dist := &distrib.Distribution{
		Relation: "T", NumSites: n,
		Attrs: []distrib.AttrInfo{{Attr: "g", Filters: filters, Disjoint: true}},
	}
	if err := dist.Validate(); err != nil {
		t.Fatal(err)
	}
	coord, _ := New(sites, distrib.NewCatalog(dist), stats.NetModel{})
	q := chainQuery()
	want, err := gmdj.EvalCentral(q, gmdj.Data{"T": global}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range allOptionCombos() {
		res, err := coord.Execute(context.Background(), q, opts)
		if err != nil {
			t.Fatalf("[%s]: %v", opts, err)
		}
		if !res.Rel.EqualMultiset(want) {
			t.Fatalf("[%s]: hash-partitioned mismatch", opts)
		}
	}
	// The aligned query goes fully local under sync reduction.
	pl, err := coord.Plan(context.Background(), q, plan.Options{SyncReduce: true})
	if err != nil || !pl.FullLocal {
		t.Errorf("hash partitioning must enable Cor. 1: %v, %v", pl, err)
	}
	// Coordinator-side group reduction works off the hash filters too.
	base, _ := coord.Execute(context.Background(), q, plan.None())
	red, err := coord.Execute(context.Background(), q, plan.Options{GroupReduceCoord: true})
	if err != nil {
		t.Fatal(err)
	}
	if red.Metrics.TotalRows() >= base.Metrics.TotalRows() {
		t.Errorf("hash-based coord reduction moved %d rows, baseline %d",
			red.Metrics.TotalRows(), base.Metrics.TotalRows())
	}
}

// The tracer observes every round and site exchange, without changing
// results.
func TestWriterTracer(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	global := randomGlobal(rng, 60, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)
	coord, _ := New(sites, cat, stats.NetModel{})
	var buf bytes.Buffer
	coord.SetTracer(NewWriterTracer(&buf))
	res, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"round base: start", "round MD1: start", "round MD2: done", "site 0", "site 2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q:\n%s", frag, out)
		}
	}
	// 3 rounds × (start + 3 site lines + done) = 15 lines.
	if lines := strings.Count(out, "\n"); lines != 15 {
		t.Errorf("trace lines = %d, want 15:\n%s", lines, out)
	}
	// Detaching stops tracing; results unaffected either way.
	coord.SetTracer(nil)
	buf.Reset()
	res2, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("detached tracer still wrote")
	}
	if !res.Rel.EqualMultiset(res2.Rel) {
		t.Error("tracing changed results")
	}
}
