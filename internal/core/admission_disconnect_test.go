package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/server"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// gateSite parks every site entry point until the gate channel closes,
// counting entries — it lets a test pin a query inside execution (holding
// its admission slot) and observe whether a second query's site work ever
// starts.
type gateSite struct {
	transport.Site
	gate  <-chan struct{}
	calls *atomic.Int64
}

func (g *gateSite) wait(ctx context.Context) error {
	g.calls.Add(1)
	select {
	case <-g.gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gateSite) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	if err := g.wait(ctx); err != nil {
		return nil, stats.Call{}, err
	}
	return g.Site.EvalBase(ctx, bq)
}

func (g *gateSite) EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	if err := g.wait(ctx); err != nil {
		return nil, stats.Call{}, err
	}
	return g.Site.EvalOperator(ctx, req)
}

func (g *gateSite) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	if err := g.wait(ctx); err != nil {
		return stats.Call{}, err
	}
	return g.Site.EvalOperatorStream(ctx, req, sink)
}

func (g *gateSite) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	if err := g.wait(ctx); err != nil {
		return nil, stats.Call{}, err
	}
	return g.Site.EvalLocal(ctx, req)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A queued query whose session disconnects before admission must release its
// queue slot without executing: the skalla_server_queued_queries gauge drops
// back to zero, no site work starts for it, and no orphan profile appears in
// /debug/queries under its query ID.
func TestQueuedQueryReleasedOnSessionDisconnect(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	global := randomGlobal(rng, 60, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)

	gate := make(chan struct{})
	var siteCalls atomic.Int64
	for i := range sites {
		sites[i] = &gateSite{Site: sites[i], gate: gate, calls: &siteCalls}
	}
	coord, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetAdmission(1, 4) // one slot; the second query must queue

	srv, err := server.Serve(func(ctx context.Context, stmt string) (*server.Result, error) {
		res, err := coord.Execute(ctx, chainQuery(), plan.None())
		if err != nil {
			return nil, err
		}
		var queued time.Duration
		if res.Profile != nil {
			queued = res.Profile.QueueTime
		}
		return &server.Result{Rel: res.Rel, Queued: queued}, nil
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if got := obs.ServerQueuedQueries.Value(); got != 0 {
		t.Fatalf("queued gauge = %d before test, want 0", got)
	}

	// Session 1: a query that parks inside site evaluation, holding the only
	// admission slot.
	c1, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	first := make(chan error, 1)
	go func() {
		_, _, err := c1.Query(context.Background(), "q1")
		first <- err
	}()
	waitFor(t, "first query to reach the sites", func() bool { return siteCalls.Load() > 0 })

	// Session 2: its query cannot get a slot and parks in the admission
	// queue.
	c2, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() {
		_, _, err := c2.Query(context.Background(), "q2")
		second <- err
	}()
	waitFor(t, "second query to queue", func() bool { return obs.ServerQueuedQueries.Value() == 1 })
	callsBeforeDisconnect := siteCalls.Load()

	// The second session disconnects while queued: the server must cancel its
	// statement, releasing the queue slot without executing anything.
	c2.Close()
	waitFor(t, "queue slot release", func() bool { return obs.ServerQueuedQueries.Value() == 0 })
	if err := <-second; err == nil {
		t.Fatal("second query reported success after its session disconnected")
	}

	// The gate is still closed, so any site entry past this point could only
	// have come from the abandoned query starting to execute — it must not.
	if got := siteCalls.Load(); got != callsBeforeDisconnect {
		t.Fatalf("abandoned queued query reached the sites: %d calls, had %d", got, callsBeforeDisconnect)
	}

	// Unblock the first query and let it finish normally — its slot was never
	// disturbed.
	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("first query failed: %v", err)
	}

	// The abandoned query never started site work and never recorded a
	// profile. Session IDs are sequential: session 2's first statement is
	// s2-1.
	if p := obs.Profiles.Get("s2-1"); p != nil {
		t.Fatalf("abandoned queued query left an orphan profile: %+v", p)
	}
	prof := obs.Profiles.Get("s1-1")
	if prof == nil {
		t.Fatal("completed query s1-1 missing from the profile ring")
	}
	if got := obs.ServerQueuedQueries.Value(); got != 0 {
		t.Fatalf("queued gauge = %d after drain, want 0", got)
	}
}

// A client-side cancellation of a queued statement surfaces the context
// error through the coordinator (covered by TestAdmissionQueueCancellation
// at the admission layer); this exercises the full stack: the handler
// returns the context error, and the wire reports it as an internal-coded
// failure rather than executing.
func TestQueuedQueryClientCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	global := randomGlobal(rng, 60, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)

	gate := make(chan struct{})
	var siteCalls atomic.Int64
	for i := range sites {
		sites[i] = &gateSite{Site: sites[i], gate: gate, calls: &siteCalls}
	}
	coord, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetAdmission(1, 4)

	hold := make(chan error, 1)
	go func() {
		_, err := coord.Execute(context.Background(), chainQuery(), plan.None())
		hold <- err
	}()
	waitFor(t, "holder to reach the sites", func() bool { return siteCalls.Load() > 0 })

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := coord.Execute(ctx, chainQuery(), plan.None())
		queued <- err
	}()
	waitFor(t, "second query to queue", func() bool { return obs.ServerQueuedQueries.Value() == 1 })
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued query returned %v, want context.Canceled", err)
	}
	if got := obs.ServerQueuedQueries.Value(); got != 0 {
		t.Fatalf("queued gauge = %d after cancellation, want 0", got)
	}
	close(gate)
	if err := <-hold; err != nil {
		t.Fatalf("holder failed: %v", err)
	}
}
