package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/stats"
)

// randomQuery assembles a structurally valid random complex GMDJ expression:
// 1–3 operators, 1–2 grouping variables each, with conditions drawn from a
// pool of equality links, residual predicates, disjunctions, and
// correlations against aggregates produced by earlier operators.
func randomQuery(rng *rand.Rand) gmdj.Query {
	keys := [][]string{{"g"}, {"h"}, {"g", "h"}}[rng.Intn(3)]
	q := gmdj.Query{Base: gmdj.BaseQuery{Detail: "T", Cols: keys}}
	if rng.Intn(4) == 0 {
		q.Base.Where = expr.MustParse("R.v > 10")
	}

	var priorNumeric []string // aggregate columns usable in later conditions
	nOps := 1 + rng.Intn(3)
	col := 0
	for opi := 0; opi < nOps; opi++ {
		nVars := 1 + rng.Intn(2)
		var vars []gmdj.GroupVar
		var produced []string // becomes referenceable only after this operator
		for vi := 0; vi < nVars; vi++ {
			var conjuncts []string
			// Link a random subset of the keys (possibly none → cross join
			// flavored conditions are allowed and exercise the nested loop).
			for _, k := range keys {
				if rng.Intn(3) > 0 {
					conjuncts = append(conjuncts, fmt.Sprintf("B.%s = R.%s", k, k))
				}
			}
			switch rng.Intn(4) {
			case 0:
				conjuncts = append(conjuncts, "R.v > 40")
			case 1:
				conjuncts = append(conjuncts, "R.v % 3 = 0")
			case 2:
				conjuncts = append(conjuncts, "(R.v < 20 || R.v > 80)")
			}
			if len(priorNumeric) > 0 && rng.Intn(2) == 0 {
				ref := priorNumeric[rng.Intn(len(priorNumeric))]
				conjuncts = append(conjuncts, fmt.Sprintf("R.v * 2 >= B.%s", ref))
			}
			if len(conjuncts) == 0 {
				conjuncts = append(conjuncts, "true")
			}
			cond := conjuncts[0]
			for _, c := range conjuncts[1:] {
				cond += " && " + c
			}

			var aggs []agg.Spec
			nAggs := 1 + rng.Intn(3)
			for ai := 0; ai < nAggs; ai++ {
				name := fmt.Sprintf("a%d", col)
				col++
				switch rng.Intn(7) {
				case 0:
					aggs = append(aggs, agg.Spec{Func: agg.Count, As: name})
					produced = append(produced, name)
				case 1:
					aggs = append(aggs, agg.Spec{Func: agg.Sum, Arg: "v", As: name})
					produced = append(produced, name)
				case 2:
					aggs = append(aggs, agg.Spec{Func: agg.Avg, Arg: "v", As: name})
					produced = append(produced, name)
				case 3:
					aggs = append(aggs, agg.Spec{Func: agg.Min, Arg: "v", As: name})
				case 4:
					aggs = append(aggs, agg.Spec{Func: agg.Max, Arg: "v", As: name})
				case 5:
					aggs = append(aggs, agg.Spec{Func: agg.Variance, Arg: "v", As: name})
				default:
					aggs = append(aggs, agg.Spec{Func: agg.StdDev, Arg: "v", As: name})
				}
			}
			vars = append(vars, gmdj.GroupVar{Aggs: aggs, Cond: expr.MustParse(cond)})
		}
		q.Ops = append(q.Ops, gmdj.Operator{Detail: "T", Vars: vars})
		priorNumeric = append(priorNumeric, produced...)
	}
	return q
}

// The engine-wide property: any random query, any random data, any random
// partitioning and option set — distributed equals centralized.
func TestQuickRandomQueries(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		global := randomGlobal(rng, 20+rng.Intn(80), 1+int64(rng.Intn(12)))
		nSites := 2 + rng.Intn(3)
		per := int64(12/nSites + 1)
		sites, cat, err := buildClusterImpl(global, "T", nSites, per, true)
		if err != nil {
			t.Logf("seed %d: cluster: %v", seed, err)
			return false
		}
		coord, err := New(sites, cat, stats.NetModel{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		q := randomQuery(rng)
		if err := q.Validate(gmdj.Data{"T": global}); err != nil {
			t.Logf("seed %d: generated invalid query: %v\n%s", seed, err, q)
			return false
		}
		want, err := gmdj.EvalCentral(q, gmdj.Data{"T": global}, true)
		if err != nil {
			t.Logf("seed %d: oracle: %v", seed, err)
			return false
		}
		opts := plan.Options{
			Coalesce:         rng.Intn(2) == 0,
			GroupReduceSite:  rng.Intn(2) == 0,
			GroupReduceCoord: rng.Intn(2) == 0,
			SyncReduce:       rng.Intn(2) == 0,
		}
		coord.SetRowBlocking([]int{0, 0, 3}[rng.Intn(3)])
		res, err := coord.Execute(context.Background(), q, opts)
		if err != nil {
			t.Logf("seed %d [%s]: execute: %v\n%s", seed, opts, err, q)
			return false
		}
		if !res.Rel.EqualMultiset(want) {
			t.Logf("seed %d [%s]: mismatch for query\n%s\nplan:\n%s", seed, opts, q, res.Plan.Describe())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
