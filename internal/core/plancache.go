package core

import (
	"container/list"
	"context"
	"sync"

	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/plan"
)

// planCache is the coordinator's prepared-plan cache. Lookup is keyed by the
// statement source text plus the rule selection (so a cache hit skips parse
// and optimize entirely — in auto mode that is the whole 2^5 candidate
// enumeration); validity is keyed by (Plan.Fingerprint, catalog generation):
// every entry remembers the catalog generation it was compiled under, and a
// lookup against a moved generation is a miss that drops the stale entry (the
// fingerprint itself hashes the generation, so the recompiled plan also gets
// a new identity). Compiled plans are immutable during execution, so one
// cached *plan.Plan may be executed by many concurrent sessions.
type planCache struct {
	mu      sync.Mutex
	cap     int
	lru     list.List // of *planEntry, front = most recent
	entries map[planKey]*list.Element
}

// planKey identifies what the caller asked for: the statement source (raw
// query text at the server, the canonical query string at the facade) and the
// canonical selection string.
type planKey struct {
	text string
	sel  string
}

type planEntry struct {
	key  planKey
	plan *plan.Plan
	gen  uint64 // catalog generation the plan was compiled under
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{cap: capacity, entries: make(map[planKey]*list.Element, capacity)}
}

// get returns the cached plan for key when it was compiled under the current
// catalog generation. A generation mismatch evicts the entry and reports a
// miss. Nil-safe: a nil cache never hits.
func (pc *planCache) get(key planKey, gen uint64) (*plan.Plan, bool) {
	if pc == nil {
		return nil, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if !ok {
		obs.ServerPlanCacheMisses.With("cold").Inc()
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.gen != gen {
		pc.lru.Remove(el)
		delete(pc.entries, key)
		obs.ServerPlanCacheMisses.With("generation").Inc()
		return nil, false
	}
	pc.lru.MoveToFront(el)
	obs.ServerPlanCacheHits.Inc()
	return e.plan, true
}

// put stores a compiled plan, evicting the least recently used entry beyond
// capacity, and returns the canonical plan for the key: insertion is
// idempotent per (key, generation), so when two concurrent misses both
// compile, the second writer adopts (and executes) the first's entry instead
// of replacing it and churning the LRU. An entry from a stale generation is
// replaced. Nil-safe: a nil cache returns pl unchanged.
func (pc *planCache) put(key planKey, pl *plan.Plan, gen uint64) *plan.Plan {
	if pc == nil {
		return pl
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		e := el.Value.(*planEntry)
		if e.gen == gen {
			pc.lru.MoveToFront(el)
			return e.plan
		}
		el.Value = &planEntry{key: key, plan: pl, gen: gen}
		pc.lru.MoveToFront(el)
		return pl
	}
	pc.entries[key] = pc.lru.PushFront(&planEntry{key: key, plan: pl, gen: gen})
	for pc.lru.Len() > pc.cap {
		oldest := pc.lru.Back()
		pc.lru.Remove(oldest)
		delete(pc.entries, oldest.Value.(*planEntry).key)
	}
	return pl
}

// len returns the number of cached plans.
func (pc *planCache) len() int {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

// SetPlanCache installs a prepared-plan cache of the given capacity (0
// disables caching; the default). See planCache for the keying and
// invalidation contract.
func (c *Coordinator) SetPlanCache(capacity int) { c.plans = newPlanCache(capacity) }

// PlanCacheLen returns the number of currently cached plans (0 when caching
// is disabled).
func (c *Coordinator) PlanCacheLen() int { return c.plans.len() }

// ExecuteCached evaluates the statement identified by text under sel, reusing
// the prepared plan cached for (text, sel) when the catalog generation still
// matches; on a miss, parse produces the query, the plan is compiled (auto
// mode enumerates its candidates exactly once per cached plan) and stored.
// The returned flag reports whether the plan came from the cache. With
// caching disabled this is parse + ExecuteWith.
func (c *Coordinator) ExecuteCached(ctx context.Context, text string, sel plan.Selection, parse func() (gmdj.Query, error)) (*Result, bool, error) {
	key := planKey{text: text, sel: sel.String()}
	if pl, ok := c.plans.get(key, c.cat.Gen()); ok {
		res, err := c.ExecutePlan(ctx, pl, c.SchemaSource(ctx))
		return res, true, err
	}
	q, err := parse()
	if err != nil {
		return nil, false, err
	}
	src := c.SchemaSource(ctx)
	pl, err := plan.Compile(q, src, c.cat, len(c.sites), sel, plan.DefaultCostModel(c.net))
	if err != nil {
		return nil, false, err
	}
	recordPlanObs(pl)
	// put adopts a concurrently inserted same-generation entry, so every
	// racing miss ends up executing the one canonical compiled plan.
	pl = c.plans.put(key, pl, c.cat.Gen())
	res, err := c.ExecutePlan(ctx, pl, src)
	return res, false, err
}
