package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport/faultinject"
)

// chaosPolicy is tuned for the matrix: enough attempts to absorb every
// transient mode, millisecond backoff so the suite stays fast, and a short
// per-attempt deadline so hung sites are cut loose promptly.
func chaosPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		CallTimeout: 250 * time.Millisecond,
	}
}

// sortedText renders a relation in a canonical row order, so two runs can be
// compared byte for byte.
func sortedText(r *relation.Relation) string {
	s := r.Clone()
	s.Sort()
	return s.Format(1 << 20)
}

// The chaos matrix: every fault mode crossed with every round shape must,
// under the retry policy, produce output byte-identical to the fault-free
// run — retries must never double-count (the staging invariant) and never
// lose rows.
func TestChaosMatrix(t *testing.T) {
	modes := []struct {
		name       string
		cfg        faultinject.Config
		wantsRetry bool
	}{
		// Outright call errors that clear up after two failures.
		{"fail-then-recover", faultinject.Config{FailFirst: 2}, true},
		// A hang only the per-attempt deadline frees.
		{"hang-until-deadline", faultinject.Config{HangFirst: 1}, true},
		// Added latency well under the deadline: no retries, just slow.
		{"slow-site", faultinject.Config{Delay: 5 * time.Millisecond}, false},
		// A stream dying after delivering one block, twice.
		{"mid-stream-death", faultinject.Config{FailStreams: 2, StreamFailAfterBlocks: 1}, false},
	}
	rounds := []struct {
		name      string
		opts      plan.Options
		blockRows int
	}{
		{"base+operator", plan.None(), 0},
		{"local-prefix", plan.Options{SyncReduce: true}, 0},
		{"operator-blocking", plan.None(), 3},
	}
	for _, mode := range modes {
		for _, round := range rounds {
			t.Run(mode.name+"/"+round.name, func(t *testing.T) {
				// Fault-free reference on an identically built cluster.
				clean := faultCluster(t, faultinject.Config{})
				clean.SetRowBlocking(round.blockRows)
				want, err := clean.Execute(context.Background(), chainQuery(), round.opts)
				if err != nil {
					t.Fatal(err)
				}

				coord := faultCluster(t, mode.cfg)
				coord.SetRetryPolicy(chaosPolicy())
				coord.SetRowBlocking(round.blockRows)
				retries0 := obs.CoordRetries.With("1").Value()
				got, err := coord.Execute(context.Background(), chainQuery(), round.opts)
				if err != nil {
					t.Fatalf("faulted run failed despite retry policy: %v", err)
				}
				if g, w := sortedText(got.Rel), sortedText(want.Rel); g != w {
					t.Fatalf("retried run differs from fault-free run\ngot:\n%s\nwant:\n%s", g, w)
				}
				if mode.wantsRetry && obs.CoordRetries.With("1").Value() == retries0 {
					t.Errorf("mode %s completed without recording a retry", mode.name)
				}
			})
		}
	}
}

// The acceptance scenario from the issue: a query over 4 sites with row
// blocking where one site fails its first EvalOperatorStream attempt after
// emitting at least one block. The query must complete, match the fault-free
// run byte for byte, and the retry must be visible in the metrics registry.
func TestRetryAfterPartialStream(t *testing.T) {
	build := func(cfg faultinject.Config) *Coordinator {
		global := randomGlobal(rand.New(rand.NewSource(99)), 120, 16)
		sites, cat := buildCluster(t, global, "T", 4, 4, true)
		sites[2] = faultinject.Wrap(sites[2], cfg)
		coord, err := New(sites, cat, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		coord.SetRowBlocking(2) // small blocks: the stream dies mid-flight
		return coord
	}

	clean := build(faultinject.Config{})
	want, err := clean.Execute(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}

	coord := build(faultinject.Config{FailStreams: 1, StreamFailAfterBlocks: 1})
	coord.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	retries0 := obs.CoordRetries.With("2").Value()
	got, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatalf("query did not survive a partial-stream failure: %v", err)
	}
	if g, w := sortedText(got.Rel), sortedText(want.Rel); g != w {
		t.Fatalf("retried result differs from fault-free result\ngot:\n%s\nwant:\n%s", g, w)
	}
	if obs.CoordRetries.With("2").Value() <= retries0 {
		t.Error("retries_total did not increase")
	}
	var sb strings.Builder
	if err := obs.Default.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "skalla_coord_site_retries_total") {
		t.Error("/metrics text is missing skalla_coord_site_retries_total")
	}
}

// Retry sleeps must yield to query cancellation: a persistent failure plus a
// generous backoff cannot hold Execute hostage once the context is canceled.
func TestRetryBackoffHonorsCancel(t *testing.T) {
	coord := faultCluster(t, faultinject.Config{FailFrom: 1})
	coord.SetRetryPolicy(RetryPolicy{MaxAttempts: 100, BaseBackoff: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := coord.Execute(ctx, chainQuery(), plan.None())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("canceled retried query returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute still blocked in backoff after cancel")
	}
}
