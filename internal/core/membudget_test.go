package core

import (
	"errors"
	"sync"
	"testing"

	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

func TestMemBudgetChargeRelease(t *testing.T) {
	if newMemBudget(0) != nil || newMemBudget(-1) != nil {
		t.Fatal("non-positive limit should disable the budget")
	}
	var off *memBudget
	if err := off.charge(1 << 40); err != nil {
		t.Fatalf("nil budget charged: %v", err)
	}
	off.release(1 << 40) // must not panic

	b := newMemBudget(100)
	if err := b.charge(60); err != nil {
		t.Fatal(err)
	}
	if err := b.charge(40); err != nil { // exactly at the limit is fine
		t.Fatal(err)
	}
	err := b.charge(1)
	if !errors.Is(err, ErrQueryMemBudget) {
		t.Fatalf("over-budget charge error = %v, want ErrQueryMemBudget", err)
	}
	b.release(61) // drop below the limit again
	if err := b.charge(20); err != nil {
		t.Fatalf("charge after release failed: %v", err)
	}
}

func TestMemBudgetConcurrentCharges(t *testing.T) {
	b := newMemBudget(1 << 30)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if err := b.charge(16); err != nil {
					t.Error(err)
					return
				}
				b.release(16)
			}
		}()
	}
	wg.Wait()
	if got := b.used.Load(); got != 0 {
		t.Fatalf("balanced charge/release left %d bytes accounted", got)
	}
}

// TestMergerBudget drives the merge boundaries a budget is charged at: base
// install, schema extension, and H-block staging. A budget large enough for
// the base but not the staged blocks must fail the stage with the typed
// error, and discarding the stage must return its bytes.
func TestMergerBudget(t *testing.T) {
	q := independentQuery()
	src := gmdj.Schemas{"T": tSchema}
	xs, err := gmdj.XSchemas(q, src)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := buildSegments(q, src, 2)
	if err != nil {
		t.Fatal(err)
	}
	hSchema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.KindInt},
		relation.Column{Name: "h", Kind: relation.KindInt},
		relation.Column{Name: "cnt1", Kind: relation.KindInt},
		relation.Column{Name: "avg1_sum", Kind: relation.KindInt},
		relation.Column{Name: "avg1_cnt", Kind: relation.KindInt},
	)
	newBase := func() *relation.Relation {
		base := relation.New(xs[0])
		base.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewInt(0)})
		base.MustAppend(relation.Tuple{relation.NewInt(2), relation.NewInt(1)})
		return base
	}

	// Budget smaller than the base: InitBase itself fails typed.
	tiny := newMerger([]string{"g", "h"}, xs, segs, newMemBudget(1))
	if err := tiny.InitBase(newBase()); !errors.Is(err, ErrQueryMemBudget) {
		t.Fatalf("InitBase under 1-byte budget = %v, want ErrQueryMemBudget", err)
	}

	// Budget that fits base + extension but not a staged H block.
	budget := newMemBudget(newBase().MemBytes() + 1024)
	m := newMerger([]string{"g", "h"}, xs, segs, budget)
	if err := m.InitBase(newBase()); err != nil {
		t.Fatal(err)
	}
	if err := m.Extend(); err != nil {
		t.Fatal(err)
	}
	st := m.NewStage(0)
	big := relation.New(hSchema)
	for i := 0; i < 100; i++ {
		big.MustAppend(relation.Tuple{
			relation.NewInt(1), relation.NewInt(0),
			relation.NewInt(1), relation.NewInt(10), relation.NewInt(1),
		})
	}
	before := budget.used.Load()
	if err := st.Add(big); !errors.Is(err, ErrQueryMemBudget) {
		t.Fatalf("staging over budget = %v, want ErrQueryMemBudget", err)
	}
	st.Discard()
	if got := budget.used.Load(); got != before {
		t.Fatalf("Discard left %d bytes charged, want %d", got, before)
	}

	// Small blocks within budget stage, commit, and release cleanly.
	st2 := m.NewStage(0)
	small := relation.New(hSchema)
	small.MustAppend(relation.Tuple{
		relation.NewInt(1), relation.NewInt(0),
		relation.NewInt(2), relation.NewInt(10), relation.NewInt(2),
	})
	if err := st2.Add(small); err != nil {
		t.Fatal(err)
	}
	if budget.used.Load() <= before {
		t.Fatal("staged block was not charged")
	}
	if err := m.CommitStage(st2, 0); err != nil {
		t.Fatal(err)
	}
	if got := budget.used.Load(); got != before {
		t.Fatalf("CommitStage left %d bytes charged, want %d", got, before)
	}
}
