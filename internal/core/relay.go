package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"skalla/internal/agg"
	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
	"skalla/internal/transport"
)

// Relay is an intermediate aggregation node realizing the multi-tiered
// coordinator architecture the paper lists as future work (Sect. 6): it
// appears to its parent (the root coordinator or another relay) as a single
// site, fans every request out to its children, and pre-merges their
// sub-aggregate results before answering. A two-tier deployment of n sites
// behind k relays cuts the root's fan-in from n to k and moves (n/k - 1)/n
// of the synchronization work down the tree.
//
// Relay implements transport.Backend, so it slots in anywhere a site engine
// does: wrap it in transport.NewLocalSite for an in-process tier, or serve
// it with transport.Serve to run a mid-tier aggregation process whose
// children are TCP connections to the leaf sites.
type Relay struct {
	id       int
	children []transport.Site

	mu sync.Mutex
	//skallavet:allow stringkey -- catalog cache keyed by relation name: one lookup per operator round
	schema map[string]relation.Schema
}

// NewRelay creates a relay over child sites.
func NewRelay(id int, children []transport.Site) (*Relay, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("core: relay needs at least one child")
	}
	//skallavet:allow stringkey -- catalog cache keyed by relation name: one lookup per operator round
	return &Relay{id: id, children: children, schema: make(map[string]relation.Schema)}, nil
}

// ID implements transport.Backend.
func (r *Relay) ID() int { return r.id }

// Load implements transport.Backend: relays hold no data.
func (r *Relay) Load(context.Context, string, *relation.Relation) error {
	return fmt.Errorf("core: relay %d holds no data; load the leaf sites", r.id)
}

// DetailSchema implements transport.Backend with caching.
func (r *Relay) DetailSchema(ctx context.Context, name string) (relation.Schema, error) {
	r.mu.Lock()
	if s, ok := r.schema[name]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()
	s, err := r.children[0].DetailSchema(ctx, name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.schema[name] = s
	r.mu.Unlock()
	return s, nil
}

// Tables implements transport.Backend: the union of the children's
// inventories with row counts summed per relation.
func (r *Relay) Tables(ctx context.Context) []engine.TableInfo {
	//skallavet:allow stringkey -- inventory merge keyed by relation name: metadata call, sites x relations entries
	totals := make(map[string]engine.TableInfo)
	for _, c := range r.children {
		infos, err := c.Tables(ctx)
		if err != nil {
			continue
		}
		for _, ti := range infos {
			cur := totals[ti.Name]
			cur.Name = ti.Name
			cur.Columns = ti.Columns
			cur.Rows += ti.Rows
			totals[ti.Name] = cur
		}
	}
	out := make([]engine.TableInfo, 0, len(totals))
	for _, ti := range totals {
		out = append(out, ti)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// fanOut runs f against every child in parallel and gathers results. The
// first child error cancels the context handed to the rest of the fan-out,
// so one failed leaf does not leave its siblings computing for a dead round.
func (r *Relay) fanOut(ctx context.Context, f func(context.Context, transport.Site) (*relation.Relation, error)) ([]*relation.Relation, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	rels := make([]*relation.Relation, len(r.children))
	errs := make([]error, len(r.children))
	var wg sync.WaitGroup
	for i, c := range r.children {
		wg.Add(1)
		go func(i int, c transport.Site) {
			defer wg.Done()
			rels[i], errs[i] = f(ctx, c)
			if errs[i] != nil {
				cancel()
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rels, nil
}

// EvalBase implements transport.Backend: the union of the children's
// base-values fragments, de-duplicated (the projection columns form the
// key, so set union is exact and shrinks the upward traffic).
func (r *Relay) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, error) {
	parts, err := r.fanOut(ctx, func(ctx context.Context, c transport.Site) (*relation.Relation, error) {
		rel, _, err := c.EvalBase(ctx, bq)
		return rel, err
	})
	if err != nil {
		return nil, err
	}
	out := parts[0]
	for _, p := range parts[1:] {
		if err := out.Union(p); err != nil {
			return nil, err
		}
	}
	if err := out.DedupBy(out.Schema.Names()); err != nil {
		return nil, err
	}
	return out, nil
}

// EvalOperatorBlocks implements transport.Backend: the children's H_i are
// merged by key with the super-aggregates (Theorem 1 applied at the tier),
// then emitted in blocks. The merged relation is a valid sub-aggregate of
// the relay's whole subtree.
func (r *Relay) EvalOperatorBlocks(ctx context.Context, req engine.OperatorRequest, emit func(*relation.Relation) error) error {
	detail, err := r.DetailSchema(ctx, req.Op.Detail)
	if err != nil {
		return err
	}
	layouts := make([]*agg.Layout, len(req.Op.Vars))
	for i, v := range req.Op.Vars {
		if layouts[i], err = agg.NewLayout(v.Aggs, detail); err != nil {
			return err
		}
	}
	parts, err := r.fanOut(ctx, func(ctx context.Context, c transport.Site) (*relation.Relation, error) {
		rel, _, err := c.EvalOperator(ctx, req)
		return rel, err
	})
	if err != nil {
		return err
	}
	merged, err := mergeSubAggregates(len(req.Keys), layouts, parts)
	if err != nil {
		return err
	}
	return emitBlocks(merged, req.BlockRows, emit)
}

// EvalLocal implements transport.Backend: the children's locally evaluated X
// prefixes are merged exactly as the root coordinator would merge them.
func (r *Relay) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, error) {
	schemas := gmdj.SchemaSourceFunc(func(name string) (relation.Schema, error) {
		return r.DetailSchema(ctx, name)
	})
	xs, err := gmdj.XSchemas(req.Query, schemas)
	if err != nil {
		return nil, err
	}
	segs, err := buildSegments(req.Query, schemas, len(req.Query.Keys()))
	if err != nil {
		return nil, err
	}
	if req.UpTo < 0 || req.UpTo >= len(xs) {
		return nil, fmt.Errorf("core: relay: prefix %d out of range", req.UpTo)
	}
	parts, err := r.fanOut(ctx, func(ctx context.Context, c transport.Site) (*relation.Relation, error) {
		rel, _, err := c.EvalLocal(ctx, req)
		return rel, err
	})
	if err != nil {
		return nil, err
	}
	// The relay merges child fragments unbudgeted: the per-query memory
	// budget is the root coordinator's concern, not the interior tier's.
	m := newMerger(req.Query.Keys(), xs, segs, nil)
	if err := m.InitLocal(req.UpTo); err != nil {
		return nil, err
	}
	for _, p := range parts {
		if err := m.MergeLocal(p); err != nil {
			return nil, err
		}
	}
	m.RecomputeDerived(req.UpTo)
	return m.X(), nil
}

// mergeSubAggregates merges per-child H relations (key columns followed by
// the operator's physical columns) into one H by key, applying the
// super-aggregate of each physical column.
func mergeSubAggregates(numKeys int, layouts []*agg.Layout, parts []*relation.Relation) (*relation.Relation, error) {
	physWidth := 0
	for _, l := range layouts {
		physWidth += len(l.Phys)
	}
	out := relation.New(parts[0].Schema)
	keyCols := make([]int, numKeys)
	for i := range keyCols {
		keyCols[i] = i
	}
	index := relation.BuildKeyIndexCols(out, keyCols)
	for _, p := range parts {
		if !p.Schema.Equal(out.Schema) {
			return nil, fmt.Errorf("core: relay: child H schema %s, want %s", p.Schema, out.Schema)
		}
		for _, row := range p.Tuples {
			if len(row) != numKeys+physWidth {
				return nil, fmt.Errorf("core: relay: H row arity %d, want %d", len(row), numKeys+physWidth)
			}
			rows := index.Lookup(row, keyCols)
			if len(rows) == 0 {
				nrow := row.Clone()
				out.Tuples = append(out.Tuples, nrow)
				index.Add(nrow, len(out.Tuples)-1)
				continue
			}
			target := out.Tuples[rows[0]]
			cursor := numKeys
			for _, l := range layouts {
				n := len(l.Phys)
				if err := l.MergePhys(target[cursor:cursor+n], row[cursor:cursor+n]); err != nil {
					return nil, err
				}
				cursor += n
			}
		}
	}
	return out, nil
}

// emitBlocks chunks a relation per the row-blocking request.
func emitBlocks(rel *relation.Relation, blockRows int, emit func(*relation.Relation) error) error {
	if blockRows <= 0 || rel.Len() <= blockRows {
		return emit(rel)
	}
	for start := 0; start < rel.Len(); start += blockRows {
		end := start + blockRows
		if end > rel.Len() {
			end = rel.Len()
		}
		block := &relation.Relation{Schema: rel.Schema, Tuples: rel.Tuples[start:end]}
		if err := emit(block); err != nil {
			return err
		}
	}
	return nil
}
