package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"skalla/internal/engine"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// cancelSite cancels the coordinator's context as soon as the first H block is
// about to be streamed, simulating a caller abandoning the query mid-round.
type cancelSite struct {
	transport.Site
	cancel context.CancelFunc
	fired  int32
}

func (c *cancelSite) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	return c.Site.EvalOperatorStream(ctx, req, func(b *relation.Relation) error {
		if atomic.CompareAndSwapInt32(&c.fired, 0, 1) {
			c.cancel()
		}
		return sink(b)
	})
}

// A context cancelled before any round starts must abort Execute immediately
// with the context's error.
func TestCancelBeforeExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	global := randomGlobal(rng, 60, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)
	coord, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := coord.Execute(ctx, chainQuery(), plan.None()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled before execute: err = %v, want context.Canceled", err)
	}
}

// Cancelling mid-way through an operator round's block stream must surface
// context.Canceled — not hang on the block channel, and not mask the
// cancellation behind a per-site error.
func TestCancelMidStream(t *testing.T) {
	for _, opts := range []plan.Options{plan.None(), {GroupReduceSite: true, GroupReduceCoord: true}} {
		rng := rand.New(rand.NewSource(92))
		global := randomGlobal(rng, 200, 12)
		sites, cat := buildCluster(t, global, "T", 3, 4, true)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// Wrap every site so whichever streams first trips the cancel; small
		// blocks keep streams long enough that cancellation lands mid-round.
		for i := range sites {
			sites[i] = &cancelSite{Site: sites[i], cancel: cancel}
		}
		coord, err := New(sites, cat, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		coord.SetRowBlocking(1)
		if _, err := coord.Execute(ctx, chainQuery(), opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("[%s] cancelled mid-stream: err = %v, want context.Canceled", opts, err)
		}
	}
}
