package core

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrQueryMemBudget marks a query that was failed because its coordinator-side
// working set (staged H blocks plus base-result structure growth) exceeded the
// configured per-query memory budget. The one over-budget query fails with
// this typed error; concurrent queries and the daemon itself are unaffected.
// Match it with errors.Is.
var ErrQueryMemBudget = errors.New("core: query memory budget exceeded")

// SetQueryMemBudget bounds the coordinator-side memory one query may hold:
// staged H-block bytes plus base-result structure growth, charged at staging
// and merge boundaries (relation.MemBytes estimates). A query crossing the
// budget fails with ErrQueryMemBudget instead of OOMing the daemon. Zero (the
// default) disables the budget.
func (c *Coordinator) SetQueryMemBudget(bytes int64) { c.memBudget = bytes }

// memBudget tracks one query's coordinator-side memory charge. Charges come
// from the merger (X growth) and from per-site staging goroutines (H blocks),
// so the counter is atomic; the limit check is advisory bookkeeping, not a
// hard allocator cap — blocks are charged as soon as they are staged, which is
// exactly the point where an unbounded query would otherwise accumulate
// memory.
type memBudget struct {
	limit int64
	used  atomic.Int64
}

// newMemBudget returns a budget tracker, or nil when limit <= 0 (nil receiver
// methods are no-ops, so unbudgeted queries pay nothing).
func newMemBudget(limit int64) *memBudget {
	if limit <= 0 {
		return nil
	}
	return &memBudget{limit: limit}
}

// charge adds n bytes to the query's working set and fails with a typed
// error once the budget is crossed. The overshooting charge stays counted:
// the caller is expected to fail the query, and its release path returns the
// bytes.
func (b *memBudget) charge(n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	if used := b.used.Add(n); used > b.limit {
		return fmt.Errorf("%w: %d bytes held > budget %d", ErrQueryMemBudget, used, b.limit)
	}
	return nil
}

// release returns n bytes to the budget (a discarded or committed stage).
func (b *memBudget) release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.used.Add(-n)
}
