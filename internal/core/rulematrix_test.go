package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/stats"
)

// subsetSelection returns the rule selection for bitmask mask over the
// canonical rule list (bit i set → rule i enabled).
func subsetSelection(mask int) plan.Selection {
	var names []string
	for i, name := range plan.RuleNames() {
		if mask&(1<<i) != 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return plan.SelectNone()
	}
	return plan.SelectRules(names...)
}

// TestRuleSubsetsByteIdentical is the planner's core invariant: every rule
// subset — all 2^5 of them, covering every pairwise combination and the full
// set — produces a byte-identical merged result, and matches both the legacy
// Options execution path and the cost-driven auto mode, on each matrix query.
func TestRuleSubsetsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	global := randomGlobal(rng, 400, 8)
	queries := map[string]gmdj.Query{
		"chain":       chainQuery(),
		"independent": independentQuery(),
		"nonaligned":  nonAlignedQuery(),
	}
	nRules := len(plan.RuleNames())
	for qname, q := range queries {
		run := func(sel plan.Selection) (string, string) {
			t.Helper()
			sites, cat := buildCluster(t, global, "T", 3, 3, true)
			coord, err := New(sites, cat, stats.NetModel{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := coord.ExecuteWith(context.Background(), q, sel)
			if err != nil {
				t.Fatalf("%s under %s: %v", qname, sel, err)
			}
			return sortedText(res.Rel), res.Plan.Fingerprint
		}
		want, _ := run(plan.SelectNone())
		for mask := 1; mask < 1<<nRules; mask++ {
			sel := subsetSelection(mask)
			if got, _ := run(sel); got != want {
				t.Errorf("%s: subset %s diverges from baseline", qname, sel)
			}
		}
		if got, _ := run(plan.SelectAuto()); got != want {
			t.Errorf("%s: auto mode diverges from baseline", qname)
		}
		// Legacy Options path: same results, and the shim's fingerprint
		// matches the equivalent rule selection's.
		sites, cat := buildCluster(t, global, "T", 3, 3, true)
		coord, err := New(sites, cat, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Execute(context.Background(), q, plan.All())
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedText(res.Rel); got != want {
			t.Errorf("%s: legacy Options(all) diverges from baseline", qname)
		}
		_, selFP := run(plan.OptionsSelection(plan.All()))
		if res.Plan.Fingerprint != selFP {
			t.Errorf("%s: Options shim fingerprint %s != selection fingerprint %s",
				qname, res.Plan.Fingerprint, selFP)
		}
	}
}

// TestAutoEstimateNeverWorse is the cost model's property: on randomized
// queries and partitionings, auto mode's estimated cost is never worse than
// the best of the 16 legacy boolean combinations, and auto's execution stays
// byte-identical to the unoptimized baseline.
func TestAutoEstimateNeverWorse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		global := randomGlobal(rng, 20+rng.Intn(80), 1+int64(rng.Intn(12)))
		nSites := 2 + rng.Intn(3)
		per := int64(12/nSites + 1)
		sites, cat, err := buildClusterImpl(global, "T", nSites, per, true)
		if err != nil {
			t.Logf("seed %d: cluster: %v", seed, err)
			return false
		}
		coord, err := New(sites, cat, stats.NetModel{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		q := randomQuery(rng)
		if err := q.Validate(gmdj.Data{"T": global}); err != nil {
			t.Logf("seed %d: generated invalid query: %v", seed, err)
			return false
		}
		ctx := context.Background()
		auto, err := coord.PlanWith(ctx, q, plan.SelectAuto())
		if err != nil {
			t.Logf("seed %d: auto plan: %v", seed, err)
			return false
		}
		for mask := 0; mask < 16; mask++ {
			opts := plan.Options{
				Coalesce:         mask&1 != 0,
				GroupReduceSite:  mask&2 != 0,
				GroupReduceCoord: mask&4 != 0,
				SyncReduce:       mask&8 != 0,
			}
			p, err := coord.PlanWith(ctx, q, plan.OptionsSelection(opts))
			if err != nil {
				t.Logf("seed %d [%s]: plan: %v", seed, opts, err)
				return false
			}
			if auto.Estimate.Compare(p.Estimate) > 0 {
				t.Logf("seed %d: auto estimate (%s, rules %s) worse than %s (%s)\n%s",
					seed, auto.Estimate, strings.Join(auto.Rules, ","), opts, p.Estimate, q)
				return false
			}
		}
		base, err := coord.ExecuteWith(ctx, q, plan.SelectNone())
		if err != nil {
			t.Logf("seed %d: baseline execute: %v", seed, err)
			return false
		}
		got, err := coord.ExecuteWith(ctx, q, plan.SelectAuto())
		if err != nil {
			t.Logf("seed %d: auto execute: %v", seed, err)
			return false
		}
		if sortedText(got.Rel) != sortedText(base.Rel) {
			t.Logf("seed %d: auto result diverges from baseline\n%s", seed, q)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
