package core

import (
	"context"
	"math/rand"
	"testing"

	"skalla/internal/distrib"
	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// tieredCluster builds 4 leaf sites behind 2 relays and returns the relay
// transports plus a top-tier catalog (each relay owns its children's ranges).
func tieredCluster(t *testing.T, global *relation.Relation) ([]transport.Site, *distrib.Catalog) {
	t.Helper()
	leaves, _ := buildCluster(t, global, "T", 4, 3, true)
	var tier []transport.Site
	filters := make([]distrib.SiteFilter, 2)
	for i := 0; i < 2; i++ {
		relay, err := NewRelay(i, leaves[i*2:i*2+2])
		if err != nil {
			t.Fatal(err)
		}
		tier = append(tier, transport.NewLocalSite(relay))
		lo := int64(i * 2 * 3)
		hi := int64((i*2+2)*3 - 1)
		if i == 1 {
			hi = 1 << 30 // mirrors the tail-absorbing leaf partitioning
		}
		filters[i] = distrib.IntRange{Lo: lo, Hi: hi}
	}
	cat := distrib.NewCatalog(&distrib.Distribution{
		Relation: "T",
		NumSites: 2,
		Attrs:    []distrib.AttrInfo{{Attr: "g", Filters: filters, Disjoint: true}},
	})
	return tier, cat
}

// A two-tier deployment must produce exactly the same results as the flat
// one, for every query shape and option combination (the relays pre-merge
// per Theorem 1, which is associative).
func TestTieredMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 3; trial++ {
		global := randomGlobal(rng, 60+trial*60, 12)
		tier, cat := tieredCluster(t, global)
		coord, err := New(tier, cat, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		for qname, q := range map[string]gmdj.Query{
			"chain":      chainQuery(),
			"nonaligned": nonAlignedQuery(),
			"prefix":     prefixQuery(),
		} {
			want, err := gmdj.EvalCentral(q, gmdj.Data{"T": global}, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range allOptionCombos() {
				res, err := coord.Execute(context.Background(), q, opts)
				if err != nil {
					t.Fatalf("%s [%s]: %v", qname, opts, err)
				}
				if !res.Rel.EqualMultiset(want) {
					t.Fatalf("%s [%s]: tiered result mismatch\nplan:\n%s", qname, opts, res.Plan.Describe())
				}
			}
		}
	}
}

// The root coordinator of a tiered deployment exchanges messages with the
// relays only: its fan-in is the relay count, and the relays' pre-merge
// caps the root's inbound rows at |X| per relay per round.
func TestTieredReducesRootFanIn(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	global := randomGlobal(rng, 300, 12)

	flat, flatCat := buildCluster(t, global, "T", 4, 3, true)
	flatCoord, _ := New(flat, flatCat, stats.NetModel{})
	tier, tierCat := tieredCluster(t, global)
	tierCoord, _ := New(tier, tierCat, stats.NetModel{})

	q := nonAlignedQuery() // groups span every site: worst-case fan-in
	flatRes, err := flatCoord.Execute(context.Background(), q, plan.None())
	if err != nil {
		t.Fatal(err)
	}
	tierRes, err := tierCoord.Execute(context.Background(), q, plan.None())
	if err != nil {
		t.Fatal(err)
	}
	if !flatRes.Rel.EqualMultiset(tierRes.Rel) {
		t.Fatal("flat vs tiered mismatch")
	}
	flatMsgs := flatRes.Metrics.TotalMessages()
	tierMsgs := tierRes.Metrics.TotalMessages()
	if tierMsgs >= flatMsgs {
		t.Errorf("root messages: tiered %d !< flat %d", tierMsgs, flatMsgs)
	}
	// Root inbound rows shrink: each relay merges its two children's H.
	var flatUp, tierUp int
	for i := range flatRes.Metrics.Rounds {
		flatUp += flatRes.Metrics.Rounds[i].RowsUp()
	}
	for i := range tierRes.Metrics.Rounds {
		tierUp += tierRes.Metrics.Rounds[i].RowsUp()
	}
	if tierUp >= flatUp {
		t.Errorf("root inbound rows: tiered %d !< flat %d", tierUp, flatUp)
	}
}

// A relay served over TCP: mid-tier aggregation as its own process.
func TestRelayOverTCP(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	global := randomGlobal(rng, 80, 12)
	leaves, _ := buildCluster(t, global, "T", 4, 3, true)

	var tierAddrs []string
	for i := 0; i < 2; i++ {
		relay, err := NewRelay(i, leaves[i*2:i*2+2])
		if err != nil {
			t.Fatal(err)
		}
		srv, err := transport.Serve(relay, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		tierAddrs = append(tierAddrs, srv.Addr())
	}
	var tier []transport.Site
	for _, addr := range tierAddrs {
		cli, err := transport.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		tier = append(tier, cli)
	}
	coord, _ := New(tier, nil, stats.NetModel{})
	want, err := gmdj.EvalCentral(chainQuery(), gmdj.Data{"T": global}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []plan.Options{plan.None(), {GroupReduceSite: true, Coalesce: true}} {
		res, err := coord.Execute(context.Background(), chainQuery(), opts)
		if err != nil {
			t.Fatalf("[%s]: %v", opts, err)
		}
		if !res.Rel.EqualMultiset(want) {
			t.Errorf("[%s]: TCP relay mismatch", opts)
		}
	}
}

func TestRelayErrors(t *testing.T) {
	if _, err := NewRelay(0, nil); err == nil {
		t.Error("empty relay must error")
	}
	rng := rand.New(rand.NewSource(94))
	global := randomGlobal(rng, 20, 12)
	leaves, _ := buildCluster(t, global, "T", 2, 6, true)
	relay, err := NewRelay(0, leaves)
	if err != nil {
		t.Fatal(err)
	}
	if err := relay.Load(context.Background(), "T", relation.New(tSchema)); err == nil {
		t.Error("relay Load must error")
	}
	if _, err := relay.DetailSchema(context.Background(), "missing"); err == nil {
		t.Error("unknown relation must error")
	}
	if _, err := relay.EvalBase(context.Background(), gmdj.BaseQuery{Detail: "missing", Cols: []string{"x"}}); err == nil {
		t.Error("bad base query must error")
	}
	if _, err := relay.EvalLocal(context.Background(), engine.LocalRequest{Query: chainQuery(), UpTo: 99}); err == nil {
		t.Error("out-of-range prefix must error")
	}
}

func TestRelayTables(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	global := randomGlobal(rng, 40, 12)
	leaves, _ := buildCluster(t, global, "T", 2, 6, true)
	relay, err := NewRelay(0, leaves)
	if err != nil {
		t.Fatal(err)
	}
	infos := relay.Tables(context.Background())
	if len(infos) != 1 || infos[0].Name != "T" || infos[0].Rows != 40 {
		t.Errorf("relay inventory = %+v", infos)
	}
}
