package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/stats"
)

// The paper notes the coordinator "may consist of multiple instances, e.g.,
// each client may have its own coordinator instance". Sites must therefore
// serve concurrent coordinators safely; this hammers one site set from
// several coordinators and checks every result against the oracle.
func TestConcurrentCoordinators(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	global := randomGlobal(rng, 200, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)

	queries := []gmdj.Query{chainQuery(), independentQuery(), nonAlignedQuery()}
	expected := make([]int, len(queries))
	for i, q := range queries {
		want, err := gmdj.EvalCentral(q, gmdj.Data{"T": global}, true)
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = want.Len()
	}

	const coordinators = 4
	const iterations = 5
	var wg sync.WaitGroup
	errs := make(chan error, coordinators*iterations)
	for c := 0; c < coordinators; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			coord, err := New(sites, cat, stats.NetModel{})
			if err != nil {
				errs <- err
				return
			}
			coord.SetRowBlocking(c) // different blocking per coordinator
			localRng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < iterations; i++ {
				qi := localRng.Intn(len(queries))
				opts := plan.Options{
					Coalesce:         localRng.Intn(2) == 0,
					GroupReduceSite:  localRng.Intn(2) == 0,
					GroupReduceCoord: localRng.Intn(2) == 0,
					SyncReduce:       localRng.Intn(2) == 0,
				}
				res, err := coord.Execute(context.Background(), queries[qi], opts)
				if err != nil {
					errs <- err
					return
				}
				if res.Rel.Len() != expected[qi] {
					t.Errorf("coordinator %d: query %d returned %d groups, want %d",
						c, qi, res.Rel.Len(), expected[qi])
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
