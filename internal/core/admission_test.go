package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionNilIsOpen(t *testing.T) {
	var a *admission
	queued, err := a.acquire(context.Background())
	if err != nil || queued != 0 {
		t.Fatalf("nil admission acquire = (%v, %v), want (0, nil)", queued, err)
	}
	a.release() // must not panic
}

func TestAdmissionRejectsBeyondQueue(t *testing.T) {
	a := &admission{sem: make(chan struct{}, 1), queue: 1}
	ctx := context.Background()

	if _, err := a.acquire(ctx); err != nil { // takes the only slot
		t.Fatal(err)
	}

	// One waiter fits in the queue and parks.
	waited := make(chan time.Duration, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d, err := a.acquire(ctx)
		if err != nil {
			t.Error(err)
		}
		waited <- d
	}()
	// Wait until the goroutine is counted as queued before overflowing.
	for a.waiting.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Second waiter overflows the bounded queue: immediate typed reject.
	if _, err := a.acquire(ctx); !errors.Is(err, ErrAdmissionReject) {
		t.Fatalf("overflow acquire error = %v, want ErrAdmissionReject", err)
	}

	a.release() // frees the slot; parked waiter proceeds
	wg.Wait()
	if d := <-waited; d <= 0 {
		t.Fatalf("queued waiter recorded no queue time (%v)", d)
	}
	a.release()

	// Everything drained: a fresh acquire is a fast-path success again.
	if queued, err := a.acquire(ctx); err != nil || queued != 0 {
		t.Fatalf("post-drain acquire = (%v, %v), want (0, nil)", queued, err)
	}
	a.release()
}

func TestAdmissionQueueCancellation(t *testing.T) {
	a := &admission{sem: make(chan struct{}, 1), queue: 1}
	if _, err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		done <- err
	}()
	for a.waiting.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}
	// The cancelled waiter must have released its queue reservation.
	if got := a.waiting.Load(); got != 0 {
		t.Fatalf("waiting = %d after cancellation, want 0", got)
	}
	a.release()
}

func TestSetAdmissionDefaults(t *testing.T) {
	c := &Coordinator{}
	c.SetAdmission(0, -1)
	if c.admit == nil || cap(c.admit.sem) < 1 {
		t.Fatal("SetAdmission(0, -1) did not install GOMAXPROCS defaults")
	}
	if want := int64(4 * cap(c.admit.sem)); c.admit.queue != want {
		t.Fatalf("default queue depth = %d, want %d", c.admit.queue, want)
	}
	c.SetAdmission(2, 0)
	if cap(c.admit.sem) != 2 || c.admit.queue != 0 {
		t.Fatalf("SetAdmission(2, 0) = (slots %d, queue %d), want (2, 0)", cap(c.admit.sem), c.admit.queue)
	}
}
