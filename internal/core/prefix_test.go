package core

import (
	"context"
	"math/rand"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/stats"
)

// prefixQuery has three operators: the first two link the partition
// attribute g (locally evaluable), the third links only h (groups span
// sites), so the Thm. 5 local prefix covers exactly MD1..MD2.
func prefixQuery() gmdj.Query {
	return gmdj.Query{
		Base: gmdj.BaseQuery{Detail: "T", Cols: []string{"g", "h"}},
		Ops: []gmdj.Operator{
			{Detail: "T", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "c1"}, {Func: agg.Avg, Arg: "v", As: "a1"}},
				Cond: expr.MustParse("B.g = R.g && B.h = R.h"),
			}}},
			{Detail: "T", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "c2"}},
				Cond: expr.MustParse("B.g = R.g && R.v >= B.a1"),
			}}},
			{Detail: "T", Vars: []gmdj.GroupVar{{
				Aggs: []agg.Spec{{Func: agg.Count, As: "c3"}, {Func: agg.Sum, Arg: "v", As: "s3"}},
				Cond: expr.MustParse("B.h = R.h && R.v >= B.a1"),
			}}},
		},
	}
}

func TestLocalPrefixPlanShape(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	global := randomGlobal(rng, 60, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)
	coord, _ := New(sites, cat, stats.NetModel{})
	pl, err := coord.Plan(context.Background(), prefixQuery(), plan.Options{SyncReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if pl.LocalPrefix != 2 || pl.FullLocal {
		t.Errorf("LocalPrefix = %d, FullLocal = %v; want prefix 2, not full", pl.LocalPrefix, pl.FullLocal)
	}
	if pl.Rounds() != 2 { // one local prefix round + MD3
		t.Errorf("Rounds = %d, want 2", pl.Rounds())
	}
}

func TestLocalPrefixMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 4; trial++ {
		global := randomGlobal(rng, 40+40*trial, 12)
		sites, cat := buildCluster(t, global, "T", 3, 4, true)
		coord, _ := New(sites, cat, stats.NetModel{})
		q := prefixQuery()
		want, err := gmdj.EvalCentral(q, gmdj.Data{"T": global}, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range allOptionCombos() {
			res, err := coord.Execute(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("[%s]: %v", opts, err)
			}
			if !res.Rel.EqualMultiset(want) {
				t.Fatalf("trial %d [%s]: prefix query mismatch\nplan:\n%s", trial, opts, res.Plan.Describe())
			}
			if res.Metrics.NumRounds() != res.Plan.Rounds() {
				t.Errorf("[%s]: rounds %d != plan %d", opts, res.Metrics.NumRounds(), res.Plan.Rounds())
			}
		}
	}
}

// The partial prefix must cut traffic relative to no sync reduction: the
// first two operators ship nothing down and only the final X up.
func TestLocalPrefixReducesTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	global := randomGlobal(rng, 300, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, false)
	coord, _ := New(sites, cat, stats.NetModel{})
	q := prefixQuery()
	base, err := coord.Execute(context.Background(), q, plan.None())
	if err != nil {
		t.Fatal(err)
	}
	red, err := coord.Execute(context.Background(), q, plan.Options{SyncReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if red.Metrics.NumRounds() != 2 || base.Metrics.NumRounds() != 4 {
		t.Fatalf("rounds: %d vs %d", red.Metrics.NumRounds(), base.Metrics.NumRounds())
	}
	if red.Metrics.TotalRows() >= base.Metrics.TotalRows() {
		t.Errorf("prefix reduction moved %d rows, baseline %d", red.Metrics.TotalRows(), base.Metrics.TotalRows())
	}
}
