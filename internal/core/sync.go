package core

import (
	"fmt"
	"sync"

	"skalla/internal/agg"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

// varSegment locates one grouping variable's aggregate columns inside the
// base-result structure X.
type varSegment struct {
	layout    *agg.Layout
	physStart int // absolute column index of the first physical column
	derStart  int // absolute column index of the first derived column
}

// buildSegments compiles the per-operator column segments of the final X
// layout for a query: base columns first, then per operator, per variable,
// physical columns followed by derived columns.
func buildSegments(q gmdj.Query, src gmdj.SchemaSource, numBaseCols int) ([][]varSegment, error) {
	segs := make([][]varSegment, len(q.Ops))
	cursor := numBaseCols
	for k, op := range q.Ops {
		detail, err := src.DetailSchema(op.Detail)
		if err != nil {
			return nil, err
		}
		for _, v := range op.Vars {
			layout, err := agg.NewLayout(v.Aggs, detail)
			if err != nil {
				return nil, err
			}
			seg := varSegment{layout: layout, physStart: cursor}
			cursor += len(layout.Phys)
			seg.derStart = cursor
			cursor += len(layout.Derived)
			segs[k] = append(segs[k], seg)
		}
	}
	return segs, nil
}

// merger maintains the coordinator's base-result structure X, indexed on the
// base key attributes K, and implements the synchronization of Theorem 1:
// merging an incoming sub-aggregate relation H runs in O(|H|) via the key
// index, applying the super-aggregate of each physical column.
type merger struct {
	keys     []string
	xschemas []relation.Schema
	segs     [][]varSegment

	x        *relation.Relation
	keyIdx   []int // key column positions within x
	index    *relation.KeyIndex
	extended int // number of operators whose columns exist in x

	// stripes shard X's rows for concurrent stage commits: row i is guarded
	// by stripes[i % mergeStripes], so two sites' stages merging into the
	// same group serialize on one stripe instead of one global lock.
	stripes [mergeStripes]sync.Mutex

	// budget is the query's coordinator-side memory budget (nil = unbounded).
	// X growth is charged here; staged H blocks are charged by their stages.
	budget *memBudget
}

// mergeStripes is the lock-stripe count for concurrent stage commits (power
// of two; key-index row positions hash uniformly across stripes).
const mergeStripes = 64

func newMerger(keys []string, xschemas []relation.Schema, segs [][]varSegment, budget *memBudget) *merger {
	return &merger{keys: keys, xschemas: xschemas, segs: segs, budget: budget}
}

// InitBase installs the synchronized base-values relation: the multiset
// union of the sites' B_i fragments, de-duplicated on the key attributes.
func (m *merger) InitBase(b *relation.Relation) error {
	if !b.Schema.Equal(m.xschemas[0]) {
		return fmt.Errorf("core: base schema %s, want %s", b.Schema, m.xschemas[0])
	}
	if err := b.DedupBy(m.keys); err != nil {
		return err
	}
	if err := m.budget.charge(b.MemBytes()); err != nil {
		return err
	}
	m.x = b
	m.extended = 0
	return m.reindex()
}

// InitLocal prepares an empty X at the schema reached after upTo operators;
// local evaluation results are then merged with MergeLocal.
func (m *merger) InitLocal(upTo int) error {
	m.x = relation.New(m.xschemas[upTo])
	m.extended = upTo
	return m.reindex()
}

func (m *merger) reindex() error {
	idx, err := m.x.Schema.Indexes(m.keys)
	if err != nil {
		return err
	}
	m.keyIdx = idx
	ki, err := relation.BuildKeyIndex(m.x, m.keys)
	if err != nil {
		return err
	}
	m.index = ki
	return nil
}

// X returns the current base-result structure (read-only between rounds;
// callers must not mutate it while site calls are in flight).
func (m *merger) X() *relation.Relation { return m.x }

// Extended returns how many operators' columns X currently carries.
func (m *merger) Extended() int { return m.extended }

// Extend appends operator k's identity aggregate columns (COUNT 0, others
// NULL, derived NULL) to every row, growing X's schema by one operator.
// Groups no site reports on — e.g. under group reduction — thereby keep the
// correct empty-range aggregates.
func (m *merger) Extend() error {
	k := m.extended
	if k >= len(m.segs) {
		return fmt.Errorf("core: extend past last operator (%d)", k)
	}
	ident := m.identityFor(k)
	// Extending X re-backs every row one operator wider; charge the growth
	// before allocating it so an over-budget query fails with a typed error
	// here, at the merge boundary, instead of OOMing the daemon.
	grow := int64(len(m.x.Tuples)) * (int64(len(ident))*relation.ValueMemBytes + relation.TupleMemBytes)
	if err := m.budget.charge(grow); err != nil {
		return err
	}
	for i, row := range m.x.Tuples {
		// Build each extended row in a fresh backing array: in-flight
		// serialization of pre-extension fragments may still be reading the
		// old arrays while streamed synchronization writes the new ones.
		nrow := make(relation.Tuple, 0, len(row)+len(ident))
		nrow = append(nrow, row...)
		nrow = append(nrow, ident.Clone()...)
		m.x.Tuples[i] = nrow
	}
	m.x.Schema = m.xschemas[k+1]
	m.extended++
	return nil
}

// Snapshot returns a read-only view of the current X (independent header
// and row-pointer slice) that stays stable across a subsequent Extend; the
// operator rounds ship fragments of it while the live X grows.
func (m *merger) Snapshot() *relation.Relation {
	tuples := make([]relation.Tuple, len(m.x.Tuples))
	copy(tuples, m.x.Tuples)
	return &relation.Relation{Schema: m.x.Schema, Tuples: tuples}
}

// identityFor builds the identity slice (phys + derived) for operator k.
func (m *merger) identityFor(k int) relation.Tuple {
	var ident relation.Tuple
	for _, seg := range m.segs[k] {
		ident = append(ident, seg.layout.Identity()...)
		ident = append(ident, seg.layout.ComputeDerived(seg.layout.Identity())...)
	}
	return ident
}

// validateH checks one incoming H relation against the expected shape for an
// operator's segments: key attributes in key order, followed by the
// operator's physical columns, every row at full arity. A site returning
// anything else (bug or corruption) must be rejected, not merged.
func validateH(h *relation.Relation, keys []string, segs []varSegment) error {
	want := len(keys)
	for _, seg := range segs {
		want += len(seg.layout.Phys)
	}
	if len(h.Schema) != want {
		return fmt.Errorf("core: sync: H has %d columns, want %d", len(h.Schema), want)
	}
	for i, key := range keys {
		if h.Schema[i].Name != key {
			return fmt.Errorf("core: sync: H column %d is %q, want key %q", i, h.Schema[i].Name, key)
		}
	}
	for i, t := range h.Tuples {
		if len(t) != want {
			return fmt.Errorf("core: sync: H row %d has arity %d, want %d", i, len(t), want)
		}
	}
	return nil
}

// MergeH synchronizes one site's sub-aggregate relation H_i for operator k
// into X. H rows carry the key attributes followed by the operator's
// physical columns; rows for unknown keys are an internal error (fragments
// are derived from X, so every returned key must exist).
func (m *merger) MergeH(h *relation.Relation, k int) error {
	if k != m.extended-1 {
		return fmt.Errorf("core: merging operator %d into X extended to %d", k+1, m.extended)
	}
	if err := validateH(h, m.keys, m.segs[k]); err != nil {
		return err
	}
	hKeyIdx := make([]int, len(m.keys))
	for i := range m.keys {
		hKeyIdx[i] = i // H rows lead with the key attributes in key order
	}
	for _, hrow := range h.Tuples {
		xi, err := m.index.Unique(hrow, hKeyIdx)
		if err != nil {
			return fmt.Errorf("core: sync: H row key not in X: %w", err)
		}
		xrow := m.x.Tuples[xi]
		cursor := len(m.keys)
		for _, seg := range m.segs[k] {
			n := len(seg.layout.Phys)
			if err := seg.layout.MergePhys(xrow[seg.physStart:seg.physStart+n], hrow[cursor:cursor+n]); err != nil {
				return err
			}
			cursor += n
		}
	}
	return nil
}

// hStage buffers one site's streamed H_i blocks for a single operator-round
// attempt without touching X. This is what makes per-site retry sound: MergeH
// folds aggregates into X in place, so a stream that dies after some blocks
// were merged could not be re-run without double-counting. Instead every
// block is validated and staged here, and only a stream that completed
// cleanly is committed to X — a failed attempt is discarded whole (returning
// any pooled block storage) and retried from scratch.
//
// Stages are created and filled in the per-site goroutines (they touch no
// merger state beyond the immutable keys/segments) and committed one at a
// time on the coordinator's merge loop.
type hStage struct {
	keys   []string
	segs   []varSegment
	rel    *relation.Relation   // accumulated H rows; schema from the first block
	pool   []*relation.Relation // staged blocks whose storage is recycled on release
	budget *memBudget           // query memory budget the staged bytes are charged to
	bytes  int64                // bytes currently charged to budget for this stage
}

// NewStage opens a staging buffer for one site's operator-k stream.
func (m *merger) NewStage(k int) *hStage {
	return &hStage{keys: m.keys, segs: m.segs[k], budget: m.budget}
}

// Add validates and stages one H block. The block's tuples are referenced,
// not copied, so the block must stay untouched until Commit or Discard (both
// recycle it back to its pool). The block's estimated bytes are charged to
// the query's memory budget; an over-budget charge fails the stage (and with
// it the query — budget errors are permanent, not retried).
func (st *hStage) Add(h *relation.Relation) error {
	if err := validateH(h, st.keys, st.segs); err != nil {
		return err
	}
	if st.rel == nil {
		st.rel = &relation.Relation{Schema: h.Schema}
	} else if !h.Schema.Equal(st.rel.Schema) {
		return fmt.Errorf("core: sync: H block schema %s differs from stream schema %s", h.Schema, st.rel.Schema)
	}
	// Account the block (bytes and pool membership) before the budget check:
	// an over-budget charge stays counted until the failed query's Discard
	// releases it, and the rejected block still gets recycled there.
	n := h.MemBytes()
	st.bytes += n
	st.pool = append(st.pool, h)
	if err := st.budget.charge(n); err != nil {
		return err
	}
	st.rel.Tuples = append(st.rel.Tuples, h.Tuples...)
	return nil
}

// Rows returns the number of staged H rows.
func (st *hStage) Rows() int {
	if st.rel == nil {
		return 0
	}
	return st.rel.Len()
}

// Discard drops the staged rows, releases their budget charge and returns
// block storage to the decode pool; the stage must not be used afterwards.
// Commit paths also land here (via their defers), which is correct: committed
// aggregates fold into X's existing rows in place, so the staged copies are
// no longer held either way.
func (st *hStage) Discard() {
	for _, b := range st.pool {
		relation.Recycle(b)
	}
	st.budget.release(st.bytes)
	st.bytes = 0
	st.pool, st.rel = nil, nil
}

// CommitStage folds one completed stream's staged H rows into X and releases
// the stage. Validation already ran per block, so this is the same O(|H|)
// key-indexed merge as MergeH.
func (m *merger) CommitStage(st *hStage, k int) error {
	defer st.Discard()
	if st.rel == nil {
		return nil // empty stream: the site had no matching groups
	}
	return m.MergeH(st.rel, k)
}

// CommitStageSharded is CommitStage for concurrent use: independent sites'
// completed stages may commit in parallel during one operator round. Every
// X row merge is guarded by its lock stripe, so two stages folding into the
// same group serialize per row rather than per round. Key lookups need no
// lock: operator rounds never add X rows (every H key is derived from X), so
// the key index is read-only while stages are landing. Merge order across
// stages is whatever the commits race to — exactly the completion-order
// nondeterminism the serial streaming merge already has — and physical
// super-aggregate merges are order-insensitive (exact for integer inputs).
func (m *merger) CommitStageSharded(st *hStage, k int) error {
	defer st.Discard()
	if st.rel == nil {
		return nil
	}
	if k != m.extended-1 {
		return fmt.Errorf("core: merging operator %d into X extended to %d", k+1, m.extended)
	}
	if err := validateH(st.rel, m.keys, m.segs[k]); err != nil {
		return err
	}
	hKeyIdx := make([]int, len(m.keys))
	for i := range m.keys {
		hKeyIdx[i] = i
	}
	for _, hrow := range st.rel.Tuples {
		xi, err := m.index.Unique(hrow, hKeyIdx)
		if err != nil {
			return fmt.Errorf("core: sync: H row key not in X: %w", err)
		}
		xrow := m.x.Tuples[xi]
		lk := &m.stripes[xi%mergeStripes]
		lk.Lock()
		cursor := len(m.keys)
		for _, seg := range m.segs[k] {
			n := len(seg.layout.Phys)
			if err := seg.layout.MergePhys(xrow[seg.physStart:seg.physStart+n], hrow[cursor:cursor+n]); err != nil {
				lk.Unlock()
				return err
			}
			cursor += n
		}
		lk.Unlock()
	}
	return nil
}

// MergeLocal synchronizes one site's locally evaluated X fragment (schema =
// current X schema): new keys are appended, existing keys have every
// operator segment's physical columns merged. Used by the synchronization-
// reduced plans (Prop. 2 / Cor. 1).
func (m *merger) MergeLocal(xl *relation.Relation) error {
	if !xl.Schema.Equal(m.x.Schema) {
		return fmt.Errorf("core: local X schema %s, want %s", xl.Schema, m.x.Schema)
	}
	for i, t := range xl.Tuples {
		if len(t) != len(xl.Schema) {
			return fmt.Errorf("core: sync: local X row %d has arity %d, want %d", i, len(t), len(xl.Schema))
		}
	}
	for _, lrow := range xl.Tuples {
		rows := m.index.Lookup(lrow, m.keyIdx)
		switch len(rows) {
		case 0:
			nrow := lrow.Clone()
			if err := m.budget.charge(nrow.MemBytes()); err != nil {
				return err
			}
			m.x.Tuples = append(m.x.Tuples, nrow)
			m.index.Add(nrow, len(m.x.Tuples)-1)
		case 1:
			xrow := m.x.Tuples[rows[0]]
			for k := 0; k < m.extended; k++ {
				for _, seg := range m.segs[k] {
					n := len(seg.layout.Phys)
					if err := seg.layout.MergePhys(xrow[seg.physStart:seg.physStart+n], lrow[seg.physStart:seg.physStart+n]); err != nil {
						return err
					}
				}
			}
		default:
			return fmt.Errorf("core: sync: duplicate key in X")
		}
	}
	return nil
}

// RecomputeDerived refreshes the derived (AVG) columns of operators
// [0, upTo) for every row; called after each synchronization so subsequent
// conditions and the final output see correct averages.
func (m *merger) RecomputeDerived(upTo int) {
	for _, row := range m.x.Tuples {
		for k := 0; k < upTo; k++ {
			for _, seg := range m.segs[k] {
				n := len(seg.layout.Phys)
				der := seg.layout.ComputeDerived(row[seg.physStart : seg.physStart+n])
				copy(row[seg.derStart:seg.derStart+len(der)], der)
			}
		}
	}
}

// Finalize projects X onto the logical output columns.
func (m *merger) Finalize(cols []string) (*relation.Relation, error) {
	return m.x.Project(cols)
}
