package core

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"skalla/internal/distrib"
	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// TestBackoffEqualJitterEnvelope pins the equal-jitter contract: every sample
// of backoff(attempt) must land in [d/2, d] where d is the deterministic
// exponential ramp value for that attempt. The old implementation drew from
// the global math/rand mutex; the envelope itself must not drift with the
// switch to math/rand/v2.
func TestBackoffEqualJitterEnvelope(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	for attempt := 1; attempt <= 8; attempt++ {
		// Mirror the deterministic ramp: base doubling per retry, capped.
		d := p.BaseBackoff
		for i := 1; i < attempt; i++ {
			d *= 2
			if d >= p.MaxBackoff {
				d = p.MaxBackoff
				break
			}
		}
		lo, hi := d/2, d
		seenLowHalf, seenHighHalf := false, false
		for i := 0; i < 400; i++ {
			got := p.backoff(attempt)
			if got < lo || got > hi {
				t.Fatalf("attempt %d: backoff %v outside equal-jitter envelope [%v, %v]", attempt, got, lo, hi)
			}
			mid := lo + (hi-lo)/2
			if got < mid {
				seenLowHalf = true
			} else {
				seenHighHalf = true
			}
		}
		// The jitter must actually jitter: 400 draws hitting only one half of
		// the envelope means the random term is broken (probability ~2^-400).
		if !seenLowHalf || !seenHighHalf {
			t.Errorf("attempt %d: 400 samples never left one half of [%v, %v] — jitter degenerate", attempt, lo, hi)
		}
	}
	// Zero base disables backoff entirely.
	if got := (RetryPolicy{}).backoff(3); got != 0 {
		t.Errorf("zero policy backoff = %v, want 0", got)
	}
	// Uncapped ramp: attempt 3 doubles twice.
	up := RetryPolicy{BaseBackoff: 4 * time.Millisecond}
	for i := 0; i < 100; i++ {
		got := up.backoff(3)
		if got < 8*time.Millisecond || got > 16*time.Millisecond {
			t.Fatalf("uncapped attempt 3: backoff %v outside [8ms, 16ms]", got)
		}
	}
}

// TestBackoffConcurrentDraws exercises the per-P rand/v2 sources under -race:
// many goroutines drawing backoff simultaneously (as per-site retry loops do)
// must stay race-free and in-envelope.
func TestBackoffConcurrentDraws(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	var wg sync.WaitGroup
	errs := make(chan time.Duration, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				attempt := 1 + i%5
				d := p.BaseBackoff
				for j := 1; j < attempt; j++ {
					d *= 2
					if d >= p.MaxBackoff {
						d = p.MaxBackoff
						break
					}
				}
				if got := p.backoff(attempt); got < d/2 || got > d {
					select {
					case errs <- got:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if bad, ok := <-errs; ok {
		t.Fatalf("concurrent draw escaped the envelope: %v", bad)
	}
}

// TestCommitStageShardedMatchesSerial commits the same staged streams through
// the serial path and the sharded path (concurrently, as the coordinator's
// merge loop does) and demands identical X contents.
func TestCommitStageShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := chainQuery()
	src := gmdj.Schemas{"T": tSchema}
	xs, err := gmdj.XSchemas(q, src)
	if err != nil {
		t.Fatal(err)
	}
	hSchema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.KindInt},
		relation.Column{Name: "h", Kind: relation.KindInt},
		relation.Column{Name: "cnt1", Kind: relation.KindInt},
		relation.Column{Name: "sum1", Kind: relation.KindInt},
		relation.Column{Name: "avg1_sum", Kind: relation.KindInt},
		relation.Column{Name: "avg1_cnt", Kind: relation.KindInt},
	)
	const groups, nSites = 40, 6
	newBase := func() *relation.Relation {
		b := relation.New(xs[0])
		for g := 0; g < groups; g++ {
			b.MustAppend(relation.Tuple{relation.NewInt(int64(g)), relation.NewInt(int64(g % 4))})
		}
		return b
	}
	// Each "site" reports a random subset of the groups — several sites hit
	// the same group, so stripe contention actually happens.
	siteH := make([]*relation.Relation, nSites)
	for s := range siteH {
		h := relation.New(hSchema)
		for g := 0; g < groups; g++ {
			if rng.Intn(3) == 0 {
				continue
			}
			cnt := int64(rng.Intn(50) + 1)
			sum := int64(rng.Intn(1000))
			h.MustAppend(relation.Tuple{
				relation.NewInt(int64(g)), relation.NewInt(int64(g % 4)),
				relation.NewInt(cnt), relation.NewInt(sum),
				relation.NewInt(sum), relation.NewInt(cnt),
			})
		}
		siteH[s] = h
	}
	run := func(sharded bool) *relation.Relation {
		segs, err := buildSegments(q, src, 2)
		if err != nil {
			t.Fatal(err)
		}
		m := newMerger([]string{"g", "h"}, xs, segs, nil)
		if err := m.InitBase(newBase()); err != nil {
			t.Fatal(err)
		}
		if err := m.Extend(); err != nil {
			t.Fatal(err)
		}
		stages := make([]*hStage, nSites)
		for s := range stages {
			stages[s] = m.NewStage(0)
			if err := stages[s].Add(siteH[s].Clone()); err != nil {
				t.Fatal(err)
			}
		}
		if sharded {
			var wg sync.WaitGroup
			errc := make(chan error, nSites)
			for _, st := range stages {
				wg.Add(1)
				go func(st *hStage) {
					defer wg.Done()
					errc <- m.CommitStageSharded(st, 0)
				}(st)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				if err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, st := range stages {
				if err := m.CommitStage(st, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		m.RecomputeDerived(1)
		return m.X()
	}
	want := sortedText(run(false))
	for trial := 0; trial < 10; trial++ {
		if got := sortedText(run(true)); got != want {
			t.Fatalf("trial %d: sharded commit diverges from serial\ngot:\n%.2000s\nwant:\n%.2000s", trial, got, want)
		}
	}
	// A stage for the wrong operator must be rejected, not merged.
	segs, _ := buildSegments(q, src, 2)
	m := newMerger([]string{"g", "h"}, xs, segs, nil)
	if err := m.InitBase(newBase()); err != nil {
		t.Fatal(err)
	}
	if err := m.Extend(); err != nil {
		t.Fatal(err)
	}
	st := m.NewStage(0)
	if err := st.Add(siteH[0].Clone()); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitStageSharded(st, 1); err == nil {
		t.Error("sharded commit of the wrong operator must error")
	}
}

// workerCluster is buildCluster, but it keeps the engine.Site handles so the
// test can dial per-site evaluation parallelism.
func workerCluster(t *testing.T, global *relation.Relation, n int, per int64) ([]transport.Site, []*engine.Site, *distrib.Catalog) {
	t.Helper()
	gi := global.Schema.MustIndex("g")
	sites := make([]transport.Site, n)
	engines := make([]*engine.Site, n)
	filters := make([]distrib.SiteFilter, n)
	for i := 0; i < n; i++ {
		lo, hi := int64(i)*per, int64(i+1)*per-1
		if i == n-1 {
			hi = 1 << 30
		}
		filters[i] = distrib.IntRange{Lo: lo, Hi: hi}
		part := global.Filter(func(tp relation.Tuple) bool {
			return tp[gi].Int >= lo && tp[gi].Int <= hi
		})
		es := engine.NewSite(i)
		if err := es.Load(context.Background(), "T", part); err != nil {
			t.Fatal(err)
		}
		engines[i] = es
		sites[i] = transport.NewFastLocalSite(es)
	}
	cat := distrib.NewCatalog(&distrib.Distribution{
		Relation: "T",
		NumSites: n,
		Attrs:    []distrib.AttrInfo{{Attr: "g", Filters: filters, Disjoint: true}},
	})
	return sites, engines, cat
}

// TestWorkersByteIdenticalMatrix is the pinned-seed property sweep: every
// chaos-matrix query shape — plain rounds, Prop. 1 guard-filtered rounds,
// Prop. 2 / Cor. 1 sync-reduced prefix plans, and streamed row blocking — must
// produce byte-identical results at every tested worker count, with the
// coordinator's concurrent stage commits enabled alongside the sites'
// parallel scans.
func TestWorkersByteIdenticalMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	global := randomGlobal(rng, 900, 16)
	queries := map[string]gmdj.Query{
		"chain":       chainQuery(),
		"independent": independentQuery(),
		"nonaligned":  nonAlignedQuery(),
	}
	rounds := []struct {
		name      string
		opts      plan.Options
		blockRows int
	}{
		{"plain", plan.None(), 0},
		{"guard-filtered", plan.Options{GroupReduceSite: true, GroupReduceCoord: true}, 0},
		{"sync-reduced", plan.Options{SyncReduce: true}, 0},
		{"blocking", plan.None(), 3},
	}
	workerCounts := []int{1, 2, 7, runtime.GOMAXPROCS(0), 0}
	for qname, q := range queries {
		for _, round := range rounds {
			want := ""
			for _, w := range workerCounts {
				sites, engines, cat := workerCluster(t, global, 4, 4)
				for _, es := range engines {
					es.SetWorkers(w)
				}
				coord, err := New(sites, cat, stats.NetModel{})
				if err != nil {
					t.Fatal(err)
				}
				coord.SetMergeWorkers(w)
				coord.SetRowBlocking(round.blockRows)
				res, err := coord.Execute(context.Background(), q, round.opts)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", qname, round.name, w, err)
				}
				text := sortedText(res.Rel)
				if w == 1 {
					want = text
					continue
				}
				if text != want {
					t.Fatalf("%s/%s workers=%d diverges from sequential\ngot:\n%.2000s\nwant:\n%.2000s",
						qname, round.name, w, text, want)
				}
			}
		}
	}
}
