package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/stats"
	"skalla/internal/transport/faultinject"
)

// TestProfileMatchesMetrics is the profiler's accounting contract: the
// stitched QueryProfile must agree with stats.Metrics — the quantity
// -stats-json exports — exactly, round by round, byte for byte.
func TestProfileMatchesMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	global := randomGlobal(rng, 200, 16)
	sites, cat := buildCluster(t, global, "T", 3, 6, false) // serialized transport
	coord, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []plan.Options{plan.None(), plan.All()} {
		res, err := coord.Execute(context.Background(), chainQuery(), opts)
		if err != nil {
			t.Fatal(err)
		}
		p := res.Profile
		if p == nil {
			t.Fatal("Result.Profile nil")
		}
		if p.QueryID == "" || p.Start.IsZero() || p.Elapsed <= 0 {
			t.Errorf("profile envelope incomplete: %+v", p)
		}
		if p.Plan.Fingerprint == "" || p.Plan.Fingerprint != res.Plan.Fingerprint {
			t.Errorf("profile fingerprint %q, plan %q", p.Plan.Fingerprint, res.Plan.Fingerprint)
		}
		m := res.Metrics
		if len(p.Rounds) != len(m.Rounds) {
			t.Fatalf("profile has %d rounds, metrics %d", len(p.Rounds), len(m.Rounds))
		}
		for i := range m.Rounds {
			mr, pr := &m.Rounds[i], &p.Rounds[i]
			if pr.Name != mr.Name {
				t.Errorf("round %d named %q in profile, %q in metrics", i, pr.Name, mr.Name)
			}
			if pr.BytesDown != mr.BytesDown() || pr.BytesUp != mr.BytesUp() {
				t.Errorf("round %s bytes %d/%d in profile, %d/%d in metrics",
					mr.Name, pr.BytesDown, pr.BytesUp, mr.BytesDown(), mr.BytesUp())
			}
			if pr.RowsDown != mr.RowsDown() || pr.RowsUp != mr.RowsUp() {
				t.Errorf("round %s rows %d/%d in profile, %d/%d in metrics",
					mr.Name, pr.RowsDown, pr.RowsUp, mr.RowsDown(), mr.RowsUp())
			}
			if len(pr.Calls) != len(mr.Calls) {
				t.Errorf("round %s has %d profile calls, %d metric calls", mr.Name, len(pr.Calls), len(mr.Calls))
			}
			for _, c := range pr.Calls {
				if c.Attempt != 1 {
					t.Errorf("round %s site %d attempt %d, want 1 (no faults injected)", mr.Name, c.Site, c.Attempt)
				}
				if c.Breakdown == nil {
					t.Errorf("round %s site %d has no site-side breakdown", mr.Name, c.Site)
					continue
				}
				if c.Breakdown.EvalNS < 0 {
					t.Errorf("round %s site %d eval %dns", mr.Name, c.Site, c.Breakdown.EvalNS)
				}
				var workerSum int64
				for _, n := range c.Breakdown.WorkerRows {
					workerSum += n
				}
				if workerSum != c.Breakdown.RowsScanned {
					t.Errorf("round %s site %d worker rows sum %d != rows scanned %d",
						mr.Name, c.Site, workerSum, c.Breakdown.RowsScanned)
				}
			}
		}
		if p.BytesDown() != m.TotalBytesDown() || p.BytesUp() != m.TotalBytesUp() {
			t.Errorf("profile totals %d/%d, metrics %d/%d",
				p.BytesDown(), p.BytesUp(), m.TotalBytesDown(), m.TotalBytesUp())
		}
		// The profile is retained for /debug/queries.
		if got := obs.Profiles.Get(p.QueryID); got == nil || got.QueryID != p.QueryID {
			t.Errorf("profile %s not retained in the ring", p.QueryID)
		}
	}
}

// TestProfileEstimatesJoined: the cost model's per-round predictions land on
// the profile next to the measured bytes.
func TestProfileEstimatesJoined(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	global := randomGlobal(rng, 100, 8)
	sites, cat := buildCluster(t, global, "T", 2, 4, true)
	coord, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.Plan.EstRounds != res.Plan.Estimate.Rounds ||
		p.Plan.EstBytesDown != res.Plan.Estimate.BytesDown ||
		p.Plan.EstBytesUp != res.Plan.Estimate.BytesUp {
		t.Errorf("profile plan estimate %+v, want %+v", p.Plan, res.Plan.Estimate)
	}
	var estDown int64
	for i := range p.Rounds {
		estDown += p.Rounds[i].EstBytesDown
	}
	if estDown != res.Plan.Estimate.BytesDown {
		t.Errorf("per-round estimates sum to %d, plan estimate %d", estDown, res.Plan.Estimate.BytesDown)
	}
}

// TestProfileRetriedAttempts: with a site that fails its first attempts and
// then recovers, the profile must show the failed attempts as distinct
// annotated calls — and count none of their bytes (the retried traffic would
// otherwise double against -stats-json).
func TestProfileRetriedAttempts(t *testing.T) {
	coord := faultCluster(t, faultinject.Config{FailFirst: 2})
	coord.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	res, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	var failed, succeededAfterRetry int
	for i := range p.Rounds {
		pr := &p.Rounds[i]
		var prBytesDown, prBytesUp int
		for _, c := range pr.Calls {
			if c.Failed {
				failed++
				if c.Site != 1 {
					t.Errorf("failed call at site %d, injector wraps site 1", c.Site)
				}
				if c.Err == "" {
					t.Error("failed call carries no error")
				}
				continue
			}
			if c.Attempt > 1 {
				succeededAfterRetry++
			}
			prBytesDown += c.BytesDown
			prBytesUp += c.BytesUp
		}
		// Round totals count successful calls only: no double-counted bytes.
		if pr.BytesDown != prBytesDown || pr.BytesUp != prBytesUp {
			t.Errorf("round %s totals %d/%d but successful calls sum to %d/%d",
				pr.Name, pr.BytesDown, pr.BytesUp, prBytesDown, prBytesUp)
		}
	}
	if failed != 2 {
		t.Errorf("%d failed attempts in profile, want 2 (FailFirst: 2)", failed)
	}
	if succeededAfterRetry == 0 {
		t.Error("no call records a retry attempt > 1")
	}
	// And the profile still agrees with the metrics exactly.
	if p.BytesDown() != res.Metrics.TotalBytesDown() || p.BytesUp() != res.Metrics.TotalBytesUp() {
		t.Errorf("profile totals %d/%d, metrics %d/%d",
			p.BytesDown(), p.BytesUp(), res.Metrics.TotalBytesDown(), res.Metrics.TotalBytesUp())
	}
}

// TestSlowQueryThreshold: a query over the threshold increments the counter
// (every query beats a 1ns threshold; a zero threshold disables).
func TestSlowQueryThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	global := randomGlobal(rng, 50, 8)
	sites, cat := buildCluster(t, global, "T", 2, 4, true)
	coord, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	before := obs.CoordSlowQueries.Value()
	if _, err := coord.Execute(context.Background(), chainQuery(), plan.None()); err != nil {
		t.Fatal(err)
	}
	if got := obs.CoordSlowQueries.Value(); got != before {
		t.Errorf("slow-query counter moved with no threshold set: %d -> %d", before, got)
	}
	coord.SetSlowQueryThreshold(time.Nanosecond)
	if _, err := coord.Execute(context.Background(), chainQuery(), plan.None()); err != nil {
		t.Fatal(err)
	}
	if got := obs.CoordSlowQueries.Value(); got != before+1 {
		t.Errorf("slow-query counter %d, want %d", got, before+1)
	}
}
