package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"

	"skalla/internal/obs"
	"skalla/internal/stats"
)

// RetryPolicy makes the coordinator's per-site calls survive transient
// failures: each call gets up to MaxAttempts tries, an optional per-attempt
// deadline, and exponential backoff with jitter between attempts. The zero
// value disables retries (one attempt, no deadline), preserving fail-fast
// semantics for callers that have their own recovery.
//
// Retrying a site call is only sound because each attempt's results are
// staged per site before touching the base-result structure X: a stream that
// dies after delivering partial H_i blocks is discarded whole and re-run, so
// no block is ever folded into X twice (see merger.NewStage / CommitStage).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per site call; values < 1
	// mean 1 (no retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it (with jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth; 0 means no cap.
	MaxBackoff time.Duration
	// CallTimeout bounds each individual attempt; 0 means no per-attempt
	// deadline (the call still honors the query context's deadline).
	CallTimeout time.Duration
}

// DefaultRetryPolicy is a production-shaped policy: three attempts, 50 ms
// initial backoff doubling to at most 2 s, 30 s per attempt.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		CallTimeout: 30 * time.Second,
	}
}

// SetRetryPolicy installs the coordinator's per-site retry policy. The zero
// policy (the default) disables retries.
func (c *Coordinator) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// backoff returns the sleep before retry number attempt (1-based): an
// exponential ramp with equal jitter, so simultaneous retries against a
// recovering site spread out instead of stampeding it.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Equal jitter: half deterministic, half uniform random. math/rand/v2
	// draws from per-P sources, so concurrent per-site retry goroutines
	// don't serialize on the legacy math/rand global mutex here.
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// permanentError marks a site-call failure that retrying cannot fix — e.g. a
// corrupt H block rejected by the staging validator. withRetry unwraps it and
// fails immediately.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// retryable reports whether an attempt failure is worth retrying under the
// still-live parent context: cancellations and permanent (data-shaped)
// errors are not, transport and per-attempt deadline errors are.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var perm *permanentError
	if errors.As(err, &perm) {
		return false
	}
	// A cancellation that is not the parent's must be the attempt deadline
	// (site hung) — retryable. Plain context.Canceled never is.
	return !errors.Is(err, context.Canceled)
}

// withRetry runs one site call under the coordinator's retry policy: each
// attempt gets a per-call deadline (when configured) and an attempt-stamped
// context (the transport ships the attempt number to the site), failed
// attempts are recorded — with whatever the transport measured before they
// died — on the round span and the retries counter, and backoff sleeps
// respect the parent context.
func (c *Coordinator) withRetry(ctx context.Context, rs *obs.RoundSpan, site int, fn func(ctx context.Context, attempt int) (stats.Call, error)) error {
	p := c.retry
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		actx := obs.WithAttempt(ctx, attempt)
		cancel := context.CancelFunc(func() {})
		if p.CallTimeout > 0 {
			actx, cancel = context.WithTimeout(actx, p.CallTimeout)
		}
		call, err := fn(actx, attempt)
		cancel()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt >= p.MaxAttempts || !retryable(ctx, err) {
			return err
		}
		rs.Retry(site, attempt, obsCall(call), err)
		select {
		case <-time.After(p.backoff(attempt)):
		case <-ctx.Done():
			return err
		}
	}
}
