package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"skalla/internal/obs"
)

// ErrAdmissionReject marks a query turned away at admission because the
// concurrency limit was reached and the bounded wait queue was already full.
// Under concurrency, skew-driven stragglers make unbounded admission
// pathological: every queued query pins coordinator memory while slow sites
// hold up the queries ahead of it, so beyond the queue bound the coordinator
// sheds load instead of buffering it. Match with errors.Is; clients should
// back off and resubmit.
var ErrAdmissionReject = errors.New("core: admission queue full")

// admission bounds concurrently executing queries with a semaphore plus a
// bounded wait queue. Executing slots are tokens in sem; waiters park in the
// sem send until a slot frees, with the waiting counter enforcing the queue
// bound up front so a full queue rejects immediately instead of blocking.
type admission struct {
	sem     chan struct{}
	queue   int64
	waiting atomic.Int64
}

// SetAdmission installs admission control: at most maxConcurrent queries
// execute at once, up to queueDepth more wait for a slot (queue time is
// recorded in the query profile), and anything beyond that fails immediately
// with ErrAdmissionReject. maxConcurrent <= 0 defaults to GOMAXPROCS;
// queueDepth < 0 defaults to 4x maxConcurrent. Calling it with both zero
// installs the defaults; admission is off until SetAdmission is called.
func (c *Coordinator) SetAdmission(maxConcurrent, queueDepth int) {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	if queueDepth < 0 {
		queueDepth = 4 * maxConcurrent
	}
	c.admit = &admission{sem: make(chan struct{}, maxConcurrent), queue: int64(queueDepth)}
}

// acquire takes an execution slot, waiting in the bounded queue when all
// slots are busy. It returns the time spent queued. A full queue or a
// context cancellation while waiting fails the query before any site work
// starts.
func (a *admission) acquire(ctx context.Context) (time.Duration, error) {
	if a == nil {
		return 0, nil
	}
	select {
	case a.sem <- struct{}{}:
		return 0, nil // free slot, no queueing
	default:
	}
	if a.waiting.Add(1) > a.queue {
		a.waiting.Add(-1)
		obs.ServerAdmissionRejects.Inc()
		return 0, fmt.Errorf("%w (%d executing, %d queued)", ErrAdmissionReject, cap(a.sem), a.queue)
	}
	obs.ServerQueuedQueries.Add(1)
	start := time.Now()
	defer func() {
		a.waiting.Add(-1)
		obs.ServerQueuedQueries.Add(-1)
	}()
	select {
	case a.sem <- struct{}{}:
		return time.Since(start), nil
	case <-ctx.Done():
		return time.Since(start), ctx.Err()
	}
}

// release frees an execution slot.
func (a *admission) release() {
	if a == nil {
		return
	}
	<-a.sem
}
