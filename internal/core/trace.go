package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"skalla/internal/stats"
)

// Tracer observes a distributed evaluation as it progresses: one RoundStart
// per synchronization round, one SiteCall per completed site exchange, and a
// RoundEnd with the round's aggregate statistics. Implementations are called
// sequentially from the coordinator's control loop (never concurrently).
type Tracer interface {
	// RoundStart announces a round and the number of base-structure rows the
	// coordinator currently holds.
	RoundStart(name string, xRows int)
	// SiteCall reports one completed coordinator↔site exchange.
	SiteCall(name string, call stats.Call)
	// RoundEnd reports the completed round.
	RoundEnd(round stats.RoundStat)
}

// SetTracer attaches an execution tracer (nil detaches). Tracing is
// observational only; it never changes plans or results.
func (c *Coordinator) SetTracer(t Tracer) { c.tracer = t }

// traceRoundStart/SiteCalls/RoundEnd are nil-safe helpers.
func (c *Coordinator) traceRoundStart(name string, xRows int) {
	if c.tracer != nil {
		c.tracer.RoundStart(name, xRows)
	}
}

func (c *Coordinator) traceCalls(name string, calls []stats.Call) {
	if c.tracer == nil {
		return
	}
	for _, call := range calls {
		c.tracer.SiteCall(name, call)
	}
}

func (c *Coordinator) traceRoundEnd(round stats.RoundStat) {
	if c.tracer != nil {
		c.tracer.RoundEnd(round)
	}
}

// WriterTracer renders trace events as indented lines on an io.Writer. It is
// safe for concurrent use (a mutex serializes writes), so one instance can
// be shared across coordinators.
type WriterTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterTracer wraps a writer.
func NewWriterTracer(w io.Writer) *WriterTracer { return &WriterTracer{w: w} }

// RoundStart implements Tracer.
func (t *WriterTracer) RoundStart(name string, xRows int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "round %s: start (X holds %d rows)\n", name, xRows)
}

// SiteCall implements Tracer.
func (t *WriterTracer) SiteCall(name string, call stats.Call) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "round %s: site %d  down %dB/%d rows  up %dB/%d rows  compute %s\n",
		name, call.Site, call.BytesDown, call.RowsDown, call.BytesUp, call.RowsUp,
		call.Compute.Round(10*time.Microsecond))
}

// RoundEnd implements Tracer.
func (t *WriterTracer) RoundEnd(round stats.RoundStat) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "round %s: done  %dB down, %dB up, coordinator %s\n",
		round.Name, round.BytesDown(), round.BytesUp(), round.CoordTime.Round(10*time.Microsecond))
}
