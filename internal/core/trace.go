package core

import (
	"io"

	"skalla/internal/obs"
	"skalla/internal/stats"
)

// Tracer observes a distributed evaluation as it progresses: one RoundStart
// per synchronization round, one SiteCall per completed site exchange, and a
// RoundEnd with the round's aggregate statistics. Implementations are called
// sequentially from the coordinator's control loop (never concurrently).
//
// Tracer predates the obs span model; the coordinator now drives obs spans
// and an attached Tracer sees the same events through a small adapter, so
// existing implementations keep working unchanged.
type Tracer interface {
	// RoundStart announces a round and the number of base-structure rows the
	// coordinator currently holds.
	RoundStart(name string, xRows int)
	// SiteCall reports one completed coordinator↔site exchange.
	SiteCall(name string, call stats.Call)
	// RoundEnd reports the completed round.
	RoundEnd(round stats.RoundStat)
}

// SetTracer attaches an execution tracer (nil detaches). Tracing is
// observational only; it never changes plans or results.
func (c *Coordinator) SetTracer(t Tracer) { c.tracer = t }

// obsCall converts a stats.Call to the obs span model's call record.
func obsCall(c stats.Call) obs.SiteCall {
	return obs.SiteCall{
		Site:      c.Site,
		BytesDown: c.BytesDown,
		BytesUp:   c.BytesUp,
		RowsDown:  c.RowsDown,
		RowsUp:    c.RowsUp,
		Compute:   c.Compute,
		Start:     c.Start,
		Elapsed:   c.Elapsed,
		Attempt:   c.Attempt,
		Breakdown: c.Profile,
	}
}

// statsCall converts back for Tracer implementations.
func statsCall(c obs.SiteCall) stats.Call {
	return stats.Call{
		Site:      c.Site,
		BytesDown: c.BytesDown,
		BytesUp:   c.BytesUp,
		RowsDown:  c.RowsDown,
		RowsUp:    c.RowsUp,
		Compute:   c.Compute,
		Start:     c.Start,
		Elapsed:   c.Elapsed,
		Attempt:   c.Attempt,
		Profile:   c.Breakdown,
	}
}

// tracerObserver adapts a legacy Tracer to the obs span event stream.
type tracerObserver struct {
	t Tracer
}

// ObserveSpan implements obs.Observer.
func (a tracerObserver) ObserveSpan(e obs.Event) {
	switch e.Kind {
	case obs.EventRoundStart:
		a.t.RoundStart(e.Round, e.XRows)
	case obs.EventSiteCall:
		a.t.SiteCall(e.Round, statsCall(e.Call))
	case obs.EventRoundEnd:
		calls := make([]stats.Call, len(e.Calls))
		for i, c := range e.Calls {
			calls[i] = statsCall(c)
		}
		a.t.RoundEnd(stats.RoundStat{Name: e.Round, Calls: calls, CoordTime: e.CoordTime})
	}
}

// WriterTracer renders trace events as indented lines on an io.Writer. It is
// a thin adapter over the obs span model's line renderer: each event formats
// into one buffer and lands in a single locked Write, so interleaved
// multi-coordinator output can never split an event line — even when several
// WriterTracer-equipped coordinators share one writer through the same
// LineObserver-backed sink.
type WriterTracer struct {
	lo *obs.LineObserver
}

// NewWriterTracer wraps a writer.
func NewWriterTracer(w io.Writer) *WriterTracer {
	return &WriterTracer{lo: obs.NewLineObserver(w)}
}

// RoundStart implements Tracer.
func (t *WriterTracer) RoundStart(name string, xRows int) {
	t.lo.ObserveSpan(obs.Event{Kind: obs.EventRoundStart, Round: name, XRows: xRows})
}

// SiteCall implements Tracer.
func (t *WriterTracer) SiteCall(name string, call stats.Call) {
	t.lo.ObserveSpan(obs.Event{Kind: obs.EventSiteCall, Round: name, Call: obsCall(call)})
}

// RoundEnd implements Tracer.
func (t *WriterTracer) RoundEnd(round stats.RoundStat) {
	t.lo.ObserveSpan(obs.Event{
		Kind:      obs.EventRoundEnd,
		Round:     round.Name,
		BytesDown: round.BytesDown(),
		BytesUp:   round.BytesUp(),
		CoordTime: round.CoordTime,
	})
}
