package core

import (
	"container/list"
	"sync"

	"skalla/internal/obs"
	"skalla/internal/relation"
)

// resultCache is the coordinator's super-aggregate result cache: finalized
// query results keyed by plan fingerprint (which hashes the rewritten query,
// the applied rules, the site count, and the catalog generation — see
// plan.Fingerprint). Validity is keyed by (fingerprint, catalog generation):
// every entry remembers the generation its plan was compiled under, and a
// lookup against a moved generation is a miss that drops the stale entry —
// the same invalidation contract as the prepared-plan cache, applied one
// layer later so repeat queries skip the site rounds entirely, not just the
// compile. Cached relations are private clones that are never mutated; every
// hit hands the caller its own clone, so ORDER BY / LIMIT postprocessing on
// one session's result cannot corrupt another's.
type resultCache struct {
	mu  sync.Mutex
	cap int
	lru list.List // of *resultEntry, front = most recent
	//skallavet:allow stringkey -- cache keyed by plan fingerprint: one lookup per query, not per tuple
	entries map[string]*list.Element
}

type resultEntry struct {
	fp  string
	gen uint64 // catalog generation the producing plan was compiled under
	rel *relation.Relation
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	//skallavet:allow stringkey -- cache keyed by plan fingerprint: one lookup per query, not per tuple
	return &resultCache{cap: capacity, entries: make(map[string]*list.Element, capacity)}
}

// get returns the cached result relation for fp when it was produced under
// the current catalog generation. The returned relation is the cache's
// canonical copy — callers must Clone before handing it to anyone who may
// mutate it. A generation mismatch evicts the entry and reports a miss.
// Nil-safe: a nil cache never hits.
func (rc *resultCache) get(fp string, gen uint64) (*relation.Relation, bool) {
	if rc == nil {
		return nil, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.entries[fp]
	if !ok {
		obs.CoordResultCacheMisses.With("cold").Inc()
		return nil, false
	}
	e := el.Value.(*resultEntry)
	if e.gen != gen {
		rc.lru.Remove(el)
		delete(rc.entries, fp)
		obs.CoordResultCacheEntries.Set(int64(rc.lru.Len()))
		obs.CoordResultCacheMisses.With("generation").Inc()
		return nil, false
	}
	rc.lru.MoveToFront(el)
	obs.CoordResultCacheHits.Inc()
	return e.rel, true
}

// put stores a finalized result, evicting the least recently used entry
// beyond capacity. rel must be a clone the cache exclusively owns. The first
// writer wins: a concurrent duplicate (two leaders of the same fingerprint
// racing past each other) keeps the existing entry when its generation still
// matches, so hits keep serving one stable relation. Nil-safe no-op.
func (rc *resultCache) put(fp string, gen uint64, rel *relation.Relation) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[fp]; ok {
		if el.Value.(*resultEntry).gen == gen {
			rc.lru.MoveToFront(el)
			return
		}
		el.Value = &resultEntry{fp: fp, gen: gen, rel: rel}
		rc.lru.MoveToFront(el)
		return
	}
	rc.entries[fp] = rc.lru.PushFront(&resultEntry{fp: fp, gen: gen, rel: rel})
	for rc.lru.Len() > rc.cap {
		oldest := rc.lru.Back()
		rc.lru.Remove(oldest)
		delete(rc.entries, oldest.Value.(*resultEntry).fp)
	}
	obs.CoordResultCacheEntries.Set(int64(rc.lru.Len()))
}

// len returns the number of cached results.
func (rc *resultCache) len() int {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.lru.Len()
}

// SetResultCache installs a super-aggregate result cache of the given
// capacity (0 disables caching; the default). Repeat queries whose plan
// fingerprint matches a cached entry are served with zero site rounds; a
// catalog generation bump invalidates entries both at lookup and before
// commit. Results served from the cache charge the per-query memory budget
// for the bytes they retain, exactly like an executed query would.
func (c *Coordinator) SetResultCache(capacity int) { c.results = newResultCache(capacity) }

// ResultCacheLen returns the number of currently cached results (0 when
// result caching is disabled).
func (c *Coordinator) ResultCacheLen() int { return c.results.len() }
