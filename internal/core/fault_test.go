package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
	"skalla/internal/transport/faultinject"
)

// faultCluster builds a 3-site cluster with site 1 wrapped in the fault
// injector, so failures are partial.
func faultCluster(t *testing.T, cfg faultinject.Config) *Coordinator {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	global := randomGlobal(rng, 80, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)
	sites[1] = faultinject.Wrap(sites[1], cfg)
	coord, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// A site failing at any round must surface a clean error for every
// optimization combination — never a hang, panic, or silent wrong answer.
// The coordinator runs its default (zero) retry policy here: persistent
// failures must stay fail-fast for callers that have their own recovery.
func TestSiteFailureSurfacesError(t *testing.T) {
	for failFrom := 1; failFrom <= 4; failFrom++ {
		coord := faultCluster(t, faultinject.Config{FailFrom: failFrom})
		for _, opts := range allOptionCombos() {
			_, err := coord.Execute(context.Background(), chainQuery(), opts)
			// With generous budgets some plans finish (full-local plans make
			// only one call per site); if an error comes back it must be ours.
			if err != nil && !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("failFrom=%d [%s]: unexpected error %v", failFrom, opts, err)
			}
			if failFrom == 1 && err == nil {
				t.Fatalf("failFrom=1 [%s]: expected failure", opts)
			}
		}
	}
}

// A persistent failure must also defeat a retry policy: MaxAttempts are spent
// and the injected error surfaces instead of looping forever.
func TestPersistentFailureExhaustsRetries(t *testing.T) {
	coord := faultCluster(t, faultinject.Config{FailFrom: 1})
	coord.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	_, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected failure after exhausted retries", err)
	}
}

// corruptKeyBlock swaps a key value for one no site owns.
func corruptKeyBlock(b *relation.Relation) *relation.Relation {
	if b.Len() == 0 {
		return b
	}
	bad := b.Clone()
	bad.Tuples[0][0] = relation.NewInt(999999)
	return bad
}

// corruptSchemaBlock replaces the block with one of an unrelated schema.
func corruptSchemaBlock(*relation.Relation) *relation.Relation {
	bad := relation.New(relation.MustSchema(relation.Column{Name: "zz", Kind: relation.KindInt}))
	bad.MustAppend(relation.Tuple{relation.NewInt(1)})
	return bad
}

// Corrupted synchronization input (keys not present in X) must be detected
// by the merger rather than silently dropped.
func TestCorruptKeyDetected(t *testing.T) {
	coord := faultCluster(t, faultinject.Config{MutateBlock: corruptKeyBlock})
	_, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if err == nil || !strings.Contains(err.Error(), "not in X") {
		t.Errorf("corrupt key: err = %v", err)
	}
}

// A wrong-schema H must be rejected by stage validation — and a retry policy
// must not mask it: data-shaped corruption is permanent, so attempts are not
// burned re-fetching it.
func TestCorruptSchemaDetected(t *testing.T) {
	coord := faultCluster(t, faultinject.Config{MutateBlock: corruptSchemaBlock})
	coord.SetRetryPolicy(RetryPolicy{MaxAttempts: 5})
	_, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if err == nil {
		t.Fatal("corrupt schema: expected error")
	}
	fs := coord.sites[1].(*faultinject.Site)
	// Base round + one corrupt operator attempt; a retry loop would show more.
	if fs.Calls() > 2 {
		t.Errorf("corrupt schema burned %d calls — retried a permanent error", fs.Calls())
	}
}

// corruptResultSite returns well-formed transport results whose payload has a
// schema the merger must reject — the failure happens at merge time, after
// every site call completed.
type corruptResultSite struct {
	transport.Site
}

func badRelation() *relation.Relation {
	bad := relation.New(relation.MustSchema(relation.Column{Name: "zz", Kind: relation.KindInt}))
	bad.MustAppend(relation.Tuple{relation.NewInt(1)})
	return bad
}

func (s corruptResultSite) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	_, call, err := s.Site.EvalBase(ctx, bq)
	if err != nil {
		return nil, call, err
	}
	return badRelation(), call, nil
}

func (s corruptResultSite) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	_, call, err := s.Site.EvalLocal(ctx, req)
	if err != nil {
		return nil, call, err
	}
	return badRelation(), call, nil
}

// When the coordinator's merge fails after the site calls succeeded, the
// round must still record every completed call — the traffic happened, and
// dropping it silently skews -stats-json and traces.
func TestRoundStatsRecordedOnMergeError(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts plan.Options
	}{
		{"base-union", plan.None()},
		{"local-merge", plan.Options{SyncReduce: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			global := randomGlobal(rng, 80, 12)
			sites, cat := buildCluster(t, global, "T", 3, 4, true)
			sites[1] = corruptResultSite{sites[1]}
			coord, err := New(sites, cat, stats.NetModel{})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			coord.SetTracer(NewWriterTracer(&buf))
			if _, err := coord.Execute(context.Background(), chainQuery(), tc.opts); err == nil {
				t.Fatal("corrupt payload must fail the merge")
			}
			out := buf.String()
			for _, frag := range []string{"site 0", "site 1", "site 2", ": done"} {
				if !strings.Contains(out, frag) {
					t.Errorf("trace after merge error is missing %q:\n%s", frag, out)
				}
			}
		})
	}
}

// A TCP site process dying mid-conversation must produce a transport error
// under the default (no-retry) policy, and other queries against remaining
// connections must not be affected.
func TestTCPSiteDeath(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	global := randomGlobal(rng, 50, 12)
	gi := global.Schema.MustIndex("g")

	var sites []transport.Site
	var servers []*transport.Server
	for i := 0; i < 2; i++ {
		lo, hi := int64(i)*6, int64(i)*6+5
		es := engine.NewSite(i)
		part := global.Filter(func(tp relation.Tuple) bool { return tp[gi].Int >= lo && tp[gi].Int <= hi })
		if err := es.Load(context.Background(), "T", part); err != nil {
			t.Fatal(err)
		}
		srv, err := transport.Serve(es, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		cli, err := transport.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		sites = append(sites, cli)
	}
	defer servers[0].Close()

	coord, _ := New(sites, nil, stats.NetModel{})
	if _, err := coord.Execute(context.Background(), chainQuery(), plan.None()); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	// Kill site 1's server; the next query must fail cleanly.
	servers[1].Close()
	if _, err := coord.Execute(context.Background(), chainQuery(), plan.None()); err == nil {
		t.Error("query against dead site must fail")
	}
}
