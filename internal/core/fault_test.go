package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// faultSite wraps a transport.Site and injects failures: errors after a call
// budget, or corrupted H relations.
type faultSite struct {
	transport.Site
	failAfter  int32 // fail calls once the counter exceeds this (<0: never)
	calls      int32
	corruptKey bool // return H rows with keys not present in X
	corruptSch bool // return H with a wrong schema
}

var errInjected = errors.New("injected site failure")

func (f *faultSite) bump() error {
	n := atomic.AddInt32(&f.calls, 1)
	if f.failAfter >= 0 && n > f.failAfter {
		return errInjected
	}
	return nil
}

func (f *faultSite) EvalBase(ctx context.Context, bq gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	if err := f.bump(); err != nil {
		return nil, stats.Call{}, err
	}
	return f.Site.EvalBase(ctx, bq)
}

func (f *faultSite) EvalOperator(ctx context.Context, req engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	var h *relation.Relation
	call, err := f.EvalOperatorStream(ctx, req, func(b *relation.Relation) error {
		if h == nil {
			h = b
			return nil
		}
		return h.Union(b)
	})
	return h, call, err
}

func (f *faultSite) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	if err := f.bump(); err != nil {
		return stats.Call{}, err
	}
	return f.Site.EvalOperatorStream(ctx, req, func(b *relation.Relation) error {
		if f.corruptSch && b.Len() > 0 {
			bad := relation.New(relation.MustSchema(relation.Column{Name: "zz", Kind: relation.KindInt}))
			bad.MustAppend(relation.Tuple{relation.NewInt(1)})
			return sink(bad)
		}
		if f.corruptKey && b.Len() > 0 {
			bad := b.Clone()
			bad.Tuples[0][0] = relation.NewInt(999999)
			return sink(bad)
		}
		return sink(b)
	})
}

func (f *faultSite) EvalLocal(ctx context.Context, req engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	if err := f.bump(); err != nil {
		return nil, stats.Call{}, err
	}
	return f.Site.EvalLocal(ctx, req)
}

func faultCluster(t *testing.T, failAfter int32, corruptKey, corruptSch bool) *Coordinator {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	global := randomGlobal(rng, 80, 12)
	sites, cat := buildCluster(t, global, "T", 3, 4, true)
	// Wrap only site 1, so failures are partial.
	sites[1] = &faultSite{Site: sites[1], failAfter: failAfter, corruptKey: corruptKey, corruptSch: corruptSch}
	coord, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// A site failing at any round must surface a clean error for every
// optimization combination — never a hang, panic, or silent wrong answer.
func TestSiteFailureSurfacesError(t *testing.T) {
	for failAfter := int32(0); failAfter <= 3; failAfter++ {
		coord := faultCluster(t, failAfter, false, false)
		for _, opts := range allOptionCombos() {
			_, err := coord.Execute(context.Background(), chainQuery(), opts)
			// With generous budgets some plans finish (full-local plans make
			// only one call per site); if an error comes back it must be ours.
			if err != nil && !errors.Is(err, errInjected) && !strings.Contains(err.Error(), "injected") {
				t.Fatalf("failAfter=%d [%s]: unexpected error %v", failAfter, opts, err)
			}
			if failAfter == 0 && err == nil {
				t.Fatalf("failAfter=0 [%s]: expected failure", opts)
			}
		}
	}
}

// Corrupted synchronization input (keys not present in X) must be detected
// by the merger rather than silently dropped.
func TestCorruptKeyDetected(t *testing.T) {
	coord := faultCluster(t, -1, true, false)
	_, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if err == nil || !strings.Contains(err.Error(), "not in X") {
		t.Errorf("corrupt key: err = %v", err)
	}
}

// A wrong-schema H must be rejected (arity mismatch is caught during merge).
func TestCorruptSchemaDetected(t *testing.T) {
	coord := faultCluster(t, -1, false, true)
	_, err := coord.Execute(context.Background(), chainQuery(), plan.None())
	if err == nil {
		t.Error("corrupt schema: expected error")
	}
}

// A TCP site process dying mid-conversation must produce a transport error,
// and other queries against remaining connections must not be affected.
func TestTCPSiteDeath(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	global := randomGlobal(rng, 50, 12)
	gi := global.Schema.MustIndex("g")

	var sites []transport.Site
	var servers []*transport.Server
	for i := 0; i < 2; i++ {
		lo, hi := int64(i)*6, int64(i)*6+5
		es := engine.NewSite(i)
		part := global.Filter(func(tp relation.Tuple) bool { return tp[gi].Int >= lo && tp[gi].Int <= hi })
		if err := es.Load("T", part); err != nil {
			t.Fatal(err)
		}
		srv, err := transport.Serve(es, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		cli, err := transport.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		sites = append(sites, cli)
	}
	defer servers[0].Close()

	coord, _ := New(sites, nil, stats.NetModel{})
	if _, err := coord.Execute(context.Background(), chainQuery(), plan.None()); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	// Kill site 1's server; the next query must fail cleanly.
	servers[1].Close()
	if _, err := coord.Execute(context.Background(), chainQuery(), plan.None()); err == nil {
		t.Error("query against dead site must fail")
	}
}
