package core

import (
	"context"
	"math/rand"
	"testing"

	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/stats"
)

// Regression: Prop. 2 base-sync folding is unsound when the base query has a
// WHERE clause — a site holding rows for a group whose filter-passing
// witnesses all live elsewhere silently drops those contributions. These two
// seeds reproduced the miscounted aggregates before the planner gate; they
// replay the exact construction of TestQuickRandomQueries.
func TestSyncReduceFilteredBaseRegression(t *testing.T) {
	for _, seed := range []int64{-7389486403440659013, -7136345867355969278} {
		rng := rand.New(rand.NewSource(seed))
		global := randomGlobal(rng, 20+rng.Intn(80), 1+int64(rng.Intn(12)))
		nSites := 2 + rng.Intn(3)
		per := int64(12/nSites + 1)
		sites, cat, err := buildClusterImpl(global, "T", nSites, per, true)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := New(sites, cat, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		q := randomQuery(rng)
		want, err := gmdj.EvalCentral(q, gmdj.Data{"T": global}, true)
		if err != nil {
			t.Fatal(err)
		}
		opts := plan.Options{
			Coalesce:         rng.Intn(2) == 0,
			GroupReduceSite:  rng.Intn(2) == 0,
			GroupReduceCoord: rng.Intn(2) == 0,
			SyncReduce:       rng.Intn(2) == 0,
		}
		coord.SetRowBlocking([]int{0, 0, 3}[rng.Intn(3)])
		res, err := coord.Execute(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.SkipBaseSync {
			t.Errorf("seed %d: planner folded base sync despite base WHERE", seed)
		}
		if !res.Rel.EqualMultiset(want) {
			t.Errorf("seed %d [%s]: distributed result diverges from centralized oracle", seed, opts)
		}
	}
}
