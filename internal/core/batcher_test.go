package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// countingBatchSite wraps a FastLocalSite (a concrete type, so the batch
// capability is promoted and the wrapper still satisfies transport.BatchSite)
// and counts which evaluation path each operator call took.
type countingBatchSite struct {
	*transport.FastLocalSite
	streams atomic.Int64
	batches atomic.Int64
}

func (c *countingBatchSite) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	c.streams.Add(1)
	return c.FastLocalSite.EvalOperatorStream(ctx, req, sink)
}

func (c *countingBatchSite) EvalOperatorBatchStream(ctx context.Context, reqs []engine.OperatorRequest, queryIDs []string, sink func(int, *relation.Relation) error) ([]stats.Call, error) {
	c.batches.Add(1)
	return c.FastLocalSite.EvalOperatorBatchStream(ctx, reqs, queryIDs, sink)
}

// TestBatchWindowCollapsesScans: two concurrent executions of the same query
// (single-flight OFF, so both genuinely run their rounds) under a batching
// window must serve every operator round through the batched site path — one
// shared detail scan per (site, round) instead of one per query — and still
// produce results identical to the serial evaluation.
func TestBatchWindowCollapsesScans(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	global := randomGlobal(rng, 200, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)

	plain, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := plain.Execute(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}
	want := sortedText(serial.Rel)

	counting := make([]*countingBatchSite, len(sites))
	wrapped := make([]transport.Site, len(sites))
	for i := range sites {
		counting[i] = &countingBatchSite{FastLocalSite: sites[i].(*transport.FastLocalSite)}
		wrapped[i] = counting[i]
	}
	coord, err := New(wrapped, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetBatchWindow(500 * time.Millisecond)

	flushes0 := obs.CoordBatchFlushes.Value()
	members0 := obs.CoordBatchMembers.Value()
	const queries = 2
	results := make([]*Result, queries)
	errs := make([]error, queries)
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = coord.Execute(context.Background(), chainQuery(), plan.None())
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("execution %d: %v", i, errs[i])
		}
		if got := sortedText(results[i].Rel); got != want {
			t.Fatalf("execution %d diverges from serial run\ngot:\n%.2000s\nwant:\n%.2000s", i, got, want)
		}
	}
	var streams, batches int64
	for _, c := range counting {
		streams += c.streams.Load()
		batches += c.batches.Load()
	}
	// Every operator call of both queries landed inside the window, so every
	// exchange went through the batch path with both members aboard.
	if streams != 0 {
		t.Errorf("%d operator calls bypassed the batch (window missed?)", streams)
	}
	if batches == 0 {
		t.Error("no batched exchanges issued")
	}
	if got := obs.CoordBatchFlushes.Value() - flushes0; got != batches {
		t.Errorf("flush metric = %d, want %d", got, batches)
	}
	if got := obs.CoordBatchMembers.Value() - members0; got != queries*batches {
		t.Errorf("member metric = %d, want %d (%d members per flush)", got, queries*batches, queries)
	}
}

// fakeBatchTarget is a minimal transport.Site for driving the batcher
// directly: operator streams emit one canned single-row block; the batch
// entry point does the same per member. Unused entry points panic.
type fakeBatchTarget struct {
	soloStreams  atomic.Int64
	batchCalls   atomic.Int64
	batchMembers atomic.Int64
}

func fakeBlock() *relation.Relation {
	r := relation.New(tSchema)
	r.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewInt(2), relation.NewInt(3)})
	return r
}

func (f *fakeBatchTarget) ID() int { return 0 }
func (f *fakeBatchTarget) EvalBase(context.Context, gmdj.BaseQuery) (*relation.Relation, stats.Call, error) {
	panic("unused")
}
func (f *fakeBatchTarget) EvalOperator(context.Context, engine.OperatorRequest) (*relation.Relation, stats.Call, error) {
	panic("unused")
}
func (f *fakeBatchTarget) EvalOperatorStream(ctx context.Context, req engine.OperatorRequest, sink func(*relation.Relation) error) (stats.Call, error) {
	f.soloStreams.Add(1)
	if err := sink(fakeBlock()); err != nil {
		return stats.Call{}, err
	}
	return stats.Call{Site: 0, RowsUp: 1}, nil
}
func (f *fakeBatchTarget) EvalLocal(context.Context, engine.LocalRequest) (*relation.Relation, stats.Call, error) {
	panic("unused")
}
func (f *fakeBatchTarget) DetailSchema(context.Context, string) (relation.Schema, error) {
	panic("unused")
}
func (f *fakeBatchTarget) Tables(context.Context) ([]engine.TableInfo, error) { panic("unused") }

func (f *fakeBatchTarget) EvalOperatorBatchStream(ctx context.Context, reqs []engine.OperatorRequest, queryIDs []string, sink func(int, *relation.Relation) error) ([]stats.Call, error) {
	f.batchCalls.Add(1)
	f.batchMembers.Add(int64(len(reqs)))
	calls := make([]stats.Call, len(reqs))
	for m := range reqs {
		if err := sink(m, fakeBlock()); err != nil {
			return nil, err
		}
		calls[m] = stats.Call{Site: 0, RowsUp: 1}
	}
	return calls, nil
}

func batchTestRequest() engine.OperatorRequest {
	base := relation.New(tSchema)
	base.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewInt(1), relation.NewInt(1)})
	return engine.OperatorRequest{Base: base, Op: chainQuery().Ops[0]}
}

// memberCount reports how many members a pending (unflushed) group for key
// currently holds.
func (b *siteBatcher) memberCount(key batchKey) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.groups[key]
	if !ok {
		return 0
	}
	return len(g.members)
}

// TestBatcherWithdrawBeforeFlush: a member whose context dies during the
// collection window is withdrawn — its caller returns the cancellation, the
// survivor still gets its result, and the site sees a single-member exchange
// (the lone survivor takes the plain stream path, no batch framing).
func TestBatcherWithdrawBeforeFlush(t *testing.T) {
	site := &fakeBatchTarget{}
	b := &siteBatcher{window: 250 * time.Millisecond, groups: make(map[batchKey]*batchGroup)}
	key := batchKey{site: 0, detail: chainQuery().Ops[0].Detail}

	type outcome struct {
		call stats.Call
		err  error
	}
	survivor := make(chan outcome, 1)
	go func() {
		call, err := b.eval(context.Background(), site, batchTestRequest(), func(*relation.Relation) error { return nil })
		survivor <- outcome{call, err}
	}()
	waitFor(t, "first member to register", func() bool { return b.memberCount(key) == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	withdrawn := make(chan outcome, 1)
	go func() {
		call, err := b.eval(ctx, site, batchTestRequest(), func(*relation.Relation) error { return nil })
		withdrawn <- outcome{call, err}
	}()
	waitFor(t, "second member to register", func() bool { return b.memberCount(key) == 2 })
	cancel()
	got := <-withdrawn
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("withdrawn member returned %v, want context.Canceled", got.err)
	}

	if got := <-survivor; got.err != nil {
		t.Fatalf("surviving member failed: %v", got.err)
	}
	if n := site.soloStreams.Load(); n != 1 {
		t.Errorf("solo streams = %d, want 1 (lone survivor skips batch framing)", n)
	}
	if n := site.batchCalls.Load(); n != 0 {
		t.Errorf("batch calls = %d, want 0", n)
	}
}

// TestBatcherAbandonedGroupNeverReachesSite: when every member withdraws
// before the flush, the exchange is cancelled outright.
func TestBatcherAbandonedGroupNeverReachesSite(t *testing.T) {
	site := &fakeBatchTarget{}
	b := &siteBatcher{window: 10 * time.Second, groups: make(map[batchKey]*batchGroup)}
	key := batchKey{site: 0, detail: chainQuery().Ops[0].Detail}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.eval(ctx, site, batchTestRequest(), func(*relation.Relation) error { return nil })
		done <- err
	}()
	waitFor(t, "member to register", func() bool { return b.memberCount(key) == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned member returned %v, want context.Canceled", err)
	}
	// The flusher wakes on the dead group context and exits without touching
	// the site (the 10 s window would otherwise still be pending).
	waitFor(t, "group teardown", func() bool { return b.memberCount(key) == 0 })
	if n := site.soloStreams.Load() + site.batchCalls.Load(); n != 0 {
		t.Errorf("abandoned group reached the site: %d calls", n)
	}
}

// TestBatcherSinkErrorIsolation: one member's sink failure (its staging was
// poisoned, say) must surface on that member alone; the other member of the
// same batched exchange completes normally.
func TestBatcherSinkErrorIsolation(t *testing.T) {
	site := &fakeBatchTarget{}
	b := &siteBatcher{window: 200 * time.Millisecond, groups: make(map[batchKey]*batchGroup)}
	key := batchKey{site: 0, detail: chainQuery().Ops[0].Detail}

	sinkFail := errors.New("staging poisoned")
	failing := make(chan error, 1)
	go func() {
		_, err := b.eval(context.Background(), site, batchTestRequest(), func(*relation.Relation) error { return sinkFail })
		failing <- err
	}()
	waitFor(t, "first member to register", func() bool { return b.memberCount(key) == 1 })
	var survivorBlocks atomic.Int64
	ok := make(chan error, 1)
	go func() {
		_, err := b.eval(context.Background(), site, batchTestRequest(), func(*relation.Relation) error {
			survivorBlocks.Add(1)
			return nil
		})
		ok <- err
	}()

	if err := <-failing; !errors.Is(err, sinkFail) {
		t.Fatalf("failing member returned %v, want its sink error", err)
	}
	if err := <-ok; err != nil {
		t.Fatalf("healthy member failed alongside its neighbor: %v", err)
	}
	if survivorBlocks.Load() == 0 {
		t.Error("healthy member received no blocks")
	}
	if n := site.batchCalls.Load(); n != 1 {
		t.Errorf("batch calls = %d, want 1 (both members in one exchange)", n)
	}
}

// TestBatcherRetriesBypassBatch: a retried attempt must go straight to the
// site — re-batching a known-bad exchange would couple every member to the
// failure again.
func TestBatcherRetriesBypassBatch(t *testing.T) {
	site := &fakeBatchTarget{}
	coord, err := New([]transport.Site{site}, nil, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetBatchWindow(10 * time.Second) // would park first attempts for ages
	ctx := obs.WithAttempt(context.Background(), 2)
	if _, err := coord.siteOperatorStream(ctx, site, batchTestRequest(), func(*relation.Relation) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n := site.soloStreams.Load(); n != 1 {
		t.Errorf("solo streams = %d, want 1 (retry must bypass the window)", n)
	}
	if n := site.batchCalls.Load(); n != 0 {
		t.Errorf("batch calls = %d, want 0", n)
	}

	// And with batching disabled entirely, the seam is a pass-through.
	coord.SetBatchWindow(0)
	if _, err := coord.siteOperatorStream(context.Background(), site, batchTestRequest(), func(*relation.Relation) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n := site.soloStreams.Load(); n != 2 {
		t.Errorf("solo streams = %d, want 2", n)
	}
}
