package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"skalla/internal/obs"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// TestSingleFlightStorm is the shared-work acceptance check: 32 concurrent
// executions of the same plan must run the distributed rounds exactly once —
// one leader, 31 followers — and every caller's result must be byte-identical
// to the serial evaluation. The sites are gated so the leader parks inside
// its first round until every follower has joined the flight, making the
// collapse deterministic under -race.
func TestSingleFlightStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	global := randomGlobal(rng, 200, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)

	plain, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := plain.Execute(context.Background(), chainQuery(), plan.All())
	if err != nil {
		t.Fatal(err)
	}
	want := sortedText(serial.Rel)

	gate := make(chan struct{})
	var siteCalls atomic.Int64
	gated := make([]transport.Site, len(sites))
	for i := range sites {
		gated[i] = &gateSite{Site: sites[i], gate: gate, calls: &siteCalls}
	}
	coord, err := New(gated, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetSingleFlight(true)

	leaders0 := obs.ServerSingleflightLeaders.Value()
	followers0 := obs.ServerSingleflightFollowers.Value()
	const storm = 32
	results := make([]*Result, storm)
	errs := make([]error, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = coord.Execute(context.Background(), chainQuery(), plan.All())
		}(i)
	}
	// The leader is parked at the gate; wait until the other 31 statements
	// have all joined its flight, then release the rounds.
	waitFor(t, "31 followers to join the flight", func() bool {
		return obs.ServerSingleflightFollowers.Value()-followers0 == storm-1
	})
	close(gate)
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("storm execution %d: %v", i, errs[i])
		}
		if got := sortedText(results[i].Rel); got != want {
			t.Fatalf("storm execution %d diverges from serial run\ngot:\n%.2000s\nwant:\n%.2000s", i, got, want)
		}
	}
	if got := obs.ServerSingleflightLeaders.Value() - leaders0; got != 1 {
		t.Errorf("leaders = %d, want 1", got)
	}
	stormCalls := siteCalls.Load()

	// The whole storm must have cost exactly one execution's site calls: a
	// fresh (non-concurrent) run on the same coordinator re-runs the rounds
	// and establishes that count.
	if _, err := coord.Execute(context.Background(), chainQuery(), plan.All()); err != nil {
		t.Fatal(err)
	}
	soloCalls := siteCalls.Load() - stormCalls
	if stormCalls != soloCalls {
		t.Errorf("storm issued %d site calls, want %d (one execution)", stormCalls, soloCalls)
	}
}

// TestSingleFlightResultsArePrivate checks that collapsed executions do not
// share mutable state: mutating one caller's result (as SQL ORDER BY / LIMIT
// postprocessing does in place) must not corrupt another's.
func TestSingleFlightResultsArePrivate(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	global := randomGlobal(rng, 120, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)

	gate := make(chan struct{})
	var siteCalls atomic.Int64
	gated := make([]transport.Site, len(sites))
	for i := range sites {
		gated[i] = &gateSite{Site: sites[i], gate: gate, calls: &siteCalls}
	}
	coord, err := New(gated, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetSingleFlight(true)

	followers0 := obs.ServerSingleflightFollowers.Value()
	const n = 4
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = coord.Execute(context.Background(), chainQuery(), plan.None())
		}(i)
	}
	waitFor(t, "followers to join", func() bool {
		return obs.ServerSingleflightFollowers.Value()-followers0 == n-1
	})
	close(gate)
	wg.Wait()

	for i := range results {
		if results[i] == nil {
			t.Fatalf("execution %d returned no result", i)
		}
	}
	want := sortedText(results[1].Rel)
	// Truncate one caller's relation in place; the others must be unaffected.
	results[0].Rel.Tuples = results[0].Rel.Tuples[:1]
	for i := 1; i < n; i++ {
		if got := sortedText(results[i].Rel); got != want {
			t.Fatalf("mutating result 0 corrupted result %d", i)
		}
	}
}

// TestSingleFlightLeaderCancelDoesNotFailFollowers: the execution runs on a
// context detached from the leader's own, so cancelling the leader's context
// while a follower waits must still deliver the follower a correct result
// (the refcount — not the leader's session — keeps the rounds alive).
func TestSingleFlightLeaderCancelDoesNotFailFollowers(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	global := randomGlobal(rng, 120, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)

	plain, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := plain.Execute(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}
	want := sortedText(serial.Rel)

	gate := make(chan struct{})
	var siteCalls atomic.Int64
	gated := make([]transport.Site, len(sites))
	for i := range sites {
		gated[i] = &gateSite{Site: sites[i], gate: gate, calls: &siteCalls}
	}
	coord, err := New(gated, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetSingleFlight(true)

	followers0 := obs.ServerSingleflightFollowers.Value()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		coord.Execute(leaderCtx, chainQuery(), plan.None())
	}()
	waitFor(t, "leader to reach the sites", func() bool { return siteCalls.Load() > 0 })

	followerRes := make(chan *Result, 1)
	followerErr := make(chan error, 1)
	go func() {
		res, err := coord.Execute(context.Background(), chainQuery(), plan.None())
		followerRes <- res
		followerErr <- err
	}()
	waitFor(t, "follower to join the flight", func() bool {
		return obs.ServerSingleflightFollowers.Value()-followers0 == 1
	})

	// The leader's session dies mid-round. The follower's reference must keep
	// the detached execution alive.
	cancelLeader()
	close(gate)
	<-leaderDone
	if err := <-followerErr; err != nil {
		t.Fatalf("follower failed after leader cancellation: %v", err)
	}
	res := <-followerRes
	if got := sortedText(res.Rel); got != want {
		t.Fatalf("follower result diverges after leader cancellation\ngot:\n%.2000s\nwant:\n%.2000s", got, want)
	}
}

// TestSingleFlightAbandonedCancelsExecution: when every waiter leaves, the
// detached execution is cancelled rather than left running for nobody.
func TestSingleFlightAbandonedCancelsExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	global := randomGlobal(rng, 120, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)

	gate := make(chan struct{})
	defer close(gate)
	var siteCalls atomic.Int64
	gated := make([]transport.Site, len(sites))
	for i := range sites {
		gated[i] = &gateSite{Site: sites[i], gate: gate, calls: &siteCalls}
	}
	coord, err := New(gated, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetSingleFlight(true)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := coord.Execute(ctx, chainQuery(), plan.None())
		done <- err
	}()
	waitFor(t, "leader to reach the sites", func() bool { return siteCalls.Load() > 0 })
	cancel()
	// With no followers the execution context dies with the leader: the gated
	// site call returns the cancellation instead of waiting for the gate.
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned flight returned %v, want context.Canceled", err)
	}
}

// TestResultCacheServesWithZeroSiteRounds: a repeat of a cached query is
// answered entirely at the coordinator — no site exchange of any kind — with
// a result identical to the executed one.
func TestResultCacheServesWithZeroSiteRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	global := randomGlobal(rng, 150, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)

	gate := make(chan struct{})
	close(gate) // never parked; the counter is what matters
	var siteCalls atomic.Int64
	gated := make([]transport.Site, len(sites))
	for i := range sites {
		gated[i] = &gateSite{Site: sites[i], gate: gate, calls: &siteCalls}
	}
	coord, err := New(gated, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetResultCache(8)

	hits0 := obs.CoordResultCacheHits.Value()
	cold, err := coord.Execute(context.Background(), chainQuery(), plan.All())
	if err != nil {
		t.Fatal(err)
	}
	if coord.ResultCacheLen() != 1 {
		t.Fatalf("cache holds %d entries after cold run, want 1", coord.ResultCacheLen())
	}
	coldCalls := siteCalls.Load()

	hot, err := coord.Execute(context.Background(), chainQuery(), plan.All())
	if err != nil {
		t.Fatal(err)
	}
	if got := siteCalls.Load(); got != coldCalls {
		t.Errorf("cache hit issued %d site calls", got-coldCalls)
	}
	if got := obs.CoordResultCacheHits.Value() - hits0; got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got, want := sortedText(hot.Rel), sortedText(cold.Rel); got != want {
		t.Fatalf("cached result diverges\ngot:\n%.2000s\nwant:\n%.2000s", got, want)
	}
	if hot.Profile == nil || hot.Profile.Shared != "cache" {
		t.Errorf("cache-hit profile Shared = %+v, want \"cache\"", hot.Profile)
	}

	// The hit hands out a private clone: mutating it must not corrupt the
	// cached entry.
	hot.Rel.Tuples = hot.Rel.Tuples[:1]
	again, err := coord.Execute(context.Background(), chainQuery(), plan.All())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sortedText(again.Rel), sortedText(cold.Rel); got != want {
		t.Fatal("mutating a cache-hit result corrupted the cached entry")
	}
}

// TestResultCacheGenerationBumpMidExecution is the satellite's stale-read
// check: a catalog Generation bump landing while an execution is in flight —
// after its plan was compiled, before its result commits — must prevent the
// commit, so no later statement can be served a super-aggregate computed
// under the old generation.
func TestResultCacheGenerationBumpMidExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	global := randomGlobal(rng, 150, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)

	gate := make(chan struct{})
	var siteCalls atomic.Int64
	gated := make([]transport.Site, len(sites))
	for i := range sites {
		gated[i] = &gateSite{Site: sites[i], gate: gate, calls: &siteCalls}
	}
	coord, err := New(gated, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetResultCache(8)

	done := make(chan error, 1)
	go func() {
		_, err := coord.Execute(context.Background(), chainQuery(), plan.All())
		done <- err
	}()
	waitFor(t, "execution to reach the sites", func() bool { return siteCalls.Load() > 0 })
	cat.Generation++ // distribution knowledge re-derived mid-execution
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The result was computed under generation 0 and must not be committed.
	if got := coord.ResultCacheLen(); got != 0 {
		t.Fatalf("stale result committed to the cache: %d entries", got)
	}
	// The next execution recompiles under the new generation, runs real
	// rounds, and its commit (generation unchanged since compile) sticks.
	calls0 := siteCalls.Load()
	if _, err := coord.Execute(context.Background(), chainQuery(), plan.All()); err != nil {
		t.Fatal(err)
	}
	if siteCalls.Load() == calls0 {
		t.Fatal("post-bump execution did not reach the sites")
	}
	if got := coord.ResultCacheLen(); got != 1 {
		t.Fatalf("post-bump result not cached: %d entries", got)
	}
}

// TestResultCacheConcurrentGenerationBumps hammers the cache with a storm of
// executions racing generation bumps under -race: every result must still
// match the oracle (stale entries are dropped at lookup and never committed),
// regardless of how lookups, commits, and bumps interleave.
func TestResultCacheConcurrentGenerationBumps(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	global := randomGlobal(rng, 150, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)
	plain, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := plain.Execute(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}
	want := sortedText(serial.Rel)

	coord, err := New(sites, cat, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetResultCache(8)
	coord.SetSingleFlight(true)

	// One plan, compiled once under generation 0, executed across rounds of a
	// concurrent storm separated by generation bumps (the barrier between
	// rounds is what makes the bump itself race-free: the Generation field is
	// a plain counter, synchronized here exactly as a catalog rebuild would
	// be). Within a round, cold executions, cache commits, cache hits, and
	// single-flight collapses race freely; after a bump the cached entry is
	// stale — the lookup must drop it (miss reason "generation") and the
	// commit-time re-check must refuse to re-commit results of the now-stale
	// plan, so the cache ends the test empty rather than poisoned.
	pl, err := coord.Plan(context.Background(), chainQuery(), plan.None())
	if err != nil {
		t.Fatal(err)
	}
	src := coord.SchemaSource(context.Background())
	genMisses0 := obs.CoordResultCacheMisses.With("generation").Value()
	const rounds = 4
	const queriers = 8
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for i := 0; i < queriers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := coord.ExecutePlan(context.Background(), pl, src)
				if err != nil {
					t.Errorf("round %d querier %d: %v", r, i, err)
					return
				}
				if got := sortedText(res.Rel); got != want {
					t.Errorf("round %d querier %d: result diverges from oracle", r, i)
				}
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		cat.Generation++
	}
	// Each post-bump round found at most a stale entry: at least one
	// generation miss per round after the first, and — because the plan's
	// compile generation never matches again — nothing left committed.
	if got := obs.CoordResultCacheMisses.With("generation").Value() - genMisses0; got < 1 {
		t.Errorf("generation misses = %d, want >= 1", got)
	}
	if got := coord.ResultCacheLen(); got != 0 {
		t.Errorf("stale-plan results left in the cache: %d entries", got)
	}
}

// TestSharedResultsChargeMemBudget: results served from shared work (cache
// hits and single-flight followers) get no free ride past the per-query
// memory budget — each served query charges its own clone's bytes.
func TestSharedResultsChargeMemBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	global := randomGlobal(rng, 150, 12)
	sites, cat := buildCluster(t, global, "T", 3, 5, true)

	t.Run("cache-hit", func(t *testing.T) {
		coord, err := New(sites, cat, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		coord.SetResultCache(8)
		cold, err := coord.Execute(context.Background(), chainQuery(), plan.All())
		if err != nil {
			t.Fatal(err)
		}
		// A budget below the result's own footprint: the cached copy exists,
		// but serving it must still fail the over-budget query.
		coord.SetQueryMemBudget(cold.Rel.MemBytes() / 2)
		if _, err := coord.Execute(context.Background(), chainQuery(), plan.All()); !errors.Is(err, ErrQueryMemBudget) {
			t.Fatalf("over-budget cache hit returned %v, want ErrQueryMemBudget", err)
		}
		// A sufficient budget serves the hit normally.
		coord.SetQueryMemBudget(cold.Rel.MemBytes() * 4)
		if _, err := coord.Execute(context.Background(), chainQuery(), plan.All()); err != nil {
			t.Fatalf("within-budget cache hit failed: %v", err)
		}
	})

	t.Run("follower", func(t *testing.T) {
		gate := make(chan struct{})
		var siteCalls atomic.Int64
		gated := make([]transport.Site, len(sites))
		for i := range sites {
			gated[i] = &gateSite{Site: sites[i], gate: gate, calls: &siteCalls}
		}
		coord, err := New(gated, cat, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		coord.SetSingleFlight(true)

		// Budget below the result footprint (measured on an unshared run).
		plain, err := New(sites, cat, stats.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := plain.Execute(context.Background(), chainQuery(), plan.None())
		if err != nil {
			t.Fatal(err)
		}
		coord.SetQueryMemBudget(serial.Rel.MemBytes() * 100) // leader's own budget: ample

		followers0 := obs.ServerSingleflightFollowers.Value()
		leaderDone := make(chan error, 1)
		go func() {
			_, err := coord.Execute(context.Background(), chainQuery(), plan.None())
			leaderDone <- err
		}()
		waitFor(t, "leader to reach the sites", func() bool { return siteCalls.Load() > 0 })
		// Shrink the budget before the follower joins: the leader has already
		// created its budget, so only the follower is affected.
		coord.SetQueryMemBudget(serial.Rel.MemBytes() / 2)
		followerDone := make(chan error, 1)
		go func() {
			_, err := coord.Execute(context.Background(), chainQuery(), plan.None())
			followerDone <- err
		}()
		waitFor(t, "follower to join the flight", func() bool {
			return obs.ServerSingleflightFollowers.Value()-followers0 == 1
		})
		close(gate)
		if err := <-leaderDone; err != nil {
			t.Fatalf("leader failed: %v", err)
		}
		if err := <-followerDone; !errors.Is(err, ErrQueryMemBudget) {
			t.Fatalf("over-budget follower returned %v, want ErrQueryMemBudget", err)
		}
	})
}

// TestResultCacheUnitInvalidation exercises the cache directly: generation
// mismatches evict at lookup, first-writer-wins keeps one stable relation for
// duplicate commits of the same generation, and newer generations replace.
func TestResultCacheUnitInvalidation(t *testing.T) {
	rc := newResultCache(2)
	relA := relation.New(tSchema)
	relA.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewInt(1), relation.NewInt(1)})
	relB := relation.New(tSchema)

	cold0 := obs.CoordResultCacheMisses.With("cold").Value()
	gen0 := obs.CoordResultCacheMisses.With("generation").Value()
	if _, ok := rc.get("fp", 1); ok {
		t.Fatal("empty cache reported a hit")
	}
	if got := obs.CoordResultCacheMisses.With("cold").Value() - cold0; got != 1 {
		t.Fatalf("cold misses = %d, want 1", got)
	}

	rc.put("fp", 1, relA)
	if got, ok := rc.get("fp", 1); !ok || got != relA {
		t.Fatal("get after put did not return the committed relation")
	}
	// Duplicate commit of the same generation (two racing leaders): the first
	// writer wins so concurrent readers keep one stable relation.
	rc.put("fp", 1, relB)
	if got, _ := rc.get("fp", 1); got != relA {
		t.Fatal("duplicate same-generation commit replaced the entry")
	}

	// A moved generation is a miss that evicts.
	if _, ok := rc.get("fp", 2); ok {
		t.Fatal("stale-generation entry served")
	}
	if got := obs.CoordResultCacheMisses.With("generation").Value() - gen0; got != 1 {
		t.Fatalf("generation misses = %d, want 1", got)
	}
	if rc.len() != 0 {
		t.Fatalf("stale entry not evicted: len = %d", rc.len())
	}

	// A newer-generation commit over a stale entry replaces it in place.
	rc.put("fp", 1, relA)
	rc.put("fp", 2, relB)
	if got, ok := rc.get("fp", 2); !ok || got != relB {
		t.Fatal("newer-generation commit did not replace the stale entry")
	}

	// Nil cache (disabled) never hits and never stores.
	var off *resultCache
	off.put("x", 1, relA)
	if _, ok := off.get("x", 1); ok || off.len() != 0 {
		t.Fatal("disabled cache misbehaved")
	}
	if newResultCache(0) != nil {
		t.Fatal("capacity 0 should disable caching")
	}
}
