// Package tpc generates the TPCR test database of the paper's Sect. 5: a
// denormalized fact relation in the spirit of TPC(R)'s dbgen output
// (lineitem joined with orders and customer), partitioned on NationKey
// across the sites. The paper used a 900 MB / 6 M tuple instance on eight
// machines; this generator reproduces the *cardinality structure* that the
// experiments depend on at a configurable (laptop) scale:
//
//   - CustName: the high-cardinality grouping attribute (100 000 unique
//     values in the paper), partition-aligned through CustName → CustKey →
//     NationKey;
//   - CityKey: a low-cardinality (≈3 000) partition-aligned attribute
//     (CityKey → NationKey);
//   - Clerk: a low-cardinality (2 000–4 000) attribute deliberately NOT
//     aligned with the partitioning;
//   - NationKey: the partition attribute (25 nations, round-robin across
//     sites).
package tpc

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"skalla/internal/distrib"
	"skalla/internal/relation"
)

// RelationName is the detail relation name used in queries.
const RelationName = "TPCR"

// Config controls the generated instance.
type Config struct {
	Rows            int   // total fact tuples across all sites
	Customers       int   // unique customers / CustName values (paper: 100000)
	Nations         int   // partition attribute cardinality (paper: 25)
	CitiesPerNation int   // CityKey cardinality = Nations * CitiesPerNation
	Clerks          int   // Clerk cardinality (paper: 2000-4000)
	Seed            int64 // deterministic generation
}

// DefaultConfig returns a laptop-scale instance preserving the paper's
// cardinality ratios (scaled by ~1/100: 60k rows, 1000 customers per 100k).
func DefaultConfig() Config {
	return Config{
		Rows:            60000,
		Customers:       100000,
		Nations:         25,
		CitiesPerNation: 120, // 25 * 120 = 3000 cities
		Clerks:          3000,
		Seed:            1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0:
		return fmt.Errorf("tpc: Rows = %d", c.Rows)
	case c.Customers <= 0:
		return fmt.Errorf("tpc: Customers = %d", c.Customers)
	case c.Nations <= 0:
		return fmt.Errorf("tpc: Nations = %d", c.Nations)
	case c.CitiesPerNation <= 0:
		return fmt.Errorf("tpc: CitiesPerNation = %d", c.CitiesPerNation)
	case c.Clerks <= 0:
		return fmt.Errorf("tpc: Clerks = %d", c.Clerks)
	}
	return nil
}

var (
	mktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	shipModes   = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
)

// Schema returns the denormalized TPCR schema.
func Schema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "OrderKey", Kind: relation.KindInt},
		relation.Column{Name: "LineNumber", Kind: relation.KindInt},
		relation.Column{Name: "CustKey", Kind: relation.KindInt},
		relation.Column{Name: "CustName", Kind: relation.KindString},
		relation.Column{Name: "NationKey", Kind: relation.KindInt},
		relation.Column{Name: "RegionKey", Kind: relation.KindInt},
		relation.Column{Name: "CityKey", Kind: relation.KindInt},
		relation.Column{Name: "Clerk", Kind: relation.KindString},
		relation.Column{Name: "MktSegment", Kind: relation.KindString},
		relation.Column{Name: "Quantity", Kind: relation.KindInt},
		relation.Column{Name: "ExtendedPrice", Kind: relation.KindFloat},
		relation.Column{Name: "Discount", Kind: relation.KindFloat},
		relation.Column{Name: "Tax", Kind: relation.KindFloat},
		relation.Column{Name: "ShipMode", Kind: relation.KindString},
		relation.Column{Name: "OrderPriority", Kind: relation.KindString},
	)
}

// CustNameOf renders a customer key as its unique name, matching dbgen's
// "Customer#%09d" pattern.
func CustNameOf(custKey int64) string {
	return fmt.Sprintf("Customer#%09d", custKey)
}

// CustKeyOfName parses a customer name back to its key (-1 on malformed
// input). The inverse exists because CustName functionally determines
// CustKey.
func CustKeyOfName(name string) int64 {
	const prefix = "Customer#"
	if !strings.HasPrefix(name, prefix) {
		return -1
	}
	k, err := strconv.ParseInt(name[len(prefix):], 10, 64)
	if err != nil {
		return -1
	}
	return k
}

// Dataset is a generated, partitioned TPCR instance.
type Dataset struct {
	Config   Config
	NumSites int
	Parts    []*relation.Relation // one partition per site
}

// Generate builds a deterministic TPCR instance partitioned on NationKey
// across numSites sites (nation n lives at site n % numSites).
func Generate(c Config, numSites int) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if numSites <= 0 {
		return nil, fmt.Errorf("tpc: numSites = %d", numSites)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	d := &Dataset{Config: c, NumSites: numSites, Parts: make([]*relation.Relation, numSites)}
	for i := range d.Parts {
		d.Parts[i] = relation.New(Schema())
	}
	for i := 0; i < c.Rows; i++ {
		custKey := rng.Int63n(int64(c.Customers))
		nation := custKey % int64(c.Nations)
		region := nation % 5
		// City derives from the customer within the nation, so CityKey →
		// NationKey holds (city / CitiesPerNation = nation).
		city := nation*int64(c.CitiesPerNation) + (custKey/int64(c.Nations))%int64(c.CitiesPerNation)
		clerk := fmt.Sprintf("Clerk#%06d", rng.Int63n(int64(c.Clerks)))
		qty := 1 + rng.Int63n(50)
		price := float64(qty) * (900 + 100*rng.Float64())
		row := relation.Tuple{
			relation.NewInt(int64(i/4 + 1)), // OrderKey: ~4 lines per order
			relation.NewInt(int64(i%4 + 1)), // LineNumber
			relation.NewInt(custKey),
			relation.NewString(CustNameOf(custKey)),
			relation.NewInt(nation),
			relation.NewInt(region),
			relation.NewInt(city),
			relation.NewString(clerk),
			relation.NewString(mktSegments[rng.Intn(len(mktSegments))]),
			relation.NewInt(qty),
			relation.NewFloat(price),
			relation.NewFloat(float64(rng.Intn(11)) / 100), // 0.00-0.10
			relation.NewFloat(float64(rng.Intn(9)) / 100),  // 0.00-0.08
			relation.NewString(shipModes[rng.Intn(len(shipModes))]),
			relation.NewString(priorities[rng.Intn(len(priorities))]),
		}
		site := int(nation) % numSites
		d.Parts[site].Tuples = append(d.Parts[site].Tuples, row)
	}
	return d, nil
}

// Global returns the union of all partitions (the conceptual fact relation;
// used as the centralized oracle input).
func (d *Dataset) Global() *relation.Relation {
	g := relation.New(Schema())
	for _, p := range d.Parts {
		g.Tuples = append(g.Tuples, p.Tuples...)
	}
	return g
}

// Distribution returns the distribution knowledge for the first n sites of
// the dataset (n ≤ NumSites): per-site filters for NationKey, CustKey,
// CustName and CityKey — all partition attributes — plus the functional
// dependencies tying them together. Clerk is intentionally unconstrained.
func (d *Dataset) Distribution(n int) (*distrib.Distribution, error) {
	return DistributionFor(d.Config, d.NumSites, n)
}

// DistributionFor builds the distribution knowledge for the first n of
// totalSites sites of an instance generated with config c, without needing
// the data itself (the ownership mapping is determined by the config).
func DistributionFor(c Config, totalSites, n int) (*distrib.Distribution, error) {
	if totalSites <= 0 {
		return nil, fmt.Errorf("tpc: totalSites = %d", totalSites)
	}
	if n <= 0 || n > totalSites {
		return nil, fmt.Errorf("tpc: distribution over %d of %d sites", n, totalSites)
	}
	nationFilters := make([]distrib.SiteFilter, n)
	custFilters := make([]distrib.SiteFilter, n)
	nameFilters := make([]distrib.SiteFilter, n)
	cityFilters := make([]distrib.SiteFilter, n)
	for site := 0; site < n; site++ {
		var nations []relation.Value
		for nat := 0; nat < c.Nations; nat++ {
			if nat%totalSites == site {
				nations = append(nations, relation.NewInt(int64(nat)))
			}
		}
		nationFilters[site] = distrib.NewValueSet(nations...)
		custFilters[site] = DerivedFilter{Site: site, NumSites: totalSites, Nations: c.Nations, From: FromCustKey}
		nameFilters[site] = DerivedFilter{Site: site, NumSites: totalSites, Nations: c.Nations, From: FromCustName}
		cityFilters[site] = DerivedFilter{Site: site, NumSites: totalSites, Nations: c.Nations, CitiesPerNation: c.CitiesPerNation, From: FromCityKey}
	}
	return &distrib.Distribution{
		Relation: RelationName,
		NumSites: n,
		Attrs: []distrib.AttrInfo{
			{Attr: "NationKey", Filters: nationFilters, Disjoint: true, Distinct: int64(c.Nations)},
			{Attr: "CustKey", Filters: custFilters, Disjoint: true, Distinct: int64(c.Customers)},
			{Attr: "CustName", Filters: nameFilters, Disjoint: true, Distinct: int64(c.Customers)},
			{Attr: "CityKey", Filters: cityFilters, Disjoint: true, Distinct: int64(c.Nations * c.CitiesPerNation)},
			{Attr: "Clerk", Distinct: int64(c.Clerks)},
		},
		FDs: []distrib.FD{
			{From: "CustKey", To: "NationKey"},
			{From: "CustName", To: "CustKey"},
			{From: "CityKey", To: "NationKey"},
		},
		// The experiments vary participating sites over fixed per-site data,
		// so the conceptual relation shrinks with n.
		TotalRows: int64(c.Rows) * int64(n) / int64(totalSites),
	}, nil
}

// Catalog returns the catalog for the first n sites.
func (d *Dataset) Catalog(n int) (*distrib.Catalog, error) {
	dist, err := d.Distribution(n)
	if err != nil {
		return nil, err
	}
	return distrib.NewCatalog(dist), nil
}

// SubGlobal returns the union of the first n partitions: the conceptual fact
// relation when only n sites participate (the speed-up experiments vary the
// participating sites over fixed per-site data).
func (d *Dataset) SubGlobal(n int) *relation.Relation {
	g := relation.New(Schema())
	for _, p := range d.Parts[:n] {
		g.Tuples = append(g.Tuples, p.Tuples...)
	}
	return g
}

// FilterSource identifies which attribute a DerivedFilter interprets.
type FilterSource uint8

const (
	// FromCustKey derives the owning site from a customer key.
	FromCustKey FilterSource = iota
	// FromCustName derives the owning site from a customer name.
	FromCustName
	// FromCityKey derives the owning site from a city key.
	FromCityKey
)

// DerivedFilter is a distrib.SiteFilter that decides membership by deriving
// the owning nation (and hence site) from an attribute functionally
// determining NationKey. It gives the planner exact per-site membership for
// the high-cardinality attributes without materializing 100 000-value sets.
type DerivedFilter struct {
	Site            int
	NumSites        int
	Nations         int
	CitiesPerNation int
	From            FilterSource
}

// Contains implements distrib.SiteFilter.
func (f DerivedFilter) Contains(v relation.Value) bool {
	var nation int64
	switch f.From {
	case FromCustKey:
		if v.Kind != relation.KindInt {
			return false
		}
		nation = ((v.Int % int64(f.Nations)) + int64(f.Nations)) % int64(f.Nations)
	case FromCustName:
		k := CustKeyOfName(v.Str)
		if v.Kind != relation.KindString || k < 0 {
			return false
		}
		nation = k % int64(f.Nations)
	case FromCityKey:
		if v.Kind != relation.KindInt || f.CitiesPerNation <= 0 || v.Int < 0 {
			return false
		}
		nation = v.Int / int64(f.CitiesPerNation)
	default:
		return false
	}
	return int(nation)%f.NumSites == f.Site
}

// Bounds implements distrib.SiteFilter: derived filters have no contiguous
// numeric range.
func (f DerivedFilter) Bounds() (float64, float64, bool) { return 0, 0, false }

// DisjointWith implements distrib.DisjointChecker: two derived filters over
// the same mapping but different sites never overlap.
func (f DerivedFilter) DisjointWith(other distrib.SiteFilter) bool {
	o, ok := other.(DerivedFilter)
	if !ok {
		return false
	}
	return o.From == f.From && o.NumSites == f.NumSites && o.Nations == f.Nations &&
		o.CitiesPerNation == f.CitiesPerNation && o.Site != f.Site
}

func (f DerivedFilter) String() string {
	src := map[FilterSource]string{FromCustKey: "CustKey", FromCustName: "CustName", FromCityKey: "CityKey"}[f.From]
	return fmt.Sprintf("derived(%s→nation %% %d == %d)", src, f.NumSites, f.Site)
}
