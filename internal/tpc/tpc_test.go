package tpc

import (
	"testing"

	"skalla/internal/relation"
)

func smallConfig() Config {
	return Config{Rows: 2000, Customers: 500, Nations: 25, CitiesPerNation: 8, Clerks: 60, Seed: 7}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Rows: 0, Customers: 1, Nations: 1, CitiesPerNation: 1, Clerks: 1},
		{Rows: 1, Customers: 0, Nations: 1, CitiesPerNation: 1, Clerks: 1},
		{Rows: 1, Customers: 1, Nations: 0, CitiesPerNation: 1, Clerks: 1},
		{Rows: 1, Customers: 1, Nations: 1, CitiesPerNation: 0, Clerks: 1},
		{Rows: 1, Customers: 1, Nations: 1, CitiesPerNation: 1, Clerks: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	d, err := Generate(smallConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range d.Parts {
		total += p.Len()
	}
	if total != 2000 {
		t.Errorf("total rows = %d", total)
	}
	g := d.Global()
	if g.Len() != 2000 || !g.Schema.Equal(Schema()) {
		t.Errorf("global: %d rows, schema %s", g.Len(), g.Schema)
	}
	// Balanced-ish partitions (25 nations round-robin over 4 sites: 7,6,6,6).
	for i, p := range d.Parts {
		if p.Len() == 0 {
			t.Errorf("site %d empty", i)
		}
	}
	if _, err := Generate(smallConfig(), 0); err == nil {
		t.Error("zero sites must error")
	}
	c := smallConfig()
	c.Rows = 0
	if _, err := Generate(c, 2); err == nil {
		t.Error("invalid config must error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1, _ := Generate(smallConfig(), 4)
	d2, _ := Generate(smallConfig(), 4)
	if !d1.Global().EqualMultiset(d2.Global()) {
		t.Error("same seed must generate identical data")
	}
	c := smallConfig()
	c.Seed = 8
	d3, _ := Generate(c, 4)
	if d1.Global().EqualMultiset(d3.Global()) {
		t.Error("different seeds should differ")
	}
}

// The functional dependencies the distribution knowledge declares must hold
// in the data: CustName→CustKey→NationKey and CityKey→NationKey.
func TestFunctionalDependencies(t *testing.T) {
	d, _ := Generate(smallConfig(), 4)
	g := d.Global()
	s := g.Schema
	ck, cn, nk, city := s.MustIndex("CustKey"), s.MustIndex("CustName"), s.MustIndex("NationKey"), s.MustIndex("CityKey")
	custNation := map[int64]int64{}
	cityNation := map[int64]int64{}
	for _, row := range g.Tuples {
		if CustKeyOfName(row[cn].Str) != row[ck].Int {
			t.Fatalf("CustName %q does not encode CustKey %d", row[cn].Str, row[ck].Int)
		}
		if prev, ok := custNation[row[ck].Int]; ok && prev != row[nk].Int {
			t.Fatalf("CustKey %d maps to nations %d and %d", row[ck].Int, prev, row[nk].Int)
		}
		custNation[row[ck].Int] = row[nk].Int
		if prev, ok := cityNation[row[city].Int]; ok && prev != row[nk].Int {
			t.Fatalf("CityKey %d maps to nations %d and %d", row[city].Int, prev, row[nk].Int)
		}
		cityNation[row[city].Int] = row[nk].Int
	}
}

// Every partition's rows must satisfy the declared per-site filters — the
// precondition for Thm. 4 optimizations to be sound.
func TestPartitionsMatchDistribution(t *testing.T) {
	d, _ := Generate(smallConfig(), 4)
	dist, err := d.Distribution(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.Validate(); err != nil {
		t.Fatalf("distribution invalid: %v", err)
	}
	for site, part := range d.Parts {
		if err := dist.CheckData(site, part); err != nil {
			t.Errorf("site %d violates filters: %v", site, err)
		}
	}
	// All four aligned attributes are partition attributes.
	pa := dist.PartitionAttrs()
	for _, want := range []string{"NationKey", "CustKey", "CustName", "CityKey"} {
		if _, ok := pa[want]; !ok {
			t.Errorf("missing partition attribute %q", want)
		}
	}
	if _, ok := pa["Clerk"]; ok {
		t.Error("Clerk must not be a partition attribute")
	}
}

func TestSubCluster(t *testing.T) {
	d, _ := Generate(smallConfig(), 8)
	sub := d.SubGlobal(3)
	want := d.Parts[0].Len() + d.Parts[1].Len() + d.Parts[2].Len()
	if sub.Len() != want {
		t.Errorf("SubGlobal(3) = %d rows, want %d", sub.Len(), want)
	}
	dist, err := d.Distribution(3)
	if err != nil || dist.NumSites != 3 {
		t.Errorf("Distribution(3): %v %v", dist, err)
	}
	if _, err := d.Distribution(0); err == nil {
		t.Error("Distribution(0) must error")
	}
	if _, err := d.Distribution(9); err == nil {
		t.Error("Distribution(9) must error")
	}
	if _, err := d.Catalog(3); err != nil {
		t.Errorf("Catalog: %v", err)
	}
	if _, err := d.Catalog(99); err == nil {
		t.Error("Catalog out of range must error")
	}
}

func TestCustNameRoundTrip(t *testing.T) {
	if got := CustNameOf(123); got != "Customer#000000123" {
		t.Errorf("CustNameOf = %q", got)
	}
	if got := CustKeyOfName("Customer#000000123"); got != 123 {
		t.Errorf("CustKeyOfName = %d", got)
	}
	if CustKeyOfName("bogus") != -1 || CustKeyOfName("Customer#xx") != -1 {
		t.Error("malformed names must map to -1")
	}
}

func TestDerivedFilter(t *testing.T) {
	f := DerivedFilter{Site: 1, NumSites: 4, Nations: 25, From: FromCustKey}
	// CustKey 26 → nation 1 → site 1.
	if !f.Contains(relation.NewInt(26)) {
		t.Error("CustKey 26 must be at site 1")
	}
	if f.Contains(relation.NewInt(25)) { // nation 0 → site 0
		t.Error("CustKey 25 must not be at site 1")
	}
	if f.Contains(relation.NewString("26")) {
		t.Error("wrong kind must be excluded")
	}
	nameF := DerivedFilter{Site: 1, NumSites: 4, Nations: 25, From: FromCustName}
	if !nameF.Contains(relation.NewString(CustNameOf(26))) {
		t.Error("name of CustKey 26 must be at site 1")
	}
	if nameF.Contains(relation.NewString("junk")) {
		t.Error("malformed name must be excluded")
	}
	cityF := DerivedFilter{Site: 1, NumSites: 4, Nations: 25, CitiesPerNation: 8, From: FromCityKey}
	if !cityF.Contains(relation.NewInt(8)) { // city 8 → nation 1
		t.Error("city 8 must be at site 1")
	}
	if cityF.Contains(relation.NewInt(0)) {
		t.Error("city 0 must not be at site 1")
	}
	if cityF.Contains(relation.NewInt(-1)) {
		t.Error("negative city must be excluded")
	}
	if _, _, ok := f.Bounds(); ok {
		t.Error("derived filters have no bounds")
	}
	// Disjointness proofs.
	other := f
	other.Site = 2
	if !f.DisjointWith(other) {
		t.Error("same mapping, different site must be disjoint")
	}
	if f.DisjointWith(f) {
		t.Error("same site is not disjoint with itself")
	}
	if f.DisjointWith(nameF) {
		t.Error("different mappings cannot be proven disjoint")
	}
	if f.String() == "" || FilterSource(99) == FromCustKey {
		t.Error("String/FilterSource sanity")
	}
}

func TestCardinalities(t *testing.T) {
	c := smallConfig()
	d, _ := Generate(c, 4)
	g := d.Global()
	s := g.Schema
	distinct := func(col string) int {
		r, err := g.DistinctProject([]string{col})
		if err != nil {
			t.Fatal(err)
		}
		return r.Len()
	}
	if n := distinct("NationKey"); n != c.Nations {
		t.Errorf("nations = %d, want %d", n, c.Nations)
	}
	if n := distinct("CustName"); n > c.Customers || n < c.Customers/2 {
		t.Errorf("customers = %d, config %d", n, c.Customers)
	}
	if n := distinct("Clerk"); n > c.Clerks || n < c.Clerks/2 {
		t.Errorf("clerks = %d, config %d", n, c.Clerks)
	}
	maxCities := c.Nations * c.CitiesPerNation
	if n := distinct("CityKey"); n > maxCities {
		t.Errorf("cities = %d, max %d", n, maxCities)
	}
	// Measures are sane.
	qi, pi := s.MustIndex("Quantity"), s.MustIndex("ExtendedPrice")
	for _, row := range g.Tuples[:100] {
		if row[qi].Int < 1 || row[qi].Int > 50 {
			t.Fatalf("Quantity out of range: %v", row[qi])
		}
		if row[pi].Float <= 0 {
			t.Fatalf("ExtendedPrice non-positive: %v", row[pi])
		}
	}
}
