// Package egil is the Skalla query front end, named after the paper's GMDJ
// query optimizer (Sect. 3.2: "the Skalla query engine uses Egil, a GMDJ
// query optimizer, to translate the OLAP query into GMDJ expressions"). It
// parses a small SQL-style OLAP dialect and translates it into the complex
// GMDJ expressions the distributed engine executes:
//
//	SELECT SourceAS, DestAS, COUNT(*) AS cnt, AVG(NumBytes) AS avgBytes
//	FROM Flow
//	WHERE NumBytes > 0
//	GROUP BY SourceAS, DestAS
//
// GROUP BY may be replaced by CUBE BY or ROLLUP BY (Gray et al.'s operators,
// translated through grouping sets), and a trailing
//
//	HAVING EACH <condition>
//
// clause adds a second, correlated GMDJ operator counting the detail rows
// that satisfy the condition per group (the condition may reference the
// SELECT aliases, e.g. HAVING EACH NumBytes >= avgBytes — the paper's
// Example 1 shape). Bare identifiers in WHERE and HAVING EACH refer to
// detail columns; aliases of selected aggregates refer to the group's
// aggregates.
package egil

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/olap"
	"skalla/internal/relation"
)

// GroupKind distinguishes the grouping clause.
type GroupKind uint8

const (
	// GroupBy is plain GROUP BY.
	GroupBy GroupKind = iota
	// CubeBy is CUBE BY (all 2^n grouping sets).
	CubeBy
	// RollupBy is ROLLUP BY (prefix grouping sets).
	RollupBy
)

// Statement is a parsed OLAP statement.
type Statement struct {
	Detail     string
	Dims       []string // selected plain columns == grouping columns
	Aggs       []agg.Spec
	Where      string // raw condition text (bare identifiers = detail columns)
	Group      GroupKind
	GroupCols  []string
	HavingEach string // raw condition text for the correlated second operator
	OrderBy    string // result column for client-side ordering ("" = none)
	OrderDesc  bool
	Limit      int // max result rows after ordering (0 = all)
}

// Translate parses the statement text and produces the GMDJ expression.
func Translate(input string) (gmdj.Query, error) {
	st, err := ParseStatement(input)
	if err != nil {
		return gmdj.Query{}, err
	}
	return st.ToQuery()
}

// ParseStatement parses the SQL-style dialect into a Statement.
func ParseStatement(input string) (*Statement, error) {
	clauses, err := splitClauses(input)
	if err != nil {
		return nil, err
	}
	st := &Statement{}
	sel, ok := clauses["select"]
	if !ok {
		return nil, fmt.Errorf("egil: missing SELECT")
	}
	from, ok := clauses["from"]
	if !ok {
		return nil, fmt.Errorf("egil: missing FROM")
	}
	st.Detail = strings.TrimSpace(from)
	if st.Detail == "" || strings.ContainsAny(st.Detail, " \t") {
		return nil, fmt.Errorf("egil: FROM needs exactly one relation name, got %q", from)
	}
	if err := st.parseSelectList(sel); err != nil {
		return nil, err
	}
	st.Where = strings.TrimSpace(clauses["where"])
	st.HavingEach = strings.TrimSpace(clauses["having each"])
	if ob, ok := clauses["order by"]; ok {
		fields := strings.Fields(ob)
		switch {
		case len(fields) == 1:
			st.OrderBy = fields[0]
		case len(fields) == 2 && strings.EqualFold(fields[1], "desc"):
			st.OrderBy, st.OrderDesc = fields[0], true
		case len(fields) == 2 && strings.EqualFold(fields[1], "asc"):
			st.OrderBy = fields[0]
		default:
			return nil, fmt.Errorf("egil: ORDER BY takes one column with optional ASC/DESC, got %q", ob)
		}
	}
	if lim, ok := clauses["limit"]; ok {
		n, err := strconv.Atoi(strings.TrimSpace(lim))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("egil: LIMIT needs a positive integer, got %q", lim)
		}
		st.Limit = n
	}

	groupClauses := 0
	if g, ok := clauses["group by"]; ok {
		st.Group, st.GroupCols = GroupBy, splitNames(g)
		groupClauses++
	}
	if g, ok := clauses["cube by"]; ok {
		st.Group, st.GroupCols = CubeBy, splitNames(g)
		groupClauses++
	}
	if g, ok := clauses["rollup by"]; ok {
		st.Group, st.GroupCols = RollupBy, splitNames(g)
		groupClauses++
	}
	if groupClauses != 1 {
		return nil, fmt.Errorf("egil: exactly one of GROUP BY / CUBE BY / ROLLUP BY is required")
	}
	if len(st.GroupCols) == 0 {
		return nil, fmt.Errorf("egil: empty grouping column list")
	}
	// Every selected plain column must be a grouping column, and vice versa
	// (SQL's GROUP BY discipline; the dims drive the base-values relation).
	if err := sameNameSet(st.Dims, st.GroupCols); err != nil {
		return nil, err
	}
	return st, nil
}

// Postprocess applies the statement's client-side clauses (ORDER BY, LIMIT)
// to an executed result relation, in place. The coordinator applies it after
// distributed evaluation — ordering and truncation are presentation, not
// part of the GMDJ algebra.
func (st *Statement) Postprocess(rel *relation.Relation) error {
	if st.OrderBy != "" {
		idx := rel.Schema.Index(st.OrderBy)
		if idx < 0 {
			return fmt.Errorf("egil: ORDER BY column %q not in result %s", st.OrderBy, rel.Schema)
		}
		sort.SliceStable(rel.Tuples, func(i, j int) bool {
			a, b := rel.Tuples[i][idx], rel.Tuples[j][idx]
			c, ok := a.Compare(b)
			if !ok {
				// NULLs (and incomparables) sort first ascending, last descending.
				c = 0
				if a.IsNull() && !b.IsNull() {
					c = -1
				} else if !a.IsNull() && b.IsNull() {
					c = 1
				}
			}
			if st.OrderDesc {
				return c > 0
			}
			return c < 0
		})
	}
	if st.Limit > 0 && rel.Len() > st.Limit {
		rel.Tuples = rel.Tuples[:st.Limit]
	}
	return nil
}

// ToQuery translates the statement into a complex GMDJ expression.
func (st *Statement) ToQuery() (gmdj.Query, error) {
	if len(st.Aggs) == 0 {
		return gmdj.Query{}, fmt.Errorf("egil: SELECT needs at least one aggregate")
	}
	var q gmdj.Query
	var err error
	switch st.Group {
	case GroupBy:
		conjuncts := make([]expr.Expr, len(st.GroupCols))
		for i, c := range st.GroupCols {
			conjuncts[i] = expr.Eq(expr.C(expr.SideBase, c), expr.C(expr.SideDetail, c))
		}
		q = gmdj.Query{
			Base: gmdj.BaseQuery{Detail: st.Detail, Cols: st.GroupCols},
			Ops: []gmdj.Operator{{Detail: st.Detail, Vars: []gmdj.GroupVar{{
				Aggs: st.Aggs,
				Cond: expr.And(conjuncts...),
			}}}},
		}
	case CubeBy:
		q, err = olap.CubeQuery(st.Detail, st.GroupCols, st.Aggs)
	case RollupBy:
		q, err = olap.RollupQuery(st.Detail, st.GroupCols, st.Aggs)
	}
	if err != nil {
		return gmdj.Query{}, err
	}
	if st.Where != "" {
		w, err := expr.ParseDefaultSide(st.Where, expr.SideDetail)
		if err != nil {
			return gmdj.Query{}, fmt.Errorf("egil: WHERE: %w", err)
		}
		if expr.ReferencesBase(w) {
			return gmdj.Query{}, fmt.Errorf("egil: WHERE may only reference detail columns")
		}
		q.Base.Where = w
	}
	if st.HavingEach != "" {
		if st.Group != GroupBy {
			return gmdj.Query{}, fmt.Errorf("egil: HAVING EACH requires GROUP BY")
		}
		cond, err := st.havingCond()
		if err != nil {
			return gmdj.Query{}, err
		}
		q.Ops = append(q.Ops, gmdj.Operator{Detail: st.Detail, Vars: []gmdj.GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "matching"}},
			Cond: cond,
		}}})
	}
	return q, nil
}

// havingCond builds the correlated second operator's condition: the group
// linkage conjuncts plus the user condition, in which bare identifiers
// resolve to detail columns except the SELECT aliases, which resolve to the
// base side (the group's aggregates).
func (st *Statement) havingCond() (expr.Expr, error) {
	raw, err := expr.ParseDefaultSide(st.HavingEach, expr.SideDetail)
	if err != nil {
		return nil, fmt.Errorf("egil: HAVING EACH: %w", err)
	}
	aliases := make(map[string]struct{}, len(st.Aggs))
	for _, a := range st.Aggs {
		aliases[a.As] = struct{}{}
	}
	user := rewriteAliases(raw, aliases)
	conjuncts := make([]expr.Expr, 0, len(st.GroupCols)+1)
	for _, c := range st.GroupCols {
		conjuncts = append(conjuncts, expr.Eq(expr.C(expr.SideBase, c), expr.C(expr.SideDetail, c)))
	}
	conjuncts = append(conjuncts, user)
	return expr.And(conjuncts...), nil
}

// rewriteAliases flips detail-side references whose names are aggregate
// aliases to the base side.
func rewriteAliases(e expr.Expr, aliases map[string]struct{}) expr.Expr {
	switch n := e.(type) {
	case *expr.Col:
		if n.Side == expr.SideDetail {
			if _, ok := aliases[n.Name]; ok {
				return expr.C(expr.SideBase, n.Name)
			}
		}
		return n
	case *expr.Bin:
		return expr.B2(n.Op, rewriteAliases(n.L, aliases), rewriteAliases(n.R, aliases))
	case *expr.Un:
		return &expr.Un{Op: n.Op, X: rewriteAliases(n.X, aliases)}
	default:
		return e
	}
}

// parseSelectList splits the SELECT list into plain dimension columns and
// aggregate specs.
func (st *Statement) parseSelectList(sel string) error {
	items, err := splitTopLevel(sel, ',')
	if err != nil {
		return err
	}
	autoName := 0
	for _, item := range items {
		item = strings.TrimSpace(item)
		if item == "" {
			return fmt.Errorf("egil: empty SELECT item")
		}
		if !strings.Contains(item, "(") {
			if strings.ContainsAny(item, " \t") {
				return fmt.Errorf("egil: SELECT item %q: plain columns take no alias", item)
			}
			st.Dims = append(st.Dims, item)
			continue
		}
		spec, err := parseAggItem(item, &autoName)
		if err != nil {
			return err
		}
		st.Aggs = append(st.Aggs, spec)
	}
	return nil
}

var aggFuncs = map[string]agg.Func{
	"count": agg.Count, "sum": agg.Sum, "avg": agg.Avg, "min": agg.Min, "max": agg.Max,
	"variance": agg.Variance, "stdev": agg.StdDev,
}

func parseAggItem(item string, autoName *int) (agg.Spec, error) {
	open := strings.Index(item, "(")
	closing := strings.LastIndex(item, ")")
	if open < 0 || closing < open {
		return agg.Spec{}, fmt.Errorf("egil: malformed aggregate %q", item)
	}
	fn, ok := aggFuncs[strings.ToLower(strings.TrimSpace(item[:open]))]
	if !ok {
		return agg.Spec{}, fmt.Errorf("egil: unknown aggregate function in %q", item)
	}
	arg := strings.TrimSpace(item[open+1 : closing])
	if arg == "*" {
		if fn != agg.Count {
			return agg.Spec{}, fmt.Errorf("egil: only COUNT accepts * (%q)", item)
		}
		arg = ""
	} else if arg == "" || strings.ContainsAny(arg, " \t(,") {
		return agg.Spec{}, fmt.Errorf("egil: aggregate argument must be a single column (%q)", item)
	}
	rest := strings.TrimSpace(item[closing+1:])
	name := ""
	if rest != "" {
		fields := strings.Fields(rest)
		if len(fields) != 2 || !strings.EqualFold(fields[0], "as") {
			return agg.Spec{}, fmt.Errorf("egil: expected AS <alias> after aggregate (%q)", item)
		}
		name = fields[1]
	} else {
		*autoName++
		base := strings.ToLower(fnName(fn))
		if arg != "" {
			name = fmt.Sprintf("%s_%s", base, arg)
		} else {
			name = fmt.Sprintf("%s_%d", base, *autoName)
		}
	}
	return agg.Spec{Func: fn, Arg: arg, As: name}, nil
}

func fnName(f agg.Func) string {
	switch f {
	case agg.Count:
		return "count"
	case agg.Sum:
		return "sum"
	case agg.Avg:
		return "avg"
	case agg.Min:
		return "min"
	case agg.Max:
		return "max"
	case agg.Variance:
		return "variance"
	default:
		return "stdev"
	}
}

// clause keywords, longest first so "group by" wins over bare scanning.
var clauseKeywords = []string{"select", "from", "where", "group by", "cube by", "rollup by", "having each", "order by", "limit"}

// splitClauses slices the input at top-level clause keywords
// (case-insensitive, whitespace-normalized). Keywords inside parentheses or
// quotes do not split.
func splitClauses(input string) (map[string]string, error) {
	norm := normalizeSpace(input)
	type hit struct {
		kw  string
		pos int
		end int
	}
	var hits []hit
	lower := strings.ToLower(norm)
	depth := 0
	inStr := false
	for i := 0; i < len(lower); i++ {
		switch lower[i] {
		case '\'':
			inStr = !inStr
			continue
		case '(':
			if !inStr {
				depth++
			}
			continue
		case ')':
			if !inStr {
				depth--
			}
			continue
		}
		if inStr || depth != 0 {
			continue
		}
		if i > 0 && lower[i-1] != ' ' {
			continue // keyword must start at a word boundary
		}
		for _, kw := range clauseKeywords {
			if strings.HasPrefix(lower[i:], kw) {
				end := i + len(kw)
				if end < len(lower) && lower[end] != ' ' {
					continue // identifier prefix like "fromage"
				}
				hits = append(hits, hit{kw: kw, pos: i, end: end})
				i = end - 1
				break
			}
		}
	}
	if len(hits) == 0 || hits[0].kw != "select" || hits[0].pos != 0 {
		return nil, fmt.Errorf("egil: statement must start with SELECT")
	}
	out := make(map[string]string, len(hits))
	for i, h := range hits {
		stop := len(norm)
		if i+1 < len(hits) {
			stop = hits[i+1].pos
		}
		if _, dup := out[h.kw]; dup {
			return nil, fmt.Errorf("egil: duplicate %s clause", strings.ToUpper(h.kw))
		}
		out[h.kw] = strings.TrimSpace(norm[h.end:stop])
	}
	return out, nil
}

func normalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// splitTopLevel splits on sep outside parentheses and quotes.
func splitTopLevel(s string, sep byte) ([]string, error) {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
				if depth < 0 {
					return nil, fmt.Errorf("egil: unbalanced parentheses in %q", s)
				}
			}
		case sep:
			if !inStr && depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 || inStr {
		return nil, fmt.Errorf("egil: unbalanced parentheses or quotes in %q", s)
	}
	out = append(out, s[start:])
	return out, nil
}

func splitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func sameNameSet(a, b []string) error {
	as := make(map[string]struct{}, len(a))
	for _, x := range a {
		as[x] = struct{}{}
	}
	bs := make(map[string]struct{}, len(b))
	for _, x := range b {
		bs[x] = struct{}{}
	}
	for x := range as {
		if _, ok := bs[x]; !ok {
			return fmt.Errorf("egil: selected column %q is not in the grouping clause", x)
		}
	}
	for x := range bs {
		if _, ok := as[x]; !ok {
			return fmt.Errorf("egil: grouping column %q is not selected", x)
		}
	}
	return nil
}
