package egil

import (
	"strings"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

func flowData() gmdj.Data {
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: relation.KindInt},
		relation.Column{Name: "DestAS", Kind: relation.KindInt},
		relation.Column{Name: "NumBytes", Kind: relation.KindInt},
	))
	rows := [][3]int64{
		{1, 1, 10}, {1, 1, 20}, {1, 1, 30},
		{1, 2, 5},
		{2, 1, 7}, {2, 1, 9},
	}
	for _, x := range rows {
		r.MustAppend(relation.Tuple{relation.NewInt(x[0]), relation.NewInt(x[1]), relation.NewInt(x[2])})
	}
	return gmdj.Data{"Flow": r}
}

func TestTranslateGroupBy(t *testing.T) {
	q, err := Translate(`
		SELECT SourceAS, DestAS, COUNT(*) AS cnt, SUM(NumBytes) AS total
		FROM Flow
		GROUP BY SourceAS, DestAS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ops) != 1 || len(q.Base.Cols) != 2 {
		t.Fatalf("shape: %s", q)
	}
	res, err := gmdj.EvalCentral(q, flowData(), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("groups = %d\n%s", res.Len(), res)
	}
	ti := res.Schema.MustIndex("total")
	si := res.Schema.MustIndex("SourceAS")
	di := res.Schema.MustIndex("DestAS")
	for _, row := range res.Tuples {
		if row[si].Int == 1 && row[di].Int == 1 && row[ti].Int != 60 {
			t.Errorf("total(1,1) = %v", row[ti])
		}
	}
}

func TestTranslateWhere(t *testing.T) {
	q, err := Translate(`
		SELECT SourceAS, COUNT(*) AS cnt
		FROM Flow WHERE NumBytes > 6
		GROUP BY SourceAS`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gmdj.EvalCentral(q, flowData(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Base values: SourceAS with NumBytes>6 → 1 and 2; counts: per θ the
	// detail relation is unfiltered... no: the operator condition only links
	// the group, so all rows of the AS count. WHERE shapes the base values.
	if res.Len() != 2 {
		t.Fatalf("groups = %d\n%s", res.Len(), res)
	}
}

// HAVING EACH reproduces the paper's Example 1: the second operator counts
// detail rows above the group average.
func TestTranslateHavingEach(t *testing.T) {
	q, err := Translate(`
		SELECT SourceAS, DestAS, COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
		FROM Flow
		GROUP BY SourceAS, DestAS
		HAVING EACH NumBytes >= sum1 / cnt1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ops) != 2 {
		t.Fatalf("ops = %d", len(q.Ops))
	}
	res, err := gmdj.EvalCentral(q, flowData(), true)
	if err != nil {
		t.Fatal(err)
	}
	mi := res.Schema.MustIndex("matching")
	si, di := res.Schema.MustIndex("SourceAS"), res.Schema.MustIndex("DestAS")
	want := map[[2]int64]int64{{1, 1}: 2, {1, 2}: 1, {2, 1}: 1}
	for _, row := range res.Tuples {
		key := [2]int64{row[si].Int, row[di].Int}
		if row[mi].Int != want[key] {
			t.Errorf("matching%v = %v, want %d", key, row[mi], want[key])
		}
	}
}

func TestTranslateCubeAndRollup(t *testing.T) {
	q, err := Translate(`SELECT SourceAS, DestAS, COUNT(*) AS n FROM Flow CUBE BY SourceAS, DestAS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Base.GroupingSets) != 4 {
		t.Errorf("cube sets = %d", len(q.Base.GroupingSets))
	}
	res, err := gmdj.EvalCentral(q, flowData(), true)
	if err != nil {
		t.Fatal(err)
	}
	// 3 leaves + 2 SourceAS rollups + 2 DestAS rollups + total = 8.
	if res.Len() != 8 {
		t.Fatalf("cube cells = %d\n%s", res.Len(), res)
	}

	q, err = Translate(`SELECT SourceAS, COUNT(*) AS n FROM Flow ROLLUP BY SourceAS`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = gmdj.EvalCentral(q, flowData(), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // AS 1, AS 2, grand total
		t.Fatalf("rollup cells = %d\n%s", res.Len(), res)
	}
}

func TestAutoAliases(t *testing.T) {
	st, err := ParseStatement(`SELECT SourceAS, COUNT(*), SUM(NumBytes), AVG(NumBytes) FROM Flow GROUP BY SourceAS`)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{st.Aggs[0].As, st.Aggs[1].As, st.Aggs[2].As}
	want := []string{"count_1", "sum_NumBytes", "avg_NumBytes"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("auto alias %d = %q, want %q", i, names[i], want[i])
		}
	}
	if st.Aggs[0].Func != agg.Count {
		t.Error("func mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM Flow GROUP BY a",               // missing select
		"SELECT a, COUNT(*) AS c GROUP BY a", // missing from
		"SELECT a, COUNT(*) AS c FROM Flow",  // missing group
		"SELECT a, COUNT(*) AS c FROM Flow Extra GROUP BY a",            // two relations
		"SELECT a, b, COUNT(*) AS c FROM Flow GROUP BY a",               // b not grouped
		"SELECT a, COUNT(*) AS c FROM Flow GROUP BY a, b",               // b not selected
		"SELECT COUNT(*) AS c FROM Flow GROUP BY",                       // empty group list
		"SELECT a, FROB(x) AS f FROM Flow GROUP BY a",                   // unknown func
		"SELECT a, SUM(*) AS s FROM Flow GROUP BY a",                    // * for sum
		"SELECT a, COUNT(*) oops c FROM Flow GROUP BY a",                // bad alias clause
		"SELECT a alias, COUNT(*) AS c FROM Flow GROUP BY a",            // alias on plain column
		"SELECT a, COUNT(*) AS c FROM Flow GROUP BY a GROUP BY a",       // duplicate clause
		"SELECT a FROM Flow GROUP BY a",                                 // no aggregates
		"SELECT a, SUM(f(x)) AS s FROM Flow GROUP BY a",                 // nested call
		"SELECT a, COUNT(*) AS c FROM Flow WHERE (( GROUP BY a",         // bad where
		"SELECT a, COUNT(*) AS c FROM Flow CUBE BY a HAVING EACH x > c", // having on cube
		"SELECT a, COUNT(*) AS c FROM Flow GROUP BY a HAVING EACH ((",   // bad having
	}
	for _, src := range bad {
		if _, err := Translate(src); err == nil {
			t.Errorf("Translate(%q): expected error", src)
		}
	}
}

func TestWhereMustNotReferenceBase(t *testing.T) {
	if _, err := Translate(`SELECT a, COUNT(*) AS c FROM Flow WHERE B.a = 1 GROUP BY a`); err == nil {
		t.Error("base reference in WHERE must error")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q, err := Translate("select SourceAS, count(*) as n from Flow where NumBytes > 1 group by SourceAS")
	if err != nil {
		t.Fatal(err)
	}
	if q.Base.Where == nil || len(q.Ops) != 1 {
		t.Errorf("lowercase statement mis-parsed: %s", q)
	}
}

func TestKeywordInsideIdentifier(t *testing.T) {
	// "fromage" must not be split at "from".
	st, err := splitClauses("SELECT a, COUNT(*) AS fromage FROM Flow GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st["select"], "fromage") {
		t.Errorf("clauses = %v", st)
	}
}

func TestStatementValidatesAgainstSchema(t *testing.T) {
	q, err := Translate(`SELECT SourceAS, COUNT(*) AS c FROM Flow GROUP BY SourceAS`)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(flowData()); err != nil {
		t.Errorf("translated query invalid: %v", err)
	}
	// Unknown columns surface at validation, not translation.
	q2, err := Translate(`SELECT Nope, COUNT(*) AS c FROM Flow GROUP BY Nope`)
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Validate(flowData()); err == nil {
		t.Error("unknown column must fail validation")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	st, err := ParseStatement(`
		SELECT SourceAS, COUNT(*) AS n FROM Flow
		GROUP BY SourceAS ORDER BY n DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if st.OrderBy != "n" || !st.OrderDesc || st.Limit != 2 {
		t.Fatalf("clauses: %+v", st)
	}
	q, err := st.ToQuery()
	if err != nil {
		t.Fatal(err)
	}
	res, err := gmdj.EvalCentral(q, flowData(), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Postprocess(res); err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("limit: %d rows", res.Len())
	}
	ni := res.Schema.MustIndex("n")
	if res.Tuples[0][ni].Int < res.Tuples[1][ni].Int {
		t.Errorf("not descending: %v", res.Tuples)
	}
	// AS 1 has 4 flows, AS 2 has 2: top row must be AS 1 with n=4.
	if res.Tuples[0][ni].Int != 4 {
		t.Errorf("top n = %v, want 4", res.Tuples[0][ni])
	}
	// Ascending default.
	st2, _ := ParseStatement(`SELECT SourceAS, COUNT(*) AS n FROM Flow GROUP BY SourceAS ORDER BY n`)
	res2, _ := gmdj.EvalCentral(q, flowData(), true)
	if err := st2.Postprocess(res2); err != nil {
		t.Fatal(err)
	}
	if res2.Tuples[0][ni].Int != 2 {
		t.Errorf("ascending top = %v", res2.Tuples[0][ni])
	}
}

func TestOrderByErrors(t *testing.T) {
	bad := []string{
		"SELECT a, COUNT(*) AS c FROM Flow GROUP BY a ORDER BY",       // empty
		"SELECT a, COUNT(*) AS c FROM Flow GROUP BY a ORDER BY a b c", // junk
		"SELECT a, COUNT(*) AS c FROM Flow GROUP BY a LIMIT x",        // non-numeric
		"SELECT a, COUNT(*) AS c FROM Flow GROUP BY a LIMIT 0",        // non-positive
		"SELECT a, COUNT(*) AS c FROM Flow GROUP BY a LIMIT -3",       // negative
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q): expected error", src)
		}
	}
	// Postprocess with unknown order column errors.
	st, err := ParseStatement("SELECT SourceAS, COUNT(*) AS n FROM Flow GROUP BY SourceAS ORDER BY zz")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := st.ToQuery()
	res, _ := gmdj.EvalCentral(q, flowData(), true)
	if err := st.Postprocess(res); err == nil {
		t.Error("unknown ORDER BY column must error at postprocess")
	}
}

func TestVarianceThroughSQL(t *testing.T) {
	q, err := Translate(`SELECT SourceAS, STDEV(NumBytes) AS spread, VARIANCE(NumBytes) AS vr FROM Flow GROUP BY SourceAS`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gmdj.EvalCentral(q, flowData(), true)
	if err != nil {
		t.Fatal(err)
	}
	si := res.Schema.MustIndex("SourceAS")
	sp := res.Schema.MustIndex("spread")
	vr := res.Schema.MustIndex("vr")
	for _, row := range res.Tuples {
		if row[si].Int == 2 {
			// NB 7, 9: mean 8, variance 1, stddev 1.
			if row[vr].Float != 1 || row[sp].Float != 1 {
				t.Errorf("AS 2 variance/stddev = %v/%v, want 1/1", row[vr], row[sp])
			}
		}
	}
}
