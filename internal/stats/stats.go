// Package stats collects the cost components the paper's evaluation reports:
// bytes and groups (rows) transferred between the coordinator and the sites,
// per-round message counts, site computation time, coordinator computation
// time, and a deterministic network model that converts measured traffic into
// communication time so that response-time curves are reproducible.
package stats

import (
	"fmt"
	"strings"
	"time"

	"skalla/internal/obs"
)

// NetModel is a deterministic LAN cost model: each message pays a fixed
// latency plus size/bandwidth. The zero value means "free network" (pure
// computation timing).
type NetModel struct {
	LatencyPerMsg time.Duration
	BytesPerSec   float64
}

// DefaultLAN approximates the paper's late-90s testbed LAN: 1 ms per message
// and 10 MB/s effective bandwidth.
func DefaultLAN() NetModel {
	return NetModel{LatencyPerMsg: time.Millisecond, BytesPerSec: 10 << 20}
}

// Cost returns the modeled transfer time of one message of the given size.
func (m NetModel) Cost(bytes int) time.Duration {
	d := m.LatencyPerMsg
	if m.BytesPerSec > 0 {
		d += time.Duration(float64(bytes) / m.BytesPerSec * float64(time.Second))
	}
	return d
}

// Call records the measured cost of one coordinator→site→coordinator
// exchange: request and response sizes (bytes and rows) and the site-side
// computation time.
type Call struct {
	Site      int
	BytesDown int // request payload, coordinator → site
	BytesUp   int // response payload, site → coordinator
	RowsDown  int // base-structure rows shipped to the site
	RowsUp    int // sub-aggregate rows returned
	Compute   time.Duration
	// Start and Elapsed are the coordinator-observed wall-clock envelope of
	// the exchange, stamped by the transport; Attempt is the 1-based retry
	// attempt number from the call context.
	Start   time.Time
	Elapsed time.Duration
	Attempt int
	// Profile is the site-side cost breakdown returned in the response's
	// trailing Profile field (nil from pre-profiler peers).
	Profile *obs.SiteBreakdown
}

// RoundStat aggregates one evaluation round (one local-processing-then-
// synchronization step, Sect. 3.2).
type RoundStat struct {
	Name      string
	Calls     []Call
	CoordTime time.Duration // synchronization work at the coordinator
}

// BytesDown returns the round's total coordinator→sites bytes.
func (r *RoundStat) BytesDown() int {
	n := 0
	for _, c := range r.Calls {
		n += c.BytesDown
	}
	return n
}

// BytesUp returns the round's total sites→coordinator bytes.
func (r *RoundStat) BytesUp() int {
	n := 0
	for _, c := range r.Calls {
		n += c.BytesUp
	}
	return n
}

// RowsDown returns the round's total rows shipped to sites.
func (r *RoundStat) RowsDown() int {
	n := 0
	for _, c := range r.Calls {
		n += c.RowsDown
	}
	return n
}

// RowsUp returns the round's total rows returned by sites.
func (r *RoundStat) RowsUp() int {
	n := 0
	for _, c := range r.Calls {
		n += c.RowsUp
	}
	return n
}

// MaxSiteCompute returns the slowest site's computation time (sites work in
// parallel, so this is the round's compute contribution to response time).
func (r *RoundStat) MaxSiteCompute() time.Duration {
	var mx time.Duration
	for _, c := range r.Calls {
		if c.Compute > mx {
			mx = c.Compute
		}
	}
	return mx
}

// MaxSiteComm returns the slowest site's modeled communication time
// (request + response) under the network model.
func (r *RoundStat) MaxSiteComm(m NetModel) time.Duration {
	var mx time.Duration
	for _, c := range r.Calls {
		d := m.Cost(c.BytesDown) + m.Cost(c.BytesUp)
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Metrics is the full cost record of one distributed query evaluation.
type Metrics struct {
	Net    NetModel
	Rounds []RoundStat
}

// NewMetrics creates an empty metrics record under a network model.
func NewMetrics(net NetModel) *Metrics { return &Metrics{Net: net} }

// AddRound appends a completed round.
func (m *Metrics) AddRound(r RoundStat) { m.Rounds = append(m.Rounds, r) }

// NumRounds returns the number of synchronization rounds.
func (m *Metrics) NumRounds() int { return len(m.Rounds) }

// TotalBytes returns all bytes moved in both directions.
func (m *Metrics) TotalBytes() int { return m.TotalBytesDown() + m.TotalBytesUp() }

// TotalBytesDown returns coordinator→sites bytes across rounds.
func (m *Metrics) TotalBytesDown() int {
	n := 0
	for i := range m.Rounds {
		n += m.Rounds[i].BytesDown()
	}
	return n
}

// TotalBytesUp returns sites→coordinator bytes across rounds.
func (m *Metrics) TotalBytesUp() int {
	n := 0
	for i := range m.Rounds {
		n += m.Rounds[i].BytesUp()
	}
	return n
}

// TotalRows returns all base/sub-aggregate rows moved in both directions
// (the "groups transferred" unit of the paper's Sect. 5.2 analysis).
func (m *Metrics) TotalRows() int {
	n := 0
	for i := range m.Rounds {
		n += m.Rounds[i].RowsDown() + m.Rounds[i].RowsUp()
	}
	return n
}

// TotalMessages returns the number of site exchanges (one request + one
// response each).
func (m *Metrics) TotalMessages() int {
	n := 0
	for i := range m.Rounds {
		n += len(m.Rounds[i].Calls)
	}
	return n
}

// SiteTime returns the summed per-round maximum site computation time: the
// compute component of response time with sites running in parallel.
func (m *Metrics) SiteTime() time.Duration {
	var d time.Duration
	for i := range m.Rounds {
		d += m.Rounds[i].MaxSiteCompute()
	}
	return d
}

// SiteTimeTotal returns the total computation across all sites (work, not
// response time).
func (m *Metrics) SiteTimeTotal() time.Duration {
	var d time.Duration
	for i := range m.Rounds {
		for _, c := range m.Rounds[i].Calls {
			d += c.Compute
		}
	}
	return d
}

// CoordTime returns the coordinator's synchronization time across rounds.
func (m *Metrics) CoordTime() time.Duration {
	var d time.Duration
	for i := range m.Rounds {
		d += m.Rounds[i].CoordTime
	}
	return d
}

// CommTime returns the modeled communication component of response time:
// per round, the slowest site's request+response transfer.
func (m *Metrics) CommTime() time.Duration {
	var d time.Duration
	for i := range m.Rounds {
		d += m.Rounds[i].MaxSiteComm(m.Net)
	}
	return d
}

// ResponseTime is the modeled end-to-end query evaluation time: per round,
// communication and the slowest site run back-to-back, then the coordinator
// synchronizes. This is the quantity the paper's time figures plot.
func (m *Metrics) ResponseTime() time.Duration {
	return m.CommTime() + m.SiteTime() + m.CoordTime()
}

// String renders a per-round breakdown table.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %8s %12s %12s\n",
		"round", "bytesDown", "bytesUp", "rowsDn", "rowsUp", "siteMax", "coord")
	for i := range m.Rounds {
		r := &m.Rounds[i]
		fmt.Fprintf(&b, "%-14s %10d %10d %8d %8d %12s %12s\n",
			r.Name, r.BytesDown(), r.BytesUp(), r.RowsDown(), r.RowsUp(),
			r.MaxSiteCompute().Round(time.Microsecond), r.CoordTime.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "total: %d bytes, %d rows, %d msgs, response %s (site %s, coord %s, comm %s)\n",
		m.TotalBytes(), m.TotalRows(), m.TotalMessages(),
		m.ResponseTime().Round(time.Microsecond), m.SiteTime().Round(time.Microsecond),
		m.CoordTime().Round(time.Microsecond), m.CommTime().Round(time.Microsecond))
	return b.String()
}
