package stats

import (
	"testing"
	"time"
)

func TestSummaryEmpty(t *testing.T) {
	m := NewMetrics(NetModel{})
	s := m.Summary()
	if s.SiteCompute.Max != 0 || s.SyncMerge.P95 != 0 || s.CallBytesDown.P50 != 0 {
		t.Errorf("empty metrics summary not zero: %+v", s)
	}
}

func TestSummaryPercentiles(t *testing.T) {
	m := NewMetrics(NetModel{})
	// 100 calls with compute 1ms..100ms and bytes 10..1000 spread over two
	// rounds with coord times 5ms and 15ms.
	var calls1, calls2 []Call
	for i := 1; i <= 100; i++ {
		c := Call{
			Site:      i % 4,
			BytesDown: 10 * i,
			BytesUp:   7 * i,
			Compute:   time.Duration(i) * time.Millisecond,
		}
		if i <= 50 {
			calls1 = append(calls1, c)
		} else {
			calls2 = append(calls2, c)
		}
	}
	m.AddRound(RoundStat{Name: "base", Calls: calls1, CoordTime: 5 * time.Millisecond})
	m.AddRound(RoundStat{Name: "MD1", Calls: calls2, CoordTime: 15 * time.Millisecond})

	s := m.Summary()
	if s.SiteCompute.P50 != 50*time.Millisecond {
		t.Errorf("compute p50 = %v, want 50ms", s.SiteCompute.P50)
	}
	if s.SiteCompute.P95 != 95*time.Millisecond {
		t.Errorf("compute p95 = %v, want 95ms", s.SiteCompute.P95)
	}
	if s.SiteCompute.Max != 100*time.Millisecond {
		t.Errorf("compute max = %v, want 100ms", s.SiteCompute.Max)
	}
	// Two merge samples: nearest-rank p50 is the lower one, p95/max the upper.
	if s.SyncMerge.P50 != 5*time.Millisecond || s.SyncMerge.Max != 15*time.Millisecond {
		t.Errorf("merge summary = %+v", s.SyncMerge)
	}
	if s.CallBytesDown.P50 != 500 || s.CallBytesDown.Max != 1000 {
		t.Errorf("bytesDown summary = %+v", s.CallBytesDown)
	}
	if s.CallBytesUp.P95 != 7*95 || s.CallBytesUp.Max != 700 {
		t.Errorf("bytesUp summary = %+v", s.CallBytesUp)
	}
}

func TestSummarySingleSample(t *testing.T) {
	m := NewMetrics(NetModel{})
	m.AddRound(RoundStat{
		Name:      "base",
		Calls:     []Call{{Compute: 3 * time.Millisecond, BytesDown: 42, BytesUp: 24}},
		CoordTime: time.Millisecond,
	})
	s := m.Summary()
	if s.SiteCompute.P50 != 3*time.Millisecond || s.SiteCompute.P95 != 3*time.Millisecond || s.SiteCompute.Max != 3*time.Millisecond {
		t.Errorf("single-sample compute summary = %+v", s.SiteCompute)
	}
	if s.CallBytesDown.P50 != 42 || s.CallBytesUp.Max != 24 {
		t.Errorf("single-sample byte summaries = %+v %+v", s.CallBytesDown, s.CallBytesUp)
	}
}

func TestRank(t *testing.T) {
	// Nearest-rank: for n=100, p50 -> index 49 (the 50th value), p95 -> 94.
	cases := []struct {
		p    float64
		n    int
		want int
	}{
		{50, 100, 49}, {95, 100, 94}, {100, 100, 99},
		{50, 1, 0}, {95, 1, 0},
		{50, 2, 0}, {95, 2, 1},
		{50, 3, 1},
	}
	for _, c := range cases {
		if got := rank(c.p, c.n); got != c.want {
			t.Errorf("rank(%g, %d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}
