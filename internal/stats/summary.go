package stats

import (
	"sort"
	"time"
)

// DurationPercentiles summarizes a duration distribution with nearest-rank
// percentiles. Durations marshal as nanoseconds, matching the rest of the
// metrics JSON export.
type DurationPercentiles struct {
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	Max time.Duration `json:"max"`
}

// BytePercentiles summarizes a message-size distribution with nearest-rank
// percentiles.
type BytePercentiles struct {
	P50 int `json:"p50"`
	P95 int `json:"p95"`
	Max int `json:"max"`
}

// Summary condenses a query's per-call and per-round cost distributions to
// the percentile figures the benchmark export reports: site computation time
// per call, coordinator synchronization (merge) time per round, and message
// sizes per call in each direction.
type Summary struct {
	SiteCompute   DurationPercentiles `json:"siteCompute"`
	SyncMerge     DurationPercentiles `json:"syncMerge"`
	CallBytesDown BytePercentiles     `json:"callBytesDown"`
	CallBytesUp   BytePercentiles     `json:"callBytesUp"`
}

// Summary computes percentile summaries over the metrics' calls and rounds.
// Empty distributions summarize to zeros.
func (m *Metrics) Summary() Summary {
	var computes []time.Duration
	var merges []time.Duration
	var down, up []int
	for i := range m.Rounds {
		r := &m.Rounds[i]
		merges = append(merges, r.CoordTime)
		for _, c := range r.Calls {
			computes = append(computes, c.Compute)
			down = append(down, c.BytesDown)
			up = append(up, c.BytesUp)
		}
	}
	return Summary{
		SiteCompute:   durationPercentiles(computes),
		SyncMerge:     durationPercentiles(merges),
		CallBytesDown: bytePercentiles(down),
		CallBytesUp:   bytePercentiles(up),
	}
}

// rank returns the nearest-rank index of percentile p (0 < p ≤ 100) in a
// sorted sample of size n.
func rank(p float64, n int) int {
	i := int(float64(n)*p/100+0.9999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

func durationPercentiles(vals []time.Duration) DurationPercentiles {
	if len(vals) == 0 {
		return DurationPercentiles{}
	}
	sorted := append([]time.Duration{}, vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return DurationPercentiles{
		P50: sorted[rank(50, len(sorted))],
		P95: sorted[rank(95, len(sorted))],
		Max: sorted[len(sorted)-1],
	}
}

func bytePercentiles(vals []int) BytePercentiles {
	if len(vals) == 0 {
		return BytePercentiles{}
	}
	sorted := append([]int{}, vals...)
	sort.Ints(sorted)
	return BytePercentiles{
		P50: sorted[rank(50, len(sorted))],
		P95: sorted[rank(95, len(sorted))],
		Max: sorted[len(sorted)-1],
	}
}
