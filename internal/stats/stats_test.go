package stats

import (
	"strings"
	"testing"
	"time"
)

func sampleMetrics() *Metrics {
	m := NewMetrics(NetModel{LatencyPerMsg: time.Millisecond, BytesPerSec: 1 << 20})
	m.AddRound(RoundStat{
		Name: "base",
		Calls: []Call{
			{Site: 0, BytesDown: 100, BytesUp: 1 << 20, RowsDown: 0, RowsUp: 50, Compute: 3 * time.Millisecond},
			{Site: 1, BytesDown: 100, BytesUp: 2 << 20, RowsDown: 0, RowsUp: 70, Compute: 5 * time.Millisecond},
		},
		CoordTime: 2 * time.Millisecond,
	})
	m.AddRound(RoundStat{
		Name: "MD1",
		Calls: []Call{
			{Site: 0, BytesDown: 1 << 20, BytesUp: 512, RowsDown: 120, RowsUp: 40, Compute: 7 * time.Millisecond},
			{Site: 1, BytesDown: 1 << 20, BytesUp: 512, RowsDown: 120, RowsUp: 60, Compute: 4 * time.Millisecond},
		},
		CoordTime: 1 * time.Millisecond,
	})
	return m
}

func TestNetModelCost(t *testing.T) {
	m := NetModel{LatencyPerMsg: time.Millisecond, BytesPerSec: 1 << 20}
	if got := m.Cost(0); got != time.Millisecond {
		t.Errorf("Cost(0) = %v", got)
	}
	if got := m.Cost(1 << 20); got != time.Millisecond+time.Second {
		t.Errorf("Cost(1MiB) = %v", got)
	}
	var free NetModel
	if free.Cost(1<<30) != 0 {
		t.Error("zero model must be free")
	}
	lan := DefaultLAN()
	if lan.Cost(10<<20) <= lan.LatencyPerMsg {
		t.Error("DefaultLAN must charge for bandwidth")
	}
}

func TestTotals(t *testing.T) {
	m := sampleMetrics()
	if m.NumRounds() != 2 {
		t.Errorf("NumRounds = %d", m.NumRounds())
	}
	if got := m.TotalBytesDown(); got != 200+2<<20 {
		t.Errorf("TotalBytesDown = %d", got)
	}
	if got := m.TotalBytesUp(); got != 3<<20+1024 {
		t.Errorf("TotalBytesUp = %d", got)
	}
	if m.TotalBytes() != m.TotalBytesDown()+m.TotalBytesUp() {
		t.Error("TotalBytes inconsistent")
	}
	if got := m.TotalRows(); got != 50+70+240+100 {
		t.Errorf("TotalRows = %d", got)
	}
	if got := m.TotalMessages(); got != 4 {
		t.Errorf("TotalMessages = %d", got)
	}
}

func TestTimeComponents(t *testing.T) {
	m := sampleMetrics()
	if got := m.SiteTime(); got != 12*time.Millisecond { // max(3,5) + max(7,4)
		t.Errorf("SiteTime = %v", got)
	}
	if got := m.SiteTimeTotal(); got != 19*time.Millisecond {
		t.Errorf("SiteTimeTotal = %v", got)
	}
	if got := m.CoordTime(); got != 3*time.Millisecond {
		t.Errorf("CoordTime = %v", got)
	}
	// Round 1: slowest site comm = cost(100)+cost(2MiB) = 1ms + (1ms+2s).
	// Round 2: cost(1MiB)+cost(512) = (1ms+1s) + (1ms + 512/1MiB s).
	comm := m.CommTime()
	if comm <= 3*time.Second || comm >= 3200*time.Millisecond {
		t.Errorf("CommTime = %v, expected slightly above 3s", comm)
	}
	if m.ResponseTime() != comm+m.SiteTime()+m.CoordTime() {
		t.Error("ResponseTime must be the sum of its components")
	}
}

func TestRoundAccessors(t *testing.T) {
	m := sampleMetrics()
	r := &m.Rounds[0]
	if r.BytesDown() != 200 || r.BytesUp() != 3<<20 {
		t.Errorf("round bytes = %d/%d", r.BytesDown(), r.BytesUp())
	}
	if r.RowsDown() != 0 || r.RowsUp() != 120 {
		t.Errorf("round rows = %d/%d", r.RowsDown(), r.RowsUp())
	}
	if r.MaxSiteCompute() != 5*time.Millisecond {
		t.Errorf("MaxSiteCompute = %v", r.MaxSiteCompute())
	}
	if got := r.MaxSiteComm(m.Net); got <= 2*time.Second {
		t.Errorf("MaxSiteComm = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	s := sampleMetrics().String()
	for _, frag := range []string{"base", "MD1", "total:", "response"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q:\n%s", frag, s)
		}
	}
}

func TestEmptyMetrics(t *testing.T) {
	m := NewMetrics(NetModel{})
	if m.ResponseTime() != 0 || m.TotalBytes() != 0 || m.NumRounds() != 0 {
		t.Error("empty metrics must be zero")
	}
}
