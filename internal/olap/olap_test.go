package olap

import (
	"context"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/core"
	"skalla/internal/engine"
	"skalla/internal/gmdj"
	"skalla/internal/plan"
	"skalla/internal/relation"
	"skalla/internal/stats"
	"skalla/internal/transport"
)

// sales is a tiny fact relation with two dimensions and a measure.
func sales() *relation.Relation {
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "region", Kind: relation.KindString},
		relation.Column{Name: "product", Kind: relation.KindString},
		relation.Column{Name: "units", Kind: relation.KindInt},
	))
	rows := []struct {
		region, product string
		units           int64
	}{
		{"east", "pen", 10},
		{"east", "pen", 5},
		{"east", "ink", 7},
		{"west", "pen", 3},
		{"west", "ink", 2},
		{"west", "ink", 1},
	}
	for _, x := range rows {
		r.MustAppend(relation.Tuple{
			relation.NewString(x.region), relation.NewString(x.product), relation.NewInt(x.units),
		})
	}
	return r
}

func cubeAggs() []agg.Spec {
	return []agg.Spec{
		{Func: agg.Count, As: "n"},
		{Func: agg.Sum, Arg: "units", As: "total"},
	}
}

func lookup(t *testing.T, res *relation.Relation, region, product relation.Value) relation.Tuple {
	t.Helper()
	ri, pi := res.Schema.MustIndex("region"), res.Schema.MustIndex("product")
	for _, row := range res.Tuples {
		if row[ri].Equal(region) && row[pi].Equal(product) {
			return row
		}
	}
	t.Fatalf("no cube row for (%v, %v) in\n%s", region, product, res)
	return nil
}

func TestCubeCentralized(t *testing.T) {
	q, err := CubeQuery("Sales", []string{"region", "product"}, cubeAggs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := gmdj.EvalCentral(q, gmdj.Data{"Sales": sales()}, true)
	if err != nil {
		t.Fatal(err)
	}
	// 2 regions × 2 products + 2 region rollups + 2 product rollups + total.
	if res.Len() != 9 {
		t.Fatalf("cube rows = %d, want 9\n%s", res.Len(), res)
	}
	ni, ti := res.Schema.MustIndex("n"), res.Schema.MustIndex("total")
	check := func(region, product relation.Value, n, total int64) {
		row := lookup(t, res, region, product)
		if row[ni].Int != n || row[ti].Int != total {
			t.Errorf("(%v,%v): n=%v total=%v, want %d/%d", region, product, row[ni], row[ti], n, total)
		}
	}
	east, west := relation.NewString("east"), relation.NewString("west")
	pen, ink := relation.NewString("pen"), relation.NewString("ink")
	check(east, pen, 2, 15)
	check(east, ink, 1, 7)
	check(west, pen, 1, 3)
	check(west, ink, 2, 3)
	check(east, relation.Null, 3, 22) // region rollup
	check(west, relation.Null, 3, 6)
	check(relation.Null, pen, 3, 18) // product rollup
	check(relation.Null, ink, 3, 10)
	check(relation.Null, relation.Null, 6, 28) // grand total
}

func TestRollupCentralized(t *testing.T) {
	q, err := RollupQuery("Sales", []string{"region", "product"}, cubeAggs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := gmdj.EvalCentral(q, gmdj.Data{"Sales": sales()}, true)
	if err != nil {
		t.Fatal(err)
	}
	// 4 leaf groups + 2 region subtotals + 1 grand total (no product-only sets).
	if res.Len() != 7 {
		t.Fatalf("rollup rows = %d, want 7\n%s", res.Len(), res)
	}
	pi := res.Schema.MustIndex("product")
	ri := res.Schema.MustIndex("region")
	for _, row := range res.Tuples {
		if row[ri].IsNull() && !row[pi].IsNull() {
			t.Errorf("rollup must not contain product-only set: %v", row)
		}
	}
}

// The cube of a distributed warehouse must equal the centralized cube, for
// every optimization combination — the paper's uniform-expressibility claim
// carried through the distributed engine.
func TestCubeDistributed(t *testing.T) {
	q, err := CubeQuery("Sales", []string{"region", "product"}, cubeAggs())
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalCentral(q, gmdj.Data{"Sales": sales()}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Partition by region across 2 sites.
	global := sales()
	ri := global.Schema.MustIndex("region")
	sites := make([]transport.Site, 2)
	for i, region := range []string{"east", "west"} {
		es := engine.NewSite(i)
		part := global.Filter(func(tp relation.Tuple) bool { return tp[ri].Str == region })
		if err := es.Load(context.Background(), "Sales", part); err != nil {
			t.Fatal(err)
		}
		sites[i] = transport.NewLocalSite(es)
	}
	coord, err := core.New(sites, nil, stats.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []plan.Options{plan.None(), plan.All(), {GroupReduceSite: true}} {
		res, err := coord.Execute(context.Background(), q, opts)
		if err != nil {
			t.Fatalf("[%s]: %v", opts, err)
		}
		if !res.Rel.EqualMultiset(want) {
			got := res.Rel.Clone()
			got.Sort()
			exp := want.Clone()
			exp.Sort()
			t.Fatalf("[%s]: distributed cube mismatch\ngot:\n%s\nwant:\n%s", opts, got, exp)
		}
		// A single-operator cube is one GMDJ round plus the base round at
		// most (grouping sets defeat sync reduction by design).
		if res.Metrics.NumRounds() > 2 {
			t.Errorf("[%s]: cube took %d rounds", opts, res.Metrics.NumRounds())
		}
	}
}

func TestQueryBuilderErrors(t *testing.T) {
	aggs := cubeAggs()
	if _, err := GroupingSetsQuery("S", nil, [][]string{{}}, aggs); err == nil {
		t.Error("no dims must error")
	}
	if _, err := GroupingSetsQuery("S", []string{"a"}, nil, aggs); err == nil {
		t.Error("no sets must error")
	}
	if _, err := GroupingSetsQuery("S", []string{"a"}, [][]string{{}}, nil); err == nil {
		t.Error("no aggs must error")
	}
	if _, err := GroupingSetsQuery("S", []string{"a"}, [][]string{{"b"}}, aggs); err == nil {
		t.Error("set with non-dimension must error")
	}
	if _, err := CubeQuery("S", make([]string, 17), aggs); err == nil {
		t.Error("17-dimensional cube must error")
	}
}

func TestGroupingSetsValidation(t *testing.T) {
	q, err := GroupingSetsQuery("Sales", []string{"region", "product"},
		[][]string{{"region"}, {}}, cubeAggs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := gmdj.EvalCentral(q, gmdj.Data{"Sales": sales()}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // east, west, grand total
		t.Fatalf("grouping sets rows = %d, want 3\n%s", res.Len(), res)
	}
	// A set referencing an unknown base column fails validation.
	bad := q
	bad.Base.GroupingSets = [][]string{{"nope"}}
	if err := bad.Validate(gmdj.Data{"Sales": sales()}); err == nil {
		t.Error("invalid grouping set must fail validation")
	}
}

func TestUnpivotAndMarginals(t *testing.T) {
	up, err := Unpivot(sales(), []string{"region"}, []string{"product"})
	if err != nil {
		t.Fatal(err)
	}
	if up.Len() != 6 {
		t.Fatalf("unpivot rows = %d", up.Len())
	}
	if !up.Schema.Has("Attr") || !up.Schema.Has("Val") || !up.Schema.Has("region") {
		t.Fatalf("unpivot schema = %s", up.Schema)
	}
	// NULL values are skipped.
	withNull := sales()
	withNull.Tuples[0][1] = relation.Null
	up2, _ := Unpivot(withNull, nil, []string{"product"})
	if up2.Len() != 5 {
		t.Errorf("unpivot with NULL = %d rows, want 5", up2.Len())
	}
	// Unknown columns error.
	if _, err := Unpivot(sales(), []string{"zz"}, []string{"product"}); err != nil {
		// expected
	} else {
		t.Error("unknown keep column must error")
	}
	if _, err := Unpivot(sales(), nil, []string{"zz"}); err == nil {
		t.Error("unknown unpivot column must error")
	}

	// Marginal distribution over the unpivoted relation.
	q := MarginalsQuery("UP")
	res, err := gmdj.EvalCentral(q, gmdj.Data{"UP": up}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // (product, pen) and (product, ink)
		t.Fatalf("marginals = %d rows\n%s", res.Len(), res)
	}
	fi := res.Schema.MustIndex("freq")
	vi := res.Schema.MustIndex("Val")
	for _, row := range res.Tuples {
		if row[vi].Str == "pen" && row[fi].Int != 3 {
			t.Errorf("pen freq = %v", row[fi])
		}
		if row[vi].Str == "ink" && row[fi].Int != 3 {
			t.Errorf("ink freq = %v", row[fi])
		}
	}
}
