// Package olap builds GMDJ expressions for the higher-level OLAP constructs
// the paper cites as uniformly expressible through the GMDJ operator
// (Sect. 2.2): the data cube and rollup of Gray et al. [12] via grouping
// sets, and the unpivot operator of Graefe et al. [11] for marginal
// distributions. The constructed queries run unchanged on the distributed
// engine — the cube of a distributed warehouse costs one GMDJ round.
package olap

import (
	"fmt"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/gmdj"
	"skalla/internal/relation"
)

// rollCond builds the grouping-set condition over the dimensions:
//
//	(B.d1 IS NULL || B.d1 = R.d1) && … && (B.dn IS NULL || B.dn = R.dn)
//
// For a base row produced by grouping set S, the IS NULL disjunct
// short-circuits the dimensions outside S, so each detail row aggregates
// into every grouping-set row it rolls up to — exactly the cube semantics of
// Gray et al.'s ALL value.
func rollCond(dims []string) expr.Expr {
	conjuncts := make([]expr.Expr, len(dims))
	for i, d := range dims {
		conjuncts[i] = expr.Or(
			expr.IsNull(expr.C(expr.SideBase, d)),
			expr.Eq(expr.C(expr.SideBase, d), expr.C(expr.SideDetail, d)),
		)
	}
	return expr.And(conjuncts...)
}

// GroupingSetsQuery builds the GMDJ expression computing the given aggregate
// list per grouping set over the dimension columns.
func GroupingSetsQuery(detail string, dims []string, sets [][]string, aggs []agg.Spec) (gmdj.Query, error) {
	if len(dims) == 0 {
		return gmdj.Query{}, fmt.Errorf("olap: no dimensions")
	}
	if len(sets) == 0 {
		return gmdj.Query{}, fmt.Errorf("olap: no grouping sets")
	}
	if len(aggs) == 0 {
		return gmdj.Query{}, fmt.Errorf("olap: no aggregates")
	}
	dimSet := make(map[string]struct{}, len(dims))
	for _, d := range dims {
		dimSet[d] = struct{}{}
	}
	for si, set := range sets {
		for _, c := range set {
			if _, ok := dimSet[c]; !ok {
				return gmdj.Query{}, fmt.Errorf("olap: grouping set %d: %q is not a dimension", si, c)
			}
		}
	}
	return gmdj.Query{
		Base: gmdj.BaseQuery{Detail: detail, Cols: dims, GroupingSets: sets},
		Ops: []gmdj.Operator{{Detail: detail, Vars: []gmdj.GroupVar{{
			Aggs: aggs,
			Cond: rollCond(dims),
		}}}},
	}, nil
}

// CubeQuery builds the full data cube (CUBE BY of Gray et al. [12]): one
// grouping set per subset of the dimensions, 2^n sets in total.
func CubeQuery(detail string, dims []string, aggs []agg.Spec) (gmdj.Query, error) {
	if len(dims) > 16 {
		return gmdj.Query{}, fmt.Errorf("olap: cube over %d dimensions (max 16)", len(dims))
	}
	var sets [][]string
	for mask := 0; mask < 1<<len(dims); mask++ {
		var set []string
		for i, d := range dims {
			if mask&(1<<i) != 0 {
				set = append(set, d)
			}
		}
		sets = append(sets, set)
	}
	return GroupingSetsQuery(detail, dims, sets, aggs)
}

// RollupQuery builds the ROLLUP hierarchy: the grouping sets are the
// prefixes of dims, from the full list down to the grand total.
func RollupQuery(detail string, dims []string, aggs []agg.Spec) (gmdj.Query, error) {
	var sets [][]string
	for i := len(dims); i >= 0; i-- {
		sets = append(sets, append([]string{}, dims[:i]...))
	}
	return GroupingSetsQuery(detail, dims, sets, aggs)
}

// UnpivotSchema is the schema produced by Unpivot: the attribute name, its
// value (as a string, the common supertype), plus any carried-through key
// columns in front.
func UnpivotSchema(keep relation.Schema) relation.Schema {
	out := keep.Clone()
	out = append(out, relation.Column{Name: "Attr", Kind: relation.KindString})
	out = append(out, relation.Column{Name: "Val", Kind: relation.KindString})
	return out
}

// Unpivot implements the unpivot operator of Graefe et al. [11]: it turns
// the named columns of each row into (Attr, Val) pairs, carrying the keep
// columns through. Marginal-distribution extraction composes Unpivot with a
// COUNT-per-(Attr, Val) GMDJ; NULL values are skipped as in SQL UNPIVOT.
func Unpivot(r *relation.Relation, keep, cols []string) (*relation.Relation, error) {
	keepIdx, err := r.Schema.Indexes(keep)
	if err != nil {
		return nil, err
	}
	colIdx, err := r.Schema.Indexes(cols)
	if err != nil {
		return nil, err
	}
	out := relation.New(UnpivotSchema(r.Schema.Project(keepIdx)))
	for _, t := range r.Tuples {
		for ci, c := range colIdx {
			if t[c].IsNull() {
				continue
			}
			row := make(relation.Tuple, 0, len(keepIdx)+2)
			for _, k := range keepIdx {
				row = append(row, t[k])
			}
			row = append(row, relation.NewString(cols[ci]), relation.NewString(t[c].String()))
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

// MarginalsQuery builds the GMDJ expression computing the marginal
// distribution over an unpivoted relation: COUNT per (Attr, Val) pair. Run
// it against the relation produced by Unpivot (loaded at the sites under
// unpivotName).
func MarginalsQuery(unpivotName string) gmdj.Query {
	return gmdj.Query{
		Base: gmdj.BaseQuery{Detail: unpivotName, Cols: []string{"Attr", "Val"}},
		Ops: []gmdj.Operator{{Detail: unpivotName, Vars: []gmdj.GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "freq"}},
			Cond: expr.MustParse("B.Attr = R.Attr && B.Val = R.Val"),
		}}}},
	}
}
