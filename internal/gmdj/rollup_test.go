package gmdj

import (
	"math/rand"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/relation"
)

// The 2^n-probe cube fast path must agree exactly with the nested-loop
// evaluation of the same grouping-set query on randomized data.
func TestRollupFastPathMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		r := relation.New(relation.MustSchema(
			relation.Column{Name: "a", Kind: relation.KindInt},
			relation.Column{Name: "b", Kind: relation.KindInt},
			relation.Column{Name: "v", Kind: relation.KindInt},
		))
		for i := 0; i < 40+rng.Intn(60); i++ {
			r.MustAppend(relation.Tuple{
				relation.NewInt(rng.Int63n(4)),
				relation.NewInt(rng.Int63n(3)),
				relation.NewInt(rng.Int63n(50)),
			})
		}
		// A full cube over (a, b), with an extra residual predicate on half
		// the trials to exercise the verify step of the fast path.
		cond := "(B.a IS NULL || B.a = R.a) && (B.b IS NULL || B.b = R.b)"
		if trial%2 == 1 {
			cond += " && R.v > 20"
		}
		q := Query{
			Base: BaseQuery{
				Detail:       "T",
				Cols:         []string{"a", "b"},
				GroupingSets: [][]string{{"a", "b"}, {"a"}, {"b"}, {}},
			},
			Ops: []Operator{{Detail: "T", Vars: []GroupVar{{
				Aggs: []agg.Spec{
					{Func: agg.Count, As: "n"},
					{Func: agg.Sum, Arg: "v", As: "s"},
					{Func: agg.Min, Arg: "v", As: "mn"},
				},
				Cond: expr.MustParse(cond),
			}}}},
		}
		src := Data{"T": r}
		fast, err := EvalCentral(q, src, true)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := EvalCentral(q, src, false)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.EqualMultiset(slow) {
			fast.Sort()
			slow.Sort()
			t.Fatalf("trial %d: fast path diverges\nfast:\n%s\nslow:\n%s", trial, fast, slow)
		}
	}
}

// Detail rows with NULL dimension values conflate with rollup rows under
// Gray et al.'s ALL encoding; both paths must agree on that behaviour too.
func TestRollupFastPathWithNullData(t *testing.T) {
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	r.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewInt(10)})
	r.MustAppend(relation.Tuple{relation.Null, relation.NewInt(20)})
	q := Query{
		Base: BaseQuery{Detail: "T", Cols: []string{"a"}, GroupingSets: [][]string{{"a"}, {}}},
		Ops: []Operator{{Detail: "T", Vars: []GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "n"}},
			Cond: expr.MustParse("B.a IS NULL || B.a = R.a"),
		}}}},
	}
	src := Data{"T": r}
	fast, err := EvalCentral(q, src, true)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := EvalCentral(q, src, false)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.EqualMultiset(slow) {
		t.Fatalf("NULL-data divergence:\n%s\nvs\n%s", fast, slow)
	}
	// The NULL group (which is both the rollup row and the data's own NULL
	// value) counts every row: the rollup semantics of ALL.
	ai, ni := fast.Schema.MustIndex("a"), fast.Schema.MustIndex("n")
	for _, row := range fast.Tuples {
		if row[ai].IsNull() && row[ni].Int != 2 {
			t.Errorf("NULL group count = %v, want 2", row[ni])
		}
	}
}
