package gmdj

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/relation"
)

// skewedFlows builds a detail relation with deliberately skewed group keys:
// frac of the rows land on (1,1), the rest spread over groups cardinality
// distinct keys. Values are integers, so every aggregate is exact and the
// parallel/sequential comparison can demand byte identity.
func skewedFlows(seed int64, rows, groups int, frac float64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "SAS", Kind: relation.KindInt},
		relation.Column{Name: "DAS", Kind: relation.KindInt},
		relation.Column{Name: "NB", Kind: relation.KindInt},
	))
	for i := 0; i < rows; i++ {
		sas, das := int64(1), int64(1)
		if rng.Float64() >= frac {
			sas = int64(rng.Intn(groups) + 1)
			das = int64(rng.Intn(4) + 1)
		}
		r.MustAppend(relation.Tuple{
			relation.NewInt(sas), relation.NewInt(das),
			relation.NewInt(int64(rng.Intn(1000))),
		})
	}
	return r
}

func TestRelSourceSplit(t *testing.T) {
	rel := skewedFlows(1, 100, 10, 0)
	src := SourceOf(rel)
	ss, ok := src.(SplittableSource)
	if !ok {
		t.Fatal("relSource does not implement SplittableSource")
	}
	for _, n := range []int{2, 3, 7, 100, 1000} {
		shards := ss.Split(n)
		if len(shards) == 0 {
			t.Fatalf("Split(%d) declined on %d rows", n, rel.Len())
		}
		var got []relation.Tuple
		total := 0
		for _, sh := range shards {
			total += sh.Len()
			if err := sh.Scan(func(tp relation.Tuple) error {
				got = append(got, tp)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if total != rel.Len() || len(got) != rel.Len() {
			t.Fatalf("Split(%d): %d rows across shards, want %d", n, len(got), rel.Len())
		}
		for i, tp := range got {
			if &tp[0] != &rel.Tuples[i][0] {
				t.Fatalf("Split(%d): shard concatenation reorders rows at %d", n, i)
			}
		}
	}
	if ss.Split(1) != nil {
		t.Error("Split(1) should decline")
	}
}

func TestResolveWorkers(t *testing.T) {
	maxProcs := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, rows, want int
	}{
		{1, 1 << 20, 1},              // explicit sequential
		{0, 10, 1},                   // auto: too small to shard
		{0, minAutoShardRows - 1, 1}, // auto: still one shard's worth
		{4, 100, 4},                  // explicit honored
		{7, 3, 3},                    // capped by rows
		{4, 0, 1},                    // empty source
	}
	for _, c := range cases {
		if got := resolveWorkers(c.workers, c.rows); got != c.want {
			t.Errorf("resolveWorkers(%d, %d) = %d, want %d", c.workers, c.rows, got, c.want)
		}
	}
	// Auto on a big source saturates at GOMAXPROCS.
	if got := resolveWorkers(0, minAutoShardRows*maxProcs*4); got != maxProcs {
		t.Errorf("resolveWorkers(0, big) = %d, want GOMAXPROCS=%d", got, maxProcs)
	}
}

// TestParallelByteIdentical is the tentpole's teeth: for a pinned seed, every
// worker count must reproduce the sequential evaluation byte for byte —
// same rows, same order, same values — across base queries (with filters and
// grouping sets), chained operators with derived-column conditions, and
// prefix plans.
func TestParallelByteIdentical(t *testing.T) {
	detail := skewedFlows(42, 9000, 48, 0.3)
	data := Data{"Flow": detail}
	queries := map[string]Query{
		"example1": example1(),
		"filtered-base": {
			Base: BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}, Where: expr.MustParse("R.SAS != 3")},
			Ops: []Operator{
				{Detail: "Flow", Vars: []GroupVar{{
					Aggs: []agg.Spec{
						{Func: agg.Sum, Arg: "NB", As: "s"},
						{Func: agg.Min, Arg: "NB", As: "lo"},
						{Func: agg.Max, Arg: "NB", As: "hi"},
					},
					Cond: expr.MustParse("B.SAS = R.SAS && B.DAS = R.DAS"),
				}}},
			},
		},
		"grouping-sets": {
			Base: BaseQuery{
				Detail: "Flow", Cols: []string{"SAS", "DAS"},
				GroupingSets: [][]string{{"SAS", "DAS"}, {"SAS"}, {}},
			},
			Ops: []Operator{
				{Detail: "Flow", Vars: []GroupVar{{
					Aggs: []agg.Spec{{Func: agg.Count, As: "cnt"}},
					Cond: expr.MustParse("(B.SAS IS NULL || B.SAS = R.SAS) && (B.DAS IS NULL || B.DAS = R.DAS)"),
				}}},
			},
		},
	}
	for name, q := range queries {
		q := q
		t.Run(name, func(t *testing.T) {
			// The nested-loop path is O(|detail| × |X|); cross-check it on one
			// query shape and keep the rest on the hash path for test speed.
			hashModes := []bool{true, false}
			if name != "example1" {
				hashModes = []bool{true}
			}
			for _, useHash := range hashModes {
				want, err := evalPrefixX(q, data, len(q.Ops), useHash, 1)
				if err != nil {
					t.Fatalf("useHash=%v sequential: %v", useHash, err)
				}
				wantText := want.Format(1 << 20)
				for _, workers := range []int{0, 2, 7, runtime.GOMAXPROCS(0)} {
					got, err := evalPrefixX(q, data, len(q.Ops), useHash, workers)
					if err != nil {
						t.Fatalf("useHash=%v workers=%d: %v", useHash, workers, err)
					}
					if gotText := got.Format(1 << 20); gotText != wantText {
						t.Fatalf("useHash=%v workers=%d diverges from sequential\ngot:\n%.2000s\nwant:\n%.2000s",
							useHash, workers, gotText, wantText)
					}
				}
			}
		})
	}
}

// TestParallelHeavyHitter drives the dedicated-combiner path: one group key
// owns most of the detail mass, far past the heavy-hitter threshold, and the
// merged result must still match the sequential evaluation exactly.
func TestParallelHeavyHitter(t *testing.T) {
	detail := skewedFlows(7, 30000, 16, 0.9) // ~27k rows on group (1,1)
	data := Data{"Flow": detail}
	q := example1()
	want, err := evalPrefixX(q, data, len(q.Ops), true, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := evalPrefixX(q, data, len(q.Ops), true, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := got.Format(1<<20), want.Format(1<<20); g != w {
		t.Fatalf("heavy-hitter parallel run diverges\ngot:\n%.2000s\nwant:\n%.2000s", g, w)
	}
}

// TestParallelTouched checks that the Prop. 1 guard flags survive the
// parallel merge: Touched must be the OR of every worker's hits.
func TestParallelTouched(t *testing.T) {
	detail := skewedFlows(11, 12000, 32, 0.2)
	// A base with extra rows no detail row matches: their Touched must stay
	// false under both paths.
	base, err := EvalBase(BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}}, SourceOf(detail))
	if err != nil {
		t.Fatal(err)
	}
	base.MustAppend(relation.Tuple{relation.NewInt(9999), relation.NewInt(9999)})
	op := example1().Ops[0]
	seq, err := AccumulateOperatorWorkers(base, op, SourceOf(detail), true, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AccumulateOperatorWorkers(base, op, SourceOf(detail), true, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Touched) != len(par.Touched) {
		t.Fatalf("Touched length %d vs %d", len(seq.Touched), len(par.Touched))
	}
	for i := range seq.Touched {
		if seq.Touched[i] != par.Touched[i] {
			t.Fatalf("Touched[%d]: sequential %v, parallel %v", i, seq.Touched[i], par.Touched[i])
		}
	}
	if par.Touched[len(par.Touched)-1] {
		t.Error("unmatched base row marked Touched")
	}
}

// TestParallelScanError checks that a mid-scan evaluation error surfaces from
// the worker pool instead of hanging or being swallowed.
func TestParallelScanError(t *testing.T) {
	detail := relation.New(relation.MustSchema(
		relation.Column{Name: "SAS", Kind: relation.KindInt},
		relation.Column{Name: "NB", Kind: relation.KindString},
	))
	for i := 0; i < 8000; i++ {
		detail.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewString(fmt.Sprintf("x%d", i))})
	}
	base := relation.New(relation.MustSchema(relation.Column{Name: "SAS", Kind: relation.KindInt}))
	base.MustAppend(relation.Tuple{relation.NewInt(1)})
	op := Operator{Detail: "Flow", Vars: []GroupVar{{
		Aggs: []agg.Spec{{Func: agg.Sum, Arg: "NB", As: "s"}}, // SUM over a string column fails at accumulate
		Cond: expr.MustParse("B.SAS = R.SAS"),
	}}}
	if _, err := AccumulateOperatorWorkers(base, op, SourceOf(detail), true, 4); err == nil {
		t.Fatal("expected an accumulate error from the parallel path")
	}
}
