package gmdj

import (
	"runtime"
	"sync"

	"skalla/internal/obs"
	"skalla/internal/relation"
)

// SplittableSource is an optional RowSource extension for worker-parallel
// evaluation: a source that can carve itself into disjoint shards whose
// concatenated scans reproduce the full scan exactly (same rows, same order).
// In-memory relations split on contiguous row ranges; disk-backed
// store.Tables split on segment boundaries so no segment is decoded twice.
type SplittableSource interface {
	RowSource
	// Split returns up to n shards covering the source in order. A return of
	// nil (or fewer than two shards) declines the split — e.g. the source is
	// too small — and callers fall back to the sequential path.
	Split(n int) []RowSource
}

// minAutoShardRows is the smallest shard worth a goroutine under automatic
// worker selection: below ~2k rows per worker the spawn/merge overhead beats
// the scan savings.
const minAutoShardRows = 2048

// Heavy-hitter thresholds for the skew-aware merge: a base row is heavy when
// its accumulated hit mass is at least heavyFactor times the mean row mass
// (and at least heavyMinHits, so uniform tiny workloads never trigger the
// skew path). Heavy rows are routed to a dedicated combiner goroutine so a
// handful of hot group keys cannot stall the balanced light-row mergers.
const (
	heavyFactor  = 8
	heavyMinHits = 4096
)

// resolveWorkers maps the user-facing workers knob (0 = auto, 1 = off,
// n = exactly n) to an effective worker count for a source of rows rows.
func resolveWorkers(workers, rows int) int {
	if workers == 1 || rows <= 0 {
		return 1
	}
	if workers <= 0 {
		w := (rows + minAutoShardRows - 1) / minAutoShardRows
		if p := runtime.GOMAXPROCS(0); w > p {
			w = p
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	if workers > rows {
		workers = rows
	}
	return workers
}

// splitSource shards a source for workers-way parallel evaluation, or returns
// nil when evaluation should stay sequential (one worker, a source that is
// not splittable, or a source that declines).
func splitSource(src RowSource, workers int) []RowSource {
	if workers <= 1 {
		obs.EngineEvalWorkers.Set(1)
		return nil
	}
	ss, ok := src.(SplittableSource)
	if !ok {
		obs.EngineEvalWorkers.Set(1)
		return nil
	}
	shards := ss.Split(workers)
	if len(shards) <= 1 {
		obs.EngineEvalWorkers.Set(1)
		return nil
	}
	obs.EngineEvalWorkers.Set(int64(len(shards)))
	return shards
}

// workerAccum is one worker's private accumulation state: per-variable
// physical partials for every base row, plus per-base-row hit counts. Hits
// drive two things after the scans join: Touched flags (Prop. 1) and the
// skew-aware merge plan.
type workerAccum struct {
	accs [][]relation.Tuple // [variable][baseRow]
	hits []uint32
	err  error
}

// accumulateParallel runs one worker goroutine per detail shard, each
// accumulating into private partials, then merges the partials into out in
// worker order. Merging per-worker partials is exactly the per-site
// sub-aggregate merge of Theorem 1 applied to finer horizontal partitions.
func accumulateParallel(x *relation.Relation, states []*varState, out *OperatorAccum, shards []RowSource) error {
	ws := make([]*workerAccum, len(shards))
	var wg sync.WaitGroup
	for w := range shards {
		wa := &workerAccum{
			accs: make([][]relation.Tuple, len(states)),
			hits: make([]uint32, x.Len()),
		}
		for vi, st := range states {
			accs := make([]relation.Tuple, x.Len())
			for i := range accs {
				accs[i] = st.layout.Identity()
			}
			wa.accs[vi] = accs
		}
		ws[w] = wa
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for vi, st := range states {
				if err := st.scan(x, shards[w], wa.accs[vi], wa.hits, w); err != nil {
					wa.err = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Lowest worker index wins so the reported error is deterministic.
	for _, wa := range ws {
		if wa.err != nil {
			return wa.err
		}
	}
	return mergeWorkerAccums(x.Len(), states, out, ws)
}

// mergeWorkerAccums folds every worker's partials into out. Each base row is
// merged independently (workers visited in index order, so the fold order is
// deterministic), which makes the merge itself parallel: light rows are split
// into contiguous runs balanced by hit mass, while heavy-hitter rows — hot
// group keys that dominate the mass — go to one dedicated combiner goroutine
// so they cannot stall a balanced run.
func mergeWorkerAccums(n int, states []*varState, out *OperatorAccum, ws []*workerAccum) error {
	if n == 0 {
		return nil
	}
	mass := make([]uint64, n)
	var total uint64
	for _, wa := range ws {
		for i, h := range wa.hits {
			mass[i] += uint64(h)
			total += uint64(h)
		}
	}

	// mergeRow folds base row i across workers in worker order. Workers that
	// never hit the row hold identity partials for it — skipping them is a
	// no-op by the identity-merge property of every physical aggregate.
	mergeRow := func(i int) error {
		for _, wa := range ws {
			if wa.hits[i] == 0 {
				continue
			}
			for vi, st := range states {
				if err := st.layout.MergePhys(out.Accs[vi][i], wa.accs[vi][i]); err != nil {
					return err
				}
			}
		}
		out.Touched[i] = mass[i] > 0
		return nil
	}

	// Classify heavy hitters.
	thr := uint64(heavyMinHits)
	if n > 0 {
		if m := total / uint64(n) * heavyFactor; m > thr {
			thr = m
		}
	}
	var heavy []int
	heavyMass := uint64(0)
	isHeavy := make([]bool, n)
	for i, m := range mass {
		if m >= thr {
			heavy = append(heavy, i)
			heavyMass += m
			isHeavy[i] = true
		}
	}

	// Partition the light rows into contiguous runs of near-equal hit mass,
	// one merger goroutine per run, plus the dedicated heavy combiner.
	lightMass := total - heavyMass
	mergers := len(ws)
	if mergers > n {
		mergers = n
	}
	type run struct{ lo, hi int }
	var runs []run
	perRun := lightMass/uint64(mergers) + 1
	acc, lo := uint64(0), 0
	for i := 0; i < n; i++ {
		if isHeavy[i] {
			continue
		}
		acc += mass[i]
		if acc >= perRun && len(runs) < mergers-1 {
			runs = append(runs, run{lo, i + 1})
			acc, lo = 0, i+1
		}
	}
	runs = append(runs, run{lo, n})

	errs := make([]error, len(runs)+1)
	var wg sync.WaitGroup
	for ri, r := range runs {
		wg.Add(1)
		go func(ri int, r run) {
			defer wg.Done()
			for i := r.lo; i < r.hi; i++ {
				if isHeavy[i] {
					continue
				}
				if err := mergeRow(i); err != nil {
					errs[ri] = err
					return
				}
			}
		}(ri, r)
	}
	if len(heavy) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, i := range heavy {
				if err := mergeRow(i); err != nil {
					errs[len(runs)] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evalBaseParallel runs one worker per shard, each collecting its shard's
// distinct projections in first-occurrence order, then dedupes the per-worker
// lists in shard order. Because shards are contiguous and in order, the
// merged first-occurrence order equals the sequential scan's exactly.
func evalBaseParallel(p *baseProg, shards []RowSource) (*relation.Relation, error) {
	type part struct {
		rows []relation.Tuple
		err  error
	}
	parts := make([]part, len(shards))
	var wg sync.WaitGroup
	for w := range shards {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := relation.NewKeySet(64)
			parts[w].err = p.scanShard(shards[w], w, seen, &parts[w].rows)
		}(w)
	}
	wg.Wait()
	for _, pt := range parts {
		if pt.err != nil {
			return nil, pt.err
		}
	}
	out := relation.New(p.schema)
	seen := relation.NewKeySet(64)
	for _, pt := range parts {
		for _, t := range pt.rows {
			interned, fresh := seen.Add(t, p.allCols)
			if fresh {
				out.Tuples = append(out.Tuples, interned)
			}
		}
	}
	return out, nil
}
