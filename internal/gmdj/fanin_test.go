package gmdj

import (
	"fmt"
	"runtime"
	"testing"

	"skalla/internal/agg"
	"skalla/internal/expr"
	"skalla/internal/relation"
)

// fanInJobs builds three deliberately dissimilar jobs over the same detail:
// different base relations (one with an unmatched extra row), different
// conditions (equi-join, single-key, value-filtered), different aggregate
// lists. Fan-in must keep them fully independent.
func fanInJobs(t *testing.T, detail *relation.Relation) []OperatorJob {
	t.Helper()
	baseFull, err := EvalBase(BaseQuery{Detail: "Flow", Cols: []string{"SAS", "DAS"}}, SourceOf(detail))
	if err != nil {
		t.Fatal(err)
	}
	baseFull.MustAppend(relation.Tuple{relation.NewInt(9999), relation.NewInt(9999)}) // never touched
	baseSAS, err := EvalBase(BaseQuery{Detail: "Flow", Cols: []string{"SAS"}}, SourceOf(detail))
	if err != nil {
		t.Fatal(err)
	}
	return []OperatorJob{
		{X: baseFull, Op: Operator{Detail: "Flow", Vars: []GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "cnt"}, {Func: agg.Sum, Arg: "NB", As: "s"}},
			Cond: expr.MustParse("B.SAS = R.SAS && B.DAS = R.DAS"),
		}}}},
		{X: baseSAS, Op: Operator{Detail: "Flow", Vars: []GroupVar{
			{
				Aggs: []agg.Spec{{Func: agg.Min, Arg: "NB", As: "lo"}, {Func: agg.Max, Arg: "NB", As: "hi"}},
				Cond: expr.MustParse("B.SAS = R.SAS"),
			},
			{
				Aggs: []agg.Spec{{Func: agg.Avg, Arg: "NB", As: "a"}},
				Cond: expr.MustParse("B.SAS = R.SAS && R.NB >= 500"),
			},
		}}},
		{X: baseSAS.Clone(), Op: Operator{Detail: "Flow", Vars: []GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "big"}},
			Cond: expr.MustParse("B.SAS = R.SAS && R.NB >= 900"),
		}}}},
	}
}

// extendJob finalizes an accum against its job's base relation, the same way
// operator evaluation does.
func extendJob(t *testing.T, x *relation.Relation, acc *OperatorAccum) *relation.Relation {
	t.Helper()
	schema, err := acc.ExtendedSchema(x.Schema)
	if err != nil {
		t.Fatal(err)
	}
	out := relation.New(schema)
	out.Tuples = make([]relation.Tuple, x.Len())
	for i, br := range x.Tuples {
		out.Tuples[i] = acc.ExtendRow(br, i)
	}
	return out
}

// TestFanInByteIdentical: for every (hash mode, worker count) combination,
// each job's fan-in result — values, Touched flags, row order — must be
// byte-identical to evaluating that job alone.
func TestFanInByteIdentical(t *testing.T) {
	detail := skewedFlows(21, 9000, 40, 0.3)
	jobs := fanInJobs(t, detail)

	for _, useHash := range []bool{true, false} {
		solo := make([]*relation.Relation, len(jobs))
		soloTouched := make([][]bool, len(jobs))
		for j, job := range jobs {
			acc, err := AccumulateOperatorWorkers(job.X, job.Op, SourceOf(detail), useHash, 1)
			if err != nil {
				t.Fatal(err)
			}
			solo[j] = extendJob(t, job.X, acc)
			soloTouched[j] = acc.Touched
		}
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), 0} {
			accs, err := AccumulateOperatorsFanIn(jobs, SourceOf(detail), useHash, workers)
			if err != nil {
				t.Fatalf("useHash=%v workers=%d: %v", useHash, workers, err)
			}
			if len(accs) != len(jobs) {
				t.Fatalf("useHash=%v workers=%d: %d accums for %d jobs", useHash, workers, len(accs), len(jobs))
			}
			for j, job := range jobs {
				got := extendJob(t, job.X, accs[j]).Format(1 << 20)
				if want := solo[j].Format(1 << 20); got != want {
					t.Fatalf("useHash=%v workers=%d job %d diverges from solo evaluation\ngot:\n%.2000s\nwant:\n%.2000s",
						useHash, workers, j, got, want)
				}
				for i := range soloTouched[j] {
					if accs[j].Touched[i] != soloTouched[j][i] {
						t.Fatalf("useHash=%v workers=%d job %d: Touched[%d] = %v, want %v",
							useHash, workers, j, i, accs[j].Touched[i], soloTouched[j][i])
					}
				}
			}
		}
	}
}

// countedSource wraps a RowSource and counts the rows it streams. It is
// deliberately NOT splittable, pinning fan-in to the sequential single-scan
// path so the count is exact.
type countedSource struct {
	src  RowSource
	rows int
}

func (c *countedSource) Schema() relation.Schema { return c.src.Schema() }
func (c *countedSource) Len() int                { return c.src.Len() }
func (c *countedSource) Scan(fn func(relation.Tuple) error) error {
	return c.src.Scan(func(tp relation.Tuple) error {
		c.rows++
		return fn(tp)
	})
}

// TestFanInSingleScan is the point of the whole mechanism: three jobs over
// one detail must stream each detail row exactly once, not once per job.
func TestFanInSingleScan(t *testing.T) {
	detail := skewedFlows(23, 4000, 24, 0.2)
	jobs := fanInJobs(t, detail)
	src := &countedSource{src: SourceOf(detail)}
	if _, err := AccumulateOperatorsFanIn(jobs, src, true, 1); err != nil {
		t.Fatal(err)
	}
	if src.rows != detail.Len() {
		t.Fatalf("fan-in streamed %d rows for %d jobs, want %d (one shared scan)",
			src.rows, len(jobs), detail.Len())
	}
}

// TestFanInEdgeCases: empty batches return nothing, single-job batches
// delegate to the solo path, and an evaluation error in any job aborts the
// batch.
func TestFanInEdgeCases(t *testing.T) {
	detail := skewedFlows(29, 500, 8, 0)
	accs, err := AccumulateOperatorsFanIn(nil, SourceOf(detail), true, 1)
	if err != nil || accs != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", accs, err)
	}

	jobs := fanInJobs(t, detail)[:1]
	accs, err = AccumulateOperatorsFanIn(jobs, SourceOf(detail), true, 1)
	if err != nil || len(accs) != 1 {
		t.Fatalf("single-job batch = (%d accums, %v)", len(accs), err)
	}

	// A SUM over a string column fails at accumulate time; the failure must
	// surface even when a healthy job shares the batch — and under the
	// parallel path too.
	bad := relation.New(relation.MustSchema(
		relation.Column{Name: "SAS", Kind: relation.KindInt},
		relation.Column{Name: "NB", Kind: relation.KindString},
	))
	for i := 0; i < 8000; i++ {
		bad.MustAppend(relation.Tuple{relation.NewInt(1), relation.NewString(fmt.Sprintf("x%d", i))})
	}
	base := relation.New(relation.MustSchema(relation.Column{Name: "SAS", Kind: relation.KindInt}))
	base.MustAppend(relation.Tuple{relation.NewInt(1)})
	badJobs := []OperatorJob{
		{X: base, Op: Operator{Detail: "Flow", Vars: []GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Count, As: "c"}},
			Cond: expr.MustParse("B.SAS = R.SAS"),
		}}}},
		{X: base.Clone(), Op: Operator{Detail: "Flow", Vars: []GroupVar{{
			Aggs: []agg.Spec{{Func: agg.Sum, Arg: "NB", As: "s"}},
			Cond: expr.MustParse("B.SAS = R.SAS"),
		}}}},
	}
	for _, workers := range []int{1, 4} {
		if _, err := AccumulateOperatorsFanIn(badJobs, SourceOf(bad), true, workers); err == nil {
			t.Fatalf("workers=%d: bad job's error was swallowed by the batch", workers)
		}
	}
}
